// Command continuous demonstrates the internal/coord measurement
// coordinator: three scheduler rounds over a small in-process relay
// population speaking the real wire protocol, showing the per-round
// estimates converging, connection-pool reuse kicking in after the first
// round, and a misbehaving relay being retried and reported.
//
// Usage: go run ./examples/continuous
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rates := map[string]float64{"small": 6e6, "medium": 12e6, "large": 20e6}

	ids := make([]wire.Identity, 2)
	for i := range ids {
		var err error
		ids[i], err = wire.NewIdentity()
		if err != nil {
			return err
		}
	}

	addrs := make(map[string]string)
	source := coord.StaticRelays{}
	for name, rate := range rates {
		tgt := wire.NewTarget(wire.TargetConfig{RateBps: rate})
		tgt.Authorize(ids[0].Pub, ids[1].Pub)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer l.Close()
		go tgt.Serve(l)
		addrs[name] = l.Addr().String()
		// The source's estimate is deliberately rough (half the truth):
		// round 1 corrects it and later rounds start from the measured
		// median.
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: rate / 2})
	}

	p := core.DefaultParams()
	p.SlotSeconds = 1
	p.Sockets = 4
	p.CheckProb = 0.01

	pool := coord.NewPool(4, time.Minute)
	defer pool.Close()

	members := make([]wire.Member, len(ids))
	for i := range ids {
		member := i
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(target string) wire.Dialer {
				addr := addrs[target]
				key := fmt.Sprintf("%s/m%d", target, member)
				return pool.Dialer(key, func() (net.Conn, error) {
					return net.Dial("tcp", addr)
				})
			},
		}
	}
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 200e6, Cores: 2},
		{Name: "m2", CapacityBps: 200e6, Cores: 2},
	}
	backend := &wire.Backend{Members: members, CheckProb: p.CheckProb, Seed: time.Now().UnixNano()}
	auths := []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}

	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     4,
		MaxAttempts: 3,
		RetryBase:   50 * time.Millisecond,
		MaxRounds:   3,
		// A wedged slot is cancelled (and retried) rather than hanging a
		// worker forever; the streaming backend tears it down promptly.
		SlotTimeout: 30 * time.Second,
		Pool:        pool,
		OnRound: func(r coord.RoundReport) {
			fmt.Println(r)
			for name, est := range r.Estimates {
				fmt.Printf("  %-6s measured %5.1f Mbit/s (true %5.1f)\n",
					name, est/1e6, rates[name]/1e6)
			}
		},
	}, auths, source)
	if err != nil {
		return err
	}
	if err := c.Run(context.Background()); err != nil {
		return err
	}

	st := pool.Stats()
	fmt.Printf("connection pool: %d hits, %d misses, %d idle — rounds after the first reuse their connections\n",
		st.Hits, st.Misses, st.Idle)
	return nil
}
