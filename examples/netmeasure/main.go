// Command netmeasure reproduces the §7 "Network Measurement Efficiency"
// analysis: how fast a 3×1 Gbit/s team can measure a July-2019-sized Tor
// network, how the randomized multi-BWAuth schedule lays out a period, and
// how quickly new relays get measured.
//
// Usage: go run ./examples/netmeasure
package main

import (
	"fmt"
	"log"
	"math"

	"flashflow/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// julyNetwork approximates Tor's July 2019 state: ~6,419 relays totalling
// ~608 Gbit/s with a 998 Mbit/s maximum.
func julyNetwork() []core.RelayEstimate {
	const n, total = 6419, 608e9
	relays := make([]core.RelayEstimate, n)
	var sum float64
	for i := range relays {
		c := 1 / math.Pow(float64(i+1), 0.7)
		relays[i] = core.RelayEstimate{Name: fmt.Sprintf("r%05d", i), EstimateBps: c}
		sum += c
	}
	for i := range relays {
		relays[i].EstimateBps *= total / sum
		if relays[i].EstimateBps > 998e6 {
			relays[i].EstimateBps = 998e6
		}
	}
	return relays
}

func run() error {
	p := core.DefaultParams()
	relays := julyNetwork()
	var total float64
	for _, r := range relays {
		total += r.EstimateBps
	}
	const teamCap = 3e9 // 3 measurers × 1 Gbit/s

	fmt.Printf("network: %d relays, %.0f Gbit/s total; team capacity %.0f Gbit/s\n",
		len(relays), total/1e9, teamCap/1e9)

	for _, f := range []struct {
		label string
		value float64
	}{
		{"f = 2.84 (§7)", core.ExcessFactorPaper7},
		{fmt.Sprintf("f = %.3f (§4.2 formula)", p.ExcessFactor()), p.ExcessFactor()},
	} {
		res := core.GreedyFastestSchedule(relays, teamCap, f.value, p)
		fmt.Printf("greedy whole-network measurement with %s: %d slots = %.1f hours (%d relays, %d unmeasurable)\n",
			f.label, res.SlotsUsed, res.HoursUsed(p), res.RelaysMeasured, len(res.Unmeasurable))
	}

	// Randomized per-period schedule for 3 BWAuths.
	sched, err := core.BuildSchedule([]byte("shared-seed"), relays, []float64{teamCap, teamCap, teamCap}, p)
	if err != nil {
		return err
	}
	busy := 0
	for _, slot := range sched.PerBWAuth[0] {
		if len(slot) > 0 {
			busy++
		}
	}
	fmt.Printf("randomized period schedule: %d slots, BWAuth 0 busy in %d (%.0f%%), %d unscheduled\n",
		sched.NumSlots, busy, 100*float64(busy)/float64(sched.NumSlots), len(sched.Unscheduled))

	// Per-relay lookups ride the schedule's precomputed relay→slot
	// index (O(1) per query — the seed implementation re-scanned every
	// assignment, which at consensus scale made this loop quadratic).
	for _, name := range []string{relays[0].Name, relays[len(relays)/2].Name, relays[len(relays)-1].Name} {
		fmt.Printf("  %s scheduled at", name)
		for b := range sched.PerBWAuth {
			fmt.Printf(" bw%d:slot %d", b, sched.SlotOf(b, name))
		}
		fmt.Println()
	}

	// New-relay latency at the July 2019 prior of 51 Mbit/s.
	occupied := 599.0 / 2880.0
	for _, n := range []int{1, 3, 98} {
		slots := core.NewRelaySlots(n, 51e6, teamCap, occupied, p)
		fmt.Printf("new relays: %3d arriving → measured within %d slot(s) = %d s\n",
			n, slots, slots*p.SlotSeconds)
	}
	return nil
}
