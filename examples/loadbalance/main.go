// Command loadbalance runs the paper's §7 comparison end to end: build a
// private Tor-like network, measure it with both FlashFlow and TorFlow,
// then simulate client traffic under each system's weights and compare
// transfer times, timeout rates, and throughput (Fig. 8 and Fig. 9).
//
// Usage: go run ./examples/loadbalance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"flashflow/internal/shadow"
	"flashflow/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	relays := shadow.SampleNetwork(60, 3e9, 42)
	fmt.Printf("network: %d relays, %.1f Gbit/s total capacity\n",
		len(relays), shadow.TotalCapacityBps(relays)/1e9)

	ffWeights, err := shadow.MeasureWithFlashFlow(context.Background(), relays, 1)
	if err != nil {
		return err
	}
	tfWeights, err := shadow.MeasureWithTorFlow(relays, 2)
	if err != nil {
		return err
	}

	ffErr := shadow.AnalyzeErrors(relays, ffWeights, ffWeights)
	tfErr := shadow.AnalyzeErrors(relays, tfWeights, nil)
	fmt.Printf("\nmeasurement error (Fig. 8):\n")
	fmt.Printf("  FlashFlow: capacity error %.1f%%, weight error %.1f%%\n",
		ffErr.NetworkCapacityError*100, ffErr.NetworkWeightError*100)
	fmt.Printf("  TorFlow:   weight error %.1f%%\n", tfErr.NetworkWeightError*100)

	cfg := shadow.DefaultConfig()
	cfg.Duration = 3 * time.Minute
	cfg.Clients = shadow.ClientsForUtilization(relays, cfg, 0.35)
	fmt.Printf("\nclient performance under each weighting (Fig. 9), load 100%%/130%%:\n")
	fmt.Printf("%-10s %-6s %-12s %-12s %-12s %-10s\n", "system", "load", "med 50KiB(s)", "med 1MiB(s)", "med 5MiB(s)", "timeout%")
	for _, load := range []float64{1.0, 1.3} {
		cfg.LoadScale = load
		for _, sys := range []struct {
			name    string
			weights []float64
		}{{"TorFlow", tfWeights}, {"FlashFlow", ffWeights}} {
			res, err := shadow.Run(cfg, relays, sys.weights)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-6.0f %-12.2f %-12.2f %-12.2f %-10.1f\n",
				sys.name, load*100,
				stats.Median(res.TTLBSeconds["50KiB"]),
				stats.Median(res.TTLBSeconds["1MiB"]),
				stats.Median(res.TTLBSeconds["5MiB"]),
				res.TimeoutRate*100)
		}
	}
	return nil
}
