// Command quickstart measures a single rate-limited target relay over real
// localhost TCP connections using the full FlashFlow protocol: ed25519
// authentication, X25519 measurement-circuit setup, AES-CTR cell crypto,
// paced cell streaming with probabilistic echo verification, and the §4
// aggregation pipeline.
//
// Usage: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const targetRate = 16e6 // the relay's capacity: 16 Mbit/s

	// Target relay: rate-limited echo server speaking the measurement
	// protocol.
	target := wire.NewTarget(wire.TargetConfig{RateBps: targetRate})
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer listener.Close()
	go target.Serve(listener)
	addr := listener.Addr().String()
	fmt.Printf("target relay listening on %s, capacity %.0f Mbit/s\n", addr, targetRate/1e6)

	// Two-measurer team; the BWAuth distributes their identities to the
	// target.
	ids := make([]wire.Identity, 2)
	members := make([]wire.Member, 2)
	team := make([]*core.Measurer, 2)
	for i := range ids {
		ids[i], err = wire.NewIdentity()
		if err != nil {
			return err
		}
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(string) wire.Dialer {
				return func() (net.Conn, error) { return net.Dial("tcp", addr) }
			},
		}
		team[i] = &core.Measurer{Name: fmt.Sprintf("measurer%d", i), CapacityBps: 50e6, Cores: 2}
		target.Authorize(ids[i].Pub)
	}

	backend := &wire.Backend{Members: members, CheckProb: 0.01, Seed: time.Now().UnixNano()}

	p := core.DefaultParams()
	p.SlotSeconds = 3 // short slots so the demo finishes quickly
	p.Sockets = 8

	fmt.Printf("measuring with m=%.2f, f=%.2f, r=%.2f, t=%ds, s=%d sockets…\n",
		p.Multiplier, p.ExcessFactor(), p.Ratio, p.SlotSeconds, p.Sockets)

	start := time.Now()
	out, err := core.MeasureRelay(context.Background(), backend, team, "demo-relay", targetRate, p)
	if err != nil {
		return err
	}
	for i, a := range out.Attempts {
		fmt.Printf("  attempt %d: allocated %.1f Mbit/s → estimate %.1f Mbit/s (accepted=%v)\n",
			i+1, a.AllocatedBps/1e6, a.EstimateBps/1e6, a.Accepted)
	}
	fmt.Printf("final estimate: %.1f Mbit/s (true capacity %.0f, error %+.1f%%) in %v, conclusive=%v\n",
		out.EstimateBps/1e6, targetRate/1e6,
		(out.EstimateBps/targetRate-1)*100, time.Since(start).Round(time.Millisecond), out.Conclusive)
	return nil
}
