// Command adversary demonstrates the §5 security properties: a lying
// relay's inflation is clamped to 1/(1−r) = 1.33, a forging relay is
// caught by echo checks, a burst-only relay loses the multi-BWAuth median
// vote, and TorFlow — the baseline — is inflatable by orders of magnitude.
//
// Usage: go run ./examples/adversary
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"flashflow/internal/adversary"
	"flashflow/internal/core"
	"flashflow/internal/relay"
	"flashflow/internal/torflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func paths() []core.PathModel {
	return []core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.02, JitterSigma: 0.02},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.02, JitterSigma: 0.02},
		{RTT: 140 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.02, JitterSigma: 0.02},
	}
}

func team() []*core.Measurer {
	return []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
		{Name: "m3", CapacityBps: 1e9, Cores: 4},
	}
}

func run() error {
	const trueCap = 200e6
	p := core.DefaultParams()

	fmt.Println("== FlashFlow vs adversarial relays (true capacity 200 Mbit/s) ==")

	// Honest relay.
	b := core.NewSimBackend(paths(), 1)
	b.AddTarget("honest", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "honest", TorCapBps: trueCap}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest,
	})
	out, err := core.MeasureRelay(context.Background(), b, team(), "honest", trueCap, p)
	if err != nil {
		return err
	}
	fmt.Printf("honest relay:   estimate %.1f Mbit/s (%.2f× truth)\n",
		out.EstimateBps/1e6, out.EstimateBps/trueCap)

	// Lying relay: fabricates its normal-traffic report.
	b2 := core.NewSimBackend(paths(), 2)
	b2.AddTarget("liar", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "liar", TorCapBps: trueCap}),
		LinkBps:  1e9,
		Behavior: core.BehaviorInflateNormal,
	})
	out, err = core.MeasureRelay(context.Background(), b2, team(), "liar", trueCap, p)
	if err != nil {
		return err
	}
	fmt.Printf("lying relay:    estimate %.1f Mbit/s (%.2f× truth; bound is 1/(1-r) = %.2f×)\n",
		out.EstimateBps/1e6, out.EstimateBps/trueCap, p.MaxInflation())

	// Forging relay: echoes without decrypting to fake more capacity.
	b3 := core.NewSimBackend(paths(), 3)
	b3.AddTarget("forger", &core.SimTarget{
		Relay:      relay.New(relay.Config{Name: "forger", TorCapBps: trueCap}),
		LinkBps:    1e9,
		Behavior:   core.BehaviorForgeEcho,
		ForgeBoost: 2,
	})
	_, err = core.MeasureRelay(context.Background(), b3, team(), "forger", trueCap, p)
	if errors.Is(err, core.ErrMeasurementFailed) {
		fmt.Println("forging relay:  measurement FAILED (echo verification caught it)")
	} else if err != nil {
		return err
	} else {
		fmt.Println("forging relay:  evaded detection this time (probability ≈ 0)")
	}

	// Burst-only relay: provides high capacity in a fraction q of slots.
	fmt.Println("\nburst-only relay success probability (needs majority of BWAuth medians):")
	for _, q := range []float64{0.1, 0.25, 0.4} {
		fmt.Printf("  q=%.2f: n=3 → %.4f, n=5 → %.4f, n=9 → %.4f\n", q,
			core.BurstAttackSuccessProbability(3, q),
			core.BurstAttackSuccessProbability(5, q),
			core.BurstAttackSuccessProbability(9, q))
	}

	// The same attacks as live injections: internal/adversary wraps any
	// backend at the sample-stream boundary, and the §5 defenses leave
	// per-relay anomaly evidence behind (the continuous coordinator
	// surfaces the same counters via Status() across rounds, retained
	// across churn so a flapping liar cannot reset its record).
	fmt.Println("\n== live attack injection (internal/adversary) ==")
	b4 := core.NewSimBackend(paths(), 5)
	b4.AddTarget("wrapped-liar", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "wrapped-liar", TorCapBps: trueCap}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest, // the wrapper, not the sim, does the lying
	})
	wrapped := adversary.New(b4, "bw0", 5)
	wrapped.SetAttack("wrapped-liar", adversary.Inflate{Factor: 50})
	out, err = core.MeasureRelay(context.Background(), wrapped, team(), "wrapped-liar", trueCap, p)
	if err != nil {
		return err
	}
	counts := core.OutcomeAnomalies(out, p)
	fmt.Printf("wrapped liar:   estimate %.1f Mbit/s (%.2f× truth; clamp held) — anomaly evidence: %d clamped seconds\n",
		out.EstimateBps/1e6, out.EstimateBps/trueCap, counts.ClampedSeconds)
	fmt.Println("full matrix:    go run ./cmd/experiments adversary-matrix -seed 1")

	// TorFlow baseline for contrast.
	scanner := torflow.NewScanner(torflow.DefaultScannerConfig(4))
	honest := make([]torflow.RelayState, 200)
	for i := range honest {
		honest[i] = torflow.RelayState{
			Name:            fmt.Sprintf("r%03d", i),
			CapacityBps:     20e6 * float64(1+i%15),
			AdvertisedBps:   12e6 * float64(1+i%15),
			UtilizationFrac: 0.5,
		}
	}
	adv, err := scanner.AttackAdvantage(honest,
		torflow.RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}, 500)
	if err != nil {
		return err
	}
	fmt.Printf("\nTorFlow baseline: the same class of attacker gains %.0f× its fair weight\n", adv)
	fmt.Printf("FlashFlow caps inflation at %.2f× — Table 2's comparison\n", p.MaxInflation())
	return nil
}
