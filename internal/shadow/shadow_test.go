package shadow

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"flashflow/internal/stats"
)

func smallNetwork() []RelaySpec {
	return SampleNetwork(60, 2e9, 1)
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 2 * time.Minute
	cfg.Clients = 400
	cfg.BenchmarkClients = 20
	return cfg
}

func capacityWeights(relays []RelaySpec) []float64 {
	w := make([]float64, len(relays))
	for i, r := range relays {
		w[i] = r.CapacityBps
	}
	return w
}

func advertisedWeights(relays []RelaySpec) []float64 {
	w := make([]float64, len(relays))
	for i, r := range relays {
		w[i] = r.AdvertisedBps
	}
	return w
}

func TestSampleNetworkShape(t *testing.T) {
	relays := SampleNetwork(328, 30e9, 7)
	if len(relays) != 328 {
		t.Fatalf("relays: %d", len(relays))
	}
	for _, r := range relays {
		if r.CapacityBps <= 0 || r.CapacityBps > 998e6 {
			t.Fatalf("capacity out of range: %v", r.CapacityBps)
		}
		if r.AdvertisedBps > r.CapacityBps {
			t.Fatalf("advertised exceeds capacity for %s", r.Name)
		}
	}
	// Heavy tail: the largest relay should dominate the smallest by a lot.
	if relays[0].CapacityBps < 20*relays[len(relays)-1].CapacityBps {
		t.Fatal("expected heavy-tailed capacity distribution")
	}
}

func TestRunBasicMetrics(t *testing.T) {
	relays := smallNetwork()
	res, err := Run(smallConfig(), relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	if res.BenchTransfers == 0 {
		t.Fatal("no benchmark transfers ran")
	}
	if len(res.TTLBSeconds["50KiB"]) == 0 || len(res.TTLBSeconds["1MiB"]) == 0 {
		t.Fatalf("missing TTLB samples: %v", mapLens(res.TTLBSeconds))
	}
	if len(res.TTFBSeconds) == 0 {
		t.Fatal("no TTFB samples")
	}
	if len(res.ThroughputBps) == 0 {
		t.Fatal("no throughput series")
	}
	if res.ClientBytes <= 0 {
		t.Fatal("no client bytes delivered")
	}
}

func mapLens(m map[string][]float64) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

func TestRunValidation(t *testing.T) {
	relays := smallNetwork()
	if _, err := Run(smallConfig(), nil, nil); err == nil {
		t.Fatal("no relays should error")
	}
	if _, err := Run(smallConfig(), relays, []float64{1}); err == nil {
		t.Fatal("weight length mismatch should error")
	}
	bad := smallConfig()
	bad.Tick = 0
	if _, err := Run(bad, relays, capacityWeights(relays)); err == nil {
		t.Fatal("zero tick should error")
	}
	zero := make([]float64, len(relays))
	if _, err := Run(smallConfig(), relays, zero); err == nil {
		t.Fatal("all-zero weights should error")
	}
}

func TestCapacityWeightsBeatAdvertisedWeights(t *testing.T) {
	// The Fig. 9 headline: capacity-proportional (FlashFlow-like) weights
	// yield faster transfers and fewer timeouts than the distorted
	// (TorFlow-like) weights, at equal offered load.
	relays := smallNetwork()
	cfg := smallConfig()
	cfg.LoadScale = 1.3 // stress makes the difference visible

	good, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	// Distorted weights: advertised bandwidth with extra noise, like
	// TorFlow's.
	rng := rand.New(rand.NewSource(3))
	bad := advertisedWeights(relays)
	for i := range bad {
		bad[i] *= math.Exp(rng.NormFloat64() * 0.6)
	}
	poor, err := Run(cfg, relays, bad)
	if err != nil {
		t.Fatal(err)
	}

	goodMed := stats.Median(good.TTLBSeconds["1MiB"])
	poorMed := stats.Median(poor.TTLBSeconds["1MiB"])
	if goodMed >= poorMed {
		t.Fatalf("capacity weights should be faster: %v vs %v", goodMed, poorMed)
	}
	if good.TimeoutRate > poor.TimeoutRate {
		t.Fatalf("capacity weights should time out less: %v vs %v", good.TimeoutRate, poor.TimeoutRate)
	}
}

func TestThroughputScalesWithLoad(t *testing.T) {
	// Fig. 9c: a well-balanced network carries more traffic when load
	// grows.
	relays := smallNetwork()
	cfg := smallConfig()
	base, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	cfg.LoadScale = 1.3
	more, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Median(more.ThroughputBps) <= stats.Median(base.ThroughputBps) {
		t.Fatalf("throughput should grow with load: %v vs %v",
			stats.Median(more.ThroughputBps), stats.Median(base.ThroughputBps))
	}
}

func TestDeterministicRuns(t *testing.T) {
	relays := smallNetwork()
	cfg := smallConfig()
	a, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	if a.BenchTransfers != b.BenchTransfers || a.BenchTimeouts != b.BenchTimeouts {
		t.Fatal("runs not deterministic")
	}
	if math.Abs(a.ClientBytes-b.ClientBytes) > 1 {
		t.Fatal("client bytes not deterministic")
	}
}

func TestMeasureWithFlashFlowAccuracy(t *testing.T) {
	// Fig. 8: FlashFlow's capacity estimates land near truth; network
	// capacity error ≈14 % in the paper (we accept ≤25 %), and network
	// weight error ≈4 % (we accept ≤15 %).
	relays := SampleNetwork(40, 3e9, 5)
	ff, err := MeasureWithFlashFlow(context.Background(), relays, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeErrors(relays, ff, ff)
	if rep.NetworkCapacityError > 0.25 {
		t.Fatalf("FlashFlow NCE too high: %v", rep.NetworkCapacityError)
	}
	if rep.NetworkWeightError > 0.15 {
		t.Fatalf("FlashFlow NWE too high: %v", rep.NetworkWeightError)
	}
}

func TestFlashFlowBeatsTorFlowOnWeightError(t *testing.T) {
	// Fig. 8b: FlashFlow's NWE (≈4 %) ≪ TorFlow's (≈29 %).
	relays := SampleNetwork(40, 3e9, 6)
	ff, err := MeasureWithFlashFlow(context.Background(), relays, 21)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := MeasureWithTorFlow(relays, 22)
	if err != nil {
		t.Fatal(err)
	}
	ffRep := AnalyzeErrors(relays, ff, ff)
	tfRep := AnalyzeErrors(relays, tf, nil)
	if ffRep.NetworkWeightError >= tfRep.NetworkWeightError {
		t.Fatalf("FlashFlow NWE (%v) should beat TorFlow (%v)",
			ffRep.NetworkWeightError, tfRep.NetworkWeightError)
	}
	if tfRep.RelayCapacityError != nil {
		t.Fatal("TorFlow must not report capacity errors")
	}
}

func TestTorFlowUnderweightsMostRelays(t *testing.T) {
	// Fig. 8b: more than ~80 % of relays are under-weighted by TorFlow.
	relays := SampleNetwork(100, 10e9, 8)
	tf, err := MeasureWithTorFlow(relays, 30)
	if err != nil {
		t.Fatal(err)
	}
	rep := AnalyzeErrors(relays, tf, nil)
	var under int
	for _, v := range rep.RelayWeightErrorLog10 {
		if v < 0 {
			under++
		}
	}
	frac := float64(under) / float64(len(rep.RelayWeightErrorLog10))
	if frac < 0.5 {
		t.Fatalf("TorFlow under-weighted fraction: %v", frac)
	}
}

func TestWeightedPicker(t *testing.T) {
	p, err := newWeightedPicker([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[p.pick(rng)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight relay picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("pick ratio: got %v want ≈3", ratio)
	}
}

func TestWeightedPickerRejectsNegative(t *testing.T) {
	if _, err := newWeightedPicker([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestPickPathDistinct(t *testing.T) {
	p, err := newWeightedPicker([]float64{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		path := p.pickPath(rng)
		if path[0] == path[1] || path[1] == path[2] || path[0] == path[2] {
			t.Fatalf("path has duplicate relays: %v", path)
		}
	}
}

func TestAssignRatesFeasibility(t *testing.T) {
	// Property-style check: relay utilization never exceeds capacity.
	rng := rand.New(rand.NewSource(9))
	caps := []float64{10e6, 50e6, 100e6, 200e6}
	var active []*transfer
	for i := 0; i < 200; i++ {
		tr := &transfer{remaining: 1e6, benchIdx: -1, owner: -1}
		for j := 0; j < 3; j++ {
			tr.path[j] = rng.Intn(len(caps))
		}
		active = append(active, tr)
	}
	assignRates(active, caps, 0, time.Second)
	util := make([]float64, len(caps))
	for _, tr := range active {
		seen := map[int]bool{}
		for _, r := range tr.path {
			if !seen[r] {
				util[r] += tr.rate
				seen[r] = true
			}
		}
		if tr.rate < 0 {
			t.Fatal("negative rate")
		}
	}
	for i, u := range util {
		// The three path slots can repeat a relay, in which case its
		// usage triple-counts in assignRates; allow that slack.
		if u > caps[i]*3+1 {
			t.Fatalf("relay %d over capacity: %v > %v", i, u, caps[i])
		}
	}
}

func TestCircuitSetupDelaysFirstByte(t *testing.T) {
	relays := smallNetwork()
	cfg := smallConfig()
	cfg.CircuitSetup = 2 * time.Second
	res, err := Run(cfg, relays, capacityWeights(relays))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Min(res.TTFBSeconds) < 2 {
		t.Fatalf("TTFB below circuit setup latency: %v", stats.Min(res.TTFBSeconds))
	}
}
