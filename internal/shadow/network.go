// Package shadow is the reproduction's stand-in for the Shadow
// discrete-event simulator used in the paper's §7 experiments: a private
// Tor network at reduced scale with Markov-model client traffic and
// benchmark clients, used to compare load balancing under TorFlow and
// FlashFlow weights (Fig. 8 and Fig. 9).
//
// The model is circuit-level and time-stepped: every transfer crosses
// three weighted-sampled relays; per tick, transfer rates are assigned by
// an iterative fair-share water-fill over relay capacities. This captures
// the causal chain the paper's results rest on — weight error concentrates
// load on slow relays, which inflates transfer times, their variance, and
// timeout rates — without packet-level detail.
package shadow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"flashflow/internal/trace"
)

// RelaySpec describes one relay of the private network.
type RelaySpec struct {
	Name string
	// CapacityBps is the relay's true forwarding capacity (the Shadow
	// host's configured bandwidth).
	CapacityBps float64
	// AdvertisedBps is the self-reported bandwidth TorFlow consumes;
	// chronically below capacity (§3).
	AdvertisedBps float64
	// UtilizationFrac is the relay's standing load fraction, used by the
	// TorFlow measurement model.
	UtilizationFrac float64
}

// SampleNetwork builds a relay population with a heavy-tailed capacity
// distribution capped at 998 Mbit/s (the July 2019 maximum), scaled to
// totalBps, mirroring the paper's 328-relay 5 %-scale network sampled from
// January 2019 consensuses.
func SampleNetwork(n int, totalBps float64, seed int64) []RelaySpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]RelaySpec, n)
	var sum float64
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = 1 / math.Pow(float64(i+1), 0.7)
		sum += raw[i]
	}
	var total float64
	for i := range specs {
		capBps := raw[i] / sum * totalBps
		if capBps > 998e6 {
			capBps = 998e6
		}
		util := 0.2 + 0.6*rng.Float64()
		// Advertised bandwidth under-estimates capacity per §3: the
		// observed-bandwidth heuristic caps it near the relay's typical
		// peak utilization.
		advFactor := 0.35 + 0.5*rng.Float64()
		specs[i] = RelaySpec{
			Name:            fmt.Sprintf("relay%04d", i),
			CapacityBps:     capBps,
			AdvertisedBps:   capBps * advFactor,
			UtilizationFrac: util,
		}
		total += capBps
	}
	return specs
}

// TotalCapacityBps sums the relay capacities.
func TotalCapacityBps(relays []RelaySpec) float64 {
	var t float64
	for _, r := range relays {
		t += r.CapacityBps
	}
	return t
}

// Benchmark transfer sizes and timeouts (§7): 50 KiB / 1 MiB / 5 MiB with
// 15 / 60 / 120-second timeouts.
type benchSpec struct {
	label   string
	bytes   float64
	timeout time.Duration
}

var benchSpecs = []benchSpec{
	{"50KiB", 50 << 10, 15 * time.Second},
	{"1MiB", 1 << 20, 60 * time.Second},
	{"5MiB", 5 << 20, 120 * time.Second},
}

// Config parameterizes a simulation run.
type Config struct {
	// Duration and Tick control the simulated span and resolution.
	Duration time.Duration
	Tick     time.Duration
	// Clients is the Markov-client population (each standing in for ~100
	// Tor users, as the paper's 397 TGen clients model 40 k users).
	Clients int
	// LoadScale multiplies offered traffic: 1.0, 1.15, 1.30 in Fig. 9.
	LoadScale float64
	// BenchmarkClients run the repeating 50 KiB/1 MiB/5 MiB downloads.
	BenchmarkClients int
	// Traffic overrides the Markov model parameters (zero value uses
	// trace.DefaultParams).
	Traffic trace.ModelParams
	// CircuitSetup is the base circuit latency added to every transfer.
	CircuitSetup time.Duration
	// Seed drives all sampling.
	Seed int64
}

// DefaultConfig returns a configuration sized to run the full comparison
// in seconds of wall-clock time while preserving the paper's utilization
// regime (≈40–50 % network load at 100 %).
func DefaultConfig() Config {
	return Config{
		Duration:         10 * time.Minute,
		Tick:             100 * time.Millisecond,
		Clients:          1500,
		LoadScale:        1.0,
		BenchmarkClients: 40,
		Traffic:          trace.DefaultParams(),
		CircuitSetup:     500 * time.Millisecond,
		Seed:             1,
	}
}

// ClientsForUtilization returns the Markov-client count whose offered load
// is approximately targetUtil of the network's total capacity at LoadScale
// 1.0, estimated from a 50-client sample of the configured traffic model.
func ClientsForUtilization(relays []RelaySpec, cfg Config, targetUtil float64) int {
	const sample = 50
	pop := trace.Population(cfg.Traffic, sample, cfg.Seed+1000, cfg.Duration)
	perClient := trace.OfferedLoadBps(pop, cfg.Duration) / sample
	if perClient <= 0 {
		return 1
	}
	n := int(TotalCapacityBps(relays) * targetUtil / perClient)
	if n < 1 {
		n = 1
	}
	return n
}

// Result aggregates a run's client-visible metrics (Fig. 9).
type Result struct {
	// TTFBSeconds holds time-to-first-byte samples across all benchmark
	// transfers.
	TTFBSeconds []float64
	// TTLBSeconds maps benchmark label to time-to-last-byte samples of
	// completed transfers.
	TTLBSeconds map[string][]float64
	// BenchTransfers and BenchTimeouts count benchmark attempts and
	// failures; TimeoutRate is their ratio.
	BenchTransfers, BenchTimeouts int
	TimeoutRate                   float64
	// ThroughputBps is the per-second total relay forwarding rate
	// (Fig. 9c sums Tor throughput across relays).
	ThroughputBps []float64
	// ClientBytes counts total bytes delivered to Markov clients.
	ClientBytes float64
}

type transfer struct {
	path      [3]int
	remaining float64
	started   time.Duration
	firstByte time.Duration // -1 until set
	deadline  time.Duration // 0 = no deadline
	benchIdx  int           // size index; -1 for markov transfers
	owner     int           // benchmark client index; -1 for markov
	rate      float64
}

// benchClient is one benchmark client's state: it cycles through the
// three transfer sizes with a short think time between downloads.
type benchClient struct {
	next    time.Duration
	sizeIdx int
	busy    bool
}

// Run simulates the network under the given consensus weights.
func Run(cfg Config, relays []RelaySpec, weights []float64) (Result, error) {
	if len(relays) == 0 {
		return Result{}, errors.New("shadow: no relays")
	}
	if len(weights) != len(relays) {
		return Result{}, fmt.Errorf("shadow: %d weights for %d relays", len(weights), len(relays))
	}
	if cfg.Tick <= 0 || cfg.Duration <= 0 {
		return Result{}, errors.New("shadow: nonpositive duration or tick")
	}
	if cfg.LoadScale <= 0 {
		cfg.LoadScale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	picker, err := newWeightedPicker(weights)
	if err != nil {
		return Result{}, err
	}

	// Pre-generate Markov client streams.
	population := trace.Population(cfg.Traffic, cfg.Clients, cfg.Seed+1000, cfg.Duration)
	population = trace.Scale(population, cfg.LoadScale)
	type pending struct {
		start time.Duration
		bytes float64
	}
	var queue []pending
	for _, streams := range population {
		for _, s := range streams {
			queue = append(queue, pending{start: s.Start, bytes: s.Bytes})
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].start < queue[j].start })

	res := Result{TTLBSeconds: make(map[string][]float64)}
	capacities := make([]float64, len(relays))
	for i, r := range relays {
		capacities[i] = r.CapacityBps
	}

	active := make([]*transfer, 0, 1024)
	benchClients := make([]benchClient, cfg.BenchmarkClients)
	for i := range benchClients {
		benchClients[i].next = time.Duration(rng.Int63n(int64(5 * time.Second)))
	}

	ticks := int(cfg.Duration / cfg.Tick)
	dt := cfg.Tick.Seconds()
	perSecondBytes := 0.0
	secondMark := time.Duration(0)
	queueIdx := 0

	startTransfer := func(bytes float64, now time.Duration, benchIdx, owner int, deadline time.Duration) *transfer {
		tr := &transfer{
			remaining: bytes,
			started:   now,
			firstByte: -1,
			deadline:  deadline,
			benchIdx:  benchIdx,
			owner:     owner,
		}
		tr.path = picker.pickPath(rng)
		active = append(active, tr)
		return tr
	}
	releaseBench := func(owner int, now time.Duration) {
		benchClients[owner].busy = false
		benchClients[owner].next = now + time.Second + time.Duration(rng.Int63n(int64(time.Second)))
	}

	for tick := 0; tick < ticks; tick++ {
		now := time.Duration(tick) * cfg.Tick

		// Admit Markov streams that have started.
		for queueIdx < len(queue) && queue[queueIdx].start <= now {
			startTransfer(queue[queueIdx].bytes, now, -1, -1, 0)
			queueIdx++
		}
		// Drive benchmark clients.
		for i := range benchClients {
			bc := &benchClients[i]
			if !bc.busy && now >= bc.next {
				idx := bc.sizeIdx % len(benchSpecs)
				spec := benchSpecs[idx]
				startTransfer(spec.bytes, now, idx, i, now+spec.timeout)
				bc.busy = true
				bc.sizeIdx++
				res.BenchTransfers++
			}
		}

		assignRates(active, capacities, cfg.CircuitSetup, now)

		// Deliver bytes, collect completions and timeouts.
		var delivered float64
		keep := active[:0]
		for _, tr := range active {
			if tr.rate > 0 {
				chunk := tr.rate / 8 * dt
				if chunk > tr.remaining {
					chunk = tr.remaining
				}
				if chunk > 0 && tr.firstByte < 0 {
					tr.firstByte = now + cfg.Tick
				}
				tr.remaining -= chunk
				delivered += chunk
				if tr.benchIdx < 0 {
					res.ClientBytes += chunk
				}
			}
			switch {
			case tr.remaining <= 0:
				if tr.benchIdx >= 0 {
					spec := benchSpecs[tr.benchIdx]
					res.TTLBSeconds[spec.label] = append(res.TTLBSeconds[spec.label], (now + cfg.Tick - tr.started).Seconds())
					if tr.firstByte >= 0 {
						res.TTFBSeconds = append(res.TTFBSeconds, (tr.firstByte - tr.started).Seconds())
					}
					releaseBench(tr.owner, now)
				}
			case tr.deadline > 0 && now >= tr.deadline:
				res.BenchTimeouts++
				releaseBench(tr.owner, now)
			default:
				keep = append(keep, tr)
			}
		}
		active = keep

		perSecondBytes += delivered
		if now+cfg.Tick-secondMark >= time.Second {
			// Tor throughput counts forwarded traffic at each of the
			// three relays (Fig. 9c sums over relays).
			res.ThroughputBps = append(res.ThroughputBps, perSecondBytes*8*3)
			perSecondBytes = 0
			secondMark = now + cfg.Tick
		}
	}
	if res.BenchTransfers > 0 {
		res.TimeoutRate = float64(res.BenchTimeouts) / float64(res.BenchTransfers)
	}
	return res, nil
}

// assignRates water-fills transfer rates over relay capacities: start from
// the bottleneck fair share min_r cap_r/n_r, then redistribute slack twice,
// and finally clamp to feasibility so no relay exceeds its capacity.
func assignRates(active []*transfer, capacities []float64, setup time.Duration, now time.Duration) {
	counts := make([]int, len(capacities))
	for _, tr := range active {
		if now-tr.started < setup {
			tr.rate = 0 // circuit still building
			continue
		}
		for _, r := range tr.path {
			counts[r]++
		}
	}
	// Pass 1: bottleneck fair share.
	for _, tr := range active {
		if now-tr.started < setup {
			continue
		}
		rate := math.Inf(1)
		for _, r := range tr.path {
			share := capacities[r] / float64(counts[r])
			if share < rate {
				rate = share
			}
		}
		tr.rate = rate
	}
	// Pass 2: scale up by the least-loaded relay's headroom.
	util := make([]float64, len(capacities))
	for _, tr := range active {
		for _, r := range tr.path {
			util[r] += tr.rate
		}
	}
	for _, tr := range active {
		if tr.rate == 0 {
			continue
		}
		factor := math.Inf(1)
		for _, r := range tr.path {
			if util[r] > 0 {
				f := capacities[r] / util[r]
				if f < factor {
					factor = f
				}
			}
		}
		if factor > 1 && !math.IsInf(factor, 1) {
			tr.rate *= factor
		}
	}
	// Feasibility clamp.
	for i := range util {
		util[i] = 0
	}
	for _, tr := range active {
		for _, r := range tr.path {
			util[r] += tr.rate
		}
	}
	for _, tr := range active {
		if tr.rate == 0 {
			continue
		}
		scale := 1.0
		for _, r := range tr.path {
			if util[r] > capacities[r] {
				s := capacities[r] / util[r]
				if s < scale {
					scale = s
				}
			}
		}
		tr.rate *= scale
	}
}

// weightedPicker samples relays proportionally to consensus weight.
type weightedPicker struct {
	cumulative []float64
	total      float64
}

func newWeightedPicker(weights []float64) (*weightedPicker, error) {
	p := &weightedPicker{cumulative: make([]float64, len(weights))}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("shadow: negative weight at %d", i)
		}
		p.total += w
		p.cumulative[i] = p.total
	}
	if p.total <= 0 {
		return nil, errors.New("shadow: all weights zero")
	}
	return p, nil
}

func (p *weightedPicker) pick(rng *rand.Rand) int {
	x := rng.Float64() * p.total
	return sort.SearchFloat64s(p.cumulative, x)
}

// pickPath selects three distinct relays (guard, middle, exit).
func (p *weightedPicker) pickPath(rng *rand.Rand) [3]int {
	var path [3]int
	for i := 0; i < 3; i++ {
		for tries := 0; ; tries++ {
			r := p.pick(rng)
			dup := false
			for j := 0; j < i; j++ {
				if path[j] == r {
					dup = true
					break
				}
			}
			if !dup || tries > 16 {
				path[i] = r
				break
			}
		}
	}
	return path
}
