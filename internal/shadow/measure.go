package shadow

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
	"flashflow/internal/torflow"
)

// ConcurrencySigma is the lognormal spread of a relay's effective capacity
// during its measurement slot in the full-network Shadow setting: relays
// are measured concurrently with each other and with live client traffic,
// so the capacity a slot demonstrates deviates from the configured one.
// 0.18 reproduces Fig. 8a's ≈16 % median per-relay capacity error.
const ConcurrencySigma = 0.18

// MeasureWithFlashFlow runs the full FlashFlow pipeline against the relay
// population using the §7 setup — 3 measurers with 1 Gbit/s each — and
// returns per-relay capacity-estimate weights (FlashFlow reports capacity
// as the weight).
func MeasureWithFlashFlow(ctx context.Context, relays []RelaySpec, seed int64) ([]float64, error) {
	paths := []core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.06, JitterSigma: 0.03},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.06, JitterSigma: 0.03},
		{RTT: 140 * time.Millisecond, LinkBps: 1e9, BiasSigma: 0.06, JitterSigma: 0.03},
	}
	backend := core.NewSimBackend(paths, seed)
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
		{Name: "m3", CapacityBps: 1e9, Cores: 4},
	}
	p := core.DefaultParams()
	auth := core.NewBWAuth("ff", team, backend, p)
	rng := rand.New(rand.NewSource(seed + 7))
	names := make([]string, len(relays))
	for i, r := range relays {
		names[i] = r.Name
		// Effective capacity during the slot: perturbed by concurrent
		// measurements and client traffic sharing the simulated links.
		effective := r.CapacityBps * math.Exp(rng.NormFloat64()*ConcurrencySigma)
		backend.AddTarget(r.Name, &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: r.Name, TorCapBps: effective}),
			LinkBps:  1e9,
			Behavior: core.BehaviorHonest,
		})
		// Seed with the advertised bandwidth as the prior — FlashFlow's
		// first period uses whatever estimate exists.
		auth.SetEstimate(r.Name, r.AdvertisedBps)
	}
	weights := make([]float64, len(relays))
	for i, name := range names {
		out, err := auth.MeasureTarget(ctx, name)
		if err != nil {
			return nil, fmt.Errorf("flashflow measure %s: %w", name, err)
		}
		weights[i] = out.EstimateBps
	}
	return weights, nil
}

// MeasureWithTorFlow runs the TorFlow baseline over the same population
// and returns its weights.
func MeasureWithTorFlow(relays []RelaySpec, seed int64) ([]float64, error) {
	states := make([]torflow.RelayState, len(relays))
	for i, r := range relays {
		states[i] = torflow.RelayState{
			Name:            r.Name,
			AdvertisedBps:   r.AdvertisedBps,
			CapacityBps:     r.CapacityBps,
			UtilizationFrac: r.UtilizationFrac,
		}
	}
	scanner := torflow.NewScanner(torflow.DefaultScannerConfig(seed))
	res, err := scanner.Scan(states)
	if err != nil {
		return nil, err
	}
	return res.WeightBps, nil
}

// ErrorReport carries the Fig. 8 metrics for one system.
type ErrorReport struct {
	// RelayCapacityError holds per-relay |z−cap|/cap (Eq. 2's magnitude;
	// Fig. 8a). Empty for systems without capacity estimates.
	RelayCapacityError []float64
	// NetworkCapacityError is Eq. 3 weighted by magnitude.
	NetworkCapacityError float64
	// RelayWeightError holds per-relay log10(W̄/C̄) (Fig. 8b).
	RelayWeightErrorLog10 []float64
	// NetworkWeightError is Eq. 6.
	NetworkWeightError float64
}

// AnalyzeErrors computes the Fig. 8 metrics for a weight vector against
// the true capacities. If weights are capacity estimates (FlashFlow),
// capacity errors are included; pass capEstimates=nil for weights-only
// systems (TorFlow).
func AnalyzeErrors(relays []RelaySpec, weights, capEstimates []float64) ErrorReport {
	caps := make([]float64, len(relays))
	for i, r := range relays {
		caps[i] = r.CapacityBps
	}
	rep := ErrorReport{}
	if capEstimates != nil {
		rep.RelayCapacityError = make([]float64, len(relays))
		var absErrSum, capSum float64
		for i := range relays {
			rep.RelayCapacityError[i] = math.Abs(capEstimates[i]-caps[i]) / caps[i]
			absErrSum += math.Abs(capEstimates[i] - caps[i])
			capSum += caps[i]
		}
		rep.NetworkCapacityError = absErrSum / capSum
	}
	wNorm := stats.Normalize(weights)
	cNorm := stats.Normalize(caps)
	rep.RelayWeightErrorLog10 = make([]float64, len(relays))
	for i := range relays {
		if wNorm[i] > 0 && cNorm[i] > 0 {
			rep.RelayWeightErrorLog10[i] = math.Log10(wNorm[i] / cNorm[i])
		}
	}
	rep.NetworkWeightError = stats.TotalVariationDistance(wNorm, cNorm)
	return rep
}
