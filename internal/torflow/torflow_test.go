package torflow

import (
	"fmt"
	"math"
	"testing"
	"time"

	"flashflow/internal/stats"
)

func honestNetwork(n int, seedCap float64) []RelayState {
	relays := make([]RelayState, n)
	for i := range relays {
		capBps := seedCap * (1 + float64(i%17))
		relays[i] = RelayState{
			Name:            fmt.Sprintf("r%03d", i),
			CapacityBps:     capBps,
			AdvertisedBps:   capBps * 0.6, // chronic under-estimation (§3)
			UtilizationFrac: 0.5,
		}
	}
	return relays
}

func TestScanProducesWeights(t *testing.T) {
	s := NewScanner(DefaultScannerConfig(1))
	relays := honestNetwork(50, 10e6)
	res, err := s.Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeightBps) != 50 || len(res.SpeedBps) != 50 {
		t.Fatalf("result sizes: %d %d", len(res.WeightBps), len(res.SpeedBps))
	}
	for i, w := range res.WeightBps {
		if w <= 0 {
			t.Fatalf("relay %d weight nonpositive: %v", i, w)
		}
	}
}

func TestScanEmpty(t *testing.T) {
	s := NewScanner(DefaultScannerConfig(1))
	if _, err := s.Scan(nil); err == nil {
		t.Fatal("empty scan should error")
	}
}

func TestScanDeterministicPerSeed(t *testing.T) {
	relays := honestNetwork(20, 10e6)
	r1, err := NewScanner(DefaultScannerConfig(7)).Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewScanner(DefaultScannerConfig(7)).Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.WeightBps {
		if r1.WeightBps[i] != r2.WeightBps[i] {
			t.Fatal("scan not deterministic")
		}
	}
}

func TestWeightsTrackCapacityOnAverage(t *testing.T) {
	// Honest network with uniform utilization: faster relays should get
	// larger weights (rank correlation, not exact proportionality).
	s := NewScanner(DefaultScannerConfig(3))
	relays := honestNetwork(100, 5e6)
	res, err := s.Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	// Compare mean weight of the top capacity quartile vs bottom.
	type pair struct{ capBps, w float64 }
	ps := make([]pair, len(relays))
	for i := range relays {
		ps[i] = pair{relays[i].CapacityBps, res.WeightBps[i]}
	}
	var topW, botW []float64
	for _, p := range ps {
		if p.capBps >= 14*5e6 {
			topW = append(topW, p.w)
		} else if p.capBps <= 4*5e6 {
			botW = append(botW, p.w)
		}
	}
	if stats.Mean(topW) <= stats.Mean(botW) {
		t.Fatal("fast relays should out-weigh slow relays on average")
	}
}

func TestUtilizationDepressesMeasuredSpeed(t *testing.T) {
	s := NewScanner(ScannerConfig{Probes: 50, NoiseSigma: 0, Seed: 1})
	idle := RelayState{Name: "idle", CapacityBps: 100e6, UtilizationFrac: 0}
	busy := RelayState{Name: "busy", CapacityBps: 100e6, UtilizationFrac: 0.9}
	partner := RelayState{Name: "p", CapacityBps: 1e9, UtilizationFrac: 0}
	if s.MeasuredSpeed(idle, partner) <= s.MeasuredSpeed(busy, partner) {
		t.Fatal("busy relay should measure slower")
	}
}

func TestPartnerBottleneck(t *testing.T) {
	s := NewScanner(ScannerConfig{Probes: 1, NoiseSigma: 0, Seed: 1})
	r := RelayState{Name: "r", CapacityBps: 1e9, UtilizationFrac: 0}
	slowPartner := RelayState{Name: "q", CapacityBps: 10e6, UtilizationFrac: 0}
	if got := s.MeasuredSpeed(r, slowPartner); got > 10e6 {
		t.Fatalf("partner should bottleneck the probe: %v", got)
	}
}

func TestAttackAdvantageLargeInflation(t *testing.T) {
	// Table 2: TorFlow's demonstrated attack advantage is ~177×. Our
	// model should show the same order of magnitude for a large lie.
	s := NewScanner(DefaultScannerConfig(5))
	honest := honestNetwork(200, 10e6)
	attacker := RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}
	adv, err := s.AttackAdvantage(honest, attacker, 500)
	if err != nil {
		t.Fatal(err)
	}
	if adv < 50 {
		t.Fatalf("attack advantage too small: %v (TorFlow is badly inflatable)", adv)
	}
}

func TestAttackAdvantageScalesWithLie(t *testing.T) {
	s1 := NewScanner(DefaultScannerConfig(5))
	s2 := NewScanner(DefaultScannerConfig(5))
	honest := honestNetwork(200, 10e6)
	attacker := RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}
	small, err := s1.AttackAdvantage(honest, attacker, 10)
	if err != nil {
		t.Fatal(err)
	}
	large, err := s2.AttackAdvantage(honest, attacker, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("bigger lies should pay more: %v vs %v", small, large)
	}
}

func TestAttackAdvantageZeroCapacityAttacker(t *testing.T) {
	s := NewScanner(DefaultScannerConfig(5))
	honest := honestNetwork(10, 10e6)
	if _, err := s.AttackAdvantage(honest, RelayState{Name: "z"}, 10); err == nil {
		t.Fatal("zero-capacity attacker should error")
	}
}

func TestBandwidthFileWeightsOnly(t *testing.T) {
	s := NewScanner(DefaultScannerConfig(2))
	relays := honestNetwork(5, 10e6)
	res, err := s.Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	f := s.BandwidthFile(time.Hour, relays, res)
	if len(f.Entries) != 5 {
		t.Fatalf("entries: %d", len(f.Entries))
	}
	for name, e := range f.Entries {
		if e.CapacityBps != 0 {
			t.Fatalf("TorFlow must not report capacities (%s: %v)", name, e.CapacityBps)
		}
		if e.WeightBps <= 0 {
			t.Fatalf("weight nonpositive for %s", name)
		}
	}
}

func TestWeightErrorWorseThanPerfect(t *testing.T) {
	// TorFlow weights over an honest network should show substantial
	// network weight error versus true capacities (§3: 15–25 %).
	s := NewScanner(DefaultScannerConfig(9))
	relays := honestNetwork(300, 5e6)
	// Heterogeneous utilization exacerbates error.
	for i := range relays {
		relays[i].UtilizationFrac = 0.2 + 0.6*float64(i%10)/10
		relays[i].AdvertisedBps = relays[i].CapacityBps * (0.4 + 0.5*float64((i*7)%10)/10)
	}
	res, err := s.Scan(relays)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, len(relays))
	for i := range relays {
		caps[i] = relays[i].CapacityBps
	}
	nwe := stats.TotalVariationDistance(stats.Normalize(res.WeightBps), stats.Normalize(caps))
	if nwe < 0.05 {
		t.Fatalf("TorFlow NWE unrealistically low: %v", nwe)
	}
	if nwe > 0.6 {
		t.Fatalf("TorFlow NWE unrealistically high: %v", nwe)
	}
	if math.IsNaN(nwe) {
		t.Fatal("NWE is NaN")
	}
}
