// Package torflow implements the TorFlow baseline (§2, [30]): the
// load-balancing system FlashFlow is evaluated against. TorFlow combines
// relays' self-reported advertised bandwidths with active 2-hop download
// measurements, producing weight = advertised × (speed / mean speed).
//
// Two properties of TorFlow matter for the paper's comparison and are
// modelled faithfully:
//
//  1. it trusts relay self-reports, so a malicious relay inflates its
//     weight almost arbitrarily (89–177× demonstrated in prior work);
//  2. its active measurements ride on shared circuits and client load, so
//     even honest weights are noisy and systematically under-weight
//     under-utilized relays (§3's 15–25 % network weight error).
package torflow

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"flashflow/internal/dirauth"
	"flashflow/internal/stats"
)

// RelayState is TorFlow's view of one relay.
type RelayState struct {
	Name string
	// AdvertisedBps is the self-reported advertised bandwidth — trusted
	// by TorFlow (the root vulnerability).
	AdvertisedBps float64
	// CapacityBps is the relay's true capacity (used by the measurement
	// model, unknown to TorFlow).
	CapacityBps float64
	// UtilizationFrac is the relay's current load fraction; busy relays
	// measure slower.
	UtilizationFrac float64
	// Malicious relays throttle client traffic but reserve capacity for
	// measurement circuits, which they can detect (§1, [25, 36]).
	Malicious bool
}

// ScannerConfig tunes the measurement model.
type ScannerConfig struct {
	// Probes per relay; TorFlow downloads one of 13 fixed-size files per
	// probe circuit.
	Probes int
	// NoiseSigma is the lognormal sigma of per-probe multiplicative noise
	// (partner relay speed, client congestion).
	NoiseSigma float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// DefaultScannerConfig returns the model defaults.
func DefaultScannerConfig(seed int64) ScannerConfig {
	return ScannerConfig{Probes: 4, NoiseSigma: 0.55, Seed: seed}
}

// Scanner runs TorFlow measurements.
type Scanner struct {
	cfg ScannerConfig
	rng *rand.Rand
}

// NewScanner creates a scanner.
func NewScanner(cfg ScannerConfig) *Scanner {
	if cfg.Probes <= 0 {
		cfg.Probes = 4
	}
	return &Scanner{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// ErrNoRelays is returned for an empty relay set.
var ErrNoRelays = errors.New("torflow: no relays to scan")

// MeasuredSpeed models one active download through a relay: the free share
// of the relay's capacity divided among the probe circuit and existing
// load, jittered by partner-relay and path noise. A malicious relay
// detects the measurement circuit and gives it full capacity.
func (s *Scanner) MeasuredSpeed(r RelayState, partner RelayState) float64 {
	free := func(x RelayState) float64 {
		if x.Malicious {
			// Reserves everything for the (detectable) measurement.
			return x.CapacityBps
		}
		u := x.UtilizationFrac
		if u < 0 {
			u = 0
		}
		if u > 0.95 {
			u = 0.95
		}
		return x.CapacityBps * (1 - u)
	}
	speed := math.Min(free(r), free(partner))
	noise := math.Exp(s.rng.NormFloat64() * s.cfg.NoiseSigma)
	return speed * noise
}

// ScanResult carries a full TorFlow pass.
type ScanResult struct {
	// SpeedBps is each relay's mean measured speed, index-aligned with
	// the input.
	SpeedBps []float64
	// WeightBps is the final per-relay weight:
	// advertised × speed/meanSpeed.
	WeightBps []float64
}

// Scan measures every relay and computes weights (§2's TorFlow pipeline).
func (s *Scanner) Scan(relays []RelayState) (ScanResult, error) {
	if len(relays) == 0 {
		return ScanResult{}, ErrNoRelays
	}
	res := ScanResult{
		SpeedBps:  make([]float64, len(relays)),
		WeightBps: make([]float64, len(relays)),
	}
	for i, r := range relays {
		var sum float64
		for k := 0; k < s.cfg.Probes; k++ {
			partner := relays[s.rng.Intn(len(relays))]
			sum += s.MeasuredSpeed(r, partner)
		}
		res.SpeedBps[i] = sum / float64(s.cfg.Probes)
	}
	mean := stats.Mean(res.SpeedBps)
	if mean <= 0 {
		return res, errors.New("torflow: degenerate mean speed")
	}
	for i, r := range relays {
		res.WeightBps[i] = r.AdvertisedBps * (res.SpeedBps[i] / mean)
	}
	return res, nil
}

// BandwidthFile exports a scan as a weights-only bandwidth file (TorFlow
// provides no capacity values — Table 2).
func (s *Scanner) BandwidthFile(at time.Duration, relays []RelayState, res ScanResult) *dirauth.BandwidthFile {
	f := dirauth.NewBandwidthFile("torflow", at)
	for i, r := range relays {
		f.Set(r.Name, res.WeightBps[i], 0)
	}
	return f
}

// AttackAdvantage quantifies the self-report inflation attack: a malicious
// relay multiplies its advertised bandwidth by lieFactor and reserves all
// capacity for measurement circuits. It returns the factor by which the
// relay's normalized weight exceeds its fair (capacity-proportional)
// share. Prior work demonstrated 89–177× (§8, Table 2).
func (s *Scanner) AttackAdvantage(honest []RelayState, attacker RelayState, lieFactor float64) (float64, error) {
	mal := attacker
	mal.Malicious = true
	mal.AdvertisedBps = attacker.CapacityBps * lieFactor
	all := append(append([]RelayState(nil), honest...), mal)
	res, err := s.Scan(all)
	if err != nil {
		return 0, err
	}
	totalW := stats.Sum(res.WeightBps)
	wFrac := res.WeightBps[len(all)-1] / totalW

	var totalCap float64
	for _, r := range all {
		totalCap += r.CapacityBps
	}
	fairFrac := attacker.CapacityBps / totalCap
	if fairFrac == 0 {
		return 0, errors.New("torflow: attacker with zero capacity")
	}
	return wFrac / fairFrac, nil
}
