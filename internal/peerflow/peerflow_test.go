package peerflow

import (
	"fmt"
	"testing"

	"flashflow/internal/stats"
)

func honestNetwork(n int) []Relay {
	relays := make([]Relay, n)
	for i := range relays {
		capBps := 10e6 * float64(1+i%12)
		relays[i] = Relay{
			Name:        fmt.Sprintf("r%03d", i),
			CapacityBps: capBps,
			WeightBps:   capBps * 0.8,
			Trusted:     i%5 == 0, // 20% trusted by number and roughly by weight
		}
	}
	return relays
}

func TestComputeWeightsHonest(t *testing.T) {
	relays := honestNetwork(60)
	cfg := DefaultConfig(1)
	reports := TrafficReports(relays, 24*3600, cfg)
	weights, err := ComputeWeights(relays, reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 60 {
		t.Fatalf("weights: %d", len(weights))
	}
	for i, w := range weights {
		if w < 0 {
			t.Fatalf("negative weight at %d: %v", i, w)
		}
	}
}

func TestWeightsTrackCapacity(t *testing.T) {
	relays := honestNetwork(60)
	cfg := DefaultConfig(2)
	reports := TrafficReports(relays, 24*3600, cfg)
	weights, err := ComputeWeights(relays, reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	norm := stats.Normalize(weights)
	var fast, slow []float64
	for i, r := range relays {
		switch {
		case r.CapacityBps >= 10e6*10:
			fast = append(fast, norm[i])
		case r.CapacityBps <= 10e6*3:
			slow = append(slow, norm[i])
		}
	}
	if stats.Mean(fast) <= stats.Mean(slow) {
		t.Fatal("faster relays should receive larger weights")
	}
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig(3)
	if _, err := ComputeWeights(nil, nil, cfg); err != ErrNoRelays {
		t.Fatalf("want ErrNoRelays, got %v", err)
	}
	relays := honestNetwork(5)
	for i := range relays {
		relays[i].Trusted = false
	}
	reports := TrafficReports(relays, 3600, cfg)
	if _, err := ComputeWeights(relays, reports, cfg); err != ErrNoTrustWeight {
		t.Fatalf("want ErrNoTrustWeight, got %v", err)
	}
}

func TestGrowthCapBoundsInflation(t *testing.T) {
	// The coalition's per-period inflation is bounded: its weight can at
	// most grow by GrowthCap relative to its previous (fair) weight, no
	// matter how large the lie — the Table 2 "10×" property class.
	honest := honestNetwork(100)
	cfg := DefaultConfig(4)
	adv, err := AttackAdvantage(honest, 5, 10e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fair weight ≈ capacity share, previous weight = capacity, growth
	// cap 4.5 → advantage cannot exceed ≈ GrowthCap × (weight/capacity
	// normalization slack). Allow 3× slack for aggregation effects.
	if adv > cfg.GrowthCap*3 {
		t.Fatalf("advantage %v exceeds growth-cap regime (cap %v)", adv, cfg.GrowthCap)
	}
	if adv <= 0 {
		t.Fatalf("nonpositive advantage: %v", adv)
	}
}

func TestLyingDoesNotHelpBeyondCap(t *testing.T) {
	honest := honestNetwork(100)
	small := DefaultConfig(5)
	small.LieFactor = 10
	large := DefaultConfig(5)
	large.LieFactor = 1e6
	a1, err := AttackAdvantage(honest, 5, 10e6, small)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AttackAdvantage(honest, 5, 10e6, large)
	if err != nil {
		t.Fatal(err)
	}
	// The trusted-median + growth cap make enormous lies no better than
	// moderate ones (within noise).
	if a2 > a1*1.5+1 {
		t.Fatalf("massive lies should not scale the advantage: %v vs %v", a1, a2)
	}
}

func TestPeerFlowSlowerThanFlashFlow(t *testing.T) {
	// Convergence property behind Table 2's "14 days+": starting from a
	// tiny weight, the growth cap needs several periods to reach a fast
	// relay's fair weight.
	const trueCap = 500e6
	weight := 1e6
	periods := 0
	cfg := DefaultConfig(6)
	for weight < trueCap && periods < 100 {
		weight *= cfg.GrowthCap
		periods++
	}
	if periods < 3 {
		t.Fatalf("growth cap should require multiple periods, got %d", periods)
	}
}

func TestAttackAdvantageZeroCapacity(t *testing.T) {
	if _, err := AttackAdvantage(honestNetwork(10), 2, 0, DefaultConfig(7)); err == nil {
		t.Fatal("zero-capacity attacker should error")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	honest := honestNetwork(40)
	a1, err := AttackAdvantage(honest, 3, 10e6, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AttackAdvantage(honest, 3, 10e6, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("attack advantage not deterministic")
	}
}
