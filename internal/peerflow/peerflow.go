// Package peerflow implements the PeerFlow baseline (Johnson et al. [25],
// as compared in the paper's §8 and Table 2): relays periodically report
// the total bytes they exchanged with each other relay, and the directory
// authorities aggregate those reports into weights using a
// trusted-weight-fraction robust statistic, additionally limiting how fast
// any relay's weight can grow between periods.
//
// Table 2's properties reproduced here: no dedicated measurement servers,
// capacity lower bounds inferred from traffic, weights take much longer to
// converge (the growth cap), and a malicious relay's inflation is bounded
// by roughly 2/τ for trusted fraction τ (≈10× at the paper's settings).
package peerflow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flashflow/internal/stats"
)

// Relay is one participant.
type Relay struct {
	Name        string
	CapacityBps float64
	// WeightBps is the current consensus weight (previous period).
	WeightBps float64
	// Trusted relays' reports anchor the robust aggregation.
	Trusted bool
	// Malicious relays inflate reports about coalition members.
	Malicious bool
}

// Config tunes the model.
type Config struct {
	// UtilFrac is the mean fraction of capacity carried as relayed
	// traffic during a measurement period.
	UtilFrac float64
	// NoiseSigma jitters pairwise traffic totals.
	NoiseSigma float64
	// LieFactor is the inflation malicious relays apply to reports about
	// coalition members.
	LieFactor float64
	// GrowthCap bounds weight growth per period (PeerFlow's λ; the paper
	// derives a per-period inflation factor of 4.5 from the suggested
	// parameters).
	GrowthCap float64
	// Seed drives the RNG.
	Seed int64
}

// DefaultConfig returns the model defaults.
func DefaultConfig(seed int64) Config {
	return Config{UtilFrac: 0.5, NoiseSigma: 0.2, LieFactor: 1000, GrowthCap: 4.5, Seed: seed}
}

// Errors.
var (
	ErrNoRelays      = errors.New("peerflow: no relays")
	ErrNoTrustWeight = errors.New("peerflow: no trusted weight")
)

// TrafficReports builds the per-pair byte reports for one period.
// reports[i][j] is relay i's claim about bytes exchanged with relay j.
// Honest traffic between i and j is proportional to the product of their
// weights (clients pick circuits by weight) bounded by both capacities.
func TrafficReports(relays []Relay, periodSeconds float64, cfg Config) [][]float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(relays)
	var totalW float64
	for _, r := range relays {
		totalW += r.WeightBps
	}
	reports := make([][]float64, n)
	for i := range reports {
		reports[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairShare := 0.0
			if totalW > 0 {
				pairShare = (relays[i].WeightBps / totalW) * (relays[j].WeightBps / totalW)
			}
			carried := math.Min(relays[i].CapacityBps, relays[j].CapacityBps) * cfg.UtilFrac
			honest := carried * pairShare * periodSeconds / 8 * 100 // bytes, ×100: pair traffic share scale
			noise := math.Exp(rng.NormFloat64() * cfg.NoiseSigma)
			honest *= noise
			reports[i][j] = honest
			reports[j][i] = honest
			// Coalition members corroborate each other's inflated totals.
			if relays[i].Malicious && relays[j].Malicious {
				reports[i][j] *= cfg.LieFactor
				reports[j][i] *= cfg.LieFactor
			}
		}
	}
	return reports
}

// ComputeWeights aggregates reports into next-period weights: relay r's
// measured traffic is the τ-trimmed statistic over its peers' claims about
// r, weighted by the reporting peers' trust; growth beyond GrowthCap×old
// weight is clamped (PeerFlow's inflation limiter).
func ComputeWeights(relays []Relay, reports [][]float64, cfg Config) ([]float64, error) {
	n := len(relays)
	if n == 0 {
		return nil, ErrNoRelays
	}
	var trustedWeight float64
	for _, r := range relays {
		if r.Trusted {
			trustedWeight += r.WeightBps
		}
	}
	if trustedWeight <= 0 {
		return nil, ErrNoTrustWeight
	}
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		// Collect peers' claims about relay j, trusted peers first. The
		// robust statistic: the weight-median over trusted reporters; a
		// relay cannot out-vote the trusted set about its own traffic.
		type claim struct {
			bytes  float64
			weight float64
		}
		var claims []claim
		for i := 0; i < n; i++ {
			if i == j || !relays[i].Trusted {
				continue
			}
			claims = append(claims, claim{bytes: reports[i][j], weight: relays[i].WeightBps})
		}
		if len(claims) == 0 {
			out[j] = relays[j].WeightBps
			continue
		}
		sort.Slice(claims, func(a, b int) bool { return claims[a].bytes < claims[b].bytes })
		var cum, half float64
		for _, c := range claims {
			half += c.weight
		}
		half /= 2
		med := claims[len(claims)-1].bytes
		for _, c := range claims {
			cum += c.weight
			if cum >= half {
				med = c.bytes
				break
			}
		}
		// Scale the per-peer median back to a rate-like weight. The total
		// over trusted peers approximates the relay's carried traffic.
		estimate := med * float64(n-1)
		// Growth cap.
		if old := relays[j].WeightBps; old > 0 && estimate > cfg.GrowthCap*old {
			estimate = cfg.GrowthCap * old
		}
		out[j] = estimate
	}
	return out, nil
}

// AttackAdvantage runs one period with a malicious coalition and returns
// the factor by which the coalition's normalized weight exceeds its fair
// capacity share.
func AttackAdvantage(honest []Relay, nMalicious int, attackerCapBps float64, cfg Config) (float64, error) {
	all := append([]Relay(nil), honest...)
	for i := 0; i < nMalicious; i++ {
		all = append(all, Relay{
			Name:        fmt.Sprintf("evil%02d", i),
			CapacityBps: attackerCapBps,
			WeightBps:   attackerCapBps,
			Malicious:   true,
		})
	}
	reports := TrafficReports(all, 24*3600, cfg)
	weights, err := ComputeWeights(all, reports, cfg)
	if err != nil {
		return 0, err
	}
	norm := stats.Normalize(weights)
	var evilFrac, evilCap, totalCap float64
	for i, r := range all {
		totalCap += r.CapacityBps
		if r.Malicious {
			evilFrac += norm[i]
			evilCap += r.CapacityBps
		}
	}
	if evilCap == 0 {
		return 0, errors.New("peerflow: attacker with zero capacity")
	}
	return evilFrac / (evilCap / totalCap), nil
}
