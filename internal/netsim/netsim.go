// Package netsim is a flow-level network simulator. It stands in for both
// the live Internet (the paper's §6 vantage-point experiments) and the
// Shadow discrete-event simulator (the paper's §7 experiments).
//
// The model: traffic is a set of fluid flows, each traversing an ordered
// set of capacity-limited resources (host uplinks, host downlinks, relay
// forwarding capacity, rate limiters). Rates are assigned by progressive
// filling, yielding the max-min fair allocation subject to optional
// per-flow caps (TCP window/RTT limits, application rate limits). Time
// advances in fixed ticks; per-tick throughput series are recorded, which
// is exactly the granularity FlashFlow consumes (per-second byte counts,
// §4.1).
//
// This reproduces the effects the paper's experiments depend on — capacity
// sharing, bottleneck location, socket-count limits — without packet-level
// detail that would not change who wins or where crossovers fall.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Resource is a capacity-limited element of the network (a link direction,
// a relay's forwarding capacity, a configured rate limit).
type Resource struct {
	Name        string
	CapacityBps float64

	// throughput accounting for the current tick.
	allocatedBps float64
}

// NewResource creates a resource with the given capacity in bits/second.
func NewResource(name string, capacityBps float64) *Resource {
	return &Resource{Name: name, CapacityBps: capacityBps}
}

// AllocatedBps returns the total rate allocated across this resource in the
// most recent allocation.
func (r *Resource) AllocatedBps() float64 { return r.allocatedBps }

// FlowID identifies a flow within a Network.
type FlowID int

// Flow is a unidirectional fluid flow across a set of resources.
type Flow struct {
	ID    FlowID
	Label string
	// Path is the set of resources the flow consumes capacity on.
	Path []*Resource
	// CapBps optionally caps the flow's rate (e.g. TCP window/RTT).
	// Zero means uncapped.
	CapBps float64
	// RateBps is the current allocated rate (output of Allocate).
	RateBps float64
	// Bytes is the cumulative bytes delivered.
	Bytes float64
	// OnTick, if set, is invoked after each tick with the bytes delivered
	// during that tick.
	OnTick func(tick int, bytes float64)

	// DemandBps optionally caps the rate by application demand; zero
	// means the application always has data to send (a greedy flow).
	DemandBps float64
}

// effectiveCap combines CapBps and DemandBps; zero means unbounded.
func (f *Flow) effectiveCap() float64 {
	c := f.CapBps
	if f.DemandBps > 0 && (c == 0 || f.DemandBps < c) {
		c = f.DemandBps
	}
	return c
}

// Network holds resources and flows and performs rate allocation.
type Network struct {
	flows  map[FlowID]*Flow
	nextID FlowID
	now    time.Duration
	tick   time.Duration
	ticks  int
}

// ErrNoSuchFlow is returned when operating on an unknown flow ID.
var ErrNoSuchFlow = errors.New("netsim: no such flow")

// New creates an empty network with the given tick length. A tick of one
// second matches the paper's per-second reporting; smaller ticks are used
// by the Shadow-like simulation.
func New(tick time.Duration) *Network {
	if tick <= 0 {
		tick = time.Second
	}
	return &Network{flows: make(map[FlowID]*Flow), tick: tick}
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.now }

// Tick returns the tick length.
func (n *Network) Tick() time.Duration { return n.tick }

// Ticks returns the number of ticks that have elapsed.
func (n *Network) Ticks() int { return n.ticks }

// AddFlow registers a flow over the given path and returns it. A nil or
// empty path is allowed (the flow is then only limited by its caps).
func (n *Network) AddFlow(label string, path []*Resource, capBps float64) *Flow {
	n.nextID++
	f := &Flow{ID: n.nextID, Label: label, Path: path, CapBps: capBps}
	n.flows[f.ID] = f
	return f
}

// RemoveFlow removes a flow from the network.
func (n *Network) RemoveFlow(id FlowID) error {
	if _, ok := n.flows[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchFlow, id)
	}
	delete(n.flows, id)
	return nil
}

// NumFlows returns the number of registered flows.
func (n *Network) NumFlows() int { return len(n.flows) }

// uniquePath returns f.Path with duplicate resources removed, so that a
// flow consumes each resource's capacity once even if listed twice.
func uniquePath(f *Flow) []*Resource {
	if len(f.Path) <= 1 {
		return f.Path
	}
	out := make([]*Resource, 0, len(f.Path))
	seen := make(map[*Resource]bool, len(f.Path))
	for _, r := range f.Path {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Allocate computes the max-min fair allocation over all flows by
// progressive filling: all unfrozen flows share a common rate level that is
// raised until either a flow's cap binds (freeze it at the cap) or a
// resource saturates (freeze every flow crossing it at the level). The
// freeze set each iteration depends only on values, not on map iteration
// order, so the allocation is deterministic.
func (n *Network) Allocate() {
	resSet := make(map[*Resource]struct{})
	paths := make(map[FlowID][]*Resource, len(n.flows))
	for id, f := range n.flows {
		f.RateBps = 0
		paths[id] = uniquePath(f)
		for _, r := range paths[id] {
			resSet[r] = struct{}{}
		}
	}
	for r := range resSet {
		r.allocatedBps = 0
	}

	unfrozen := make(map[FlowID]*Flow, len(n.flows))
	for id, f := range n.flows {
		unfrozen[id] = f
	}
	usage := make(map[*Resource]float64, len(resSet)) // frozen consumption
	level := 0.0                                      // common rate of unfrozen flows
	const eps = 1e-6

	for len(unfrozen) > 0 {
		counts := make(map[*Resource]int)
		for id := range unfrozen {
			for _, r := range paths[id] {
				counts[r]++
			}
		}
		// Level at which each used resource saturates.
		resMin := -1.0
		for r, c := range counts {
			lvl := (r.CapacityBps - usage[r]) / float64(c)
			if lvl < level {
				lvl = level
			}
			if resMin < 0 || lvl < resMin {
				resMin = lvl
			}
		}
		// Smallest binding per-flow cap.
		capMin := -1.0
		for _, f := range unfrozen {
			if c := f.effectiveCap(); c > 0 && (capMin < 0 || c < capMin) {
				capMin = c
			}
		}
		if resMin < 0 && capMin < 0 {
			// Unconstrained flows (no resources, no caps): freeze at the
			// current level; a fluid model has no meaning for them beyond
			// it.
			for id, f := range unfrozen {
				f.RateBps = level
				delete(unfrozen, id)
			}
			break
		}

		if capMin >= 0 && (resMin < 0 || capMin <= resMin) {
			// Caps bind first: freeze every flow whose cap is at most the
			// new level.
			level = capMin
			for id, f := range unfrozen {
				if c := f.effectiveCap(); c > 0 && c <= level+eps {
					f.RateBps = c
					for _, r := range paths[id] {
						usage[r] += c
					}
					delete(unfrozen, id)
				}
			}
			continue
		}

		// A resource saturates first: identify all resources saturating at
		// this level, then freeze every flow crossing any of them.
		level = resMin
		saturated := make(map[*Resource]bool)
		for r, c := range counts {
			lvl := (r.CapacityBps - usage[r]) / float64(c)
			if lvl <= level+eps {
				saturated[r] = true
			}
		}
		for id, f := range unfrozen {
			hit := false
			for _, r := range paths[id] {
				if saturated[r] {
					hit = true
					break
				}
			}
			if hit {
				f.RateBps = level
				for _, r := range paths[id] {
					usage[r] += level
				}
				delete(unfrozen, id)
			}
		}
	}
	for r := range resSet {
		r.allocatedBps = usage[r]
	}
}

// Step advances the simulation by one tick: (re)allocates rates, accrues
// bytes, and fires per-flow callbacks.
func (n *Network) Step() {
	n.Allocate()
	dt := n.tick.Seconds()
	ids := make([]FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.flows[id]
		delivered := f.RateBps / 8 * dt
		f.Bytes += delivered
		if f.OnTick != nil {
			f.OnTick(n.ticks, delivered)
		}
	}
	n.now += n.tick
	n.ticks++
}

// Run advances the simulation for the given duration.
func (n *Network) Run(d time.Duration) {
	_ = n.RunContext(context.Background(), d)
}

// RunContext advances the simulation for the given duration, checking ctx
// between ticks: a cancelled context stops the tick loop at the next
// boundary and returns the context's error, leaving the per-tick series
// recorded so far intact. This is what lets simulation-backed measurement
// slots honor the streaming pipeline's early abort and shutdown
// cancellation without consuming the rest of their simulated time.
func (n *Network) RunContext(ctx context.Context, d time.Duration) error {
	steps := int(d / n.tick)
	for i := 0; i < steps; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n.Step()
	}
	return nil
}

// Host is a convenience bundling the two directional link resources of an
// end host, as used by the paper's vantage points (Table 1).
type Host struct {
	Name string
	Up   *Resource
	Down *Resource
}

// NewHost creates a host with symmetric or asymmetric link capacities.
func NewHost(name string, upBps, downBps float64) *Host {
	return &Host{
		Name: name,
		Up:   NewResource(name+"/up", upBps),
		Down: NewResource(name+"/down", downBps),
	}
}

// PathBetween returns the resource path of a unidirectional flow from src
// to dst, optionally traversing intermediate forwarding resources (e.g., a
// relay's Tor-processing capacity).
func PathBetween(src, dst *Host, via ...*Resource) []*Resource {
	path := make([]*Resource, 0, 2+len(via))
	path = append(path, src.Up)
	path = append(path, via...)
	path = append(path, dst.Down)
	return path
}
