package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const (
	mbit = 1e6
	gbit = 1e9
)

func TestSingleFlowTakesFullCapacity(t *testing.T) {
	n := New(time.Second)
	r := NewResource("link", 100*mbit)
	f := n.AddFlow("f", []*Resource{r}, 0)
	n.Allocate()
	if f.RateBps != 100*mbit {
		t.Fatalf("rate: got %v want %v", f.RateBps, 100*mbit)
	}
}

func TestTwoFlowsShareEqually(t *testing.T) {
	n := New(time.Second)
	r := NewResource("link", 100*mbit)
	f1 := n.AddFlow("f1", []*Resource{r}, 0)
	f2 := n.AddFlow("f2", []*Resource{r}, 0)
	n.Allocate()
	if f1.RateBps != 50*mbit || f2.RateBps != 50*mbit {
		t.Fatalf("rates: %v %v want 50 Mbit each", f1.RateBps, f2.RateBps)
	}
	if got := r.AllocatedBps(); math.Abs(got-100*mbit) > 1 {
		t.Fatalf("resource allocation: got %v", got)
	}
}

func TestCappedFlowLeavesHeadroomForOthers(t *testing.T) {
	// Max-min: a capped flow frees capacity for the uncapped one.
	n := New(time.Second)
	r := NewResource("link", 100*mbit)
	slow := n.AddFlow("slow", []*Resource{r}, 10*mbit)
	fast := n.AddFlow("fast", []*Resource{r}, 0)
	n.Allocate()
	if slow.RateBps != 10*mbit {
		t.Fatalf("slow rate: got %v want 10 Mbit", slow.RateBps)
	}
	if math.Abs(fast.RateBps-90*mbit) > 1 {
		t.Fatalf("fast rate: got %v want 90 Mbit", fast.RateBps)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	// A flow crossing a 10 Mbit and a 100 Mbit resource is limited by the
	// narrower one; a second flow on only the wide resource gets the rest.
	n := New(time.Second)
	narrow := NewResource("narrow", 10*mbit)
	wide := NewResource("wide", 100*mbit)
	through := n.AddFlow("through", []*Resource{narrow, wide}, 0)
	local := n.AddFlow("local", []*Resource{wide}, 0)
	n.Allocate()
	if math.Abs(through.RateBps-10*mbit) > 1 {
		t.Fatalf("through rate: got %v want 10 Mbit", through.RateBps)
	}
	if math.Abs(local.RateBps-90*mbit) > 1 {
		t.Fatalf("local rate: got %v want 90 Mbit", local.RateBps)
	}
}

func TestDemandLimitsFlow(t *testing.T) {
	n := New(time.Second)
	r := NewResource("link", 100*mbit)
	f := n.AddFlow("f", []*Resource{r}, 0)
	f.DemandBps = 5 * mbit
	n.Allocate()
	if f.RateBps != 5*mbit {
		t.Fatalf("demand-limited rate: got %v want 5 Mbit", f.RateBps)
	}
}

func TestStepAccruesBytes(t *testing.T) {
	n := New(time.Second)
	r := NewResource("link", 80*mbit) // 10 MB/s
	f := n.AddFlow("f", []*Resource{r}, 0)
	var cb float64
	f.OnTick = func(tick int, bytes float64) { cb += bytes }
	n.Run(3 * time.Second)
	if math.Abs(f.Bytes-30e6) > 1 {
		t.Fatalf("bytes after 3 s: got %v want 30e6", f.Bytes)
	}
	if cb != f.Bytes {
		t.Fatalf("callback bytes %v != flow bytes %v", cb, f.Bytes)
	}
	if n.Ticks() != 3 || n.Now() != 3*time.Second {
		t.Fatalf("clock: ticks=%d now=%v", n.Ticks(), n.Now())
	}
}

func TestRemoveFlowReallocates(t *testing.T) {
	n := New(time.Second)
	r := NewResource("link", 100*mbit)
	f1 := n.AddFlow("f1", []*Resource{r}, 0)
	f2 := n.AddFlow("f2", []*Resource{r}, 0)
	n.Allocate()
	if f1.RateBps != 50*mbit {
		t.Fatalf("pre-removal rate: %v", f1.RateBps)
	}
	if err := n.RemoveFlow(f2.ID); err != nil {
		t.Fatal(err)
	}
	n.Allocate()
	if f1.RateBps != 100*mbit {
		t.Fatalf("post-removal rate: got %v want full link", f1.RateBps)
	}
	if err := n.RemoveFlow(f2.ID); err == nil {
		t.Fatal("double remove should error")
	}
}

func TestHostPathBetween(t *testing.T) {
	a := NewHost("a", gbit, gbit)
	b := NewHost("b", gbit, gbit)
	cpu := NewResource("relay-cpu", 500*mbit)
	path := PathBetween(a, b, cpu)
	if len(path) != 3 || path[0] != a.Up || path[1] != cpu || path[2] != b.Down {
		t.Fatalf("unexpected path: %v", path)
	}
}

func TestAsymmetricHostLinks(t *testing.T) {
	// Residential-style host: fast down, slow up.
	res := NewHost("res", 10*mbit, 100*mbit)
	dc := NewHost("dc", gbit, gbit)
	n := New(time.Second)
	up := n.AddFlow("upload", PathBetween(res, dc), 0)
	down := n.AddFlow("download", PathBetween(dc, res), 0)
	n.Allocate()
	if math.Abs(up.RateBps-10*mbit) > 1 {
		t.Fatalf("upload: got %v want 10 Mbit", up.RateBps)
	}
	if math.Abs(down.RateBps-100*mbit) > 1 {
		t.Fatalf("download: got %v want 100 Mbit", down.RateBps)
	}
}

func TestManyFlowsThroughRelayResource(t *testing.T) {
	// 20 measurement flows through one relay's 250 Mbit forwarding
	// capacity: each should get 12.5 Mbit.
	relayCap := NewResource("relay", 250*mbit)
	n := New(time.Second)
	flows := make([]*Flow, 20)
	for i := range flows {
		flows[i] = n.AddFlow("m", []*Resource{relayCap}, 0)
	}
	n.Allocate()
	for i, f := range flows {
		if math.Abs(f.RateBps-12.5*mbit) > 1 {
			t.Fatalf("flow %d rate: got %v want 12.5 Mbit", i, f.RateBps)
		}
	}
}

func TestEmptyNetworkStep(t *testing.T) {
	n := New(time.Second)
	n.Step() // must not panic
	if n.NumFlows() != 0 {
		t.Fatal("unexpected flows")
	}
}

func TestFlowWithEmptyPathAndCap(t *testing.T) {
	n := New(time.Second)
	f := n.AddFlow("free", nil, 7*mbit)
	n.Allocate()
	if f.RateBps != 7*mbit {
		t.Fatalf("free capped flow: got %v want 7 Mbit", f.RateBps)
	}
}

func TestDefaultTick(t *testing.T) {
	n := New(0)
	if n.Tick() != time.Second {
		t.Fatalf("default tick: got %v", n.Tick())
	}
}

// Property: the allocation is feasible (no resource over capacity) and
// work-conserving enough that every flow is either at its cap or crosses a
// saturated resource (the max-min optimality condition).
func TestMaxMinPropertyQuick(t *testing.T) {
	f := func(caps []uint16, flowSpec []uint8) bool {
		if len(caps) == 0 || len(flowSpec) == 0 {
			return true
		}
		if len(caps) > 8 {
			caps = caps[:8]
		}
		if len(flowSpec) > 24 {
			flowSpec = flowSpec[:24]
		}
		n := New(time.Second)
		resources := make([]*Resource, len(caps))
		for i, c := range caps {
			resources[i] = NewResource("r", float64(c%1000+1)*mbit)
		}
		flows := make([]*Flow, 0, len(flowSpec))
		for _, spec := range flowSpec {
			// Each flow crosses 1-3 resources selected by the spec byte.
			path := []*Resource{resources[int(spec)%len(resources)]}
			if spec%3 == 0 && len(resources) > 1 {
				path = append(path, resources[(int(spec)/3)%len(resources)])
			}
			var capBps float64
			if spec%5 == 0 {
				capBps = float64(spec%50+1) * mbit
			}
			flows = append(flows, n.AddFlow("f", path, capBps))
		}
		n.Allocate()

		// Feasibility: per-resource usage ≤ capacity.
		usage := make(map[*Resource]float64)
		for _, fl := range flows {
			seen := make(map[*Resource]bool)
			for _, r := range fl.Path {
				if !seen[r] {
					usage[r] += fl.RateBps
					seen[r] = true
				}
			}
		}
		for r, u := range usage {
			if u > r.CapacityBps*(1+1e-6)+1 {
				return false
			}
		}
		// Optimality: each flow is at cap or bottlenecked.
		for _, fl := range flows {
			if fl.CapBps > 0 && fl.RateBps >= fl.CapBps-1 {
				continue
			}
			bottlenecked := false
			for _, r := range fl.Path {
				if usage[r] >= r.CapacityBps-1 {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation is deterministic — same inputs, same rates.
func TestAllocateDeterministicQuick(t *testing.T) {
	f := func(nFlows uint8) bool {
		build := func() (*Network, []*Flow) {
			n := New(time.Second)
			r1 := NewResource("a", 100*mbit)
			r2 := NewResource("b", 60*mbit)
			flows := make([]*Flow, 0, int(nFlows)%16+1)
			for i := 0; i <= int(nFlows)%15; i++ {
				path := []*Resource{r1}
				if i%2 == 0 {
					path = append(path, r2)
				}
				flows = append(flows, n.AddFlow("f", path, 0))
			}
			return n, flows
		}
		n1, f1 := build()
		n2, f2 := build()
		n1.Allocate()
		n2.Allocate()
		for i := range f1 {
			if math.Abs(f1[i].RateBps-f2[i].RateBps) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocate100Flows(b *testing.B) {
	n := New(time.Second)
	resources := make([]*Resource, 10)
	for i := range resources {
		resources[i] = NewResource("r", gbit)
	}
	for i := 0; i < 100; i++ {
		n.AddFlow("f", []*Resource{resources[i%10], resources[(i+3)%10]}, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Allocate()
	}
}
