package relay

import (
	"time"
)

// ObservedBandwidth tracks a relay's self-measured "observed bandwidth":
// the highest throughput it was able to sustain for any 10-second period
// during the last 5 days (paper §2, tor-spec §2.1.1). This heuristic is the
// root cause of the capacity under-estimation the paper quantifies in §3.
// Internally it keeps a monotonically decreasing deque of 10-second
// averages so that the 5-day maximum query is O(1) and memory stays
// proportional to the number of distinct decreasing maxima, not the history
// length.
type ObservedBandwidth struct {
	window    time.Duration // averaging window (10 s)
	history   time.Duration // retention (5 days)
	samples   []obsSample   // per-second forwarded bytes, ring of recent window
	maxima    []obsSample   // monotonic decreasing deque of 10 s averages
	sampleSum float64
}

type obsSample struct {
	at    time.Duration
	bytes float64
}

// DefaultWindow and DefaultHistory are Tor's parameters.
const (
	DefaultWindow  = 10 * time.Second
	DefaultHistory = 5 * 24 * time.Hour
)

// NewObservedBandwidth creates a tracker with Tor's default 10-second
// window and 5-day history.
func NewObservedBandwidth() *ObservedBandwidth {
	return NewObservedBandwidthWith(DefaultWindow, DefaultHistory)
}

// NewObservedBandwidthWith creates a tracker with custom parameters, used
// by tests and by the metrics synthesizer for compressed timescales.
func NewObservedBandwidthWith(window, history time.Duration) *ObservedBandwidth {
	return &ObservedBandwidth{window: window, history: history}
}

// Record adds the bytes the relay forwarded during the second ending at
// time now. Calls must use non-decreasing timestamps.
func (o *ObservedBandwidth) Record(now time.Duration, bytes float64) {
	o.samples = append(o.samples, obsSample{at: now, bytes: bytes})
	o.sampleSum += bytes
	// Drop samples older than the averaging window.
	cut := 0
	for cut < len(o.samples) && now-o.samples[cut].at >= o.window {
		o.sampleSum -= o.samples[cut].bytes
		cut++
	}
	o.samples = o.samples[cut:]

	// The current 10-second average throughput in bytes/second. Maintain
	// the monotonic deque: pop smaller trailing maxima before appending.
	avg := o.sampleSum / o.window.Seconds()
	for len(o.maxima) > 0 && o.maxima[len(o.maxima)-1].bytes <= avg {
		o.maxima = o.maxima[:len(o.maxima)-1]
	}
	o.maxima = append(o.maxima, obsSample{at: now, bytes: avg})
	o.trimMaxima(now)
}

func (o *ObservedBandwidth) trimMaxima(now time.Duration) {
	cut := 0
	for cut < len(o.maxima) && now-o.maxima[cut].at > o.history {
		cut++
	}
	o.maxima = o.maxima[cut:]
}

// BytesPerSecond returns the observed bandwidth: the maximum 10-second
// average over the retained history.
func (o *ObservedBandwidth) BytesPerSecond() float64 {
	if len(o.maxima) == 0 {
		return 0
	}
	return o.maxima[0].bytes
}

// Bps returns the observed bandwidth in bits per second.
func (o *ObservedBandwidth) Bps() float64 { return o.BytesPerSecond() * 8 }
