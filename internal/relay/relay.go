// Package relay models the target side of FlashFlow: a Tor-like relay with
// a CPU-bound cell-processing capacity, a token-bucket rate limiter
// (BandwidthRate/Burst), the dual cell scheduler with the ratio-r limiter
// on normal traffic during a measurement (§4.1), and the observed-bandwidth
// self-measurement heuristic that TorFlow relies on (§2).
package relay

import (
	"errors"
	"fmt"
	"time"
)

// DefaultRatio is the paper's recommended normal-traffic ratio r = 0.25,
// limiting a lying relay's inflation to 1/(1-r) = 1.33 (§6.2, §5).
const DefaultRatio = 0.25

// Config configures a relay model.
type Config struct {
	// Name identifies the relay.
	Name string
	// TorCapBps is the CPU-bound cell-processing capacity in bits/s. The
	// paper measures ≈1,248 Mbit/s on its lab hardware (Appendix C.2);
	// zero means unlimited.
	TorCapBps float64
	// RateBps/BurstBits configure the token-bucket rate limiter
	// (RelayBandwidthRate/Burst); zero RateBps means unlimited.
	RateBps   float64
	BurstBits float64
	// Ratio is the maximum fraction r of total traffic that may be normal
	// traffic during a measurement. Zero uses DefaultRatio.
	Ratio float64
}

// Relay is a relay model advanced in discrete ticks.
type Relay struct {
	cfg       Config
	bucket    *TokenBucket
	obs       *ObservedBandwidth
	now       time.Duration
	measuring bool

	// Per-tick outputs of the most recent Step.
	lastMeasBps float64
	lastNormBps float64
}

// New creates a relay from cfg.
func New(cfg Config) *Relay {
	if cfg.Ratio <= 0 || cfg.Ratio >= 1 {
		cfg.Ratio = DefaultRatio
	}
	return &Relay{
		cfg:    cfg,
		bucket: NewTokenBucket(cfg.RateBps, cfg.BurstBits),
		obs:    NewObservedBandwidth(),
	}
}

// NewWithObserved creates a relay that uses the provided observed-bandwidth
// tracker (tests and compressed-timescale simulations supply one with a
// shorter history).
func NewWithObserved(cfg Config, obs *ObservedBandwidth) *Relay {
	r := New(cfg)
	r.obs = obs
	return r
}

// Name returns the relay's name.
func (r *Relay) Name() string { return r.cfg.Name }

// Ratio returns the configured normal-traffic ratio r.
func (r *Relay) Ratio() float64 { return r.cfg.Ratio }

// TorCapBps returns the configured processing capacity (0 = unlimited).
func (r *Relay) TorCapBps() float64 { return r.cfg.TorCapBps }

// SetMeasuring marks the start or end of a measurement. The ratio-r
// limiter applies only while a measurement is active; outside measurements
// normal traffic is unrestricted (§4.1).
func (r *Relay) SetMeasuring(on bool) { r.measuring = on }

// Measuring reports whether a measurement is active.
func (r *Relay) Measuring() bool { return r.measuring }

// ErrBadTick is returned for nonpositive tick lengths.
var ErrBadTick = errors.New("relay: tick length must be positive")

// Step advances the relay by dt given the offered measurement and normal
// traffic demand (bits/s), and returns the rates actually forwarded. The
// scheduler:
//
//   - caps total forwarding at min(TorCap, token-bucket grant);
//   - during a measurement, admits normal traffic up to the ratio-r share
//     of the total and gives measurement traffic the remainder (the paper's
//     "send as much normal traffic subject to this maximum");
//   - outside a measurement, serves normal traffic first (there is no
//     measurement traffic then anyway).
//
// Forwarded bytes feed the observed-bandwidth tracker.
func (r *Relay) Step(dt time.Duration, measDemandBps, normDemandBps float64) (measBps, normBps float64, err error) {
	if dt <= 0 {
		return 0, 0, ErrBadTick
	}
	r.now += dt

	capBps := r.cfg.TorCapBps
	// The token bucket can exceed the steady rate for the first tick
	// (burst), reproducing the Fig. 7 spike.
	grantBits := r.bucket.AdvanceAndTake(r.now, (measDemandBps+normDemandBps)*dt.Seconds())
	grantBps := grantBits / dt.Seconds()
	if r.cfg.RateBps > 0 && (capBps == 0 || grantBps < capBps) {
		capBps = grantBps
	}
	if capBps == 0 {
		capBps = measDemandBps + normDemandBps // unlimited
	}

	if !r.measuring || measDemandBps == 0 {
		normBps = minF(normDemandBps, capBps)
		measBps = minF(measDemandBps, capBps-normBps)
	} else {
		// Measurement active: y ≤ r·(x+y), measurement takes the rest.
		rr := r.cfg.Ratio
		if measDemandBps >= capBps {
			normBps = minF(normDemandBps, rr*capBps)
			measBps = capBps - normBps
		} else {
			measBps = measDemandBps
			// y ≤ x·r/(1-r) and x+y ≤ cap.
			normBps = minF(normDemandBps, measBps*rr/(1-rr))
			normBps = minF(normBps, capBps-measBps)
		}
	}

	r.obs.Record(r.now, (measBps+normBps)/8*dt.Seconds())
	r.lastMeasBps, r.lastNormBps = measBps, normBps
	return measBps, normBps, nil
}

// LastRates returns the measurement and normal rates of the most recent
// Step.
func (r *Relay) LastRates() (measBps, normBps float64) {
	return r.lastMeasBps, r.lastNormBps
}

// ReportNormalBytes returns the relay's per-second normal-traffic report
// for the most recent tick, in bytes: the value y_j the BWAuth receives
// (§4.1). An honest relay reports what it forwarded.
func (r *Relay) ReportNormalBytes(dt time.Duration) float64 {
	return r.lastNormBps / 8 * dt.Seconds()
}

// ObservedBps returns the relay's current self-measured observed bandwidth
// in bits per second.
func (r *Relay) ObservedBps() float64 { return r.obs.Bps() }

// AdvertisedBps returns the advertised bandwidth: min(observed bandwidth,
// configured rate limit) per §2.
func (r *Relay) AdvertisedBps() float64 {
	adv := r.obs.Bps()
	if r.cfg.RateBps > 0 && r.cfg.RateBps < adv {
		adv = r.cfg.RateBps
	}
	return adv
}

// Descriptor is the subset of a Tor server descriptor the reproduction
// needs.
type Descriptor struct {
	Name          string
	ObservedBps   float64
	RateLimitBps  float64
	AdvertisedBps float64
	PublishedAt   time.Duration
}

// Descriptor returns the relay's current server descriptor.
func (r *Relay) Descriptor() Descriptor {
	return Descriptor{
		Name:          r.cfg.Name,
		ObservedBps:   r.obs.Bps(),
		RateLimitBps:  r.cfg.RateBps,
		AdvertisedBps: r.AdvertisedBps(),
		PublishedAt:   r.now,
	}
}

// String implements fmt.Stringer.
func (r *Relay) String() string {
	return fmt.Sprintf("relay(%s cap=%.0f rate=%.0f r=%.2f)", r.cfg.Name, r.cfg.TorCapBps, r.cfg.RateBps, r.cfg.Ratio)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
