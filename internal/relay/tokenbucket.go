package relay

import (
	"time"
)

// TokenBucket implements Tor's BandwidthRate/BandwidthBurst rate limiter.
// The paper configures relays with RelayBandwidthRate/Burst to emulate
// capacity limits (Appendix E.2), and notes that a relay allows "a one
// second burst before limiting its own throughput" (Fig. 7) — the bucket
// reproduces that initial burst.
type TokenBucket struct {
	rateBps   float64 // refill rate, bits per second
	burstBits float64 // bucket capacity, bits
	tokens    float64 // current tokens, bits
	last      time.Duration
}

// NewTokenBucket creates a bucket that refills at rateBps and holds at most
// burstBits, starting full (Tor's behaviour: an idle relay can burst).
// A rateBps of 0 means unlimited.
func NewTokenBucket(rateBps, burstBits float64) *TokenBucket {
	if burstBits <= 0 {
		burstBits = rateBps // Tor defaults Burst to Rate when unset
	}
	return &TokenBucket{rateBps: rateBps, burstBits: burstBits, tokens: burstBits}
}

// RateBps returns the configured refill rate (0 = unlimited).
func (b *TokenBucket) RateBps() float64 { return b.rateBps }

// Advance refills tokens up to the given simulation time.
func (b *TokenBucket) Advance(now time.Duration) {
	if now <= b.last {
		return
	}
	dt := (now - b.last).Seconds()
	b.last = now
	if b.rateBps <= 0 {
		return
	}
	b.tokens += b.rateBps * dt
	if b.tokens > b.burstBits {
		b.tokens = b.burstBits
	}
}

// Take removes up to wantBits tokens and returns how many were granted.
// With an unlimited bucket the full request is granted.
func (b *TokenBucket) Take(wantBits float64) float64 {
	if wantBits <= 0 {
		return 0
	}
	if b.rateBps <= 0 {
		return wantBits
	}
	grant := wantBits
	if grant > b.tokens {
		grant = b.tokens
	}
	if grant < 0 {
		grant = 0
	}
	b.tokens -= grant
	return grant
}

// AdvanceAndTake refills up to now and grants up to wantBits, allowing the
// grant to consume both stored tokens and the refill accrued over the
// elapsed interval. A full bucket therefore yields a one-tick burst above
// the steady rate — the Fig. 7 spike at measurement start.
func (b *TokenBucket) AdvanceAndTake(now time.Duration, wantBits float64) float64 {
	if b.rateBps <= 0 {
		b.last = now
		return wantBits
	}
	var dt float64
	if now > b.last {
		dt = (now - b.last).Seconds()
		b.last = now
	}
	avail := b.tokens + b.rateBps*dt
	grant := wantBits
	if grant > avail {
		grant = avail
	}
	if grant < 0 {
		grant = 0
	}
	left := avail - grant
	if left > b.burstBits {
		left = b.burstBits
	}
	b.tokens = left
	return grant
}

// Available returns the current token count in bits.
func (b *TokenBucket) Available() float64 {
	if b.rateBps <= 0 {
		return 0
	}
	return b.tokens
}
