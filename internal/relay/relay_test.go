package relay

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const mbit = 1e6

func TestTokenBucketSteadyRate(t *testing.T) {
	b := NewTokenBucket(100*mbit, 100*mbit)
	// Drain the initial burst.
	b.Take(1e12)
	var granted float64
	for s := 1; s <= 10; s++ {
		b.Advance(time.Duration(s) * time.Second)
		granted += b.Take(1e12)
	}
	if math.Abs(granted-1000*mbit) > 1 {
		t.Fatalf("10 s grant: got %v want %v", granted, 1000*mbit)
	}
}

func TestTokenBucketBurst(t *testing.T) {
	b := NewTokenBucket(100*mbit, 200*mbit)
	if got := b.Take(1e12); got != 200*mbit {
		t.Fatalf("initial burst: got %v want 200 Mbit", got)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 0)
	if got := b.Take(123); got != 123 {
		t.Fatalf("unlimited take: got %v", got)
	}
}

func TestTokenBucketNeverOverGrants(t *testing.T) {
	// Property: over any sequence, total granted ≤ rate·elapsed + burst.
	f := func(takes []uint16) bool {
		const rate, burst = 10 * mbit, 20 * mbit
		b := NewTokenBucket(rate, burst)
		var granted float64
		now := time.Duration(0)
		for _, take := range takes {
			now += 100 * time.Millisecond
			b.Advance(now)
			granted += b.Take(float64(take) * 1000)
		}
		limit := rate*now.Seconds() + burst
		return granted <= limit+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketAdvanceBackwardsIgnored(t *testing.T) {
	b := NewTokenBucket(10*mbit, 10*mbit)
	b.Take(1e12)
	b.Advance(time.Second)
	before := b.Available()
	b.Advance(500 * time.Millisecond) // stale timestamp
	if b.Available() != before {
		t.Fatal("backwards advance must not add tokens")
	}
}

func TestObservedBandwidthBasic(t *testing.T) {
	o := NewObservedBandwidthWith(10*time.Second, time.Hour)
	// 10 seconds at 5 MB/s.
	for s := 1; s <= 10; s++ {
		o.Record(time.Duration(s)*time.Second, 5e6)
	}
	if got := o.BytesPerSecond(); math.Abs(got-5e6) > 1 {
		t.Fatalf("observed: got %v want 5e6", got)
	}
}

func TestObservedBandwidthMaxPersistsWithinHistory(t *testing.T) {
	o := NewObservedBandwidthWith(10*time.Second, time.Hour)
	for s := 1; s <= 10; s++ {
		o.Record(time.Duration(s)*time.Second, 8e6)
	}
	peak := o.BytesPerSecond()
	// Then a long quiet period within history.
	for s := 11; s <= 600; s++ {
		o.Record(time.Duration(s)*time.Second, 1e5)
	}
	if got := o.BytesPerSecond(); got != peak {
		t.Fatalf("peak should persist: got %v want %v", got, peak)
	}
}

func TestObservedBandwidthExpires(t *testing.T) {
	o := NewObservedBandwidthWith(10*time.Second, 100*time.Second)
	for s := 1; s <= 10; s++ {
		o.Record(time.Duration(s)*time.Second, 8e6)
	}
	// Quiet beyond the history horizon.
	for s := 11; s <= 300; s++ {
		o.Record(time.Duration(s)*time.Second, 1e5)
	}
	if got := o.BytesPerSecond(); got >= 8e6 {
		t.Fatalf("peak should expire: got %v", got)
	}
}

func TestObservedBandwidthShortBurstDiluted(t *testing.T) {
	// A 1-second burst within a 10-second window contributes only 1/10 of
	// its rate — the reason consistently-underutilized relays
	// under-estimate (§3).
	o := NewObservedBandwidthWith(10*time.Second, time.Hour)
	for s := 1; s <= 30; s++ {
		bytes := 1e5
		if s == 15 {
			bytes = 10e6
		}
		o.Record(time.Duration(s)*time.Second, bytes)
	}
	got := o.BytesPerSecond()
	if got >= 2e6 {
		t.Fatalf("burst should be diluted by the window: got %v", got)
	}
	if got < 1e6 {
		t.Fatalf("burst should still raise the estimate: got %v", got)
	}
}

func TestObservedMonotoneUnderAddedTraffic(t *testing.T) {
	// Property: adding traffic to any second never lowers the estimate.
	f := func(base []uint16, extraIdx uint8) bool {
		if len(base) == 0 {
			return true
		}
		if len(base) > 50 {
			base = base[:50]
		}
		run := func(extra bool) float64 {
			o := NewObservedBandwidthWith(10*time.Second, time.Hour)
			for i, v := range base {
				b := float64(v)
				if extra && i == int(extraIdx)%len(base) {
					b += 1e6
				}
				o.Record(time.Duration(i+1)*time.Second, b)
			}
			return o.BytesPerSecond()
		}
		return run(true) >= run(false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelayUnlimitedForwardsDemand(t *testing.T) {
	r := New(Config{Name: "r"})
	m, n, err := r.Step(time.Second, 100*mbit, 50*mbit)
	if err != nil {
		t.Fatal(err)
	}
	if m != 100*mbit || n != 50*mbit {
		t.Fatalf("unlimited relay: got %v/%v", m, n)
	}
}

func TestRelayCPUCap(t *testing.T) {
	r := New(Config{Name: "r", TorCapBps: 100 * mbit})
	r.SetMeasuring(true)
	m, n, err := r.Step(time.Second, 1000*mbit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-100*mbit) > 1 || n != 0 {
		t.Fatalf("CPU cap: got %v/%v want 100 Mbit/0", m, n)
	}
}

func TestRelayRatioEnforcedWhenSaturated(t *testing.T) {
	// 250 Mbit relay, saturating measurement demand, plenty of normal
	// demand: normal is limited to r·cap = 62.5 Mbit (r = 0.25).
	r := New(Config{Name: "r", TorCapBps: 250 * mbit})
	r.SetMeasuring(true)
	m, n, err := r.Step(time.Second, 1000*mbit, 1000*mbit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-62.5*mbit) > 1 {
		t.Fatalf("normal: got %v want 62.5 Mbit", n)
	}
	if math.Abs(m-187.5*mbit) > 1 {
		t.Fatalf("measurement: got %v want 187.5 Mbit", m)
	}
	// Ratio invariant: y ≤ r·(x+y).
	if n > 0.25*(m+n)+1 {
		t.Fatal("ratio invariant violated")
	}
}

func TestRelayFig7BackgroundClamp(t *testing.T) {
	// Fig. 7 scenario: 250 Mbit/s relay, 50 Mbit/s background, r = 0.1 →
	// background limited to 25 Mbit/s during the measurement.
	r := New(Config{Name: "r", RateBps: 250 * mbit, BurstBits: 250 * mbit, Ratio: 0.1})
	r.SetMeasuring(true)
	var m, n float64
	var err error
	for s := 0; s < 5; s++ { // let the burst pass
		m, n, err = r.Step(time.Second, 1000*mbit, 50*mbit)
		if err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(n-25*mbit) > 1 {
		t.Fatalf("background: got %v want 25 Mbit", n)
	}
	if math.Abs(m-225*mbit) > 1 {
		t.Fatalf("measurement: got %v want 225 Mbit", m)
	}
}

func TestRelayNoRatioOutsideMeasurement(t *testing.T) {
	r := New(Config{Name: "r", TorCapBps: 100 * mbit})
	m, n, err := r.Step(time.Second, 0, 80*mbit)
	if err != nil {
		t.Fatal(err)
	}
	if n != 80*mbit || m != 0 {
		t.Fatalf("normal-only: got %v/%v", m, n)
	}
}

func TestRelayBurstSpike(t *testing.T) {
	// Fig. 7: the relay allows a one-second burst before limiting to its
	// configured rate.
	r := New(Config{Name: "r", RateBps: 250 * mbit, BurstBits: 250 * mbit})
	r.SetMeasuring(true)
	m1, _, err := r.Step(time.Second, 1000*mbit, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := r.Step(time.Second, 1000*mbit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1 <= m2 {
		t.Fatalf("first tick should burst above steady rate: %v vs %v", m1, m2)
	}
	if math.Abs(m2-250*mbit) > 1 {
		t.Fatalf("steady rate: got %v want 250 Mbit", m2)
	}
}

func TestRelayThroughputReturnsAfterMeasurement(t *testing.T) {
	// Fig. 7: after the measurement ends, background traffic returns to
	// its pre-measurement level immediately.
	r := New(Config{Name: "r", RateBps: 250 * mbit, BurstBits: 250 * mbit})
	for s := 0; s < 3; s++ {
		if _, _, err := r.Step(time.Second, 0, 50*mbit); err != nil {
			t.Fatal(err)
		}
	}
	_, before := r.LastRates()
	r.SetMeasuring(true)
	for s := 0; s < 3; s++ {
		if _, _, err := r.Step(time.Second, 1000*mbit, 50*mbit); err != nil {
			t.Fatal(err)
		}
	}
	r.SetMeasuring(false)
	if _, _, err := r.Step(time.Second, 0, 50*mbit); err != nil {
		t.Fatal(err)
	}
	_, after := r.LastRates()
	if math.Abs(after-before) > 1 {
		t.Fatalf("background did not recover: before=%v after=%v", before, after)
	}
}

func TestRelayAdvertisedUsesRateLimit(t *testing.T) {
	r := New(Config{Name: "r", RateBps: 10 * mbit, BurstBits: 10 * mbit})
	// Forward heavily so observed exceeds... it can't exceed the rate, but
	// use descriptor anyway.
	for s := 0; s < 20; s++ {
		if _, _, err := r.Step(time.Second, 0, 100*mbit); err != nil {
			t.Fatal(err)
		}
	}
	d := r.Descriptor()
	if d.AdvertisedBps > 10*mbit+1 {
		t.Fatalf("advertised should be capped by rate limit: %v", d.AdvertisedBps)
	}
	if d.RateLimitBps != 10*mbit {
		t.Fatalf("descriptor rate limit: %v", d.RateLimitBps)
	}
}

func TestRelayReportNormalBytes(t *testing.T) {
	r := New(Config{Name: "r", TorCapBps: 100 * mbit})
	r.SetMeasuring(true)
	if _, _, err := r.Step(time.Second, 1000*mbit, 1000*mbit); err != nil {
		t.Fatal(err)
	}
	want := 0.25 * 100 * mbit / 8
	if got := r.ReportNormalBytes(time.Second); math.Abs(got-want) > 1 {
		t.Fatalf("normal bytes report: got %v want %v", got, want)
	}
}

func TestRelayBadTick(t *testing.T) {
	r := New(Config{Name: "r"})
	if _, _, err := r.Step(0, 1, 1); err == nil {
		t.Fatal("zero tick should error")
	}
}

func TestRelayDefaultRatioApplied(t *testing.T) {
	r := New(Config{Name: "r", Ratio: 0})
	if r.Ratio() != DefaultRatio {
		t.Fatalf("default ratio: got %v", r.Ratio())
	}
	r2 := New(Config{Name: "r", Ratio: 1.5})
	if r2.Ratio() != DefaultRatio {
		t.Fatalf("invalid ratio should fall back to default: got %v", r2.Ratio())
	}
}

// Property: the ratio invariant y ≤ r·(x+y) holds for any demands while
// measuring (after the initial burst tick).
func TestRatioInvariantQuick(t *testing.T) {
	f := func(measDemand, normDemand uint32) bool {
		r := New(Config{Name: "r", TorCapBps: 100 * mbit})
		r.SetMeasuring(true)
		md := float64(measDemand%1000) * mbit / 10
		nd := float64(normDemand%1000) * mbit / 10
		if md == 0 {
			return true // ratio applies only when measurement traffic flows
		}
		m, n, err := r.Step(time.Second, md, nd)
		if err != nil {
			return false
		}
		return n <= DefaultRatio*(m+n)+1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total forwarded never exceeds the CPU cap.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(measDemand, normDemand uint32, measuring bool) bool {
		const capBps = 77 * mbit
		r := New(Config{Name: "r", TorCapBps: capBps})
		r.SetMeasuring(measuring)
		m, n, err := r.Step(time.Second, float64(measDemand), float64(normDemand))
		if err != nil {
			return false
		}
		return m+n <= capBps+1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
