// Package wire implements the FlashFlow measurement protocol over real
// network connections: one authenticated connection between each of a
// BWAuth's measurers and a target relay (§4.1) multiplexing that
// measurer's concurrent measurement circuits, in-band circuit setup with
// an X25519 key exchange (MsmtCreate/MsmtCreated cells), cell streaming
// with relay-side decryption and echo, probabilistic echo-content
// verification against the circuit keystream, and per-second byte
// accounting.
//
// This package is the reproduction's substitute for the paper's 1,200-line
// patch to Tor v0.3.5.7: instead of patching Tor, the target side is a
// standalone relay speaking the same measurement protocol with real
// cryptography on real sockets. The simulation experiments use
// core.SimBackend; this package exists so the protocol itself — handshake,
// framing, crypto, verification, accounting — is exercised for real, and
// it powers the runnable examples and the wire Backend.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType identifies a control frame.
type FrameType uint8

// Control frame types exchanged during the authentication handshake.
// Circuit setup is not framed: it rides the cell stream itself as
// MsmtCreate/MsmtCreated cells (the paper's new circuit-creation cell,
// §4.1), so a multiplexed connection never interleaves frame bytes with
// cell bytes after authentication. Values 3 and 4 belonged to the retired
// FrameCreate/FrameCreated and are not reused.
const (
	// FrameAuth carries the connecting measurer's public key and its
	// signature over the server's nonce.
	FrameAuth FrameType = 1
	// FrameAuthOK acknowledges successful authentication.
	FrameAuthOK FrameType = 2
	// FrameReject indicates authentication or admission failure.
	FrameReject FrameType = 5
)

// maxFramePayload bounds control frame payloads.
const maxFramePayload = 4096

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame payload too large")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// frameHeaderLen is the length prefix (4 bytes) plus the type byte.
const frameHeaderLen = 5

// WriteFrame writes a length-prefixed control frame. Header and payload go
// out in a single Write so a frame is never split across two syscalls
// (and never interleaves with another writer's bytes on a shared conn).
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = byte(t)
	copy(buf[frameHeaderLen:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one control frame, allocating a fresh payload buffer the
// caller owns. Protocol loops that read frames repeatedly should use
// ReadFrameInto with a per-connection scratch buffer instead.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one control frame, decoding the payload into scratch
// when it is large enough (the returned payload then aliases scratch and
// is only valid until the next ReadFrameInto call with the same buffer).
// A nil or too-small scratch falls back to allocating. Callers that retain
// payload bytes beyond the next read — authenticated public keys, for
// example — must copy them out.
func ReadFrameInto(r io.Reader, scratch []byte) (FrameType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	var payload []byte
	if uint32(len(scratch)) >= n {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if n > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, fmt.Errorf("read frame payload: %w", err)
		}
	}
	return FrameType(hdr[4]), payload, nil
}
