// Package wire implements the FlashFlow measurement protocol over real
// network connections: authenticated connections between a BWAuth's
// measurers and a target relay (§4.1), measurement-circuit setup with an
// X25519 key exchange, cell streaming with relay-side decryption and echo,
// probabilistic echo-content verification, and per-second byte accounting.
//
// This package is the reproduction's substitute for the paper's 1,200-line
// patch to Tor v0.3.5.7: instead of patching Tor, the target side is a
// standalone relay speaking the same measurement protocol with real
// cryptography on real sockets. The simulation experiments use
// core.SimBackend; this package exists so the protocol itself — handshake,
// framing, crypto, verification, accounting — is exercised for real, and
// it powers the runnable examples and the wire Backend.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameType identifies a control frame.
type FrameType uint8

// Control frame types exchanged before and during the cell stream.
const (
	// FrameAuth carries the connecting measurer's public key and its
	// signature over the server's nonce.
	FrameAuth FrameType = 1
	// FrameAuthOK acknowledges successful authentication.
	FrameAuthOK FrameType = 2
	// FrameCreate carries the measurer's X25519 public key to establish
	// the measurement circuit (the paper's new circuit-creation cell).
	FrameCreate FrameType = 3
	// FrameCreated carries the target's X25519 public key.
	FrameCreated FrameType = 4
	// FrameReject indicates authentication or admission failure.
	FrameReject FrameType = 5
)

// maxFramePayload bounds control frame payloads.
const maxFramePayload = 4096

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame payload too large")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// WriteFrame writes a length-prefixed control frame.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return ErrFrameTooLarge
	}
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one control frame.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, fmt.Errorf("read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, fmt.Errorf("read frame payload: %w", err)
		}
	}
	return FrameType(hdr[4]), payload, nil
}
