package wire

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Identity is an ed25519 keypair identifying a measurer (its public key is
// distributed to targets by the BWAuth, whose own key the consensus
// anchors — §4.1).
type Identity struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// NewIdentity generates a fresh identity.
func NewIdentity() (Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return Identity{}, fmt.Errorf("generate identity: %w", err)
	}
	return Identity{Pub: pub, Priv: priv}, nil
}

// Authentication errors.
var (
	ErrAuthRejected  = errors.New("wire: authentication rejected")
	ErrNotAuthorized = errors.New("wire: measurer key not authorized")
)

const nonceLen = 32

// frameScratchLen is the per-connection scratch size for handshake frame
// payloads: large enough for the biggest handshake frame (FrameAuth's
// key+signature, 96 bytes).
const frameScratchLen = 128

// serverChallenge sends a nonce and verifies the client's Auth frame
// against the allowed key set. It returns the authenticated public key.
// scratch, when non-nil, receives the frame payload; the returned key is
// copied out of it.
func serverChallenge(rw io.ReadWriter, allowed map[string]bool, scratch []byte) (ed25519.PublicKey, error) {
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("nonce: %w", err)
	}
	if _, err := rw.Write(nonce); err != nil {
		return nil, fmt.Errorf("send nonce: %w", err)
	}
	t, payload, err := ReadFrameInto(rw, scratch)
	if err != nil {
		return nil, err
	}
	if t != FrameAuth || len(payload) != ed25519.PublicKeySize+ed25519.SignatureSize {
		_ = WriteFrame(rw, FrameReject, nil)
		return nil, ErrBadFrame
	}
	// Copy: the key outlives the scratch buffer (it is re-checked before
	// every circuit on this connection).
	pub := append(ed25519.PublicKey(nil), payload[:ed25519.PublicKeySize]...)
	sig := payload[ed25519.PublicKeySize:]
	if !allowed[string(pub)] {
		_ = WriteFrame(rw, FrameReject, nil)
		return nil, ErrNotAuthorized
	}
	if !ed25519.Verify(pub, nonce, sig) {
		_ = WriteFrame(rw, FrameReject, nil)
		return nil, ErrAuthRejected
	}
	if err := WriteFrame(rw, FrameAuthOK, nil); err != nil {
		return nil, err
	}
	return pub, nil
}

// clientAuthenticate answers the server's challenge with id's signature.
func clientAuthenticate(rw io.ReadWriter, id Identity) error {
	nonce := make([]byte, nonceLen)
	if _, err := io.ReadFull(rw, nonce); err != nil {
		return fmt.Errorf("read nonce: %w", err)
	}
	sig := ed25519.Sign(id.Priv, nonce)
	payload := make([]byte, 0, ed25519.PublicKeySize+ed25519.SignatureSize)
	payload = append(payload, id.Pub...)
	payload = append(payload, sig...)
	if err := WriteFrame(rw, FrameAuth, payload); err != nil {
		return err
	}
	var scratch [frameScratchLen]byte
	t, _, err := ReadFrameInto(rw, scratch[:])
	if err != nil {
		return err
	}
	if t != FrameAuthOK {
		return ErrAuthRejected
	}
	return nil
}
