package wire

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"flashflow/internal/cell"
)

// Property: ReadFrame never panics or over-reads on arbitrary byte
// streams; it either returns a frame consistent with the input or an
// error.
func TestReadFrameFuzzQuick(t *testing.T) {
	f := func(data []byte) bool {
		r := bytes.NewReader(data)
		ft, payload, err := ReadFrame(r)
		if err != nil {
			return true // malformed input must error, not panic
		}
		// A successful parse implies the header described the payload.
		return len(payload) <= maxFramePayload && ft != 0 || ft == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteFrame → ReadFrame round-trips arbitrary payloads up to
// the cap.
func TestFrameRoundTripQuick(t *testing.T) {
	f := func(ft uint8, payload []byte) bool {
		if len(payload) > maxFramePayload {
			payload = payload[:maxFramePayload]
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FrameType(ft), payload); err != nil {
			return false
		}
		gotType, gotPayload, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return gotType == FrameType(ft) && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTargetRejectsGarbageHandshake(t *testing.T) {
	id, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{RateBps: 8 * mbit}, id)
	defer cleanup()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Read the nonce, then send garbage instead of an Auth frame.
	nonce := make([]byte, nonceLen)
	if _, err := io.ReadFull(conn, nonce); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(bytes.Repeat([]byte{0xff}, 64)); err != nil {
		t.Fatal(err)
	}
	// The target must reject and close; reading should terminate quickly.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed or rejected — both fine
		}
	}
}

func TestTargetHandlesAbruptDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	addr, tgt, cleanup := startTarget(t, TargetConfig{RateBps: 8 * mbit}, id)
	defer cleanup()

	// Authenticate, set up a circuit, send part of a data cell, then slam
	// the connection shut mid-cell. The target must survive and keep
	// serving new measurements.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := clientAuthenticate(conn, id); err != nil {
		t.Fatal(err)
	}
	tr := NewConnTransport(conn)
	cr := newCellReader(tr, make([]byte, cell.BatchBytes))
	if _, err := createCircuits(tr, cr, 1); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, cell.Size)
	cell.PutHeader(out, 1, cell.MsmtData)
	if _, err := conn.Write(out[:cell.Size/2]); err != nil { // half a cell
		t.Fatal(err)
	}
	conn.Close()

	// A fresh, well-behaved measurement still works.
	res, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity: id, Sockets: 1, RateBps: 4 * mbit, Duration: time.Second, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("clean measurement after abrupt disconnect should pass")
	}
	_ = tgt
}

func TestConcurrentMeasurersShareTargetRate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	// Two measurers with distinct identities measuring simultaneously:
	// the target's pacer splits its rate between them; the sum should be
	// near the configured rate, not double it.
	idA, _ := NewIdentity()
	idB, _ := NewIdentity()
	const rate = 16 * mbit
	addr, _, cleanup := startTarget(t, TargetConfig{RateBps: rate}, idA, idB)
	defer cleanup()

	var wg sync.WaitGroup
	results := make([]MeasureResult, 2)
	errs := make([]error, 2)
	for i, id := range []Identity{idA, idB} {
		wg.Add(1)
		go func(idx int, ident Identity) {
			defer wg.Done()
			results[idx], errs[idx] = Measure(context.Background(), tcpDialer(addr), MeasureOptions{
				Identity: ident, Sockets: 2, RateBps: 32 * mbit,
				Duration: 2 * time.Second, Seed: int64(20 + idx),
			})
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("measurer %d: %v", i, err)
		}
	}
	var total float64
	for _, r := range results {
		for _, b := range r.PerSecondBytes {
			total += b
		}
	}
	gotRate := total * 8 / 2
	if gotRate > rate*1.4 {
		t.Fatalf("combined echo rate %v exceeds target rate %v", gotRate, rate)
	}
	if gotRate < rate*0.4 {
		t.Fatalf("combined echo rate %v too far below target rate %v", gotRate, rate)
	}
}

func TestIdentityUniqueness(t *testing.T) {
	a, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Pub, b.Pub) {
		t.Fatal("identities should be unique")
	}
}
