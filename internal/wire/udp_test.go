package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"flashflow/internal/cell"
)

// udpMeasureOpts is the common shape of the in-memory UDP measurements:
// small enough to finish fast, multi-circuit so the demux and round-robin
// sequencing are exercised, checked densely so verification covers every
// code path.
func udpMeasureOpts(id Identity) MeasureOptions {
	return MeasureOptions{
		Identity:  id,
		Sockets:   8,
		Duration:  300 * time.Millisecond,
		CheckProb: 0.2,
		Seed:      7,
	}
}

func sumBytes(b []float64) float64 {
	var s float64
	for _, v := range b {
		s += v
	}
	return s
}

// TestMeasurePipeTCP runs the full TCP-plane measurement sockets-free: the
// control and data stream share one net.Pipe. Pins that the data plane has
// no hidden dependency on kernel socket behavior (vectored writes, socket
// buffering) beyond the Transport seam.
func TestMeasurePipeTCP(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(TargetConfig{})
	tgt.Authorize(id.Pub)
	defer tgt.Close()
	client, server := net.Pipe()
	go func() { _ = tgt.HandleConn(server) }()

	res, err := Measure(t.Context(), pipeDialer(client), udpMeasureOpts(id))
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("verification failed against an honest target")
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
	if sumBytes(res.PerSecondBytes) == 0 {
		t.Fatal("no bytes echoed over the pipe")
	}
}

// TestMeasureUDPPipe is the lossless datagram baseline: control over
// net.Pipe, data over the in-memory datagram link. Everything sent must
// come back — the loss accounting exists for real networks, so a perfect
// link must report zero.
func TestMeasureUDPPipe(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, data := startPipeTargetUDP(t, TargetConfig{}, id, nil)
	opts := udpMeasureOpts(id)
	opts.DialData = data

	res, err := Measure(t.Context(), ctrl, opts)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("verification failed against an honest target")
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
	if res.SentCells == 0 {
		t.Fatal("no cells sent")
	}
	if res.LostCells != 0 {
		t.Fatalf("lossless link reported %d lost cells (sent %d)", res.LostCells, res.SentCells)
	}
	if got := sumBytes(res.PerSecondBytes); got != float64(res.SentCells)*cell.Size {
		t.Fatalf("accounted %v bytes, want %v (sent %d cells)", got, float64(res.SentCells)*cell.Size, res.SentCells)
	}
}

// TestMeasureUDPLoss drops exactly one full forward datagram and checks
// the accounting: precisely udpDatagramCells cells lost, the measurement
// itself still succeeding — loss is a number on UDP, not a failure.
func TestMeasureUDPLoss(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, data := startPipeTargetUDP(t, TargetConfig{}, id, func(dc DatagramConn) DatagramConn {
		return &lossyDgramConn{DatagramConn: dc, drop: func(n int) bool { return n == 2 }}
	})
	opts := udpMeasureOpts(id)
	opts.DialData = data

	res, err := Measure(t.Context(), ctrl, opts)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("verification failed: loss must not corrupt the check stream")
	}
	// Every mid-stream datagram is full-size (the transport only flushes
	// partials at end of slot), so the dropped one held exactly
	// udpDatagramCells cells.
	if res.LostCells != udpDatagramCells {
		t.Fatalf("LostCells = %d, want %d", res.LostCells, udpDatagramCells)
	}
	if res.SentCells <= udpDatagramCells {
		t.Fatalf("sent only %d cells; the slot never got past the dropped datagram", res.SentCells)
	}
}

// TestMeasureUDPReorder swaps consecutive forward datagrams and checks
// reordering is invisible: the target's stamped decrypt index keeps
// verification honest, the sequence accounting reports nothing lost.
func TestMeasureUDPReorder(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, data := startPipeTargetUDP(t, TargetConfig{}, id, func(dc DatagramConn) DatagramConn {
		return &reorderDgramConn{DatagramConn: dc, swaps: 2}
	})
	opts := udpMeasureOpts(id)
	opts.DialData = data

	res, err := Measure(t.Context(), ctrl, opts)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("verification failed under reordering: the echo must verify at the target's stamped index")
	}
	if res.LostCells != 0 {
		t.Fatalf("reordering (no loss) reported %d lost cells", res.LostCells)
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
}

// TestMeasureUDPCorruptTarget pins §5 over datagrams: a target that skips
// its decrypt work echoes cells whose payloads are not the forward
// keystream, and the spot checks catch it. (The corrupt echo still carries
// the plaintext send sequence, so flow control keeps running — the forgery
// is caught by content, not by stalls.)
func TestMeasureUDPCorruptTarget(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, data := startPipeTargetUDP(t, TargetConfig{Corrupt: true}, id, nil)
	opts := udpMeasureOpts(id)
	opts.DialData = data

	res, err := Measure(t.Context(), ctrl, opts)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
	if !res.Failed {
		t.Fatal("corrupt target passed verification")
	}
}

// TestMeasureUDPLoopback runs the datagram plane over real sockets:
// TCP control, UDP data, loopback. Loss is possible in principle (kernel
// buffers), so only the protocol outcome is asserted, not zero loss.
func TestMeasureUDPLoopback(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, tgt, stop := startTarget(t, TargetConfig{}, id)
	defer stop()
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer uc.Close()
	go tgt.ServeUDP(NewUDPDatagramConn(uc))
	udpAddr := uc.LocalAddr().String()

	opts := udpMeasureOpts(id)
	opts.DialData = func() (net.Conn, error) { return net.Dial("udp", udpAddr) }
	res, err := Measure(t.Context(), tcpDialer(addr), opts)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("verification failed against an honest target")
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
	if res.SentCells == 0 || res.SentCells == res.LostCells {
		t.Fatalf("no echoes came back: sent %d, lost %d", res.SentCells, res.LostCells)
	}
}

// TestUDPDataAfterBindRejected pins the plane-separation rule: once a
// connection binds a UDP data plane, TCP measurement data is a protocol
// error — allowing it would drive one circuit's sequential crypto state
// from two planes at once.
func TestUDPDataAfterBindRejected(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(TargetConfig{})
	tgt.Authorize(id.Pub)
	defer tgt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	handleErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			handleErr <- err
			return
		}
		handleErr <- tgt.HandleConn(conn)
	}()

	c := dialMuxClient(t, l.Addr().String(), id, 1)
	bind := make([]byte, cell.Size)
	cell.PutHeader(bind, 0, cell.MsmtUdp)
	copy(cell.PayloadOf(bind)[:16], []byte("0123456789abcdef"))
	if _, err := c.tr.Write(bind); err != nil {
		t.Fatalf("send bind: %v", err)
	}
	if cb, err := c.cr.next(); err != nil || cell.CommandOf(cb) != cell.MsmtUdp {
		t.Fatalf("bind ack: cell %v, err %v", cell.CommandOf(cb), err)
	}
	if _, err := c.tr.Write(dataBatch([]uint32{1})); err != nil {
		t.Fatalf("send data: %v", err)
	}
	select {
	case err := <-handleErr:
		if err == nil || !strings.Contains(err.Error(), "after UDP bind") {
			t.Fatalf("HandleConn error = %v, want data-after-UDP-bind rejection", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target accepted TCP data after UDP bind")
	}
}
