package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"flashflow/internal/core"
)

// TestMeasureContextCancellation pins the wire layer's cancellation
// contract: cancelling the context mid-slot closes the connections, the
// send/recv loops exit, and Measure returns context.Canceled promptly —
// never waiting out the remaining slot duration — with the completed
// seconds' bytes salvaged.
func TestMeasureContextCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{}, id)
	defer cleanup()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let one full second complete so there is something to salvage,
		// then cancel deep inside the 30-second slot.
		time.Sleep(1300 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	res, err := Measure(ctx, tcpDialer(addr), MeasureOptions{
		Identity: id, Sockets: 2, RateBps: 16 * mbit,
		Duration: 30 * time.Second, Seed: 5,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 4*time.Second {
		t.Fatalf("cancellation took %v; must not wait out the 30s slot", elapsed)
	}
	if len(res.PerSecondBytes) < 1 {
		t.Fatalf("completed second should be salvaged: %v", res.PerSecondBytes)
	}
	if res.PerSecondBytes[0] <= 0 {
		t.Fatalf("salvaged second has no bytes: %v", res.PerSecondBytes)
	}
}

// TestMeasureStreamsPerSecondCounts checks OnSecond delivers ordered live
// per-second byte counts that match the final result for the completed
// seconds.
func TestMeasureStreamsPerSecondCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{}, id)
	defer cleanup()

	var (
		mu      sync.Mutex
		seconds []int
		bytes   []float64
	)
	res, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity: id, Sockets: 1, RateBps: 8 * mbit,
		Duration: 2 * time.Second, Seed: 6,
		OnSecond: func(second int, b float64) {
			mu.Lock()
			seconds = append(seconds, second)
			bytes = append(bytes, b)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seconds) < 1 {
		t.Fatal("no per-second samples streamed")
	}
	for i, s := range seconds {
		if s != i {
			t.Fatalf("samples out of order: %v", seconds)
		}
		if bytes[i] <= 0 {
			t.Fatalf("streamed second %d has no bytes", s)
		}
		// The live count can only trail the final tally (cells still in
		// flight at the boundary land in the final result).
		if bytes[i] > res.PerSecondBytes[s]+1 {
			t.Fatalf("streamed %v bytes for second %d, final %v", bytes[i], s, res.PerSecondBytes[s])
		}
	}
}

// TestBackendSalvagesSurvivingMembers pins the member-failure satellite: a
// team slot where one member cannot even dial must still deliver the
// surviving member's per-second bytes, marked Incomplete, instead of an
// empty MeasurementData with an error.
func TestBackendSalvagesSurvivingMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	idGood, _ := NewIdentity()
	idBad, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{}, idGood, idBad)
	defer cleanup()

	backend := &Backend{
		Members: []Member{
			{Identity: idGood, Dial: func(string) Dialer { return tcpDialer(addr) }},
			{Identity: idBad, Dial: func(string) Dialer {
				return func() (net.Conn, error) { return nil, errors.New("member down") }
			}},
		},
		Seed: 7,
	}
	alloc := core.Allocation{
		PerMeasurerBps: []float64{8 * mbit, 8 * mbit},
		SocketsPer:     []int{2, 2},
		TotalBps:       16 * mbit,
	}
	data, err := backend.RunMeasurement(context.Background(), "t", alloc, 1, nil)
	if err != nil {
		t.Fatalf("surviving member's bytes must not be discarded: %v", err)
	}
	if !data.Incomplete {
		t.Fatal("slot with a dead member must be marked Incomplete")
	}
	var good, bad float64
	for _, b := range data.MeasBytes[0] {
		good += b
	}
	for _, b := range data.MeasBytes[1] {
		bad += b
	}
	if good <= 0 {
		t.Fatalf("surviving member's bytes missing: %+v", data.MeasBytes)
	}
	if bad != 0 {
		t.Fatalf("dead member cannot have echoed bytes: %+v", data.MeasBytes)
	}
}

// TestBackendAllMembersFailedReturnsError: when every member fails the
// slot has nothing to salvage and the first error propagates.
func TestBackendAllMembersFailedReturnsError(t *testing.T) {
	id, _ := NewIdentity()
	backend := &Backend{Members: []Member{{
		Identity: id,
		Dial: func(string) Dialer {
			return func() (net.Conn, error) { return nil, errors.New("down") }
		},
	}}}
	alloc := core.Allocation{PerMeasurerBps: []float64{mbit}, SocketsPer: []int{1}, TotalBps: mbit}
	if _, err := backend.RunMeasurement(context.Background(), "t", alloc, 1, nil); err == nil {
		t.Fatal("all-members-failed slot must error")
	}
}

// TestBackendStreamsSamples checks the backend-level sample stream: with
// two live members, the sink sees ordered samples whose per-member bytes
// are populated once both members reported the second.
func TestBackendStreamsSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	idA, _ := NewIdentity()
	idB, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{}, idA, idB)
	defer cleanup()

	backend := &Backend{
		Members: []Member{
			{Identity: idA, Dial: func(string) Dialer { return tcpDialer(addr) }},
			{Identity: idB, Dial: func(string) Dialer { return tcpDialer(addr) }},
		},
		Seed: 8,
	}
	alloc := core.Allocation{
		PerMeasurerBps: []float64{8 * mbit, 8 * mbit},
		SocketsPer:     []int{1, 1},
		TotalBps:       16 * mbit,
	}
	var (
		mu      sync.Mutex
		samples []core.Sample
	)
	sink := func(s core.Sample) {
		cp := s
		cp.MeasBytes = append([]float64(nil), s.MeasBytes...)
		mu.Lock()
		samples = append(samples, cp)
		mu.Unlock()
	}
	data, err := backend.RunMeasurement(context.Background(), "t", alloc, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if data.Failed || data.Incomplete {
		t.Fatalf("healthy slot flagged: %+v", data)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(samples) < 1 {
		t.Fatal("no samples streamed")
	}
	for i, s := range samples {
		if s.Second != i {
			t.Fatalf("samples out of order: %+v", samples)
		}
		if len(s.MeasBytes) != 2 {
			t.Fatalf("sample row should cover the team: %+v", s)
		}
		if s.MeasBytes[0] <= 0 || s.MeasBytes[1] <= 0 {
			t.Fatalf("sample %d missing a member's bytes: %+v", i, s)
		}
	}
}
