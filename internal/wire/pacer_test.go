package wire

import (
	"testing"
	"time"
)

// fakeClock drives a pacer deterministically: clock() returns the current
// fake time and sleep(d) advances it, modeling a caller that always wakes
// exactly on schedule.
type fakeClock struct {
	now    time.Time
	sleeps []time.Duration
}

func newFakePacer(rateBps float64) (*pacer, *fakeClock) {
	fc := &fakeClock{now: time.Unix(1000, 0)}
	p := &pacer{
		rateBps: rateBps,
		clock:   func() time.Time { return fc.now },
		sleep: func(d time.Duration) {
			fc.sleeps = append(fc.sleeps, d)
			fc.now = fc.now.Add(d)
		},
	}
	return p, fc
}

func (fc *fakeClock) totalSlept() time.Duration {
	var t time.Duration
	for _, d := range fc.sleeps {
		t += d
	}
	return t
}

// TestPacerExactAtMultiGbit checks schedule precision at 10 Gbit/s: after
// many batches the total paced time must equal bits/rate to sub-microsecond
// accuracy. The cumulative absolute schedule must not lose the
// sub-nanosecond remainder of each batch to per-call rounding — at high
// rates a truncated duration per call compounds into a measurable rate
// error.
func TestPacerExactAtMultiGbit(t *testing.T) {
	const rate = 10e9
	const batchBits = 32 * 514 * 8 // one cell batch: ~13.2 µs at 10 Gbit/s
	p, fc := newFakePacer(rate)
	const batches = 100000
	for i := 0; i < batches; i++ {
		p.wait(batchBits)
	}
	wantSec := float64(batches) * batchBits / rate
	got := fc.totalSlept().Seconds()
	if diff := got - wantSec; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("paced %.9fs for %.9fs of traffic (drift %.3gs)", got, wantSec, diff)
	}
}

// TestPacerAdmitsAtRate checks the basic invariant the data plane depends
// on: bits admitted by elapsed time t never exceed rate·t, and a caller
// that always has traffic ready achieves the full rate (no starvation from
// rounding or schedule bookkeeping).
func TestPacerAdmitsAtRate(t *testing.T) {
	const rate = 50e6
	const batchBits = 32 * 514 * 8
	p, fc := newFakePacer(rate)
	start := fc.now
	var bits float64
	for fc.now.Sub(start) < time.Second {
		p.wait(batchBits)
		bits += batchBits
	}
	elapsed := fc.now.Sub(start).Seconds()
	got := bits / elapsed
	if got > rate*1.001 {
		t.Fatalf("admitted %.0f bit/s, exceeds rate %.0f", got, rate)
	}
	if got < rate*0.999 {
		t.Fatalf("admitted %.0f bit/s, starved below rate %.0f", got, rate)
	}
}

// TestPacerNoBurstAfterIdleReset checks that an idle gap longer than
// pacerIdleReset yields no banked credit: the first batch after the reset
// paces for its own full transmission time instead of riding the gap's
// accumulated schedule slack. Without the reset (or with a buggy one) a
// target parked between coordinator rounds would echo the next slot's
// opening cells unpaced and inflate that slot's estimate.
func TestPacerNoBurstAfterIdleReset(t *testing.T) {
	const rate = 8e6
	const batchBits = 32 * 514 * 8 // ~16.4 ms at 8 Mbit/s
	p, fc := newFakePacer(rate)
	for i := 0; i < 10; i++ {
		p.wait(batchBits)
	}
	fc.now = fc.now.Add(3 * time.Second) // parked well past pacerIdleReset
	fc.sleeps = nil
	p.wait(batchBits)
	want := time.Duration(batchBits / rate * float64(time.Second))
	if got := fc.totalSlept(); got < want-time.Millisecond {
		t.Fatalf("first batch after idle paced %v, want ≈%v (banked credit burst)", got, want)
	}
}

// TestPacerLowRateNotMistakenForIdle checks the idle detection is measured
// against the schedule horizon, not the last call time: at a rate where
// each batch paces for longer than pacerIdleReset, the window must NOT
// reset between batches — that would erase the schedule every call and
// stop limiting the rate entirely.
func TestPacerLowRateNotMistakenForIdle(t *testing.T) {
	const rate = 100e3 // one 32-cell batch paces ~1.3s, far past the reset window
	const batchBits = 32 * 514 * 8
	p, fc := newFakePacer(rate)
	start := fc.now
	const batches = 5
	for i := 0; i < batches; i++ {
		p.wait(batchBits)
	}
	wantSec := float64(batches) * batchBits / rate
	if got := fc.now.Sub(start).Seconds(); got < wantSec*0.99 {
		t.Fatalf("%d batches took %.2fs, want ≥%.2fs (idle reset erased the schedule)", batches, got, wantSec)
	}
}

// TestPacerFirstBatchBounded checks the slot-opening latency contract: the
// first batch of a window sleeps only its own transmission time. Combined
// with quantumBits-sized batches, no caller waits more than roughly
// pacerMaxSleep before its first write reaches the wire.
func TestPacerFirstBatchBounded(t *testing.T) {
	const rate = 8e6
	p, fc := newFakePacer(rate)
	bits := p.quantumBits()
	p.wait(bits)
	want := time.Duration(bits / rate * float64(time.Second))
	if got := fc.totalSlept(); got > want+time.Millisecond {
		t.Fatalf("first quantum paced %v, want ≤%v", got, want)
	}
	if got := fc.totalSlept(); got > 2*pacerMaxSleep {
		t.Fatalf("first quantum paced %v, quantum contract is ~%v", got, pacerMaxSleep)
	}
}

// TestPacerZeroRateUnlimited checks rate 0 never blocks (unpaced perf
// scenarios and unlimited targets).
func TestPacerZeroRateUnlimited(t *testing.T) {
	p, fc := newFakePacer(0)
	for i := 0; i < 100; i++ {
		p.wait(1e9)
	}
	if len(fc.sleeps) != 0 {
		t.Fatalf("unpaced pacer slept %d times", len(fc.sleeps))
	}
	if !p.start.IsZero() {
		t.Fatal("unpaced pacer should not track a window")
	}
}

// TestPacerQuantumBits checks the batch-sizing helper: paced rates get one
// pacerMaxSleep worth of bits; unpaced is unbounded.
func TestPacerQuantumBits(t *testing.T) {
	p := &pacer{rateBps: 8e6}
	want := 8e6 * pacerMaxSleep.Seconds()
	if got := p.quantumBits(); got != want {
		t.Fatalf("quantumBits at 8 Mbit/s: %v want %v", got, want)
	}
	p0 := &pacer{}
	if got := p0.quantumBits(); !(got > 1e18) {
		t.Fatalf("unpaced quantumBits should be unbounded, got %v", got)
	}
}
