package wire

import (
	"context"
	"net"
	"testing"
	"time"
)

// sessionConn wraps a net.Conn with Session state, standing in for the
// pooled connections of internal/coord.
type sessionConn struct {
	net.Conn
	authed   bool
	reusable bool
	closed   bool
}

func (s *sessionConn) Authenticated() bool { return s.authed }
func (s *sessionConn) MarkAuthenticated()  { s.authed = true }
func (s *sessionConn) MarkReusable()       { s.reusable = true }
func (s *sessionConn) Close() error {
	// A pooled connection survives the measurer's Close when the slot
	// completed cleanly; only an aborted connection really closes.
	if s.reusable {
		return nil
	}
	s.closed = true
	return s.Conn.Close()
}

// TestMeasureReusesSessionConnection runs two measurements back to back on
// one connection: the second must skip the identity handshake (the target
// authenticates a connection once) and still produce echo traffic.
func TestMeasureReusesSessionConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startTarget(t, TargetConfig{RateBps: 40 * mbit}, id)
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := &sessionConn{Conn: raw}
	defer raw.Close()
	dial := func() (net.Conn, error) { return sess, nil }

	opts := MeasureOptions{
		Identity: id,
		Sockets:  1,
		RateBps:  8 * mbit,
		Duration: time.Second,
		Seed:     1,
	}
	for round := 0; round < 2; round++ {
		sess.reusable = false
		res, err := Measure(context.Background(), dial, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var total float64
		for _, b := range res.PerSecondBytes {
			total += b
		}
		if total == 0 {
			t.Fatalf("round %d: no bytes echoed", round)
		}
		if !sess.reusable {
			t.Fatalf("round %d: clean slot should mark the session reusable", round)
		}
		if sess.closed {
			t.Fatalf("round %d: connection should not be closed", round)
		}
	}
	if !sess.authed {
		t.Fatal("session should be marked authenticated")
	}
}

// TestRevokeCutsOffOpenSessionConnection: revoking a measurer's
// authorization must stop further measurements even on a connection the
// measurer already holds open (the pooled-connection case) — the target
// re-checks the live allowed set before each circuit.
func TestRevokeCutsOffOpenSessionConnection(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, tgt, stop := startTarget(t, TargetConfig{RateBps: 40 * mbit}, id)
	defer stop()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sess := &sessionConn{Conn: raw}
	defer raw.Close()
	dial := func() (net.Conn, error) { return sess, nil }

	opts := MeasureOptions{
		Identity: id,
		Sockets:  1,
		RateBps:  8 * mbit,
		Duration: 300 * time.Millisecond,
		Seed:     1,
	}
	if _, err := Measure(context.Background(), dial, opts); err != nil {
		t.Fatalf("first measurement: %v", err)
	}
	if !sess.reusable {
		t.Fatal("first slot should leave the session reusable")
	}

	tgt.Revoke()
	sess.reusable = false
	if _, err := Measure(context.Background(), dial, opts); err == nil {
		t.Fatal("measurement on a revoked session should fail")
	}
}
