package wire

import (
	"io"
	"net"
)

// Transport is the seam between cell framing and the byte transport
// carrying it. The measurement data plane speaks only this interface:
// single reads/writes for handshakes and echoes, and WriteBatches for the
// sender's scatter-gather path. Today the one implementation wraps a TCP
// connection; a QUIC or UDP transport (§7 extensions) slots in here
// without touching the cell layer or the measurement loops.
//
// Buffer ownership across the seam follows the rules in DESIGN.md: the
// caller owns every buffer it passes in, the transport must not retain a
// reference past the call, and WriteBatches may consume (re-slice) the
// net.Buffers value it is handed — callers rebuild it per call.
type Transport interface {
	io.ReadWriter
	// WriteBatches writes every buffer in *bufs, in order, using as few
	// syscalls as the transport allows — one writev on a TCP connection.
	// The slice is consumed: its elements and length are unspecified after
	// the call returns.
	WriteBatches(bufs *net.Buffers) error
}

// NetConner is implemented by connection wrappers (the pooled connections
// of internal/coord) that can expose the underlying net.Conn. net.Buffers
// only performs a real vectored write when handed an actual *net.TCPConn —
// a wrapper type hides the writev fast path — so NewConnTransport unwraps
// through this interface for the batch-write direction. Reads and single
// writes stay on the wrapper, whose semantics (pool bookkeeping, Session
// state) only matter on those paths.
type NetConner interface {
	NetConn() net.Conn
}

// connTransport adapts a net.Conn (possibly wrapped) to Transport.
type connTransport struct {
	conn net.Conn  // as handed in: reads and single writes
	batw io.Writer // unwrapped for WriteBatches, so writev engages
}

// NewConnTransport wraps conn. If conn is a wrapper chain implementing
// NetConner, the batch-write path unwraps to the innermost connection.
func NewConnTransport(conn net.Conn) Transport {
	var batw io.Writer = conn
	for {
		nc, ok := batw.(NetConner)
		if !ok {
			break
		}
		batw = nc.NetConn()
	}
	return &connTransport{conn: conn, batw: batw}
}

func (t *connTransport) Read(p []byte) (int, error)  { return t.conn.Read(p) }
func (t *connTransport) Write(p []byte) (int, error) { return t.conn.Write(p) }

func (t *connTransport) WriteBatches(bufs *net.Buffers) error {
	_, err := bufs.WriteTo(t.batw)
	return err
}
