package wire

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"flashflow/internal/cell"
)

// TargetConfig configures the target-relay side of the measurement
// protocol.
type TargetConfig struct {
	// RateBps limits the aggregate echo rate across all measurement
	// connections (the relay's capacity or configured limit). Zero means
	// unlimited.
	RateBps float64
	// Corrupt, if set, makes the target skip decryption and echo the
	// cell payload untouched — the forging misbehaviour that echo checks
	// must catch (§5): the echoed bytes are not the forward keystream a
	// real decrypt would have produced.
	Corrupt bool
	// DecryptWorkers sets how many decrypt workers each connection shards
	// its circuits across. 0 picks automatically (GOMAXPROCS, capped);
	// 1 forces the single-threaded inline path. Circuits are pinned to
	// workers by ID, so per-circuit keystream state stays single-owner and
	// echo bytes stay in order per circuit regardless of the worker count.
	DecryptWorkers int
}

// maxDecryptWorkers caps the automatic per-connection worker count: past
// the crypto-to-I/O ratio's break-even, more workers only add dispatch
// latency for the reader stage.
const maxDecryptWorkers = 8

// decryptWorkers resolves the configured worker count.
func (t *Target) decryptWorkers() int {
	n := t.cfg.DecryptWorkers
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > maxDecryptWorkers {
			n = maxDecryptWorkers
		}
	}
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64 // the pipeline dispatches with a 64-bit worker mask
	}
	return n
}

// Target is the relay-side endpoint: it accepts authenticated measurement
// connections, each multiplexing many measurement circuits, and
// decrypt-echoes measurement cells subject to its rate limit.
type Target struct {
	cfg TargetConfig

	mu      sync.Mutex
	allowed map[string]bool
	conns   map[net.Conn]struct{}
	closed  bool
	pace    pacer
	counts  secondCounter

	// UDP data-plane registry (§7 transport): token → session, installed
	// when a connection's MsmtUdp cell arrives, and datagram source
	// address → session, installed when the measurer's hello datagram
	// proves it owns the token. See udp.go.
	udpMu     sync.Mutex
	udpTokens map[udpToken]*udpSession
	udpAddrs  map[netip.AddrPort]*udpSession

	wg sync.WaitGroup
}

// NewTarget creates a target with no authorized measurers.
func NewTarget(cfg TargetConfig) *Target {
	t := &Target{
		cfg:     cfg,
		allowed: make(map[string]bool),
		conns:   make(map[net.Conn]struct{}),
	}
	t.pace.rateBps = cfg.RateBps
	return t
}

// Authorize grants the given measurer public keys access for the current
// measurement (the BWAuth sends the target its team's keys, §4.1).
func (t *Target) Authorize(keys ...ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		t.allowed[string(k)] = true
	}
}

// Revoke removes all authorizations (end of the measurement slot).
func (t *Target) Revoke() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.allowed = make(map[string]bool)
}

// ForwardedBytesPerSecond returns the per-second forwarded measurement
// bytes observed since the first cell.
func (t *Target) ForwardedBytesPerSecond() []float64 {
	return t.counts.snapshot()
}

// Serve accepts and handles connections until the listener closes.
func (t *Target) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			_ = t.HandleConn(conn)
		}()
	}
}

// Close force-closes every open connection — handlers may otherwise
// block forever reading a connection a measurement coordinator keeps
// parked in its pool — and waits for the handlers to exit (listeners must
// be closed by the caller first). The closed flag and the connection set
// share one critical section with HandleConn's registration, so no
// handler can slip a connection in after Close has swept the set.
func (t *Target) Close() {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// HandleConn runs the full target-side protocol on one connection:
// challenge-authenticate once, then serve the multiplexed cell stream —
// circuit creation, decrypt-and-echo, circuit teardown — until the
// measurer closes the connection. A connection held open by a measurement
// coordinator (internal/coord) carries every slot's circuits without
// re-dialing or re-authenticating.
func (t *Target) HandleConn(conn net.Conn) error {
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.conns[conn] = struct{}{}
	allowed := make(map[string]bool, len(t.allowed))
	for k := range t.allowed {
		allowed[k] = true
	}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()

	var frameScratch [frameScratchLen]byte
	pub, err := serverChallenge(conn, allowed, frameScratch[:])
	if err != nil {
		return fmt.Errorf("target auth: %w", err)
	}
	if err := t.serveMux(conn, pub); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		return err
	}
	return nil
}

// authorized reports whether the key is in the current allowed set.
func (t *Target) authorized(pub ed25519.PublicKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allowed[string(pub)]
}

// errRevoked reports a circuit request from a measurer whose
// authorization was withdrawn after the connection authenticated.
var errRevoked = errors.New("wire: measurer authorization revoked")

// maxConnCircuits bounds the live circuits one connection may hold, so an
// authorized-but-misbehaving measurer cannot grow the per-connection
// circuit table without limit.
const maxConnCircuits = 1024

// errTooManyCircuits reports a connection exceeding maxConnCircuits.
var errTooManyCircuits = errors.New("wire: too many circuits on one connection")

// circTable maps live circuit IDs to their demux entries (crypto state,
// worker pinning, span marks). The measurer allocates IDs densely from 1,
// so the fast path is an array index; sparse IDs fall back to a map.
// Lookup cost matters: the demux loop consults it once per data cell.
type circTable struct {
	dense  []*circEntry
	sparse map[uint32]*circEntry
	n      int
}

// denseCircuits is the ID range served by the array fast path.
const denseCircuits = 512

func (ct *circTable) get(id uint32) *circEntry {
	if id < denseCircuits {
		if int(id) < len(ct.dense) {
			return ct.dense[id]
		}
		return nil
	}
	return ct.sparse[id]
}

func (ct *circTable) set(id uint32, e *circEntry) {
	if id < denseCircuits {
		for int(id) >= len(ct.dense) {
			ct.dense = append(ct.dense, nil)
		}
		if ct.dense[id] == nil {
			ct.n++
		}
		ct.dense[id] = e
		return
	}
	if ct.sparse == nil {
		ct.sparse = make(map[uint32]*circEntry)
	}
	if ct.sparse[id] == nil {
		ct.n++
	}
	ct.sparse[id] = e
}

func (ct *circTable) del(id uint32) {
	if id < denseCircuits {
		if int(id) < len(ct.dense) && ct.dense[id] != nil {
			ct.dense[id] = nil
			ct.n--
		}
		return
	}
	if _, ok := ct.sparse[id]; ok {
		delete(ct.sparse, id)
		ct.n--
	}
}

func (ct *circTable) len() int { return ct.n }

// echoChunkBytes sizes the paced echo writes: at most one pacing quantum
// per write, so a slow target never sleeps hundreds of milliseconds on one
// super-batch and then bursts it — coarse echo bursts straddle the
// measurer's per-second accounting boundaries and distort the estimate.
// Unpaced targets echo each batch with a single write.
func (t *Target) echoChunkBytes(bufLen int) int {
	chunkBytes := bufLen
	if q := t.pace.quantumBits(); q/8 < float64(chunkBytes) {
		chunkBytes = int(q/8) / cell.Size * cell.Size
		if chunkBytes < cell.BatchBytes {
			chunkBytes = cell.BatchBytes
		}
	}
	return chunkBytes
}

// echoBatch writes one processed batch back to the measurer, paced in
// chunks of at most one quantum, and credits the per-second forwarded-byte
// counter. Control-only batches (circuit setup, teardown) are never paced:
// creation must answer promptly even on a slow target.
func (t *Target) echoBatch(tr Transport, batch []byte, dataCells, chunkBytes int) error {
	if dataCells == 0 || t.pace.rateBps <= 0 {
		if _, err := tr.Write(batch); err != nil {
			return fmt.Errorf("target echo: %w", err)
		}
	} else {
		for off := 0; off < len(batch); off += chunkBytes {
			end := min(off+chunkBytes, len(batch))
			t.pace.wait(float64((end - off) * 8))
			if _, err := tr.Write(batch[off:end]); err != nil {
				return fmt.Errorf("target echo: %w", err)
			}
		}
	}
	if dataCells > 0 {
		t.counts.add(float64(dataCells * cell.Size))
	}
	return nil
}

// serveMux is the relay's hot path: it serves every circuit of one
// connection, allocation-free in steady state. The stream is processed in
// three stages — refill (one large Read for up to SuperCells cells into a
// pooled super arena), demux (route each cell by circuit ID, grouping data
// cells into per-circuit spans and handling control cells inline), and
// decrypt (one fat ApplySpans cipher call per span — §4.1's requirement
// that the relay do its real per-cell crypto work) — then the whole batch
// is echoed with paced writes.
//
// With one decrypt worker all three stages run inline on this goroutine;
// with more, serveMuxParallel runs refill+demux as a reader stage feeding
// per-circuit-pinned decrypt workers and a single paced writer.
//
// Control cells ride the same stream: MsmtCreate is answered by rewriting
// the cell in place into MsmtCreated (the X25519 answer key replaces the
// measurer's), so the echo write returns it with no separate send path;
// MsmtEnd drops the circuit and is echoed back as the drain marker; and
// MsmtUdp binds a datagram data plane (§7) served by ServeUDP. The
// measurer's authorization is re-checked on every MsmtCreate: Revoke must
// cut off a measurer even on a connection it already holds open (the
// pooled-connection case).
func (t *Target) serveMux(conn net.Conn, pub ed25519.PublicKey) error {
	tr := NewConnTransport(conn)
	ms := &muxState{t: t, pub: pub, nWorkers: int32(t.decryptWorkers())}
	defer t.unbindUDP(ms)
	if ms.nWorkers > 1 {
		return t.serveMuxParallel(conn, tr, ms)
	}

	buf := cell.GetSuper()
	defer cell.PutSuper(buf)
	cr := newCellReader(tr, *buf)
	var spans spanSet
	scratch := cell.NewSpanScratch()
	chunkBytes := t.echoChunkBytes(len(*buf))
	for {
		batch, err := cr.nextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return err
			}
			return fmt.Errorf("target read: %w", err)
		}
		dataCells, err := ms.demuxTCP(batch, &spans)
		if err != nil {
			return err
		}
		if !t.cfg.Corrupt {
			for i := 0; i < spans.n; i++ {
				sp := &spans.spans[i]
				sp.st.ApplySpans(batch, sp.offs, scratch)
			}
		}
		if err := t.echoBatch(tr, batch, dataCells, chunkBytes); err != nil {
			return err
		}
	}
}

// createCircuitCell answers an MSMT_CREATE cell: it runs the X25519
// exchange against the public key in the cell payload and rewrites the
// cell in place into the MSMT_CREATED answer (command byte and key), so
// the ordinary echo write delivers it. It returns the circuit's forward
// crypto state — the only direction the echo path uses.
func createCircuitCell(cb []byte) (*cell.CryptoState, error) {
	curve := ecdh.X25519()
	p := cell.PayloadOf(cb)
	peer, err := curve.NewPublicKey(append(make([]byte, 0, 32), p[:32]...))
	if err != nil {
		return nil, fmt.Errorf("target: peer circuit key: %w", err)
	}
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("target: circuit keygen: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("target: circuit ecdh: %w", err)
	}
	secret := sha256.Sum256(shared)
	circ, err := cell.NewCircuit(cell.CircIDOf(cb), secret[:])
	if err != nil {
		return nil, err
	}
	cb[4] = byte(cell.MsmtCreated)
	copy(p[:32], priv.PublicKey().Bytes())
	return circ.Forward, nil
}

// secondCounter accumulates bytes into wall-clock second buckets.
type secondCounter struct {
	mu      sync.Mutex
	start   time.Time
	buckets []float64
}

// maxSecondBuckets bounds the per-second series: a long-lived target
// (continuous coordinator rounds) restarts the window instead of growing
// one bucket per second of uptime forever.
const maxSecondBuckets = 4096

func (s *secondCounter) add(bytes float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	idx := int(time.Since(s.start) / time.Second)
	if idx >= maxSecondBuckets {
		s.start = time.Now()
		s.buckets = s.buckets[:0]
		idx = 0
	}
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += bytes
}

func (s *secondCounter) snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.buckets...)
}
