package wire

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"flashflow/internal/cell"
)

// TargetConfig configures the target-relay side of the measurement
// protocol.
type TargetConfig struct {
	// RateBps limits the aggregate echo rate across all measurement
	// connections (the relay's capacity or configured limit). Zero means
	// unlimited.
	RateBps float64
	// Corrupt, if set, makes the target skip decryption and echo the
	// still-encrypted cell — the forging misbehaviour that echo checks
	// must catch (§5).
	Corrupt bool
}

// Target is the relay-side endpoint: it accepts authenticated measurement
// connections, performs the circuit key exchange, and decrypt-echoes
// measurement cells subject to its rate limit.
type Target struct {
	cfg TargetConfig

	mu      sync.Mutex
	allowed map[string]bool
	pace    pacer
	counts  secondCounter

	wg      sync.WaitGroup
	closing chan struct{}
}

// NewTarget creates a target with no authorized measurers.
func NewTarget(cfg TargetConfig) *Target {
	t := &Target{
		cfg:     cfg,
		allowed: make(map[string]bool),
		closing: make(chan struct{}),
	}
	t.pace.rateBps = cfg.RateBps
	return t
}

// Authorize grants the given measurer public keys access for the current
// measurement (the BWAuth sends the target its team's keys, §4.1).
func (t *Target) Authorize(keys ...ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		t.allowed[string(k)] = true
	}
}

// Revoke removes all authorizations (end of the measurement slot).
func (t *Target) Revoke() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.allowed = make(map[string]bool)
}

// ForwardedBytesPerSecond returns the per-second forwarded measurement
// bytes observed since the first cell.
func (t *Target) ForwardedBytesPerSecond() []float64 {
	return t.counts.snapshot()
}

// Serve accepts and handles connections until the listener closes.
func (t *Target) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			_ = t.HandleConn(conn)
		}()
	}
}

// Close waits for in-flight handlers (listeners must be closed by the
// caller first).
func (t *Target) Close() {
	close(t.closing)
	t.wg.Wait()
}

// HandleConn runs the full target-side protocol on one connection:
// challenge-authenticate, key-exchange, then decrypt-and-echo until the
// measurer sends MsmtEnd or the connection drops.
func (t *Target) HandleConn(conn net.Conn) error {
	defer conn.Close()
	t.mu.Lock()
	allowed := make(map[string]bool, len(t.allowed))
	for k := range t.allowed {
		allowed[k] = true
	}
	t.mu.Unlock()

	if _, err := serverChallenge(conn, allowed); err != nil {
		return fmt.Errorf("target auth: %w", err)
	}
	circ, err := serverKeyExchange(conn)
	if err != nil {
		return fmt.Errorf("target kex: %w", err)
	}

	buf := make([]byte, cell.Size)
	var c cell.Cell
	for {
		if _, err := io.ReadFull(conn, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return fmt.Errorf("target read: %w", err)
		}
		if err := c.Unmarshal(buf); err != nil {
			return err
		}
		switch c.Cmd {
		case cell.MsmtEnd:
			// Echo the End so the measurer's reader can finish cleanly.
			if _, err := conn.Write(buf); err != nil {
				return err
			}
			return nil
		case cell.MsmtData:
			if !t.cfg.Corrupt {
				// The relay's real work: decrypt the cell payload.
				circ.Forward.Apply(&c)
			}
			t.pace.wait(cell.Size * 8)
			out := make([]byte, cell.Size)
			if _, err := c.Marshal(out); err != nil {
				return err
			}
			if _, err := conn.Write(out); err != nil {
				return fmt.Errorf("target echo: %w", err)
			}
			t.counts.add(cell.Size)
		default:
			return fmt.Errorf("target: unexpected cell %v", c.Cmd)
		}
	}
}

// serverKeyExchange answers a FrameCreate with FrameCreated and derives
// the measurement circuit keys.
func serverKeyExchange(rw io.ReadWriter) (*cell.Circuit, error) {
	ft, payload, err := ReadFrame(rw)
	if err != nil {
		return nil, err
	}
	if ft != FrameCreate || len(payload) != 32 {
		return nil, ErrBadFrame
	}
	curve := ecdh.X25519()
	peerPub, err := curve.NewPublicKey(payload)
	if err != nil {
		return nil, fmt.Errorf("peer key: %w", err)
	}
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	if err := WriteFrame(rw, FrameCreated, priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	secret := sha256.Sum256(shared)
	return cell.NewCircuit(1, secret[:])
}

// pacer throttles aggregate throughput to rateBps using wall-clock time.
type pacer struct {
	mu       sync.Mutex
	rateBps  float64
	start    time.Time
	sentBits float64
}

func (p *pacer) wait(bits float64) {
	if p.rateBps <= 0 {
		return
	}
	p.mu.Lock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.sentBits += bits
	due := p.start.Add(time.Duration(p.sentBits / p.rateBps * float64(time.Second)))
	p.mu.Unlock()
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}

// secondCounter accumulates bytes into wall-clock second buckets.
type secondCounter struct {
	mu      sync.Mutex
	start   time.Time
	buckets []float64
}

func (s *secondCounter) add(bytes float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	idx := int(time.Since(s.start) / time.Second)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += bytes
}

func (s *secondCounter) snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.buckets...)
}
