package wire

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"flashflow/internal/cell"
)

// TargetConfig configures the target-relay side of the measurement
// protocol.
type TargetConfig struct {
	// RateBps limits the aggregate echo rate across all measurement
	// connections (the relay's capacity or configured limit). Zero means
	// unlimited.
	RateBps float64
	// Corrupt, if set, makes the target skip decryption and echo the
	// still-encrypted cell — the forging misbehaviour that echo checks
	// must catch (§5).
	Corrupt bool
}

// Target is the relay-side endpoint: it accepts authenticated measurement
// connections, performs the circuit key exchange, and decrypt-echoes
// measurement cells subject to its rate limit.
type Target struct {
	cfg TargetConfig

	mu      sync.Mutex
	allowed map[string]bool
	conns   map[net.Conn]struct{}
	closed  bool
	pace    pacer
	counts  secondCounter

	wg sync.WaitGroup
}

// NewTarget creates a target with no authorized measurers.
func NewTarget(cfg TargetConfig) *Target {
	t := &Target{
		cfg:     cfg,
		allowed: make(map[string]bool),
		conns:   make(map[net.Conn]struct{}),
	}
	t.pace.rateBps = cfg.RateBps
	return t
}

// Authorize grants the given measurer public keys access for the current
// measurement (the BWAuth sends the target its team's keys, §4.1).
func (t *Target) Authorize(keys ...ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range keys {
		t.allowed[string(k)] = true
	}
}

// Revoke removes all authorizations (end of the measurement slot).
func (t *Target) Revoke() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.allowed = make(map[string]bool)
}

// ForwardedBytesPerSecond returns the per-second forwarded measurement
// bytes observed since the first cell.
func (t *Target) ForwardedBytesPerSecond() []float64 {
	return t.counts.snapshot()
}

// Serve accepts and handles connections until the listener closes.
func (t *Target) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			_ = t.HandleConn(conn)
		}()
	}
}

// Close force-closes every open connection — handlers may otherwise
// block forever reading a connection a measurement coordinator keeps
// parked in its pool — and waits for the handlers to exit (listeners must
// be closed by the caller first). The closed flag and the connection set
// share one critical section with HandleConn's registration, so no
// handler can slip a connection in after Close has swept the set.
func (t *Target) Close() {
	t.mu.Lock()
	t.closed = true
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// HandleConn runs the full target-side protocol on one connection:
// challenge-authenticate, then serve measurement circuits — key-exchange
// followed by decrypt-and-echo until MsmtEnd — in a loop, so a connection
// held open by a measurement coordinator (internal/coord) carries one
// circuit per slot without re-dialing or re-authenticating. The connection
// ends when the measurer closes it.
func (t *Target) HandleConn(conn net.Conn) error {
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.conns[conn] = struct{}{}
	allowed := make(map[string]bool, len(t.allowed))
	for k := range t.allowed {
		allowed[k] = true
	}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()

	// One control-frame scratch buffer serves every handshake on this
	// connection; frame payloads are copied out when retained.
	var frameScratch [frameScratchLen]byte
	pub, err := serverChallenge(conn, allowed, frameScratch[:])
	if err != nil {
		return fmt.Errorf("target auth: %w", err)
	}
	for {
		if err := t.serveCircuit(conn, pub, frameScratch[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
	}
}

// authorized reports whether the key is in the current allowed set.
func (t *Target) authorized(pub ed25519.PublicKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allowed[string(pub)]
}

// errRevoked reports a circuit request from a measurer whose
// authorization was withdrawn after the connection authenticated.
var errRevoked = errors.New("wire: measurer authorization revoked")

// serveCircuit serves one measurement circuit: key exchange, then batched
// decrypt-and-echo until the measurer sends MsmtEnd. A nil return means
// the circuit completed cleanly and the connection may carry another.
// The measurer's authorization is re-checked when the circuit request
// arrives: Revoke must cut off a measurer even on a connection it already
// holds open (the pooled-connection case).
//
// The echo loop is the relay's hot path and runs allocation-free in steady
// state: a pooled batch buffer is refilled with one Read for many cells,
// each cell is decrypted in place (§4.1 — the relay does its real crypto
// work), the pacer is credited once per batch, and the whole batch is
// echoed with one Write.
func (t *Target) serveCircuit(conn net.Conn, pub ed25519.PublicKey, frameScratch []byte) error {
	circ, err := serverKeyExchange(conn, frameScratch)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return err
		}
		return fmt.Errorf("target kex: %w", err)
	}
	if !t.authorized(pub) {
		return errRevoked
	}

	batchBuf := cell.GetBatch()
	defer cell.PutBatch(batchBuf)
	cr := newCellReader(conn, *batchBuf)
	for {
		batch, err := cr.nextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return err
			}
			return fmt.Errorf("target read: %w", err)
		}
		k := len(batch) / cell.Size
		for i := 0; i < k; i++ {
			cb := batch[i*cell.Size : (i+1)*cell.Size]
			switch cmd := cell.CommandOf(cb); cmd {
			case cell.MsmtData:
				if !t.cfg.Corrupt {
					// The relay's real work: decrypt the cell payload.
					circ.Forward.ApplyBytes(cell.PayloadOf(cb))
				}
			case cell.MsmtEnd:
				// Echo the decrypted data prefix plus the End marker in
				// one write so the measurer's reader can finish cleanly;
				// only the data cells are paced and counted.
				if i > 0 {
					t.pace.wait(float64(i * cell.Size * 8))
				}
				if _, err := conn.Write(batch[:(i+1)*cell.Size]); err != nil {
					return fmt.Errorf("target echo: %w", err)
				}
				if i > 0 {
					t.counts.add(float64(i * cell.Size))
				}
				return nil
			default:
				return fmt.Errorf("target: unexpected cell %v", cmd)
			}
		}
		t.pace.wait(float64(k * cell.Size * 8))
		if _, err := conn.Write(batch); err != nil {
			return fmt.Errorf("target echo: %w", err)
		}
		t.counts.add(float64(k * cell.Size))
	}
}

// serverKeyExchange answers a FrameCreate with FrameCreated and derives
// the measurement circuit keys. scratch, when non-nil, receives the frame
// payload (nothing from it is retained past the return).
func serverKeyExchange(rw io.ReadWriter, scratch []byte) (*cell.Circuit, error) {
	ft, payload, err := ReadFrameInto(rw, scratch)
	if err != nil {
		return nil, err
	}
	if ft != FrameCreate || len(payload) != 32 {
		return nil, ErrBadFrame
	}
	curve := ecdh.X25519()
	peerPub, err := curve.NewPublicKey(payload)
	if err != nil {
		return nil, fmt.Errorf("peer key: %w", err)
	}
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	if err := WriteFrame(rw, FrameCreated, priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	shared, err := priv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	secret := sha256.Sum256(shared)
	return cell.NewCircuit(1, secret[:])
}

// pacer throttles aggregate throughput to rateBps using wall-clock time.
type pacer struct {
	mu       sync.Mutex
	rateBps  float64
	start    time.Time
	last     time.Time
	sentBits float64
}

// pacerIdleReset bounds how much unused pacing credit an idle gap may
// accumulate: after this much quiet the pacing window restarts. Without
// it, a target parked between measurement rounds (pooled connections,
// internal/coord) banks the whole gap as credit and echoes the next
// slot's opening cells unpaced, inflating that slot's estimate.
const pacerIdleReset = 500 * time.Millisecond

func (p *pacer) wait(bits float64) {
	if p.rateBps <= 0 {
		return
	}
	p.mu.Lock()
	now := time.Now()
	if p.start.IsZero() || now.Sub(p.last) > pacerIdleReset {
		p.start = now
		p.sentBits = 0
	}
	p.last = now
	p.sentBits += bits
	due := p.start.Add(time.Duration(p.sentBits / p.rateBps * float64(time.Second)))
	p.mu.Unlock()
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}

// secondCounter accumulates bytes into wall-clock second buckets.
type secondCounter struct {
	mu      sync.Mutex
	start   time.Time
	buckets []float64
}

// maxSecondBuckets bounds the per-second series: a long-lived target
// (continuous coordinator rounds) restarts the window instead of growing
// one bucket per second of uptime forever.
const maxSecondBuckets = 4096

func (s *secondCounter) add(bytes float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	idx := int(time.Since(s.start) / time.Second)
	if idx >= maxSecondBuckets {
		s.start = time.Now()
		s.buckets = s.buckets[:0]
		idx = 0
	}
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx] += bytes
}

func (s *secondCounter) snapshot() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.buckets...)
}
