package wire

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"sync"

	"flashflow/internal/cell"
)

// The parallel decrypt pipeline shards a connection's per-cell crypto
// across cores without giving up any demux invariant:
//
//	reader (refill + demux + dispatch) → N decrypt workers → paced writer
//
// A ring of pipelineDepth pooled super arenas circulates reader → workers
// → writer → reader, so the reader refills batch k+2 while workers decrypt
// batch k+1 and the writer echoes batch k. Ordering rests on two rules:
//
//   - Worker pinning: each circuit is pinned to one worker (by circuit
//     ID), worker job queues are FIFO, and the reader dispatches batches
//     in stream order — so a circuit's sequential CTR state has a single
//     owner that sees its spans exactly in stream order.
//   - Echo ordering: the writer consumes batches in stream order and
//     waits for each batch's decrypts to finish (per-batch WaitGroup)
//     before writing, so echoed bytes leave in exactly the order the
//     measurer sent them — the whole-stream contract, strictly stronger
//     than the per-circuit order the protocol needs.
//
// Every channel's capacity is pipelineDepth, so with only pipelineDepth
// batches in existence no send can ever block: the reader is the sole
// stage that waits (on freeQ or the socket), which makes teardown a
// drain-and-close sequence with no lost arenas.
const pipelineDepth = 3

// muxParBatch is one super arena moving through the pipeline.
type muxParBatch struct {
	arena     *[]byte
	cells     []byte // whole cells of this batch (prefix of *arena)
	spans     spanSet
	dataCells int
	wg        sync.WaitGroup // decrypts outstanding; writer waits
}

// serveMuxParallel is serveMux's multi-core body. The calling goroutine
// becomes the reader stage; workers and the writer are spawned here and
// joined before returning, so HandleConn's lifecycle is unchanged.
func (t *Target) serveMuxParallel(conn net.Conn, tr Transport, ms *muxState) error {
	nw := int(ms.nWorkers)
	freeQ := make(chan *muxParBatch, pipelineDepth)
	writeQ := make(chan *muxParBatch, pipelineDepth)
	jobs := make([]chan *muxParBatch, nw)
	for i := range jobs {
		jobs[i] = make(chan *muxParBatch, pipelineDepth)
	}
	for i := 0; i < pipelineDepth; i++ {
		freeQ <- &muxParBatch{arena: cell.GetSuper()}
	}

	var workerWG sync.WaitGroup
	for w := 0; w < nw; w++ {
		workerWG.Add(1)
		go func(w int32, jobsW <-chan *muxParBatch) {
			defer workerWG.Done()
			scratch := cell.NewSpanScratch()
			for b := range jobsW {
				for i := 0; i < b.spans.n; i++ {
					sp := &b.spans.spans[i]
					if sp.worker == w {
						sp.st.ApplySpans(b.cells, sp.offs, scratch)
					}
				}
				b.wg.Done()
			}
		}(int32(w), jobs[w])
	}

	// Writer: the single paced exit point, preserving stream order. On a
	// write error it closes the connection (unblocking the reader's next
	// Read) and keeps recycling batches without writing, so the pipeline
	// always drains; conn.Close is idempotent and HandleConn closes it
	// again on return.
	var writerWG sync.WaitGroup
	var writerErr error
	chunkBytes := t.echoChunkBytes(cell.SuperBytes)
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for b := range writeQ {
			b.wg.Wait()
			if writerErr == nil {
				if err := t.echoBatch(tr, b.cells, b.dataCells, chunkBytes); err != nil {
					writerErr = err
					conn.Close()
				}
			}
			freeQ <- b
		}
	}()

	// Reader: refill + demux + dispatch, in stream order. The partial-cell
	// remainder of each refill is carried into the next batch's arena, the
	// same sliding the cellReader does, but across arenas.
	var carry [cell.Size]byte
	carryLen := 0
	var readErr error
	for readErr == nil {
		b := <-freeQ
		arena := (*b.arena)[:cell.SuperBytes]
		copy(arena, carry[:carryLen])
		total := carryLen
		for total < cell.Size {
			n, err := tr.Read(arena[total:])
			total += n
			if total >= cell.Size {
				break // the error, if any, resurfaces on the next Read
			}
			if err != nil {
				if err == io.EOF && total > 0 {
					err = io.ErrUnexpectedEOF
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					err = fmt.Errorf("target read: %w", err)
				}
				readErr = err
				break
			}
		}
		if readErr != nil {
			freeQ <- b
			break
		}
		usable := total - total%cell.Size
		carryLen = copy(carry[:], arena[usable:total])
		b.cells = arena[:usable]
		b.dataCells, readErr = ms.demuxTCP(b.cells, &b.spans)
		if readErr != nil {
			freeQ <- b
			break
		}
		// Dispatch to exactly the workers owning spans in this batch. A
		// corrupt target (§5 forging) skips decryption entirely: no
		// dispatch, and the writer's Wait returns immediately.
		if !t.cfg.Corrupt && b.spans.n > 0 {
			var mask uint64
			for i := 0; i < b.spans.n; i++ {
				mask |= 1 << uint(b.spans.spans[i].worker)
			}
			b.wg.Add(bits.OnesCount64(mask))
			for w := 0; w < nw; w++ {
				if mask&(1<<uint(w)) != 0 {
					jobs[w] <- b
				}
			}
		}
		writeQ <- b
	}

	// Teardown: reclaim every batch from the ring (in-flight ones come
	// back through the writer's recycle), then release the stages. The
	// writer never blocks — it only receives from writeQ and sends into
	// freeQ's guaranteed capacity — so this drain cannot deadlock.
	owned := make([]*muxParBatch, 0, pipelineDepth)
	for len(owned) < pipelineDepth {
		owned = append(owned, <-freeQ)
	}
	for _, j := range jobs {
		close(j)
	}
	workerWG.Wait()
	close(writeQ)
	writerWG.Wait()
	for _, b := range owned {
		cell.PutSuper(b.arena)
	}
	if writerErr != nil {
		// The write failure is the root cause; the reader's error is just
		// the closed connection it provoked.
		return writerErr
	}
	return readErr
}
