package wire

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flashflow/internal/cell"
)

// Dialer opens a connection to the target relay.
type Dialer func() (net.Conn, error)

// Session is optionally implemented by connections that outlive a single
// measurement, such as the pooled connections of internal/coord. Measure
// skips the identity handshake on a connection whose session is already
// authenticated (the target keeps the authentication for the life of the
// connection), and marks the session reusable only when the slot ends with
// the protocol in a clean state — the MsmtEnd echo fully drained — so a
// torn-down or desynchronized connection is never returned to a pool.
type Session interface {
	// Authenticated reports whether a previous measurement on this
	// connection already completed the identity handshake.
	Authenticated() bool
	// MarkAuthenticated records a completed identity handshake.
	MarkAuthenticated()
	// MarkReusable records that the measurement ended cleanly and the
	// connection can carry another measurement circuit.
	MarkReusable()
}

// MeasureOptions configures one measurer's participation in a measurement
// slot.
type MeasureOptions struct {
	// Identity authenticates the measurer to the target.
	Identity Identity
	// Sockets is this measurer's socket share s/(m) (§4.1).
	Sockets int
	// RateBps is the measurer's allocation a_i; each socket paces itself
	// to an even share.
	RateBps float64
	// Duration is the measurement slot length t.
	Duration time.Duration
	// CheckProb is the probability p of recording a sent cell's payload
	// and verifying the echoed contents (§4.1).
	CheckProb float64
	// Seed makes the cell payload stream and check sampling reproducible.
	Seed int64
	// OnSecond, when set, is called once per completed wall-clock second
	// of the slot, in order, with this measurer's echoed bytes during that
	// second. The callback runs on a dedicated goroutine; it must return
	// quickly. It is a live view — cells still in flight at the second
	// boundary land in the authoritative PerSecondBytes of the final
	// MeasureResult.
	OnSecond func(second int, bytes float64)
}

// MeasureResult is one measurer's view of a slot.
type MeasureResult struct {
	// PerSecondBytes[j] is the number of measurement bytes echoed back
	// during second j. Truncated to the completed seconds when the slot
	// was cancelled mid-way.
	PerSecondBytes []float64
	// CellsChecked counts echoed cells whose content was verified.
	CellsChecked int
	// Failed is set when any checked echo had wrong contents; the BWAuth
	// discards the measurement (§4.1).
	Failed bool
}

// Measure runs one measurer's side of a measurement slot: it opens
// opts.Sockets connections, authenticates, builds a measurement circuit on
// each, then streams MsmtData cells full of random bytes as fast as the
// per-socket rate allows, verifying echoed contents with probability p.
//
// Cancelling ctx tears the slot down promptly: every connection is closed
// (and, when ctx carries a deadline, the connections also wear that
// deadline), the send/recv loops exit, and Measure returns the per-second
// bytes of the seconds completed before cancellation together with
// ctx.Err().
func Measure(ctx context.Context, dial Dialer, opts MeasureOptions) (MeasureResult, error) {
	if opts.Sockets <= 0 {
		return MeasureResult{}, errors.New("wire: need at least one socket")
	}
	if opts.Duration <= 0 {
		return MeasureResult{}, errors.New("wire: nonpositive duration")
	}
	seconds := int(math.Ceil(opts.Duration.Seconds()))
	perSocketRate := opts.RateBps / float64(opts.Sockets)

	// All sockets of this measurer accumulate into one shared set of
	// per-second buckets, updated with atomic adds so the hot echo loop
	// stays lock- and allocation-free while the streamer goroutine below
	// can observe completed seconds concurrently.
	buckets := make([]atomic.Uint64, seconds)

	var (
		mu       sync.Mutex
		checked  int
		failed   bool
		firstErr error
	)
	start := time.Now()

	done := make(chan struct{})
	var streamWG sync.WaitGroup
	if opts.OnSecond != nil {
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			streamSeconds(ctx, done, start, buckets, opts.OnSecond)
		}()
	}

	var wg sync.WaitGroup
	for s := 0; s < opts.Sockets; s++ {
		wg.Add(1)
		go func(sockIdx int) {
			defer wg.Done()
			res, err := measureSocket(ctx, dial, opts, perSocketRate, start, buckets, seconds, opts.Seed+int64(sockIdx))
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			checked += res.CellsChecked
			if res.Failed {
				failed = true
			}
		}(s)
	}
	wg.Wait()
	close(done)
	streamWG.Wait()

	completed := seconds
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Normalize the per-socket teardown errors (closed connections,
		// expired deadlines) to the context's own error, and report only
		// the fully elapsed seconds.
		firstErr = ctxErr
		completed = int(time.Since(start) / time.Second)
		if completed > seconds {
			completed = seconds
		}
	}
	res := MeasureResult{PerSecondBytes: make([]float64, completed), CellsChecked: checked, Failed: failed}
	for j := 0; j < completed; j++ {
		res.PerSecondBytes[j] = float64(buckets[j].Load())
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// streamSeconds delivers each completed second's byte count to onSecond.
// It waits slightly past every second boundary so late atomic adds from
// the reader goroutines are included, and stops as soon as the slot's
// sockets are done or the context is cancelled — an interrupted slot never
// streams a second it did not complete.
const streamFlushSlack = 20 * time.Millisecond

func streamSeconds(ctx context.Context, done <-chan struct{}, start time.Time, buckets []atomic.Uint64, onSecond func(int, float64)) {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for j := range buckets {
		boundary := start.Add(time.Duration(j+1)*time.Second + streamFlushSlack)
		timer.Reset(time.Until(boundary))
		select {
		case <-timer.C:
		case <-ctx.Done():
			return
		case <-done:
			return
		}
		onSecond(j, float64(buckets[j].Load()))
	}
}

// inflightWindow bounds the number of un-echoed cells in flight per
// socket, as the paper's clients take "care not to overflow circuit queue
// length limits" (§3.4). Without it, a fast sender buries a slower target
// in kernel buffers and the slot cannot drain cleanly. The window is a
// small multiple of the batch size so batching never starves the pipeline.
const inflightWindow = 8 * cell.BatchCells

// measureSocket drives a single measurement connection, adding every
// echoed cell's bytes into the shared per-second buckets.
func measureSocket(ctx context.Context, dial Dialer, opts MeasureOptions, rateBps float64, start time.Time, buckets []atomic.Uint64, seconds int, seed int64) (MeasureResult, error) {
	if err := ctx.Err(); err != nil {
		return MeasureResult{}, err
	}
	conn, err := dial()
	if err != nil {
		return MeasureResult{}, fmt.Errorf("dial: %w", err)
	}
	// Every teardown path — normal return, abort, and the cancellation
	// watcher below — funnels through one sync.Once: a pooled connection's
	// Close parks it for reuse, and racing the context watcher against the
	// deferred close could otherwise park the same connection twice and
	// hand it to two concurrent measurements later.
	var closeOnce sync.Once
	closeConn := func() { closeOnce.Do(func() { conn.Close() }) }
	defer closeConn()

	// Cancellation plumbing: closing the connection is what actually
	// unblocks the send/recv loops, so hook it straight to the context;
	// a context deadline additionally becomes a connection deadline so a
	// wedged peer cannot stall the slot past its budget even while the
	// context itself is still alive.
	stopWatch := context.AfterFunc(ctx, closeConn)
	defer stopWatch()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}

	sess, _ := conn.(Session)
	if sess == nil || !sess.Authenticated() {
		if err := clientAuthenticate(conn, opts.Identity); err != nil {
			return MeasureResult{}, err
		}
		if sess != nil {
			sess.MarkAuthenticated()
		}
	}
	circ, err := clientKeyExchange(conn)
	if err != nil {
		return MeasureResult{}, err
	}

	var res MeasureResult
	rng := mrand.New(mrand.NewSource(seed))

	// Digest queue of checked cells: the TCP stream preserves order, so
	// the reader compares by sequence number.
	type check struct {
		seq    uint64
		digest [8]byte
	}
	var (
		checksMu sync.Mutex
		checks   []check
	)

	tokens := make(chan struct{}, inflightWindow)

	// Reader: consume the echo stream batch-refilled from a pooled buffer,
	// with per-cell accounting done in place — no per-cell allocation, no
	// per-cell copy.
	readBuf := cell.GetBatch()
	defer cell.PutBatch(readBuf)
	readerDone := make(chan error, 1)
	go func() {
		cr := newCellReader(conn, *readBuf)
		var recvSeq uint64
		for {
			cb, err := cr.next()
			if err != nil {
				readerDone <- fmt.Errorf("read echo: %w", err)
				return
			}
			if cell.CommandOf(cb) == cell.MsmtEnd {
				readerDone <- nil
				return
			}
			select {
			case <-tokens:
			default:
			}
			idx := int(time.Since(start) / time.Second)
			if idx >= 0 && idx < seconds {
				buckets[idx].Add(cell.Size)
			}
			if opts.CheckProb > 0 {
				checksMu.Lock()
				if len(checks) > 0 && checks[0].seq == recvSeq {
					res.CellsChecked++
					if cell.Digest(cell.PayloadOf(cb)) != checks[0].digest {
						res.Failed = true
					}
					checks = checks[1:]
				}
				checksMu.Unlock()
			}
			recvSeq++
		}
	}()

	// abort tears the connection down and waits for the reader so that no
	// goroutine still writes to res when we return it.
	abort := func(e error) (MeasureResult, error) {
		closeConn()
		<-readerDone
		if ctxErr := ctx.Err(); ctxErr != nil {
			e = ctxErr
		}
		return res, e
	}

	// Sender: paced batches of random-content cells. Each iteration
	// assembles up to cell.BatchCells cells in a pooled contiguous buffer
	// — header, payload fill, probabilistic check recording, in-place
	// forward encryption — then credits the pacer once for the whole
	// batch and ships it with a single Write.
	sendBuf := cell.GetBatch()
	defer cell.PutBatch(sendBuf)
	out := *sendBuf

	var pace pacer
	pace.rateBps = rateBps
	var sendSeq uint64
	deadline := start.Add(opts.Duration)
	waitTimer := time.NewTimer(time.Hour)
	if !waitTimer.Stop() {
		<-waitTimer.C
	}
	defer waitTimer.Stop()
	for {
		if ctx.Err() != nil {
			return abort(ctx.Err())
		}
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Take as many free in-flight slots as the batch can hold;
		// block for the first one only, and never past the deadline.
		n := 0
	greedy:
		for n < cell.BatchCells {
			select {
			case tokens <- struct{}{}:
				n++
			default:
				break greedy
			}
		}
		if n == 0 {
			waitTimer.Reset(deadline.Sub(now))
			select {
			case tokens <- struct{}{}:
				if !waitTimer.Stop() {
					<-waitTimer.C
				}
				n = 1
			case <-ctx.Done():
				return abort(ctx.Err())
			case <-waitTimer.C:
				continue // deadline reached while window was full
			}
		}
		for i := 0; i < n; i++ {
			cb := out[i*cell.Size : (i+1)*cell.Size]
			cell.PutHeader(cb, 1, cell.MsmtData)
			FillPayload(rng, cell.PayloadOf(cb))
			if opts.CheckProb > 0 && rng.Float64() < opts.CheckProb {
				checksMu.Lock()
				checks = append(checks, check{seq: sendSeq + uint64(i), digest: cell.Digest(cell.PayloadOf(cb))})
				checksMu.Unlock()
			}
			// Encrypt forward; the honest target decrypts back to the
			// random plaintext we recorded.
			circ.Forward.ApplyBytes(cell.PayloadOf(cb))
		}
		pace.wait(float64(n * cell.Size * 8))
		if _, err := conn.Write(out[:n*cell.Size]); err != nil {
			return abort(fmt.Errorf("send cells: %w", err))
		}
		sendSeq += uint64(n)
	}
	// Signal the end of the slot and wait for the echo stream to drain.
	end := out[:cell.Size]
	cell.PutHeader(end, 1, cell.MsmtEnd)
	clear(cell.PayloadOf(end))
	if _, err := conn.Write(end); err != nil {
		return abort(fmt.Errorf("send end: %w", err))
	}
	drainTimer := time.NewTimer(5 * time.Second)
	defer drainTimer.Stop()
	select {
	case err := <-readerDone:
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				err = ctxErr
			}
			return res, err
		}
	case <-ctx.Done():
		return abort(ctx.Err())
	case <-drainTimer.C:
		return abort(errors.New("wire: timed out draining echo stream"))
	}
	if sess != nil {
		sess.MarkReusable()
	}
	return res, nil
}

// clientKeyExchange initiates the X25519 exchange and derives circuit keys.
func clientKeyExchange(rw io.ReadWriter) (*cell.Circuit, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	if err := WriteFrame(rw, FrameCreate, priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	var scratch [64]byte
	ft, payload, err := ReadFrameInto(rw, scratch[:])
	if err != nil {
		return nil, err
	}
	if ft != FrameCreated || len(payload) != 32 {
		return nil, ErrBadFrame
	}
	peer, err := curve.NewPublicKey(payload)
	if err != nil {
		return nil, fmt.Errorf("peer key: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	secret := sha256.Sum256(shared)
	return cell.NewCircuit(1, secret[:])
}

// FillPayload fills buf from a fast deterministic stream (crypto-strength
// randomness is unnecessary for payload content; unpredictability to the
// *target* comes from the forward encryption layer). Exported so the perf
// harness measures the exact fill the sender performs.
func FillPayload(rng *mrand.Rand, buf []byte) {
	for i := 0; i+8 <= len(buf); i += 8 {
		v := rng.Uint64()
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	for i := len(buf) - len(buf)%8; i < len(buf); i++ {
		buf[i] = byte(rng.Uint32())
	}
}
