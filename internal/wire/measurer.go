package wire

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"flashflow/internal/cell"
)

// Dialer opens a connection to the target relay.
type Dialer func() (net.Conn, error)

// Session is optionally implemented by connections that outlive a single
// measurement, such as the pooled connections of internal/coord. Measure
// skips the identity handshake on a connection whose session is already
// authenticated (the target keeps the authentication for the life of the
// connection), and marks the session reusable only when the slot ends with
// the protocol in a clean state — the MsmtEnd echo fully drained — so a
// torn-down or desynchronized connection is never returned to a pool.
type Session interface {
	// Authenticated reports whether a previous measurement on this
	// connection already completed the identity handshake.
	Authenticated() bool
	// MarkAuthenticated records a completed identity handshake.
	MarkAuthenticated()
	// MarkReusable records that the measurement ended cleanly and the
	// connection can carry another measurement circuit.
	MarkReusable()
}

// MeasureOptions configures one measurer's participation in a measurement
// slot.
type MeasureOptions struct {
	// Identity authenticates the measurer to the target.
	Identity Identity
	// Sockets is this measurer's socket share s/(m) (§4.1).
	Sockets int
	// RateBps is the measurer's allocation a_i; each socket paces itself
	// to an even share.
	RateBps float64
	// Duration is the measurement slot length t.
	Duration time.Duration
	// CheckProb is the probability p of recording a sent cell's payload
	// and verifying the echoed contents (§4.1).
	CheckProb float64
	// Seed makes the cell payload stream and check sampling reproducible.
	Seed int64
}

// MeasureResult is one measurer's view of a slot.
type MeasureResult struct {
	// PerSecondBytes[j] is the number of measurement bytes echoed back
	// during second j.
	PerSecondBytes []float64
	// CellsChecked counts echoed cells whose content was verified.
	CellsChecked int
	// Failed is set when any checked echo had wrong contents; the BWAuth
	// discards the measurement (§4.1).
	Failed bool
}

// Measure runs one measurer's side of a measurement slot: it opens
// opts.Sockets connections, authenticates, builds a measurement circuit on
// each, then streams MsmtData cells full of random bytes as fast as the
// per-socket rate allows, verifying echoed contents with probability p.
func Measure(dial Dialer, opts MeasureOptions) (MeasureResult, error) {
	if opts.Sockets <= 0 {
		return MeasureResult{}, errors.New("wire: need at least one socket")
	}
	if opts.Duration <= 0 {
		return MeasureResult{}, errors.New("wire: nonpositive duration")
	}
	seconds := int(math.Ceil(opts.Duration.Seconds()))
	perSocketRate := opts.RateBps / float64(opts.Sockets)

	var (
		mu       sync.Mutex
		buckets  = make([]float64, seconds)
		checked  int
		failed   bool
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < opts.Sockets; s++ {
		wg.Add(1)
		go func(sockIdx int) {
			defer wg.Done()
			res, err := measureSocket(dial, opts, perSocketRate, start, seconds, opts.Seed+int64(sockIdx))
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			for j, b := range res.PerSecondBytes {
				if j < seconds {
					buckets[j] += b
				}
			}
			checked += res.CellsChecked
			if res.Failed {
				failed = true
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return MeasureResult{}, firstErr
	}
	return MeasureResult{PerSecondBytes: buckets, CellsChecked: checked, Failed: failed}, nil
}

// measureSocket drives a single measurement connection.
func measureSocket(dial Dialer, opts MeasureOptions, rateBps float64, start time.Time, seconds int, seed int64) (MeasureResult, error) {
	conn, err := dial()
	if err != nil {
		return MeasureResult{}, fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()

	sess, _ := conn.(Session)
	if sess == nil || !sess.Authenticated() {
		if err := clientAuthenticate(conn, opts.Identity); err != nil {
			return MeasureResult{}, err
		}
		if sess != nil {
			sess.MarkAuthenticated()
		}
	}
	circ, err := clientKeyExchange(conn)
	if err != nil {
		return MeasureResult{}, err
	}

	res := MeasureResult{PerSecondBytes: make([]float64, seconds)}
	rng := mrand.New(mrand.NewSource(seed))

	// Digest queue of checked cells: the TCP stream preserves order, so
	// the reader compares by sequence number.
	type check struct {
		seq    uint64
		digest [8]byte
	}
	var (
		checksMu sync.Mutex
		checks   []check
	)

	// Flow control: bound the number of un-echoed cells in flight per
	// socket, as the paper's clients take "care not to overflow circuit
	// queue length limits" (§3.4). Without it, a fast sender buries a
	// slower target in kernel buffers and the slot cannot drain cleanly.
	const inflightWindow = 64
	tokens := make(chan struct{}, inflightWindow)

	readerDone := make(chan error, 1)
	go func() {
		buf := make([]byte, cell.Size)
		var c cell.Cell
		var recvSeq uint64
		for {
			if _, err := io.ReadFull(conn, buf); err != nil {
				readerDone <- fmt.Errorf("read echo: %w", err)
				return
			}
			if err := c.Unmarshal(buf); err != nil {
				readerDone <- err
				return
			}
			if c.Cmd == cell.MsmtEnd {
				readerDone <- nil
				return
			}
			select {
			case <-tokens:
			default:
			}
			idx := int(time.Since(start) / time.Second)
			if idx >= 0 && idx < seconds {
				res.PerSecondBytes[idx] += cell.Size
			}
			checksMu.Lock()
			if len(checks) > 0 && checks[0].seq == recvSeq {
				res.CellsChecked++
				if cell.Digest(c.Payload[:]) != checks[0].digest {
					res.Failed = true
				}
				checks = checks[1:]
			}
			checksMu.Unlock()
			recvSeq++
		}
	}()

	// abort tears the connection down and waits for the reader so that no
	// goroutine still writes to res when we return it.
	abort := func(e error) (MeasureResult, error) {
		conn.Close()
		<-readerDone
		return res, e
	}

	// Sender: paced stream of random-content cells.
	var pace pacer
	pace.rateBps = rateBps
	var sendSeq uint64
	deadline := start.Add(opts.Duration)
	out := make([]byte, cell.Size)
	var c cell.Cell
	c.CircID = 1
	c.Cmd = cell.MsmtData
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Acquire an in-flight slot, but never sleep past the deadline.
		waitTimer := time.NewTimer(deadline.Sub(now))
		select {
		case tokens <- struct{}{}:
			waitTimer.Stop()
		case <-waitTimer.C:
			continue // deadline reached while window was full
		}
		fillRandom(rng, c.Payload[:])
		if opts.CheckProb > 0 && rng.Float64() < opts.CheckProb {
			checksMu.Lock()
			checks = append(checks, check{seq: sendSeq, digest: cell.Digest(c.Payload[:])})
			checksMu.Unlock()
		}
		// Encrypt forward; the honest target decrypts back to the random
		// plaintext we recorded.
		circ.Forward.Apply(&c)
		pace.wait(cell.Size * 8)
		if _, err := c.Marshal(out); err != nil {
			return abort(err)
		}
		if _, err := conn.Write(out); err != nil {
			return abort(fmt.Errorf("send cell: %w", err))
		}
		sendSeq++
	}
	// Signal the end of the slot and wait for the echo stream to drain.
	var end cell.Cell
	end.CircID = 1
	end.Cmd = cell.MsmtEnd
	if _, err := end.Marshal(out); err != nil {
		return abort(err)
	}
	if _, err := conn.Write(out); err != nil {
		return abort(fmt.Errorf("send end: %w", err))
	}
	select {
	case err := <-readerDone:
		if err != nil {
			return res, err
		}
	case <-time.After(5 * time.Second):
		return abort(errors.New("wire: timed out draining echo stream"))
	}
	if sess != nil {
		sess.MarkReusable()
	}
	return res, nil
}

// clientKeyExchange initiates the X25519 exchange and derives circuit keys.
func clientKeyExchange(rw io.ReadWriter) (*cell.Circuit, error) {
	curve := ecdh.X25519()
	priv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	if err := WriteFrame(rw, FrameCreate, priv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	ft, payload, err := ReadFrame(rw)
	if err != nil {
		return nil, err
	}
	if ft != FrameCreated || len(payload) != 32 {
		return nil, ErrBadFrame
	}
	peer, err := curve.NewPublicKey(payload)
	if err != nil {
		return nil, fmt.Errorf("peer key: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("ecdh: %w", err)
	}
	secret := sha256.Sum256(shared)
	return cell.NewCircuit(1, secret[:])
}

// fillRandom fills buf from a fast deterministic stream (crypto-strength
// randomness is unnecessary for payload content; unpredictability to the
// *target* comes from the forward encryption layer).
func fillRandom(rng *mrand.Rand, buf []byte) {
	for i := 0; i+8 <= len(buf); i += 8 {
		v := rng.Uint64()
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	for i := len(buf) - len(buf)%8; i < len(buf); i++ {
		buf[i] = byte(rng.Uint32())
	}
}
