package wire

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flashflow/internal/cell"
)

// Dialer opens a connection to the target relay.
type Dialer func() (net.Conn, error)

// Session is optionally implemented by connections that outlive a single
// measurement, such as the pooled connections of internal/coord. Measure
// skips the identity handshake on a connection whose session is already
// authenticated (the target keeps the authentication for the life of the
// connection), and marks the session reusable only when the slot ends with
// the protocol in a clean state — every circuit's MsmtEnd echo fully
// drained — so a torn-down or desynchronized connection is never returned
// to a pool.
type Session interface {
	// Authenticated reports whether a previous measurement on this
	// connection already completed the identity handshake.
	Authenticated() bool
	// MarkAuthenticated records a completed identity handshake.
	MarkAuthenticated()
	// MarkReusable records that the measurement ended cleanly and the
	// connection can carry another measurement's circuits.
	MarkReusable()
}

// MeasureOptions configures one measurer's participation in a measurement
// slot.
type MeasureOptions struct {
	// Identity authenticates the measurer to the target.
	Identity Identity
	// Sockets is this measurer's socket share s/m (§4.1). The multiplexed
	// data plane realizes the share as that many concurrent measurement
	// circuits on a single authenticated connection, so the paper's
	// parallelism parameter is preserved while the kernel handles one
	// socket per measurer↔target pair.
	Sockets int
	// RateBps is the measurer's allocation a_i; the connection's single
	// paced writer holds the aggregate to it.
	RateBps float64
	// Duration is the measurement slot length t.
	Duration time.Duration
	// CheckProb is the probability p of verifying an echoed cell's
	// contents (§4.1). Sampling is deterministic in (Seed, circuit, cell
	// sequence), so no sender-side record of checked cells is needed.
	CheckProb float64
	// Seed makes the check sampling reproducible.
	Seed int64
	// DialData, when set, moves the measurement data plane to datagrams:
	// it must open a connected packet socket (typically UDP) to the
	// target's data listener. Control — authentication, circuit creation,
	// teardown — stays on the dialed connection; only MsmtData cells and
	// their echoes travel on the data socket. The result then also carries
	// the loss accounting (SentCells/LostCells).
	DialData Dialer
	// OnSecond, when set, is called once per completed wall-clock second
	// of the slot, in order, with this measurer's echoed bytes during that
	// second. The callback runs on a dedicated goroutine; it must return
	// quickly. It is a live view — cells still in flight at the second
	// boundary land in the authoritative PerSecondBytes of the final
	// MeasureResult.
	OnSecond func(second int, bytes float64)
}

// MeasureResult is one measurer's view of a slot.
type MeasureResult struct {
	// PerSecondBytes[j] is the number of measurement bytes echoed back
	// during second j. Truncated to the completed seconds when the slot
	// was cancelled mid-way.
	PerSecondBytes []float64
	// CellsChecked counts echoed cells whose content was verified.
	CellsChecked int
	// Failed is set when any checked echo had wrong contents; the BWAuth
	// discards the measurement (§4.1).
	Failed bool
	// SentCells is the number of measurement cells put on the wire; only
	// set on the datagram data plane (DialData), where cells can be lost.
	SentCells int64
	// LostCells is how many sent cells never echoed back — the datagram
	// plane's loss signal. Always zero on TCP, where the transport
	// retransmits instead.
	LostCells int64
}

// maxCircuits caps the concurrent circuits one measurement multiplexes on
// a connection. Past a couple hundred, more circuits add per-circuit state
// without adding pipeline depth; a socket share larger than the cap is
// clamped rather than rejected.
const maxCircuits = cell.SuperCells

// inflightWindow is the per-circuit contribution to the connection's
// in-flight cell window, as the paper's clients take "care not to overflow
// circuit queue length limits" (§3.4). Without a window, a fast sender
// buries a slower target in kernel buffers and the slot cannot drain
// cleanly. A small multiple of the batch size keeps batching from starving
// the pipeline.
const inflightWindow = 8 * cell.BatchCells

// maxWindowCells caps the aggregate window across all circuits (~1 MiB in
// flight): beyond that, deeper pipelining only adds drain time.
const maxWindowCells = 2048

// Measure runs one measurer's side of a measurement slot: it opens one
// connection, authenticates, multiplexes opts.Sockets measurement circuits
// onto it, then streams MsmtData cells as fast as the rate allows —
// sharded fillers assembling batches behind a single paced writer that
// ships several batches per vectored write — while one reader demultiplexes
// the echo stream by circuit ID and spot-verifies contents with
// probability p.
//
// Cancelling ctx tears the slot down promptly: the connection is closed
// (and, when ctx carries a deadline, the connection also wears that
// deadline), the send/recv goroutines exit, and Measure returns the
// per-second bytes of the seconds completed before cancellation together
// with ctx.Err().
func Measure(ctx context.Context, dial Dialer, opts MeasureOptions) (MeasureResult, error) {
	if opts.Sockets <= 0 {
		return MeasureResult{}, errors.New("wire: need at least one socket")
	}
	if opts.Duration <= 0 {
		return MeasureResult{}, errors.New("wire: nonpositive duration")
	}
	seconds := int(math.Ceil(opts.Duration.Seconds()))
	nCirc := opts.Sockets
	if nCirc > maxCircuits {
		nCirc = maxCircuits
	}

	// Every circuit accumulates into one shared set of per-second buckets,
	// updated with atomic adds so the echo loop stays lock- and
	// allocation-free while the streamer goroutine below can observe
	// completed seconds concurrently.
	buckets := make([]atomic.Uint64, seconds)
	start := time.Now()

	done := make(chan struct{})
	var streamWG sync.WaitGroup
	if opts.OnSecond != nil {
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			streamSeconds(ctx, done, start, buckets, opts.OnSecond)
		}()
	}

	res, err := measureConn(ctx, dial, opts, nCirc, start, buckets, seconds)
	close(done)
	streamWG.Wait()

	completed := seconds
	if ctxErr := ctx.Err(); ctxErr != nil {
		// Normalize the teardown errors (closed connections, expired
		// deadlines) to the context's own error, and report only the fully
		// elapsed seconds.
		err = ctxErr
		completed = int(time.Since(start) / time.Second)
		if completed > seconds {
			completed = seconds
		}
	}
	res.PerSecondBytes = make([]float64, completed)
	for j := 0; j < completed; j++ {
		res.PerSecondBytes[j] = float64(buckets[j].Load())
	}
	return res, err
}

// streamSeconds delivers each completed second's byte count to onSecond.
// It waits slightly past every second boundary so late atomic adds from
// the reader goroutine are included, and stops as soon as the slot is done
// or the context is cancelled — an interrupted slot never streams a second
// it did not complete.
const streamFlushSlack = 20 * time.Millisecond

func streamSeconds(ctx context.Context, done <-chan struct{}, start time.Time, buckets []atomic.Uint64, onSecond func(int, float64)) {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for j := range buckets {
		boundary := start.Add(time.Duration(j+1)*time.Second + streamFlushSlack)
		timer.Reset(time.Until(boundary))
		select {
		case <-timer.C:
		case <-ctx.Done():
			return
		case <-done:
			return
		}
		onSecond(j, float64(buckets[j].Load()))
	}
}

// flowWindow bounds the un-echoed cells in flight on a connection with a
// single atomic counter shared by every sender shard, replacing the old
// per-cell token-channel operations. release wakes at most one blocked
// shard; further releases arrive batch-by-batch from the reader, so a
// briefly missed wakeup self-heals.
type flowWindow struct {
	capacity int64
	inflight atomic.Int64
	wake     chan struct{}
}

func newFlowWindow(capacity int64) *flowWindow {
	return &flowWindow{capacity: capacity, wake: make(chan struct{}, 1)}
}

// tryAcquire takes up to n in-flight slots without blocking and returns
// how many it took (possibly zero).
func (w *flowWindow) tryAcquire(n int64) int64 {
	for {
		cur := w.inflight.Load()
		free := w.capacity - cur
		if free <= 0 {
			return 0
		}
		take := min(free, n)
		if w.inflight.CompareAndSwap(cur, cur+take) {
			return take
		}
	}
}

// release returns n slots and signals one waiter.
func (w *flowWindow) release(n int64) {
	w.inflight.Add(-n)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// checkSampled reports whether the cell (circID, seq) is spot-checked: a
// stateless uniform hash of the measurement seed and the cell's identity
// against a threshold derived from CheckProb. Deterministic sampling keeps
// the check decision out of the send path entirely — the old shared
// digest queue cost a mutex and an append per checked cell, which was the
// per-cell heap traffic the team benchmark showed.
func checkSampled(seed uint64, circID uint32, seq, threshold uint64) bool {
	x := seed ^ uint64(circID)*0x9E3779B97F4A7C15 ^ seq*0xBF58476D1CE4E5B9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x < threshold
}

// checkThreshold converts a check probability to the hash threshold used
// by checkSampled.
func checkThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(math.MaxUint64))
}

// sendReq is one filled batch handed from a sender shard to the paced
// writer. free is the shard's buffer-recycling channel: the writer pushes
// the buffer back after the vectored write so the shard can refill it.
type sendReq struct {
	buf  *[]byte
	n    int
	free chan *[]byte
}

// shardBufs is how many batch buffers each sender shard cycles through
// the writer; enough that a shard keeps filling while its previous batches
// sit in a gathered writev.
const shardBufs = 4

// measureConn drives one multiplexed measurement connection.
func measureConn(ctx context.Context, dial Dialer, opts MeasureOptions, nCirc int, start time.Time, buckets []atomic.Uint64, seconds int) (MeasureResult, error) {
	var res MeasureResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	conn, err := dial()
	if err != nil {
		return res, fmt.Errorf("dial: %w", err)
	}
	// Every teardown path — normal return, abort, and the cancellation
	// watcher below — funnels through one sync.Once: a pooled connection's
	// Close parks it for reuse, and racing the context watcher against the
	// deferred close could otherwise park the same connection twice and
	// hand it to two concurrent measurements later. The UDP data socket,
	// adopted after setup, rides the same teardown; the mutex closes the
	// adopt-vs-cancel race so a socket dialed while the watcher fires is
	// closed by whichever side runs second.
	var closeOnce sync.Once
	var closeMu sync.Mutex
	var connClosed bool
	var dataConn net.Conn
	closeConn := func() {
		closeOnce.Do(func() {
			closeMu.Lock()
			connClosed = true
			dc := dataConn
			closeMu.Unlock()
			conn.Close()
			if dc != nil {
				dc.Close()
			}
		})
	}
	defer closeConn()

	// Cancellation plumbing: closing the connection is what actually
	// unblocks the send/recv loops, so hook it straight to the context;
	// a context deadline additionally becomes a connection deadline so a
	// wedged peer cannot stall the slot past its budget even while the
	// context itself is still alive.
	stopWatch := context.AfterFunc(ctx, closeConn)
	defer stopWatch()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}

	sess, _ := conn.(Session)
	if sess == nil || !sess.Authenticated() {
		if err := clientAuthenticate(conn, opts.Identity); err != nil {
			return res, err
		}
		if sess != nil {
			sess.MarkAuthenticated()
		}
	}

	tr := NewConnTransport(conn)
	readBuf := cell.GetSuper()
	defer cell.PutSuper(readBuf)
	cr := newCellReader(tr, *readBuf)

	circs, err := createCircuits(tr, cr, nCirc)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return res, ctxErr
		}
		return res, err
	}

	// Datagram data plane: bind over the control connection, then swap the
	// data path's transport and echo reader. Control traffic keeps using tr
	// and cr throughout.
	udp := opts.DialData != nil
	dataTr := tr
	var udpTr *udpTransport
	if udp {
		dc, err := setupUDP(tr, cr, opts.DialData)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return res, ctxErr
			}
			return res, err
		}
		closeMu.Lock()
		if connClosed {
			closeMu.Unlock()
			dc.Close()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return res, ctxErr
			}
			return res, net.ErrClosed
		}
		dataConn = dc
		closeMu.Unlock()
		if dl, ok := ctx.Deadline(); ok {
			_ = dc.SetDeadline(dl)
		}
		udpTr = newUDPTransport(dc)
		defer udpTr.release()
		dataTr = udpTr
	}

	deadline := start.Add(opts.Duration)
	windowCap := int64(inflightWindow) * int64(nCirc)
	if windowCap > maxWindowCells {
		windowCap = maxWindowCells
	}
	window := newFlowWindow(windowCap)
	threshold := checkThreshold(opts.CheckProb)

	// Reader: demultiplex the echo stream by circuit ID, verifying sampled
	// cells against each circuit's forward keystream. It owns
	// res.CellsChecked/Failed until readerExit closes.
	var stop atomic.Bool
	var sentCells, received atomic.Int64
	readerExit := make(chan struct{})
	var readerErr error
	go func() {
		defer close(readerExit)
		if udp {
			readerErr = runEchoReaderUDP(dataConn, circs, &res, buckets, seconds, start, window, uint64(opts.Seed), threshold, &stop, &sentCells, &received)
		} else {
			readerErr = runEchoReader(cr, circs, &res, buckets, seconds, start, window, uint64(opts.Seed), threshold)
		}
	}()

	// abort tears the connection down and waits for the reader so that no
	// goroutine still writes to res when we return it.
	abort := func(e error) (MeasureResult, error) {
		closeConn()
		<-readerExit
		if ctxErr := ctx.Err(); ctxErr != nil {
			e = ctxErr
		}
		return res, e
	}

	// Writer: the single paced exit point for measurement cells. It drains
	// the shard queue greedily, credits the pacer once per gathered
	// super-batch, and ships the whole gather with one vectored write.
	var pace pacer
	pace.rateBps = opts.RateBps
	sendQ := make(chan sendReq, 2*cell.SuperBatches)
	writerExit := make(chan struct{})
	var writerErr error
	go func() {
		defer close(writerExit)
		backing := make(net.Buffers, cell.SuperBatches)
		reqs := make([]sendReq, 0, cell.SuperBatches)
		// bufs lives outside the loop: WriteBatches takes its address, so a
		// per-iteration declaration would heap-allocate the slice header on
		// every vectored write (it was the last steady-state allocation on
		// the send path).
		var bufs net.Buffers
		// Gather no more bits per vectored write than one pacing quantum:
		// syscall batching pays off when the rate is high enough that many
		// batches fit in a quantum, while at low rates a full super-gather
		// would pace for hundreds of milliseconds per write and turn the
		// send stream into coarse bursts.
		quantum := pace.quantumBits()
		for req := range sendQ {
			reqs = append(reqs[:0], req)
			bits := req.n * cell.Size * 8
		gather:
			for len(reqs) < cell.SuperBatches && float64(bits) < quantum {
				select {
				case r, ok := <-sendQ:
					if !ok {
						break gather
					}
					reqs = append(reqs, r)
					bits += r.n * cell.Size * 8
				default:
					break gather
				}
			}
			if writerErr == nil {
				pace.wait(float64(bits))
				bufs = backing[:0]
				for _, r := range reqs {
					bufs = append(bufs, (*r.buf)[:r.n*cell.Size])
				}
				if err := dataTr.WriteBatches(&bufs); err != nil {
					writerErr = fmt.Errorf("send cells: %w", err)
					// Unblock the reader (and through readerExit, the
					// shards); keep draining sendQ so no shard wedges on a
					// full queue.
					closeConn()
				} else {
					for _, r := range reqs {
						sentCells.Add(int64(r.n))
					}
				}
			}
			for _, r := range reqs {
				r.free <- r.buf
			}
		}
		// The datagram transport stages cells until a full datagram; ship
		// the slot's ragged tail before the End exchange counts on it.
		if udpTr != nil && writerErr == nil {
			if err := udpTr.Flush(); err != nil {
				writerErr = err
				closeConn()
			}
		}
	}()

	// Sender shards: independent goroutines assembling batches for the
	// writer. Payloads are zeroed once per buffer — measurement cells
	// travel with all-zero payloads, so per-cell work is just the 5-byte
	// header naming the next circuit in round-robin order. The proof of
	// work stays with the target: decrypting a zero payload materializes
	// its forward keystream, which is exactly what the reader verifies.
	nShards := runtime.GOMAXPROCS(0)
	if nShards > nCirc {
		nShards = nCirc
	}
	var cellCtr atomic.Int64
	var shardWG sync.WaitGroup
	frees := make([]chan *[]byte, nShards)
	for s := 0; s < nShards; s++ {
		free := make(chan *[]byte, shardBufs)
		for i := 0; i < shardBufs; i++ {
			b := cell.GetBatch()
			clearPayloads(*b)
			free <- b
		}
		frees[s] = free
		shardWG.Add(1)
		go func(free chan *[]byte) {
			defer shardWG.Done()
			timer := time.NewTimer(time.Hour)
			if !timer.Stop() {
				<-timer.C
			}
			defer timer.Stop()
			for {
				now := time.Now()
				if !now.Before(deadline) || ctx.Err() != nil {
					return
				}
				n := window.tryAcquire(cell.BatchCells)
				if n == 0 {
					timer.Reset(deadline.Sub(now))
					select {
					case <-window.wake:
						if !timer.Stop() {
							<-timer.C
						}
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
						return
					case <-readerExit:
						timer.Stop()
						return
					}
					continue
				}
				var buf *[]byte
				select {
				case buf = <-free:
				case <-ctx.Done():
					window.release(n)
					return
				case <-readerExit:
					window.release(n)
					return
				}
				out := *buf
				base := cellCtr.Add(n) - n
				for i := int64(0); i < n; i++ {
					id := uint32((base+i)%int64(nCirc)) + 1
					cell.PutHeader(out[i*cell.Size:], id, cell.MsmtData)
					if udp {
						// Strict round-robin makes the circuit's send
						// sequence derivable from the global counter; the
						// datagram plane carries it in the clear so the
						// echo survives loss and reordering (see udp.go).
						binary.BigEndian.PutUint64(out[i*cell.Size+5:], uint64((base+i)/int64(nCirc)))
					}
				}
				select {
				case sendQ <- sendReq{buf: buf, n: int(n), free: free}:
				case <-ctx.Done():
					free <- buf
					window.release(n)
					return
				case <-readerExit:
					free <- buf
					window.release(n)
					return
				}
			}
		}(free)
	}

	shardWG.Wait()
	close(sendQ)
	<-writerExit
	// All batch buffers are back in the shard free lists now: shards exit
	// holding nothing and the writer returns every queued buffer.
	for _, free := range frees {
		for i := 0; i < shardBufs; i++ {
			cell.PutBatch(<-free)
		}
	}
	if writerErr != nil {
		return abort(writerErr)
	}
	if err := ctx.Err(); err != nil {
		return abort(err)
	}

	if udp {
		// MsmtEnd travels on the control plane, which can outrun in-flight
		// datagrams on the data socket and tear circuits down under their
		// own tail; drain the echo stream before ending.
		waitUDPDrain(ctx, sentCells.Load(), &received)
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
	}

	// End every circuit and wait for the echo stream to drain.
	endBuf := cell.GetSuper()
	out := *endBuf
	for i := 0; i < nCirc; i++ {
		cb := out[i*cell.Size:]
		cell.PutHeader(cb, uint32(i)+1, cell.MsmtEnd)
		clear(cell.PayloadOf(cb))
	}
	_, werr := tr.Write(out[:nCirc*cell.Size])
	cell.PutSuper(endBuf)
	if werr != nil {
		return abort(fmt.Errorf("send end: %w", werr))
	}
	if udp {
		// The End echoes come back on the control stream, which the UDP
		// echo reader never touches; collect them here, then release the
		// reader — immediately when every echo arrived, after a short
		// linger for stragglers when some are missing.
		for got := 0; got < nCirc; got++ {
			cb, err := cr.next()
			if err != nil {
				return abort(fmt.Errorf("read end echo: %w", err))
			}
			if cmd := cell.CommandOf(cb); cmd != cell.MsmtEnd {
				return abort(fmt.Errorf("wire: unexpected end echo %v", cmd))
			}
		}
		sent := sentCells.Load()
		stop.Store(true)
		lingerUntil := time.Now()
		if received.Load() < sent {
			lingerUntil = lingerUntil.Add(udpLingerGrace)
		}
		_ = dataConn.SetReadDeadline(lingerUntil)
		<-readerExit
		res.SentCells = sent
		if lost := sent - received.Load(); lost > 0 {
			res.LostCells = lost
		}
		if readerErr != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return res, ctxErr
			}
			return res, readerErr
		}
		// The connection keeps its UDP binding for its whole life (the
		// bind is once per connection), so it cannot host a second
		// measurement: never mark it reusable.
		return res, nil
	}
	drainTimer := time.NewTimer(5 * time.Second)
	defer drainTimer.Stop()
	select {
	case <-readerExit:
		if readerErr != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return res, ctxErr
			}
			return res, readerErr
		}
	case <-ctx.Done():
		return abort(ctx.Err())
	case <-drainTimer.C:
		return abort(errors.New("wire: timed out draining echo stream"))
	}
	if sess != nil {
		sess.MarkReusable()
	}
	return res, nil
}

// clearPayloads zeroes the payload bytes of every cell slot in a pooled
// batch buffer. Done once when a shard adopts the buffer: headers are
// rewritten per send, payloads stay zero for the buffer's whole life.
func clearPayloads(buf []byte) {
	for off := 0; off+cell.Size <= len(buf); off += cell.Size {
		clear(buf[off+5 : off+cell.Size])
	}
}

// createCircuits establishes nCirc measurement circuits in-band: one
// MsmtCreate cell per circuit carrying a fresh X25519 public key, shipped
// in batched writes and answered by the target's MsmtCreated rewrites. It
// returns each circuit's forward keystream — the random-access view the
// reader verifies sampled echoes against.
func createCircuits(tr Transport, cr *cellReader, nCirc int) ([]*cell.Keystream, error) {
	curve := ecdh.X25519()
	privs := make([]*ecdh.PrivateKey, nCirc)
	buf := cell.GetSuper()
	defer cell.PutSuper(buf)
	out := *buf
	for sent := 0; sent < nCirc; {
		n := min(cell.SuperCells, nCirc-sent)
		for i := 0; i < n; i++ {
			priv, err := curve.GenerateKey(rand.Reader)
			if err != nil {
				return nil, fmt.Errorf("circuit keygen: %w", err)
			}
			privs[sent+i] = priv
			cb := out[i*cell.Size:]
			cell.PutHeader(cb, uint32(sent+i)+1, cell.MsmtCreate)
			p := cell.PayloadOf(cb)
			copy(p[:32], priv.PublicKey().Bytes())
			clear(p[32:])
		}
		if _, err := tr.Write(out[:n*cell.Size]); err != nil {
			return nil, fmt.Errorf("send create: %w", err)
		}
		sent += n
	}
	ks := make([]*cell.Keystream, nCirc)
	for got := 0; got < nCirc; got++ {
		cb, err := cr.next()
		if err != nil {
			return nil, fmt.Errorf("read created: %w", err)
		}
		if cmd := cell.CommandOf(cb); cmd != cell.MsmtCreated {
			return nil, fmt.Errorf("wire: expected MSMT_CREATED, got %v", cmd)
		}
		idx := int(cell.CircIDOf(cb)) - 1
		if idx < 0 || idx >= nCirc || ks[idx] != nil {
			return nil, errors.New("wire: bad circuit id in MSMT_CREATED")
		}
		peer, err := curve.NewPublicKey(append(make([]byte, 0, 32), cell.PayloadOf(cb)[:32]...))
		if err != nil {
			return nil, fmt.Errorf("peer circuit key: %w", err)
		}
		shared, err := privs[idx].ECDH(peer)
		if err != nil {
			return nil, fmt.Errorf("circuit ecdh: %w", err)
		}
		secret := sha256.Sum256(shared)
		km := cell.DeriveKeys(secret[:])
		k, err := cell.NewKeystream(km.ForwardKey, km.ForwardIV)
		if err != nil {
			return nil, err
		}
		ks[idx] = k
	}
	return ks, nil
}

// runEchoReader consumes the echo stream: large vectored refills through
// the cellReader, per-cell demux by circuit ID, per-batch byte accounting
// and window release, and deterministic spot checks verified against each
// circuit's forward keystream. Cells travel with zero payloads, so an
// honest target's echo of circuit cell k is exactly the forward keystream
// at offset k·PayloadSize — anything else (a target skipping its decrypt
// work, §5) fails verification. It returns nil once every circuit's
// MsmtEnd echo arrived.
func runEchoReader(cr *cellReader, circs []*cell.Keystream, res *MeasureResult, buckets []atomic.Uint64, seconds int, start time.Time, window *flowWindow, seed, threshold uint64) error {
	nCirc := len(circs)
	recvSeq := make([]uint64, nCirc)
	remaining := nCirc
	account := func(data int) {
		idx := int(time.Since(start) / time.Second)
		if idx >= 0 && idx < seconds {
			buckets[idx].Add(uint64(data) * cell.Size)
		}
		window.release(int64(data))
	}
	for {
		batch, err := cr.nextBatch()
		if err != nil {
			return fmt.Errorf("read echo: %w", err)
		}
		k := len(batch) / cell.Size
		data := 0
		for i := 0; i < k; i++ {
			cb := batch[i*cell.Size : (i+1)*cell.Size]
			idx := int(cell.CircIDOf(cb)) - 1
			switch cmd := cell.CommandOf(cb); cmd {
			case cell.MsmtData:
				if idx < 0 || idx >= nCirc {
					return fmt.Errorf("wire: echo for unknown circuit %d", idx+1)
				}
				seq := recvSeq[idx]
				recvSeq[idx]++
				data++
				if threshold > 0 && checkSampled(seed, uint32(idx)+1, seq, threshold) {
					res.CellsChecked++
					if !circs[idx].VerifyAt(cell.PayloadOf(cb), seq*cell.PayloadSize) {
						res.Failed = true
					}
				}
			case cell.MsmtEnd:
				remaining--
				if remaining == 0 {
					if data > 0 {
						account(data)
					}
					return nil
				}
			default:
				return fmt.Errorf("wire: unexpected echo cell %v", cmd)
			}
		}
		if data > 0 {
			account(data)
		}
	}
}
