package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"flashflow/internal/core"
)

const mbit = 1e6

// startTarget launches a target on a local TCP listener and returns its
// address and a cleanup func.
func startTarget(t *testing.T, cfg TargetConfig, allowed ...Identity) (string, *Target, func()) {
	t.Helper()
	tgt := NewTarget(cfg)
	for _, id := range allowed {
		tgt.Authorize(id.Pub)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go tgt.Serve(l)
	return l.Addr().String(), tgt, func() {
		l.Close()
		tgt.Close()
	}
}

func tcpDialer(addr string) Dialer {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAuth, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAuth || string(payload) != "payload" {
		t.Fatalf("round trip: %v %q", ft, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAuthOK, nil); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAuthOK || len(payload) != 0 {
		t.Fatalf("empty frame: %v %v", ft, payload)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAuth, make([]byte, maxFramePayload+1)); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameAuth, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	truncated := bytes.NewReader(buf.Bytes()[:6])
	if _, _, err := ReadFrame(truncated); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestAuthHandshakeOverPipe(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		_, err := serverChallenge(server, map[string]bool{string(id.Pub): true}, nil)
		done <- err
	}()
	if err := clientAuthenticate(client, id); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAuthRejectsUnknownKey(t *testing.T) {
	good, _ := NewIdentity()
	evil, _ := NewIdentity()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		_, err := serverChallenge(server, map[string]bool{string(good.Pub): true}, nil)
		done <- err
	}()
	if err := clientAuthenticate(client, evil); err == nil {
		t.Fatal("unauthorized client should be rejected")
	}
	if err := <-done; !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("server error: %v", err)
	}
}

func TestAuthRejectsBadSignature(t *testing.T) {
	id, _ := NewIdentity()
	other, _ := NewIdentity()
	// Forge: claim id.Pub but sign with other's key.
	forged := Identity{Pub: id.Pub, Priv: other.Priv}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		_, err := serverChallenge(server, map[string]bool{string(id.Pub): true}, nil)
		done <- err
	}()
	if err := clientAuthenticate(client, forged); err == nil {
		t.Fatal("bad signature should be rejected")
	}
	if err := <-done; !errors.Is(err, ErrAuthRejected) {
		t.Fatalf("server error: %v", err)
	}
}

func TestMeasureHonestTargetEchoesAtRate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	const rate = 16 * mbit
	addr, _, cleanup := startTarget(t, TargetConfig{RateBps: rate}, id)
	defer cleanup()

	res, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity:  id,
		Sockets:   4,
		RateBps:   64 * mbit, // demand well above the target's limit
		Duration:  2 * time.Second,
		CheckProb: 0.05,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("honest target must pass echo checks")
	}
	if res.CellsChecked == 0 {
		t.Fatal("expected some cells to be checked at p=0.05")
	}
	var total float64
	for _, b := range res.PerSecondBytes {
		total += b
	}
	gotRate := total * 8 / 2
	if gotRate < rate*0.6 || gotRate > rate*1.3 {
		t.Fatalf("echo rate: got %.1f Mbit/s want ≈%.0f", gotRate/mbit, rate/mbit)
	}
}

func TestMeasureDetectsCorruptTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{RateBps: 16 * mbit, Corrupt: true}, id)
	defer cleanup()

	res, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity:  id,
		Sockets:   2,
		RateBps:   16 * mbit,
		Duration:  1 * time.Second,
		CheckProb: 0.2, // check aggressively to catch it within one second
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("corrupt target must fail echo verification")
	}
}

func TestMeasureRejectedWithoutAuthorization(t *testing.T) {
	id, _ := NewIdentity()
	addr, _, cleanup := startTarget(t, TargetConfig{}) // nobody authorized
	defer cleanup()
	_, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity: id,
		Sockets:  1,
		RateBps:  mbit,
		Duration: time.Second,
		Seed:     3,
	})
	if err == nil {
		t.Fatal("unauthorized measurer should fail")
	}
}

func TestMeasureOptionValidation(t *testing.T) {
	id, _ := NewIdentity()
	if _, err := Measure(context.Background(), tcpDialer("x"), MeasureOptions{Identity: id, Sockets: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero sockets should error")
	}
	if _, err := Measure(context.Background(), tcpDialer("x"), MeasureOptions{Identity: id, Sockets: 1, Duration: 0}); err == nil {
		t.Fatal("zero duration should error")
	}
}

func TestTargetRevoke(t *testing.T) {
	id, _ := NewIdentity()
	addr, tgt, cleanup := startTarget(t, TargetConfig{RateBps: 8 * mbit}, id)
	defer cleanup()
	tgt.Revoke()
	_, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity: id, Sockets: 1, RateBps: mbit, Duration: time.Second, Seed: 4,
	})
	if err == nil {
		t.Fatal("revoked key should be rejected")
	}
}

func TestTargetCountsForwardedBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	id, _ := NewIdentity()
	addr, tgt, cleanup := startTarget(t, TargetConfig{RateBps: 8 * mbit}, id)
	defer cleanup()
	res, err := Measure(context.Background(), tcpDialer(addr), MeasureOptions{
		Identity: id, Sockets: 1, RateBps: 8 * mbit, Duration: time.Second, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var echoed float64
	for _, b := range res.PerSecondBytes {
		echoed += b
	}
	var forwarded float64
	for _, b := range tgt.ForwardedBytesPerSecond() {
		forwarded += b
	}
	if forwarded < echoed {
		t.Fatalf("target forwarded (%v) < measurer received (%v)", forwarded, echoed)
	}
}

func TestWireBackendEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement slots")
	}
	// Full pipeline: core.MeasureRelay over the real wire protocol
	// against a 12 Mbit/s-limited target with a 2-measurer team.
	ids := make([]Identity, 2)
	for i := range ids {
		ids[i], _ = NewIdentity()
	}
	const rate = 12 * mbit
	addr, _, cleanup := startTarget(t, TargetConfig{RateBps: rate}, ids...)
	defer cleanup()

	members := make([]Member, 2)
	for i := range members {
		id := ids[i]
		members[i] = Member{
			Identity: id,
			Dial:     func(string) Dialer { return tcpDialer(addr) },
		}
	}
	backend := &Backend{Members: members, CheckProb: 0.01, Seed: 9}

	p := core.DefaultParams()
	p.SlotSeconds = 2
	p.Sockets = 8
	team := []*core.Measurer{
		{Name: "m0", CapacityBps: 40 * mbit, Cores: 2},
		{Name: "m1", CapacityBps: 40 * mbit, Cores: 2},
	}
	out, err := core.MeasureRelay(context.Background(), backend, team, "t", rate, p)
	if err != nil {
		t.Fatal(err)
	}
	rel := out.EstimateBps / rate
	if rel < 0.5 || rel > 1.4 {
		t.Fatalf("wire end-to-end estimate: rel=%v (est %.1f Mbit/s)", rel, out.EstimateBps/mbit)
	}
}

func TestBackendAllocationMismatch(t *testing.T) {
	backend := &Backend{Members: []Member{}}
	alloc := core.Allocation{PerMeasurerBps: []float64{1}}
	if _, err := backend.RunMeasurement(context.Background(), "t", alloc, 1, nil); err == nil {
		t.Fatal("mismatched team should error")
	}
}
