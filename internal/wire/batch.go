package wire

import (
	"errors"
	"io"

	"flashflow/internal/cell"
)

// cellReader turns a byte stream into cell-aligned views without copying
// or allocating in steady state: it refills a caller-owned buffer with
// single large Read calls (many cells per syscall) and hands out slices
// aliasing that buffer. The returned slices are valid only until the next
// next/nextBatch call.
//
// The reader never reads past the bytes it needs for whole cells plus
// whatever one Read happened to return; the measurement protocol
// guarantees nothing follows a MsmtEnd cell until the peer has consumed
// the echo, so a refill cannot swallow a subsequent circuit's handshake
// frames.
type cellReader struct {
	r      io.Reader
	buf    []byte
	lo, hi int // unconsumed window into buf
}

// newCellReader wraps r with buf as the refill buffer. buf must hold at
// least one cell; pooled batch buffers (cell.GetBatch) are the intended
// source. The cellReader borrows buf for its lifetime — the caller returns
// it to the pool only after the reader is abandoned.
func newCellReader(r io.Reader, buf []byte) *cellReader {
	return &cellReader{r: r, buf: buf}
}

// errShortCellBuf reports a refill buffer smaller than one cell.
var errShortCellBuf = errors.New("wire: cell reader buffer smaller than one cell")

// refill slides the partial remainder to the front of the buffer and reads
// until at least one whole cell is buffered. A stream that ends mid-cell
// yields io.ErrUnexpectedEOF (matching io.ReadFull semantics the previous
// per-cell path had); a stream that ends on a cell boundary yields io.EOF.
func (cr *cellReader) refill() error {
	if len(cr.buf) < cell.Size {
		return errShortCellBuf
	}
	if cr.lo > 0 {
		copy(cr.buf, cr.buf[cr.lo:cr.hi])
		cr.hi -= cr.lo
		cr.lo = 0
	}
	for cr.hi < cell.Size {
		n, err := cr.r.Read(cr.buf[cr.hi:])
		cr.hi += n
		if cr.hi >= cell.Size {
			return nil
		}
		if err != nil {
			if err == io.EOF && cr.hi > cr.lo {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// next returns the next single cell as a view into the buffer.
func (cr *cellReader) next() ([]byte, error) {
	if cr.hi-cr.lo < cell.Size {
		if err := cr.refill(); err != nil {
			return nil, err
		}
	}
	c := cr.buf[cr.lo : cr.lo+cell.Size]
	cr.lo += cell.Size
	return c, nil
}

// nextBatch returns all whole cells currently buffered — at least one,
// refilling if necessary — as one contiguous view, so the caller can
// process and forward a batch with a single Write.
func (cr *cellReader) nextBatch() ([]byte, error) {
	if cr.hi-cr.lo < cell.Size {
		if err := cr.refill(); err != nil {
			return nil, err
		}
	}
	k := (cr.hi - cr.lo) / cell.Size
	b := cr.buf[cr.lo : cr.lo+k*cell.Size]
	cr.lo += k * cell.Size
	return b, nil
}
