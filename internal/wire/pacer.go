package wire

import (
	"math"
	"sync"
	"time"
)

// pacer throttles aggregate throughput to rateBps using wall-clock time.
// It keeps a cumulative bit count against an absolute window start, so the
// admission times it computes never drift: rounding in one wait is
// corrected by the next, and float64 holds the cumulative count exactly
// for any realistic run (2^53 bits is ~1 exabyte).
type pacer struct {
	mu       sync.Mutex
	rateBps  float64
	start    time.Time
	last     time.Time // schedule horizon: the later of now and the last batch's transmit end
	sentBits float64

	// clock and sleep are test seams; nil selects time.Now and time.Sleep.
	clock func() time.Time
	sleep func(time.Duration)
}

// pacerIdleReset bounds how much unused pacing credit an idle gap may
// accumulate: after this much quiet the pacing window restarts. Without
// it, a target parked between measurement rounds (pooled connections,
// internal/coord) banks the whole gap as credit and echoes the next
// slot's opening cells unpaced, inflating that slot's estimate. Idleness
// is measured against the schedule horizon, not the last call time — a
// single low-rate super-batch legitimately paces for longer than the
// reset window, and mistaking that pacing sleep for idleness would reset
// the window every call.
const pacerIdleReset = 500 * time.Millisecond

// pacerMaxSleep is the target quantum for a single pacing sleep. Callers
// size their batches via quantumBits so one wait never parks them for
// longer than roughly this: admitting a multi-hundred-millisecond batch in
// one piece makes the echo stream so bursty that per-second accounting
// (and the §4.2 acceptance decision built on it) wobbles by a full batch.
const pacerMaxSleep = 20 * time.Millisecond

// wait blocks until the pacer has scheduled the batch's transmission: the
// batch is credited against the cumulative schedule and the caller sleeps
// until the schedule reaches the batch's end. Crediting before sleeping
// keeps the admitted rate exact — bits admitted by time t never exceed
// rateBps·t, so no overshoot accumulates across batches, connections, or
// back-to-back measurement slots (an earlier admit-then-credit variant
// leaked one batch of free credit per waiter, which compounded into
// double-digit rate errors at super-batch sizes). Callers bound the
// per-call sleep by sizing batches with quantumBits.
func (p *pacer) wait(bits float64) {
	if p.rateBps <= 0 {
		return
	}
	p.mu.Lock()
	now := p.clockNow()
	if p.start.IsZero() || now.Sub(p.last) > pacerIdleReset {
		p.start = now
		p.sentBits = 0
	}
	p.sentBits += bits
	end := p.start.Add(time.Duration(p.sentBits / p.rateBps * float64(time.Second)))
	d := end.Sub(now)
	if d > 0 {
		p.last = end
	} else {
		p.last = now
	}
	p.mu.Unlock()
	if d > 0 {
		p.doSleep(d)
	}
}

// quantumBits returns how many bits transmit in pacerMaxSleep at the
// pacer's rate — the batch size callers should aim for so a single wait
// sleeps no longer than the quantum. Unpaced (rate 0) returns +Inf: batch
// as large as you like.
func (p *pacer) quantumBits() float64 {
	if p.rateBps <= 0 {
		return math.Inf(1)
	}
	return p.rateBps * pacerMaxSleep.Seconds()
}

func (p *pacer) clockNow() time.Time {
	if p.clock != nil {
		return p.clock()
	}
	return time.Now()
}

func (p *pacer) doSleep(d time.Duration) {
	if p.sleep != nil {
		p.sleep(d)
		return
	}
	time.Sleep(d)
}
