package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"flashflow/internal/cell"
)

// Measurer side of the UDP data plane. The control connection (TCP) still
// carries authentication, MsmtCreate handshakes, the MsmtUdp bind, and the
// MsmtEnd teardown; only measurement cells move to datagrams. See udp.go
// for the protocol.

// udpHelloTries bounds the hello retransmit loop: the bind token is
// already registered over TCP, so on any working path the first or second
// hello lands; ~1s of 20ms retries covers scheduling hiccups.
const udpHelloTries = 50

// udpHelloRetry is the per-try hello ack timeout.
const udpHelloRetry = 20 * time.Millisecond

// udpLingerGrace is how long the echo reader lingers for straggler
// datagrams after the circuits ended, when some echoes are still missing.
// Whatever has not arrived by then is loss.
const udpLingerGrace = 250 * time.Millisecond

// setupUDP binds a datagram data plane: MsmtUdp bind over the control
// connection, then the hello exchange on a freshly dialed data socket.
// Returns the data connection with no deadline set.
func setupUDP(tr Transport, cr *cellReader, dialData Dialer) (net.Conn, error) {
	tok, err := newUDPToken()
	if err != nil {
		return nil, err
	}
	var cb [cell.Size]byte
	cell.PutHeader(cb[:], 0, cell.MsmtUdp)
	copy(cell.PayloadOf(cb[:])[:16], tok[:])
	if _, err := tr.Write(cb[:]); err != nil {
		return nil, fmt.Errorf("send udp bind: %w", err)
	}
	ack, err := cr.next()
	if err != nil {
		return nil, fmt.Errorf("read udp bind ack: %w", err)
	}
	if cmd := cell.CommandOf(ack); cmd != cell.MsmtUdp {
		return nil, fmt.Errorf("wire: expected MSMT_UDP ack, got %v", cmd)
	}
	data, err := dialData()
	if err != nil {
		return nil, fmt.Errorf("dial data: %w", err)
	}
	if uc, ok := data.(*net.UDPConn); ok {
		_ = uc.SetReadBuffer(udpSockBuf)
		_ = uc.SetWriteBuffer(udpSockBuf)
	}
	var hello [udpHelloLen]byte
	copy(hello[:8], udpHelloMagic[:])
	copy(hello[8:], tok[:])
	var resp [udpHelloLen]byte
	for try := 0; ; try++ {
		if _, err := data.Write(hello[:]); err != nil {
			data.Close()
			return nil, fmt.Errorf("send udp hello: %w", err)
		}
		_ = data.SetReadDeadline(time.Now().Add(udpHelloRetry))
		n, err := data.Read(resp[:])
		if err == nil && n == udpHelloLen && resp == hello {
			break
		}
		if err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
			data.Close()
			return nil, fmt.Errorf("read udp hello ack: %w", err)
		}
		if try+1 >= udpHelloTries {
			data.Close()
			return nil, errors.New("wire: udp hello timed out")
		}
	}
	_ = data.SetReadDeadline(time.Time{})
	return data, nil
}

// udpTransport adapts the data socket to the writer's Transport seam by
// coalescing batch writes into maximum-size datagrams: the shards keep
// producing 32-cell batches, and every udpDatagramCells cells staged
// becomes one sendto. The slot's ragged tail stays staged until Flush.
type udpTransport struct {
	data  net.Conn
	arena *[]byte
	stage []byte
	fill  int
}

func newUDPTransport(data net.Conn) *udpTransport {
	arena := cell.GetSuper()
	return &udpTransport{data: data, arena: arena, stage: (*arena)[:udpDatagramBytes]}
}

// release returns the staging arena to the pool. Call exactly once, after
// the last write.
func (u *udpTransport) release() { cell.PutSuper(u.arena) }

func (u *udpTransport) Read(p []byte) (int, error) { return u.data.Read(p) }

func (u *udpTransport) Write(p []byte) (int, error) {
	if err := u.stageBytes(p); err != nil {
		return 0, err
	}
	if err := u.Flush(); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (u *udpTransport) WriteBatches(bufs *net.Buffers) error {
	for _, b := range *bufs {
		if err := u.stageBytes(b); err != nil {
			return err
		}
	}
	return nil
}

func (u *udpTransport) stageBytes(p []byte) error {
	for len(p) > 0 {
		n := copy(u.stage[u.fill:], p)
		u.fill += n
		p = p[n:]
		if u.fill == len(u.stage) {
			if err := u.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush sends the staged cells as one datagram (writes are whole cells, so
// a partial stage is still cell-aligned).
func (u *udpTransport) Flush() error {
	if u.fill == 0 {
		return nil
	}
	n := u.fill
	u.fill = 0
	if _, err := u.data.Write(u.stage[:n]); err != nil {
		return fmt.Errorf("send datagram: %w", err)
	}
	return nil
}

// waitUDPDrain blocks until every sent cell's echo arrived, echo progress
// stalls (loss — nothing more is coming), or the context dies. Called
// before the MsmtEnd teardown: ends travel on the TCP control plane and
// would otherwise race past in-flight datagrams on the data socket,
// tearing circuits down under their own tail and inflating LostCells.
func waitUDPDrain(ctx context.Context, sent int64, received *atomic.Int64) {
	deadline := time.Now().Add(3 * time.Second)
	last := received.Load()
	lastProgress := time.Now()
	for received.Load() < sent && ctx.Err() == nil {
		now := time.Now()
		if r := received.Load(); r != last {
			last, lastProgress = r, now
		}
		if now.Sub(lastProgress) > udpLingerGrace || now.After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runEchoReaderUDP consumes the datagram echo stream. Unlike the TCP
// reader it cannot treat the stream as an in-order sequence: each data
// cell carries its own send sequence (payload[0:8], plaintext) and the
// target's decrypt index (payload[8:16]), so verification uses the
// target's index — correct under loss and reordering — while the send
// sequence drives flow control and loss accounting. A sequence jumping
// past the expected value releases the gap too: those cells are lost (or
// still in flight; a reordered straggler then arrives below its circuit's
// watermark and is counted without a second release).
//
// Termination: the main goroutine sets stop once the MsmtEnd exchange on
// the control plane completes and arms a read deadline; the reader exits
// when every sent cell is accounted for or the deadline expires.
func runEchoReaderUDP(data net.Conn, circs []*cell.Keystream, res *MeasureResult, buckets []atomic.Uint64, seconds int, start time.Time, window *flowWindow, seed, threshold uint64, stop *atomic.Bool, sent, received *atomic.Int64) error {
	nCirc := len(circs)
	expected := make([]uint64, nCirc)
	buf := cell.GetSuper()
	defer cell.PutSuper(buf)
	dg := (*buf)[:udpDatagramBytes]
	for {
		n, err := data.Read(dg)
		if err != nil {
			if stop.Load() && errors.Is(err, os.ErrDeadlineExceeded) {
				return nil
			}
			return fmt.Errorf("read echo: %w", err)
		}
		if n == 0 || n%cell.Size != 0 {
			continue // duplicate hello ack or stray datagram
		}
		k := n / cell.Size
		dataCells := 0
		for i := 0; i < k; i++ {
			cb := dg[i*cell.Size : (i+1)*cell.Size]
			idx := int(cell.CircIDOf(cb)) - 1
			switch cmd := cell.CommandOf(cb); cmd {
			case cell.MsmtData:
				if idx < 0 || idx >= nCirc {
					return fmt.Errorf("wire: echo for unknown circuit %d", idx+1)
				}
				dataCells++
				p := cell.PayloadOf(cb)
				s := binary.BigEndian.Uint64(p[0:8])
				e := binary.BigEndian.Uint64(p[8:16])
				if s >= expected[idx] {
					window.release(int64(s - expected[idx] + 1))
					expected[idx] = s + 1
				}
				if threshold > 0 && checkSampled(seed, uint32(idx)+1, s, threshold) {
					res.CellsChecked++
					if !circs[idx].VerifyAt(p[16:], e*cell.PayloadSize+16) {
						res.Failed = true
					}
				}
			case cell.Padding:
				// The target's "drop": a cell it could not serve rides back
				// rewritten. Not measurement data, not an error.
			default:
				return fmt.Errorf("wire: unexpected echo cell %v", cmd)
			}
		}
		if dataCells > 0 {
			idx := int(time.Since(start) / time.Second)
			if idx >= 0 && idx < seconds {
				buckets[idx].Add(uint64(dataCells) * cell.Size)
			}
			received.Add(int64(dataCells))
		}
		if stop.Load() && received.Load() >= sent.Load() {
			return nil
		}
	}
}
