package wire

import (
	mrand "math/rand"
	"testing"

	"flashflow/internal/cell"
)

// Zero-allocation guards for the measurement data plane (ISSUE 2
// acceptance: 0 allocs/cell in steady state). Each test exercises the
// exact per-cell operations its wire path performs, minus the socket:
// the socket I/O itself (conn.Read/Write on pooled buffers) does not
// allocate, so these guards pin the full per-cell cost.

// TestSenderEncodePathZeroAllocs covers measureSocket's batch assembly:
// header write, payload fill, in-place forward encryption.
func TestSenderEncodePathZeroAllocs(t *testing.T) {
	circ, err := cell.NewCircuit(1, []byte("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	rng := mrand.New(mrand.NewSource(1))
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	out := *buf
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < cell.BatchCells; i++ {
			cb := out[i*cell.Size : (i+1)*cell.Size]
			cell.PutHeader(cb, 1, cell.MsmtData)
			FillPayload(rng, cell.PayloadOf(cb))
			circ.Forward.ApplyBytes(cell.PayloadOf(cb))
		}
	}); n != 0 {
		t.Fatalf("sender encode path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
}

// TestTargetEchoPathZeroAllocs covers serveCircuit's per-batch work:
// command dispatch and in-place decryption of every cell in a batch.
func TestTargetEchoPathZeroAllocs(t *testing.T) {
	circ, err := cell.NewCircuit(1, []byte("alloc"))
	if err != nil {
		t.Fatal(err)
	}
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	batch := *buf
	for i := 0; i < cell.BatchCells; i++ {
		cell.PutHeader(batch[i*cell.Size:], 1, cell.MsmtData)
	}
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < cell.BatchCells; i++ {
			cb := batch[i*cell.Size : (i+1)*cell.Size]
			if cell.CommandOf(cb) == cell.MsmtData {
				circ.Forward.ApplyBytes(cell.PayloadOf(cb))
			}
		}
	}); n != 0 {
		t.Fatalf("target echo path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
}

// TestReaderDecodePathZeroAllocs covers the measurer reader: batched
// refill through cellReader plus per-cell header parse and digest check.
func TestReaderDecodePathZeroAllocs(t *testing.T) {
	cr := newCellReader(newCellStream(), make([]byte, cell.BatchBytes))
	want := cell.Digest(make([]byte, cell.PayloadSize))
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < cell.BatchCells; i++ {
			cb, err := cr.next()
			if err != nil {
				t.Fatal(err)
			}
			if cell.CommandOf(cb) != cell.MsmtData {
				t.Fatal("unexpected command")
			}
			if cell.Digest(cell.PayloadOf(cb)) != want {
				t.Fatal("digest mismatch")
			}
		}
	}); n != 0 {
		t.Fatalf("reader decode path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
}
