package wire

import (
	"io"
	"net"
	"testing"

	"flashflow/internal/cell"
)

// Zero-allocation guards for the multiplexed measurement data plane
// (ISSUE 8 acceptance: 0 allocs/cell on the encode, echo, and decode hot
// paths). Each test exercises the exact per-cell operations its wire path
// performs, minus the socket: the socket I/O itself (reads, writes, and
// vectored batch writes on pooled buffers) does not allocate, so these
// guards pin the full per-cell cost.

// TestSenderAssemblyZeroAllocs covers a sender shard's batch assembly:
// the round-robin header rewrite over a zero-payload batch plus the
// window accounting. Payloads are zeroed once per buffer adoption, not
// per send, so the steady-state encode cost is the header alone.
func TestSenderAssemblyZeroAllocs(t *testing.T) {
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	out := *buf
	clearPayloads(out)
	window := newFlowWindow(4 * cell.BatchCells)
	const nCirc = 8
	var base int64
	if n := testing.AllocsPerRun(100, func() {
		got := window.tryAcquire(cell.BatchCells)
		for i := int64(0); i < got; i++ {
			id := uint32((base+i)%nCirc) + 1
			cell.PutHeader(out[i*cell.Size:], id, cell.MsmtData)
		}
		base += got
		window.release(got)
	}); n != 0 {
		t.Fatalf("sender assembly path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
}

// discardTransport consumes vectored writes the way a real connection
// does — through the *net.Buffers pointer — without the socket.
type discardTransport struct{}

func (discardTransport) Read(p []byte) (int, error)  { return 0, io.EOF }
func (discardTransport) Write(p []byte) (int, error) { return len(p), nil }
func (discardTransport) WriteBatches(bufs *net.Buffers) error {
	_, err := bufs.WriteTo(io.Discard)
	return err
}

// TestWriterGatherZeroAllocs covers the paced writer's gather loop: the
// vector is rebuilt over a long-lived backing array and handed to
// WriteBatches by pointer. The vector variable must live outside the loop
// — a per-iteration declaration escapes through the pointer and costs one
// heap allocation per vectored write (the last steady-state allocation the
// send path had).
func TestWriterGatherZeroAllocs(t *testing.T) {
	var tr Transport = discardTransport{}
	batches := make([]*[]byte, cell.SuperBatches)
	for i := range batches {
		b := cell.GetBatch()
		defer cell.PutBatch(b)
		batches[i] = b
	}
	backing := make(net.Buffers, cell.SuperBatches)
	var bufs net.Buffers
	if n := testing.AllocsPerRun(100, func() {
		bufs = backing[:0]
		for _, b := range batches {
			bufs = append(bufs, (*b)[:cell.BatchBytes])
		}
		if err := tr.WriteBatches(&bufs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("writer gather path: %v allocs per %d-batch vectored write, want 0", n, cell.SuperBatches)
	}
}

// allocTestMux builds a muxState with nCirc live circuits for hot-path
// guards, bypassing the handshake.
func allocTestMux(t *testing.T, nCirc int, nWorkers int32) *muxState {
	t.Helper()
	ms := &muxState{t: &Target{}, nWorkers: nWorkers}
	for id := uint32(1); id <= uint32(nCirc); id++ {
		circ, err := cell.NewCircuit(id, []byte("alloc"))
		if err != nil {
			t.Fatal(err)
		}
		ms.circuits.set(id, &circEntry{st: circ.Forward, worker: int32(id % uint32(nWorkers))})
	}
	return ms
}

// TestTargetEchoPathZeroAllocs covers serveMux's per-batch work in its
// post-pipeline shape: demux into per-circuit spans (rotating IDs so the
// span set is rebuilt from scratch every batch) followed by span-wise
// decryption — the exact work the inline path does and the reader/worker
// stages split between them.
func TestTargetEchoPathZeroAllocs(t *testing.T) {
	const nCirc = 8
	ms := allocTestMux(t, nCirc, 4)
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	batch := *buf
	for i := 0; i < cell.BatchCells; i++ {
		cell.PutHeader(batch[i*cell.Size:], uint32(i%nCirc)+1, cell.MsmtData)
	}
	var spans spanSet
	scratch := cell.NewSpanScratch()
	// Warm-up: the span set's backing storage grows once, then is reused.
	if _, err := ms.demuxTCP(batch, &spans); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		dataCells, err := ms.demuxTCP(batch, &spans)
		if err != nil {
			t.Fatal(err)
		}
		if dataCells != cell.BatchCells {
			t.Fatalf("demuxed %d data cells, want %d", dataCells, cell.BatchCells)
		}
		for i := 0; i < spans.n; i++ {
			sp := &spans.spans[i]
			sp.st.ApplySpans(batch, sp.offs, scratch)
		}
	}); n != 0 {
		t.Fatalf("target echo path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
}

// TestUDPDatagramPathZeroAllocs covers the target's per-datagram work on
// the UDP plane: demux, span decrypt, and the sequence/index stamping —
// everything serveUDPDatagram does between recvfrom and sendto.
func TestUDPDatagramPathZeroAllocs(t *testing.T) {
	const nCirc = 8
	ms := allocTestMux(t, nCirc, 1)
	tgt := ms.t
	dg := make([]byte, udpDatagramBytes)
	scratch := cell.NewSpanScratch()
	var spans spanSet
	var seqs [udpDatagramCells]uint64
	stamp := func() {
		for i := 0; i < udpDatagramCells; i++ {
			cell.PutHeader(dg[i*cell.Size:], uint32(i%nCirc)+1, cell.MsmtData)
		}
	}
	stamp()
	tgt.serveUDPDatagram(ms, dg, &spans, scratch, &seqs) // warm span storage
	if n := testing.AllocsPerRun(100, func() {
		stamp()
		if got := tgt.serveUDPDatagram(ms, dg, &spans, scratch, &seqs); got != udpDatagramCells {
			t.Fatalf("served %d data cells, want %d", got, udpDatagramCells)
		}
	}); n != 0 {
		t.Fatalf("udp datagram path: %v allocs per %d-cell datagram, want 0", n, udpDatagramCells)
	}
}

// TestReaderDecodePathZeroAllocs covers the measurer's echo reader:
// batched refill through cellReader, per-cell header demux, deterministic
// check sampling, and keystream verification of the sampled cells.
func TestReaderDecodePathZeroAllocs(t *testing.T) {
	km := cell.DeriveKeys([]byte("alloc"))
	ks, err := cell.NewKeystream(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	circs := []*cell.Keystream{ks}
	cr := newCellReader(newCellStream(), make([]byte, cell.SuperBytes))
	threshold := checkThreshold(0.05)
	var recvSeq uint64
	var checked int
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < cell.BatchCells; i++ {
			cb, err := cr.next()
			if err != nil {
				t.Fatal(err)
			}
			if cell.CommandOf(cb) != cell.MsmtData {
				t.Fatal("unexpected command")
			}
			idx := int(cell.CircIDOf(cb)) - 1
			seq := recvSeq
			recvSeq++
			if checkSampled(7, uint32(idx)+1, seq, threshold) {
				checked++
				// The synthetic stream is not a real echo, so the verify
				// outcome is irrelevant — only its allocation behavior is
				// under test.
				_ = circs[idx].VerifyAt(cell.PayloadOf(cb), seq*cell.PayloadSize)
			}
		}
	}); n != 0 {
		t.Fatalf("reader decode path: %v allocs per %d-cell batch, want 0", n, cell.BatchCells)
	}
	if checked == 0 {
		t.Fatal("check sampling never fired; the guard did not cover the verify path")
	}
}
