package wire

import (
	"fmt"
	"sync"
	"time"

	"flashflow/internal/core"
)

// Backend implements core.Backend over real connections: each measurement
// slot fans the allocation out to the team members, runs the wire protocol
// concurrently, and reassembles per-measurer per-second byte counts.
type Backend struct {
	// Members is the measurement team, index-aligned with the core team
	// slice used for allocation.
	Members []Member
	// CheckProb is the echo verification probability p.
	CheckProb float64
	// Seed drives the deterministic payload streams.
	Seed int64
}

// Member is one measurer: an identity plus a dialer for each target.
type Member struct {
	Identity Identity
	Dial     func(target string) Dialer
}

var _ core.Backend = (*Backend)(nil)

// RunMeasurement implements core.Backend.
func (b *Backend) RunMeasurement(target string, alloc core.Allocation, seconds int) (core.MeasurementData, error) {
	if len(alloc.PerMeasurerBps) != len(b.Members) {
		return core.MeasurementData{}, fmt.Errorf("wire: allocation for %d measurers, team has %d", len(alloc.PerMeasurerBps), len(b.Members))
	}
	data := core.MeasurementData{
		MeasBytes: make([][]float64, len(b.Members)),
		NormBytes: make([]float64, seconds),
	}
	for i := range data.MeasBytes {
		data.MeasBytes[i] = make([]float64, seconds)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, a := range alloc.PerMeasurerBps {
		if a <= 0 {
			continue
		}
		wg.Add(1)
		go func(idx int, rate float64, sockets int) {
			defer wg.Done()
			res, err := Measure(b.Members[idx].Dial(target), MeasureOptions{
				Identity:  b.Members[idx].Identity,
				Sockets:   sockets,
				RateBps:   rate,
				Duration:  time.Duration(seconds) * time.Second,
				CheckProb: b.CheckProb,
				Seed:      b.Seed + int64(idx)*1000,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("measurer %d: %w", idx, err)
				}
				return
			}
			for j := 0; j < seconds && j < len(res.PerSecondBytes); j++ {
				data.MeasBytes[idx][j] = res.PerSecondBytes[j]
			}
			if res.Failed {
				data.Failed = true
			}
		}(i, a, alloc.SocketsPer[i])
	}
	wg.Wait()
	if firstErr != nil {
		return core.MeasurementData{}, firstErr
	}
	return data, nil
}
