package wire

import (
	"context"
	"fmt"
	"sync"
	"time"

	"flashflow/internal/core"
)

// Backend implements core.Backend over real connections: each measurement
// slot fans the allocation out to the team members, runs the wire protocol
// concurrently, streams per-second samples to the caller's sink as the
// wall-clock seconds complete, and reassembles per-measurer per-second
// byte counts into the authoritative MeasurementData.
type Backend struct {
	// Members is the measurement team, index-aligned with the core team
	// slice used for allocation.
	Members []Member
	// CheckProb is the echo verification probability p.
	CheckProb float64
	// Seed drives the deterministic payload streams.
	Seed int64
}

// Member is one measurer: an identity plus a dialer for each target.
type Member struct {
	Identity Identity
	Dial     func(target string) Dialer
	// DialData, when non-nil, dials the target's datagram data plane for
	// each target and switches this member's measurement cells to UDP
	// (TCP keeps the control plane). Nil members measure over the stream.
	DialData func(target string) Dialer
}

var _ core.Backend = (*Backend)(nil)

// sampleMatrix merges the per-member OnSecond callbacks into ordered
// core.Samples: second j is emitted once every participating member has
// reported it, so a sample never undercounts a member whose second-boundary
// callback is a few scheduler ticks behind. A member that dies stops
// reporting and the stream simply ends early — the final MeasurementData
// remains the authoritative record.
type sampleMatrix struct {
	mu           sync.Mutex
	bytes        [][]float64 // [member][second]
	reported     []int       // members that have reported each second
	participants int
	row          []float64 // reused scratch for the emitted sample
	sink         core.SampleSink
	next         int // next second to emit
}

func newSampleMatrix(members, seconds, participants int, sink core.SampleSink) *sampleMatrix {
	sm := &sampleMatrix{
		bytes:        make([][]float64, members),
		reported:     make([]int, seconds),
		participants: participants,
		row:          make([]float64, members),
		sink:         sink,
	}
	for i := range sm.bytes {
		sm.bytes[i] = make([]float64, seconds)
	}
	return sm
}

func (sm *sampleMatrix) record(member, second int, bytes float64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if second < 0 || second >= len(sm.reported) {
		return
	}
	sm.bytes[member][second] = bytes
	sm.reported[second]++
	for sm.next < len(sm.reported) && sm.reported[sm.next] >= sm.participants {
		for i := range sm.bytes {
			sm.row[i] = sm.bytes[i][sm.next]
		}
		// The wire protocol has no in-band normal-traffic report yet, so
		// NormBytes stays zero (matching the final MeasurementData).
		sm.sink(core.Sample{Second: sm.next, MeasBytes: sm.row})
		sm.next++
	}
}

// RunMeasurement implements core.Backend.
//
// Cancellation tears every member's connections down promptly (ctx is
// plumbed into each Measure, which closes conns and applies ctx deadlines)
// and the data for fully completed seconds is returned with ctx.Err().
//
// A member that fails mid-slot no longer poisons the slot: the surviving
// members' per-second bytes — and whatever the failed member echoed before
// dying — are salvaged into the MeasurementData with Incomplete set, so
// the caller can keep driving the doubling loop on an honest lower bound
// instead of discarding every byte. Only when every participating member
// fails is the first error returned.
func (b *Backend) RunMeasurement(ctx context.Context, target string, alloc core.Allocation, seconds int, sink core.SampleSink) (core.MeasurementData, error) {
	if len(alloc.PerMeasurerBps) != len(b.Members) {
		return core.MeasurementData{}, fmt.Errorf("wire: allocation for %d measurers, team has %d", len(alloc.PerMeasurerBps), len(b.Members))
	}
	data := core.MeasurementData{
		MeasBytes: make([][]float64, len(b.Members)),
		NormBytes: make([]float64, seconds),
	}
	for i := range data.MeasBytes {
		data.MeasBytes[i] = make([]float64, seconds)
	}

	participants := 0
	for _, a := range alloc.PerMeasurerBps {
		if a > 0 {
			participants++
		}
	}
	var sm *sampleMatrix
	if sink != nil && participants > 0 {
		sm = newSampleMatrix(len(b.Members), seconds, participants, sink)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		failures  int
		completed = seconds // shortest per-member completed window
	)
	for i, a := range alloc.PerMeasurerBps {
		if a <= 0 {
			continue
		}
		wg.Add(1)
		go func(idx int, rate float64, sockets int) {
			defer wg.Done()
			opts := MeasureOptions{
				Identity:  b.Members[idx].Identity,
				Sockets:   sockets,
				RateBps:   rate,
				Duration:  time.Duration(seconds) * time.Second,
				CheckProb: b.CheckProb,
				Seed:      b.Seed + int64(idx)*1000,
			}
			if sm != nil {
				opts.OnSecond = func(second int, bytes float64) {
					sm.record(idx, second, bytes)
				}
			}
			if dd := b.Members[idx].DialData; dd != nil {
				opts.DialData = dd(target)
			}
			res, err := Measure(ctx, b.Members[idx].Dial(target), opts)
			mu.Lock()
			defer mu.Unlock()
			data.SentCells += res.SentCells
			data.LostCells += res.LostCells
			// Salvage whatever the member echoed — even a failed member
			// usually delivered complete seconds before dying.
			for j := 0; j < seconds && j < len(res.PerSecondBytes); j++ {
				data.MeasBytes[idx][j] = res.PerSecondBytes[j]
			}
			if len(res.PerSecondBytes) < completed {
				completed = len(res.PerSecondBytes)
			}
			if res.Failed {
				data.Failed = true
			}
			if err != nil {
				failures++
				if firstErr == nil {
					firstErr = fmt.Errorf("measurer %d: %w", idx, err)
				}
			}
		}(i, a, alloc.SocketsPer[i])
	}
	wg.Wait()

	if ctxErr := ctx.Err(); ctxErr != nil {
		// Cancelled slot: report only the seconds every member completed,
		// evenly truncated so the series stay rectangular.
		return data.Truncate(completed), ctxErr
	}
	if firstErr != nil {
		if participants > 0 && failures == participants {
			// Nothing survived; the salvaged matrix is still returned for
			// callers that can use a truncated record.
			return data, firstErr
		}
		data.Incomplete = true
	}
	return data, nil
}
