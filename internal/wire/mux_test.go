package wire

import (
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flashflow/internal/cell"
)

// muxClient is a scripted measurer: it speaks the wire protocol by hand so
// tests can control exactly how cells interleave across circuits and how
// batches land on the connection — patterns the real Measure sender would
// never produce on its own.
type muxClient struct {
	conn net.Conn
	tr   Transport
	cr   *cellReader
	ks   []*cell.Keystream
}

func dialMuxClient(t *testing.T, addr string, id Identity, nCirc int) *muxClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := clientAuthenticate(conn, id); err != nil {
		t.Fatalf("authenticate: %v", err)
	}
	tr := NewConnTransport(conn)
	cr := newCellReader(tr, make([]byte, cell.SuperBytes))
	ks, err := createCircuits(tr, cr, nCirc)
	if err != nil {
		t.Fatalf("create circuits: %v", err)
	}
	return &muxClient{conn: conn, tr: tr, cr: cr, ks: ks}
}

// dataBatch builds one wire batch of zero-payload MsmtData cells on the
// given circuit IDs (1-based), in order.
func dataBatch(ids []uint32) []byte {
	buf := make([]byte, len(ids)*cell.Size)
	for i, id := range ids {
		cell.PutHeader(buf[i*cell.Size:], id, cell.MsmtData)
	}
	return buf
}

// endCell builds one MsmtEnd cell for the circuit.
func endCell(id uint32) []byte {
	buf := make([]byte, cell.Size)
	cell.PutHeader(buf, id, cell.MsmtEnd)
	return buf
}

// TestMuxInterleavedReassembly drives one connection with randomized
// multi-circuit traffic and checks the demux invariant the whole data plane
// rests on: the k-th MsmtData cell of circuit c to arrive back IS cell k of
// circuit c, byte-identical to the circuit's forward keystream at offset
// k·PayloadSize, no matter how arbitrarily cells from different circuits
// interleave within and across batches. It also tears two circuits down
// mid-stream (their MsmtEnd riding in the same batch as other circuits'
// data) and keeps streaming on the rest — reuse of a torn-down slot's
// ID-space neighbours must not disturb surviving circuits' sequencing.
func TestMuxInterleavedReassembly(t *testing.T) {
	runMuxReassembly(t, TargetConfig{})
}

// TestMuxInterleavedReassemblyParallel forces the multi-worker decrypt
// pipeline (even on a single-core host) and re-checks the identical
// invariant: worker pinning plus the ordered writer must make the parallel
// path byte-indistinguishable from the inline one.
func TestMuxInterleavedReassemblyParallel(t *testing.T) {
	runMuxReassembly(t, TargetConfig{DecryptWorkers: 4})
}

func runMuxReassembly(t *testing.T, cfg TargetConfig) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startTarget(t, cfg, id)
	defer stop()

	const nCirc = 6
	c := dialMuxClient(t, addr, id, nCirc)
	rng := rand.New(rand.NewSource(42))

	// Reader: verify EVERY echoed data cell against its circuit's keystream
	// at the position implied purely by arrival order, and count per-circuit
	// cells until all ends are echoed.
	recvSeq := make([]uint64, nCirc)
	ends := 0
	readErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ends < nCirc {
			cb, err := c.cr.next()
			if err != nil {
				readErr <- err
				return
			}
			idx := int(cell.CircIDOf(cb)) - 1
			switch cmd := cell.CommandOf(cb); cmd {
			case cell.MsmtData:
				if idx < 0 || idx >= nCirc {
					t.Errorf("echo for unknown circuit %d", idx+1)
					readErr <- nil
					return
				}
				if !c.ks[idx].VerifyAt(cell.PayloadOf(cb), recvSeq[idx]*cell.PayloadSize) {
					t.Errorf("circuit %d cell %d: echoed payload is not the forward keystream", idx+1, recvSeq[idx])
					readErr <- nil
					return
				}
				recvSeq[idx]++
			case cell.MsmtEnd:
				ends++
			default:
				t.Errorf("unexpected echo cell %v", cmd)
				readErr <- nil
				return
			}
		}
		readErr <- nil
	}()

	// Sender: randomized batch sizes, randomized circuit pattern per batch,
	// alternating single writes and multi-batch vectored writes. Circuits 1
	// and 2 are torn down after round 20, with their MsmtEnd cells embedded
	// in a batch that also carries live circuits' data.
	live := []uint32{1, 2, 3, 4, 5, 6}
	sent := make([]uint64, nCirc)
	pick := func(k int) []uint32 {
		ids := make([]uint32, k)
		for i := range ids {
			ids[i] = live[rng.Intn(len(live))]
			sent[ids[i]-1]++
		}
		return ids
	}
	for round := 0; round < 60; round++ {
		if round == 20 {
			mixed := dataBatch(pick(5))
			mixed = append(mixed, endCell(1)...)
			live = []uint32{2, 3, 4, 5, 6}
			mixed = append(mixed, dataBatch(pick(3))...)
			mixed = append(mixed, endCell(2)...)
			live = []uint32{3, 4, 5, 6}
			if _, err := c.tr.Write(mixed); err != nil {
				t.Fatalf("send teardown batch: %v", err)
			}
			continue
		}
		switch rng.Intn(3) {
		case 0: // single partial batch
			if _, err := c.tr.Write(dataBatch(pick(1 + rng.Intn(cell.BatchCells)))); err != nil {
				t.Fatalf("send: %v", err)
			}
		case 1: // one full batch
			if _, err := c.tr.Write(dataBatch(pick(cell.BatchCells))); err != nil {
				t.Fatalf("send: %v", err)
			}
		default: // scatter-gather: several batches in one vectored write
			bufs := net.Buffers{
				dataBatch(pick(1 + rng.Intn(cell.BatchCells))),
				dataBatch(pick(1 + rng.Intn(cell.BatchCells))),
				dataBatch(pick(1 + rng.Intn(cell.BatchCells))),
			}
			if err := c.tr.WriteBatches(&bufs); err != nil {
				t.Fatalf("send vectored: %v", err)
			}
		}
	}
	for _, id := range live {
		if _, err := c.tr.Write(endCell(id)); err != nil {
			t.Fatalf("send end: %v", err)
		}
	}

	wg.Wait()
	if err := <-readErr; err != nil {
		t.Fatalf("read echo: %v", err)
	}
	for i := 0; i < nCirc; i++ {
		if recvSeq[i] != sent[i] {
			t.Errorf("circuit %d: echoed %d cells, sent %d", i+1, recvSeq[i], sent[i])
		}
	}
}

// TestMuxDataAfterTeardown checks the target refuses traffic on a circuit
// that was torn down mid-measurement: MsmtData after MsmtEnd must kill the
// connection with an unknown-circuit error, not silently echo garbage.
func TestMuxDataAfterTeardown(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(TargetConfig{})
	tgt.Authorize(id.Pub)
	defer tgt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	handleErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			handleErr <- err
			return
		}
		handleErr <- tgt.HandleConn(conn)
	}()

	c := dialMuxClient(t, l.Addr().String(), id, 2)
	if _, err := c.tr.Write(dataBatch([]uint32{1, 2, 1})); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := c.tr.Write(endCell(1)); err != nil {
		t.Fatalf("send end: %v", err)
	}
	// Give the target a chance to process the teardown in its own batch,
	// then violate the protocol.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.tr.Write(dataBatch([]uint32{1})); err != nil {
		t.Fatalf("send after end: %v", err)
	}
	select {
	case err := <-handleErr:
		if err == nil || !strings.Contains(err.Error(), "unknown circuit") {
			t.Fatalf("HandleConn error = %v, want unknown-circuit", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target did not reject data on torn-down circuit")
	}
}

// TestMuxDuplicateCircuitRejected checks a second MsmtCreate reusing a live
// circuit ID kills the connection instead of silently replacing the
// circuit's crypto state.
func TestMuxDuplicateCircuitRejected(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(TargetConfig{})
	tgt.Authorize(id.Pub)
	defer tgt.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	handleErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			handleErr <- err
			return
		}
		handleErr <- tgt.HandleConn(conn)
	}()

	c := dialMuxClient(t, l.Addr().String(), id, 1)
	dup := make([]byte, cell.Size)
	cell.PutHeader(dup, 1, cell.MsmtCreate)
	if _, err := c.tr.Write(dup); err != nil {
		t.Fatalf("send duplicate create: %v", err)
	}
	select {
	case err := <-handleErr:
		if err == nil || !strings.Contains(err.Error(), "duplicate circuit") {
			t.Fatalf("HandleConn error = %v, want duplicate-circuit", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target did not reject duplicate circuit ID")
	}
}

// TestMeasureMuxRace runs the real multiplexed data plane — sharded
// senders, the paced vectored writer, and the demux reader all hammering
// one connection's shared state — long enough for the race detector to see
// every pairing. Deliberately NOT skipped under -short: the CI race job
// runs with -short, and this is precisely the test it exists for.
func TestMeasureMuxRace(t *testing.T) {
	runMeasureMuxRace(t, TargetConfig{})
}

// TestMeasureMuxRaceParallel is the same race workout with the target's
// parallel decrypt pipeline forced on: reader dispatch, pinned workers,
// the ordered writer, and the arena ring all under the race detector.
func TestMeasureMuxRaceParallel(t *testing.T) {
	runMeasureMuxRace(t, TargetConfig{DecryptWorkers: 4})
}

func runMeasureMuxRace(t *testing.T, cfg TargetConfig) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startTarget(t, cfg, id)
	defer stop()

	res, err := Measure(t.Context(), tcpDialer(addr), MeasureOptions{
		Identity:  id,
		Sockets:   8,
		Duration:  300 * time.Millisecond,
		CheckProb: 0.05,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if res.Failed {
		t.Fatal("echo verification failed against an honest target")
	}
	if res.CellsChecked == 0 {
		t.Fatal("no cells spot-checked")
	}
}
