package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"

	"flashflow/internal/cell"
)

// makeCells encodes n sequentially-numbered data cells.
func makeCells(n int) []byte {
	buf := make([]byte, n*cell.Size)
	for i := 0; i < n; i++ {
		cb := buf[i*cell.Size : (i+1)*cell.Size]
		cell.PutHeader(cb, uint32(i), cell.MsmtData)
		for j := range cell.PayloadOf(cb) {
			cell.PayloadOf(cb)[j] = byte(i)
		}
	}
	return buf
}

func TestCellReaderNextPreservesCells(t *testing.T) {
	const n = 7
	stream := makeCells(n)
	// One-byte reads force the reader through every partial-cell refill
	// path; the cells must still come out whole and in order.
	cr := newCellReader(iotest.OneByteReader(bytes.NewReader(stream)), make([]byte, cell.BatchBytes))
	for i := 0; i < n; i++ {
		cb, err := cr.next()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if cell.CircIDOf(cb) != uint32(i) || cell.CommandOf(cb) != cell.MsmtData {
			t.Fatalf("cell %d: header %d/%v", i, cell.CircIDOf(cb), cell.CommandOf(cb))
		}
		if !bytes.Equal(cell.PayloadOf(cb), stream[i*cell.Size+5:(i+1)*cell.Size]) {
			t.Fatalf("cell %d: payload corrupted", i)
		}
	}
	if _, err := cr.next(); err != io.EOF {
		t.Fatalf("after stream end: %v", err)
	}
}

func TestCellReaderBatchesWholeCells(t *testing.T) {
	const n = 2*cell.BatchCells + 3
	cr := newCellReader(bytes.NewReader(makeCells(n)), make([]byte, cell.BatchBytes))
	total := 0
	for {
		b, err := cr.nextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 || len(b)%cell.Size != 0 {
			t.Fatalf("batch length %d not a positive multiple of cell.Size", len(b))
		}
		for i := 0; i < len(b)/cell.Size; i++ {
			if got := cell.CircIDOf(b[i*cell.Size:]); got != uint32(total+i) {
				t.Fatalf("batch cell order: got circID %d want %d", got, total+i)
			}
		}
		total += len(b) / cell.Size
	}
	if total != n {
		t.Fatalf("cells delivered: got %d want %d", total, n)
	}
}

func TestCellReaderPartialCellIsUnexpectedEOF(t *testing.T) {
	stream := makeCells(2)
	cr := newCellReader(bytes.NewReader(stream[:cell.Size+100]), make([]byte, cell.BatchBytes))
	if _, err := cr.next(); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-cell stream end: got %v want ErrUnexpectedEOF", err)
	}
}

func TestCellReaderRejectsShortBuffer(t *testing.T) {
	cr := newCellReader(bytes.NewReader(makeCells(1)), make([]byte, cell.Size-1))
	if _, err := cr.next(); !errors.Is(err, errShortCellBuf) {
		t.Fatalf("short buffer: got %v", err)
	}
}

// cellStream is an endless cell source for steady-state alloc and
// throughput measurements: every Read yields whole encoded cells.
type cellStream struct{ tmpl []byte }

func newCellStream() *cellStream {
	tmpl := make([]byte, cell.Size)
	cell.PutHeader(tmpl, 1, cell.MsmtData)
	return &cellStream{tmpl: tmpl}
}

func (s *cellStream) Read(p []byte) (int, error) {
	n := 0
	for len(p)-n >= cell.Size {
		copy(p[n:], s.tmpl)
		n += cell.Size
	}
	if n == 0 { // caller buffer smaller than one cell: fill what fits
		n = copy(p, s.tmpl)
	}
	return n, nil
}

func BenchmarkCellReaderNext(b *testing.B) {
	cr := newCellReader(newCellStream(), make([]byte, cell.BatchBytes))
	b.SetBytes(cell.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cr.next(); err != nil {
			b.Fatal(err)
		}
	}
}
