package wire

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"flashflow/internal/cell"
)

// Pooled-buffer discipline tests: every error path must return its pooled
// arenas. The cell package counts pool gets and puts; a session that ends
// — however it ends — must leave the counters balanced, or the pool
// slowly bleeds 128 KiB arenas under real-world connection churn. These
// tests rely on the package's tests running sequentially (none call
// t.Parallel), so the global counters see only their own session.

// poolBalanced runs fn between two pool snapshots and fails the test if
// any batch or super buffers leaked.
func poolBalanced(t *testing.T, name string, fn func()) {
	t.Helper()
	before := cell.ReadPoolStats()
	fn()
	after := cell.ReadPoolStats()
	batch, super := after.Outstanding(before)
	if batch != 0 || super != 0 {
		t.Fatalf("%s leaked pooled buffers: %d batch, %d super outstanding", name, batch, super)
	}
}

// runMuxErrorSession drives one target connection into a demux error
// (data for an unknown circuit) and waits for full teardown.
func runMuxErrorSession(t *testing.T, cfg TargetConfig) {
	t.Helper()
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewTarget(cfg)
	tgt.Authorize(id.Pub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	handleErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			handleErr <- err
			return
		}
		handleErr <- tgt.HandleConn(conn)
	}()
	c := dialMuxClient(t, l.Addr().String(), id, 2)
	if _, err := c.tr.Write(dataBatch([]uint32{1, 2, 99})); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case err := <-handleErr:
		if err == nil || !strings.Contains(err.Error(), "unknown circuit") {
			t.Fatalf("HandleConn error = %v, want unknown-circuit", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("target did not reject unknown circuit")
	}
	c.conn.Close()
	l.Close()
	tgt.Close() // joins every handler before the pool snapshot
}

// runMuxAbruptClose streams some data, then yanks the client connection
// mid-stream — the everyday teardown a target sees constantly.
func runMuxAbruptClose(t *testing.T, cfg TargetConfig) {
	t.Helper()
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	addr, tgt, stop := startTarget(t, cfg, id)
	c := dialMuxClient(t, addr, id, 4)
	for i := 0; i < 8; i++ {
		if _, err := c.tr.Write(dataBatch([]uint32{1, 2, 3, 4, 1, 2, 3, 4})); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	c.conn.Close()
	stop()
	_ = tgt
}

// TestServeMuxPoolDisciplineOnError pins the error paths of both serve
// loops: the inline one and the parallel pipeline, whose teardown must
// reclaim every arena from the ring — including batches still out with
// workers or the writer when the reader hits the error.
func TestServeMuxPoolDisciplineOnError(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  TargetConfig
	}{
		{"inline", TargetConfig{DecryptWorkers: 1}},
		{"parallel", TargetConfig{DecryptWorkers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			poolBalanced(t, "demux error session", func() { runMuxErrorSession(t, tc.cfg) })
		})
	}
}

// TestServeMuxPoolDisciplineOnClientClose pins the abrupt-close teardown
// the same way.
func TestServeMuxPoolDisciplineOnClientClose(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  TargetConfig
	}{
		{"inline", TargetConfig{DecryptWorkers: 1}},
		{"parallel", TargetConfig{DecryptWorkers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			poolBalanced(t, "abrupt close session", func() { runMuxAbruptClose(t, tc.cfg) })
		})
	}
}

// TestMeasureCancelPoolDiscipline cancels a measurement mid-slot on both
// data planes and checks the measurer returned every pooled buffer —
// shard batches queued at the writer, the reader's refill arena, and the
// UDP staging arena all have owners on the cancellation path.
func TestMeasureCancelPoolDiscipline(t *testing.T) {
	for _, mode := range []string{"tcp", "udp"} {
		t.Run(mode, func(t *testing.T) {
			poolBalanced(t, "cancelled measurement", func() {
				id, err := NewIdentity()
				if err != nil {
					t.Fatal(err)
				}
				tgt := NewTarget(TargetConfig{})
				tgt.Authorize(id.Pub)
				ctrlClient, ctrlServer := net.Pipe()
				go func() { _ = tgt.HandleConn(ctrlServer) }()
				opts := udpMeasureOpts(id)
				opts.Duration = 10 * time.Second
				var dataClient net.Conn
				if mode == "udp" {
					dcli, dsrv := newDgramPipe()
					dataClient = dcli
					go tgt.ServeUDP(dsrv)
					opts.DialData = pipeDialer(dcli)
				}
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(150 * time.Millisecond)
					cancel()
				}()
				_, err = Measure(ctx, pipeDialer(ctrlClient), opts)
				if err != context.Canceled {
					t.Fatalf("Measure after cancel: %v, want context.Canceled", err)
				}
				ctrlClient.Close()
				if dataClient != nil {
					dataClient.Close()
				}
				tgt.Close()
			})
		})
	}
}
