package wire

import (
	"crypto/ed25519"
	"fmt"
	"sync"

	"flashflow/internal/cell"
)

// Data-plane planes: a circuit's cells can arrive on the connection's TCP
// stream or, once an MsmtUdp bind succeeded, as datagrams. Span building
// tags per-circuit batch state by plane so the TCP demux loop and the UDP
// datagram loop — which run concurrently against one circuit table — never
// read each other's epoch/span markers.
const (
	planeTCP = 0
	planeUDP = 1
)

// circEntry is one live circuit's demux state: its forward crypto state,
// the decrypt worker it is pinned to, and per-plane markers locating the
// circuit's span in the batch currently being demuxed.
//
// The worker pinning is the parallel pipeline's ordering invariant: a
// circuit's CryptoState is sequential (CTR position advances per cell), so
// every batch's span for that circuit must be decrypted by the same worker
// and in batch arrival order. Pinning by circuit ID gives both: worker
// jobs queues are FIFO per worker, and the reader dispatches batches in
// stream order, so a single owner sees a circuit's spans exactly in the
// order the stream carried them.
type circEntry struct {
	st     *cell.CryptoState
	worker int32
	plane  [2]spanMark
}

// spanMark locates a circuit's open span within the batch identified by
// epoch. A mark whose epoch differs from the batch being built is stale
// and means "no span yet in this batch".
type spanMark struct {
	epoch uint32
	idx   int32
}

// muxSpan is one circuit's slice of a batch: the cell-start offsets (into
// the batch buffer) of its cells, in stream order, plus the state and
// worker that decrypt them.
type muxSpan struct {
	st     *cell.CryptoState
	worker int32
	offs   []int32
}

// spanSet accumulates one batch's spans, reusing its backing storage
// across batches so span building allocates nothing in steady state. A
// spanSet belongs to exactly one demux loop (one plane); epochs it stamps
// into circEntry marks must be strictly increasing per plane.
type spanSet struct {
	plane int
	epoch uint32
	spans []muxSpan
	n     int
}

// reset opens a new batch with the given epoch (must exceed all previous
// epochs this plane used on the table's entries).
func (ss *spanSet) reset(epoch uint32) {
	ss.epoch = epoch
	ss.n = 0
}

// add appends a cell at byte offset off to e's span in the current batch,
// opening the span if this is the circuit's first cell of the batch.
func (ss *spanSet) add(e *circEntry, off int32) {
	m := &e.plane[ss.plane]
	if m.epoch == ss.epoch {
		sp := &ss.spans[m.idx]
		sp.offs = append(sp.offs, off)
		return
	}
	m.epoch = ss.epoch
	m.idx = int32(ss.n)
	if ss.n == len(ss.spans) {
		ss.spans = append(ss.spans, muxSpan{offs: make([]int32, 0, 64)})
	}
	sp := &ss.spans[ss.n]
	sp.st, sp.worker = e.st, e.worker
	sp.offs = append(sp.offs[:0], off)
	ss.n++
}

// muxState is one connection's demux state, shared between the TCP serve
// loop (inline or pipelined) and, when the measurer binds one, the UDP
// datagram loop. mu guards the circuit table and the UDP binding; the
// crypto states themselves are not guarded by it — single ownership is
// enforced structurally (worker pinning on TCP; once a UDP plane is bound,
// TCP data cells are a protocol error, so a circuit's state is only ever
// driven from one plane).
type muxState struct {
	t   *Target
	pub ed25519.PublicKey

	mu       sync.Mutex
	circuits circTable
	nWorkers int32
	epoch    uint32 // TCP-plane batch epoch
	udpEpoch uint32 // UDP-plane batch epoch
	udp      *udpSession
}

// errDataAfterUDPBind reports TCP measurement data arriving after the
// connection bound a UDP data plane. Allowing it would let the same
// circuit's sequential CryptoState be driven concurrently from both
// planes; an honest measurer sends data on exactly one.
var errDataAfterUDPBind = fmt.Errorf("wire: TCP measurement data after UDP bind")

// demuxTCP routes one batch of cells from the connection's TCP stream:
// data cells are appended to per-circuit spans (decryption happens after,
// by the caller or its workers), control cells are handled inline —
// MsmtCreate answers the X25519 handshake by rewriting the cell in place,
// MsmtEnd drops the circuit, MsmtUdp binds a datagram data plane. The
// batch epoch is advanced and spans is reset for this batch. Returns the
// number of data cells demuxed.
//
// The demux invariants from the single-threaded loop are preserved
// exactly: data for an unknown (or torn-down) circuit, a duplicate
// MsmtCreate, an unauthorized create, and unexpected commands all kill the
// connection with the same errors as before.
func (ms *muxState) demuxTCP(batch []byte, spans *spanSet) (int, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.epoch++
	spans.plane = planeTCP
	spans.reset(ms.epoch)
	dataCells := 0
	k := len(batch) / cell.Size
	for i := 0; i < k; i++ {
		off := i * cell.Size
		cb := batch[off : off+cell.Size]
		id := cell.CircIDOf(cb)
		switch cmd := cell.CommandOf(cb); cmd {
		case cell.MsmtData:
			e := ms.circuits.get(id)
			if e == nil {
				return 0, fmt.Errorf("target: data for unknown circuit %d", id)
			}
			if ms.udp != nil {
				return 0, errDataAfterUDPBind
			}
			spans.add(e, int32(off))
			dataCells++
		case cell.MsmtCreate:
			if !ms.t.authorized(ms.pub) {
				return 0, errRevoked
			}
			if ms.circuits.len() >= maxConnCircuits {
				return 0, errTooManyCircuits
			}
			if ms.circuits.get(id) != nil {
				return 0, fmt.Errorf("target: duplicate circuit %d", id)
			}
			st, err := createCircuitCell(cb)
			if err != nil {
				return 0, err
			}
			ms.circuits.set(id, &circEntry{st: st, worker: int32(id % uint32(ms.nWorkers))})
		case cell.MsmtEnd:
			ms.circuits.del(id)
		case cell.MsmtUdp:
			if err := ms.bindUDPLocked(cb); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("target: unexpected cell %v", cmd)
		}
	}
	return dataCells, nil
}
