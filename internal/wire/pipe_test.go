package wire

import (
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"

	"flashflow/internal/cell"
)

// In-memory transports for sockets-free data-plane tests: a net.Pipe
// harness for the TCP-shaped stream plane, and dgramPipe — a
// datagram-preserving link whose client end is a net.Conn and whose server
// end is a DatagramConn — for the UDP plane. The datagram link is where
// deterministic loss and reordering live: wrappers below drop or swap
// whole datagrams by count, which no real socket pair will do on demand.

// pipeDeadline implements mutable read deadlines for the pipe types, after
// net.Pipe's internal design: a channel that closes when the deadline
// passes, replaced whenever the deadline moves.
type pipeDeadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{}
}

func makePipeDeadline() pipeDeadline { return pipeDeadline{cancel: make(chan struct{})} }

func (d *pipeDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the fired timer is closing cancel; wait it out
	}
	d.timer = nil
	closed := isClosedChan(d.cancel)
	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}
	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}
	if !closed {
		close(d.cancel)
	}
}

func (d *pipeDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// dgramPipeAddr is the synthetic source address the server end sees.
var dgramPipeAddr = netip.MustParseAddrPort("127.0.0.1:40000")

// dgramPipe is the shared state of one in-memory datagram link. Buffered
// channels model socket buffers; each send copies, so datagram boundaries
// and ownership match real sockets.
type dgramPipe struct {
	c2s  chan []byte
	s2c  chan []byte
	once sync.Once
	done chan struct{}
}

func newDgramPipe() (*dgramPipeClient, *dgramPipeServer) {
	p := &dgramPipe{
		c2s:  make(chan []byte, 64),
		s2c:  make(chan []byte, 64),
		done: make(chan struct{}),
	}
	c := &dgramPipeClient{p: p, rd: makePipeDeadline()}
	return c, &dgramPipeServer{p: p}
}

func (p *dgramPipe) close() { p.once.Do(func() { close(p.done) }) }

// dgramPipeClient is the measurer end: a connected-datagram net.Conn.
type dgramPipeClient struct {
	p  *dgramPipe
	rd pipeDeadline
}

func (c *dgramPipeClient) Read(p []byte) (int, error) {
	select {
	case b := <-c.p.s2c:
		return copy(p, b), nil
	case <-c.p.done:
		return 0, net.ErrClosed
	case <-c.rd.wait():
		return 0, os.ErrDeadlineExceeded
	}
}

func (c *dgramPipeClient) Write(p []byte) (int, error) {
	b := append([]byte(nil), p...)
	select {
	case c.p.c2s <- b:
		return len(p), nil
	case <-c.p.done:
		return 0, net.ErrClosed
	}
}

func (c *dgramPipeClient) Close() error         { c.p.close(); return nil }
func (c *dgramPipeClient) LocalAddr() net.Addr  { return dgramPipeNetAddr{} }
func (c *dgramPipeClient) RemoteAddr() net.Addr { return dgramPipeNetAddr{} }
func (c *dgramPipeClient) SetDeadline(t time.Time) error {
	c.rd.set(t)
	return nil
}
func (c *dgramPipeClient) SetReadDeadline(t time.Time) error {
	c.rd.set(t)
	return nil
}
func (c *dgramPipeClient) SetWriteDeadline(t time.Time) error { return nil }

type dgramPipeNetAddr struct{}

func (dgramPipeNetAddr) Network() string { return "dgrampipe" }
func (dgramPipeNetAddr) String() string  { return "dgrampipe" }

// dgramPipeServer is the target end, a DatagramConn for Target.ServeUDP.
type dgramPipeServer struct{ p *dgramPipe }

func (s *dgramPipeServer) ReadFrom(p []byte) (int, netip.AddrPort, error) {
	select {
	case b := <-s.p.c2s:
		return copy(p, b), dgramPipeAddr, nil
	case <-s.p.done:
		return 0, netip.AddrPort{}, net.ErrClosed
	}
}

func (s *dgramPipeServer) WriteTo(p []byte, addr netip.AddrPort) (int, error) {
	b := append([]byte(nil), p...)
	select {
	case s.p.s2c <- b:
		return len(p), nil
	case <-s.p.done:
		return 0, net.ErrClosed
	}
}

func (s *dgramPipeServer) Close() error { s.p.close(); return nil }

// lossyDgramConn deterministically drops forward data datagrams: drop is
// called with each data datagram's 1-based count and returns whether to
// eat it. Hellos always pass — loss in the bind exchange is retransmitted
// anyway and would only slow the test down.
type lossyDgramConn struct {
	DatagramConn
	drop func(n int) bool
	cnt  int
}

func (l *lossyDgramConn) ReadFrom(p []byte) (int, netip.AddrPort, error) {
	for {
		n, src, err := l.DatagramConn.ReadFrom(p)
		if err != nil || n%cell.Size != 0 {
			return n, src, err
		}
		l.cnt++
		if l.drop(l.cnt) {
			continue
		}
		return n, src, err
	}
}

// reorderDgramConn swaps consecutive forward data datagrams, up to a
// budget of swaps. The budget keeps it from holding a stream's final
// datagram hostage waiting for a successor that never comes.
type reorderDgramConn struct {
	DatagramConn
	swaps   int
	held    []byte
	heldSrc netip.AddrPort
}

func (r *reorderDgramConn) ReadFrom(p []byte) (int, netip.AddrPort, error) {
	if r.held != nil {
		n := copy(p, r.held)
		src := r.heldSrc
		r.held = nil
		return n, src, nil
	}
	n, src, err := r.DatagramConn.ReadFrom(p)
	if err != nil || n%cell.Size != 0 || r.swaps == 0 {
		return n, src, err
	}
	// Hold this data datagram and deliver whatever follows it first; the
	// held one goes out on the next call.
	r.swaps--
	r.held = append([]byte(nil), p[:n]...)
	r.heldSrc = src
	return r.DatagramConn.ReadFrom(p)
}

// pipeDialer returns a Dialer handing out exactly one pre-built
// connection.
func pipeDialer(c net.Conn) Dialer {
	return func() (net.Conn, error) { return c, nil }
}

// startPipeTargetUDP builds a target whose control plane is a net.Pipe and
// whose data plane is an in-memory datagram link, optionally wrapped (loss,
// reordering). Returns the dialers for MeasureOptions.
func startPipeTargetUDP(t *testing.T, cfg TargetConfig, id Identity, wrap func(DatagramConn) DatagramConn) (Dialer, Dialer) {
	t.Helper()
	tgt := NewTarget(cfg)
	tgt.Authorize(id.Pub)
	ctrlClient, ctrlServer := net.Pipe()
	go func() { _ = tgt.HandleConn(ctrlServer) }()
	dataClient, dataServer := newDgramPipe()
	var dc DatagramConn = dataServer
	if wrap != nil {
		dc = wrap(dataServer)
	}
	go tgt.ServeUDP(dc)
	t.Cleanup(func() {
		ctrlClient.Close()
		dataClient.Close()
		tgt.Close()
	})
	return pipeDialer(ctrlClient), pipeDialer(dataClient)
}
