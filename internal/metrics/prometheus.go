package metrics

import (
	"io"
	"strconv"
	"sync"
)

// This file renders a Counters registry in the Prometheus text exposition
// format (version 0.0.4) for the HTTP observability plane's GET /metrics.
// The encoder is deliberately hand-rolled rather than pulling in the
// Prometheus client library: the registry is flat name→int64, so the
// whole exposition is sorted names, sanitized to the metric-name charset,
// prefixed, and rendered with strconv into one reused buffer. Output is
// byte-deterministic for a fixed counter state (AppendSorted ordering),
// which lets CI diff two scrapes and lets the serve path skip rendering
// when nothing changed.

// MetricPrefix is prepended to every registry counter name in the
// exposition so flashflow metrics namespace cleanly in a shared scrape.
const MetricPrefix = "flashflow_"

// Gauge is one externally supplied instantaneous value merged into the
// exposition alongside the registry counters (e.g. the observability
// server's snapshot age, which is not a monotone counter and is owned by
// another subsystem).
type Gauge struct {
	Name  string
	Help  string
	Value float64
}

// PrometheusEncoder renders Counters registries into the text exposition
// format. The zero value is ready to use; an encoder reuses its scratch
// buffers across calls, so a long-lived server allocates only while the
// registry is still growing new names. Encode is safe for concurrent use.
type PrometheusEncoder struct {
	mu  sync.Mutex
	kvs []KV
	buf []byte
}

// Encode writes the registry counters (sorted, sanitized, prefixed with
// MetricPrefix) followed by the supplied gauges (sorted order is the
// caller's: they are written as given, after the counters) and returns
// the number of bytes written. Counters are exposed as untyped samples —
// the registry mixes monotone counters with Set gauges and the exposition
// format has no way to tell them apart without a schema.
func (e *PrometheusEncoder) Encode(w io.Writer, c *Counters, gauges []Gauge) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.kvs = e.kvs[:0]
	if c != nil {
		e.kvs = c.AppendSorted(e.kvs)
	}
	b := e.buf[:0]
	for _, kv := range e.kvs {
		b = appendMetricName(b, MetricPrefix, kv.Name)
		b = append(b, ' ')
		b = strconv.AppendInt(b, kv.Value, 10)
		b = append(b, '\n')
	}
	for _, g := range gauges {
		if g.Help != "" {
			b = append(b, "# HELP "...)
			b = appendMetricName(b, "", g.Name)
			b = append(b, ' ')
			b = append(b, g.Help...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = appendMetricName(b, "", g.Name)
		b = append(b, " gauge\n"...)
		b = appendMetricName(b, "", g.Name)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, g.Value, 'g', -1, 64)
		b = append(b, '\n')
	}
	e.buf = b
	return w.Write(b)
}

// appendMetricName appends prefix+name with every byte outside the
// Prometheus metric-name charset [a-zA-Z0-9_:] replaced by '_'. A name
// starting with a digit gets a leading '_' (names must not start with a
// digit). The registry's own names are already well-formed; this guards
// caller-supplied names (relay nicknames folded into gauge names, say)
// from producing an unparseable exposition.
func appendMetricName(b []byte, prefix, name string) []byte {
	b = append(b, prefix...)
	if len(name) > 0 && name[0] >= '0' && name[0] <= '9' && prefix == "" {
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '_', ch == ':':
			b = append(b, ch)
		default:
			b = append(b, '_')
		}
	}
	return b
}
