// Package metrics reproduces the paper's §3 TorFlow analysis: relay and
// network capacity error (Eq. 1–3), relay and network weight error
// (Eq. 4–6), and the capacity/weight variation appendix (Eq. 7, Fig. 10).
//
// The paper computes these from 11 years of archived Tor consensuses and
// descriptors. That archive is not available offline, so this package
// generates a synthetic one from the *mechanism* the paper identifies as
// the cause of the error: relays are chronically under-utilized, their
// observed bandwidth is the maximum 10-second throughput over the last 5
// days, and descriptors are re-published every 18 hours. Because the error
// metrics are pure functions of the (advertised bandwidth, weight) series,
// the qualitative shape — error growing with the estimation period p,
// pervasive under-weighting — follows from the mechanism rather than from
// fitting.
package metrics

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// ArchiveParams configures the synthetic archive generator.
type ArchiveParams struct {
	// NumRelays is the relay population size.
	NumRelays int
	// Span is the simulated time range.
	Span time.Duration
	// Sample is the interval between archive samples (the paper analyzes
	// hourly consensuses; coarser sampling is faithful and faster).
	Sample time.Duration
	// DescriptorInterval is how often relays publish descriptors (18 h).
	DescriptorInterval time.Duration
	// ObsHistory is the observed-bandwidth retention (5 days).
	ObsHistory time.Duration
	// UtilSigma is the lognormal sigma of per-interval peak utilization.
	UtilSigma float64
	// MeanUtilLow/High bound the per-relay base utilization.
	MeanUtilLow, MeanUtilHigh float64
	// WeightNoiseSigma is the lognormal sigma of the per-sample TorFlow
	// ratio noise applied to weights.
	WeightNoiseSigma float64
	// RatioCapacityExponent γ models TorFlow's systematic bias: the
	// measured-speed ratio scales like (capacity/median)^γ, so fast
	// relays are over-weighted and the (numerous) slow relays are
	// under-weighted — Fig. 3's ">85 % of relays under-weighted".
	RatioCapacityExponent float64
	// RatioBiasSigma is the per-relay persistent lognormal ratio spread.
	RatioBiasSigma float64
	// RestartProb is the per-descriptor-interval probability that the
	// relay restarts, resetting its observed-bandwidth history (the
	// mechanism behind day-scale advertised-bandwidth variation).
	RestartProb float64
	// DriftSigma is the per-interval step of the slow multiplicative
	// random walk in a relay's base utilization (load trends over months,
	// driving the month→year error growth).
	DriftSigma float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// DefaultArchiveParams returns parameters calibrated so the §3 headline
// numbers land near the paper's: median mean-RCE ≈7 % (day) to ≈28 %
// (year), median NCE ≈5–36 %, median NWE ≈20–30 %.
func DefaultArchiveParams() ArchiveParams {
	return ArchiveParams{
		NumRelays:             300,
		Span:                  2 * 365 * 24 * time.Hour,
		Sample:                6 * time.Hour,
		DescriptorInterval:    18 * time.Hour,
		ObsHistory:            5 * 24 * time.Hour,
		UtilSigma:             0.60,
		MeanUtilLow:           0.15,
		MeanUtilHigh:          0.55,
		WeightNoiseSigma:      0.35,
		RatioCapacityExponent: 0.30,
		RatioBiasSigma:        0.50,
		RestartProb:           0.06,
		DriftSigma:            0.04,
		Seed:                  1,
	}
}

// RelaySeries is one relay's synthetic archive.
type RelaySeries struct {
	Name       string
	TrueCapBps float64
	// AdvertisedBps[t] is A(r, t) at sample t.
	AdvertisedBps []float64
	// WeightBps[t] is the consensus weight at sample t.
	WeightBps []float64
}

// Archive is a synthetic metrics archive.
type Archive struct {
	Params ArchiveParams
	// SampleTimes[t] is the time of sample t.
	SampleTimes []time.Duration
	Relays      []RelaySeries
}

// Samples returns the number of samples per series.
func (a *Archive) Samples() int { return len(a.SampleTimes) }

// SamplesPerPeriod converts a duration into a whole number of samples
// (at least 1).
func (a *Archive) SamplesPerPeriod(p time.Duration) int {
	n := int(p / a.Params.Sample)
	if n < 1 {
		n = 1
	}
	return n
}

// Standard analysis periods from the paper's figures.
func (a *Archive) PeriodDay() int   { return a.SamplesPerPeriod(24 * time.Hour) }
func (a *Archive) PeriodWeek() int  { return a.SamplesPerPeriod(7 * 24 * time.Hour) }
func (a *Archive) PeriodMonth() int { return a.SamplesPerPeriod(30 * 24 * time.Hour) }
func (a *Archive) PeriodYear() int  { return a.SamplesPerPeriod(365 * 24 * time.Hour) }

// ErrBadParams reports invalid archive parameters.
var ErrBadParams = errors.New("metrics: bad archive params")

// GenerateArchive synthesizes the archive.
func GenerateArchive(p ArchiveParams) (*Archive, error) {
	if p.NumRelays <= 0 || p.Span <= 0 || p.Sample <= 0 || p.DescriptorInterval <= 0 {
		return nil, ErrBadParams
	}
	if p.MeanUtilLow <= 0 || p.MeanUtilHigh > 1 || p.MeanUtilLow > p.MeanUtilHigh {
		return nil, ErrBadParams
	}
	rng := rand.New(rand.NewSource(p.Seed))

	samples := int(p.Span / p.Sample)
	times := make([]time.Duration, samples)
	for t := range times {
		times[t] = time.Duration(t) * p.Sample
	}
	intervals := int(p.Span/p.DescriptorInterval) + 1
	obsWindow := int(p.ObsHistory/p.DescriptorInterval) + 1

	arch := &Archive{Params: p, SampleTimes: times, Relays: make([]RelaySeries, p.NumRelays)}
	for r := 0; r < p.NumRelays; r++ {
		capBps := sampleCapacity(rng)
		baseUtil := p.MeanUtilLow + rng.Float64()*(p.MeanUtilHigh-p.MeanUtilLow)

		// Peak 10-second utilization per descriptor interval, modulated
		// by a slow reflected random walk (load trends over months).
		peak := make([]float64, intervals)
		drift := 1.0
		for k := range peak {
			if p.DriftSigma > 0 {
				drift *= math.Exp(rng.NormFloat64() * p.DriftSigma)
				if drift < 0.3 {
					drift = 0.3 / drift * 0.3 // reflect off the floor
				}
				if drift > 3 {
					drift = 3 * 3 / drift // reflect off the ceiling
				}
			}
			u := baseUtil * drift * math.Exp(rng.NormFloat64()*p.UtilSigma)
			if u > 1 {
				u = 1
			}
			peak[k] = u
		}
		// Observed bandwidth per interval: max peak over the trailing
		// 5-day window of intervals, truncated at relay restarts (Tor
		// loses its throughput history on restart).
		observed := make([]float64, intervals)
		lastRestart := 0
		for k := range observed {
			if p.RestartProb > 0 && rng.Float64() < p.RestartProb {
				lastRestart = k
			}
			lo := k - obsWindow + 1
			if lo < 0 {
				lo = 0
			}
			if lastRestart > lo {
				lo = lastRestart
			}
			m := 0.0
			for j := lo; j <= k; j++ {
				if peak[j] > m {
					m = peak[j]
				}
			}
			observed[k] = capBps * m
		}

		series := RelaySeries{
			Name:          relayName(r),
			TrueCapBps:    capBps,
			AdvertisedBps: make([]float64, samples),
			WeightBps:     make([]float64, samples),
		}
		// Persistent TorFlow ratio bias: fast relays measure relatively
		// faster than their capacity share, slow relays slower.
		bias := math.Exp(rng.NormFloat64() * p.RatioBiasSigma)
		if p.RatioCapacityExponent != 0 {
			bias *= math.Pow(capBps/20e6, p.RatioCapacityExponent)
		}
		for t := 0; t < samples; t++ {
			k := int(times[t] / p.DescriptorInterval)
			if k >= intervals {
				k = intervals - 1
			}
			series.AdvertisedBps[t] = observed[k]
			ratio := bias * math.Exp(rng.NormFloat64()*p.WeightNoiseSigma)
			series.WeightBps[t] = observed[k] * ratio
		}
		arch.Relays[r] = series
	}
	return arch, nil
}

// sampleCapacity draws a relay capacity from a heavy-tailed distribution
// resembling Tor's: lognormal around ~20 Mbit/s clamped to
// [0.2 Mbit/s, 1 Gbit/s].
func sampleCapacity(rng *rand.Rand) float64 {
	c := 20e6 * math.Exp(rng.NormFloat64()*1.3)
	if c < 0.2e6 {
		c = 0.2e6
	}
	if c > 1e9 {
		c = 1e9
	}
	return c
}

func relayName(i int) string {
	const digits = "0123456789"
	buf := []byte{'r', '0', '0', '0', '0'}
	for p := 4; p >= 1 && i > 0; p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf)
}
