package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a small thread-safe named-counter registry. Long-running
// services (internal/coord's continuous measurement coordinator) use it to
// expose operational state — rounds completed, slots retried, pool hits —
// alongside the paper's offline analyses that the rest of this package
// implements.
type Counters struct {
	mu   sync.RWMutex
	vals map[string]int64
}

// NewCounters creates an empty registry.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add adds delta to the named counter, creating it at zero first.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.vals[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Set overwrites the named counter (for gauges like pool idle size).
func (c *Counters) Set(name string, v int64) {
	c.mu.Lock()
	c.vals[name] = v
	c.mu.Unlock()
}

// Get returns the named counter's value (zero if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.vals[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// KV is one named counter value in a deterministic snapshot.
type KV struct {
	Name  string
	Value int64
}

// AppendSorted appends every counter to buf in ascending name order and
// returns the extended slice. Passing a reused buffer (buf[:0]) makes a
// steady-state snapshot allocation-free; the Prometheus encoder and the
// v3bw observability plane render from this ordering so their output is
// byte-deterministic for a fixed counter state — map iteration order
// never leaks into exposition output.
func (c *Counters) AppendSorted(buf []KV) []KV {
	start := len(buf)
	c.mu.RLock()
	for k, v := range c.vals {
		buf = append(buf, KV{Name: k, Value: v})
	}
	c.mu.RUnlock()
	tail := buf[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].Name < tail[j].Name })
	return buf
}

// SortedSnapshot returns every counter in ascending name order — the
// deterministic counterpart of Snapshot for output paths that diff runs.
func (c *Counters) SortedSnapshot() []KV {
	return c.AppendSorted(nil)
}

// String renders the counters sorted by name, one "name=value" per line —
// the format coordd prints on shutdown.
func (c *Counters) String() string {
	var b strings.Builder
	for _, kv := range c.SortedSnapshot() {
		fmt.Fprintf(&b, "%s=%d\n", kv.Name, kv.Value)
	}
	return b.String()
}
