package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("untouched counter: %d", got)
	}
	c.Inc("a")
	c.Add("a", 4)
	c.Set("b", 7)
	if got := c.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 5 || snap["b"] != 7 {
		t.Fatalf("snapshot: %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if got := c.Get("a"); got != 5 {
		t.Fatalf("snapshot aliasing: a = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}

func TestCountersStringSorted(t *testing.T) {
	c := NewCounters()
	c.Set("zz", 1)
	c.Set("aa", 2)
	s := c.String()
	if strings.Index(s, "aa=2") > strings.Index(s, "zz=1") {
		t.Fatalf("not sorted: %q", s)
	}
}

// TestSortedSnapshotOrder is the regression test for deterministic
// ordering: every call must return names in ascending order, and
// AppendSorted must leave a caller's existing prefix untouched.
func TestSortedSnapshotOrder(t *testing.T) {
	c := NewCounters()
	names := []string{"m", "zz", "a", "coord_round", "b2", "b10", "B"}
	for i, n := range names {
		c.Set(n, int64(i))
	}
	for trial := 0; trial < 10; trial++ {
		kvs := c.SortedSnapshot()
		if len(kvs) != len(names) {
			t.Fatalf("snapshot has %d entries, want %d", len(kvs), len(names))
		}
		for i := 1; i < len(kvs); i++ {
			if kvs[i-1].Name >= kvs[i].Name {
				t.Fatalf("trial %d: %q not before %q", trial, kvs[i-1].Name, kvs[i].Name)
			}
		}
	}

	// Appending after a pre-existing prefix sorts only the tail.
	prefix := []KV{{Name: "zzz_first", Value: -1}}
	out := c.AppendSorted(prefix)
	if out[0].Name != "zzz_first" || out[0].Value != -1 {
		t.Fatalf("prefix disturbed: %+v", out[0])
	}
	tail := out[1:]
	for i := 1; i < len(tail); i++ {
		if tail[i-1].Name >= tail[i].Name {
			t.Fatalf("tail not sorted: %q before %q", tail[i-1].Name, tail[i].Name)
		}
	}
}
