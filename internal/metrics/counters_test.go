package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("untouched counter: %d", got)
	}
	c.Inc("a")
	c.Add("a", 4)
	c.Set("b", 7)
	if got := c.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 5 || snap["b"] != 7 {
		t.Fatalf("snapshot: %v", snap)
	}
	// Snapshot is a copy.
	snap["a"] = 99
	if got := c.Get("a"); got != 5 {
		t.Fatalf("snapshot aliasing: a = %d", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}

func TestCountersStringSorted(t *testing.T) {
	c := NewCounters()
	c.Set("zz", 1)
	c.Set("aa", 2)
	s := c.String()
	if strings.Index(s, "aa=2") > strings.Index(s, "zz=1") {
		t.Fatalf("not sorted: %q", s)
	}
}
