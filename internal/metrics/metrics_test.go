package metrics

import (
	"math"
	"testing"
	"time"

	"flashflow/internal/stats"
)

// testArchive generates a compact archive once for the whole test file.
func testArchive(t *testing.T) *Archive {
	t.Helper()
	p := DefaultArchiveParams()
	p.NumRelays = 120
	p.Span = 450 * 24 * time.Hour
	a, err := GenerateArchive(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGenerateArchiveShape(t *testing.T) {
	a := testArchive(t)
	if len(a.Relays) != 120 {
		t.Fatalf("relays: %d", len(a.Relays))
	}
	wantSamples := int((450 * 24 * time.Hour) / (6 * time.Hour))
	if a.Samples() != wantSamples {
		t.Fatalf("samples: got %d want %d", a.Samples(), wantSamples)
	}
	for _, r := range a.Relays {
		if len(r.AdvertisedBps) != a.Samples() || len(r.WeightBps) != a.Samples() {
			t.Fatalf("series length mismatch for %s", r.Name)
		}
		if r.TrueCapBps <= 0 {
			t.Fatalf("nonpositive capacity for %s", r.Name)
		}
	}
}

func TestGenerateArchiveBadParams(t *testing.T) {
	bad := []ArchiveParams{
		{},
		{NumRelays: 1, Span: time.Hour, Sample: time.Hour, DescriptorInterval: time.Hour, MeanUtilLow: 0.9, MeanUtilHigh: 0.5},
		{NumRelays: 1, Span: time.Hour, Sample: time.Hour, DescriptorInterval: time.Hour, MeanUtilLow: 0, MeanUtilHigh: 0.5},
	}
	for i, p := range bad {
		if _, err := GenerateArchive(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateArchiveDeterministic(t *testing.T) {
	p := DefaultArchiveParams()
	p.NumRelays = 10
	p.Span = 60 * 24 * time.Hour
	a1, _ := GenerateArchive(p)
	a2, _ := GenerateArchive(p)
	for i := range a1.Relays {
		for t2 := range a1.Relays[i].AdvertisedBps {
			if a1.Relays[i].AdvertisedBps[t2] != a2.Relays[i].AdvertisedBps[t2] {
				t.Fatal("archive generation not deterministic")
			}
		}
	}
}

func TestAdvertisedNeverExceedsCapacity(t *testing.T) {
	a := testArchive(t)
	for _, r := range a.Relays {
		for _, adv := range r.AdvertisedBps {
			if adv > r.TrueCapBps*(1+1e-9) {
				t.Fatalf("advertised %v exceeds capacity %v for %s", adv, r.TrueCapBps, r.Name)
			}
		}
	}
}

func TestSlidingMax(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 1, 1, 1}
	got := slidingMax(xs, 3)
	want := []float64{1, 3, 3, 5, 5, 5, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slidingMax[%d]: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSlidingMaxWindowOne(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := slidingMax(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window-1 max should be identity: %v", got)
		}
	}
}

func TestSlidingRSD(t *testing.T) {
	// Constant series → RSD 0 everywhere.
	got := slidingRSD([]float64{5, 5, 5, 5}, 2)
	for _, v := range got {
		if v != 0 {
			t.Fatalf("constant series RSD: %v", got)
		}
	}
	// Known case: window covering {2,4} → mean 3, stdev 1, RSD 1/3.
	got = slidingRSD([]float64{2, 4}, 2)
	if math.Abs(got[1]-1.0/3) > 1e-9 {
		t.Fatalf("RSD: got %v want 1/3", got[1])
	}
}

func TestRCEIncreasesWithPeriod(t *testing.T) {
	// Fig. 1's headline: longer periods reveal more error.
	a := testArchive(t)
	prev := -1.0
	for _, w := range []int{a.PeriodDay(), a.PeriodWeek(), a.PeriodMonth(), a.PeriodYear()} {
		med := stats.Median(a.MeanRCEPerRelay(w))
		if med < prev {
			t.Fatalf("median RCE not monotone in period: %v then %v", prev, med)
		}
		prev = med
	}
}

func TestRCEPaperBands(t *testing.T) {
	// Loose bands around the paper's medians: 7 % (day), 28 % (year).
	a := testArchive(t)
	day := stats.Median(a.MeanRCEPerRelay(a.PeriodDay()))
	year := stats.Median(a.MeanRCEPerRelay(a.PeriodYear()))
	if day < 0.005 || day > 0.15 {
		t.Fatalf("day RCE median out of band: %v", day)
	}
	if year < 0.15 || year > 0.45 {
		t.Fatalf("year RCE median out of band: %v", year)
	}
}

func TestNCEPaperBands(t *testing.T) {
	// Paper medians: 5 % (day), 14 % (week), 22 % (month), 36 % (year).
	a := testArchive(t)
	day := stats.Median(a.NCESeries(a.PeriodDay()))
	year := stats.Median(a.NCESeries(a.PeriodYear()))
	if day < 0.005 || day > 0.12 {
		t.Fatalf("day NCE median out of band: %v", day)
	}
	if year < 0.18 || year > 0.5 {
		t.Fatalf("year NCE median out of band: %v", year)
	}
	if day >= year {
		t.Fatal("NCE should grow with period")
	}
}

func TestNWEPaperBands(t *testing.T) {
	// Paper medians: 21–30 % across periods.
	a := testArchive(t)
	for _, w := range []int{a.PeriodDay(), a.PeriodWeek(), a.PeriodMonth(), a.PeriodYear()} {
		med := stats.Median(a.NWESeries(w))
		if med < 0.10 || med > 0.45 {
			t.Fatalf("NWE median out of band at w=%d: %v", w, med)
		}
	}
}

func TestMostRelaysUnderweighted(t *testing.T) {
	// Fig. 3: more than ~85 % of relays are under-weighted (RWE < 1).
	a := testArchive(t)
	rwe := a.MeanRWEPerRelay(a.PeriodYear())
	var under int
	for _, v := range rwe {
		if v < 1 {
			under++
		}
	}
	frac := float64(under) / float64(len(rwe))
	if frac < 0.6 {
		t.Fatalf("under-weighted fraction: got %v want most relays", frac)
	}
}

func TestRSDIncreasesWithPeriod(t *testing.T) {
	// Fig. 10: variation grows with the window.
	a := testArchive(t)
	day := stats.Median(a.MeanAdvertisedRSDPerRelay(a.PeriodDay()))
	year := stats.Median(a.MeanAdvertisedRSDPerRelay(a.PeriodYear()))
	if day >= year {
		t.Fatalf("advertised RSD should grow with period: day %v year %v", day, year)
	}
	dayW := stats.Median(a.MeanWeightRSDPerRelay(a.PeriodDay()))
	yearW := stats.Median(a.MeanWeightRSDPerRelay(a.PeriodYear()))
	if dayW >= yearW {
		t.Fatalf("weight RSD should grow with period: day %v year %v", dayW, yearW)
	}
}

func TestRCEZeroForPerfectEstimator(t *testing.T) {
	// A relay whose advertised bandwidth is constant has zero RCE and
	// zero RSD at every period.
	a := &Archive{
		Params:      DefaultArchiveParams(),
		SampleTimes: make([]time.Duration, 100),
		Relays: []RelaySeries{{
			Name:          "const",
			TrueCapBps:    1e6,
			AdvertisedBps: constSeries(100, 5e5),
			WeightBps:     constSeries(100, 5e5),
		}},
	}
	for _, w := range []int{4, 28, 120} {
		rce := a.MeanRCEPerRelay(w)
		if len(rce) != 1 || rce[0] != 0 {
			t.Fatalf("constant relay RCE at w=%d: %v", w, rce)
		}
	}
}

func constSeries(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSummarize(t *testing.T) {
	a := testArchive(t)
	s := a.Summarize(a.PeriodWeek())
	if s.MedianMeanRCE <= 0 || s.MedianNCE <= 0 || s.MedianNWE <= 0 || s.MedianRSD <= 0 {
		t.Fatalf("summary has nonpositive medians: %+v", s)
	}
}

func TestSamplesPerPeriodFloor(t *testing.T) {
	a := testArchive(t)
	if got := a.SamplesPerPeriod(time.Minute); got != 1 {
		t.Fatalf("sub-sample period should clamp to 1: %d", got)
	}
	if got := a.PeriodDay(); got != 4 {
		t.Fatalf("day at 6 h sampling: got %d want 4", got)
	}
}
