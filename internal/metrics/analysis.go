package metrics

import (
	"math"

	"flashflow/internal/stats"
)

// slidingMax computes, for each index t, the maximum of xs over the window
// [t-w+1, t] using a monotonic deque (O(n)).
func slidingMax(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	type entry struct {
		idx int
		val float64
	}
	var deque []entry
	for t, x := range xs {
		for len(deque) > 0 && deque[len(deque)-1].val <= x {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, entry{t, x})
		if deque[0].idx <= t-w {
			deque = deque[1:]
		}
		out[t] = deque[0].val
	}
	return out
}

// slidingRSD computes, for each index t, the relative standard deviation
// of xs over the window [t-w+1, t] using prefix sums (O(n)).
func slidingRSD(xs []float64, w int) []float64 {
	n := len(xs)
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
		prefixSq[i+1] = prefixSq[i] + x*x
	}
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		lo := t - w + 1
		if lo < 0 {
			lo = 0
		}
		cnt := float64(t - lo + 1)
		sum := prefix[t+1] - prefix[lo]
		sumSq := prefixSq[t+1] - prefixSq[lo]
		mean := sum / cnt
		if mean == 0 {
			out[t] = 0
			continue
		}
		variance := sumSq/cnt - mean*mean
		if variance < 0 {
			variance = 0
		}
		out[t] = math.Sqrt(variance) / mean
	}
	return out
}

// analysisStart returns the first sample index at which windows of length
// w are fully populated, matching the paper's convention of starting the
// analysis a year after the data begins.
func (a *Archive) analysisStart(w int) int {
	if w >= a.Samples() {
		return a.Samples() - 1
	}
	return w
}

// MeanRCEPerRelay implements Fig. 1: for each relay, the mean over t of
// RCE(r,t,p) = 1 − A(r,t)/C(r,t,p) with C the maximum advertised bandwidth
// over the p-sample window preceding (and including) t.
func (a *Archive) MeanRCEPerRelay(p int) []float64 {
	start := a.analysisStart(p)
	out := make([]float64, 0, len(a.Relays))
	for _, r := range a.Relays {
		maxes := slidingMax(r.AdvertisedBps, p)
		var sum float64
		var n int
		for t := start; t < len(r.AdvertisedBps); t++ {
			if maxes[t] <= 0 {
				continue
			}
			sum += 1 - r.AdvertisedBps[t]/maxes[t]
			n++
		}
		if n > 0 {
			out = append(out, sum/float64(n))
		}
	}
	return out
}

// NCESeries implements Fig. 2: for each sample t, the network capacity
// error NCE(t,p) = 1 − Σ_r A(r,t) / Σ_r C(r,t,p).
func (a *Archive) NCESeries(p int) []float64 {
	samples := a.Samples()
	sumA := make([]float64, samples)
	sumC := make([]float64, samples)
	for _, r := range a.Relays {
		maxes := slidingMax(r.AdvertisedBps, p)
		for t := 0; t < samples; t++ {
			sumA[t] += r.AdvertisedBps[t]
			sumC[t] += maxes[t]
		}
	}
	start := a.analysisStart(p)
	out := make([]float64, 0, samples-start)
	for t := start; t < samples; t++ {
		if sumC[t] <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, 1-sumA[t]/sumC[t])
	}
	return out
}

// MeanRWEPerRelay implements Fig. 3: for each relay, the mean over t of
// RWE(r,t,p) = W̄(r,t)/C̄(r,t,p), the ratio of the relay's normalized
// consensus weight to its normalized capacity. Values below 1 mean the
// relay is under-weighted. Callers typically plot log10 of the result.
func (a *Archive) MeanRWEPerRelay(p int) []float64 {
	samples := a.Samples()
	nRelays := len(a.Relays)
	maxes := make([][]float64, nRelays)
	totalW := make([]float64, samples)
	totalC := make([]float64, samples)
	for i, r := range a.Relays {
		maxes[i] = slidingMax(r.AdvertisedBps, p)
		for t := 0; t < samples; t++ {
			totalW[t] += r.WeightBps[t]
			totalC[t] += maxes[i][t]
		}
	}
	start := a.analysisStart(p)
	out := make([]float64, 0, nRelays)
	for i, r := range a.Relays {
		var sum float64
		var n int
		for t := start; t < samples; t++ {
			if totalW[t] <= 0 || totalC[t] <= 0 || maxes[i][t] <= 0 {
				continue
			}
			wNorm := r.WeightBps[t] / totalW[t]
			cNorm := maxes[i][t] / totalC[t]
			if cNorm <= 0 {
				continue
			}
			sum += wNorm / cNorm
			n++
		}
		if n > 0 {
			out = append(out, sum/float64(n))
		}
	}
	return out
}

// NWESeries implements Fig. 4: for each sample t, the network weight error
// NWE(t,p) = ½ Σ_r |W̄(r,t) − C̄(r,t,p)| (Eq. 6), the total variation
// distance between normalized weights and normalized capacities.
func (a *Archive) NWESeries(p int) []float64 {
	samples := a.Samples()
	nRelays := len(a.Relays)
	maxes := make([][]float64, nRelays)
	totalW := make([]float64, samples)
	totalC := make([]float64, samples)
	for i, r := range a.Relays {
		maxes[i] = slidingMax(r.AdvertisedBps, p)
		for t := 0; t < samples; t++ {
			totalW[t] += r.WeightBps[t]
			totalC[t] += maxes[i][t]
		}
	}
	start := a.analysisStart(p)
	out := make([]float64, 0, samples-start)
	for t := start; t < samples; t++ {
		if totalW[t] <= 0 || totalC[t] <= 0 {
			out = append(out, 0)
			continue
		}
		var sum float64
		for i, r := range a.Relays {
			sum += math.Abs(r.WeightBps[t]/totalW[t] - maxes[i][t]/totalC[t])
		}
		out = append(out, sum/2)
	}
	return out
}

// MeanAdvertisedRSDPerRelay implements Fig. 10a: for each relay, the mean
// over t of RSD(A(r,t,p)) — the relative standard deviation of advertised
// bandwidths over the trailing window.
func (a *Archive) MeanAdvertisedRSDPerRelay(p int) []float64 {
	return a.meanRSD(p, func(r *RelaySeries) []float64 { return r.AdvertisedBps })
}

// MeanWeightRSDPerRelay implements Fig. 10b for normalized consensus
// weights.
func (a *Archive) MeanWeightRSDPerRelay(p int) []float64 {
	samples := a.Samples()
	totalW := make([]float64, samples)
	for _, r := range a.Relays {
		for t := 0; t < samples; t++ {
			totalW[t] += r.WeightBps[t]
		}
	}
	normalized := make([][]float64, len(a.Relays))
	for i, r := range a.Relays {
		normalized[i] = make([]float64, samples)
		for t := 0; t < samples; t++ {
			if totalW[t] > 0 {
				normalized[i][t] = r.WeightBps[t] / totalW[t]
			}
		}
	}
	start := a.analysisStart(p)
	out := make([]float64, 0, len(a.Relays))
	for i := range a.Relays {
		rsd := slidingRSD(normalized[i], p)
		var sum float64
		var n int
		for t := start; t < samples; t++ {
			sum += rsd[t]
			n++
		}
		if n > 0 {
			out = append(out, sum/float64(n))
		}
	}
	return out
}

func (a *Archive) meanRSD(p int, series func(*RelaySeries) []float64) []float64 {
	start := a.analysisStart(p)
	out := make([]float64, 0, len(a.Relays))
	for i := range a.Relays {
		xs := series(&a.Relays[i])
		rsd := slidingRSD(xs, p)
		var sum float64
		var n int
		for t := start; t < len(xs); t++ {
			sum += rsd[t]
			n++
		}
		if n > 0 {
			out = append(out, sum/float64(n))
		}
	}
	return out
}

// Summary bundles the medians the paper quotes in §3 for one period.
type Summary struct {
	MedianMeanRCE float64
	MedianNCE     float64
	MedianNWE     float64
	MedianRSD     float64
}

// Summarize computes the §3 headline medians for a period.
func (a *Archive) Summarize(p int) Summary {
	return Summary{
		MedianMeanRCE: stats.Median(a.MeanRCEPerRelay(p)),
		MedianNCE:     stats.Median(a.NCESeries(p)),
		MedianNWE:     stats.Median(a.NWESeries(p)),
		MedianRSD:     stats.Median(a.MeanAdvertisedRSDPerRelay(p)),
	}
}
