package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// validMetricLine checks one exposition sample line: name in the
// Prometheus charset, single space, parseable value.
func validMetricLine(t *testing.T, line string) {
	t.Helper()
	name, value, ok := strings.Cut(line, " ")
	if !ok {
		t.Fatalf("no space in sample line %q", line)
	}
	if name == "" || value == "" {
		t.Fatalf("empty name or value in %q", line)
	}
	if name[0] >= '0' && name[0] <= '9' {
		t.Fatalf("metric name starts with digit: %q", line)
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		ok := ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' ||
			ch >= '0' && ch <= '9' || ch == '_' || ch == ':'
		if !ok {
			t.Fatalf("metric name byte %q outside charset in %q", ch, line)
		}
	}
}

func TestPrometheusEncodeFormat(t *testing.T) {
	c := NewCounters()
	c.Set("coord_rounds_completed", 3)
	c.Set("coord_slot_errors", 0)
	c.Add("coord_slots_conclusive", 12)

	var enc PrometheusEncoder
	var buf bytes.Buffer
	n, err := enc.Encode(&buf, c, []Gauge{
		{Name: "flashflow_v3bw_snapshot_age_seconds", Help: "age of snapshot", Value: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("exposition must end in newline: %q", out)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		validMetricLine(t, line)
	}
	for _, want := range []string{
		"flashflow_coord_rounds_completed 3\n",
		"flashflow_coord_slot_errors 0\n",
		"flashflow_coord_slots_conclusive 12\n",
		"# TYPE flashflow_v3bw_snapshot_age_seconds gauge\n",
		"# HELP flashflow_v3bw_snapshot_age_seconds age of snapshot\n",
		"flashflow_v3bw_snapshot_age_seconds 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusEncodeDeterministic pins the contract the CI smoke test
// and the /metrics consumers rely on: a fixed registry state renders to
// identical bytes on every call, regardless of map iteration order.
func TestPrometheusEncodeDeterministic(t *testing.T) {
	c := NewCounters()
	for _, name := range []string{"zeta", "alpha", "mid", "coord_round", "a_b_c"} {
		c.Set(name, int64(len(name)))
	}
	var enc PrometheusEncoder
	var first bytes.Buffer
	if _, err := enc.Encode(&first, c, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if _, err := enc.Encode(&again, c, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("encode %d differs:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
	// Sorted order: alpha before mid before zeta.
	out := first.String()
	if !(strings.Index(out, "alpha") < strings.Index(out, "mid") &&
		strings.Index(out, "mid") < strings.Index(out, "zeta")) {
		t.Fatalf("not in sorted name order:\n%s", out)
	}
}

func TestAppendMetricNameSanitizes(t *testing.T) {
	cases := []struct{ prefix, name, want string }{
		{"flashflow_", "coord_round", "flashflow_coord_round"},
		{"", "relay.nick-name", "relay_nick_name"},
		{"", "9lives", "_9lives"},
		{"flashflow_", "9lives", "flashflow_9lives"},
		// 'и' is two UTF-8 bytes; each is replaced independently.
		{"", "ok:colon_и", "ok:colon___"},
	}
	for _, tc := range cases {
		got := string(appendMetricName(nil, tc.prefix, tc.name))
		if got != tc.want {
			t.Errorf("appendMetricName(%q, %q) = %q, want %q", tc.prefix, tc.name, got, tc.want)
		}
	}
}
