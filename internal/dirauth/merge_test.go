package dirauth

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"testing"
	"time"

	"flashflow/internal/metrics"
)

// testAuth is one test BWAuth: a name and a signing keypair.
type testAuth struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newTestAuths(t *testing.T, names ...string) ([]testAuth, map[string]ed25519.PublicKey) {
	t.Helper()
	auths := make([]testAuth, len(names))
	keys := make(map[string]ed25519.PublicKey, len(names))
	for i, n := range names {
		pub, priv, err := ed25519.GenerateKey(nil)
		if err != nil {
			t.Fatal(err)
		}
		auths[i] = testAuth{name: n, pub: pub, priv: priv}
		keys[n] = pub
	}
	return auths, keys
}

// view renders a v3bw body with the given relay capacities.
func view(at time.Duration, caps map[string]float64) []byte {
	f := NewBandwidthFile("test", at)
	for name, c := range caps {
		f.Set(name, c, c)
	}
	body, _, err := f.Render()
	if err != nil {
		panic(err)
	}
	return body
}

// signedSub builds a signed submission from auth for round covering caps.
func signedSub(auth testAuth, round int, caps map[string]float64) *Submission {
	s := &Submission{
		BWAuth:  auth.name,
		Round:   round,
		Version: SubmissionVersionMax,
		Body:    view(time.Duration(round)*time.Minute, caps),
	}
	s.Sign(auth.priv)
	return s
}

func TestSubmissionEncodeDecodeRoundTrip(t *testing.T) {
	auths, _ := newTestAuths(t, "bw0")
	sub := signedSub(auths[0], 7, map[string]float64{"relay1": 1e6})
	got, err := DecodeSubmission(sub.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.BWAuth != sub.BWAuth || got.Round != sub.Round || got.Version != sub.Version ||
		!bytes.Equal(got.Body, sub.Body) || !bytes.Equal(got.Sig, sub.Sig) {
		t.Fatal("submission did not round-trip")
	}
	if !got.VerifySig(auths[0].pub) {
		t.Fatal("decoded submission's signature must still verify")
	}
	// Truncations at every length must error, never panic or misparse.
	enc := sub.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeSubmission(enc[:cut]); !errors.Is(err, ErrBadSubmissionEncoding) {
			t.Fatalf("cut=%d: err = %v, want ErrBadSubmissionEncoding", cut, err)
		}
	}
	if _, err := DecodeSubmission(append(enc, 0)); !errors.Is(err, ErrBadSubmissionEncoding) {
		t.Fatal("trailing byte must be rejected")
	}
}

// TestSubmitRejections is the table test over every rejection class the
// merge service enforces: unknown BWAuth, unsigned/tampered, version
// skew, duplicate, and regressing rounds, and unparseable bodies.
func TestSubmitRejections(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0", "bw1")
	stranger, _ := newTestAuths(t, "intruder")

	cases := []struct {
		name    string
		sub     func(t *testing.T) *Submission
		wantErr error
		counter string
	}{
		{
			name:    "unknown bwauth",
			sub:     func(t *testing.T) *Submission { return signedSub(stranger[0], 1, map[string]float64{"r": 1e6}) },
			wantErr: ErrUnknownBWAuth,
			counter: "dirauth_submissions_rejected_unknown",
		},
		{
			name: "unsigned",
			sub: func(t *testing.T) *Submission {
				s := signedSub(auths[0], 1, map[string]float64{"r": 1e6})
				s.Sig = nil
				return s
			},
			wantErr: ErrBadSignature,
			counter: "dirauth_submissions_rejected_signature",
		},
		{
			name: "tampered body",
			sub: func(t *testing.T) *Submission {
				s := signedSub(auths[0], 1, map[string]float64{"r": 1e6})
				s.Body = view(time.Minute, map[string]float64{"r": 9e6})
				return s
			},
			wantErr: ErrBadSignature,
			counter: "dirauth_submissions_rejected_signature",
		},
		{
			name: "signed by another registered bwauth",
			sub: func(t *testing.T) *Submission {
				s := &Submission{BWAuth: auths[0].name, Round: 1, Version: SubmissionVersionMax,
					Body: view(time.Minute, map[string]float64{"r": 1e6})}
				s.Sign(auths[1].priv) // bw1's key cannot speak for bw0
				return s
			},
			wantErr: ErrBadSignature,
			counter: "dirauth_submissions_rejected_signature",
		},
		{
			name: "version skew",
			sub: func(t *testing.T) *Submission {
				s := &Submission{BWAuth: auths[0].name, Round: 1, Version: SubmissionVersionMax + 1,
					Body: view(time.Minute, map[string]float64{"r": 1e6})}
				s.Sign(auths[0].priv)
				return s
			},
			wantErr: ErrSubmissionVersion,
			counter: "dirauth_submissions_rejected_version",
		},
		{
			name: "unparseable body",
			sub: func(t *testing.T) *Submission {
				s := &Submission{BWAuth: auths[0].name, Round: 1, Version: SubmissionVersionMax,
					Body: []byte("not a v3bw document")}
				s.Sign(auths[0].priv)
				return s
			},
			wantErr: ErrBadBody,
			counter: "dirauth_submissions_rejected_body",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctr := metrics.NewCounters()
			svc, err := NewMergeService(MergeConfig{Keys: keys, Counters: ctr})
			if err != nil {
				t.Fatal(err)
			}
			_, err = svc.Submit(tc.sub(t))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Submit = %v, want %v", err, tc.wantErr)
			}
			if got := ctr.Get(tc.counter); got != 1 {
				t.Fatalf("%s = %d, want 1", tc.counter, got)
			}
			if got := ctr.Get("dirauth_submissions_accepted"); got != 0 {
				t.Fatalf("accepted = %d, want 0 (rejections change nothing)", got)
			}
			if svc.Merged() != nil {
				t.Fatal("a rejected submission must not produce a merge")
			}
		})
	}
}

func TestSubmitDuplicateAndRegression(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0")
	ctr := metrics.NewCounters()
	svc, err := NewMergeService(MergeConfig{Keys: keys, Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(signedSub(auths[0], 5, map[string]float64{"r": 1e6})); err != nil {
		t.Fatal(err)
	}
	// Exact duplicate (a replayed submission) and an older round both
	// fall to the monotonicity rule.
	for _, round := range []int{5, 4} {
		if _, err := svc.Submit(signedSub(auths[0], round, map[string]float64{"r": 2e6})); !errors.Is(err, ErrStaleSubmission) {
			t.Fatalf("round %d after 5: err = %v, want ErrStaleSubmission", round, err)
		}
	}
	if got := ctr.Get("dirauth_submissions_rejected_stale"); got != 2 {
		t.Fatalf("stale rejections = %d, want 2", got)
	}
	// The newer round is accepted and replaces the view.
	if _, err := svc.Submit(signedSub(auths[0], 6, map[string]float64{"r": 2e6})); err != nil {
		t.Fatal(err)
	}
	if m := svc.Merged(); m == nil || m.Round != 6 {
		t.Fatalf("merged round = %v, want 6", m)
	}
}

// TestMedianOfViews pins the Byzantine-tolerance property: one liar
// among three views cannot push a relay's merged capacity outside the
// honest views' range.
func TestMedianOfViews(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0", "bw1", "bw2")
	svc, err := NewMergeService(MergeConfig{Keys: keys, MinViews: 3})
	if err != nil {
		t.Fatal(err)
	}
	honest := map[string]float64{"r1": 10e6, "r2": 20e6}
	honest2 := map[string]float64{"r1": 11e6, "r2": 21e6}
	liar := map[string]float64{"r1": 1000e6, "r2": 0.001e6}

	if _, err := svc.Submit(signedSub(auths[0], 1, honest)); err != nil {
		t.Fatal(err)
	}
	// Below MinViews: accepted but not merged yet.
	if svc.Merged() != nil {
		t.Fatal("merge must wait for MinViews views")
	}
	if _, err := svc.Submit(signedSub(auths[1], 1, honest2)); err != nil {
		t.Fatal(err)
	}
	merged, err := svc.Submit(signedSub(auths[2], 1, liar))
	if err != nil || merged == nil {
		t.Fatalf("third submission should complete the merge: %v", err)
	}
	for relay, lo, hi := "r1", 10e6, 11e6; ; {
		got := merged.File.Entries[relay].CapacityBps
		if got < lo || got > hi {
			t.Fatalf("%s merged capacity %.0f outside honest range [%.0f, %.0f]", relay, got, lo, hi)
		}
		if relay == "r2" {
			break
		}
		relay, lo, hi = "r2", 20e6, 21e6
	}
	// The liar's wild divergence is flagged at the merge boundary.
	if len(merged.SplitView) != 2 {
		t.Fatalf("split-view relays = %v, want both flagged", merged.SplitView)
	}
}

// TestFreshnessWindow drives the per-BWAuth freshness window with a fake
// clock: a BWAuth that stops submitting ages out of the merge.
func TestFreshnessWindow(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0", "bw1")
	now := time.Unix(1000, 0)
	ctr := metrics.NewCounters()
	svc, err := NewMergeService(MergeConfig{
		Keys:     keys,
		FreshFor: 10 * time.Minute,
		Counters: ctr,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(signedSub(auths[0], 1, map[string]float64{"r": 10e6})); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Minute)
	if _, err := svc.Submit(signedSub(auths[1], 1, map[string]float64{"r": 30e6})); err != nil {
		t.Fatal(err)
	}
	m := svc.Merged()
	if len(m.Views) != 2 {
		t.Fatalf("views = %v, want both fresh", m.Views)
	}

	// 8 minutes later bw0's view (13 min old) is outside the window;
	// bw1's (8 min) is still in.
	now = now.Add(8 * time.Minute)
	m, err = svc.Remerge()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Views) != 1 || m.Views[0] != "bw1" {
		t.Fatalf("views after aging = %v, want [bw1]", m.Views)
	}
	if got := m.File.Entries["r"].CapacityBps; got != 30e6 {
		t.Fatalf("merged capacity = %.0f, want bw1's 30e6 alone", got)
	}
	if ctr.Get("dirauth_merge_stale_views_excluded") == 0 {
		t.Fatal("stale exclusion counter must move")
	}

	// Both age out: the merge fails closed rather than serving stale data.
	now = now.Add(11 * time.Minute)
	if _, err := svc.Remerge(); !errors.Is(err, ErrNoFreshViews) {
		t.Fatalf("all-stale remerge = %v, want ErrNoFreshViews", err)
	}
}

// TestRestoreRecoversFreshness: a restarted merge node re-seeded via
// Restore merges identically and keeps the original receipt clocks.
func TestRestoreRecoversFreshness(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0", "bw1")
	now := time.Unix(5000, 0)
	clk := func() time.Time { return now }

	svc1, err := NewMergeService(MergeConfig{Keys: keys, FreshFor: 10 * time.Minute, Now: clk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Submit(signedSub(auths[0], 3, map[string]float64{"r": 10e6})); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Submit(signedSub(auths[1], 3, map[string]float64{"r": 20e6})); err != nil {
		t.Fatal(err)
	}
	want := svc1.Merged()

	// "Restart": rebuild from the persisted views.
	svc2, err := NewMergeService(MergeConfig{Keys: keys, FreshFor: 10 * time.Minute, Now: clk})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range svc1.Views() {
		if err := svc2.Restore(v.BWAuth, v.Round, v.Version, v.Body, v.Received); err != nil {
			t.Fatal(err)
		}
	}
	got, err := svc2.Remerge()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) || got.ETag != want.ETag {
		t.Fatal("restored merge must be byte-identical to the pre-restart merge")
	}
	// The restored receipt times still age out on the original clock.
	now = now.Add(11 * time.Minute)
	if _, err := svc2.Remerge(); !errors.Is(err, ErrNoFreshViews) {
		t.Fatal("restored views must age out from their original receipt times")
	}
	// And the monotonicity guard survives the restart too.
	if _, err := svc2.Submit(signedSub(auths[0], 3, map[string]float64{"r": 10e6})); !errors.Is(err, ErrStaleSubmission) {
		t.Fatal("replay of a restored round must be rejected")
	}
}

// TestMergeMatchesMergeMedianFile pins the distributed/single-process
// equivalence at the unit level: the service's merged file is exactly
// MergeMedianFile over the same views.
func TestMergeMatchesMergeMedianFile(t *testing.T) {
	auths, keys := newTestAuths(t, "bw0", "bw1", "bw2")
	svc, err := NewMergeService(MergeConfig{Keys: keys, MinViews: 3, Producer: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	caps := []map[string]float64{
		{"r1": 10e6, "r2": 5e6},
		{"r1": 12e6, "r2": 6e6},
		{"r1": 11e6, "r3": 9e6},
	}
	var files []*BandwidthFile
	for i, a := range auths {
		sub := signedSub(a, 2, caps[i])
		if _, err := svc.Submit(sub); err != nil {
			t.Fatal(err)
		}
		f, err := ParseV3BW(bytes.NewReader(sub.Body))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	merged := svc.Merged()
	direct := MergeMedianFile("coord", merged.File.At, files)
	directBody, directETag, err := direct.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Body, directBody) || merged.ETag != directETag {
		t.Fatal("service merge must be byte-identical to MergeMedianFile over the same views")
	}
}
