package dirauth

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"flashflow/internal/stats"
)

// RelayEntry is one relay's record in a consensus.
type RelayEntry struct {
	// Name is the relay nickname (unique in this reproduction).
	Name string
	// AdvertisedBps is min(observed bandwidth, rate limit) from the
	// relay's most recent server descriptor.
	AdvertisedBps float64
	// WeightBps is the load-balancing weight assigned by the bandwidth
	// authorities (the consensus "bandwidth=" value).
	WeightBps float64
	// FirstSeen is when the relay first appeared in any consensus; used
	// by the FlashFlow scheduler to classify relays as new or old.
	FirstSeen time.Duration
}

// Consensus is a network consensus document.
type Consensus struct {
	At     time.Duration
	Relays []RelayEntry
	byName map[string]int
}

// NewConsensus builds a consensus at the given time from relay entries.
// Entries are sorted by name for determinism.
func NewConsensus(at time.Duration, relays []RelayEntry) *Consensus {
	rs := append([]RelayEntry(nil), relays...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
	idx := make(map[string]int, len(rs))
	for i, r := range rs {
		idx[r.Name] = i
	}
	return &Consensus{At: at, Relays: rs, byName: idx}
}

// Lookup returns the entry for the named relay.
func (c *Consensus) Lookup(name string) (RelayEntry, bool) {
	i, ok := c.byName[name]
	if !ok {
		return RelayEntry{}, false
	}
	return c.Relays[i], true
}

// TotalWeight returns the sum of all relay weights.
func (c *Consensus) TotalWeight() float64 {
	var t float64
	for _, r := range c.Relays {
		t += r.WeightBps
	}
	return t
}

// TotalAdvertised returns the sum of advertised bandwidths — the network
// capacity estimate plotted in Fig. 5.
func (c *Consensus) TotalAdvertised() float64 {
	var t float64
	for _, r := range c.Relays {
		t += r.AdvertisedBps
	}
	return t
}

// NormalizedWeights returns each relay's selection probability: its weight
// divided by the total (paper §3.2).
func (c *Consensus) NormalizedWeights() []float64 {
	ws := make([]float64, len(c.Relays))
	for i, r := range c.Relays {
		ws[i] = r.WeightBps
	}
	return stats.Normalize(ws)
}

// BandwidthFile is a bandwidth authority's output: per-relay weight and,
// for FlashFlow, a capacity estimate (Table 2's "capacity values" column).
type BandwidthFile struct {
	Producer string
	At       time.Duration
	Entries  map[string]BandwidthEntry
}

// BandwidthEntry is one relay's line in a bandwidth file.
type BandwidthEntry struct {
	WeightBps   float64
	CapacityBps float64 // zero if the producer provides weights only
}

// NewBandwidthFile creates an empty bandwidth file.
func NewBandwidthFile(producer string, at time.Duration) *BandwidthFile {
	return &BandwidthFile{Producer: producer, At: at, Entries: make(map[string]BandwidthEntry)}
}

// Set records a relay's weight and capacity.
func (b *BandwidthFile) Set(name string, weightBps, capacityBps float64) {
	b.Entries[name] = BandwidthEntry{WeightBps: weightBps, CapacityBps: capacityBps}
}

// ErrNoFiles is returned when aggregating zero bandwidth files.
var ErrNoFiles = errors.New("dirauth: no bandwidth files to aggregate")

// AggregateMedian implements the DirAuth vote: for each relay named in any
// file, the consensus weight is the median of the weights assigned by the
// files that include it, provided a majority of files include it (a relay
// measured by fewer than half the BWAuths is not yet used, per §2).
func AggregateMedian(at time.Duration, files []*BandwidthFile, firstSeen map[string]time.Duration, advertised map[string]float64) (*Consensus, error) {
	if len(files) == 0 {
		return nil, ErrNoFiles
	}
	names := make(map[string]struct{})
	for _, f := range files {
		for n := range f.Entries {
			names[n] = struct{}{}
		}
	}
	majority := len(files)/2 + 1
	entries := make([]RelayEntry, 0, len(names))
	for n := range names {
		var ws []float64
		for _, f := range files {
			if e, ok := f.Entries[n]; ok {
				ws = append(ws, e.WeightBps)
			}
		}
		if len(ws) < majority {
			continue
		}
		e := RelayEntry{Name: n, WeightBps: stats.Median(ws)}
		if firstSeen != nil {
			e.FirstSeen = firstSeen[n]
		}
		if advertised != nil {
			e.AdvertisedBps = advertised[n]
		}
		entries = append(entries, e)
	}
	return NewConsensus(at, entries), nil
}

// MedianCapacities returns per-relay median capacity estimates across
// bandwidth files, for producers (like FlashFlow) that report capacities.
func MedianCapacities(files []*BandwidthFile) map[string]float64 {
	counts := make(map[string][]float64)
	for _, f := range files {
		for n, e := range f.Entries {
			if e.CapacityBps > 0 {
				counts[n] = append(counts[n], e.CapacityBps)
			}
		}
	}
	out := make(map[string]float64, len(counts))
	for n, cs := range counts {
		out[n] = stats.Median(cs)
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (c *Consensus) String() string {
	return fmt.Sprintf("consensus(at=%v relays=%d totalWeight=%.0f)", c.At, len(c.Relays), c.TotalWeight())
}
