// Package dirauth implements the directory substrate FlashFlow plugs
// into: server descriptors, hourly network consensuses, bandwidth files,
// and the median-of-BWAuths vote aggregation that turns per-team
// measurements into consensus weights (§2, §4).
//
// The bandwidth-file side (v3bw.go) is the interchange format between
// the measurement plane and Tor's directory authorities: BandwidthFile
// renders the v3bw text format deterministically (sorted keys, stable
// header order) so identical state produces byte-identical bodies — the
// property the obs package's ETag revalidation and the store package's
// recovered-snapshot round-trip both rely on — and ParseV3BW reads the
// same format back, which is how a coordinator recovering from durable
// state rehydrates its last published snapshot. MergeMedianFile performs
// the §4.2 per-relay median across independently measuring BWAuth teams,
// the step that keeps any single compromised team from controlling a
// relay's consensus weight.
package dirauth
