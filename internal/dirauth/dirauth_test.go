package dirauth

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mkFile(name string, at time.Duration, weights map[string]float64) *BandwidthFile {
	f := NewBandwidthFile(name, at)
	for n, w := range weights {
		f.Set(n, w, 0)
	}
	return f
}

func TestConsensusLookupAndSorting(t *testing.T) {
	c := NewConsensus(0, []RelayEntry{
		{Name: "zeta", WeightBps: 1},
		{Name: "alpha", WeightBps: 2},
	})
	if c.Relays[0].Name != "alpha" {
		t.Fatalf("relays not sorted: %v", c.Relays[0].Name)
	}
	e, ok := c.Lookup("zeta")
	if !ok || e.WeightBps != 1 {
		t.Fatalf("lookup zeta: %v %v", e, ok)
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Fatal("lookup of missing relay should fail")
	}
}

func TestTotals(t *testing.T) {
	c := NewConsensus(0, []RelayEntry{
		{Name: "a", WeightBps: 10, AdvertisedBps: 100},
		{Name: "b", WeightBps: 30, AdvertisedBps: 300},
	})
	if c.TotalWeight() != 40 {
		t.Fatalf("total weight: %v", c.TotalWeight())
	}
	if c.TotalAdvertised() != 400 {
		t.Fatalf("total advertised: %v", c.TotalAdvertised())
	}
	nw := c.NormalizedWeights()
	if math.Abs(nw[0]-0.25) > 1e-12 || math.Abs(nw[1]-0.75) > 1e-12 {
		t.Fatalf("normalized weights: %v", nw)
	}
}

func TestAggregateMedianBasic(t *testing.T) {
	files := []*BandwidthFile{
		mkFile("bw1", 0, map[string]float64{"a": 100, "b": 10}),
		mkFile("bw2", 0, map[string]float64{"a": 200, "b": 20}),
		mkFile("bw3", 0, map[string]float64{"a": 300, "b": 60}),
	}
	c, err := AggregateMedian(time.Hour, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	if a.WeightBps != 200 {
		t.Fatalf("median weight a: got %v want 200", a.WeightBps)
	}
	b, _ := c.Lookup("b")
	if b.WeightBps != 20 {
		t.Fatalf("median weight b: got %v want 20", b.WeightBps)
	}
	if c.At != time.Hour {
		t.Fatalf("consensus time: %v", c.At)
	}
}

func TestAggregateMedianRequiresMajority(t *testing.T) {
	// Relay "c" measured by only 1 of 3 BWAuths must not enter the
	// consensus (§2: relays are unused until measured by a majority).
	files := []*BandwidthFile{
		mkFile("bw1", 0, map[string]float64{"a": 100, "c": 5}),
		mkFile("bw2", 0, map[string]float64{"a": 200}),
		mkFile("bw3", 0, map[string]float64{"a": 300}),
	}
	c, err := AggregateMedian(0, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup("c"); ok {
		t.Fatal("minority-measured relay should be excluded")
	}
	if _, ok := c.Lookup("a"); !ok {
		t.Fatal("majority-measured relay should be included")
	}
}

func TestAggregateMedianResistsOneLiar(t *testing.T) {
	// A single malicious BWAuth reporting a huge weight cannot move the
	// median with 3 honest-majority files.
	files := []*BandwidthFile{
		mkFile("honest1", 0, map[string]float64{"a": 100}),
		mkFile("honest2", 0, map[string]float64{"a": 110}),
		mkFile("evil", 0, map[string]float64{"a": 1e12}),
	}
	c, err := AggregateMedian(0, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	if a.WeightBps != 110 {
		t.Fatalf("median with liar: got %v want 110", a.WeightBps)
	}
}

func TestAggregateMedianEmpty(t *testing.T) {
	if _, err := AggregateMedian(0, nil, nil, nil); err == nil {
		t.Fatal("empty aggregation should error")
	}
}

func TestAggregateCarriesMetadata(t *testing.T) {
	files := []*BandwidthFile{
		mkFile("bw1", 0, map[string]float64{"a": 100}),
	}
	firstSeen := map[string]time.Duration{"a": 42 * time.Hour}
	adv := map[string]float64{"a": 777}
	c, err := AggregateMedian(0, files, firstSeen, adv)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	if a.FirstSeen != 42*time.Hour || a.AdvertisedBps != 777 {
		t.Fatalf("metadata not carried: %+v", a)
	}
}

func TestMedianCapacities(t *testing.T) {
	f1 := NewBandwidthFile("bw1", 0)
	f1.Set("a", 10, 100)
	f2 := NewBandwidthFile("bw2", 0)
	f2.Set("a", 12, 120)
	f3 := NewBandwidthFile("bw3", 0)
	f3.Set("a", 11, 110)
	f3.Set("weightsOnly", 9, 0)
	caps := MedianCapacities([]*BandwidthFile{f1, f2, f3})
	if caps["a"] != 110 {
		t.Fatalf("median capacity: got %v want 110", caps["a"])
	}
	if _, ok := caps["weightsOnly"]; ok {
		t.Fatal("zero-capacity entries must be skipped")
	}
}

// Property: the aggregated weight for a relay is bounded by the min and max
// of the honest file weights whenever the honest files form a majority.
func TestMedianBoundedByHonestQuick(t *testing.T) {
	f := func(honest [3]uint32, evil uint32) bool {
		files := []*BandwidthFile{
			mkFile("h1", 0, map[string]float64{"a": float64(honest[0])}),
			mkFile("h2", 0, map[string]float64{"a": float64(honest[1])}),
			mkFile("h3", 0, map[string]float64{"a": float64(honest[2])}),
			mkFile("e1", 0, map[string]float64{"a": float64(evil) * 1e6}),
		}
		c, err := AggregateMedian(0, files, nil, nil)
		if err != nil {
			return false
		}
		a, ok := c.Lookup("a")
		if !ok {
			return false
		}
		lo := math.Min(float64(honest[0]), math.Min(float64(honest[1]), float64(honest[2])))
		hi := math.Max(float64(honest[0]), math.Max(float64(honest[1]), float64(honest[2])))
		// With 3 honest files of 4 total, the median averages the 2nd and
		// 3rd order statistics, both of which lie within the honest range
		// regardless of the evil value. So the median is in [lo, hi].
		return a.WeightBps >= lo-1e-9 && a.WeightBps <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
