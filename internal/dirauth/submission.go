package dirauth

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file defines the signed, versioned v3bw submission a BWAuth
// process (cmd/bwauthd) sends to a directory-authority merge node. The
// signature is end-to-end: it is made by the BWAuth's identity key over
// the submission's content, independent of the RPC transport that
// carries it, so the merge node's acceptance decision never rests on
// which authenticated connection delivered the bytes — any courier may
// relay a submission, and no courier can forge one.

// Submission format version bounds this build understands. The version
// is bound into the signature, so a peer cannot re-label a submission
// as a different format version without invalidating it.
const (
	SubmissionVersionMin uint16 = 1
	SubmissionVersionMax uint16 = 1
)

// submissionSigPrefix domain-separates submission signatures from the
// identity key's other uses (RPC transport auth, the measurement-plane
// handshake).
const submissionSigPrefix = "flashflow-dirauth-submission\x00"

// Submission is one BWAuth's signed bandwidth-file view for one round.
type Submission struct {
	// BWAuth is the submitting authority's registered name.
	BWAuth string
	// Round is the measurement round the view covers. The merge service
	// requires rounds to be strictly increasing per BWAuth, which makes
	// replayed or duplicated submissions inert.
	Round int
	// Version is the submission format version (bounds above).
	Version uint16
	// Body is the v3bw text rendering of the view (WriteTo format).
	Body []byte
	// Sig is the BWAuth's ed25519 signature over SigningMessage.
	Sig []byte
}

// SigningMessage is the byte string the BWAuth signs: the domain prefix,
// then the version, round, name, and body, each length-delimited or
// fixed-width so no two distinct submissions share a message.
func (s *Submission) SigningMessage() []byte {
	msg := make([]byte, 0, len(submissionSigPrefix)+2+8+2+len(s.BWAuth)+8+len(s.Body))
	msg = append(msg, submissionSigPrefix...)
	msg = binary.BigEndian.AppendUint16(msg, s.Version)
	msg = binary.BigEndian.AppendUint64(msg, uint64(s.Round))
	msg = binary.BigEndian.AppendUint16(msg, uint16(len(s.BWAuth)))
	msg = append(msg, s.BWAuth...)
	msg = binary.BigEndian.AppendUint64(msg, uint64(len(s.Body)))
	return append(msg, s.Body...)
}

// Sign sets Sig to the BWAuth's signature over the submission content.
func (s *Submission) Sign(priv ed25519.PrivateKey) {
	s.Sig = ed25519.Sign(priv, s.SigningMessage())
}

// VerifySig reports whether Sig is pub's valid signature over the
// submission content.
func (s *Submission) VerifySig(pub ed25519.PublicKey) bool {
	return len(s.Sig) == ed25519.SignatureSize && ed25519.Verify(pub, s.SigningMessage(), s.Sig)
}

// ErrBadSubmissionEncoding marks a submission blob that does not parse.
var ErrBadSubmissionEncoding = errors.New("dirauth: malformed submission encoding")

// Encode serializes the submission for transport:
//
//	u16be version | u64be round | u16be nameLen | name |
//	u64be bodyLen | body | 64-byte signature
//
// The layout is self-delimiting and decoded with exact consumption, so
// trailing bytes are rejected rather than silently ignored.
func (s *Submission) Encode() []byte {
	out := make([]byte, 0, 2+8+2+len(s.BWAuth)+8+len(s.Body)+len(s.Sig))
	out = binary.BigEndian.AppendUint16(out, s.Version)
	out = binary.BigEndian.AppendUint64(out, uint64(s.Round))
	out = binary.BigEndian.AppendUint16(out, uint16(len(s.BWAuth)))
	out = append(out, s.BWAuth...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(s.Body)))
	out = append(out, s.Body...)
	return append(out, s.Sig...)
}

// DecodeSubmission parses an Encode blob. It validates structure only;
// signature and version acceptance are the merge service's decisions.
func DecodeSubmission(p []byte) (*Submission, error) {
	var s Submission
	if len(p) < 2+8+2 {
		return nil, fmt.Errorf("%w: short header", ErrBadSubmissionEncoding)
	}
	s.Version = binary.BigEndian.Uint16(p)
	s.Round = int(binary.BigEndian.Uint64(p[2:]))
	nameLen := int(binary.BigEndian.Uint16(p[10:]))
	p = p[12:]
	if len(p) < nameLen+8 {
		return nil, fmt.Errorf("%w: truncated name", ErrBadSubmissionEncoding)
	}
	s.BWAuth = string(p[:nameLen])
	bodyLen := binary.BigEndian.Uint64(p[nameLen:])
	p = p[nameLen+8:]
	if bodyLen > uint64(len(p)) || uint64(len(p)) != bodyLen+ed25519.SignatureSize {
		return nil, fmt.Errorf("%w: body/signature length mismatch", ErrBadSubmissionEncoding)
	}
	s.Body = append([]byte(nil), p[:bodyLen]...)
	s.Sig = append([]byte(nil), p[bodyLen:]...)
	return &s, nil
}
