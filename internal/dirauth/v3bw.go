package dirauth

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements a v3bw-style serialization of bandwidth files — the
// on-disk format a continuously running FlashFlow deployment publishes for
// directory-authority consumption (§4, Table 2). The layout follows Tor's
// bandwidth-file spec in spirit: a timestamp line, "key=value" header
// lines, a terminator, then one relay per line. Relays are identified by
// nickname (unique in this reproduction) rather than fingerprint.
//
// Serialization streams: WriteTo renders one line at a time through an
// internal buffer, so snapshotting a million-relay population costs one
// sorted name slice and a few kilobytes of scratch rather than the whole
// file in memory; ParseV3BW reads line-at-a-time off a bufio.Scanner and
// splits fields in place. The caller owns the destination writer and the
// lifetime of the parsed file; neither function retains the other's
// buffers.

// v3bw format constants.
const (
	v3bwVersion    = "1.0.0"
	v3bwSoftware   = "flashflow"
	v3bwTerminator = "====="
)

// WriteTo streams the bandwidth file in the v3bw-style text format.
// Entries are sorted by relay name so the output is deterministic. It
// implements io.WriterTo; writes are buffered internally, so handing it
// a bare *os.File is fine.
func (f *BandwidthFile) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 64<<10)
	fmt.Fprintf(bw, "%d\n", int64(f.At/time.Second))
	fmt.Fprintf(bw, "version=%s\n", v3bwVersion)
	fmt.Fprintf(bw, "software=%s\n", v3bwSoftware)
	fmt.Fprintf(bw, "producer=%s\n", f.Producer)
	bw.WriteString(v3bwTerminator + "\n")

	names := make([]string, 0, len(f.Entries))
	for n := range f.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	// Relay lines are rendered with strconv.Append into one reused
	// scratch buffer: at bandwidth-file scale fmt's reflection-driven
	// formatting is the dominant cost of a snapshot.
	line := make([]byte, 0, 128)
	for _, n := range names {
		e := f.Entries[n]
		// bw is in kilobits/s like Tor's consensus weights; capacity
		// keeps full bits/s resolution (FlashFlow's distinguishing
		// output, Table 2).
		line = append(line[:0], "node_id="...)
		line = append(line, n...)
		line = append(line, " bw="...)
		line = strconv.AppendInt(line, int64(e.WeightBps/1000), 10)
		line = append(line, " capacity="...)
		line = strconv.AppendFloat(line, e.CapacityBps, 'f', 0, 64)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return cw.n, err
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// countingWriter tracks bytes actually handed to the destination so
// WriteTo can satisfy the io.WriterTo contract under buffering.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Render materializes the bandwidth file once into an owned byte slice
// and derives a strong ETag — the quoted hex SHA-256 of the body. The
// HTTP observability plane renders each round's snapshot exactly once
// through this and then serves the cached bytes to every directory fetch;
// because WriteTo's output is deterministic (sorted relay names), two
// renders of equal state produce byte-identical bodies and therefore
// equal ETags, so client revalidation survives a coordinator restart.
func (f *BandwidthFile) Render() (body []byte, etag string, err error) {
	var buf bytes.Buffer
	buf.Grow(64 + 48*len(f.Entries))
	if _, err := f.WriteTo(&buf); err != nil {
		return nil, "", err
	}
	body = buf.Bytes()
	sum := sha256.Sum256(body)
	return body, `"` + hex.EncodeToString(sum[:]) + `"`, nil
}

// FormatV3BW renders a bandwidth file in the v3bw-style text format as
// one string. Prefer WriteTo for large files: FormatV3BW necessarily
// materializes the whole document.
func FormatV3BW(f *BandwidthFile) string {
	var b strings.Builder
	_, _ = f.WriteTo(&b) // strings.Builder never returns a write error
	return b.String()
}

// ParseV3BW parses the WriteTo/FormatV3BW text format back into a
// bandwidth file, one line at a time.
func ParseV3BW(r io.Reader) (*BandwidthFile, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("dirauth: v3bw: empty input")
	}
	secs, err := strconv.ParseInt(strings.TrimSpace(sc.Text()), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("dirauth: v3bw timestamp: %w", err)
	}
	f := NewBandwidthFile("", time.Duration(secs)*time.Second)

	// Header lines until the terminator.
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("dirauth: v3bw: missing terminator")
		}
		line := strings.TrimSpace(sc.Text())
		if line == v3bwTerminator {
			break
		}
		if k, v, ok := strings.Cut(line, "="); ok && k == "producer" {
			f.Producer = v
		}
	}

	// Relay lines: fields are split in place on the scanner's byte
	// slice; only the relay name is converted to a retained string.
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var name string
		var weightBps, capacityBps float64
		rest := line
		for len(rest) > 0 {
			var field []byte
			// Fields separate on spaces or tabs, as the old
			// strings.Fields-based parser accepted.
			if sp := bytes.IndexAny(rest, " \t"); sp >= 0 {
				field, rest = rest[:sp], rest[sp+1:]
			} else {
				field, rest = rest, nil
			}
			if len(field) == 0 {
				continue
			}
			eq := bytes.IndexByte(field, '=')
			if eq < 0 {
				return nil, fmt.Errorf("dirauth: v3bw: bad field %q", field)
			}
			key, val := field[:eq], field[eq+1:]
			switch string(key) { // compiler avoids the alloc for switch comparisons
			case "node_id":
				name = string(val)
			case "bw":
				kb, err := strconv.ParseInt(string(val), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dirauth: v3bw bw: %w", err)
				}
				weightBps = float64(kb) * 1000
			case "capacity":
				c, err := strconv.ParseFloat(string(val), 64)
				if err != nil {
					return nil, fmt.Errorf("dirauth: v3bw capacity: %w", err)
				}
				capacityBps = c
			}
		}
		if name == "" {
			return nil, fmt.Errorf("dirauth: v3bw: relay line without node_id: %q", line)
		}
		f.Set(name, weightBps, capacityBps)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dirauth: v3bw read: %w", err)
	}
	return f, nil
}

// MergeMedianFile aggregates several BWAuths' bandwidth files into one
// publishable file: per-relay median capacity across the files that
// measured the relay, used as both weight and capacity (FlashFlow reports
// capacities directly, Table 2). It is the snapshot-producing counterpart
// of AggregateMedian, which feeds consensus weights instead.
func MergeMedianFile(producer string, at time.Duration, files []*BandwidthFile) *BandwidthFile {
	merged := NewBandwidthFile(producer, at)
	for name, capBps := range MedianCapacities(files) {
		merged.Set(name, capBps, capBps)
	}
	return merged
}
