package dirauth

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements a v3bw-style serialization of bandwidth files — the
// on-disk format a continuously running FlashFlow deployment publishes for
// directory-authority consumption (§4, Table 2). The layout follows Tor's
// bandwidth-file spec in spirit: a timestamp line, "key=value" header
// lines, a terminator, then one relay per line. Relays are identified by
// nickname (unique in this reproduction) rather than fingerprint.

// v3bw format constants.
const (
	v3bwVersion    = "1.0.0"
	v3bwSoftware   = "flashflow"
	v3bwTerminator = "====="
)

// FormatV3BW renders a bandwidth file in the v3bw-style text format.
// Entries are sorted by relay name so the output is deterministic.
func FormatV3BW(f *BandwidthFile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d\n", int64(f.At/time.Second))
	fmt.Fprintf(&b, "version=%s\n", v3bwVersion)
	fmt.Fprintf(&b, "software=%s\n", v3bwSoftware)
	fmt.Fprintf(&b, "producer=%s\n", f.Producer)
	b.WriteString(v3bwTerminator + "\n")

	names := make([]string, 0, len(f.Entries))
	for n := range f.Entries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := f.Entries[n]
		// bw is in kilobits/s like Tor's consensus weights; capacity
		// keeps full bits/s resolution (FlashFlow's distinguishing
		// output, Table 2).
		fmt.Fprintf(&b, "node_id=%s bw=%d capacity=%.0f\n", n, int64(e.WeightBps/1000), e.CapacityBps)
	}
	return b.String()
}

// ParseV3BW parses the FormatV3BW text format back into a bandwidth file.
func ParseV3BW(r io.Reader) (*BandwidthFile, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("dirauth: v3bw: empty input")
	}
	secs, err := strconv.ParseInt(strings.TrimSpace(sc.Text()), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("dirauth: v3bw timestamp: %w", err)
	}
	f := NewBandwidthFile("", time.Duration(secs)*time.Second)

	// Header lines until the terminator.
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("dirauth: v3bw: missing terminator")
		}
		line := strings.TrimSpace(sc.Text())
		if line == v3bwTerminator {
			break
		}
		if k, v, ok := strings.Cut(line, "="); ok && k == "producer" {
			f.Producer = v
		}
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var name string
		var weightBps, capacityBps float64
		for _, field := range strings.Fields(line) {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("dirauth: v3bw: bad field %q", field)
			}
			switch k {
			case "node_id":
				name = v
			case "bw":
				kb, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dirauth: v3bw bw: %w", err)
				}
				weightBps = float64(kb) * 1000
			case "capacity":
				c, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("dirauth: v3bw capacity: %w", err)
				}
				capacityBps = c
			}
		}
		if name == "" {
			return nil, fmt.Errorf("dirauth: v3bw: relay line without node_id: %q", line)
		}
		f.Set(name, weightBps, capacityBps)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dirauth: v3bw read: %w", err)
	}
	return f, nil
}

// MergeMedianFile aggregates several BWAuths' bandwidth files into one
// publishable file: per-relay median capacity across the files that
// measured the relay, used as both weight and capacity (FlashFlow reports
// capacities directly, Table 2). It is the snapshot-producing counterpart
// of AggregateMedian, which feeds consensus weights instead.
func MergeMedianFile(producer string, at time.Duration, files []*BandwidthFile) *BandwidthFile {
	merged := NewBandwidthFile(producer, at)
	for name, capBps := range MedianCapacities(files) {
		merged.Set(name, capBps, capBps)
	}
	return merged
}
