package dirauth

import (
	"strings"
	"testing"
	"time"
)

func TestV3BWRoundTrip(t *testing.T) {
	f := NewBandwidthFile("bw0", 90*time.Second)
	f.Set("relayB", 20e6, 21e6)
	f.Set("relayA", 5e6, 5.5e6)

	text := FormatV3BW(f)
	got, err := ParseV3BW(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Producer != "bw0" {
		t.Fatalf("producer: %q", got.Producer)
	}
	if got.At != 90*time.Second {
		t.Fatalf("at: %v", got.At)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries: %v", got.Entries)
	}
	a := got.Entries["relayA"]
	if a.CapacityBps != 5.5e6 {
		t.Fatalf("relayA capacity: %v", a.CapacityBps)
	}
	// Weight survives at kb/s resolution.
	if a.WeightBps != 5e6 {
		t.Fatalf("relayA weight: %v", a.WeightBps)
	}
}

func TestV3BWDeterministicOrder(t *testing.T) {
	f := NewBandwidthFile("bw0", 0)
	f.Set("zeta", 1e6, 1e6)
	f.Set("alpha", 2e6, 2e6)
	text := FormatV3BW(f)
	if strings.Index(text, "node_id=alpha") > strings.Index(text, "node_id=zeta") {
		t.Fatalf("entries not sorted:\n%s", text)
	}
	// Repeated formatting is byte-identical.
	if text != FormatV3BW(f) {
		t.Fatal("formatting is not deterministic")
	}
}

func TestV3BWParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"notatimestamp\n=====\n",
		"10\nversion=1.0.0\n", // no terminator
		"10\n=====\nbw=5\n",   // relay line without node_id
	} {
		if _, err := ParseV3BW(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestMergeMedianFile(t *testing.T) {
	mk := func(name string, caps map[string]float64) *BandwidthFile {
		f := NewBandwidthFile(name, 0)
		for n, c := range caps {
			f.Set(n, c, c)
		}
		return f
	}
	merged := MergeMedianFile("coord", time.Hour, []*BandwidthFile{
		mk("a", map[string]float64{"r1": 10e6, "r2": 40e6}),
		mk("b", map[string]float64{"r1": 20e6, "r2": 50e6}),
		mk("c", map[string]float64{"r1": 30e6}),
	})
	if got := merged.Entries["r1"].CapacityBps; got != 20e6 {
		t.Fatalf("r1 median: %v", got)
	}
	if got := merged.Entries["r2"].CapacityBps; got != 45e6 {
		t.Fatalf("r2 median: %v", got)
	}
	if merged.Producer != "coord" || merged.At != time.Hour {
		t.Fatalf("metadata: %q %v", merged.Producer, merged.At)
	}
}
