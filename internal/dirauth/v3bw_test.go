package dirauth

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestV3BWRoundTrip(t *testing.T) {
	f := NewBandwidthFile("bw0", 90*time.Second)
	f.Set("relayB", 20e6, 21e6)
	f.Set("relayA", 5e6, 5.5e6)

	text := FormatV3BW(f)
	got, err := ParseV3BW(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Producer != "bw0" {
		t.Fatalf("producer: %q", got.Producer)
	}
	if got.At != 90*time.Second {
		t.Fatalf("at: %v", got.At)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries: %v", got.Entries)
	}
	a := got.Entries["relayA"]
	if a.CapacityBps != 5.5e6 {
		t.Fatalf("relayA capacity: %v", a.CapacityBps)
	}
	// Weight survives at kb/s resolution.
	if a.WeightBps != 5e6 {
		t.Fatalf("relayA weight: %v", a.WeightBps)
	}
}

func TestV3BWDeterministicOrder(t *testing.T) {
	f := NewBandwidthFile("bw0", 0)
	f.Set("zeta", 1e6, 1e6)
	f.Set("alpha", 2e6, 2e6)
	text := FormatV3BW(f)
	if strings.Index(text, "node_id=alpha") > strings.Index(text, "node_id=zeta") {
		t.Fatalf("entries not sorted:\n%s", text)
	}
	// Repeated formatting is byte-identical.
	if text != FormatV3BW(f) {
		t.Fatal("formatting is not deterministic")
	}
}

func TestV3BWParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"notatimestamp\n=====\n",
		"10\nversion=1.0.0\n", // no terminator
		"10\n=====\nbw=5\n",   // relay line without node_id
	} {
		if _, err := ParseV3BW(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestV3BWWriteToStreams(t *testing.T) {
	f := NewBandwidthFile("bw0", 45*time.Second)
	for i := 0; i < 5000; i++ {
		f.Set(fmt.Sprintf("relay-%05d", i), float64(i)*1e6, float64(i)*1.1e6)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// The streaming writer and the string formatter are the same bytes.
	if got := FormatV3BW(f); got != buf.String() {
		t.Fatal("WriteTo and FormatV3BW disagree")
	}
	parsed, err := ParseV3BW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Entries) != 5000 {
		t.Fatalf("entries after roundtrip: %d", len(parsed.Entries))
	}
	if got := parsed.Entries["relay-04999"].CapacityBps; got != 4999*1.1e6 {
		t.Fatalf("capacity after roundtrip: %v", got)
	}
	if parsed.Entries["relay-00042"].WeightBps != 42e6 {
		t.Fatalf("weight after roundtrip: %v", parsed.Entries["relay-00042"].WeightBps)
	}
}

func TestV3BWParseAcceptsTabSeparatedFields(t *testing.T) {
	in := "10\nproducer=x\n=====\nnode_id=r1\tbw=500\tcapacity=5e8\n"
	f, err := ParseV3BW(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := f.Entries["r1"]
	if !ok {
		t.Fatalf("tab-separated relay line lost: %v", f.Entries)
	}
	if e.WeightBps != 500e3 || e.CapacityBps != 5e8 {
		t.Fatalf("tab-separated fields misparsed: %+v", e)
	}
}

func TestV3BWWriteToPropagatesError(t *testing.T) {
	f := NewBandwidthFile("bw0", time.Second)
	for i := 0; i < 100000; i++ {
		f.Set(fmt.Sprintf("relay-%06d", i), 1e6, 1e6)
	}
	w := &failAfter{limit: 100}
	if _, err := f.WriteTo(w); err == nil {
		t.Fatal("write error should surface")
	}
}

type failAfter struct {
	n, limit int
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestMergeMedianFile(t *testing.T) {
	mk := func(name string, caps map[string]float64) *BandwidthFile {
		f := NewBandwidthFile(name, 0)
		for n, c := range caps {
			f.Set(n, c, c)
		}
		return f
	}
	merged := MergeMedianFile("coord", time.Hour, []*BandwidthFile{
		mk("a", map[string]float64{"r1": 10e6, "r2": 40e6}),
		mk("b", map[string]float64{"r1": 20e6, "r2": 50e6}),
		mk("c", map[string]float64{"r1": 30e6}),
	})
	if got := merged.Entries["r1"].CapacityBps; got != 20e6 {
		t.Fatalf("r1 median: %v", got)
	}
	if got := merged.Entries["r2"].CapacityBps; got != 45e6 {
		t.Fatalf("r2 median: %v", got)
	}
	if merged.Producer != "coord" || merged.At != time.Hour {
		t.Fatalf("metadata: %q %v", merged.Producer, merged.At)
	}
}

// TestRenderETag pins the /v3bw serving contract: Render produces the
// same bytes as WriteTo, a strong quoted ETag that is stable for equal
// file state (even across separately built files, so restarts keep
// client caches valid), and a different ETag once the state changes.
func TestRenderETag(t *testing.T) {
	build := func() *BandwidthFile {
		f := NewBandwidthFile("bw0", 90*time.Second)
		f.Set("relayB", 20e6, 21e6)
		f.Set("relayA", 5e6, 5.5e6)
		return f
	}

	f := build()
	body, etag, err := f.Render()
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := f.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct.Bytes()) {
		t.Fatalf("Render body differs from WriteTo:\n%q\nvs\n%q", body, direct.Bytes())
	}
	if len(etag) < 4 || etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Fatalf("ETag not a quoted strong tag: %q", etag)
	}

	_, etag2, err := build().Render()
	if err != nil {
		t.Fatal(err)
	}
	if etag2 != etag {
		t.Fatalf("equal state produced different ETags: %q vs %q", etag, etag2)
	}

	changed := build()
	changed.Set("relayC", 1e6, 1e6)
	_, etag3, err := changed.Render()
	if err != nil {
		t.Fatal(err)
	}
	if etag3 == etag {
		t.Fatalf("changed state kept ETag %q", etag)
	}
}
