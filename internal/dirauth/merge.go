package dirauth

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flashflow/internal/metrics"
)

// MergeService is the directory authority's submission-handling side of
// the distributed control plane: it accepts signed v3bw views from
// registered BWAuths, enforces signature / version / freshness / round
// monotonicity, and maintains the median-of-views merged bandwidth file
// (the §4.3 deployment model, where each BWAuth measures independently
// and the directory authority folds their views together).
//
// The median merge is what bounds a Byzantine BWAuth's influence: with
// 2f+1 registered views, f dishonest BWAuths can shift a relay's merged
// capacity only within the range spanned by the honest views — they can
// never push it beyond what some honest BWAuth reported. A dishonest
// BWAuth also cannot speak for another (submissions are signed
// end-to-end), cannot replay an old view (per-BWAuth rounds are strictly
// increasing), and cannot linger forever (views age out of the freshness
// window and are excluded from subsequent merges).
//
// Persistence is the caller's concern, wired through hooks: OnAccept
// fires for every accepted submission (coordd -dirauth appends it to the
// durable store) and Restore re-seeds accepted views after a restart, so
// the freshness windows and the merged file survive a crash without
// waiting a full round for every BWAuth to resubmit.

// Typed rejection reasons. Submit wraps them with context; callers and
// tests match with errors.Is.
var (
	// ErrUnknownBWAuth marks a submission naming an unregistered BWAuth.
	ErrUnknownBWAuth = errors.New("dirauth: submission from unregistered bwauth")
	// ErrBadSignature marks a submission whose signature does not verify
	// under the named BWAuth's registered key.
	ErrBadSignature = errors.New("dirauth: submission signature invalid")
	// ErrSubmissionVersion marks a submission format version outside this
	// build's accepted range — fail closed, never guess at the body.
	ErrSubmissionVersion = errors.New("dirauth: unsupported submission version")
	// ErrStaleSubmission marks a round not newer than the BWAuth's last
	// accepted one: duplicates and replays land here.
	ErrStaleSubmission = errors.New("dirauth: submission round not newer than last accepted")
	// ErrBadBody marks a submission whose body is not a parseable v3bw
	// document.
	ErrBadBody = errors.New("dirauth: submission body does not parse as v3bw")
	// ErrNoFreshViews marks a merge attempt with too few fresh views.
	ErrNoFreshViews = errors.New("dirauth: not enough fresh views to merge")
)

// MergeConfig configures a MergeService.
type MergeConfig struct {
	// Keys maps each registered BWAuth name to its submission-verifying
	// public key. Required, non-empty: the registered set is the merge
	// node's root of trust.
	Keys map[string]ed25519.PublicKey
	// FreshFor is the per-BWAuth freshness window: a view received more
	// than FreshFor ago is excluded from merges (its BWAuth is presumed
	// down or partitioned). Zero means views never expire.
	FreshFor time.Duration
	// MinViews is the minimum number of fresh views a merge needs
	// (default 1). Deployments wanting Byzantine tolerance set it to a
	// majority of the registered set.
	MinViews int
	// Producer names the merged file's producer header (default
	// "dirauth").
	Producer string
	// SplitViewFactor is the cross-view divergence ratio (max/min of a
	// relay's capacity across fresh views) above which the relay is
	// flagged as a §5 split-view suspect at the merge boundary. Zero
	// selects the default 1.5; negative disables the check.
	SplitViewFactor float64
	// Now supplies the clock (default time.Now). Tests inject a fake to
	// drive the freshness window deterministically.
	Now func() time.Time
	// Counters receives the dirauth_submission_* / dirauth_merge_* /
	// dirauth_split_view_* counter families; nil creates a private
	// registry.
	Counters *metrics.Counters
	// OnAccept fires after a submission is accepted, before the re-merge.
	// The dirauth coordd mode persists the view from here.
	OnAccept func(v View)
	// OnMerge fires after each successful re-merge with the new merged
	// state. The dirauth coordd mode publishes the snapshot from here.
	OnMerge func(m Merged)
}

// View is one BWAuth's accepted, parsed submission.
type View struct {
	BWAuth   string
	Round    int
	Version  uint16
	Body     []byte
	Received time.Time
	File     *BandwidthFile
}

// Merged is the outcome of one merge: the median-of-views bandwidth file
// and its provenance.
type Merged struct {
	// Round is the highest round among contributing views.
	Round int
	// Views lists the contributing BWAuths, sorted.
	Views []string
	// SplitView lists relays whose capacity diverged across views beyond
	// SplitViewFactor, sorted.
	SplitView []string
	// File is the merged bandwidth file; Body/ETag are its rendered form.
	File *BandwidthFile
	Body []byte
	ETag string
}

// MergeService implements the submission/merge state machine. Safe for
// concurrent use.
type MergeService struct {
	cfg MergeConfig

	mu     sync.Mutex
	views  map[string]*View
	merged *Merged
}

// NewMergeService validates cfg and builds the service.
func NewMergeService(cfg MergeConfig) (*MergeService, error) {
	if len(cfg.Keys) == 0 {
		return nil, errors.New("dirauth: merge service needs registered bwauth keys")
	}
	if cfg.MinViews <= 0 {
		cfg.MinViews = 1
	}
	if cfg.MinViews > len(cfg.Keys) {
		return nil, fmt.Errorf("dirauth: MinViews %d exceeds registered bwauths %d", cfg.MinViews, len(cfg.Keys))
	}
	if cfg.Producer == "" {
		cfg.Producer = "dirauth"
	}
	if cfg.SplitViewFactor == 0 {
		cfg.SplitViewFactor = 1.5
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	// Pre-register at zero: a scrape of a merge node that has rejected
	// nothing still exposes the full stable counter family.
	for _, name := range []string{
		"dirauth_submissions_received",
		"dirauth_submissions_accepted",
		"dirauth_submissions_rejected_unknown",
		"dirauth_submissions_rejected_signature",
		"dirauth_submissions_rejected_version",
		"dirauth_submissions_rejected_stale",
		"dirauth_submissions_rejected_body",
		"dirauth_merges",
		"dirauth_merge_stale_views_excluded",
		"dirauth_split_view_relays",
	} {
		cfg.Counters.Add(name, 0)
	}
	return &MergeService{cfg: cfg, views: make(map[string]*View, len(cfg.Keys))}, nil
}

// Submit validates one submission and, on acceptance, re-merges. The
// returned Merged is the post-acceptance merged state (nil when fewer
// than MinViews fresh views exist yet). Rejections return a typed error
// and change nothing.
func (m *MergeService) Submit(sub *Submission) (*Merged, error) {
	m.cfg.Counters.Add("dirauth_submissions_received", 1)
	pub, ok := m.cfg.Keys[sub.BWAuth]
	if !ok {
		m.cfg.Counters.Add("dirauth_submissions_rejected_unknown", 1)
		return nil, fmt.Errorf("%w: %q", ErrUnknownBWAuth, sub.BWAuth)
	}
	if sub.Version < SubmissionVersionMin || sub.Version > SubmissionVersionMax {
		m.cfg.Counters.Add("dirauth_submissions_rejected_version", 1)
		return nil, fmt.Errorf("%w: version %d, this node accepts [%d,%d]",
			ErrSubmissionVersion, sub.Version, SubmissionVersionMin, SubmissionVersionMax)
	}
	if !sub.VerifySig(pub) {
		m.cfg.Counters.Add("dirauth_submissions_rejected_signature", 1)
		return nil, fmt.Errorf("%w: bwauth %q round %d", ErrBadSignature, sub.BWAuth, sub.Round)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.views[sub.BWAuth]; ok && sub.Round <= prev.Round {
		m.cfg.Counters.Add("dirauth_submissions_rejected_stale", 1)
		return nil, fmt.Errorf("%w: bwauth %q round %d, last accepted %d",
			ErrStaleSubmission, sub.BWAuth, sub.Round, prev.Round)
	}
	file, err := ParseV3BW(bytes.NewReader(sub.Body))
	if err != nil {
		m.cfg.Counters.Add("dirauth_submissions_rejected_body", 1)
		return nil, fmt.Errorf("%w: %v", ErrBadBody, err)
	}

	v := View{
		BWAuth:   sub.BWAuth,
		Round:    sub.Round,
		Version:  sub.Version,
		Body:     append([]byte(nil), sub.Body...),
		Received: m.cfg.Now(),
		File:     file,
	}
	m.views[sub.BWAuth] = &v
	m.cfg.Counters.Add("dirauth_submissions_accepted", 1)
	if m.cfg.OnAccept != nil {
		m.cfg.OnAccept(v)
	}
	merged, err := m.remergeLocked()
	if errors.Is(err, ErrNoFreshViews) {
		return nil, nil // accepted; merge pending more views
	}
	return merged, err
}

// Restore re-seeds one previously accepted view (after a restart, from
// the durable store). The signature is not re-checked — it was verified
// at acceptance — but the body must still parse. Hooks do not fire; call
// Remerge once after restoring everything.
func (m *MergeService) Restore(bwauth string, round int, version uint16, body []byte, received time.Time) error {
	if _, ok := m.cfg.Keys[bwauth]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownBWAuth, bwauth)
	}
	file, err := ParseV3BW(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadBody, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.views[bwauth]; ok && round <= prev.Round {
		return fmt.Errorf("%w: bwauth %q round %d, last accepted %d", ErrStaleSubmission, bwauth, round, prev.Round)
	}
	m.views[bwauth] = &View{
		BWAuth: bwauth, Round: round, Version: version,
		Body: append([]byte(nil), body...), Received: received, File: file,
	}
	return nil
}

// Remerge recomputes the merged file from the current fresh views. It
// returns ErrNoFreshViews when fewer than MinViews views are fresh.
func (m *MergeService) Remerge() (*Merged, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remergeLocked()
}

// remergeLocked merges the fresh views; called with m.mu held.
func (m *MergeService) remergeLocked() (*Merged, error) {
	now := m.cfg.Now()
	fresh := make([]*View, 0, len(m.views))
	for _, v := range m.views {
		if m.cfg.FreshFor > 0 && now.Sub(v.Received) > m.cfg.FreshFor {
			m.cfg.Counters.Add("dirauth_merge_stale_views_excluded", 1)
			continue
		}
		fresh = append(fresh, v)
	}
	if len(fresh) < m.cfg.MinViews {
		return nil, fmt.Errorf("%w: %d fresh, need %d", ErrNoFreshViews, len(fresh), m.cfg.MinViews)
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].BWAuth < fresh[j].BWAuth })

	round := 0
	var at time.Duration
	names := make([]string, len(fresh))
	files := make([]*BandwidthFile, len(fresh))
	for i, v := range fresh {
		names[i] = v.BWAuth
		files[i] = v.File
		if v.Round > round {
			round = v.Round
		}
		if v.File.At > at {
			at = v.File.At
		}
	}

	merged := &Merged{
		Round:     round,
		Views:     names,
		SplitView: m.splitViewRelays(files),
		File:      MergeMedianFile(m.cfg.Producer, at, files),
	}
	body, etag, err := merged.File.Render()
	if err != nil {
		return nil, fmt.Errorf("dirauth: render merged file: %w", err)
	}
	merged.Body, merged.ETag = body, etag
	m.merged = merged
	m.cfg.Counters.Add("dirauth_merges", 1)
	m.cfg.Counters.Add("dirauth_split_view_relays", int64(len(merged.SplitView)))
	if m.cfg.OnMerge != nil {
		m.cfg.OnMerge(*merged)
	}
	return merged, nil
}

// splitViewRelays is the §5 split-view check re-homed at the merge
// boundary: in-process, the coordinator compares one relay's estimates
// across its BWAuth columns within a round; here, the merge node
// compares the relay's capacity across the independent BWAuths' views.
// A relay showing one capacity to some BWAuths and a significantly
// different one to others — the selective-lying attack — diverges past
// SplitViewFactor and is flagged.
func (m *MergeService) splitViewRelays(files []*BandwidthFile) []string {
	if m.cfg.SplitViewFactor < 0 || len(files) < 2 {
		return nil
	}
	type bounds struct {
		lo, hi float64
		n      int
	}
	byRelay := make(map[string]bounds)
	for _, f := range files {
		for name, e := range f.Entries {
			c := e.CapacityBps
			if c <= 0 {
				c = e.WeightBps
			}
			b, ok := byRelay[name]
			if !ok {
				b = bounds{lo: c, hi: c}
			} else {
				if c < b.lo {
					b.lo = c
				}
				if c > b.hi {
					b.hi = c
				}
			}
			b.n++
			byRelay[name] = b
		}
	}
	var out []string
	for name, b := range byRelay {
		if b.n >= 2 && b.lo > 0 && b.hi/b.lo > m.cfg.SplitViewFactor {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Merged returns the last successful merge, or nil before the first.
func (m *MergeService) Merged() *Merged {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.merged
}

// Views returns a snapshot of the accepted views (copies of the
// bookkeeping, shared parsed files).
func (m *MergeService) Views() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.views))
	for _, v := range m.views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BWAuth < out[j].BWAuth })
	return out
}

// MergeStatus is the merge node's observable state, served by the obs
// plane's /dirauth endpoint.
type MergeStatus struct {
	// Registered lists the configured BWAuth names, sorted.
	Registered []string `json:"registered"`
	// Views maps each submitting BWAuth to its last accepted view.
	Views map[string]ViewStatus `json:"views"`
	// MergedRound / MergedRelays / MergedViews describe the last merge
	// (zero / nil before the first).
	MergedRound  int      `json:"merged_round"`
	MergedRelays int      `json:"merged_relays"`
	MergedViews  []string `json:"merged_views,omitempty"`
	// SplitViewRelays lists relays flagged divergent at the last merge.
	SplitViewRelays []string `json:"split_view_relays,omitempty"`
}

// ViewStatus is one BWAuth's row in MergeStatus.
type ViewStatus struct {
	Round    int       `json:"round"`
	Received time.Time `json:"received"`
	Fresh    bool      `json:"fresh"`
	Relays   int       `json:"relays"`
}

// Status snapshots the service for the observability plane.
func (m *MergeService) Status() MergeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MergeStatus{
		Registered: make([]string, 0, len(m.cfg.Keys)),
		Views:      make(map[string]ViewStatus, len(m.views)),
	}
	for name := range m.cfg.Keys {
		st.Registered = append(st.Registered, name)
	}
	sort.Strings(st.Registered)
	now := m.cfg.Now()
	for name, v := range m.views {
		st.Views[name] = ViewStatus{
			Round:    v.Round,
			Received: v.Received,
			Fresh:    m.cfg.FreshFor <= 0 || now.Sub(v.Received) <= m.cfg.FreshFor,
			Relays:   len(v.File.Entries),
		}
	}
	if m.merged != nil {
		st.MergedRound = m.merged.Round
		st.MergedRelays = len(m.merged.File.Entries)
		st.MergedViews = append([]string(nil), m.merged.Views...)
		st.SplitViewRelays = append([]string(nil), m.merged.SplitView...)
	}
	return st
}
