package cell

import (
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	var c Cell
	c.CircID = 0xdeadbeef
	c.Cmd = MsmtData
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	buf := make([]byte, Size)
	n, err := c.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != Size {
		t.Fatalf("marshal length: got %d want %d", n, Size)
	}
	var d Cell
	if err := d.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if d.CircID != c.CircID || d.Cmd != c.Cmd || d.Payload != c.Payload {
		t.Fatal("round trip mismatch")
	}
}

func TestMarshalShortBuffer(t *testing.T) {
	var c Cell
	if _, err := c.Marshal(make([]byte, Size-1)); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	if err := c.Unmarshal(make([]byte, 3)); err != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
}

func TestCellSizeConstants(t *testing.T) {
	if Size != 514 {
		t.Fatalf("cell size: got %d want 514 (paper §2)", Size)
	}
	if PayloadSize != 509 {
		t.Fatalf("payload size: got %d want 509", PayloadSize)
	}
}

func TestCommandString(t *testing.T) {
	cases := map[Command]string{
		Padding:     "PADDING",
		Create:      "CREATE",
		Created:     "CREATED",
		Relay:       "RELAY",
		Destroy:     "DESTROY",
		MsmtCreate:  "MSMT_CREATE",
		MsmtCreated: "MSMT_CREATED",
		MsmtData:    "MSMT_DATA",
		MsmtBG:      "MSMT_BG",
		MsmtEnd:     "MSMT_END",
		Command(99): "UNKNOWN(99)",
	}
	for cmd, want := range cases {
		if got := cmd.String(); got != want {
			t.Errorf("%d.String() = %q want %q", cmd, got, want)
		}
	}
}

func TestDeriveKeysDeterministic(t *testing.T) {
	a := DeriveKeys([]byte("secret"))
	b := DeriveKeys([]byte("secret"))
	if a != b {
		t.Fatal("key derivation not deterministic")
	}
	c := DeriveKeys([]byte("other"))
	if a == c {
		t.Fatal("different secrets produced identical keys")
	}
	if a.ForwardKey == a.BackwardKey {
		t.Fatal("forward and backward keys must differ")
	}
}

func TestCircuitCryptoRoundTrip(t *testing.T) {
	secret := []byte("shared-secret")
	measurer, err := NewCircuit(1, secret)
	if err != nil {
		t.Fatal(err)
	}
	target, err := NewCircuit(1, secret)
	if err != nil {
		t.Fatal(err)
	}

	var c Cell
	c.CircID = 1
	c.Cmd = MsmtData
	copy(c.Payload[:], []byte("hello measurement world"))
	orig := c.Payload

	// Measurer encrypts forward; target decrypts forward.
	measurer.Forward.Apply(&c)
	if c.Payload == orig {
		t.Fatal("forward encryption was a no-op")
	}
	target.Forward.Apply(&c)
	if c.Payload != orig {
		t.Fatal("target failed to decrypt forward cell")
	}

	// Target encrypts backward (echo); measurer decrypts backward.
	target.Backward.Apply(&c)
	measurer.Backward.Apply(&c)
	if c.Payload != orig {
		t.Fatal("echo round trip failed")
	}
}

func TestCryptoStateOrderMatters(t *testing.T) {
	secret := []byte("s")
	a, _ := NewCircuit(1, secret)
	b, _ := NewCircuit(1, secret)

	var c1, c2 Cell
	copy(c1.Payload[:], []byte("first"))
	copy(c2.Payload[:], []byte("second"))
	want2 := c2.Payload

	a.Forward.Apply(&c1)
	a.Forward.Apply(&c2)

	// Decrypting out of order must not recover the plaintext.
	b.Forward.Apply(&c2)
	if c2.Payload == want2 {
		t.Fatal("out-of-order decryption should corrupt the payload")
	}
}

func TestCryptoStateCount(t *testing.T) {
	circ, _ := NewCircuit(7, []byte("k"))
	var c Cell
	for i := 0; i < 5; i++ {
		circ.Forward.Apply(&c)
	}
	if circ.Forward.Processed() != 5 {
		t.Fatalf("processed: got %d want 5", circ.Forward.Processed())
	}
	if circ.Backward.Processed() != 0 {
		t.Fatalf("backward processed: got %d want 0", circ.Backward.Processed())
	}
}

func TestDigestDistinguishes(t *testing.T) {
	a := Digest([]byte("payload-a"))
	b := Digest([]byte("payload-b"))
	if a == b {
		t.Fatal("digest collision on trivially different payloads")
	}
	if a != Digest([]byte("payload-a")) {
		t.Fatal("digest not deterministic")
	}
}

// Property: marshal/unmarshal round-trips arbitrary cells.
func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(circID uint32, cmd uint8, payload []byte) bool {
		var c Cell
		c.CircID = circID
		c.Cmd = Command(cmd)
		copy(c.Payload[:], payload)
		buf := make([]byte, Size)
		if _, err := c.Marshal(buf); err != nil {
			return false
		}
		var d Cell
		if err := d.Unmarshal(buf); err != nil {
			return false
		}
		return d == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encrypt-then-decrypt recovers random payloads for matched
// stream positions (the core §4.1 relay operation).
func TestCircuitCryptoQuick(t *testing.T) {
	f := func(secret []byte, payloads [][]byte) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		m, err := NewCircuit(1, secret)
		if err != nil {
			return false
		}
		r, err := NewCircuit(1, secret)
		if err != nil {
			return false
		}
		for _, p := range payloads {
			var c Cell
			copy(c.Payload[:], p)
			orig := c.Payload
			m.Forward.Apply(&c)
			r.Forward.Apply(&c)
			r.Backward.Apply(&c)
			m.Backward.Apply(&c)
			if c.Payload != orig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPayloadEchoDetectsForgery(t *testing.T) {
	// A relay that echoes garbage instead of decrypt-and-return must be
	// detected by the digest check with overwhelming probability.
	secret := []byte("check")
	m, _ := NewCircuit(1, secret)
	r, _ := NewCircuit(1, secret)

	var c Cell
	if _, err := rand.Read(c.Payload[:]); err != nil {
		t.Fatal(err)
	}
	want := Digest(c.Payload[:])

	m.Forward.Apply(&c)
	r.Forward.Apply(&c) // honest decrypt
	honest := Digest(c.Payload[:])
	if honest != want {
		t.Fatal("honest relay failed digest check")
	}

	// Forged echo: relay returns the still-encrypted cell.
	var f Cell
	if _, err := rand.Read(f.Payload[:]); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewCircuit(2, secret)
	wantForged := Digest(f.Payload[:])
	m2.Forward.Apply(&f) // encrypted, relay skips decryption
	if Digest(f.Payload[:]) == wantForged {
		t.Fatal("forged echo should fail digest check")
	}
}

// Zero-allocation guards: the per-cell operations of the measurement data
// plane — header encode/parse, in-place payload crypto, digest — must not
// touch the heap. These are the invariants the batched wire path depends
// on; a regression here shows up as GC pressure at line rate.

func TestApplyBytesZeroAllocs(t *testing.T) {
	circ, err := NewCircuit(1, []byte("alloc-guard"))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, Size)
	if n := testing.AllocsPerRun(200, func() {
		circ.Forward.ApplyBytes(PayloadOf(buf))
	}); n != 0 {
		t.Fatalf("ApplyBytes allocates %v per cell, want 0", n)
	}
}

func TestHeaderAndDigestZeroAllocs(t *testing.T) {
	buf := make([]byte, Size)
	var sink [8]byte
	if n := testing.AllocsPerRun(200, func() {
		PutHeader(buf, 1, MsmtData)
		if CommandOf(buf) != MsmtData || CircIDOf(buf) != 1 {
			t.Fatal("header round trip")
		}
		sink = Digest(PayloadOf(buf))
	}); n != 0 {
		t.Fatalf("header+digest path allocates %v per cell, want 0", n)
	}
	_ = sink
}

func TestMarshalUnmarshalZeroAllocs(t *testing.T) {
	var c, d Cell
	buf := make([]byte, Size)
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.Marshal(buf); err != nil {
			t.Fatal(err)
		}
		if err := d.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("marshal/unmarshal allocates %v per cell, want 0", n)
	}
}

func TestInPlaceAccessorsMatchMarshal(t *testing.T) {
	var c Cell
	c.CircID = 0x01020304
	c.Cmd = MsmtData
	for i := range c.Payload {
		c.Payload[i] = byte(i * 7)
	}
	buf := make([]byte, Size)
	if _, err := c.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if CircIDOf(buf) != c.CircID || CommandOf(buf) != c.Cmd {
		t.Fatal("in-place header accessors disagree with Marshal")
	}
	if [PayloadSize]byte(PayloadOf(buf)) != c.Payload {
		t.Fatal("PayloadOf disagrees with Marshal")
	}

	var raw [Size]byte
	PutHeader(raw[:], c.CircID, c.Cmd)
	copy(PayloadOf(raw[:]), c.Payload[:])
	var d Cell
	if err := d.Unmarshal(raw[:]); err != nil {
		t.Fatal(err)
	}
	if d != c {
		t.Fatal("PutHeader+PayloadOf encoding disagrees with Unmarshal")
	}
}

func TestApplyBytesMatchesApply(t *testing.T) {
	secret := []byte("equivalence")
	a, _ := NewCircuit(1, secret)
	b, _ := NewCircuit(1, secret)

	var c Cell
	copy(c.Payload[:], []byte("same stream position"))
	raw := make([]byte, Size)
	copy(PayloadOf(raw), c.Payload[:])

	a.Forward.Apply(&c)
	b.Forward.ApplyBytes(PayloadOf(raw))
	if [PayloadSize]byte(PayloadOf(raw)) != c.Payload {
		t.Fatal("ApplyBytes and Apply diverge at the same stream position")
	}
	if a.Forward.Processed() != b.Forward.Processed() {
		t.Fatal("cell counters diverge")
	}
}

func BenchmarkCellCrypto(b *testing.B) {
	m, _ := NewCircuit(1, []byte("bench"))
	var c Cell
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward.Apply(&c)
	}
}

func BenchmarkMarshal(b *testing.B) {
	var c Cell
	buf := make([]byte, Size)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitCryptoBytes is the raw cell.Circuit crypto throughput on
// the in-place path — the ceiling every wire scenario is bounded by.
func BenchmarkCircuitCryptoBytes(b *testing.B) {
	circ, _ := NewCircuit(1, []byte("bench"))
	buf := make([]byte, Size)
	b.SetBytes(Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		circ.Forward.ApplyBytes(PayloadOf(buf))
	}
}

// BenchmarkBatchEncrypt measures the full sender-side per-batch cost:
// header writes plus in-place encryption of a pooled batch.
func BenchmarkBatchEncrypt(b *testing.B) {
	circ, _ := NewCircuit(1, []byte("bench"))
	buf := GetBatch()
	defer PutBatch(buf)
	b.SetBytes(BatchBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < BatchBytes; off += Size {
			cb := (*buf)[off : off+Size]
			PutHeader(cb, 1, MsmtData)
			circ.Forward.ApplyBytes(PayloadOf(cb))
		}
	}
}
