package cell

import "crypto/subtle"

// SpanCells is the number of cell payloads one ApplySpans cipher call
// covers: the keystream for up to SpanCells payloads is materialized with
// a single XORKeyStream over a contiguous scratch region, then XORed into
// each payload. One cipher call per 32 cells instead of 32 keeps the
// AES-NI inner loop hot and drops the per-call overhead (stream state
// load/store, bounds setup) that dominates 509-byte calls.
const SpanCells = 32

// spanChunkBytes is the scratch region one keystream materialization fills.
const spanChunkBytes = SpanCells * PayloadSize

// SpanScratch is the reusable workspace for ApplySpans. The zero block is
// the XORKeyStream source that turns the cipher call into a raw keystream
// materialization; ks receives the keystream. Both live in one struct so a
// decrypt worker allocates its scratch once and reuses it for every batch.
// A SpanScratch must not be shared between concurrent ApplySpans calls.
type SpanScratch struct {
	zero [spanChunkBytes]byte
	ks   [spanChunkBytes]byte
}

// NewSpanScratch allocates a scratch workspace for ApplySpans.
func NewSpanScratch() *SpanScratch {
	return &SpanScratch{}
}

// ApplySpans encrypts or decrypts the payloads of the cells starting at
// the given byte offsets within buf, in offset order, exactly as the same
// number of sequential ApplyBytes calls would — the stream advances by one
// PayloadSize per cell, so the two endpoints stay in step regardless of
// which side batches. Each offset names the start of an encoded cell
// (header included); only its payload bytes are transformed.
//
// This is the target's fat decrypt path: the demux stage groups a batch's
// cells by circuit into spans, and one ApplySpans call per span replaces
// per-cell cipher calls. The keystream for up to SpanCells payloads is
// produced by a single XORKeyStream (AES-NI over a contiguous region),
// then XORed into the scattered payloads with subtle.XORBytes. Zero
// allocations in steady state.
func (s *CryptoState) ApplySpans(buf []byte, offs []int32, scratch *SpanScratch) {
	for len(offs) > 0 {
		n := min(len(offs), SpanCells)
		span := n * PayloadSize
		s.stream.XORKeyStream(scratch.ks[:span], scratch.zero[:span])
		for i := 0; i < n; i++ {
			off := int(offs[i])
			p := buf[off+5 : off+Size]
			subtle.XORBytes(p, p, scratch.ks[i*PayloadSize:(i+1)*PayloadSize])
		}
		s.count += uint64(n)
		offs = offs[n:]
	}
}
