package cell

import (
	"sync"
	"sync/atomic"
)

// BatchCells is the number of cells carried by one pooled batch buffer.
// The measurement data plane encodes/decodes up to BatchCells cells into
// one contiguous buffer and moves them with a single Write/Read, so this
// constant sets the syscall amortization factor of the hot path. 32 cells
// ≈ 16 KiB per batch: large enough that the per-syscall overhead is noise,
// small enough that pacing per batch stays smooth at low rates.
const BatchCells = 32

// BatchBytes is the byte length of one pooled batch buffer.
const BatchBytes = BatchCells * Size

// batchPool recycles batch buffers across measurement sockets and circuit
// serves. Buffers are handed out as *[]byte so Get/Put themselves do not
// allocate a slice header on the heap.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]byte, BatchBytes)
		return &b
	},
}

// GetBatch returns a BatchBytes-long buffer from the pool. Contents are
// unspecified (buffers are reused without clearing); callers own the
// buffer until they pass it to PutBatch and must not retain any slice
// aliasing it afterwards. See DESIGN.md "Buffer ownership" for the rules.
func GetBatch() *[]byte {
	batchGets.Add(1)
	return batchPool.Get().(*[]byte)
}

// PutBatch returns a buffer obtained from GetBatch to the pool. It
// tolerates callers that resliced the buffer, restoring the full length;
// nil or foreign (too-small) buffers are dropped rather than poisoning
// the pool.
func PutBatch(b *[]byte) {
	if b == nil || cap(*b) < BatchBytes {
		return
	}
	*b = (*b)[:BatchBytes]
	batchPuts.Add(1)
	batchPool.Put(b)
}

// SuperBatches is the number of 32-cell batches carried by one pooled
// super arena. A super arena is the unit of the multiplexed data plane's
// vectored I/O: senders gather up to SuperBatches batch buffers into one
// writev, and readers refill from one SuperBytes-long buffer, so a single
// syscall moves up to SuperBatches×BatchCells cells.
const SuperBatches = 8

// SuperCells is the number of cells carried by one super arena.
const SuperCells = SuperBatches * BatchCells

// SuperBytes is the byte length of one pooled super arena.
const SuperBytes = SuperBatches * BatchBytes

// superPool recycles super arenas across measurement connections.
var superPool = sync.Pool{
	New: func() any {
		b := make([]byte, SuperBytes)
		return &b
	},
}

// GetSuper returns a SuperBytes-long arena from the pool, under the same
// ownership rules as GetBatch (contents unspecified; return with PutSuper;
// no aliasing slice may outlive the return).
func GetSuper() *[]byte {
	superGets.Add(1)
	return superPool.Get().(*[]byte)
}

// PutSuper returns an arena obtained from GetSuper to the pool.
func PutSuper(b *[]byte) {
	if b == nil || cap(*b) < SuperBytes {
		return
	}
	*b = (*b)[:SuperBytes]
	superPuts.Add(1)
	superPool.Put(b)
}

// Pool accounting: cumulative Get/Put counts per pool. An atomic counter
// costs ~1ns next to a sync.Pool round-trip and buys a leak oracle — any
// code path that takes a pooled buffer and errors out without returning it
// shows up as a Get/Put delta. Counters only ever grow; callers diff
// snapshots around the region under test.

var batchGets, batchPuts, superGets, superPuts atomic.Uint64

// PoolStats is a snapshot of the cumulative pool traffic.
type PoolStats struct {
	BatchGets, BatchPuts uint64
	SuperGets, SuperPuts uint64
}

// ReadPoolStats returns the cumulative Get/Put counts for the batch and
// super pools. Leak tests snapshot before and after driving a code path
// (with every goroutine joined) and assert the Get and Put deltas match.
func ReadPoolStats() PoolStats {
	return PoolStats{
		BatchGets: batchGets.Load(),
		BatchPuts: batchPuts.Load(),
		SuperGets: superGets.Load(),
		SuperPuts: superPuts.Load(),
	}
}

// Outstanding returns buffers taken but not yet returned, per pool, for
// the traffic between two snapshots (s - earlier).
func (s PoolStats) Outstanding(earlier PoolStats) (batch, super int64) {
	batch = int64(s.BatchGets-earlier.BatchGets) - int64(s.BatchPuts-earlier.BatchPuts)
	super = int64(s.SuperGets-earlier.SuperGets) - int64(s.SuperPuts-earlier.SuperPuts)
	return batch, super
}
