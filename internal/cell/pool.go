package cell

import "sync"

// BatchCells is the number of cells carried by one pooled batch buffer.
// The measurement data plane encodes/decodes up to BatchCells cells into
// one contiguous buffer and moves them with a single Write/Read, so this
// constant sets the syscall amortization factor of the hot path. 32 cells
// ≈ 16 KiB per batch: large enough that the per-syscall overhead is noise,
// small enough that pacing per batch stays smooth at low rates.
const BatchCells = 32

// BatchBytes is the byte length of one pooled batch buffer.
const BatchBytes = BatchCells * Size

// batchPool recycles batch buffers across measurement sockets and circuit
// serves. Buffers are handed out as *[]byte so Get/Put themselves do not
// allocate a slice header on the heap.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]byte, BatchBytes)
		return &b
	},
}

// GetBatch returns a BatchBytes-long buffer from the pool. Contents are
// unspecified (buffers are reused without clearing); callers own the
// buffer until they pass it to PutBatch and must not retain any slice
// aliasing it afterwards. See DESIGN.md "Buffer ownership" for the rules.
func GetBatch() *[]byte {
	return batchPool.Get().(*[]byte)
}

// PutBatch returns a buffer obtained from GetBatch to the pool. It
// tolerates callers that resliced the buffer, restoring the full length;
// nil or foreign (too-small) buffers are dropped rather than poisoning
// the pool.
func PutBatch(b *[]byte) {
	if b == nil || cap(*b) < BatchBytes {
		return
	}
	*b = (*b)[:BatchBytes]
	batchPool.Put(b)
}
