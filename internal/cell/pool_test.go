package cell

import "testing"

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(*b) != BatchBytes {
		t.Fatalf("batch length: got %d want %d", len(*b), BatchBytes)
	}
	// Reslice (as protocol code does when flushing a partial batch) and
	// return: the pool must restore the full length on the next Get.
	*b = (*b)[:Size]
	PutBatch(b)
	c := GetBatch()
	defer PutBatch(c)
	if len(*c) != BatchBytes {
		t.Fatalf("recycled batch length: got %d want %d", len(*c), BatchBytes)
	}
}

func TestBatchPoolRejectsForeignBuffers(t *testing.T) {
	PutBatch(nil) // must not panic
	small := make([]byte, Size)
	PutBatch(&small) // dropped, not pooled
	b := GetBatch()
	defer PutBatch(b)
	if len(*b) != BatchBytes {
		t.Fatalf("pool returned foreign buffer of length %d", len(*b))
	}
}

func TestBatchConstants(t *testing.T) {
	if BatchBytes != BatchCells*Size {
		t.Fatalf("BatchBytes %d != BatchCells*Size %d", BatchBytes, BatchCells*Size)
	}
	if BatchCells < 1 {
		t.Fatal("BatchCells must be positive")
	}
}
