package cell

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"fmt"
)

// Keystream is a random-access view of an AES-128-CTR keystream: it
// produces the same byte sequence a CryptoState with the same key and IV
// applies sequentially, but at arbitrary byte offsets and without carrying
// stream position between calls.
//
// The measurement data plane uses it for echo verification: measurement
// cells travel with all-zero payloads, so the payload an honest target
// echoes for cell k is exactly the forward keystream segment at offset
// k·PayloadSize. A measurer that spot-checks cell k (probability p, §4.1)
// recomputes just that segment instead of running the full forward cipher
// over every cell it sends — the per-cell sender crypto drops out of the
// hot path while the target's per-cell work (the thing being measured)
// stays untouched.
// A Keystream's methods share per-instance scratch space and must not be
// called concurrently; give each goroutine (the echo reader owns one per
// circuit) its own instance. The scratch lives in the struct because
// stack-local buffers passed through the cipher.Block interface escape to
// the heap, which would cost two allocations per verified cell.
type Keystream struct {
	block   cipher.Block
	iv      [16]byte
	ctr, ks [16]byte
}

// NewKeystream creates a random-access keystream with the given key and
// IV, matching NewCryptoState(key, iv)'s sequential output.
func NewKeystream(key, iv [16]byte) (*Keystream, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("new cipher: %w", err)
	}
	ks := &Keystream{block: block, iv: iv}
	return ks, nil
}

// counterAt writes the CTR counter block for the given block index into
// ctr: the IV plus blockIdx, big-endian over the full 16 bytes (the same
// increment rule crypto/cipher's CTR mode uses).
func (k *Keystream) counterAt(ctr *[16]byte, blockIdx uint64) {
	*ctr = k.iv
	// Add blockIdx into the low 8 bytes, propagating the carry into the
	// high 8 bytes byte by byte.
	carry := blockIdx
	for i := 15; i >= 0 && carry > 0; i-- {
		sum := uint64(ctr[i]) + (carry & 0xff)
		ctr[i] = byte(sum)
		carry = carry>>8 + sum>>8
	}
}

// XORAt XORs the keystream bytes [off, off+len(p)) into p in place.
// Applying it to an all-zero buffer materializes the raw keystream.
func (k *Keystream) XORAt(p []byte, off uint64) {
	blockIdx := off / aes.BlockSize
	skip := int(off % aes.BlockSize)
	for len(p) > 0 {
		k.counterAt(&k.ctr, blockIdx)
		k.block.Encrypt(k.ks[:], k.ctr[:])
		n := copyXOR(p, k.ks[skip:])
		p = p[n:]
		skip = 0
		blockIdx++
	}
}

// copyXOR XORs src into dst up to the shorter length and returns it.
func copyXOR(dst, src []byte) int {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// VerifyAt reports whether p equals the keystream bytes starting at byte
// offset off. This is the measurer's echo spot-check: allocation-free, one
// AES block operation per 16 payload bytes, constant-time comparison per
// block so a mismatch is detected without leaking its position.
func (k *Keystream) VerifyAt(p []byte, off uint64) bool {
	blockIdx := off / aes.BlockSize
	skip := int(off % aes.BlockSize)
	ok := 1
	for len(p) > 0 {
		k.counterAt(&k.ctr, blockIdx)
		k.block.Encrypt(k.ks[:], k.ctr[:])
		n := min(len(p), aes.BlockSize-skip)
		ok &= subtle.ConstantTimeCompare(p[:n], k.ks[skip:skip+n])
		p = p[n:]
		skip = 0
		blockIdx++
	}
	return ok == 1
}
