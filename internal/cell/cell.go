// Package cell implements the Tor-like cell layer used by the FlashFlow
// reproduction: fixed 514-byte cells, command encoding, and the per-hop
// relay crypto (AES-CTR with a running digest) that a target relay must
// perform on measurement traffic. The paper's measurement protocol requires
// the target to do exactly the cryptographic work it would do for normal
// client traffic (§4.1), so this package implements real cipher operations
// rather than simulating them.
package cell

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the fixed length of a Tor cell on the wire. Tor link protocol 4+
// uses 514-byte cells (4-byte circuit ID, 1-byte command, 509-byte payload).
const Size = 514

// PayloadSize is the number of payload bytes carried by each cell.
const PayloadSize = Size - 5

// Command identifies the cell type. The values mirror the subset of Tor
// commands the reproduction needs, plus the measurement commands added by
// the FlashFlow patch.
type Command uint8

// Cell commands. MsmtCreate/MsmtCreated establish a measurement circuit
// (a new type of circuit-creation cell per §4.1); MsmtData carries
// measurement payload; MsmtBG carries the relay's per-second background
// (normal traffic) byte report; MsmtEnd terminates a measurement; MsmtUdp
// binds a datagram data plane to the connection (§7 transport extension):
// the payload carries an opaque token the measurer repeats in its UDP
// hello so the target can associate the datagram source address with this
// connection's circuits.
const (
	Padding     Command = 0
	Create      Command = 1
	Created     Command = 2
	Relay       Command = 3
	Destroy     Command = 4
	MsmtCreate  Command = 10
	MsmtCreated Command = 11
	MsmtData    Command = 12
	MsmtBG      Command = 13
	MsmtEnd     Command = 14
	MsmtUdp     Command = 15
)

// String implements fmt.Stringer for diagnostics.
func (c Command) String() string {
	switch c {
	case Padding:
		return "PADDING"
	case Create:
		return "CREATE"
	case Created:
		return "CREATED"
	case Relay:
		return "RELAY"
	case Destroy:
		return "DESTROY"
	case MsmtCreate:
		return "MSMT_CREATE"
	case MsmtCreated:
		return "MSMT_CREATED"
	case MsmtData:
		return "MSMT_DATA"
	case MsmtBG:
		return "MSMT_BG"
	case MsmtEnd:
		return "MSMT_END"
	case MsmtUdp:
		return "MSMT_UDP"
	default:
		return fmt.Sprintf("UNKNOWN(%d)", uint8(c))
	}
}

// Cell is a fixed-size Tor cell.
type Cell struct {
	CircID  uint32
	Cmd     Command
	Payload [PayloadSize]byte
}

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("cell: buffer smaller than cell size")
	ErrBadCommand  = errors.New("cell: unknown command")
)

// Marshal encodes the cell into buf, which must be at least Size bytes.
// It returns the number of bytes written (always Size).
func (c *Cell) Marshal(buf []byte) (int, error) {
	if len(buf) < Size {
		return 0, ErrShortBuffer
	}
	binary.BigEndian.PutUint32(buf[0:4], c.CircID)
	buf[4] = byte(c.Cmd)
	copy(buf[5:Size], c.Payload[:])
	return Size, nil
}

// Unmarshal decodes a cell from buf, which must hold at least Size bytes.
func (c *Cell) Unmarshal(buf []byte) error {
	if len(buf) < Size {
		return ErrShortBuffer
	}
	c.CircID = binary.BigEndian.Uint32(buf[0:4])
	c.Cmd = Command(buf[4])
	copy(c.Payload[:], buf[5:Size])
	return nil
}

// The in-place accessors below are the allocation-free view of an encoded
// cell: the measurement data plane operates directly on wire buffers
// (header parse, payload crypto, digest checks) without ever materializing
// a Cell struct or copying the 509-byte payload. Callers must pass a slice
// of at least Size bytes; the accessors do not re-validate length beyond
// what slicing enforces.

// PutHeader writes the 5-byte cell header (circuit ID + command) into buf,
// leaving the payload bytes untouched. buf must hold at least Size bytes.
func PutHeader(buf []byte, circID uint32, cmd Command) {
	binary.BigEndian.PutUint32(buf[0:4], circID)
	buf[4] = byte(cmd)
}

// CircIDOf returns the circuit ID of the encoded cell in buf.
func CircIDOf(buf []byte) uint32 { return binary.BigEndian.Uint32(buf[0:4]) }

// CommandOf returns the command of the encoded cell in buf.
func CommandOf(buf []byte) Command { return Command(buf[4]) }

// PayloadOf returns the payload portion of the encoded cell in buf,
// aliasing buf (no copy). Mutations through the returned slice — payload
// fill, in-place crypto — are visible in the wire buffer.
func PayloadOf(buf []byte) []byte { return buf[5:Size] }

// KeyMaterial holds the directional keys for one circuit hop, derived from
// the handshake shared secret. Forward keys encrypt measurer→relay cells;
// backward keys encrypt relay→measurer cells.
type KeyMaterial struct {
	ForwardKey  [16]byte
	BackwardKey [16]byte
	ForwardIV   [16]byte
	BackwardIV  [16]byte
}

// DeriveKeys expands a shared secret into circuit key material using an
// HKDF-style SHA-256 expansion (stand-in for Tor's KDF-RFC5869).
func DeriveKeys(secret []byte) KeyMaterial {
	var km KeyMaterial
	expand := func(label string, out []byte) {
		mac := hmac.New(sha256.New, secret)
		mac.Write([]byte(label))
		sum := mac.Sum(nil)
		copy(out, sum)
	}
	expand("flashflow-fwd-key", km.ForwardKey[:])
	expand("flashflow-bwd-key", km.BackwardKey[:])
	expand("flashflow-fwd-iv", km.ForwardIV[:])
	expand("flashflow-bwd-iv", km.BackwardIV[:])
	return km
}

// CryptoState carries the stream cipher state for one direction of one
// circuit hop. Cells must be processed in order, as in Tor.
type CryptoState struct {
	stream cipher.Stream
	count  uint64
}

// NewCryptoState initializes AES-128-CTR with the given key and IV.
func NewCryptoState(key, iv [16]byte) (*CryptoState, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("new cipher: %w", err)
	}
	return &CryptoState{stream: cipher.NewCTR(block, iv[:])}, nil
}

// Apply encrypts or decrypts the cell payload in place (CTR mode is an
// involution when both sides keep matching stream positions).
func (s *CryptoState) Apply(c *Cell) {
	s.ApplyBytes(c.Payload[:])
}

// ApplyBytes encrypts or decrypts one cell payload in place directly on a
// wire buffer (typically PayloadOf of an encoded cell). This is the
// zero-allocation hot path: the cipher stream was allocated once at
// circuit setup and XORKeyStream never touches the heap. Each call
// advances the stream by exactly len(p) bytes, so cells must still be
// processed in order and payload slices must all be PayloadSize long for
// the two endpoints to stay in step.
func (s *CryptoState) ApplyBytes(p []byte) {
	s.stream.XORKeyStream(p, p)
	s.count++
}

// Processed returns the number of cells this state has transformed.
func (s *CryptoState) Processed() uint64 { return s.count }

// Circuit bundles the two directional crypto states of a measurement
// circuit endpoint.
type Circuit struct {
	ID       uint32
	Forward  *CryptoState
	Backward *CryptoState
}

// NewCircuit derives keys from secret and initializes both directions.
func NewCircuit(id uint32, secret []byte) (*Circuit, error) {
	km := DeriveKeys(secret)
	fwd, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		return nil, err
	}
	bwd, err := NewCryptoState(km.BackwardKey, km.BackwardIV)
	if err != nil {
		return nil, err
	}
	return &Circuit{ID: id, Forward: fwd, Backward: bwd}, nil
}

// Digest returns a short content digest of a payload, used by measurers to
// spot-check echoed cells (§4.1: the measurer records sent cell contents
// with probability p and verifies the returned contents).
func Digest(payload []byte) [8]byte {
	sum := sha256.Sum256(payload)
	var d [8]byte
	copy(d[:], sum[:8])
	return d
}
