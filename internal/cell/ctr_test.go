package cell

import (
	"bytes"
	"math/rand"
	"testing"
)

// keystreamFixture returns matched sequential and random-access views of
// one forward keystream.
func keystreamFixture(t *testing.T) (*CryptoState, *Keystream) {
	t.Helper()
	km := DeriveKeys([]byte("ctr-equivalence"))
	seq, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := NewKeystream(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	return seq, ra
}

// TestKeystreamMatchesSequentialStream pins the core equivalence: XORAt
// over zeros at offset k·PayloadSize reproduces exactly what the
// sequential CryptoState produces for cell k — the contract the echo
// verification path depends on.
func TestKeystreamMatchesSequentialStream(t *testing.T) {
	seq, ra := keystreamFixture(t)
	const cells = 300
	want := make([][]byte, cells)
	for i := range want {
		buf := make([]byte, PayloadSize)
		seq.ApplyBytes(buf)
		want[i] = buf
	}
	// Random access in arbitrary order, including repeats.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		k := rng.Intn(cells)
		got := make([]byte, PayloadSize)
		ra.XORAt(got, uint64(k)*PayloadSize)
		if !bytes.Equal(got, want[k]) {
			t.Fatalf("cell %d: random-access keystream diverges from sequential stream", k)
		}
		if !ra.VerifyAt(want[k], uint64(k)*PayloadSize) {
			t.Fatalf("cell %d: VerifyAt rejects the true keystream", k)
		}
	}
}

// TestKeystreamVerifyRejectsCorruption flips single bytes at random
// positions and checks VerifyAt notices every one.
func TestKeystreamVerifyRejectsCorruption(t *testing.T) {
	_, ra := keystreamFixture(t)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		off := uint64(rng.Intn(1 << 20))
		buf := make([]byte, PayloadSize)
		ra.XORAt(buf, off)
		i := rng.Intn(len(buf))
		buf[i] ^= 1 << uint(rng.Intn(8))
		if ra.VerifyAt(buf, off) {
			t.Fatalf("corrupted byte %d at offset %d not detected", i, off)
		}
	}
}

// TestKeystreamUnalignedOffsets exercises offsets that do not land on AES
// block boundaries (509-byte payloads guarantee most don't).
func TestKeystreamUnalignedOffsets(t *testing.T) {
	seq, ra := keystreamFixture(t)
	stream := make([]byte, 1<<14)
	seq.ApplyBytes(stream[:PayloadSize])
	seq.ApplyBytes(stream[PayloadSize : 2*PayloadSize])
	// Fill the rest sequentially in odd chunk sizes.
	pos := 2 * PayloadSize
	for pos < len(stream) {
		n := min(37, len(stream)-pos)
		seq.ApplyBytes(stream[pos : pos+n])
		pos += n
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		off := rng.Intn(len(stream) - 64)
		n := 1 + rng.Intn(64)
		got := make([]byte, n)
		ra.XORAt(got, uint64(off))
		if !bytes.Equal(got, stream[off:off+n]) {
			t.Fatalf("offset %d len %d: unaligned random access diverges", off, n)
		}
	}
}

// TestKeystreamCounterCarry drives the counter addition across byte
// boundaries with a high-valued IV so the carry propagation is exercised.
func TestKeystreamCounterCarry(t *testing.T) {
	var key, iv [16]byte
	copy(key[:], "carry-test-key00")
	for i := 8; i < 16; i++ {
		iv[i] = 0xff // low half all-ones: first increment carries far
	}
	seq, err := NewCryptoState(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := NewKeystream(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 1024)
	seq.ApplyBytes(want)
	got := make([]byte, 1024)
	ra.XORAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("keystream diverges across counter carry boundary")
	}
	// And a far offset: block index addition with carry into the IV's
	// high half.
	tail := make([]byte, 64)
	ra.XORAt(tail, 1024-64)
	if !bytes.Equal(tail, want[1024-64:]) {
		t.Fatal("offset keystream diverges across counter carry boundary")
	}
}

// TestKeystreamVerifyZeroAlloc pins the spot-check path at zero heap
// allocations per verified cell.
func TestKeystreamVerifyZeroAlloc(t *testing.T) {
	_, ra := keystreamFixture(t)
	buf := make([]byte, PayloadSize)
	ra.XORAt(buf, 42*PayloadSize)
	if n := testing.AllocsPerRun(200, func() {
		if !ra.VerifyAt(buf, 42*PayloadSize) {
			t.Fatal("verification failed")
		}
	}); n != 0 {
		t.Fatalf("VerifyAt allocates %v per cell, want 0", n)
	}
}
