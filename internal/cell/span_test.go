package cell

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestApplySpansMatchesSequential pins the span API's defining property:
// ApplySpans over any offset set transforms exactly the bytes, and
// advances the stream exactly as far, as the same number of in-order
// ApplyBytes calls. The offsets are scattered (interleaved circuits in a
// shared arena) and the count crosses the SpanCells chunk boundary so the
// internal chunking is exercised.
func TestApplySpansMatchesSequential(t *testing.T) {
	const nCells = 3*SpanCells + 7 // several full chunks plus a ragged tail
	arena := make([]byte, nCells*Size)
	if _, err := rand.Read(arena); err != nil {
		t.Fatal(err)
	}
	ref := append([]byte(nil), arena...)

	km := DeriveKeys([]byte("span-equivalence"))
	spanSt, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	seqSt, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}

	// Only every other cell belongs to this circuit: the span's offsets are
	// non-contiguous in the arena, like a real multi-circuit batch.
	var offs []int32
	for i := 0; i < nCells; i++ {
		if i%2 == 0 || i > nCells-10 {
			offs = append(offs, int32(i*Size))
		}
	}
	spanSt.ApplySpans(arena, offs, NewSpanScratch())
	for _, off := range offs {
		seqSt.ApplyBytes(ref[off+5 : int(off)+Size])
	}
	if !bytes.Equal(arena, ref) {
		t.Fatal("ApplySpans output differs from sequential ApplyBytes")
	}
	if spanSt.Processed() != seqSt.Processed() {
		t.Fatalf("stream advance: span %d cells, sequential %d", spanSt.Processed(), seqSt.Processed())
	}
	if spanSt.Processed() != uint64(len(offs)) {
		t.Fatalf("Processed() = %d, want %d", spanSt.Processed(), len(offs))
	}

	// The two states must still agree after the batch: the next sequential
	// cell decrypts identically through either.
	probe := make([]byte, PayloadSize)
	probeRef := make([]byte, PayloadSize)
	spanSt.ApplyBytes(probe)
	seqSt.ApplyBytes(probeRef)
	if !bytes.Equal(probe, probeRef) {
		t.Fatal("stream positions diverged after ApplySpans")
	}
}

// TestApplySpansInvolution checks CTR's involution property survives the
// span path: a peer with the same key decrypting via ApplySpans recovers
// the plaintext a sequential encryptor produced.
func TestApplySpansInvolution(t *testing.T) {
	const nCells = SpanCells + 3
	plain := make([]byte, nCells*Size)
	for i := range plain {
		plain[i] = byte(i * 131)
	}
	arena := append([]byte(nil), plain...)

	km := DeriveKeys([]byte("span-involution"))
	enc, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int32, nCells)
	for i := range offs {
		offs[i] = int32(i * Size)
		enc.ApplyBytes(arena[i*Size+5 : (i+1)*Size])
	}
	dec.ApplySpans(arena, offs, NewSpanScratch())
	if !bytes.Equal(arena, plain) {
		t.Fatal("span decrypt did not invert sequential encrypt")
	}
}

// TestApplySpansZeroAllocs guards the decrypt worker's steady state: one
// ApplySpans call over a full batch must not touch the heap.
func TestApplySpansZeroAllocs(t *testing.T) {
	km := DeriveKeys([]byte("span-allocs"))
	st, err := NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]byte, SuperBytes)
	offs := make([]int32, SuperCells)
	for i := range offs {
		offs[i] = int32(i * Size)
	}
	scratch := NewSpanScratch()
	if n := testing.AllocsPerRun(100, func() {
		st.ApplySpans(arena, offs, scratch)
	}); n != 0 {
		t.Fatalf("ApplySpans: %v allocs per %d-cell span, want 0", n, SuperCells)
	}
}
