// Package eigenspeed implements the EigenSpeed baseline (Snader &
// Borisov [34], as analyzed in the paper's §8 and Table 2): every relay
// passively records per-stream throughput with every other relay, the
// directory authorities assemble the observation matrix, and relay weights
// are the principal eigenvector computed by power iteration initialized
// from a trusted set.
//
// The implementation reproduces the properties Table 2 compares on:
// weights need no dedicated measurement servers, take about a day of
// passive observation, provide no capacity values, and are inflatable by a
// colluding clique that mutually reports high observations (the liar
// attack of [25], demonstrated at up to 21.5× in the literature).
package eigenspeed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"flashflow/internal/stats"
)

// Relay is one participant in the peer-measurement system.
type Relay struct {
	Name        string
	CapacityBps float64
	// Trusted relays initialize the eigenvector computation.
	Trusted bool
	// Malicious relays join the liar clique: they report inflated
	// observations for fellow clique members and tiny ones for others.
	Malicious bool
}

// Config tunes the observation model and the computation.
type Config struct {
	// NoiseSigma is the lognormal spread of pairwise observations.
	NoiseSigma float64
	// LieFactor is the multiplier malicious relays apply to observations
	// of clique members.
	LieFactor float64
	// Iterations bounds the power iteration.
	Iterations int
	// Epsilon is the L1 convergence threshold.
	Epsilon float64
	// RestartAlpha is the trusted-restart probability of the random
	// walk (EigenTrust-style): each step mixes RestartAlpha of the
	// trusted prior back in. It is the parameter that bounds the liar
	// clique's advantage — an absorbing clique retains the walk mass
	// that enters it, and only the restart drains it — so the
	// literature's 7.4–28.1× clique figures correspond to restart
	// values in this range rather than to the lie magnitude.
	RestartAlpha float64
	// Seed drives the RNG.
	Seed int64
}

// DefaultConfig returns the model defaults.
func DefaultConfig(seed int64) Config {
	return Config{NoiseSigma: 0.25, LieFactor: 100, Iterations: 50, Epsilon: 1e-9, RestartAlpha: 0.15, Seed: seed}
}

// Result carries the computed weights.
type Result struct {
	// WeightFrac[i] is relay i's normalized weight.
	WeightFrac []float64
	// Iterations is the number of power-iteration steps performed.
	Iterations int
}

// Errors.
var (
	ErrNoRelays  = errors.New("eigenspeed: no relays")
	ErrNoTrusted = errors.New("eigenspeed: no trusted relays to initialize")
)

// ObservationMatrix builds the pairwise throughput matrix. Honest entries
// are min(cap_i, cap_j)/k-style per-stream throughputs with noise;
// malicious relays report LieFactor-inflated values for clique members.
func ObservationMatrix(relays []Relay, cfg Config) [][]float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(relays)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			honest := math.Min(relays[i].CapacityBps, relays[j].CapacityBps) / 10
			noise := math.Exp(rng.NormFloat64() * cfg.NoiseSigma)
			obs := honest * noise
			// Row i is relay i's report about its peers. A clique member
			// inflates fellow members and starves everyone else.
			if relays[i].Malicious {
				if relays[j].Malicious {
					obs = honest * cfg.LieFactor
				} else {
					obs = honest * 0.01
				}
			}
			m[i][j] = obs
		}
	}
	return m
}

// ComputeWeights runs the trusted-initialized power iteration over the
// row-normalized observation matrix — a random walk where the relay the
// walk sits at distributes its mass according to its own reported
// observations, the EigenSpeed/EigenTrust construction — with a
// trusted-prior restart mixed in each step. Row normalization is what
// makes the liar clique a real attack: a clique member's row puts nearly
// all of its mass on fellow members, so the clique absorbs walk mass and
// only the restart bounds the damage. (An earlier revision normalized
// columns, which made the inflated clique columns self-diluting and the
// model silently immune to the very attack the literature demonstrates
// at up to 21.5× — the adversary matrix exposed that as unfaithful.)
func ComputeWeights(relays []Relay, obs [][]float64, cfg Config) (Result, error) {
	n := len(relays)
	if n == 0 {
		return Result{}, ErrNoRelays
	}
	if len(obs) != n {
		return Result{}, fmt.Errorf("eigenspeed: matrix is %d×?, want %d", len(obs), n)
	}
	// Initialize from the trusted set (EigenSpeed's defense anchor); the
	// same distribution is the restart prior.
	prior := make([]float64, n)
	trusted := 0
	for i, r := range relays {
		if r.Trusted {
			prior[i] = 1
			trusted++
		}
	}
	if trusted == 0 {
		return Result{}, ErrNoTrusted
	}
	prior = stats.Normalize(prior)
	w := append([]float64(nil), prior...)

	// Row-normalize each relay's observation vector.
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row[i] += obs[i][j]
		}
	}
	alpha := cfg.RestartAlpha
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	next := make([]float64, n)
	iters := 0
	for ; iters < cfg.Iterations; iters++ {
		for j := 0; j < n; j++ {
			var sum float64
			for i := 0; i < n; i++ {
				if row[i] > 0 {
					sum += w[i] * obs[i][j] / row[i]
				}
			}
			next[j] = (1-alpha)*sum + alpha*prior[j]
		}
		next = stats.Normalize(next)
		var delta float64
		for i := range w {
			delta += math.Abs(next[i] - w[i])
		}
		copy(w, next)
		if delta < cfg.Epsilon {
			iters++
			break
		}
	}
	return Result{WeightFrac: append([]float64(nil), w...), Iterations: iters}, nil
}

// AttackAdvantage measures the liar-clique attack: nMalicious colluding
// relays of attackerCapBps each join an honest population, and the result
// is the factor by which the clique's total weight exceeds its fair
// capacity share.
func AttackAdvantage(honest []Relay, nMalicious int, attackerCapBps float64, cfg Config) (float64, error) {
	all := append([]Relay(nil), honest...)
	for i := 0; i < nMalicious; i++ {
		all = append(all, Relay{
			Name:        fmt.Sprintf("evil%02d", i),
			CapacityBps: attackerCapBps,
			Malicious:   true,
		})
	}
	obs := ObservationMatrix(all, cfg)
	res, err := ComputeWeights(all, obs, cfg)
	if err != nil {
		return 0, err
	}
	var evilWeight, totalCap, evilCap float64
	for i, r := range all {
		totalCap += r.CapacityBps
		if r.Malicious {
			evilWeight += res.WeightFrac[i]
			evilCap += r.CapacityBps
		}
	}
	if evilCap == 0 {
		return 0, errors.New("eigenspeed: attacker with zero capacity")
	}
	fair := evilCap / totalCap
	return evilWeight / fair, nil
}
