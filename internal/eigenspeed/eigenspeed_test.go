package eigenspeed

import (
	"fmt"
	"math"
	"testing"

	"flashflow/internal/stats"
)

func honestNetwork(n int) []Relay {
	relays := make([]Relay, n)
	for i := range relays {
		relays[i] = Relay{
			Name:        fmt.Sprintf("r%03d", i),
			CapacityBps: 10e6 * float64(1+i%12),
			Trusted:     i%5 == 0, // 20% trusted, the paper's comparison point
		}
	}
	return relays
}

func TestComputeWeightsHonest(t *testing.T) {
	relays := honestNetwork(60)
	cfg := DefaultConfig(1)
	obs := ObservationMatrix(relays, cfg)
	res, err := ComputeWeights(relays, obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WeightFrac) != 60 {
		t.Fatalf("weights: %d", len(res.WeightFrac))
	}
	if math.Abs(stats.Sum(res.WeightFrac)-1) > 1e-6 {
		t.Fatalf("weights not normalized: %v", stats.Sum(res.WeightFrac))
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations performed")
	}
}

func TestWeightsTrackCapacity(t *testing.T) {
	relays := honestNetwork(60)
	cfg := DefaultConfig(2)
	obs := ObservationMatrix(relays, cfg)
	res, err := ComputeWeights(relays, obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean weight of the fastest quartile should exceed the slowest.
	var fast, slow []float64
	for i, r := range relays {
		switch {
		case r.CapacityBps >= 10e6*10:
			fast = append(fast, res.WeightFrac[i])
		case r.CapacityBps <= 10e6*3:
			slow = append(slow, res.WeightFrac[i])
		}
	}
	if stats.Mean(fast) <= stats.Mean(slow) {
		t.Fatal("faster relays should receive larger weights")
	}
}

func TestComputeWeightsRequiresTrusted(t *testing.T) {
	relays := honestNetwork(10)
	for i := range relays {
		relays[i].Trusted = false
	}
	cfg := DefaultConfig(3)
	obs := ObservationMatrix(relays, cfg)
	if _, err := ComputeWeights(relays, obs, cfg); err != ErrNoTrusted {
		t.Fatalf("want ErrNoTrusted, got %v", err)
	}
}

func TestComputeWeightsValidation(t *testing.T) {
	cfg := DefaultConfig(4)
	if _, err := ComputeWeights(nil, nil, cfg); err != ErrNoRelays {
		t.Fatalf("want ErrNoRelays, got %v", err)
	}
	relays := honestNetwork(3)
	if _, err := ComputeWeights(relays, [][]float64{{0}}, cfg); err == nil {
		t.Fatal("mismatched matrix should error")
	}
}

func TestLiarCliqueGainsAdvantage(t *testing.T) {
	// Table 2: EigenSpeed's demonstrated liar advantage is ~21.5× (the
	// literature reports 7.4–28.1× depending on the trusted set). Our
	// model should land in the multiples, far above FlashFlow's 1.33.
	honest := honestNetwork(100)
	adv, err := AttackAdvantage(honest, 5, 10e6, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if adv < 3 {
		t.Fatalf("liar clique advantage too small: %v", adv)
	}
	if adv > 200 {
		t.Fatalf("liar clique advantage implausibly large: %v", adv)
	}
}

func TestLieAdvantageSaturates(t *testing.T) {
	// Row normalization makes the liar advantage saturate: once the
	// clique's rows put essentially all their mass on fellow members,
	// inflating further cannot absorb more of the walk — the advantage
	// is bounded by the trusted-restart drain, not the lie magnitude
	// (the literature's figures are likewise restart/trust-bounded).
	honest := honestNetwork(100)
	small := DefaultConfig(6)
	small.LieFactor = 10
	large := DefaultConfig(6)
	large.LieFactor = 1000
	a1, err := AttackAdvantage(honest, 5, 10e6, small)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AttackAdvantage(honest, 5, 10e6, large)
	if err != nil {
		t.Fatal(err)
	}
	if a1 <= 1 || a2 <= 1 {
		t.Fatalf("both lie magnitudes should pay above fair share: %v, %v", a1, a2)
	}
	if a2 < a1/2 {
		t.Fatalf("saturation should not collapse the advantage: %v vs %v", a1, a2)
	}
}

func TestAttackAdvantageZeroCapacity(t *testing.T) {
	if _, err := AttackAdvantage(honestNetwork(10), 2, 0, DefaultConfig(7)); err == nil {
		t.Fatal("zero-capacity attacker should error")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	honest := honestNetwork(40)
	a1, err := AttackAdvantage(honest, 3, 10e6, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AttackAdvantage(honest, 3, 10e6, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("attack advantage not deterministic")
	}
}
