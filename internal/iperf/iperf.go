// Package iperf reproduces the paper's iPerf-based capacity probing
// (§6.1, Appendix B): pairwise TCP/UDP measurements between vantage points
// and the all-to-one UDP saturation test used to establish each host's
// forwarding capacity and to measure measurers (§4.2 "Measuring
// Measurers").
package iperf

import (
	"errors"
	"time"

	"flashflow/internal/netsim"
	"flashflow/internal/stats"
	"flashflow/internal/tcp"
)

// Protocol selects the transport model for a probe.
type Protocol int

// Supported protocols. UDP is not subject to window limits and carries
// less header overhead; TCP is window/RTT limited (Appendix B's
// observation that UDP throughput exceeds TCP's).
const (
	TCP Protocol = iota + 1
	UDP
)

// udpEfficiency reflects UDP's smaller header overhead relative to the
// link rate; TCP additionally pays window and congestion costs via the
// tcp package model.
const udpEfficiency = 0.99

// Result is the outcome of one probe.
type Result struct {
	// MedianBps is the median per-second throughput over the probe.
	MedianBps float64
	// PerSecondBps holds every per-second sample.
	PerSecondBps []float64
}

// ErrNoHosts is returned when a probe has no senders.
var ErrNoHosts = errors.New("iperf: no sender hosts")

// Pairwise runs a bidirectional probe between two hosts for the given
// duration and returns the per-direction minimum (the paper summarizes
// pairwise runs by the minimum of send and receive). rtt is the path RTT;
// proto selects the transport model.
func Pairwise(a, b *netsim.Host, rtt time.Duration, proto Protocol, duration time.Duration) (Result, error) {
	if a == nil || b == nil {
		return Result{}, ErrNoHosts
	}
	net := netsim.New(time.Second)
	capFlow := flowCap(proto, rtt, minCap(a, b))
	fwd := net.AddFlow("a->b", netsim.PathBetween(a, b), capFlow)
	rev := net.AddFlow("b->a", netsim.PathBetween(b, a), capFlow)

	seconds := int(duration / time.Second)
	per := make([]float64, 0, seconds)
	for s := 0; s < seconds; s++ {
		net.Step()
		fwdBps := fwd.RateBps
		revBps := rev.RateBps
		if revBps < fwdBps {
			fwdBps = revBps
		}
		per = append(per, fwdBps)
	}
	return Result{MedianBps: stats.Median(per), PerSecondBps: per}, nil
}

// AllToOne saturates target with simultaneous UDP probes from every sender
// for the given duration, summing per-second arrivals — the Table 1
// "BW (measured)" methodology and the §4.2 measurer-measurement procedure.
// The result's median is the capacity estimate.
func AllToOne(target *netsim.Host, senders []*netsim.Host, duration time.Duration) (Result, error) {
	if len(senders) == 0 {
		return Result{}, ErrNoHosts
	}
	net := netsim.New(time.Second)
	flows := make([]*netsim.Flow, 0, len(senders))
	for _, s := range senders {
		flows = append(flows, net.AddFlow(s.Name+"->"+target.Name, netsim.PathBetween(s, target), 0))
	}
	seconds := int(duration / time.Second)
	per := make([]float64, 0, seconds)
	for t := 0; t < seconds; t++ {
		net.Step()
		var sum float64
		for _, f := range flows {
			sum += f.RateBps
		}
		sum *= udpEfficiency
		per = append(per, sum)
	}
	return Result{MedianBps: stats.Median(per), PerSecondBps: per}, nil
}

// MeasureMeasurers implements §4.2's measurer self-measurement: every
// measurer exchanges bidirectional UDP traffic with each other measurer
// concurrently for 60 seconds; the capacity estimate is the median of the
// per-second totals at each host. It returns the per-host estimates in
// bits/second, index-aligned with the input.
func MeasureMeasurers(measurers []*netsim.Host) ([]float64, error) {
	if len(measurers) < 2 {
		return nil, errors.New("iperf: need at least two measurers")
	}
	net := netsim.New(time.Second)
	type pairFlows struct {
		to   int
		flow *netsim.Flow
	}
	inbound := make([][]pairFlows, len(measurers))
	for i := range measurers {
		for j := range measurers {
			if i == j {
				continue
			}
			f := net.AddFlow("m", netsim.PathBetween(measurers[i], measurers[j]), 0)
			inbound[j] = append(inbound[j], pairFlows{to: j, flow: f})
		}
	}
	const seconds = 60
	per := make([][]float64, len(measurers))
	for t := 0; t < seconds; t++ {
		net.Step()
		for i := range measurers {
			var sum float64
			for _, pf := range inbound[i] {
				sum += pf.flow.RateBps
			}
			per[i] = append(per[i], sum*udpEfficiency)
		}
	}
	out := make([]float64, len(measurers))
	for i := range measurers {
		out[i] = stats.Median(per[i])
	}
	return out, nil
}

func flowCap(proto Protocol, rtt time.Duration, linkBps float64) float64 {
	if proto == UDP {
		return linkBps * udpEfficiency
	}
	cfg := tcp.DefaultConfig(linkBps, rtt)
	return cfg.SingleSocketBps() * 0.95 // TCP header + congestion overhead
}

func minCap(a, b *netsim.Host) float64 {
	m := a.Up.CapacityBps
	for _, c := range []float64{a.Down.CapacityBps, b.Up.CapacityBps, b.Down.CapacityBps} {
		if c < m {
			m = c
		}
	}
	return m
}
