package iperf

import (
	"math"
	"testing"
	"time"

	"flashflow/internal/hosts"
	"flashflow/internal/netsim"
)

func TestPairwiseUDPFasterThanTCP(t *testing.T) {
	// Appendix B: "In all cases the maximum UDP iPerf throughput is
	// higher than the TCP iPerf throughput."
	a := hosts.USSW.NewHost()
	b := hosts.IN.NewHost()
	udp, err := Pairwise(a, b, hosts.IN.RTTToUSSW, UDP, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a2 := hosts.USSW.NewHost()
	b2 := hosts.IN.NewHost()
	tcpRes, err := Pairwise(a2, b2, hosts.IN.RTTToUSSW, TCP, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if udp.MedianBps <= tcpRes.MedianBps {
		t.Fatalf("UDP (%v) should exceed TCP (%v)", udp.MedianBps, tcpRes.MedianBps)
	}
}

func TestPairwiseBoundedByLink(t *testing.T) {
	a := hosts.USSW.NewHost()
	b := hosts.NL.NewHost()
	res, err := Pairwise(a, b, hosts.NL.RTTToUSSW, UDP, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianBps > hosts.USSW.MeasuredBps {
		t.Fatalf("pairwise exceeds slower host capacity: %v", res.MedianBps)
	}
	if len(res.PerSecondBps) != 10 {
		t.Fatalf("per-second samples: got %d want 10", len(res.PerSecondBps))
	}
}

func TestPairwiseNilHosts(t *testing.T) {
	if _, err := Pairwise(nil, nil, 0, UDP, time.Second); err == nil {
		t.Fatal("nil hosts should error")
	}
}

func TestAllToOneMatchesTable1(t *testing.T) {
	// All-to-one saturation of each US host should measure ≈ its link
	// capacity (Table 1's "BW (measured)" row).
	target := hosts.USSW.NewHost()
	senders := make([]*netsim.Host, 0, 4)
	for _, m := range hosts.Measurers() {
		senders = append(senders, m.NewHost())
	}
	res, err := AllToOne(target, senders, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := hosts.USSW.MeasuredBps
	if math.Abs(res.MedianBps-want)/want > 0.02 {
		t.Fatalf("US-SW all-to-one: got %v want ≈%v", res.MedianBps, want)
	}
}

func TestAllToOneNoSenders(t *testing.T) {
	if _, err := AllToOne(hosts.USSW.NewHost(), nil, time.Second); err == nil {
		t.Fatal("no senders should error")
	}
}

func TestMeasureMeasurers(t *testing.T) {
	// §4.2: each measurer exchanges traffic with all others concurrently.
	// Estimates must be positive, bounded by each host's capacity, and an
	// under-estimate is acceptable (only a lower bound is needed).
	ms := []*netsim.Host{hosts.USNW.NewHost(), hosts.USE.NewHost(), hosts.IN.NewHost(), hosts.NL.NewHost()}
	specs := hosts.Measurers()
	got, err := MeasureMeasurers(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("estimates: got %d want 4", len(got))
	}
	for i, est := range got {
		if est <= 0 {
			t.Errorf("measurer %d estimate nonpositive: %v", i, est)
		}
		if est > specs[i].MeasuredBps*1.01 {
			t.Errorf("measurer %d estimate exceeds capacity: %v > %v", i, est, specs[i].MeasuredBps)
		}
	}
}

func TestMeasureMeasurersNeedsTwo(t *testing.T) {
	if _, err := MeasureMeasurers([]*netsim.Host{hosts.NL.NewHost()}); err == nil {
		t.Fatal("single measurer should error")
	}
}

func TestTCPThroughputDecreasesWithRTT(t *testing.T) {
	short, err := Pairwise(hosts.USSW.NewHost(), hosts.USNW.NewHost(), 40*time.Millisecond, TCP, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Pairwise(hosts.USSW.NewHost(), hosts.USNW.NewHost(), 340*time.Millisecond, TCP, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if long.MedianBps >= short.MedianBps {
		t.Fatalf("TCP at 340 ms (%v) should be slower than at 40 ms (%v)", long.MedianBps, short.MedianBps)
	}
}
