package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"flashflow/internal/cell"
	"flashflow/internal/core"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
)

// Ablations for the design choices DESIGN.md calls out. They are not
// paper artifacts but quantify why the paper's parameter choices are what
// they are.

func ablationRatio(quick bool) (Report, error) {
	// Sweep the normal-traffic ratio r: higher r is friendlier to client
	// traffic during measurement but raises the lying-relay inflation
	// bound 1/(1−r). The paper picks r = 0.25.
	var rep Report
	rep.addf("%-6s %14s %22s %20s", "r", "max inflation", "liar estimate (rel)", "bg allowed (Mbit/s)")
	repeats := 1
	_ = repeats
	for _, r := range []float64{0.1, 0.2, 0.25, 0.4, 0.5} {
		p := core.DefaultParams()
		p.Ratio = r
		const trueCap = 200e6
		b := core.NewSimBackend(paperPaths(), int64(r*1000))
		b.AddTarget("liar", &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: "liar", TorCapBps: trueCap, Ratio: r}),
			LinkBps:  954e6,
			Behavior: core.BehaviorInflateNormal,
		})
		out, err := core.MeasureRelay(context.Background(), b, paperTeam(), "liar", trueCap, p)
		if err != nil {
			return Report{}, err
		}
		// Background allowance for a saturated 250 Mbit/s relay.
		bgAllow := 250.0 * r
		rep.addf("%-6.2f %13.2f× %22.3f %20.1f", r, p.MaxInflation(), out.EstimateBps/trueCap, bgAllow)
		rep.metric(fmt.Sprintf("liar_rel_r%.2f", r), out.EstimateBps/trueCap)
	}
	rep.addf("paper picks r=0.25: 1.33× bound while a loaded relay keeps 25%% of its capacity for clients")
	_ = quick
	return rep, nil
}

func ablationCheck(bool) (Report, error) {
	// Sweep the echo-check probability p: expected verification work per
	// slot vs. how many cells a forger survives. The paper picks 1e−5.
	var rep Report
	params := core.DefaultParams()
	cellRate := 250e6 / 8 / float64(cell.Size) // cells/s at a 250 Mbit/s target
	rep.addf("target 250 Mbit/s → ~%.0f cells/s per direction", cellRate)
	rep.addf("%-10s %18s %24s", "p", "checks per slot", "P(detect forger in slot)")
	for _, p := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		checksPerSlot := p * cellRate * float64(params.SlotSeconds)
		detect := core.DetectionProbability(p, cellRate*float64(params.SlotSeconds))
		rep.addf("%-10.0e %18.2f %24.6f", p, checksPerSlot, detect)
		if p == 1e-5 {
			rep.metric("detect_at_paper_p", detect)
		}
	}
	rep.addf("paper picks p=1e-5: ~18 checks per slot already detect a full forger w.p. ≈1")
	return rep, nil
}

func ablationSchedule(quick bool) (Report, error) {
	// Empirically validate the §5 binomial bound: a burst-only relay that
	// is fast during a fraction q of slots wins the median only if it is
	// fast in a majority of the n BWAuths' randomly scheduled slots.
	trials := 4000
	if quick {
		trials = 800
	}
	rng := rand.New(rand.NewSource(99))
	var rep Report
	rep.addf("%-6s %-4s %12s %12s  (Monte Carlo vs binomial bound, %d trials)", "q", "n", "empirical", "analytic", trials)
	for _, q := range []float64{0.1, 0.25, 0.4} {
		for _, n := range []int{3, 5} {
			wins := 0
			for t := 0; t < trials; t++ {
				fast := 0
				for b := 0; b < n; b++ {
					// Each BWAuth's slot lands at an unpredictable time;
					// the relay is fast with probability q.
					if rng.Float64() < q {
						fast++
					}
				}
				if fast > n/2 {
					wins++
				}
			}
			emp := float64(wins) / float64(trials)
			ana := core.BurstAttackSuccessProbability(n, q)
			rep.addf("%-6.2f %-4d %12.4f %12.4f", q, n, emp, ana)
			rep.metric(fmt.Sprintf("emp_q%.2f_n%d", q, n), emp)
		}
	}
	rep.addf("randomized schedules make burst-only misbehaviour a coin the attacker keeps losing (paper §5)")
	return rep, nil
}

func ablationDuration(quick bool) (Report, error) {
	// How long does the whole network take at different slot lengths t,
	// holding the 24 h period fixed? Shorter slots measure the network
	// faster but are less accurate (fig16); t=30 is the paper's balance.
	p := core.DefaultParams()
	n, total := 6419, 608e9
	if quick {
		n, total = 2000, 190e9
	}
	var rep Report
	rep.addf("%-6s %14s %18s", "t (s)", "slots needed", "whole network (h)")
	for _, t := range []int{10, 20, 30, 60} {
		pt := p
		pt.SlotSeconds = t
		res := core.GreedyFastestSchedule(julyNetwork(n, total), 3e9, core.ExcessFactorPaper7, pt)
		rep.addf("%-6d %14d %18.1f", t, res.SlotsUsed, res.HoursUsed(pt))
		rep.metric(fmt.Sprintf("hours_t%d", t), res.HoursUsed(pt))
	}
	rep.addf("slots scale the wall-clock linearly; accuracy (fig16) breaks the tie at t=30")
	return rep, nil
}

func ablationDynamic(bool) (Report, error) {
	// §9 extension: dynamic signals may only reduce weights below the
	// secure FlashFlow ceiling.
	estimates := map[string]float64{
		"idle":    100e6,
		"busy":    100e6,
		"liar-up": 100e6,
	}
	adjusted := core.ApplyDynamicMeasurements(estimates, []core.DynamicMeasurement{
		{Relay: "idle", AvailableFrac: 1.0},
		{Relay: "busy", AvailableFrac: 0.4},
		{Relay: "liar-up", AvailableFrac: 50.0}, // tries to raise its weight
	})
	var rep Report
	rep.addf("%-8s %16s %16s", "relay", "estimate (Mbit)", "adjusted (Mbit)")
	for _, name := range []string{"idle", "busy", "liar-up"} {
		rep.addf("%-8s %16.0f %16.0f", name, estimates[name]/1e6, adjusted[name]/1e6)
	}
	rep.addf("dynamic signals only reduce weights; forged 'available > 1' reports are clamped (paper §9)")
	rep.metric("liar_up_adjusted", adjusted["liar-up"])
	rep.metric("busy_adjusted", adjusted["busy"])
	var vals []float64
	for _, v := range adjusted {
		vals = append(vals, v)
	}
	rep.metric("total_adjusted", stats.Sum(vals))
	return rep, nil
}

func ablationFamily(bool) (Report, error) {
	// §5 Limitations mitigation: simultaneous pair measurement exposes
	// Sybil relays sharing one machine.
	p := core.DefaultParams()
	b := core.NewSimBackend(paperPaths(), 77)
	const machineCap = 300e6
	b.AddTarget("sybilA", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "m1", TorCapBps: machineCap}),
		LinkBps:  954e6,
		Behavior: core.BehaviorHonest,
	})
	b.AddTarget("sybilB", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "m2", TorCapBps: machineCap}),
		LinkBps:  954e6,
		Behavior: core.BehaviorHonest,
	})
	if err := b.ColocateTargets("sybilA", "sybilB"); err != nil {
		return Report{}, err
	}
	v, err := core.TestFamilyPair(context.Background(), b, paperTeam(), "sybilA", "sybilB", machineCap, machineCap, p)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("two relay names on one %.0f Mbit/s machine:", machineCap/1e6)
	rep.addf("  solo estimates: %.0f and %.0f Mbit/s (machine counted twice: %.0f)",
		v.SoloBpsA/1e6, v.SoloBpsB/1e6, (v.SoloBpsA+v.SoloBpsB)/1e6)
	rep.addf("  joint measurement: %.0f Mbit/s → shared machine detected: %v", v.JointBps/1e6, v.SharedMachine)
	rep.addf("  credited after adjustment: %.0f + %.0f = %.0f Mbit/s",
		v.AdjustedBpsA/1e6, v.AdjustedBpsB/1e6, (v.AdjustedBpsA+v.AdjustedBpsB)/1e6)
	rep.metric("shared_detected", boolMetric(v.SharedMachine))
	rep.metric("credited_total_mbit", (v.AdjustedBpsA+v.AdjustedBpsB)/1e6)
	return rep, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
