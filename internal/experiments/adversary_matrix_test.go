package experiments

import (
	"bytes"
	"math"
	"testing"

	"flashflow/internal/core"
	"flashflow/internal/eigenspeed"
	"flashflow/internal/peerflow"
	"flashflow/internal/torflow"
)

func quickMatrix(t *testing.T, seed int64) MatrixReport {
	t.Helper()
	rep, err := AdversaryMatrix(MatrixOptions{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func cellOf(t *testing.T, rep MatrixReport, attack, estimator string) MatrixCell {
	t.Helper()
	c, ok := rep.Cell(attack, estimator)
	if !ok {
		t.Fatalf("missing cell %s/%s", attack, estimator)
	}
	return c
}

// TestMatrixAcceptance pins the headline robustness claims: FlashFlow
// stays under the 1.4× gate on every attack while TorFlow's inflation
// attack exceeds 2×.
func TestMatrixAcceptance(t *testing.T) {
	rep := quickMatrix(t, 1)
	if len(rep.Cells) != len(MatrixAttacks)*len(MatrixEstimators) {
		t.Fatalf("matrix has %d cells, want %d", len(rep.Cells), len(MatrixAttacks)*len(MatrixEstimators))
	}
	for _, attack := range MatrixAttacks {
		c := cellOf(t, rep, attack, "flashflow")
		if c.Advantage > MaxFlashFlowAdvantage {
			t.Errorf("flashflow/%s advantage %.3fx exceeds the %.2fx gate", attack, c.Advantage, MaxFlashFlowAdvantage)
		}
	}
	if rep.FlashFlowMaxAdvantage > MaxFlashFlowAdvantage {
		t.Errorf("FlashFlowMaxAdvantage %.3f exceeds gate", rep.FlashFlowMaxAdvantage)
	}
	tf := cellOf(t, rep, "inflate", "torflow")
	if tf.Advantage <= 2 {
		t.Errorf("torflow inflation advantage %.2fx, want > 2x", tf.Advantage)
	}
	if raw := tf.Details["fair_share_advantage"]; raw <= 2 {
		t.Errorf("torflow raw fair-share inflation %.2fx, want > 2x", raw)
	}
}

// TestMatrixDeterministic: equal seeds produce byte-identical JSON.
func TestMatrixDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := quickMatrix(t, 7).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := quickMatrix(t, 7).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("matrix report not deterministic for equal seeds")
	}
}

// TestMatrixFlashFlowInflateMatchesAnalyticalBound: the live inflation
// attack's measured estimate must agree with the §5 analytical clamp
// 1/(1−r) within tolerance — the simulated pipeline and the formula
// describe the same defense.
func TestMatrixFlashFlowInflateMatchesAnalyticalBound(t *testing.T) {
	rep := quickMatrix(t, 1)
	c := cellOf(t, rep, "inflate", "flashflow")
	bound := core.DefaultParams().MaxInflation()
	got := c.Details["inflation_vs_truth"]
	if math.Abs(got-bound)/bound > 0.05 {
		t.Fatalf("live inflation %.4fx vs analytical bound %.4fx (>5%% apart)", got, bound)
	}
}

// TestMatrixTorFlowMatchesAnalytical: the matrix's raw fair-share cell
// must equal torflow.AttackAdvantage with the same seed and population —
// the simulated matrix and the package's analytical attack formula are
// the same computation.
func TestMatrixTorFlowMatchesAnalytical(t *testing.T) {
	const seed = int64(1)
	rep := quickMatrix(t, seed)
	caps := matrixPopulationCaps(true)
	scanner := torflow.NewScanner(torflow.DefaultScannerConfig(seed + 10))
	want, err := scanner.AttackAdvantage(torflowHonest(caps),
		torflow.RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}, torflowLieFactor)
	if err != nil {
		t.Fatal(err)
	}
	got := cellOf(t, rep, "inflate", "torflow").Details["fair_share_advantage"]
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("matrix torflow inflate %.6f vs analytical %.6f", got, want)
	}
	// And the analytical formula's defining property: the advantage is
	// unbounded in the lie — it scales roughly linearly with lieFactor.
	scanner2 := torflow.NewScanner(torflow.DefaultScannerConfig(seed + 10))
	small, err := scanner2.AttackAdvantage(torflowHonest(caps),
		torflow.RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}, torflowLieFactor/10)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := want / small; ratio < 5 || ratio > 20 {
		t.Fatalf("10x bigger lie scaled the advantage %.1fx, want ~10x (unbounded-in-lie)", ratio)
	}
}

// TestMatrixPeerFlowMatchesAnalytical: the matrix's raw coalition cell
// equals peerflow.AttackAdvantage with the same inputs, and both respect
// the model's analytical ceiling — the growth cap bounds any one-period
// gain.
func TestMatrixPeerFlowMatchesAnalytical(t *testing.T) {
	const seed = int64(1)
	rep := quickMatrix(t, seed)
	caps := matrixPopulationCaps(true)
	cfg := peerflow.DefaultConfig(seed + 20)
	want, err := peerflow.AttackAdvantage(peerflowHonest(caps), 5, 10e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := cellOf(t, rep, "collude", "peerflow").Details["fair_share_advantage"]
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("matrix peerflow collude %.6f vs analytical %.6f", got, want)
	}
	c := cellOf(t, rep, "collude", "peerflow")
	if c.Advantage > cfg.GrowthCap*1.01 {
		t.Fatalf("peerflow coalition gain %.2fx exceeds the analytical growth cap %.2fx", c.Advantage, cfg.GrowthCap)
	}
}

// TestMatrixEigenSpeedMatchesAnalytical: the matrix's raw clique cell
// equals eigenspeed.AttackAdvantage with the same inputs, and the
// normalized gain lands in the literature's 7.4–28.1× band's order of
// magnitude (multiples, not ~1 and not hundreds).
func TestMatrixEigenSpeedMatchesAnalytical(t *testing.T) {
	const seed = int64(1)
	rep := quickMatrix(t, seed)
	caps := matrixPopulationCaps(true)
	cfg := eigenspeed.DefaultConfig(seed + 30)
	want, err := eigenspeed.AttackAdvantage(eigenspeedHonest(caps), 5, 10e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := cellOf(t, rep, "collude", "eigenspeed").Details["fair_share_advantage"]
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("matrix eigenspeed collude %.6f vs analytical %.6f", got, want)
	}
	c := cellOf(t, rep, "collude", "eigenspeed")
	if c.Advantage < 2 || c.Advantage > 40 {
		t.Fatalf("eigenspeed clique gain %.2fx outside the literature's band (multiples)", c.Advantage)
	}
}

// TestMatrixEchoCheatEjectsAttacker: FlashFlow's echo verification must
// eject the forging relay (weight 0), while TorFlow — which never
// verifies content — rewards the same behavior.
func TestMatrixEchoCheatEjectsAttacker(t *testing.T) {
	rep := quickMatrix(t, 1)
	ff := cellOf(t, rep, "echo-cheat", "flashflow")
	if ff.Advantage != 0 {
		t.Fatalf("flashflow echo-cheat advantage %.2fx, want 0 (ejected)", ff.Advantage)
	}
	tf := cellOf(t, rep, "echo-cheat", "torflow")
	if tf.Advantage <= 1 {
		t.Fatalf("torflow echo-cheat advantage %.2fx, want > 1 (unverified content)", tf.Advantage)
	}
}

// TestMatrixCollusionDefense: the pre-defense family advantage must show
// the attack working (~2x for a 2-relay family) and the simultaneous-
// measurement defense must collapse it.
func TestMatrixCollusionDefense(t *testing.T) {
	rep := quickMatrix(t, 1)
	c := cellOf(t, rep, "collude", "flashflow")
	pre := c.Details["pre_defense_advantage"]
	if pre < 1.6 {
		t.Fatalf("pre-defense family advantage %.2fx, want ~2x (the pool double-counted)", pre)
	}
	if c.Advantage > 1.2 {
		t.Fatalf("post-defense family advantage %.2fx, want ~1x", c.Advantage)
	}
}

// TestMatrixStallBurnsSlots: the stall column's FlashFlow details must
// show slots burned beyond the honest baseline with no weight gain.
func TestMatrixStallBurnsSlots(t *testing.T) {
	rep := quickMatrix(t, 1)
	c := cellOf(t, rep, "stall", "flashflow")
	if c.Details["slots_burned"] <= c.Details["honest_slots"] {
		t.Fatalf("stall burned %v slots vs honest %v, want more", c.Details["slots_burned"], c.Details["honest_slots"])
	}
	if c.Advantage > 1.1 {
		t.Fatalf("stall advantage %.2fx, want ~1x", c.Advantage)
	}
}
