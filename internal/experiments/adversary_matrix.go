package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"flashflow/internal/adversary"
	"flashflow/internal/core"
	"flashflow/internal/eigenspeed"
	"flashflow/internal/peerflow"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
	"flashflow/internal/torflow"
)

// The adversary matrix runs every §5 attack class live against FlashFlow
// — through internal/adversary wrappers over the simulation backend, so
// the full measurement pipeline (doubling loop, clamps, echo checks,
// median vote) defends itself — and runs each attack's nearest analog
// against the TorFlow, PeerFlow, and EigenSpeed baselines from PAPERS.md.
// The report is deterministic for a given seed: CI regenerates it nightly
// and fails if FlashFlow's measured advantage ever exceeds
// MaxFlashFlowAdvantage on any attack.

// MatrixAttacks lists the attack classes in canonical report order.
var MatrixAttacks = []string{"inflate", "selective", "echo-cheat", "collude", "stall"}

// MatrixEstimators lists the estimators in canonical report order.
var MatrixEstimators = []string{"flashflow", "torflow", "peerflow", "eigenspeed"}

// MaxFlashFlowAdvantage is the CI gate on FlashFlow's measured attack
// advantage: the §5 analytical bound 1/(1−r) = 1.33 plus a noise margin.
const MaxFlashFlowAdvantage = 1.4

// MatrixOptions configures a matrix run.
type MatrixOptions struct {
	// Seed drives every RNG in the matrix; equal seeds produce
	// byte-identical reports.
	Seed int64
	// Quick shrinks the honest populations for CI smoke runs.
	Quick bool
}

// MatrixCell is one attack × estimator result.
type MatrixCell struct {
	Attack    string `json:"attack"`
	Estimator string `json:"estimator"`
	// Advantage is the factor by which the attacker's consensus-weight
	// share exceeds its fair (capacity-proportional) share; 1.0 means
	// the attack gained nothing, 0 means the attacker was ejected.
	Advantage float64 `json:"advantage"`
	// Details carries per-cell diagnostics (estimates, slots burned,
	// pre-defense advantage, …).
	Details map[string]float64 `json:"details,omitempty"`
	// Note documents how the attack maps onto this estimator.
	Note string `json:"note,omitempty"`
}

// MatrixReport is the full robustness matrix.
type MatrixReport struct {
	Seed           int64   `json:"seed"`
	Quick          bool    `json:"quick"`
	InflationBound float64 `json:"inflation_bound"`
	// FlashFlowMaxAdvantage is the worst FlashFlow cell — the number the
	// CI gate compares against MaxFlashFlowAdvantage.
	FlashFlowMaxAdvantage float64      `json:"flashflow_max_advantage"`
	Cells                 []MatrixCell `json:"cells"`
}

// Cell looks up one attack × estimator entry.
func (r MatrixReport) Cell(attack, estimator string) (MatrixCell, bool) {
	for _, c := range r.Cells {
		if c.Attack == attack && c.Estimator == estimator {
			return c, true
		}
	}
	return MatrixCell{}, false
}

// WriteJSON renders the report as indented JSON. The output is
// deterministic: cells are in canonical order and map keys marshal
// sorted, so two runs with the same seed produce identical bytes.
func (r MatrixReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// advantageFrac converts an attacker's weight into the standard
// advantage measure used by every baseline's AttackAdvantage: the
// attacker's consensus-weight fraction over its fair capacity fraction.
func advantageFrac(attackerWeight, honestWeight, attackerCap, honestCap float64) float64 {
	wFrac := attackerWeight / (honestWeight + attackerWeight)
	fair := attackerCap / (honestCap + attackerCap)
	if fair <= 0 {
		return 0
	}
	return wFrac / fair
}

// matrixPopulation is the shared honest relay population: a deterministic
// mix of capacities from 10 to 200 Mbit/s.
func matrixPopulationCaps(quick bool) []float64 {
	n := 300
	if quick {
		n = 120
	}
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 10e6 * float64(1+i%20)
	}
	return caps
}

// AdversaryMatrix runs the full attack × estimator matrix.
func AdversaryMatrix(opts MatrixOptions) (MatrixReport, error) {
	rep := MatrixReport{
		Seed:           opts.Seed,
		Quick:          opts.Quick,
		InflationBound: core.DefaultParams().MaxInflation(),
	}
	caps := matrixPopulationCaps(opts.Quick)

	type estimatorFn func(attack string) (MatrixCell, error)
	estimators := map[string]estimatorFn{
		"flashflow":  func(a string) (MatrixCell, error) { return flashflowCell(a, caps, opts) },
		"torflow":    func(a string) (MatrixCell, error) { return torflowCell(a, caps, opts) },
		"peerflow":   func(a string) (MatrixCell, error) { return peerflowCell(a, caps, opts) },
		"eigenspeed": func(a string) (MatrixCell, error) { return eigenspeedCell(a, caps, opts) },
	}

	rep.FlashFlowMaxAdvantage = 0
	for _, attack := range MatrixAttacks {
		for _, est := range MatrixEstimators {
			cell, err := estimators[est](attack)
			if err != nil {
				return MatrixReport{}, fmt.Errorf("adversary-matrix %s/%s: %w", attack, est, err)
			}
			cell.Attack, cell.Estimator = attack, est
			rep.Cells = append(rep.Cells, cell)
			if est == "flashflow" && cell.Advantage > rep.FlashFlowMaxAdvantage {
				rep.FlashFlowMaxAdvantage = cell.Advantage
			}
		}
	}
	return rep, nil
}

// ---- FlashFlow: live attacks through the measurement pipeline ----

const (
	matrixAttackerCap = 200e6
	matrixNumAuths    = 3
)

func matrixPaths() []core.PathModel {
	return []core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9},
		{RTT: 140 * time.Millisecond, LinkBps: 1e9},
	}
}

func matrixTeam() []*core.Measurer {
	return []*core.Measurer{
		{Name: "m1", CapacityBps: 1.5e9, Cores: 4},
		{Name: "m2", CapacityBps: 1.5e9, Cores: 4},
		{Name: "m3", CapacityBps: 1.5e9, Cores: 4},
	}
}

// measureAttacked measures one attacked relay once per BWAuth and returns
// the per-auth estimates (0 where the measurement failed — an ejected
// relay publishes nothing) plus the total slots consumed. Each BWAuth
// gets its own seeded sim backend wrapped by the adversary, exactly the
// deployment trust model: independent teams, one shared lying relay.
func measureAttacked(name string, capBps, priorBps float64, attack adversary.Attack, seed int64) (ests []float64, slots int, err error) {
	p := core.DefaultParams()
	ests = make([]float64, matrixNumAuths)
	for a := 0; a < matrixNumAuths; a++ {
		inner := core.NewSimBackend(matrixPaths(), seed+int64(a)*101)
		inner.AddTarget(name, &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: name, TorCapBps: capBps}),
			LinkBps:  1e9,
			Behavior: core.BehaviorHonest,
		})
		b := adversary.New(inner, fmt.Sprintf("bw%d", a), seed+int64(a)*977)
		if attack != nil {
			b.SetAttack(name, attack)
		}
		out, merr := core.MeasureRelay(context.Background(), b, matrixTeam(), name, priorBps, p)
		slots += out.SlotsUsed()
		if merr != nil {
			// Only an echo-verification catch means "the defense ejected
			// the relay" (estimate 0). Any other failure is a broken
			// harness, and swallowing it would make the 1.4x gate pass
			// vacuously with nothing measured.
			if errors.Is(merr, core.ErrMeasurementFailed) {
				ests[a] = 0
				continue
			}
			return nil, 0, merr
		}
		ests[a] = out.EstimateBps
	}
	return ests, slots, nil
}

func medianWeight(ests []float64) float64 {
	return stats.Median(append([]float64(nil), ests...))
}

func flashflowCell(attack string, honestCaps []float64, opts MatrixOptions) (MatrixCell, error) {
	p := core.DefaultParams()
	honestCap := stats.Sum(honestCaps)
	// Honest relays' published weights are their capacities: FlashFlow
	// measures honest relays within ε (fig6), so the interesting part of
	// the fraction is the attacker's weight.
	honestWeight := honestCap

	cell := MatrixCell{Details: map[string]float64{}}
	switch attack {
	case "inflate":
		ests, _, err := measureAttacked("evil", matrixAttackerCap, matrixAttackerCap,
			adversary.Inflate{Factor: 10}, opts.Seed)
		if err != nil {
			return cell, err
		}
		w := medianWeight(ests)
		cell.Advantage = advantageFrac(w, honestWeight, matrixAttackerCap, honestCap)
		cell.Details["estimate_bps"] = w
		cell.Details["inflation_vs_truth"] = w / matrixAttackerCap
		cell.Note = "normal-traffic report fabricated 10x; the r-ratio clamp caps the credit at 1/(1-r)"

	case "selective":
		ests, _, err := measureAttacked("evil", matrixAttackerCap, matrixAttackerCap,
			adversary.SelectiveLie{LieTo: map[string]bool{"bw0": true}, Sub: adversary.Inflate{Factor: 10}},
			opts.Seed+1)
		if err != nil {
			return cell, err
		}
		w := medianWeight(ests)
		cell.Advantage = advantageFrac(w, honestWeight, matrixAttackerCap, honestCap)
		cell.Details["lied_to_auths"] = 1
		cell.Details["estimate_bps"] = w
		for i, e := range ests {
			cell.Details[fmt.Sprintf("auth%d_bps", i)] = e
		}
		cell.Note = "lies to 1 of 3 BWAuths; the cross-BWAuth median discards the lied-to view and the split-view anomaly flags it"

	case "echo-cheat":
		ests, _, err := measureAttacked("evil", matrixAttackerCap, matrixAttackerCap,
			adversary.EchoCheat{Boost: 2, CheckProb: p.CheckProb}, opts.Seed+2)
		if err != nil {
			return cell, err
		}
		w := medianWeight(ests)
		cell.Advantage = advantageFrac(w, honestWeight, matrixAttackerCap, honestCap)
		caught := 0.0
		for _, e := range ests {
			if e == 0 {
				caught++
			}
		}
		cell.Details["auths_catching"] = caught
		cell.Details["estimate_bps"] = w
		cell.Note = "acks cells without decrypting for 2x apparent capacity; probability-p content checks eject it"

	case "collude":
		pool := adversary.NewPool()
		pool.AddMember("evil0", matrixAttackerCap)
		pool.AddMember("evil1", matrixAttackerCap)
		famCap := pool.TotalBps()

		famWeight := func(seedOff int64) (float64, error) {
			var total float64
			for i, member := range []string{"evil0", "evil1"} {
				ests, _, err := measureAttacked(member, matrixAttackerCap, matrixAttackerCap,
					adversary.Collude{Pool: pool, Member: member}, opts.Seed+3+seedOff+int64(i)*13)
				if err != nil {
					return 0, err
				}
				total += medianWeight(ests)
			}
			return total, nil
		}

		// Attack: members measured in separate slots each demonstrate the
		// whole pool.
		preW, err := famWeight(0)
		if err != nil {
			return cell, err
		}
		preAdv := advantageFrac(preW, honestWeight, famCap, honestCap)

		// §5 defense: suspected families are measured simultaneously
		// (core.TestFamilyPair / co-slotted scheduling) — the pool splits
		// and the double-counting vanishes.
		pool.SetSimultaneous([]string{"evil0", "evil1"})
		postW, err := famWeight(100)
		if err != nil {
			return cell, err
		}
		cell.Advantage = advantageFrac(postW, honestWeight, famCap, honestCap)
		cell.Details["pre_defense_advantage"] = preAdv
		cell.Details["family_weight_bps"] = postW
		cell.Note = "2-relay family pools capacity across slots (pre-defense ~2x); simultaneous measurement splits the pool"

	case "stall":
		prior := matrixAttackerCap / 8 // fresh-relay prior far below capacity
		stallCap := matrixAttackerCap
		honestEsts, honestSlots, err := measureAttacked("evil", stallCap, prior, nil, opts.Seed+4)
		if err != nil {
			return cell, err
		}
		ests, slots, err := measureAttacked("evil", stallCap, prior,
			adversary.Stall{Eps1: p.Eps1, Multiplier: p.Multiplier, CapacityBps: stallCap}, opts.Seed+4)
		if err != nil {
			return cell, err
		}
		w := medianWeight(ests)
		cell.Advantage = advantageFrac(w, honestWeight, stallCap, honestCap)
		cell.Details["slots_burned"] = float64(slots)
		cell.Details["honest_slots"] = float64(honestSlots)
		cell.Details["honest_estimate_bps"] = medianWeight(honestEsts)
		cell.Note = "echoes just above the rejection bound to burn scheduler slots; no weight gain, and the stall anomaly counter flags the pattern"

	default:
		return cell, fmt.Errorf("unknown attack %q", attack)
	}
	return cell, nil
}

// ---- TorFlow ----

func torflowHonest(caps []float64) []torflow.RelayState {
	honest := make([]torflow.RelayState, len(caps))
	for i, c := range caps {
		honest[i] = torflow.RelayState{
			Name:            fmt.Sprintf("r%03d", i),
			CapacityBps:     c,
			AdvertisedBps:   c * 0.6,
			UtilizationFrac: 0.5,
		}
	}
	return honest
}

// torflowAdvantage scans honest+attackers and returns the attackers'
// collective advantage.
func torflowAdvantage(honest []torflow.RelayState, attackers []torflow.RelayState, seed int64) (float64, error) {
	scanner := torflow.NewScanner(torflow.DefaultScannerConfig(seed))
	all := append(append([]torflow.RelayState(nil), honest...), attackers...)
	res, err := scanner.Scan(all)
	if err != nil {
		return 0, err
	}
	totalW := stats.Sum(res.WeightBps)
	var evilW, evilCap, totalCap float64
	for i, r := range all {
		totalCap += r.CapacityBps
		if i >= len(honest) {
			evilW += res.WeightBps[i]
			evilCap += r.CapacityBps
		}
	}
	if totalW <= 0 || evilCap <= 0 {
		return 0, fmt.Errorf("torflow: degenerate scan")
	}
	return (evilW / totalW) / (evilCap / totalCap), nil
}

// torflowLieFactor is the self-report lie used for the matrix's
// inflation column: ×350 lands near the literature's demonstrated 177×
// (tab2 uses the same value).
const torflowLieFactor = 350

// normalizeCell converts a raw fair-share advantage into the matrix's
// gain measure. Every baseline's weight model maps capacity to weight
// nonlinearly (TorFlow honest weights grow ~quadratically with capacity,
// EigenSpeed overweights small relays), so a relay's raw fair-share
// number is skewed before it attacks at all. Dividing by the honest
// counterfactual — the identical relay in the identical population,
// behaving honestly — isolates what the attack itself gained, which is
// the quantity comparable across estimators (FlashFlow's honest baseline
// is 1 by construction). Both raw numbers stay in Details for comparison
// against the packages' analytical AttackAdvantage outputs.
func normalizeCell(cell *MatrixCell, raw, honestBase float64) {
	cell.Details["fair_share_advantage"] = raw
	cell.Details["honest_fair_share"] = honestBase
	if honestBase > 0 {
		cell.Advantage = raw / honestBase
	} else {
		cell.Advantage = raw
	}
}

func torflowCell(attack string, caps []float64, opts MatrixOptions) (MatrixCell, error) {
	honest := torflowHonest(caps)
	attacker := torflow.RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}
	plain := attacker
	plain.AdvertisedBps = attacker.CapacityBps * 0.6 // honest advertisement, like its peers
	cell := MatrixCell{Details: map[string]float64{}}

	seed := opts.Seed + 10
	honestBase, err := torflowAdvantage(honest, []torflow.RelayState{plain}, seed)
	if err != nil {
		return cell, err
	}
	var raw float64
	switch attack {
	case "inflate":
		scanner := torflow.NewScanner(torflow.DefaultScannerConfig(seed))
		raw, err = scanner.AttackAdvantage(honest, attacker, torflowLieFactor)
		cell.Details["lie_factor"] = torflowLieFactor
		cell.Note = "self-reported advertised bandwidth is trusted; inflation is unbounded in the lie"
	case "selective":
		mal := attacker
		mal.Malicious = true // detects measurement circuits, reserves capacity for them
		mal.AdvertisedBps = attacker.CapacityBps
		raw, err = torflowAdvantage(honest, []torflow.RelayState{mal}, seed)
		cell.Note = "relay prioritizes (detectable) scanner circuits while throttling clients — rewarded, not punished"
	case "echo-cheat":
		scanner := torflow.NewScanner(torflow.DefaultScannerConfig(seed))
		raw, err = scanner.AttackAdvantage(honest, attacker, 2)
		cell.Details["junk_boost"] = 2
		cell.Note = "TorFlow never verifies downloaded content; serving junk at 2x line rate doubles the claim"
	case "collude":
		mals := make([]torflow.RelayState, 2)
		for i := range mals {
			mals[i] = torflow.RelayState{
				Name:            fmt.Sprintf("evil%d", i),
				CapacityBps:     10e6,
				UtilizationFrac: 0.5,
				Malicious:       true,
				AdvertisedBps:   10e6 * torflowLieFactor,
			}
		}
		raw, err = torflowAdvantage(honest, mals, seed)
		// The family baseline is two honest copies of the attacker.
		honestBase, err = torflowTwoHonestBase(honest, plain, seed, err)
		cell.Details["family_size"] = 2
		cell.Note = "a lying family multiplies the single-relay inflation; no cross-checks exist"
	case "stall":
		raw, err = honestBase, nil
		cell.Note = "slow-walking probes wastes scanner circuits (2-day scans get slower) but moves no weight"
	default:
		return cell, fmt.Errorf("unknown attack %q", attack)
	}
	if err != nil {
		return cell, err
	}
	normalizeCell(&cell, raw, honestBase)
	return cell, nil
}

func torflowTwoHonestBase(honest []torflow.RelayState, plain torflow.RelayState, seed int64, prevErr error) (float64, error) {
	if prevErr != nil {
		return 0, prevErr
	}
	a, b := plain, plain
	a.Name, b.Name = "evil0", "evil1"
	return torflowAdvantage(honest, []torflow.RelayState{a, b}, seed)
}

// ---- PeerFlow ----

func peerflowHonest(caps []float64) []peerflow.Relay {
	honest := make([]peerflow.Relay, len(caps))
	for i, c := range caps {
		honest[i] = peerflow.Relay{
			Name:        fmt.Sprintf("r%03d", i),
			CapacityBps: c,
			WeightBps:   c * 0.8,
			Trusted:     i%5 == 0,
		}
	}
	return honest
}

// peerflowAdvantage mirrors peerflow.AttackAdvantage with the coalition's
// malice switchable, so the matrix can compute the honest counterfactual
// of the identical population. With malicious=true it consumes the model
// identically to the package function and produces the same number.
func peerflowAdvantage(honest []peerflow.Relay, n int, capBps float64, malicious bool, cfg peerflow.Config) (float64, error) {
	all := append([]peerflow.Relay(nil), honest...)
	for i := 0; i < n; i++ {
		all = append(all, peerflow.Relay{
			Name:        fmt.Sprintf("evil%02d", i),
			CapacityBps: capBps,
			WeightBps:   capBps,
			Malicious:   malicious,
		})
	}
	reports := peerflow.TrafficReports(all, 24*3600, cfg)
	weights, err := peerflow.ComputeWeights(all, reports, cfg)
	if err != nil {
		return 0, err
	}
	norm := stats.Normalize(weights)
	var evilFrac, evilCap, totalCap float64
	for i, r := range all {
		totalCap += r.CapacityBps
		if i >= len(honest) {
			evilFrac += norm[i]
			evilCap += r.CapacityBps
		}
	}
	if evilCap == 0 {
		return 0, fmt.Errorf("peerflow: attacker with zero capacity")
	}
	return evilFrac / (evilCap / totalCap), nil
}

func peerflowCell(attack string, caps []float64, opts MatrixOptions) (MatrixCell, error) {
	honest := peerflowHonest(caps)
	cfg := peerflow.DefaultConfig(opts.Seed + 20)
	cell := MatrixCell{Details: map[string]float64{}}

	run := func(coalition int, note string) (MatrixCell, error) {
		raw, err := peerflowAdvantage(honest, coalition, 10e6, true, cfg)
		if err != nil {
			return cell, err
		}
		base, err := peerflowAdvantage(honest, coalition, 10e6, false, cfg)
		if err != nil {
			return cell, err
		}
		cell.Details["coalition"] = float64(coalition)
		cell.Note = note
		normalizeCell(&cell, raw, base)
		return cell, nil
	}

	switch attack {
	case "inflate":
		return run(2, "a fabricated traffic total needs a corroborating peer; the trusted-weight median and growth cap bound the gain")
	case "selective":
		return run(1, "a lone relay's claims about itself are outvoted by the trusted-weight median")
	case "echo-cheat":
		return run(1, "no active measurement exists to cheat; reduces to a lone fabricated report")
	case "collude":
		return run(5, "a 5-relay coalition corroborates its own totals, bounded by the growth cap per period")
	case "stall":
		cell.Advantage = 1
		cell.Note = "passive observation; withholding traffic only lowers the relay's own weight"
		return cell, nil
	default:
		return cell, fmt.Errorf("unknown attack %q", attack)
	}
}

// ---- EigenSpeed ----

func eigenspeedHonest(caps []float64) []eigenspeed.Relay {
	honest := make([]eigenspeed.Relay, len(caps))
	for i, c := range caps {
		honest[i] = eigenspeed.Relay{
			Name:        fmt.Sprintf("r%03d", i),
			CapacityBps: c,
			Trusted:     i%5 == 0,
		}
	}
	return honest
}

// eigenspeedAdvantage mirrors eigenspeed.AttackAdvantage with the
// clique's malice switchable for the honest counterfactual.
func eigenspeedAdvantage(honest []eigenspeed.Relay, n int, capBps float64, malicious bool, cfg eigenspeed.Config) (float64, error) {
	all := append([]eigenspeed.Relay(nil), honest...)
	for i := 0; i < n; i++ {
		all = append(all, eigenspeed.Relay{
			Name:        fmt.Sprintf("evil%02d", i),
			CapacityBps: capBps,
			Malicious:   malicious,
		})
	}
	obs := eigenspeed.ObservationMatrix(all, cfg)
	res, err := eigenspeed.ComputeWeights(all, obs, cfg)
	if err != nil {
		return 0, err
	}
	var evilWeight, totalCap, evilCap float64
	for i, r := range all {
		totalCap += r.CapacityBps
		if i >= len(honest) {
			evilWeight += res.WeightFrac[i]
			evilCap += r.CapacityBps
		}
	}
	if evilCap == 0 {
		return 0, fmt.Errorf("eigenspeed: attacker with zero capacity")
	}
	return evilWeight / (evilCap / totalCap), nil
}

func eigenspeedCell(attack string, caps []float64, opts MatrixOptions) (MatrixCell, error) {
	honest := eigenspeedHonest(caps)
	cfg := eigenspeed.DefaultConfig(opts.Seed + 30)
	cell := MatrixCell{Details: map[string]float64{}}

	run := func(clique int, note string) (MatrixCell, error) {
		raw, err := eigenspeedAdvantage(honest, clique, 10e6, true, cfg)
		if err != nil {
			return cell, err
		}
		base, err := eigenspeedAdvantage(honest, clique, 10e6, false, cfg)
		if err != nil {
			return cell, err
		}
		cell.Details["clique"] = float64(clique)
		cell.Note = note
		normalizeCell(&cell, raw, base)
		return cell, nil
	}

	switch attack {
	case "inflate":
		return run(2, "self-inflation needs a corroborating clique partner in the observation matrix")
	case "selective":
		return run(1, "a lone liar starving its peers is damped by the trusted-set initialization")
	case "echo-cheat":
		return run(1, "no active probes to forge; reduces to a lone fabricated observation row")
	case "collude":
		return run(5, "the liar clique mutually reports high observations (literature: up to 21.5x)")
	case "stall":
		cell.Advantage = 1
		cell.Note = "passive observation; throttling peers only shrinks the relay's own column"
		return cell, nil
	default:
		return cell, fmt.Errorf("unknown attack %q", attack)
	}
}

// adversaryMatrix is the registry experiment: the matrix rendered as a
// table with the gate metrics.
func adversaryMatrix(quick bool) (Report, error) {
	m, err := AdversaryMatrix(MatrixOptions{Seed: 1, Quick: quick})
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-11s %12s %12s %12s %12s", "attack", "flashflow", "torflow", "peerflow", "eigenspeed")
	for _, attack := range MatrixAttacks {
		row := fmt.Sprintf("%-11s", attack)
		for _, est := range MatrixEstimators {
			c, _ := m.Cell(attack, est)
			row += fmt.Sprintf(" %11.2fx", c.Advantage)
		}
		rep.Lines = append(rep.Lines, row)
	}
	rep.addf("FlashFlow worst case %.2fx (gate %.2fx; analytical bound 1/(1-r) = %.2fx)",
		m.FlashFlowMaxAdvantage, MaxFlashFlowAdvantage, m.InflationBound)
	rep.metric("flashflow_max_advantage", m.FlashFlowMaxAdvantage)
	if c, ok := m.Cell("inflate", "torflow"); ok {
		rep.metric("torflow_inflate_advantage", c.Advantage)
	}
	if c, ok := m.Cell("collude", "peerflow"); ok {
		rep.metric("peerflow_collude_advantage", c.Advantage)
	}
	if c, ok := m.Cell("collude", "eigenspeed"); ok {
		rep.metric("eigenspeed_collude_advantage", c.Advantage)
	}
	if math.IsNaN(m.FlashFlowMaxAdvantage) {
		return rep, fmt.Errorf("adversary-matrix: NaN advantage")
	}
	return rep, nil
}
