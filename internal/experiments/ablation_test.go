package experiments

import (
	"math"
	"testing"

	"flashflow/internal/core"
)

func TestAblationRatioInflationBounded(t *testing.T) {
	rep := runQuick(t, "ablation-ratio")
	for _, r := range []float64{0.1, 0.25, 0.5} {
		key := "liar_rel_r" + formatR(r)
		got, ok := rep.Metrics[key]
		if !ok {
			t.Fatalf("missing metric %s: %v", key, rep.Metrics)
		}
		bound := 1/(1-r) + 0.08 // ε2 + noise headroom
		if got > bound {
			t.Errorf("r=%.2f: liar estimate %v exceeds bound %v", r, got, bound)
		}
	}
	// Higher r must pay the liar more.
	if rep.Metrics["liar_rel_r0.50"] <= rep.Metrics["liar_rel_r0.10"] {
		t.Error("higher r should allow more inflation")
	}
}

func formatR(r float64) string {
	switch r {
	case 0.1:
		return "0.10"
	case 0.25:
		return "0.25"
	case 0.5:
		return "0.50"
	}
	return ""
}

func TestAblationCheckDetection(t *testing.T) {
	rep := runQuick(t, "ablation-check")
	if v := rep.Metrics["detect_at_paper_p"]; v < 0.99 {
		t.Fatalf("paper p should detect a full forger within a slot: %v", v)
	}
}

func TestAblationScheduleMatchesBinomial(t *testing.T) {
	rep := runQuick(t, "ablation-schedule")
	for _, probe := range []struct {
		key string
		n   int
		q   float64
	}{
		{"emp_q0.25_n3", 3, 0.25},
		{"emp_q0.40_n5", 5, 0.40},
	} {
		emp := rep.Metrics[probe.key]
		ana := core.BurstAttackSuccessProbability(probe.n, probe.q)
		if math.Abs(emp-ana) > 0.05 {
			t.Errorf("%s: empirical %v vs analytic %v", probe.key, emp, ana)
		}
	}
}

func TestAblationDurationLinear(t *testing.T) {
	rep := runQuick(t, "ablation-duration")
	h10 := rep.Metrics["hours_t10"]
	h30 := rep.Metrics["hours_t30"]
	h60 := rep.Metrics["hours_t60"]
	if !(h10 < h30 && h30 < h60) {
		t.Fatalf("hours should grow with slot length: %v %v %v", h10, h30, h60)
	}
	// Roughly linear: t=60 ≈ 2× t=30.
	if ratio := h60 / h30; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("t=60/t=30 hour ratio: %v want ≈2", ratio)
	}
}

func TestAblationDynamicOnlyReduces(t *testing.T) {
	rep := runQuick(t, "ablation-dynamic")
	if v := rep.Metrics["liar_up_adjusted"]; v > 100e6 {
		t.Fatalf("dynamic signal raised a weight: %v", v)
	}
	if v := rep.Metrics["busy_adjusted"]; math.Abs(v-40e6) > 1 {
		t.Fatalf("busy relay adjustment: %v want 40e6", v)
	}
}

func TestAblationFamilyDetects(t *testing.T) {
	rep := runQuick(t, "ablation-family")
	if rep.Metrics["shared_detected"] != 1 {
		t.Fatal("co-located pair not detected")
	}
	if v := rep.Metrics["credited_total_mbit"]; v > 330 {
		t.Fatalf("Sybils credited too much: %v Mbit", v)
	}
}
