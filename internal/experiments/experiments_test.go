package experiments

import (
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) Report {
	t.Helper()
	rep, err := Run(id, true)
	if err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	if rep.ID != id || rep.Title == "" {
		t.Fatalf("report metadata: %+v", rep)
	}
	if len(rep.Lines) == 0 {
		t.Fatalf("%s produced no lines", id)
	}
	return rep
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", true); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestIDsCoverEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "tab1", "tab2", "tab3", "tab4", "sched", "security",
		"adversary-matrix",
		"ablation-ratio", "ablation-check", "ablation-schedule",
		"ablation-duration", "ablation-dynamic", "ablation-family",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
	for _, id := range IDs() {
		if title, ok := Title(id); !ok || title == "" {
			t.Errorf("missing title for %s", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Error("unknown title lookup should fail")
	}
}

func TestFig1ErrorGrowsWithPeriod(t *testing.T) {
	rep := runQuick(t, "fig1")
	if rep.Metrics["median_rce_day"] >= rep.Metrics["median_rce_year"] {
		t.Fatalf("RCE should grow with period: %v", rep.Metrics)
	}
}

func TestFig2Bands(t *testing.T) {
	rep := runQuick(t, "fig2")
	year := rep.Metrics["median_nce_year"]
	if year < 0.15 || year > 0.5 {
		t.Fatalf("year NCE out of band: %v", year)
	}
}

func TestFig3MostUnderweighted(t *testing.T) {
	rep := runQuick(t, "fig3")
	if rep.Metrics["underweighted_frac_year"] < 0.5 {
		t.Fatalf("underweighted fraction: %v", rep.Metrics["underweighted_frac_year"])
	}
}

func TestFig4Bands(t *testing.T) {
	rep := runQuick(t, "fig4")
	for _, period := range []string{"day", "week", "month", "year"} {
		v := rep.Metrics["median_nwe_"+period]
		if v < 0.08 || v > 0.5 {
			t.Fatalf("NWE %s out of band: %v", period, v)
		}
	}
}

func TestFig5GainNearPaper(t *testing.T) {
	rep := runQuick(t, "fig5")
	if g := rep.Metrics["gain_frac"]; g < 0.2 || g > 1.0 {
		t.Fatalf("speed test gain: %v (paper ≈0.5)", g)
	}
	if rise := rep.Metrics["nwe_rise"]; rise <= 0 {
		t.Fatalf("weight error should rise during the test: %v", rise)
	}
}

func TestFig6AccuracyHeadline(t *testing.T) {
	rep := runQuick(t, "fig6")
	if f := rep.Metrics["frac_within_11pct"]; f < 0.90 {
		t.Fatalf("within-11%% fraction: %v (paper: 0.95)", f)
	}
	if f := rep.Metrics["frac_within_eps"]; f < 0.95 {
		t.Fatalf("within-eps fraction: %v (paper: 0.998)", f)
	}
}

func TestFig7BackgroundClamp(t *testing.T) {
	rep := runQuick(t, "fig7")
	bg := rep.Metrics["bg_during_mbit"]
	if bg < 20 || bg > 30 {
		t.Fatalf("background during measurement: %v Mbit/s (expected ≈25)", bg)
	}
	est := rep.Metrics["estimate_mbit"]
	if est < 200 || est > 260 {
		t.Fatalf("estimate: %v Mbit/s (expected ≈239)", est)
	}
}

func TestFig8FlashFlowBeatsTorFlow(t *testing.T) {
	rep := runQuick(t, "fig8")
	if rep.Metrics["ff_nwe"] >= rep.Metrics["tf_nwe"] {
		t.Fatalf("FF NWE %v should beat TF %v", rep.Metrics["ff_nwe"], rep.Metrics["tf_nwe"])
	}
	if nce := rep.Metrics["ff_nce"]; nce > 0.3 {
		t.Fatalf("FF NCE too high: %v", nce)
	}
}

func TestFig9FlashFlowImproves(t *testing.T) {
	rep := runQuick(t, "fig9")
	if imp := rep.Metrics["improvement_1mib"]; imp <= 0 {
		t.Fatalf("1 MiB improvement: %v (paper: 0.29)", imp)
	}
	if rep.Metrics["ff_timeout_rate"] > rep.Metrics["tf_timeout_rate"] {
		t.Fatalf("FF should time out less: %v vs %v",
			rep.Metrics["ff_timeout_rate"], rep.Metrics["tf_timeout_rate"])
	}
}

func TestFig10RSDGrows(t *testing.T) {
	rep := runQuick(t, "fig10")
	if rep.Metrics["adv_rsd_day"] >= rep.Metrics["adv_rsd_year"] {
		t.Fatalf("RSD should grow with period: %v", rep.Metrics)
	}
}

func TestFig11Peak(t *testing.T) {
	rep := runQuick(t, "fig11")
	if p := rep.Metrics["peak_mbit"]; p < 1000 || p > 1400 {
		t.Fatalf("processing peak: %v Mbit/s (paper: 1248)", p)
	}
	if n := rep.Metrics["peak_sockets"]; n < 10 || n > 45 {
		t.Fatalf("peak socket count: %v (paper: 20)", n)
	}
}

func TestFig12TunedWins(t *testing.T) {
	rep := runQuick(t, "fig12")
	if rep.Metrics["tuned_340ms"] <= 0 {
		t.Fatal("missing tuned metric")
	}
}

func TestFig13RatioApproachesOne(t *testing.T) {
	rep := runQuick(t, "fig13")
	for _, host := range []string{"US-NW", "US-E", "IN", "NL"} {
		if rep.Metrics["ratio1_"+host] > rep.Metrics["ratio100_"+host] {
			continue
		}
		// Equal ratios are possible when one socket already saturates.
		if rep.Metrics["ratio100_"+host] < 0.95 {
			t.Fatalf("%s: 100-socket ratio should approach 1: %v", host, rep.Metrics["ratio100_"+host])
		}
	}
}

func TestFig14INPeaksLast(t *testing.T) {
	rep := runQuick(t, "fig14")
	in := rep.Metrics["peak_sockets_IN"]
	if in < 100 {
		t.Fatalf("IN should need ≥100 sockets (paper: 160), got %v", in)
	}
	for _, host := range []string{"US-NW", "US-E", "NL"} {
		if rep.Metrics["peak_sockets_"+host] > in {
			t.Fatalf("%s peaks later than IN", host)
		}
	}
}

func TestFig15Multiplier225Safe(t *testing.T) {
	rep := runQuick(t, "fig15")
	if v := rep.Metrics["min_frac_m2.25"]; v < 0.8 {
		t.Fatalf("m=2.25 min fraction %v below 0.8 (the paper picked it to avoid this)", v)
	}
}

func TestFig16ThirtySecondsAccurate(t *testing.T) {
	rep := runQuick(t, "fig16")
	if v := rep.Metrics["min_frac_30s"]; v < 0.8 {
		t.Fatalf("30 s min fraction: %v (paper: 0.84)", v)
	}
	if v := rep.Metrics["max_frac_30s"]; v > 1.11 {
		t.Fatalf("30 s max fraction: %v (paper: 1.01)", v)
	}
}

func TestTab1MeasuredMatchesTable(t *testing.T) {
	rep := runQuick(t, "tab1")
	for _, host := range []string{"US-SW", "US-NW", "US-E", "IN", "NL"} {
		if rep.Metrics["measured_"+host] <= 0 {
			t.Fatalf("missing measurement for %s", host)
		}
	}
}

func TestTab2Advantage(t *testing.T) {
	rep := runQuick(t, "tab2")
	if adv := rep.Metrics["torflow_advantage"]; adv < 50 {
		t.Fatalf("TorFlow advantage too small: %v (paper: 177)", adv)
	}
	if adv := rep.Metrics["flashflow_advantage"]; adv > 1.34 {
		t.Fatalf("FlashFlow advantage: %v (bound: 1.33)", adv)
	}
}

func TestTab3UDPBeatsTCP(t *testing.T) {
	rep := runQuick(t, "tab3")
	for _, host := range []string{"US-NW", "US-E", "IN", "NL"} {
		if rep.Metrics["udp_"+host] <= rep.Metrics["tcp_"+host] {
			t.Fatalf("%s: UDP should beat TCP", host)
		}
	}
}

func TestTab4ConcurrentAccurate(t *testing.T) {
	rep := runQuick(t, "tab4")
	for _, k := range []string{"min_frac_100mbit", "min_frac_200mbit", "min_frac_400mbit"} {
		if v := rep.Metrics[k]; v < 0.75 {
			t.Fatalf("%s: %v (paper: within ε1=0.20 in all but one case)", k, v)
		}
	}
}

func TestSchedNewRelaysFast(t *testing.T) {
	rep := runQuick(t, "sched")
	if v := rep.Metrics["new3_seconds"]; v > 120 {
		t.Fatalf("3 new relays should be measured within minutes: %v s", v)
	}
	if rep.Metrics["hours"] <= 0 {
		t.Fatal("missing whole-network hours metric")
	}
}

func TestSecurityNumbers(t *testing.T) {
	rep := runQuick(t, "security")
	if v := rep.Metrics["max_inflation"]; v < 1.33 || v > 1.34 {
		t.Fatalf("max inflation: %v", v)
	}
	if v := rep.Metrics["detect_1e6"]; v < 0.999 {
		t.Fatalf("1e6-cell forgery detection: %v", v)
	}
}

func TestReportLinesMentionPaper(t *testing.T) {
	// Every report should anchor its output against the paper's numbers
	// somewhere in its lines.
	for _, id := range []string{"fig1", "fig6", "fig9", "tab2"} {
		rep := runQuick(t, id)
		joined := strings.Join(rep.Lines, "\n")
		if !strings.Contains(joined, "paper") {
			t.Errorf("%s output does not reference the paper baseline", id)
		}
	}
}
