package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/eigenspeed"
	"flashflow/internal/peerflow"
	"flashflow/internal/shadow"
	"flashflow/internal/stats"
	"flashflow/internal/torflow"
)

// julyNetwork approximates the July 2019 Tor network used by the §7
// efficiency analysis.
func julyNetwork(n int, totalBps float64) []core.RelayEstimate {
	relays := make([]core.RelayEstimate, n)
	var sum float64
	for i := range relays {
		c := 1 / math.Pow(float64(i+1), 0.7)
		relays[i] = core.RelayEstimate{Name: fmt.Sprintf("r%05d", i), EstimateBps: c}
		sum += c
	}
	for i := range relays {
		relays[i].EstimateBps *= totalBps / sum
		if relays[i].EstimateBps > 998e6 {
			relays[i].EstimateBps = 998e6
		}
	}
	return relays
}

func sched(quick bool) (Report, error) {
	p := core.DefaultParams()
	n, total := 6419, 608e9
	if quick {
		n, total = 2000, 190e9
	}
	relays := julyNetwork(n, total)
	const teamCap = 3e9
	var rep Report
	for _, f := range []struct {
		label string
		value float64
	}{{"2.84 (§7)", core.ExcessFactorPaper7}, {fmt.Sprintf("%.3f (§4.2)", p.ExcessFactor()), p.ExcessFactor()}} {
		res := core.GreedyFastestSchedule(relays, teamCap, f.value, p)
		rep.addf("f=%s: whole network in %d slots = %.1f h (%d relays; paper: ≈599 slots, 5.0 h)",
			f.label, res.SlotsUsed, res.HoursUsed(p), res.RelaysMeasured)
		if f.value == core.ExcessFactorPaper7 {
			rep.metric("hours", res.HoursUsed(p))
			rep.metric("slots", float64(res.SlotsUsed))
		}
	}
	// New relays: median 3 per consensus at the 51 Mbit/s prior.
	occupied := 599.0 / float64(p.SlotsPerPeriod())
	for _, batch := range []int{1, 3, 98} {
		slots := core.NewRelaySlots(batch, 51e6, teamCap, occupied, p)
		rep.addf("new relays ×%-3d: %d slot(s) = %d s (paper: median 30 s, max 13 min)",
			batch, slots, slots*p.SlotSeconds)
		if batch == 3 {
			rep.metric("new3_seconds", float64(slots*p.SlotSeconds))
		}
	}
	// Randomized per-period schedule for 3 BWAuths.
	caps := []float64{teamCap, teamCap, teamCap}
	s, err := core.BuildSchedule([]byte("period-seed"), relays, caps, p)
	if err != nil {
		return Report{}, err
	}
	rep.addf("randomized period schedule: %d slots, %d unscheduled", s.NumSlots, len(s.Unscheduled))
	return rep, nil
}

// shadowSetup builds the Fig. 8/9 network and both weight vectors.
func shadowSetup(quick bool) ([]shadow.RelaySpec, []float64, []float64, error) {
	n, total := 328, 16e9
	if quick {
		n, total = 60, 3e9
	}
	relays := shadow.SampleNetwork(n, total, 42)
	ff, err := shadow.MeasureWithFlashFlow(context.Background(), relays, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	tf, err := shadow.MeasureWithTorFlow(relays, 2)
	if err != nil {
		return nil, nil, nil, err
	}
	return relays, ff, tf, nil
}

func fig8(quick bool) (Report, error) {
	relays, ff, tf, err := shadowSetup(quick)
	if err != nil {
		return Report{}, err
	}
	ffRep := shadow.AnalyzeErrors(relays, ff, ff)
	tfRep := shadow.AnalyzeErrors(relays, tf, nil)
	var rep Report
	rep.addf("FlashFlow: median relay capacity error %.1f%% (paper: 16%%), NCE %.1f%% (paper: 14%%)",
		stats.Median(ffRep.RelayCapacityError)*100, ffRep.NetworkCapacityError*100)
	rep.addf("FlashFlow NWE %.1f%% vs TorFlow NWE %.1f%% (paper: 4%% vs 29%%)",
		ffRep.NetworkWeightError*100, tfRep.NetworkWeightError*100)
	under := 0
	for _, v := range tfRep.RelayWeightErrorLog10 {
		if v < 0 {
			under++
		}
	}
	rep.addf("TorFlow under-weights %.0f%% of relays (paper: >80%%)",
		100*float64(under)/float64(len(relays)))
	rep.metric("ff_nce", ffRep.NetworkCapacityError)
	rep.metric("ff_nwe", ffRep.NetworkWeightError)
	rep.metric("tf_nwe", tfRep.NetworkWeightError)
	return rep, nil
}

func fig9(quick bool) (Report, error) {
	relays, ff, tf, err := shadowSetup(true) // network size from the quick setup keeps runtime sane
	if err != nil {
		return Report{}, err
	}
	cfg := shadow.DefaultConfig()
	if quick {
		cfg.Duration = 2 * time.Minute
	} else {
		cfg.Duration = 5 * time.Minute
	}
	cfg.Clients = shadow.ClientsForUtilization(relays, cfg, 0.35)

	var rep Report
	rep.addf("%-10s %-5s %9s %9s %9s %9s %9s %9s %8s",
		"system", "load", "ttfb(s)", "50KiB(s)", "1MiB(s)", "5MiB(s)", "sd1MiB", "timeout%", "thr(G)")
	type row struct {
		name    string
		weights []float64
	}
	var ffBase, tfBase shadow.Result
	for _, load := range []float64{1.0, 1.15, 1.30} {
		cfg.LoadScale = load
		for _, sys := range []row{{"TorFlow", tf}, {"FlashFlow", ff}} {
			res, err := shadow.Run(cfg, relays, sys.weights)
			if err != nil {
				return Report{}, err
			}
			rep.addf("%-10s %-5.0f %9.2f %9.2f %9.2f %9.2f %9.2f %9.1f %8.2f",
				sys.name, load*100,
				stats.Median(res.TTFBSeconds),
				stats.Median(res.TTLBSeconds["50KiB"]),
				stats.Median(res.TTLBSeconds["1MiB"]),
				stats.Median(res.TTLBSeconds["5MiB"]),
				stats.Stdev(res.TTLBSeconds["1MiB"]),
				res.TimeoutRate*100,
				stats.Median(res.ThroughputBps)/1e9)
			if load == 1.0 {
				if sys.name == "FlashFlow" {
					ffBase = res
				} else {
					tfBase = res
				}
			}
		}
	}
	med := func(r shadow.Result, k string) float64 { return stats.Median(r.TTLBSeconds[k]) }
	if med(tfBase, "1MiB") > 0 {
		imp := 1 - med(ffBase, "1MiB")/med(tfBase, "1MiB")
		rep.addf("FlashFlow median 1 MiB improvement at 100%%: %.0f%% (paper: 29%%)", imp*100)
		rep.metric("improvement_1mib", imp)
	}
	rep.metric("tf_timeout_rate", tfBase.TimeoutRate)
	rep.metric("ff_timeout_rate", ffBase.TimeoutRate)
	return rep, nil
}

func tab2(quick bool) (Report, error) {
	p := core.DefaultParams()
	n := 300
	if quick {
		n = 150
	}
	honest := make([]torflow.RelayState, n)
	for i := range honest {
		capBps := 10e6 * float64(1+i%20)
		honest[i] = torflow.RelayState{
			Name: fmt.Sprintf("r%03d", i), CapacityBps: capBps,
			AdvertisedBps: capBps * 0.6, UtilizationFrac: 0.5,
		}
	}
	scanner := torflow.NewScanner(torflow.DefaultScannerConfig(8))
	// A ×350 self-report lie lands near the literature's demonstrated
	// 177×; the advantage is unbounded in the lie magnitude.
	attacker := torflow.RelayState{Name: "evil", CapacityBps: 10e6, UtilizationFrac: 0.5}
	tfAdv, err := scanner.AttackAdvantage(honest, attacker, 350)
	if err != nil {
		return Report{}, err
	}

	// EigenSpeed and PeerFlow are implemented baselines: a 5-relay
	// colluding clique attacks each.
	esHonest := make([]eigenspeed.Relay, n)
	for i := range esHonest {
		esHonest[i] = eigenspeed.Relay{
			Name: fmt.Sprintf("r%03d", i), CapacityBps: 10e6 * float64(1+i%20),
			Trusted: i%5 == 0,
		}
	}
	esAdv, err := eigenspeed.AttackAdvantage(esHonest, 5, 10e6, eigenspeed.DefaultConfig(9))
	if err != nil {
		return Report{}, err
	}
	pfHonest := make([]peerflow.Relay, n)
	for i := range pfHonest {
		capBps := 10e6 * float64(1+i%20)
		pfHonest[i] = peerflow.Relay{
			Name: fmt.Sprintf("r%03d", i), CapacityBps: capBps,
			WeightBps: capBps * 0.8, Trusted: i%5 == 0,
		}
	}
	pfAdv, err := peerflow.AttackAdvantage(pfHonest, 5, 10e6, peerflow.DefaultConfig(10))
	if err != nil {
		return Report{}, err
	}

	var rep Report
	rep.addf("%-12s %10s %16s %10s %10s", "system", "server BW", "attack advantage", "capacity?", "speed")
	rep.addf("%-12s %10s %15.0f× %10s %10s", "TorFlow", "1 Gbit/s", tfAdv, "inferred", "2 days")
	rep.addf("%-12s %10s %15.1f× %10s %10s", "EigenSpeed", "0", esAdv, "no", "1 day")
	rep.addf("%-12s %10s %15.1f× %10s %10s", "PeerFlow", "0", pfAdv, "inferred", "14 days+")
	rep.addf("%-12s %10s %15.2f× %10s %10s", "FlashFlow", "3 Gbit/s", p.MaxInflation(), "yes", "~5 hours")
	rep.addf("(paper Table 2: TorFlow 177×, EigenSpeed 21.5×, PeerFlow 10×, FlashFlow 1.33×)")
	rep.addf("note: our PeerFlow model aggregates with a trusted-weight median — stronger than the")
	rep.addf("paper's 2/τ-bounded variant — so its measured advantage reads below the literature's 10×")
	rep.metric("torflow_advantage", tfAdv)
	rep.metric("eigenspeed_advantage", esAdv)
	rep.metric("peerflow_advantage", pfAdv)
	rep.metric("flashflow_advantage", p.MaxInflation())
	return rep, nil
}

func security(bool) (Report, error) {
	p := core.DefaultParams()
	var rep Report
	rep.addf("forged-echo detection probability at p=%g:", p.CheckProb)
	for _, k := range []float64{1e3, 1e4, 1e5, 1e6} {
		rep.addf("  k=%8.0f forged cells → detected w.p. %.6f", k, core.DetectionProbability(p.CheckProb, k))
	}
	rep.addf("burst-only relay (high capacity in fraction q of slots), success probability:")
	for _, q := range []float64{0.1, 0.25, 0.4, 0.49} {
		rep.addf("  q=%.2f: n=3 → %.4f, n=5 → %.4f, n=9 → %.4f", q,
			core.BurstAttackSuccessProbability(3, q),
			core.BurstAttackSuccessProbability(5, q),
			core.BurstAttackSuccessProbability(9, q))
	}
	rep.addf("lying-relay inflation bound: 1/(1−r) = %.3f at r = %.2f", p.MaxInflation(), p.Ratio)
	rep.metric("max_inflation", p.MaxInflation())
	rep.metric("detect_1e6", core.DetectionProbability(p.CheckProb, 1e6))
	return rep, nil
}
