package experiments

import (
	"context"
	"fmt"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/hosts"
	"flashflow/internal/iperf"
	"flashflow/internal/netsim"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
	"flashflow/internal/tcp"
)

// paperPaths models the four measurer→US-SW paths of Table 1. Virtual
// shared-hosting vantage points carry more bias, exactly the effect the
// excess factor f absorbs (§4.2, Appendix E.1).
func paperPaths() []core.PathModel {
	return []core.PathModel{
		{RTT: hosts.USNW.RTTToUSSW, LinkBps: hosts.USNW.MeasuredBps, LossRate: 1.2e-5, BiasSigma: 0.12, JitterSigma: 0.05},
		{RTT: hosts.USE.RTTToUSSW, LinkBps: hosts.USE.MeasuredBps, LossRate: 2.5e-5, BiasSigma: 0.06, JitterSigma: 0.03},
		{RTT: hosts.IN.RTTToUSSW, LinkBps: hosts.IN.MeasuredBps, LossRate: 1.6e-4, BiasSigma: 0.22, JitterSigma: 0.08},
		{RTT: hosts.NL.RTTToUSSW, LinkBps: hosts.NL.MeasuredBps, LossRate: 6e-5, BiasSigma: 0.12, JitterSigma: 0.05},
	}
}

func paperTeam() []*core.Measurer {
	out := make([]*core.Measurer, 0, 4)
	for _, s := range hosts.Measurers() {
		out = append(out, &core.Measurer{Name: s.Name, CapacityBps: s.MeasuredBps, Cores: s.Cores})
	}
	return out
}

func ussSWTarget(limitBps float64) *core.SimTarget {
	return &core.SimTarget{
		Relay:       relay.New(relay.Config{Name: "t", TorCapBps: hosts.GroundTruthTorCapacity(limitBps)}),
		LinkBps:     hosts.USSW.MeasuredBps,
		Behavior:    core.BehaviorHonest,
		CapSigma:    0.035,
		SecondSigma: 0.015,
	}
}

func tab1(quick bool) (Report, error) {
	var rep Report
	rep.addf("%-6s %-8s %-6s %10s %11s %8s %6s %4s", "host", "virtual", "type", "claimed", "measured", "RTT", "cores", "RAM")
	for _, s := range hosts.All() {
		kind := "D.C."
		if !s.Datacenter {
			kind = "Res."
		}
		claimed := "N/A"
		if s.ClaimedBps > 0 {
			claimed = fmt.Sprintf("%.0f Mbit", s.ClaimedBps/1e6)
		}
		rep.addf("%-6s %-8v %-6s %10s %8.0f Mb %8s %6d %4d",
			s.Name, s.Virtual, kind, claimed, s.MeasuredBps/1e6, s.RTTToUSSW, s.Cores, s.RAMGiB)
	}
	// Reproduce the "BW (measured)" methodology: all-to-one UDP iPerf.
	duration := 60 * time.Second
	if quick {
		duration = 10 * time.Second
	}
	rep.addf("all-to-one UDP saturation (Table 1 'BW (measured)' method):")
	for _, target := range hosts.All() {
		senders := make([]*netsim.Host, 0, 4)
		for _, s := range hosts.All() {
			if s.Name != target.Name {
				senders = append(senders, s.NewHost())
			}
		}
		res, err := iperf.AllToOne(target.NewHost(), senders, duration)
		if err != nil {
			return Report{}, err
		}
		rep.addf("  %-6s measured %7.0f Mbit/s (table: %.0f)", target.Name, res.MedianBps/1e6, target.MeasuredBps/1e6)
		rep.metric("measured_"+target.Name, res.MedianBps)
	}
	return rep, nil
}

func tab3(quick bool) (Report, error) {
	duration := 60 * time.Second
	if quick {
		duration = 10 * time.Second
	}
	var rep Report
	rep.addf("%-6s %14s %14s  (bidirectional iPerf vs US-SW)", "host", "TCP (Mbit/s)", "UDP (Mbit/s)")
	for _, s := range hosts.Measurers() {
		tcpRes, err := iperf.Pairwise(hosts.USSW.NewHost(), s.NewHost(), s.RTTToUSSW, iperf.TCP, duration)
		if err != nil {
			return Report{}, err
		}
		udpRes, err := iperf.Pairwise(hosts.USSW.NewHost(), s.NewHost(), s.RTTToUSSW, iperf.UDP, duration)
		if err != nil {
			return Report{}, err
		}
		rep.addf("%-6s %14.0f %14.0f", s.Name, tcpRes.MedianBps/1e6, udpRes.MedianBps/1e6)
		rep.metric("tcp_"+s.Name, tcpRes.MedianBps)
		rep.metric("udp_"+s.Name, udpRes.MedianBps)
	}
	return rep, nil
}

func fig11(bool) (Report, error) {
	// Lab pair: 10 Gbit/s link, 0.13 ms RTT; Tor's cell scheduling is
	// CPU-bound at ≈1,248 Mbit/s, reached near 20 sockets.
	lab := tcp.DefaultConfig(10e9, 130*time.Microsecond)
	lab.PerSocketOverhead = 0.004
	var rep Report
	rep.addf("%8s %18s %18s  (paper: sockets peak 1,248 Mbit/s at 20)", "n", "sockets (Mbit/s)", "circuits (Mbit/s)")
	peak, peakN := 0.0, 0
	for _, n := range []int{1, 2, 5, 10, 13, 20, 40, 60, 80, 100} {
		viaSockets := minF(lab.AggregateBps(n), hosts.LabTorProcessingLimit*socketRamp(n))
		// Adding circuits on a single socket cannot exceed the
		// single-socket ceiling (KIST's limitation, Appendix C.2).
		viaCircuits := minF(lab.AggregateBps(1), hosts.LabTorProcessingLimit*socketRamp(1))
		rep.addf("%8d %18.0f %18.0f", n, viaSockets/1e6, viaCircuits/1e6)
		if viaSockets > peak {
			peak, peakN = viaSockets, n
		}
	}
	rep.addf("peak %d Mbit/s at %d sockets", int(peak/1e6), peakN)
	rep.metric("peak_mbit", peak/1e6)
	rep.metric("peak_sockets", float64(peakN))
	return rep, nil
}

// socketRamp models Tor's throughput ramping with busy sockets: CPU is
// fully consumed from 13 sockets (Appendix C.2) but scheduling efficiency
// keeps improving to a peak at 20, after which bookkeeping overhead erodes
// throughput.
func socketRamp(n int) float64 {
	switch {
	case n <= 0:
		return 0
	case n < 20:
		return 0.25 + 0.75*float64(n)/20
	case n == 20:
		return 1
	default:
		over := 1 - 0.0012*float64(n-20)
		if over < 0.7 {
			over = 0.7
		}
		return over
	}
}

func fig12(bool) (Report, error) {
	var rep Report
	rep.addf("%8s %18s %18s  (1 Gbit/s link; tuned = 64 MiB buffers)", "RTT", "default (Mbit/s)", "tuned (Mbit/s)")
	for _, rtt := range []time.Duration{28 * time.Millisecond, 120 * time.Millisecond, 340 * time.Millisecond} {
		def := tcp.DefaultConfig(1e9, rtt)
		tun := def.Tuned()
		d := minF(def.SingleSocketBps(), 1269e6)
		u := minF(tun.SingleSocketBps(), 1269e6)
		rep.addf("%8s %18.0f %18.0f", rtt, d/1e6, u/1e6)
		rep.metric(fmt.Sprintf("tuned_%dms", rtt.Milliseconds()), u)
	}
	return rep, nil
}

func fig13(bool) (Report, error) {
	var rep Report
	rep.addf("%-6s %8s %8s %8s %8s  (default/tuned median ratio; →1 as sockets grow)", "host", "n=1", "n=5", "n=20", "n=100")
	for _, s := range hosts.Measurers() {
		def := tcp.DefaultConfig(minF(s.MeasuredBps, hosts.USSW.MeasuredBps), s.RTTToUSSW)
		tun := def.Tuned()
		row := make([]float64, 0, 4)
		for _, n := range []int{1, 5, 20, 100} {
			row = append(row, def.AggregateBps(n)/tun.AggregateBps(n))
		}
		rep.addf("%-6s %8.2f %8.2f %8.2f %8.2f", s.Name, row[0], row[1], row[2], row[3])
		rep.metric("ratio1_"+s.Name, row[0])
		rep.metric("ratio100_"+s.Name, row[3])
	}
	return rep, nil
}

// fig14Loss gives each path a loss rate that reproduces the paper's
// socket-count requirements (IN peaks last, near s=160).
func fig14Loss(name string) float64 {
	switch name {
	case "IN":
		return 1.15e-4
	case "NL":
		return 6e-5
	case "US-E":
		return 2.5e-5
	default: // US-NW
		return 1.2e-5
	}
}

func fig14(bool) (Report, error) {
	var rep Report
	socketCounts := []int{1, 10, 20, 40, 80, 120, 160, 200, 240, 300}
	rep.addf("%-6s %s  (Tor throughput, Mbit/s, by socket count; paper: IN peaks at 160)", "host", fmt.Sprint(socketCounts))
	slowestPeakN := 0
	for _, s := range hosts.Measurers() {
		cfg := tcp.DefaultConfig(minF(s.MeasuredBps, hosts.USSW.MeasuredBps), s.RTTToUSSW)
		cfg.LossRate = fig14Loss(s.Name)
		row := make([]string, 0, len(socketCounts))
		peak, peakN := 0.0, 0
		for _, n := range socketCounts {
			v := minF(cfg.AggregateBps(n), hosts.USSWUnlimitedTorCapacity)
			row = append(row, fmt.Sprintf("%.0f", v/1e6))
			if v > peak {
				peak, peakN = v, n
			}
		}
		rep.addf("%-6s %v  peak at %d sockets", s.Name, row, peakN)
		rep.metric("peak_sockets_"+s.Name, float64(peakN))
		if s.Name == "IN" {
			slowestPeakN = peakN
		}
	}
	rep.addf("slowest host (IN) peaks at %d sockets → s = %d", slowestPeakN, slowestPeakN)
	return rep, nil
}

// runAccuracyMeasurement performs one fixed-allocation measurement of a
// throughput-limited US-SW target and returns the median-of-t estimate as
// a fraction of ground truth.
func runAccuracyMeasurement(backend *core.SimBackend, team []*core.Measurer, target string, truthBps, multiplier float64, seconds int, p core.Params) (float64, error) {
	need := multiplier * truthBps
	if need > core.TeamCapacityBps(team) {
		need = core.TeamCapacityBps(team)
	}
	alloc, err := core.AllocateEven(team, need, p)
	if err != nil {
		return 0, err
	}
	data, err := backend.RunMeasurement(context.Background(), target, alloc, seconds, nil)
	if err != nil {
		return 0, err
	}
	agg, err := core.Aggregate(data, p.Ratio)
	if err != nil {
		return 0, err
	}
	return agg.EstimateBytesPerSec * 8 / truthBps, nil
}

// accuracyLimits are the configured throughput limits of §6.2 (0 means
// unlimited).
var accuracyLimits = []float64{10e6, 250e6, 500e6, 750e6, 0}

// subsetSweep measures a limit-configured target with every team subset
// that has sufficient capacity for multiplier m (Appendix E.2's protocol),
// splitting the assignment evenly across the subset. It returns the
// per-measurement fractions of ground truth.
func subsetSweep(limit float64, m float64, seconds, repeats int, seedBase int64, p core.Params) ([]float64, error) {
	team := paperTeam()
	paths := paperPaths()
	truth := hosts.GroundTruthTorCapacity(limit)
	var fracs []float64
	for mask := 1; mask < 1<<len(team); mask++ {
		subTeam := make([]*core.Measurer, 0, len(team))
		subPaths := make([]core.PathModel, 0, len(paths))
		var capSum float64
		for b := 0; b < len(team); b++ {
			if mask&(1<<b) != 0 {
				subTeam = append(subTeam, &core.Measurer{Name: team[b].Name, CapacityBps: team[b].CapacityBps, Cores: team[b].Cores})
				subPaths = append(subPaths, paths[b])
				capSum += team[b].CapacityBps
			}
		}
		if capSum < m*truth {
			continue
		}
		backend := core.NewSimBackend(subPaths, seedBase*131+int64(mask))
		backend.AddTarget("t", ussSWTarget(limit))
		for r := 0; r < repeats; r++ {
			frac, err := runAccuracyMeasurement(backend, subTeam, "t", truth, m, seconds, p)
			if err != nil {
				return nil, err
			}
			fracs = append(fracs, frac)
		}
	}
	return fracs, nil
}

func fig15(quick bool) (Report, error) {
	p := core.DefaultParams()
	repeats := 7
	if quick {
		repeats = 2
	}
	var rep Report
	rep.addf("%-6s %10s %10s %10s  (fraction of ground truth; paper picks m=2.25)", "m", "min", "median", "max")
	for _, m := range []float64{1.5, 1.75, 2.0, 2.25, 2.5} {
		var all []float64
		for li, limit := range accuracyLimits {
			fr, err := subsetSweep(limit, m, p.SlotSeconds, repeats, int64(m*100)+int64(li), p)
			if err != nil {
				return Report{}, err
			}
			all = append(all, fr...)
		}
		rep.addf("%-6.2f %10.3f %10.3f %10.3f", m, stats.Min(all), stats.Median(all), stats.Max(all))
		rep.metric(fmt.Sprintf("min_frac_m%.2f", m), stats.Min(all))
	}
	return rep, nil
}

func fig16(quick bool) (Report, error) {
	p := core.DefaultParams()
	repeats := 7
	if quick {
		repeats = 2
	}
	var rep Report
	rep.addf("%-10s %10s %10s  (median strategy; paper: 30 s range [0.84, 1.01])", "duration", "min", "max")
	for _, seconds := range []int{10, 20, 30, 60} {
		var all []float64
		for li, limit := range accuracyLimits {
			fr, err := subsetSweep(limit, p.Multiplier, seconds, repeats, 400+int64(seconds)+int64(li), p)
			if err != nil {
				return Report{}, err
			}
			all = append(all, fr...)
		}
		rep.addf("%-10s %10.3f %10.3f", fmt.Sprintf("%ds", seconds), stats.Min(all), stats.Max(all))
		rep.metric(fmt.Sprintf("min_frac_%ds", seconds), stats.Min(all))
		rep.metric(fmt.Sprintf("max_frac_%ds", seconds), stats.Max(all))
	}
	return rep, nil
}

func fig6(quick bool) (Report, error) {
	p := core.DefaultParams()
	repeats := 7
	if quick {
		repeats = 3
	}
	labels := []string{"10 Mbit/s", "250 Mbit/s", "500 Mbit/s", "750 Mbit/s", "unlimited"}

	var rep Report
	var all []float64
	rep.addf("%-12s %8s %8s %8s  (per-measurement fraction of ground truth)", "capacity", "min", "median", "max")
	for i, limit := range accuracyLimits {
		fracs, err := subsetSweep(limit, p.Multiplier, p.SlotSeconds, repeats, int64(i)*31, p)
		if err != nil {
			return Report{}, err
		}
		all = append(all, fracs...)
		rep.addf("%-12s %8.3f %8.3f %8.3f", labels[i], stats.Min(fracs), stats.Median(fracs), stats.Max(fracs))
	}
	within11 := 0
	within20 := 0
	for _, f := range all {
		if f >= 0.89 && f <= 1.11 {
			within11++
		}
		if f >= 1-p.Eps1 && f <= 1+p.Eps2 {
			within20++
		}
	}
	f11 := float64(within11) / float64(len(all))
	f20 := float64(within20) / float64(len(all))
	rep.addf("within 11%% of truth: %.1f%% of measurements (paper: 95%%)", f11*100)
	rep.addf("within (−ε1,+ε2) = (−20%%,+5%%): %.1f%% (paper: 99.8%%)", f20*100)
	rep.metric("frac_within_11pct", f11)
	rep.metric("frac_within_eps", f20)
	return rep, nil
}

func fig7(bool) (Report, error) {
	// 250 Mbit/s relay, 50 Mbit/s client background, r = 0.1, measured by
	// NL. Report the per-second series around the measurement.
	p := core.DefaultParams()
	p.Ratio = 0.1
	nlPath := []core.PathModel{paperPaths()[3]}
	backend := core.NewSimBackend(nlPath, 99)
	rel := relay.New(relay.Config{Name: "t", RateBps: 250e6, BurstBits: 60e6, Ratio: 0.1})
	tgt := &core.SimTarget{
		Relay:         rel,
		LinkBps:       hosts.USSW.MeasuredBps,
		Behavior:      core.BehaviorHonest,
		BackgroundBps: func(int) float64 { return 50e6 },
	}
	backend.AddTarget("t", tgt)
	team := []*core.Measurer{{Name: "NL", CapacityBps: hosts.NL.MeasuredBps, Cores: 2}}

	// Before: relay carries only background.
	var rep Report
	rep.addf("before measurement: background flows at 50 Mbit/s unrestricted")
	for s := 0; s < 3; s++ {
		if _, _, err := rel.Step(time.Second, 0, 50e6); err != nil {
			return Report{}, err
		}
	}
	_, bgBefore := rel.LastRates()

	alloc, err := core.AllocateGreedy(team, core.RequiredBps(250e6, p), p)
	if err != nil {
		return Report{}, err
	}
	data, err := backend.RunMeasurement(context.Background(), "t", alloc, p.SlotSeconds, nil)
	if err != nil {
		return Report{}, err
	}
	agg, err := core.Aggregate(data, p.Ratio)
	if err != nil {
		return Report{}, err
	}
	for j := 0; j < len(agg.PerSecondTotals); j += 5 {
		rep.addf("  t=%2ds meas=%6.1f Mbit/s bg=%5.1f Mbit/s total=%6.1f",
			j, agg.PerSecondMeas[j]*8/1e6, agg.PerSecondNorm[j]*8/1e6, agg.PerSecondTotals[j]*8/1e6)
	}
	// After: background returns immediately.
	rel.SetMeasuring(false)
	for s := 0; s < 3; s++ {
		if _, _, err := rel.Step(time.Second, 0, 50e6); err != nil {
			return Report{}, err
		}
	}
	_, bgAfter := rel.LastRates()

	bgDuring := stats.Median(agg.PerSecondNorm) * 8
	rep.addf("background: before %.1f, during %.1f (clamped to r·cap = 25), after %.1f Mbit/s",
		bgBefore/1e6, bgDuring/1e6, bgAfter/1e6)
	rep.addf("estimate: %.1f Mbit/s of a 250 Mbit/s relay (ground truth %.1f)",
		agg.EstimateBytesPerSec*8/1e6, hosts.GroundTruthTorCapacity(250e6)/1e6)
	rep.metric("bg_during_mbit", bgDuring/1e6)
	rep.metric("estimate_mbit", agg.EstimateBytesPerSec*8/1e6)
	return rep, nil
}

func tab4(quick bool) (Report, error) {
	// Concurrent measurement: 8×100, 4×200, 2×400 Mbit/s relays measured
	// by US-E + NL together. The target host's 954 Mbit/s link is shared
	// by all concurrent measurements.
	p := core.DefaultParams()
	groups := []struct {
		limit float64
		count int
	}{{100e6, 8}, {200e6, 4}, {400e6, 2}}
	var rep Report
	rep.addf("%-10s %-7s %12s %14s  (measurers: US-E + NL)", "limit", "relays", "truth (Mbit)", "range (rel)")
	for gi, g := range groups {
		truth := hosts.GroundTruthTorCapacity(g.limit)
		var fracs []float64
		useTeam := []*core.Measurer{
			{Name: "US-E", CapacityBps: hosts.USE.MeasuredBps / float64(g.count), Cores: 12},
			{Name: "NL", CapacityBps: hosts.NL.MeasuredBps / float64(g.count), Cores: 2},
		}
		usePaths := []core.PathModel{paperPaths()[1], paperPaths()[3]}
		for r := 0; r < g.count; r++ {
			backend := core.NewSimBackend(usePaths, int64(gi*100+r))
			tgt := ussSWTarget(g.limit)
			// Concurrent measurements share the target link.
			tgt.LinkBps = hosts.USSW.MeasuredBps / float64(g.count)
			backend.AddTarget("t", tgt)
			frac, err := runAccuracyMeasurement(backend, useTeam, "t", truth, p.Multiplier, p.SlotSeconds, p)
			if err != nil {
				return Report{}, err
			}
			fracs = append(fracs, frac)
		}
		rep.addf("%-10.0f %-7d %12.1f [%.2f, %.2f]",
			g.limit/1e6, g.count, truth/1e6, stats.Min(fracs), stats.Max(fracs))
		rep.metric(fmt.Sprintf("min_frac_%dmbit", int(g.limit/1e6)), stats.Min(fracs))
	}
	_ = quick
	return rep, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
