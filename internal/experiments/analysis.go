package experiments

import (
	"math"
	"time"

	"flashflow/internal/metrics"
	"flashflow/internal/speedtest"
	"flashflow/internal/stats"
)

// archiveFor builds the synthetic metrics archive at bench or paper scale.
func archiveFor(quick bool) (*metrics.Archive, error) {
	p := metrics.DefaultArchiveParams()
	if quick {
		p.NumRelays = 120
		p.Span = 450 * 24 * time.Hour
	} else {
		p.NumRelays = 400
		p.Span = 3 * 365 * 24 * time.Hour
	}
	return metrics.GenerateArchive(p)
}

// periods lists the figure legends' estimation windows.
func periods(a *metrics.Archive) []struct {
	name string
	w    int
} {
	return []struct {
		name string
		w    int
	}{
		{"day", a.PeriodDay()},
		{"week", a.PeriodWeek()},
		{"month", a.PeriodMonth()},
		{"year", a.PeriodYear()},
	}
}

func fig1(quick bool) (Report, error) {
	a, err := archiveFor(quick)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-6s %8s %8s %8s  (paper: day 7%% median, year 28%%; p25 up to 49%%)", "period", "median", "p25", "p75")
	for _, p := range periods(a) {
		rce := a.MeanRCEPerRelay(p.w)
		med := stats.Median(rce)
		rep.addf("%-6s %7.1f%% %7.1f%% %7.1f%%", p.name, med*100,
			stats.Percentile(rce, 25)*100, stats.Percentile(rce, 75)*100)
		rep.metric("median_rce_"+p.name, med)
	}
	return rep, nil
}

func fig2(quick bool) (Report, error) {
	a, err := archiveFor(quick)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-6s %8s %8s  (paper medians: 5%%/14%%/22%%/36%%, max 60%%)", "period", "median", "max")
	for _, p := range periods(a) {
		nce := a.NCESeries(p.w)
		med := stats.Median(nce)
		rep.addf("%-6s %7.1f%% %7.1f%%", p.name, med*100, stats.Max(nce)*100)
		rep.metric("median_nce_"+p.name, med)
	}
	return rep, nil
}

func fig3(quick bool) (Report, error) {
	a, err := archiveFor(quick)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-6s %14s %12s  (paper: >85%% of relays under-weighted)", "period", "underweighted", "med log10")
	for _, p := range periods(a) {
		rwe := a.MeanRWEPerRelay(p.w)
		under := 0
		logs := make([]float64, 0, len(rwe))
		for _, v := range rwe {
			if v < 1 {
				under++
			}
			if v > 0 {
				logs = append(logs, math.Log10(v))
			}
		}
		frac := float64(under) / float64(len(rwe))
		rep.addf("%-6s %13.1f%% %12.3f", p.name, frac*100, stats.Median(logs))
		rep.metric("underweighted_frac_"+p.name, frac)
	}
	return rep, nil
}

func fig4(quick bool) (Report, error) {
	a, err := archiveFor(quick)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-6s %8s %8s  (paper medians: 21%%/22%%/24%%/30%%)", "period", "median", "max")
	for _, p := range periods(a) {
		nwe := a.NWESeries(p.w)
		med := stats.Median(nwe)
		rep.addf("%-6s %7.1f%% %7.1f%%", p.name, med*100, stats.Max(nwe)*100)
		rep.metric("median_nwe_"+p.name, med)
	}
	return rep, nil
}

func fig10(quick bool) (Report, error) {
	a, err := archiveFor(quick)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("%-6s %12s %12s  (paper adv RSD medians: 32%%/55%%/62%%/65%%)", "period", "adv RSD med", "wgt RSD med")
	for _, p := range periods(a) {
		adv := stats.Median(a.MeanAdvertisedRSDPerRelay(p.w))
		wgt := stats.Median(a.MeanWeightRSDPerRelay(p.w))
		rep.addf("%-6s %11.1f%% %11.1f%%", p.name, adv*100, wgt*100)
		rep.metric("adv_rsd_"+p.name, adv)
	}
	return rep, nil
}

func fig5(quick bool) (Report, error) {
	p := speedtest.DefaultParams()
	if quick {
		p.NumRelays = 200
	}
	tl, s, err := speedtest.Run(p)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rep.addf("baseline capacity estimate: %6.1f Gbit/s", s.BaselineBps/1e9)
	rep.addf("peak after speed test:      %6.1f Gbit/s (gain %.0f%%; paper ≈50%%)", s.PeakBps/1e9, s.GainFrac*100)
	rep.addf("true network capacity:      %6.1f Gbit/s", tl.TrueCapacityBps/1e9)
	rep.addf("weight error: baseline %.1f%% → peak %.1f%% (paper: +5–10 points)",
		s.NWEBaseline*100, s.NWEPeak*100)
	// Down-sampled capacity curve: every 12 hours.
	for h := 0; h < len(tl.Hours); h += 24 {
		rep.addf("  t=%4.0fh capacity=%6.1f Gbit/s  NWE=%4.1f%%",
			tl.Hours[h].Hours(), tl.CapacityEstimateBps[h]/1e9, tl.NWE[h]*100)
	}
	rep.metric("gain_frac", s.GainFrac)
	rep.metric("nwe_rise", s.NWEPeak-s.NWEBaseline)
	return rep, nil
}
