// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment is addressable by the IDs used in
// DESIGN.md's per-experiment index (fig1…fig16, tab1…tab4, sched,
// security); cmd/experiments prints them and bench_test.go reports their
// headline metrics.
package experiments

import (
	"fmt"
	"sort"
)

// Report is one experiment's regenerated output.
type Report struct {
	ID    string
	Title string
	// Lines holds the human-readable rows/series that correspond to the
	// paper's artifact.
	Lines []string
	// Metrics holds headline numeric results, consumed by the bench
	// harness via testing.B.ReportMetric.
	Metrics map[string]float64
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// runner builds one experiment. quick selects a smaller configuration for
// use in benchmarks; full runs paper-scale settings.
type runner struct {
	title string
	fn    func(quick bool) (Report, error)
}

var registry = map[string]runner{
	"fig1":     {"Relay capacity error CDF (11-year archive analysis)", fig1},
	"fig2":     {"Network capacity error over time", fig2},
	"fig3":     {"Relay weight error CDF (log10)", fig3},
	"fig4":     {"Network weight error over time", fig4},
	"fig5":     {"Relay speed test experiment", fig5},
	"fig6":     {"FlashFlow accuracy without background traffic", fig6},
	"fig7":     {"Measurement with client background traffic", fig7},
	"fig8":     {"Shadow measurement error: FlashFlow vs TorFlow", fig8},
	"fig9":     {"Shadow performance: TorFlow vs FlashFlow at 100/115/130% load", fig9},
	"fig10":    {"Capacity and weight variation (RSD)", fig10},
	"fig11":    {"Tor processing limits vs sockets/circuits", fig11},
	"fig12":    {"Single-socket throughput: default vs tuned kernel", fig12},
	"fig13":    {"Default/tuned throughput ratio vs socket count", fig13},
	"fig14":    {"Throughput vs socket count per measurer host", fig14},
	"fig15":    {"Multiplier sweep", fig15},
	"fig16":    {"Measurement duration sweep", fig16},
	"tab1":     {"Internet host inventory and measured bandwidth", tab1},
	"tab2":     {"Load-balancing system comparison (attack advantage)", tab2},
	"tab3":     {"Pairwise host throughput (iPerf)", tab3},
	"tab4":     {"Concurrent measurement accuracy", tab4},
	"sched":    {"Network measurement efficiency (whole network, new relays)", sched},
	"security": {"Security analysis numbers (§5)", security},
	// The adversarial robustness matrix: live §5 attacks against
	// FlashFlow vs their analogs on the baselines (run
	// `cmd/experiments adversary-matrix` for the JSON report CI gates on).
	"adversary-matrix": {"Adversarial robustness matrix: attacks × estimators", adversaryMatrix},
	// Ablations of the design choices (not paper artifacts; DESIGN.md §6).
	"ablation-ratio":    {"Ablation: normal-traffic ratio r vs inflation and client impact", ablationRatio},
	"ablation-check":    {"Ablation: echo-check probability p vs detection", ablationCheck},
	"ablation-schedule": {"Ablation: randomized schedule vs burst-only attacker (Monte Carlo)", ablationSchedule},
	"ablation-duration": {"Ablation: slot length t vs whole-network time", ablationDuration},
	"ablation-dynamic":  {"Extension (§9): dynamic measurements only reduce weights", ablationDynamic},
	"ablation-family":   {"Extension (§5): Sybil detection by simultaneous pair measurement", ablationFamily},
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's title.
func Title(id string) (string, bool) {
	r, ok := registry[id]
	return r.title, ok
}

// Run executes one experiment.
func Run(id string, quick bool) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	rep, err := r.fn(quick)
	if err != nil {
		return Report{}, fmt.Errorf("experiment %s: %w", id, err)
	}
	rep.ID = id
	rep.Title = r.title
	return rep, nil
}
