package coord

import (
	"net"
	"sync"
	"time"

	"flashflow/internal/wire"
)

// Pool is a keyed connection pool for measurement connections, keyed per
// (target, measurer identity) pair. A continuously running coordinator
// measures every relay every round; the pool keeps each round's
// authenticated connections alive so the next round's slots skip the TCP
// dial and identity handshake (the target keeps a connection's
// authentication for its lifetime, and internal/wire builds a fresh set
// of multiplexed measurement circuits per slot on a reused connection —
// one warm connection per target per measurer carries the whole slot, so
// the pool's steady-state size is the team size times the population, not
// times the socket count).
//
// Idle connections are evicted when they outlive IdleTTL or fail the
// health probe, and at most MaxIdlePerTarget are retained per key; the
// pool therefore never grows beyond cap even if a round briefly opens more
// connections than it can park.
type Pool struct {
	// MaxIdlePerTarget bounds retained idle connections per target.
	MaxIdlePerTarget int
	// IdleTTL is how long an idle connection stays eligible for reuse.
	IdleTTL time.Duration

	mu     sync.Mutex
	idle   map[string][]*idleEntry
	closed bool

	// Counters; guarded by mu.
	hits, misses, evictions, overflow int64
}

type idleEntry struct {
	conn   *pooledConn
	parked time.Time
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	// Hits counts dials served from the pool; Misses counts real dials.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts idle connections dropped as stale or unhealthy;
	// Overflow counts healthy returns closed because the target's idle
	// list was full.
	Evictions int64 `json:"evictions"`
	Overflow  int64 `json:"overflow"`
	// Idle is the current number of parked connections across targets.
	Idle int `json:"idle"`
}

// NewPool creates a pool. Nonpositive arguments select the defaults of 4
// idle connections per target and a 90-second TTL.
func NewPool(maxIdlePerTarget int, idleTTL time.Duration) *Pool {
	if maxIdlePerTarget <= 0 {
		maxIdlePerTarget = 4
	}
	if idleTTL <= 0 {
		idleTTL = 90 * time.Second
	}
	return &Pool{
		MaxIdlePerTarget: maxIdlePerTarget,
		IdleTTL:          idleTTL,
		idle:             make(map[string][]*idleEntry),
	}
}

// Dialer wraps a wire.Dialer with pool lookup: Get a parked connection
// under the given key if a healthy one exists, otherwise dial fresh. The
// returned connections implement wire.Session, so the measurer skips the
// identity handshake on reuse and marks clean completions reusable; their
// Close parks reusable connections back into the pool.
//
// The key must identify both the target and the dialing measurer identity
// (e.g. "relay7/m0"): the target binds authentication to the connection,
// so sharing a key across identities would let one measurer silently ride
// a connection authenticated as another.
func (p *Pool) Dialer(key string, dial wire.Dialer) wire.Dialer {
	return func() (net.Conn, error) {
		if c := p.get(key); c != nil {
			return c, nil
		}
		raw, err := dial()
		if err != nil {
			return nil, err
		}
		return &pooledConn{Conn: raw, pool: p, key: key}, nil
	}
}

// get pops the most recently parked healthy connection for the key.
func (p *Pool) get(key string) *pooledConn {
	p.mu.Lock()
	for {
		list := p.idle[key]
		n := len(list)
		if n == 0 {
			p.misses++
			p.mu.Unlock()
			return nil
		}
		e := list[n-1]
		p.idle[key] = list[:n-1]
		if time.Since(e.parked) > p.IdleTTL {
			p.evictions++
			p.mu.Unlock()
			e.conn.Conn.Close()
			p.mu.Lock()
			continue
		}
		// Probe outside the lock: the probe does a deadline read.
		p.mu.Unlock()
		if !connHealthy(e.conn.Conn) {
			e.conn.Conn.Close()
			p.mu.Lock()
			p.evictions++
			continue
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		e.conn.reusable = false
		return e.conn
	}
}

// put parks a reusable connection, closing it instead if the pool is
// closed or the key's idle list is at cap.
func (p *Pool) put(c *pooledConn) error {
	p.mu.Lock()
	if p.closed || len(p.idle[c.key]) >= p.MaxIdlePerTarget {
		p.overflow++
		p.mu.Unlock()
		return c.Conn.Close()
	}
	p.idle[c.key] = append(p.idle[c.key], &idleEntry{conn: c, parked: time.Now()})
	p.mu.Unlock()
	return nil
}

// Prune drops idle connections past their TTL; the coordinator calls it
// between rounds so a shrunk schedule does not pin dead sockets.
func (p *Pool) Prune() {
	p.mu.Lock()
	var stale []*idleEntry
	for key, list := range p.idle {
		kept := list[:0]
		for _, e := range list {
			if time.Since(e.parked) > p.IdleTTL {
				stale = append(stale, e)
				p.evictions++
			} else {
				kept = append(kept, e)
			}
		}
		p.idle[key] = kept
	}
	p.mu.Unlock()
	for _, e := range stale {
		e.conn.Conn.Close()
	}
}

// Close closes every idle connection and makes future puts close instead
// of parking.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	var all []*idleEntry
	for _, list := range p.idle {
		all = append(all, list...)
	}
	p.idle = make(map[string][]*idleEntry)
	p.mu.Unlock()
	for _, e := range all {
		e.conn.Conn.Close()
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, list := range p.idle {
		idle += len(list)
	}
	return PoolStats{
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
		Overflow:  p.overflow,
		Idle:      idle,
	}
}

// connHealthy probes an idle connection with a zero-deadline read: a
// timeout means the peer is quietly waiting (healthy); EOF, any other
// error, or stray bytes (protocol desync) mean the connection is unusable.
func connHealthy(c net.Conn) bool {
	if err := c.SetReadDeadline(time.Now()); err != nil {
		return false
	}
	var b [1]byte
	_, err := c.Read(b[:])
	if rerr := c.SetReadDeadline(time.Time{}); rerr != nil {
		return false
	}
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// pooledConn is a pool-managed connection. It implements wire.Session so
// the measurer can skip re-authentication and flag clean completions; its
// Close parks the connection instead of closing when the last measurement
// ended cleanly. The session fields are only touched by the goroutine
// currently measuring on the connection; handoff between goroutines is
// ordered by the pool mutex.
type pooledConn struct {
	net.Conn
	pool *Pool
	key  string

	authed   bool
	reusable bool
}

var _ wire.Session = (*pooledConn)(nil)
var _ wire.NetConner = (*pooledConn)(nil)

func (c *pooledConn) Authenticated() bool { return c.authed }
func (c *pooledConn) MarkAuthenticated()  { c.authed = true }
func (c *pooledConn) MarkReusable()       { c.reusable = true }

// NetConn exposes the underlying connection so the wire layer's vectored
// batch writes reach the real *net.TCPConn (net.Buffers only does a true
// writev on an unwrapped TCP connection). Reads and single writes stay on
// the wrapper; only Close carries pool semantics, and the wire layer
// never closes through the transport.
func (c *pooledConn) NetConn() net.Conn { return c.Conn }

// Close parks the connection if the measurement marked it reusable,
// otherwise really closes it (mid-protocol aborts must never be reused).
func (c *pooledConn) Close() error {
	if c.reusable {
		return c.pool.put(c)
	}
	return c.Conn.Close()
}
