package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/metrics"
	"flashflow/internal/stats"
	"flashflow/internal/store"
)

// RelaySource yields the relay population at the start of each round: the
// consensus in a real deployment, a fixed list in tests and demos. The
// returned estimates are only used for relays the coordinator has not yet
// measured; afterwards its own medians take over as priors.
type RelaySource interface {
	Relays() []core.RelayEstimate
}

// RelayAppender is an optional RelaySource extension: sources that can
// append the population into a caller-owned buffer let the coordinator
// reuse one slice across rounds instead of allocating a fresh population
// copy every period. At million-relay consensus sizes that copy is the
// largest per-round allocation the control plane makes.
type RelayAppender interface {
	AppendRelays(buf []core.RelayEstimate) []core.RelayEstimate
}

// StaticRelays is a fixed relay population.
type StaticRelays []core.RelayEstimate

// Relays implements RelaySource.
func (s StaticRelays) Relays() []core.RelayEstimate {
	return append([]core.RelayEstimate(nil), s...)
}

// AppendRelays implements RelayAppender.
func (s StaticRelays) AppendRelays(buf []core.RelayEstimate) []core.RelayEstimate {
	return append(buf, s...)
}

// Config tunes the Coordinator. Zero values select the documented
// defaults.
type Config struct {
	// Params are the FlashFlow measurement parameters shared by every
	// BWAuth. Defaults to core.DefaultParams().
	Params core.Params
	// Workers bounds concurrently executing slot assignments (default 4).
	Workers int
	// MaxAttempts is the per-slot measurement attempt budget including
	// the first try (default 3). A slot failing every attempt is reported
	// in RoundReport.Unmeasured rather than silently dropped.
	MaxAttempts int
	// RetryBase and RetryMax shape the backoff schedule between attempts
	// (defaults 200 ms and 5 s).
	RetryBase, RetryMax time.Duration
	// RelayAttemptsPerSec and RelayBurst configure the per-relay attempt
	// limiter; zero rate disables it.
	RelayAttemptsPerSec float64
	RelayBurst          int
	// SlotTimeout bounds one slot assignment's wall-clock time (the whole
	// §4.2 doubling loop for that relay, across its measurement attempts):
	// the per-slot context is cancelled when it expires, the backend tears
	// the measurement down promptly, and the slot is retried or reported
	// like any other failure. Zero disables the bound.
	SlotTimeout time.Duration
	// RoundInterval is the pause between the end of one round and the
	// start of the next; zero runs rounds back to back.
	RoundInterval time.Duration
	// MaxRounds stops Run after this process has executed that many
	// rounds; zero runs until the context is cancelled. With a Store, the
	// count is rounds run by this process, not the recovered absolute
	// round number: a coordinator resuming at round 12 with MaxRounds=2
	// runs rounds 13 and 14.
	MaxRounds int
	// SnapshotDir, when set, receives a v3bw-style bandwidth-file
	// snapshot every SnapshotEvery rounds (default every round).
	SnapshotDir   string
	SnapshotEvery int
	// OnSnapshot, when set, receives each published round's merged
	// bandwidth file at the SnapshotEvery cadence — the publication hook
	// the HTTP observability plane uses to swap in a freshly rendered
	// /v3bw body without the coordinator touching disk. It runs on the
	// round goroutine (after the round's estimates are folded in) and
	// must not retain the file past the call unless it owns the copy;
	// the merged file is freshly built each publication, so retaining it
	// is safe today, but renderers should copy-or-render promptly to
	// keep the round loop unblocked.
	OnSnapshot func(round int, f *dirauth.BandwidthFile)
	// Pool, when set, is pruned between rounds and surfaced in Status
	// and round reports. The caller wires it into the wire backend's
	// dialers with Pool.Dialer.
	Pool *Pool
	// AnomalyRetainRounds is how many rounds a departed relay's §5
	// anomaly counters are retained after it leaves the population
	// (default 8). A relay that departs and rejoins inside the window
	// keeps its accumulated record — a flapping liar cannot reset its
	// history by briefly leaving the consensus.
	AnomalyRetainRounds int
	// SplitViewFactor is the cross-BWAuth estimate divergence (max/min
	// within one round) beyond which a relay is flagged for showing
	// different teams different capacities (default 1.5; §5 selective
	// lying). Zero selects the default; negative disables the check.
	SplitViewFactor float64
	// Store, when set, makes the coordinator's cross-round state durable:
	// New recovers the store's state before the first round (priors,
	// anomaly windows, round counter, the last published v3bw snapshot —
	// which is republished through OnSnapshot during New so /v3bw serves
	// immediately), every prior/anomaly mutation is WAL-appended as it
	// happens, and a full checkpoint is written every CheckpointEvery
	// rounds and again when Run returns, so even SIGINT loses at most
	// the in-flight round. Store errors after recovery never fail a
	// round; they are counted in coord_store_errors.
	Store store.Store
	// CheckpointEvery is the checkpoint cadence in rounds (default 1).
	// Large populations can raise it to amortize snapshot writes; the
	// WAL covers the rounds in between.
	CheckpointEvery int
	// Counters receives the coordinator's operational counters; a fresh
	// registry is created when nil.
	Counters *metrics.Counters
	// OnRound, when set, is called after every round with its report.
	OnRound func(RoundReport)
	// Seed drives the backoff jitter stream (default 1).
	Seed int64
}

func (cfg Config) withDefaults() Config {
	// Only a fully zero Params means "use the defaults"; a partially
	// filled struct passes through so Validate can reject it instead of
	// the coordinator silently discarding the caller's fields.
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1
	}
	if cfg.AnomalyRetainRounds <= 0 {
		cfg.AnomalyRetainRounds = 8
	}
	if cfg.SplitViewFactor == 0 {
		cfg.SplitViewFactor = 1.5
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Unmeasured records a slot whose relay produced no estimate this round:
// every attempt failed, or the shutdown drained it before it ran.
type Unmeasured struct {
	Relay    string `json:"relay"`
	BWAuth   string `json:"bwauth"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// RoundReport summarizes one completed (or interrupted) round.
// The JSON tags are API surface: the observability plane serves reports
// inside GET /status, so names are stable snake_case.
type RoundReport struct {
	Round    int           `json:"round"`
	Duration time.Duration `json:"duration_ns"`
	// Relays is the population size; Scheduled counts slot assignments
	// (relays × BWAuths that placed them).
	Relays    int `json:"relays"`
	Scheduled int `json:"scheduled"`
	// Estimates holds the per-relay median estimate across BWAuths from
	// this round's measurements — the priors for the next round.
	Estimates map[string]float64 `json:"estimates,omitempty"`
	// Conclusive and Inconclusive count finished slot assignments by
	// outcome quality; Retries counts re-queued attempts.
	Conclusive   int `json:"conclusive"`
	Inconclusive int `json:"inconclusive"`
	Retries      int `json:"retries"`
	RateLimited  int `json:"rate_limited"`
	// Unmeasured lists slots with no estimate after every attempt.
	Unmeasured []Unmeasured `json:"unmeasured,omitempty"`
	// Unscheduled lists relays the §4.3 scheduler could not place.
	Unscheduled []string `json:"unscheduled,omitempty"`
	// Partial marks a round interrupted by shutdown: in-flight slots were
	// drained, queued ones were not started.
	Partial bool `json:"partial"`
	// SnapshotPath is the v3bw file written for this round, if any.
	SnapshotPath string `json:"snapshot_path,omitempty"`
	// Pool is the pool counter snapshot at round end (zero without a pool).
	Pool PoolStats `json:"pool"`
}

// String renders a one-line round summary.
func (r RoundReport) String() string {
	return fmt.Sprintf("round %d: %d relays, %d/%d slots conclusive, %d inconclusive, %d unmeasured, %d retries, pool %d/%d hit/miss, %v",
		r.Round, r.Relays, r.Conclusive, r.Scheduled, r.Inconclusive, len(r.Unmeasured), r.Retries, r.Pool.Hits, r.Pool.Misses, r.Duration.Round(time.Millisecond))
}

// SlotProgress is a live view of one in-flight measurement, fed by the
// streaming sample pipeline: the coordinator tees every backend sample, so
// Status can report how far each relay's current slot has advanced while
// it is still running.
type SlotProgress struct {
	Relay  string `json:"relay"`
	BWAuth string `json:"bwauth"`
	// AllocatedBps is the current attempt's total allocation.
	AllocatedBps float64 `json:"allocated_bps"`
	// SlotSeconds is the attempt's scheduled length; Second counts the
	// seconds streamed so far (0 before the first sample).
	SlotSeconds int `json:"slot_seconds"`
	Second      int `json:"second"`
	// Bytes is the total measurement bytes observed so far this attempt.
	Bytes float64 `json:"bytes"`
	// Started is when the current attempt's slot began.
	Started time.Time `json:"started"`
}

// Status is a point-in-time view of the coordinator. The JSON tags are
// API surface (the observability plane's GET /status); names are stable
// snake_case regardless of internal refactors.
type Status struct {
	// Round is the round currently executing (or last finished).
	Round int `json:"round"`
	// InFlight counts measurements executing right now.
	InFlight int `json:"in_flight"`
	// Measuring lists the in-flight slots with their live per-second
	// progress, sorted by relay then BWAuth.
	Measuring []SlotProgress `json:"measuring,omitempty"`
	// Counters is a snapshot of the operational counters.
	Counters map[string]int64 `json:"counters"`
	// Unscheduled counts relays the most recent round's §4.3 scheduler
	// could not place on at least one BWAuth — capacity pressure the
	// operator should see without digging through round reports.
	Unscheduled int `json:"unscheduled"`
	// Anomalies holds every tracked relay's accumulated §5 defense
	// counters (clamped seconds, echo failures, stall/skew/split-view
	// suspicion). Entries persist across population churn for the
	// configured retention window, so a flapping relay's record is
	// visible here even while it is out of the consensus.
	Anomalies map[string]core.AnomalyCounts `json:"anomalies,omitempty"`
	// LastRound is the most recent round report, nil before the first
	// round completes.
	LastRound *RoundReport `json:"last_round,omitempty"`
}

// Coordinator drives continuous measurement rounds. Create with New, run
// with Run; Status may be called from any goroutine.
type Coordinator struct {
	cfg     Config
	auths   []*core.BWAuth
	source  RelaySource
	backoff *Backoff
	limiter *RelayLimiter

	// Round-planning arenas, reused across rounds so a steady-state
	// population plans each period without allocation churn: the
	// schedule builder's indexed structures, the population buffer
	// (when the source supports AppendRelays), the flattened job list
	// and its backing array, the retain set, and the per-round result
	// collector. All are touched only by Run's goroutine.
	builder  *core.ScheduleBuilder
	popBuf   []core.RelayEstimate
	capsBuf  []float64
	jobArena []slotJob
	jobs     []*slotJob
	keepBuf  map[string]bool
	col      roundCollector

	// Durable-state bookkeeping, touched only by New and Run's
	// goroutine: the last published merged v3bw file (retained so
	// checkpoints can persist it), its round, the round of the most
	// recent checkpoint (so Run's final flush skips a round that
	// finishRound already checkpointed), and a reused WAL record batch.
	lastV3BW      *dirauth.BandwidthFile
	lastV3BWRound int
	ckptRound     int
	recBuf        []store.Record

	mu       sync.Mutex
	round    int
	inFlight int
	priors   map[string]float64
	last     *RoundReport
	progress map[string]*SlotProgress
	// anomalies is the coordinator's own windowed copy of per-relay §5
	// defense counters: unlike the BWAuths' tables (dropped with the
	// retain set), entries survive population churn for
	// AnomalyRetainRounds rounds after the relay was last seen, so a
	// relay cannot launder its record by flapping in and out of the
	// consensus.
	anomalies map[string]*relayAnomaly
}

// relayAnomaly is one relay's accumulated anomaly evidence plus the last
// round the relay appeared in the population.
type relayAnomaly struct {
	counts   core.AnomalyCounts
	lastSeen int
}

// New validates the configuration and creates a Coordinator. Each
// BWAuth's Backend is wrapped with a thin tee that feeds the streaming
// per-second samples into the coordinator's live progress view
// (Status().Measuring); the wrapped backend forwards everything else
// unchanged.
func New(cfg Config, auths []*core.BWAuth, source RelaySource) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(auths) == 0 {
		return nil, errors.New("coord: need at least one BWAuth")
	}
	seen := make(map[string]bool, len(auths))
	for _, a := range auths {
		if a == nil || a.Name == "" {
			return nil, errors.New("coord: BWAuth without a name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("coord: duplicate BWAuth name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if source == nil {
		return nil, errors.New("coord: nil relay source")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		auths:     auths,
		source:    source,
		backoff:   NewBackoff(cfg.RetryBase, cfg.RetryMax, cfg.Seed),
		limiter:   NewRelayLimiter(cfg.RelayAttemptsPerSec, cfg.RelayBurst),
		builder:   core.NewScheduleBuilder(),
		priors:    make(map[string]float64),
		progress:  make(map[string]*SlotProgress),
		anomalies: make(map[string]*relayAnomaly),
	}
	for _, a := range auths {
		inner := a.Backend
		// Re-creating a coordinator over the same BWAuths (a restart
		// pattern) must not chain tees: unwrap any previous coordinator's
		// wrapper so the old coordinator's progress table — and the old
		// coordinator itself — stop being reachable from the backend.
		if tee, ok := inner.(*progressTee); ok {
			inner = tee.inner
		}
		a.Backend = &progressTee{inner: inner, c: c, auth: a.Name}
	}
	c.registerCounters()
	if cfg.Store != nil {
		if err := c.recover(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// recover loads the durable store's state into a freshly built
// coordinator: priors and §5 anomaly windows resume exactly where the
// previous process left them, the round counter continues (Run starts at
// the recovered round + 1), every BWAuth's measurement priors are
// re-seeded so the first round's doubling loops start from the earned
// estimates instead of the new-relay percentile, and the last published
// v3bw snapshot — if one was checkpointed — is pushed through OnSnapshot
// so the observability plane serves it before the first new round
// completes.
func (c *Coordinator) recover() error {
	st, err := c.cfg.Store.Load()
	if err != nil {
		return fmt.Errorf("coord: recover durable state: %w", err)
	}
	c.mu.Lock()
	c.round = st.Round
	c.ckptRound = st.Round
	for name, bps := range st.Priors {
		c.priors[name] = bps
	}
	for name, rec := range st.Anomalies {
		c.anomalies[name] = &relayAnomaly{counts: rec.Counts, lastSeen: rec.LastSeen}
	}
	c.mu.Unlock()
	for _, a := range c.auths {
		for name, bps := range st.Priors {
			if bps > 0 {
				a.SetPrior(name, bps)
			}
		}
	}
	ctr := c.cfg.Counters
	ctr.Set("coord_round", int64(st.Round))
	ctr.Set("coord_anomaly_relays", int64(len(st.Anomalies)))
	ctr.Set("coord_store_recovered_priors", int64(len(st.Priors)))
	ctr.Set("coord_store_recovered_anomalies", int64(len(st.Anomalies)))
	if len(st.V3BW.Body) > 0 {
		f, err := dirauth.ParseV3BW(bytes.NewReader(st.V3BW.Body))
		if err != nil {
			// The snapshot body was CRC-checked on the way in, so this is
			// a logic-level surprise; surface it instead of serving junk.
			return fmt.Errorf("coord: recovered v3bw snapshot: %w", err)
		}
		c.lastV3BW, c.lastV3BWRound = f, st.V3BW.Round
		if c.cfg.OnSnapshot != nil {
			c.cfg.OnSnapshot(st.V3BW.Round, f)
			ctr.Inc("coord_snapshots_published")
		}
	}
	return nil
}

// registerCounters pre-creates every counter and gauge the coordinator
// ever touches, at zero. A Prometheus scrape of a freshly started
// coordinator then exposes the full stable metric set — including the §5
// anomaly counters, which would otherwise only appear after the first
// defense fires — so dashboards and alert rules never reference a series
// that does not exist yet.
func (c *Coordinator) registerCounters() {
	for _, name := range []string{
		"coord_rounds_completed",
		"coord_round",
		"coord_in_flight",
		"coord_relays_population",
		"coord_relays_measured",
		"coord_relays_unscheduled",
		"coord_slots_scheduled",
		"coord_slots_attempted",
		"coord_slots_conclusive",
		"coord_slots_inconclusive",
		"coord_slots_unmeasured",
		"coord_slots_rate_limited",
		"coord_slot_errors",
		"coord_slot_retries",
		"coord_slot_timeouts",
		"coord_slot_seconds_used",
		"coord_slot_seconds_saved",
		"coord_anomaly_clamped_seconds",
		"coord_anomaly_ratio_clamped_slots",
		"coord_anomaly_echo_failures",
		"coord_anomaly_stall_slots",
		"coord_anomaly_skew_slots",
		"coord_anomaly_split_view_rounds",
		"coord_anomaly_relays",
		"coord_snapshots_written",
		"coord_snapshot_errors",
		"coord_snapshots_published",
		"coord_store_appended_records",
		"coord_store_checkpoints",
		"coord_store_errors",
		"coord_store_recovered_priors",
		"coord_store_recovered_anomalies",
	} {
		c.cfg.Counters.Add(name, 0)
	}
}

// progressTee wraps a core.Backend so every slot's stream of per-second
// samples also updates the coordinator's live progress table. The caller's
// sink (the §4.2 early-abort watcher installed by MeasureRelayGuarded)
// still sees every sample.
type progressTee struct {
	inner core.Backend
	c     *Coordinator
	auth  string
}

func (t *progressTee) RunMeasurement(ctx context.Context, target string, alloc core.Allocation, seconds int, sink core.SampleSink) (core.MeasurementData, error) {
	key := t.auth + "/" + target
	t.c.mu.Lock()
	t.c.progress[key] = &SlotProgress{
		Relay:        target,
		BWAuth:       t.auth,
		AllocatedBps: alloc.TotalBps,
		SlotSeconds:  seconds,
		Started:      time.Now(),
	}
	t.c.mu.Unlock()
	defer func() {
		t.c.mu.Lock()
		delete(t.c.progress, key)
		t.c.mu.Unlock()
	}()
	tee := func(s core.Sample) {
		var bytes float64
		for _, v := range s.MeasBytes {
			bytes += v
		}
		bytes += s.NormBytes
		t.c.mu.Lock()
		if p, ok := t.c.progress[key]; ok {
			p.Second = s.Second + 1
			p.Bytes += bytes
		}
		t.c.mu.Unlock()
		if sink != nil {
			sink(s)
		}
	}
	return t.inner.RunMeasurement(ctx, target, alloc, seconds, tee)
}

// Status returns a snapshot of the coordinator's state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Round:    c.round,
		InFlight: c.inFlight,
		Counters: c.cfg.Counters.Snapshot(),
	}
	for _, p := range c.progress {
		s.Measuring = append(s.Measuring, *p)
	}
	if len(c.anomalies) > 0 {
		s.Anomalies = make(map[string]core.AnomalyCounts, len(c.anomalies))
		for name, a := range c.anomalies {
			s.Anomalies[name] = a.counts
		}
	}
	sort.Slice(s.Measuring, func(i, j int) bool {
		if s.Measuring[i].Relay != s.Measuring[j].Relay {
			return s.Measuring[i].Relay < s.Measuring[j].Relay
		}
		return s.Measuring[i].BWAuth < s.Measuring[j].BWAuth
	})
	if c.last != nil {
		rep := *c.last
		s.LastRound = &rep
		s.Unscheduled = len(rep.Unscheduled)
	}
	return s
}

// Priors returns the coordinator's current per-relay priors (the medians
// of the most recent round that measured each relay).
func (c *Coordinator) Priors() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.priors))
	for k, v := range c.priors {
		out[k] = v
	}
	return out
}

// Run executes measurement rounds until the context is cancelled or
// cfg.MaxRounds rounds have completed. On cancellation, in-flight
// measurement slots are themselves cancelled — the streaming backends
// tear them down within about one second of data — and drained before Run
// returns the context's error; their completed seconds are salvaged as
// partial estimates where possible, and slots that had not started are
// reported as unmeasured in the final (partial) round report.
func (c *Coordinator) Run(ctx context.Context) error {
	err := c.run(ctx)
	// Final checkpoint on the way out — the SIGINT guarantee: whatever
	// ends the run (cancellation mid-round, MaxRounds, a partial round),
	// the store's snapshot catches up to the last round whose results
	// were folded in, so a restart loses at most the round that was in
	// flight. Skipped when finishRound's cadence checkpoint already
	// covered this round.
	if c.cfg.Store != nil {
		c.mu.Lock()
		round := c.round
		c.mu.Unlock()
		if round != c.ckptRound {
			c.checkpoint()
		}
	}
	return err
}

func (c *Coordinator) run(ctx context.Context) error {
	// Resume after the recovered round: a store that says "round 12 is
	// durable" means the next work is round 13. Without a store c.round
	// is zero and this is the classic start at 1.
	c.mu.Lock()
	start := c.round + 1
	c.mu.Unlock()
	stop := 0
	if c.cfg.MaxRounds > 0 {
		stop = start - 1 + c.cfg.MaxRounds
	}
	for round := start; ; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		c.round = round
		c.mu.Unlock()
		c.cfg.Counters.Set("coord_round", int64(round))
		// Logged before the round executes: a crash mid-round recovers
		// the in-flight round's number, so the restart resumes after it
		// instead of re-running (and double-counting anomalies for) a
		// round that partially happened.
		c.appendStore(store.Record{Kind: store.KindRound, Round: round})

		rep := c.runRound(ctx, round)
		c.finishRound(&rep)
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(rep)
		}
		if rep.Partial {
			return ctx.Err()
		}
		if stop > 0 && round >= stop {
			return nil
		}
		if c.cfg.Pool != nil {
			c.cfg.Pool.Prune()
		}
		if c.cfg.RoundInterval > 0 {
			t := time.NewTimer(c.cfg.RoundInterval)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
}

// finishRound publishes the report: counters, gauge export, the snapshot
// file and/or the OnSnapshot publication hook, last-round state.
func (c *Coordinator) finishRound(rep *RoundReport) {
	ctr := c.cfg.Counters
	ctr.Inc("coord_rounds_completed")
	ctr.Add("coord_slots_unmeasured", int64(len(rep.Unmeasured)))
	ctr.Add("coord_relays_unscheduled", int64(len(rep.Unscheduled)))
	ctr.Set("coord_relays_population", int64(rep.Relays))
	ctr.Set("coord_relays_measured", int64(len(rep.Estimates)))
	if c.cfg.Pool != nil {
		rep.Pool = c.cfg.Pool.Stats()
		ctr.Set("coord_pool_hits", rep.Pool.Hits)
		ctr.Set("coord_pool_misses", rep.Pool.Misses)
		ctr.Set("coord_pool_evictions", rep.Pool.Evictions)
		ctr.Set("coord_pool_idle", int64(rep.Pool.Idle))
	}
	wantDisk := c.cfg.SnapshotDir != ""
	wantHook := c.cfg.OnSnapshot != nil
	if (wantDisk || wantHook) && rep.Round%c.cfg.SnapshotEvery == 0 {
		// Merge every BWAuth's bandwidth file exactly once per publication
		// and fan the result out to both consumers: the hook gets the
		// in-memory file (the observability plane renders and atomically
		// swaps its cached /v3bw body from it), the snapshot directory
		// gets the streamed on-disk copy.
		merged := c.buildSnapshot(rep.Round)
		// Retain the published file so checkpoints persist it: after a
		// restart the observability plane serves the last published body
		// before the first new round completes.
		c.lastV3BW, c.lastV3BWRound = merged, rep.Round
		if wantHook {
			c.cfg.OnSnapshot(rep.Round, merged)
			ctr.Inc("coord_snapshots_published")
		}
		if wantDisk {
			path, err := c.writeSnapshot(rep.Round, merged)
			if err == nil {
				rep.SnapshotPath = path
				ctr.Inc("coord_snapshots_written")
			} else {
				ctr.Inc("coord_snapshot_errors")
			}
		}
	}
	c.mu.Lock()
	repCopy := *rep
	c.last = &repCopy
	c.mu.Unlock()
	if c.cfg.Store != nil && rep.Round%c.cfg.CheckpointEvery == 0 {
		c.checkpoint()
	}
}

// appendStore logs records to the durable store, if one is configured.
// Store failures after recovery never fail a round: the measurement plane
// keeps running on its in-memory state and the failure is visible as
// coord_store_errors. Safe for concurrent use — the store serializes
// appends internally.
func (c *Coordinator) appendStore(recs ...store.Record) {
	if c.cfg.Store == nil || len(recs) == 0 {
		return
	}
	if err := c.cfg.Store.Append(recs...); err != nil {
		c.cfg.Counters.Inc("coord_store_errors")
		return
	}
	c.cfg.Counters.Add("coord_store_appended_records", int64(len(recs)))
}

// checkpoint writes the coordinator's full cross-round state (round
// counter, priors, anomaly windows, last published v3bw body) as a new
// snapshot generation and resets the WAL. Runs on the round goroutine.
func (c *Coordinator) checkpoint() {
	st := store.NewState()
	c.mu.Lock()
	st.Round = c.round
	for name, bps := range c.priors {
		st.Priors[name] = bps
	}
	for name, a := range c.anomalies {
		st.Anomalies[name] = store.AnomalyRecord{Counts: a.counts, LastSeen: a.lastSeen}
	}
	c.mu.Unlock()
	if c.lastV3BW != nil {
		body, _, err := c.lastV3BW.Render()
		if err == nil {
			st.V3BW = store.V3BW{Round: c.lastV3BWRound, Body: body}
		} else {
			c.cfg.Counters.Inc("coord_store_errors")
		}
	}
	if err := c.cfg.Store.Checkpoint(st); err != nil {
		c.cfg.Counters.Inc("coord_store_errors")
		return
	}
	c.ckptRound = st.Round
	c.cfg.Counters.Inc("coord_store_checkpoints")
}

// population builds this round's scheduler input: the source's relay list
// with the coordinator's own medians substituted as priors for every
// relay measured in a previous round — the feedback loop that lets an
// accurate round shrink the next round's excess allocations. Sources
// implementing RelayAppender fill the coordinator's reused buffer
// instead of allocating a fresh copy each round.
func (c *Coordinator) population() []core.RelayEstimate {
	var relays []core.RelayEstimate
	if ap, ok := c.source.(RelayAppender); ok {
		c.popBuf = ap.AppendRelays(c.popBuf[:0])
		relays = c.popBuf
	} else {
		relays = c.source.Relays()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range relays {
		if prior, ok := c.priors[relays[i].Name]; ok && prior > 0 {
			relays[i].EstimateBps = prior
			relays[i].New = false
		} else if relays[i].EstimateBps <= 0 {
			relays[i].EstimateBps = core.NewRelayPrior(nil, c.cfg.Params)
			relays[i].New = true
		}
	}
	return relays
}

// roundSeed runs the §4.3 commit-reveal shared-randomness protocol across
// the BWAuths and derives this round's schedule seed.
func (c *Coordinator) roundSeed(round int) ([]byte, error) {
	commits := make([]core.Commitment, 0, len(c.auths))
	reveals := make([]core.Reveal, 0, len(c.auths))
	for _, a := range c.auths {
		r, err := core.NewRandomReveal(a.Name)
		if err != nil {
			return nil, err
		}
		commits = append(commits, r.Commit())
		reveals = append(reveals, r)
	}
	shared, err := core.SharedRandomness(commits, reveals)
	if err != nil {
		return nil, err
	}
	return core.PeriodSeed(shared, uint64(round)), nil
}

// maxCapacityDeferrals bounds how often a slot may be deferred because
// in-flight measurements hold the team's residual capacity, guaranteeing
// termination even under sustained contention.
const maxCapacityDeferrals = 8

// recordAnomalies folds one relay's new §5 evidence into the windowed
// table and the operational counters. Zero-count records still refresh
// lastSeen implicitly via the retention sweep; they are not stored.
func (c *Coordinator) recordAnomalies(relay string, counts core.AnomalyCounts) {
	if counts.Total() == 0 {
		return
	}
	ctr := c.cfg.Counters
	ctr.Add("coord_anomaly_clamped_seconds", counts.ClampedSeconds)
	ctr.Add("coord_anomaly_ratio_clamped_slots", counts.RatioClampedSlots)
	ctr.Add("coord_anomaly_echo_failures", counts.EchoFailures)
	ctr.Add("coord_anomaly_stall_slots", counts.StallSuspectSlots)
	ctr.Add("coord_anomaly_skew_slots", counts.SkewSuspectSlots)
	ctr.Add("coord_anomaly_split_view_rounds", counts.SplitViewRounds)
	c.mu.Lock()
	a := c.anomalies[relay]
	if a == nil {
		a = &relayAnomaly{}
		c.anomalies[relay] = a
	}
	a.counts.Add(counts)
	a.lastSeen = c.round
	rnd := c.round
	c.mu.Unlock()
	ctr.Set("coord_anomaly_relays", int64(c.anomalyCount()))
	// WAL the delta (not the accumulated total): replay re-accumulates,
	// so evidence logged before a crash survives into the restart's
	// windows exactly once.
	c.appendStore(store.Record{Kind: store.KindAnomaly, Relay: relay, Round: rnd, Counts: counts})
}

func (c *Coordinator) anomalyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.anomalies)
}

// Anomalies returns the relay's accumulated counters (present even while
// the relay is out of the population, within the retention window).
func (c *Coordinator) Anomalies(relay string) (core.AnomalyCounts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.anomalies[relay]
	if !ok {
		return core.AnomalyCounts{}, false
	}
	return a.counts, true
}

// slotJob is one schedule assignment moving through the retry pipeline.
type slotJob struct {
	auth    int
	relay   string
	slot    int
	attempt int // measurement attempts consumed so far
	// Deferral counts, separate so rate-limit waits cannot exhaust the
	// capacity-collision budget; neither consumes a measurement attempt.
	rlDeferrals  int
	capDeferrals int
	outcome      core.MeasureOutcome
	hasOutcome   bool
}

// roundCollector accumulates a round's results under its own lock. The
// coordinator owns one and resets it each round, keeping the per-relay
// map's buckets warm across a stable population.
type roundCollector struct {
	mu           sync.Mutex
	perRelay     map[string][]float64
	conclusive   int
	inconclusive int
	retries      int
	rateLimited  int
	unmeasured   []Unmeasured
}

func (rc *roundCollector) reset(relays int) {
	rc.mu.Lock()
	if rc.perRelay == nil {
		rc.perRelay = make(map[string][]float64, relays)
	} else {
		clear(rc.perRelay)
	}
	rc.conclusive, rc.inconclusive, rc.retries, rc.rateLimited = 0, 0, 0, 0
	rc.unmeasured = rc.unmeasured[:0]
	rc.mu.Unlock()
}

func (rc *roundCollector) addEstimate(relay string, bps float64) {
	rc.mu.Lock()
	rc.perRelay[relay] = append(rc.perRelay[relay], bps)
	rc.mu.Unlock()
}

// runRound executes one full round: population, seed, schedule, then the
// worker pool over every slot assignment with retries.
func (c *Coordinator) runRound(ctx context.Context, round int) RoundReport {
	start := time.Now()
	rep := RoundReport{Round: round, Estimates: make(map[string]float64)}

	population := c.population()
	rep.Relays = len(population)
	// Seed each BWAuth's measurement prior from the population estimate,
	// so the first measurement's doubling loop starts from the same prior
	// the schedule reserved capacity for. Priors are not publishable: a
	// relay that fails every attempt stays out of the bandwidth file.
	// Each BWAuth keeps its own prior table behind its own lock, so the
	// per-auth sweeps shard cleanly across cores.
	var priorWG sync.WaitGroup
	for _, a := range c.auths {
		priorWG.Add(1)
		go func(a *core.BWAuth) {
			defer priorWG.Done()
			for _, r := range population {
				if r.EstimateBps > 0 {
					a.SetPrior(r.Name, r.EstimateBps)
				}
			}
		}(a)
	}
	priorWG.Wait()

	seed, err := c.roundSeed(round)
	if err != nil {
		rep.Unmeasured = append(rep.Unmeasured, Unmeasured{Reason: "seed: " + err.Error()})
		rep.Duration = time.Since(start)
		return rep
	}
	if cap(c.capsBuf) < len(c.auths) {
		c.capsBuf = make([]float64, len(c.auths))
	}
	teamCaps := c.capsBuf[:len(c.auths)]
	for i, a := range c.auths {
		teamCaps[i] = core.TeamCapacityBps(a.Team)
	}
	// The reused builder keeps its indexed slot structures, relay→slot
	// index, and the schedule's slot arrays warm; the returned schedule
	// is only valid until the next Build, which is fine — it is fully
	// flattened into jobs below.
	sched, err := c.builder.Build(seed, population, teamCaps, c.cfg.Params)
	if err != nil {
		rep.Unmeasured = append(rep.Unmeasured, Unmeasured{Reason: "schedule: " + err.Error()})
		rep.Duration = time.Since(start)
		return rep
	}
	rep.Unscheduled = append(rep.Unscheduled, sched.Unscheduled...)

	// Flatten slot-major so earlier slots start first, preserving the
	// schedule's rough ordering under the worker pool. The job structs
	// live in one reused arena sized by the schedule's assignment count.
	total := sched.Assignments()
	if cap(c.jobArena) < total {
		c.jobArena = make([]slotJob, total)
		c.jobs = make([]*slotJob, 0, total)
	}
	arena := c.jobArena[:total]
	jobs := c.jobs[:0]
	for slot := 0; slot < sched.NumSlots; slot++ {
		for b := range sched.PerBWAuth {
			for _, a := range sched.PerBWAuth[b][slot] {
				j := &arena[len(jobs)]
				*j = slotJob{auth: b, relay: a.Relay, slot: slot}
				jobs = append(jobs, j)
			}
		}
	}
	c.jobs = jobs
	rep.Scheduled = len(jobs)
	c.cfg.Counters.Add("coord_slots_scheduled", int64(len(jobs)))

	col := &c.col
	col.reset(len(population))
	c.execute(ctx, jobs, col)

	col.mu.Lock()
	rep.Conclusive = col.conclusive
	rep.Inconclusive = col.inconclusive
	rep.Retries = col.retries
	rep.RateLimited = col.rateLimited
	rep.Unmeasured = append(rep.Unmeasured, col.unmeasured...)
	medians := make(map[string]float64, len(col.perRelay))
	var splitView []string
	for relay, ests := range col.perRelay {
		medians[relay] = stats.Median(ests)
		// §5 selective lying: a relay showing different BWAuths
		// significantly different capacities within one round.
		if c.cfg.SplitViewFactor > 0 && len(ests) >= 2 {
			lo, hi := ests[0], ests[0]
			for _, e := range ests[1:] {
				if e < lo {
					lo = e
				}
				if e > hi {
					hi = e
				}
			}
			if lo > 0 && hi/lo > c.cfg.SplitViewFactor {
				splitView = append(splitView, relay)
			}
		}
	}
	col.mu.Unlock()
	for _, relay := range splitView {
		c.recordAnomalies(relay, core.AnomalyCounts{SplitViewRounds: 1})
	}

	rep.Estimates = medians
	recs := c.recBuf[:0]
	c.mu.Lock()
	for relay, m := range medians {
		c.priors[relay] = m
		recs = append(recs, store.Record{Kind: store.KindPrior, Relay: relay, Bps: m})
	}
	c.mu.Unlock()

	// Forget relays that left the population: limiter buckets, the
	// coordinator's priors, and the BWAuths' tables would otherwise grow
	// (and keep publishing departed relays) for the life of the service.
	if c.keepBuf == nil {
		c.keepBuf = make(map[string]bool, len(population))
	} else {
		clear(c.keepBuf)
	}
	keep := c.keepBuf
	for _, r := range population {
		keep[r.Name] = true
	}
	c.limiter.Retain(keep)
	for _, a := range c.auths {
		a.Retain(keep)
	}
	c.mu.Lock()
	for name := range c.priors {
		if !keep[name] {
			delete(c.priors, name)
			recs = append(recs, store.Record{Kind: store.KindPriorDelete, Relay: name})
		}
	}
	// Anomaly records are retained across churn for the configured
	// window: a relay still in the population refreshes its lastSeen; a
	// departed relay's record survives AnomalyRetainRounds rounds, so
	// rejoining inside the window finds its history intact (the flapping
	// liar cannot reset its record), and only a long-gone relay's entry
	// is forgotten.
	for name, a := range c.anomalies {
		if keep[name] {
			if a.lastSeen != round {
				// The refresh must reach the WAL too (a zero-count
				// anomaly record only stamps LastSeen on replay), or a
				// recovered coordinator would age this relay's window
				// out earlier than the live one.
				a.lastSeen = round
				recs = append(recs, store.Record{Kind: store.KindAnomaly, Relay: name, Round: round})
			}
		} else if round-a.lastSeen > c.cfg.AnomalyRetainRounds {
			delete(c.anomalies, name)
			recs = append(recs, store.Record{Kind: store.KindAnomalyDelete, Relay: name})
		}
	}
	c.cfg.Counters.Set("coord_anomaly_relays", int64(len(c.anomalies)))
	c.mu.Unlock()
	// One batched WAL append per round for the whole feedback-loop
	// mutation set: medians folded in plus the retention sweep. A single
	// Append is a single fsync regardless of population size.
	c.appendStore(recs...)
	c.recBuf = recs[:0]

	rep.Partial = ctx.Err() != nil
	rep.Duration = time.Since(start)
	return rep
}

// execute runs the jobs on the bounded worker pool, re-queueing retries
// after their backoff delay. It returns when every job has been finalized
// (measured, exhausted, or drained by shutdown).
func (c *Coordinator) execute(ctx context.Context, jobs []*slotJob, col *roundCollector) {
	if len(jobs) == 0 {
		return
	}
	// Capacity len(jobs) guarantees enqueues never block: a job is in the
	// queue, running, or waiting on a retry timer — never duplicated.
	queue := make(chan *slotJob, len(jobs))
	var pending sync.WaitGroup
	pending.Add(len(jobs))
	for _, j := range jobs {
		queue <- j
	}

	var workers sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range queue {
				c.runJob(ctx, j, queue, &pending, col)
			}
		}()
	}
	pending.Wait()
	close(queue)
	workers.Wait()
}

// runJob performs one attempt of one slot assignment.
func (c *Coordinator) runJob(ctx context.Context, j *slotJob, queue chan<- *slotJob, pending *sync.WaitGroup, col *roundCollector) {
	ctr := c.cfg.Counters
	if ctx.Err() != nil {
		c.finalize(j, col, pending, "shutdown before slot started")
		return
	}
	if !c.limiter.Allow(j.relay) {
		ctr.Inc("coord_slots_rate_limited")
		col.mu.Lock()
		col.rateLimited++
		col.mu.Unlock()
		// Deferral does not consume a measurement attempt; the bucket
		// refills while the job waits out a backoff delay.
		j.rlDeferrals++
		c.requeue(ctx, j, queue, pending, col, "rate limited")
		return
	}

	ctr.Inc("coord_slots_attempted")
	c.mu.Lock()
	c.inFlight++
	ctr.Set("coord_in_flight", int64(c.inFlight))
	c.mu.Unlock()
	// Per-slot context: shutdown cancels the in-flight measurement (the
	// backend tears the slot down within about a second of data instead of
	// waiting out the full slot), and the optional slot timeout bounds a
	// wedged slot the same way.
	slotCtx := ctx
	cancelSlot := context.CancelFunc(func() {})
	if c.cfg.SlotTimeout > 0 {
		slotCtx, cancelSlot = context.WithTimeout(ctx, c.cfg.SlotTimeout)
	}
	out, err := c.auths[j.auth].MeasureTarget(slotCtx, j.relay)
	cancelSlot()
	c.mu.Lock()
	c.inFlight--
	ctr.Set("coord_in_flight", int64(c.inFlight))
	c.mu.Unlock()
	j.attempt++

	// Slot-second accounting for the §4.2 early abort: used is what the
	// streaming pipeline consumed, saved is what fixed-length slots would
	// have consumed on top of it (the abort refactor's dividend, exported
	// as a counter so /metrics shows it accumulating live).
	if used := out.SlotSecondsUsed(); used > 0 || len(out.Attempts) > 0 {
		scheduled := len(out.Attempts) * c.auths[j.auth].Params.SlotSeconds
		ctr.Add("coord_slot_seconds_used", int64(used))
		if saved := scheduled - used; saved > 0 {
			ctr.Add("coord_slot_seconds_saved", int64(saved))
		}
	}

	// Fold the slot's §5 defense evidence into the windowed per-relay
	// record — including failed slots: an echo-verification catch is the
	// strongest signal there is. Derived with the measuring BWAuth's own
	// Params (BWAuths are caller-constructed and may diverge from
	// cfg.Params), so this window and the BWAuth's table always agree on
	// the same outcome.
	counts := core.OutcomeAnomalies(out, c.auths[j.auth].Params)
	if errors.Is(err, core.ErrMeasurementFailed) {
		counts.EchoFailures++
	}
	c.recordAnomalies(j.relay, counts)

	if err != nil {
		ctr.Inc("coord_slot_errors")
		// Salvage any estimate the failed run produced (e.g. the doubling
		// loop's earlier attempts succeeded before a connection dropped,
		// or a cancelled slot's completed seconds were aggregated):
		// finalize reports a job with an estimate as inconclusively
		// measured rather than unmeasured.
		if out.EstimateBps > 0 {
			j.outcome, j.hasOutcome = out, true
		}
		if ctx.Err() != nil {
			// Shutdown cancelled the in-flight slot; don't burn backoff
			// timers on a dying coordinator.
			c.finalize(j, col, pending, "shutdown cancelled in-flight slot")
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			ctr.Inc("coord_slot_timeouts")
			c.retryOrFail(ctx, j, queue, pending, col, "slot timeout after "+c.cfg.SlotTimeout.String())
			return
		}
		if errors.Is(err, core.ErrInsufficientCapacity) && j.capDeferrals < maxCapacityDeferrals {
			// The allocation collided with in-flight measurements holding
			// the team's residual capacity — a scheduling artifact of
			// overlapping slots, not a relay failure. Defer with backoff
			// instead of burning one of the relay's attempts.
			j.attempt--
			j.capDeferrals++
			c.requeue(ctx, j, queue, pending, col, "insufficient residual team capacity")
			return
		}
		c.retryOrFail(ctx, j, queue, pending, col, err.Error())
		return
	}
	j.outcome, j.hasOutcome = out, true
	if out.Conclusive {
		ctr.Inc("coord_slots_conclusive")
		col.mu.Lock()
		col.conclusive++
		col.mu.Unlock()
		col.addEstimate(j.relay, out.EstimateBps)
		pending.Done()
		return
	}
	ctr.Inc("coord_slots_inconclusive")
	c.retryOrFail(ctx, j, queue, pending, col, "inconclusive")
}

// retryOrFail re-queues the job with backoff if attempts remain, otherwise
// finalizes it.
func (c *Coordinator) retryOrFail(ctx context.Context, j *slotJob, queue chan<- *slotJob, pending *sync.WaitGroup, col *roundCollector, reason string) {
	if j.attempt >= c.cfg.MaxAttempts {
		c.finalize(j, col, pending, reason)
		return
	}
	c.requeue(ctx, j, queue, pending, col, reason)
}

// requeue schedules the job's next attempt after its backoff delay. If
// shutdown arrives while the job waits, it is finalized instead.
func (c *Coordinator) requeue(ctx context.Context, j *slotJob, queue chan<- *slotJob, pending *sync.WaitGroup, col *roundCollector, reason string) {
	c.cfg.Counters.Inc("coord_slot_retries")
	col.mu.Lock()
	col.retries++
	col.mu.Unlock()
	// Never wait zero: a deferral before the first attempt (rate limit,
	// capacity collision) would otherwise hot-loop through the queue
	// until its condition clears.
	step := j.attempt
	if d := j.rlDeferrals + j.capDeferrals; d > step {
		step = d
	}
	if step < 1 {
		step = 1
	}
	delay := c.backoff.Next(step)
	time.AfterFunc(delay, func() {
		select {
		case <-ctx.Done():
			c.finalize(j, col, pending, "shutdown during retry backoff after: "+reason)
		default:
			queue <- j
		}
	})
}

// finalize records a job's terminal state and releases it. A job with any
// estimate counts as inconclusively measured; one with none lands in the
// unmeasured list — never silently dropped.
func (c *Coordinator) finalize(j *slotJob, col *roundCollector, pending *sync.WaitGroup, reason string) {
	if j.hasOutcome && j.outcome.EstimateBps > 0 {
		col.mu.Lock()
		col.inconclusive++
		col.mu.Unlock()
		col.addEstimate(j.relay, j.outcome.EstimateBps)
	} else {
		col.mu.Lock()
		col.unmeasured = append(col.unmeasured, Unmeasured{
			Relay:    j.relay,
			BWAuth:   c.auths[j.auth].Name,
			Attempts: j.attempt,
			Reason:   reason,
		})
		col.mu.Unlock()
	}
	pending.Done()
}

// buildSnapshot merges every BWAuth's current bandwidth file into the
// round's publishable snapshot.
func (c *Coordinator) buildSnapshot(round int) *dirauth.BandwidthFile {
	at := time.Duration(round) * c.cfg.Params.Period
	files := make([]*dirauth.BandwidthFile, len(c.auths))
	for i, a := range c.auths {
		files[i] = a.BandwidthFile(at)
	}
	return dirauth.MergeMedianFile("coord", at, files)
}

// writeSnapshot streams a round's merged v3bw-style snapshot straight to
// disk: a million-line bandwidth file is never materialized in memory.
func (c *Coordinator) writeSnapshot(round int, merged *dirauth.BandwidthFile) (string, error) {
	if err := os.MkdirAll(c.cfg.SnapshotDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(c.cfg.SnapshotDir, fmt.Sprintf("v3bw-round-%05d.txt", round))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := merged.WriteTo(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}
