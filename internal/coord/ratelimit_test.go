package coord

import (
	"testing"
	"time"
)

func TestRelayLimiterBurstAndRefill(t *testing.T) {
	l := NewRelayLimiter(1, 2) // 1 attempt/s, burst 2
	cur := time.Unix(1000, 0)
	l.now = func() time.Time { return cur }

	if !l.Allow("r1") || !l.Allow("r1") {
		t.Fatal("burst of 2 should be allowed")
	}
	if l.Allow("r1") {
		t.Fatal("third immediate attempt should be denied")
	}
	// Buckets are per relay.
	if !l.Allow("r2") {
		t.Fatal("other relay has its own bucket")
	}
	// One second refills one token.
	cur = cur.Add(time.Second)
	if !l.Allow("r1") {
		t.Fatal("token should refill after 1s")
	}
	if l.Allow("r1") {
		t.Fatal("bucket should be empty again")
	}
	// Refill is capped at the burst.
	cur = cur.Add(time.Hour)
	if !l.Allow("r1") || !l.Allow("r1") {
		t.Fatal("long idle refills to burst")
	}
	if l.Allow("r1") {
		t.Fatal("refill must not exceed burst")
	}
}

func TestRelayLimiterRetain(t *testing.T) {
	l := NewRelayLimiter(1, 1)
	cur := time.Unix(1000, 0)
	l.now = func() time.Time { return cur }

	if !l.Allow("gone") || l.Allow("gone") {
		t.Fatal("burst of 1")
	}
	l.Retain(map[string]bool{"kept": true})
	if len(l.buckets) != 0 {
		t.Fatalf("buckets not pruned: %v", l.buckets)
	}
	// A pruned relay starts over with a fresh burst.
	if !l.Allow("gone") {
		t.Fatal("pruned relay should get a fresh bucket")
	}
	// Retain is a no-op on nil and disabled limiters.
	var nilLimiter *RelayLimiter
	nilLimiter.Retain(nil)
	NewRelayLimiter(0, 0).Retain(nil)
}

func TestRelayLimiterDisabled(t *testing.T) {
	l := NewRelayLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if !l.Allow("r") {
			t.Fatal("zero rate disables limiting")
		}
	}
	var nilLimiter *RelayLimiter
	if !nilLimiter.Allow("r") {
		t.Fatal("nil limiter allows everything")
	}
}
