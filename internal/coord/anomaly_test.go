package coord

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"flashflow/internal/adversary"
	"flashflow/internal/core"
	"flashflow/internal/relay"
)

// churnSource serves a different population each round, driven by a
// per-round membership function.
type churnSource struct {
	mu      sync.Mutex
	round   int
	members func(round int) []core.RelayEstimate
}

func (s *churnSource) Relays() []core.RelayEstimate {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round++
	return s.members(s.round)
}

func liarBackend(t *testing.T, seed int64) *adversary.Backend {
	t.Helper()
	inner := core.NewSimBackend([]core.PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 1e9},
		{RTT: 90 * time.Millisecond, LinkBps: 1e9},
	}, seed)
	inner.AddTarget("liar", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "liar", TorCapBps: 50e6}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest,
	})
	inner.AddTarget("honest", &core.SimTarget{
		Relay:    relay.New(relay.Config{Name: "honest", TorCapBps: 50e6}),
		LinkBps:  1e9,
		Behavior: core.BehaviorHonest,
	})
	b := adversary.New(inner, "bw0", seed)
	b.SetAttack("liar", adversary.Inflate{Factor: 40})
	return b
}

func anomalyTeam() []*core.Measurer {
	return []*core.Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
	}
}

func runChurnRounds(t *testing.T, retain int, members func(round int) []core.RelayEstimate, rounds int) *Coordinator {
	t.Helper()
	p := core.DefaultParams()
	p.SlotSeconds = 4
	auth := core.NewBWAuth("bw0", anomalyTeam(), liarBackend(t, 1), p)
	c, err := New(Config{
		Params:              p,
		Workers:             2,
		MaxAttempts:         1,
		MaxRounds:           rounds,
		RetryBase:           time.Millisecond,
		RetryMax:            2 * time.Millisecond,
		AnomalyRetainRounds: retain,
	}, []*core.BWAuth{auth}, &churnSource{members: members})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAnomalyRetainedAcrossChurn is the flapping-liar regression test:
// the relay lies in round 1, departs for rounds 2–3, and rejoins in
// round 4 — its anomaly record must survive the absence and keep
// accumulating, not restart from zero.
func TestAnomalyRetainedAcrossChurn(t *testing.T) {
	liar := core.RelayEstimate{Name: "liar", EstimateBps: 50e6}
	honest := core.RelayEstimate{Name: "honest", EstimateBps: 50e6}
	members := func(round int) []core.RelayEstimate {
		if round == 2 || round == 3 {
			return []core.RelayEstimate{honest} // liar flaps out
		}
		return []core.RelayEstimate{honest, liar}
	}

	c := runChurnRounds(t, 8, members, 1)
	after1, ok := c.Anomalies("liar")
	if !ok || after1.ClampedSeconds == 0 {
		t.Fatalf("liar not flagged after round 1: %+v ok=%v", after1, ok)
	}

	c = runChurnRounds(t, 8, members, 4)
	after4, ok := c.Anomalies("liar")
	if !ok {
		t.Fatal("liar's anomaly record was dropped across churn")
	}
	if after4.ClampedSeconds <= after1.ClampedSeconds {
		t.Fatalf("rejoining liar's record did not accumulate: round1=%d, round4=%d",
			after1.ClampedSeconds, after4.ClampedSeconds)
	}
	if st := c.Status(); st.Anomalies["liar"].ClampedSeconds != after4.ClampedSeconds {
		t.Fatalf("Status().Anomalies disagrees with Anomalies(): %+v", st.Anomalies["liar"])
	}
	if got := c.cfg.Counters.Get("coord_anomaly_clamped_seconds"); got == 0 {
		t.Fatal("coord_anomaly_clamped_seconds counter not incremented")
	}
}

// TestAnomalyForgottenPastWindow: a relay gone longer than the retention
// window is forgotten — the table must not grow forever.
func TestAnomalyForgottenPastWindow(t *testing.T) {
	liar := core.RelayEstimate{Name: "liar", EstimateBps: 50e6}
	honest := core.RelayEstimate{Name: "honest", EstimateBps: 50e6}
	members := func(round int) []core.RelayEstimate {
		if round == 1 {
			return []core.RelayEstimate{honest, liar}
		}
		return []core.RelayEstimate{honest}
	}
	c := runChurnRounds(t, 2, members, 5) // gone for 4 rounds > window 2
	if _, ok := c.Anomalies("liar"); ok {
		t.Fatal("departed relay's anomaly record outlived the retention window")
	}
}

// TestSplitViewDetected: a relay lying to one of three BWAuths shows the
// teams divergent capacities; the median vote absorbs the lie and the
// split-view counter records the disagreement.
func TestSplitViewDetected(t *testing.T) {
	p := core.DefaultParams()
	p.SlotSeconds = 4
	const capBps = 50e6
	auths := make([]*core.BWAuth, 3)
	for i := range auths {
		name := fmt.Sprintf("bw%d", i)
		inner := core.NewSimBackend([]core.PathModel{
			{RTT: 40 * time.Millisecond, LinkBps: 1e9},
			{RTT: 90 * time.Millisecond, LinkBps: 1e9},
		}, int64(i+1))
		inner.AddTarget("split", &core.SimTarget{
			Relay:    relay.New(relay.Config{Name: "split", TorCapBps: capBps}),
			LinkBps:  1e9,
			Behavior: core.BehaviorHonest,
		})
		b := adversary.New(inner, name, int64(i+1))
		b.SetAttack("split", adversary.SelectiveLie{
			LieTo: map[string]bool{"bw0": true},
			Sub:   adversary.EchoCheat{Boost: 3, CheckProb: 0},
		})
		auths[i] = core.NewBWAuth(name, anomalyTeam(), b, p)
	}
	c, err := New(Config{
		Params:      p,
		Workers:     3,
		MaxAttempts: 1,
		MaxRounds:   1,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	}, auths, StaticRelays{{Name: "split", EstimateBps: capBps}})
	if err != nil {
		t.Fatal(err)
	}
	var rep RoundReport
	c.cfg.OnRound = func(r RoundReport) { rep = r }
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	a, ok := c.Anomalies("split")
	if !ok || a.SplitViewRounds == 0 {
		t.Fatalf("split-view lying not flagged: %+v ok=%v", a, ok)
	}
	// The median across the three teams absorbs the one lied-to view.
	if est := rep.Estimates["split"]; est > 1.35*capBps {
		t.Fatalf("median estimate %.2fx truth — the lie leaked through", est/capBps)
	}
}
