// Package coord runs FlashFlow as a long-lived service: a Coordinator
// owns a set of bandwidth authorities and repeatedly executes the §4.3
// measurement schedule over the full relay population — one round per
// measurement period — feeding each round's estimates back into the next
// round's scheduling priors and publishing v3bw-style bandwidth-file
// snapshots for directory-authority aggregation (§4.2–§5).
//
// The seed system only supported one-shot runs; this package adds the
// operational machinery a continuous deployment needs: a bounded worker
// pool executing a round's slot assignments concurrently against
// concurrency-safe BWAuths, retry with exponential backoff and jitter for
// failed or inconclusive slots, a per-relay rate limiter so a flapping
// relay cannot monopolize team capacity, a per-target connection pool
// (Pool) reusing authenticated wire connections across rounds, and a
// Status/counters surface wired into internal/metrics.
//
// # Durable state
//
// A Coordinator configured with a store.Store survives restarts. The
// paper's deployment model (§4.3) measures the whole network over a
// multi-day period; losing the scheduling priors on a crash would force
// the next process to re-run the slow convergence from default
// capacities, and losing the §5 anomaly windows would reset the evidence
// an operator needs to act on a misbehaving relay. The coordinator
// therefore WAL-appends every prior update and anomaly observation as it
// happens, checkpoints a full snapshot every Config.CheckpointEvery
// rounds plus once on shutdown, and on construction replays
// snapshot+WAL so the process resumes exactly where its predecessor
// stopped: same round counter, same priors, same anomaly retention
// clocks, and the last published v3bw snapshot re-announced to
// OnSnapshot so the serving plane is warm before the first new round.
// Store errors after recovery never fail a round — they increment
// coord_store_errors and the coordinator keeps measuring, degraded to
// the durability of its last good write.
package coord
