package coord

import (
	"testing"
	"time"
)

// TestBackoffScheduleMonotoneWithJitterBounds pins the backoff contract:
// attempt 0 is immediate, the jitter interval for attempt i is
// [d/2, d] with d = min(base·2^(i−1), max), and both interval bounds grow
// monotonically until they reach the cap.
func TestBackoffScheduleMonotoneWithJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	max := 800 * time.Millisecond
	b := NewBackoff(base, max, 1)

	if d := b.Next(0); d != 0 {
		t.Fatalf("attempt 0 should be immediate, got %v", d)
	}

	wantHi := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
		800 * time.Millisecond,
	}
	var prevLo, prevHi time.Duration
	for i := 1; i <= len(wantHi); i++ {
		lo, hi := b.Bounds(i)
		if hi != wantHi[i-1] {
			t.Fatalf("attempt %d: hi = %v, want %v", i, hi, wantHi[i-1])
		}
		if lo != hi/2 {
			t.Fatalf("attempt %d: lo = %v, want %v", i, lo, hi/2)
		}
		if lo < prevLo || hi < prevHi {
			t.Fatalf("attempt %d: bounds shrank: [%v,%v] after [%v,%v]", i, lo, hi, prevLo, prevHi)
		}
		prevLo, prevHi = lo, hi
		// The jittered draw stays inside the interval.
		for j := 0; j < 200; j++ {
			if d := b.Next(i); d < lo || d > hi {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", i, d, lo, hi)
			}
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if b.Base <= 0 || b.Max < b.Base {
		t.Fatalf("defaults: base %v max %v", b.Base, b.Max)
	}
	// Max below base is raised to base.
	b2 := NewBackoff(time.Second, time.Millisecond, 1)
	if b2.Max != time.Second {
		t.Fatalf("max below base: %v", b2.Max)
	}
	if lo, hi := b2.Bounds(5); hi != time.Second || lo != 500*time.Millisecond {
		t.Fatalf("capped bounds: [%v, %v]", lo, hi)
	}
}
