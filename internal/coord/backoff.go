package coord

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes retry delays for failed or inconclusive measurement
// slots: exponential doubling from Base capped at Max, with half-jitter —
// the delay before attempt i is drawn uniformly from [d/2, d] where
// d = min(Base·2^(i−1), Max) — so a burst of simultaneous failures (a
// flapping relay taking a whole slot's assignments down with it) does not
// retry in lockstep. Attempt 0 carries no delay.
//
// Both jitter bounds are monotone non-decreasing in the attempt number
// until they reach the cap; coord_test.go pins that property.
type Backoff struct {
	// Base is the uncapped delay before the first retry (attempt 1).
	Base time.Duration
	// Max caps the grown delay (the jitter lower bound is Max/2 there).
	Max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff creates a backoff schedule with a deterministic jitter
// stream.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Bounds returns the [lo, hi] jitter interval for attempt i without
// consuming randomness. Attempt 0 is [0, 0].
func (b *Backoff) Bounds(attempt int) (lo, hi time.Duration) {
	if attempt <= 0 {
		return 0, 0
	}
	hi = b.Base
	for i := 1; i < attempt; i++ {
		hi *= 2
		if hi >= b.Max {
			hi = b.Max
			break
		}
	}
	if hi > b.Max {
		hi = b.Max
	}
	return hi / 2, hi
}

// Next returns the jittered delay to wait before the given attempt
// (0-based; attempt 0 returns zero so the first try runs immediately).
func (b *Backoff) Next(attempt int) time.Duration {
	lo, hi := b.Bounds(attempt)
	if hi <= lo {
		return lo
	}
	b.mu.Lock()
	d := lo + time.Duration(b.rng.Int63n(int64(hi-lo)+1))
	b.mu.Unlock()
	return d
}
