package coord

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
)

// readV3BW loads and parses a snapshot file.
func readV3BW(path string) (*dirauth.BandwidthFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dirauth.ParseV3BW(f)
}

// fakeBackend is a deterministic core.Backend: a target echoes
// min(capacity, allocation) every second, so measurements behave like an
// ideal noise-free relay — conclusive exactly when the allocation carries
// the §4.2 excess factor over true capacity. Per-target failure budgets,
// a global block channel, and an optional per-second delay drive the
// retry, shutdown, and cancellation-latency tests.
type fakeBackend struct {
	mu          sync.Mutex
	capBps      map[string]float64
	failures    map[string]int // fail this many calls (-1: always)
	capErrs     map[string]int // fail this many calls with ErrInsufficientCapacity (-1: always)
	failFrom    map[string]int // fail every call from this per-target call index (1-based) on
	callsPer    map[string]int
	allocs      []float64 // TotalBps per RunMeasurement call, in order
	started     int
	finished    int
	block       chan struct{}  // when non-nil, RunMeasurement waits on it (or ctx)
	secondDelay time.Duration  // when >0, each simulated second costs this much wall clock
	lateSeconds map[string]int // seconds emitted after ctx cancellation, per target
}

func newFakeBackend(caps map[string]float64) *fakeBackend {
	return &fakeBackend{
		capBps:      caps,
		failures:    make(map[string]int),
		capErrs:     make(map[string]int),
		failFrom:    make(map[string]int),
		callsPer:    make(map[string]int),
		lateSeconds: make(map[string]int),
	}
}

func (f *fakeBackend) RunMeasurement(ctx context.Context, target string, alloc core.Allocation, seconds int, sink core.SampleSink) (core.MeasurementData, error) {
	f.mu.Lock()
	f.started++
	f.allocs = append(f.allocs, alloc.TotalBps)
	block := f.block
	delay := f.secondDelay
	fail := false
	if n := f.failures[target]; n != 0 {
		fail = true
		if n > 0 {
			f.failures[target] = n - 1
		}
	}
	capErr := false
	if n := f.capErrs[target]; n != 0 {
		capErr = true
		if n > 0 {
			f.capErrs[target] = n - 1
		}
	}
	if from := f.failFrom[target]; from > 0 && f.callsPer[target] >= from {
		fail = true
	}
	f.callsPer[target]++
	capBps, known := f.capBps[target]
	f.mu.Unlock()

	defer func() {
		f.mu.Lock()
		f.finished++
		f.mu.Unlock()
	}()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return core.MeasurementData{}, ctx.Err()
		}
	}
	if capErr {
		return core.MeasurementData{}, fmt.Errorf("fake alloc: %w", core.ErrInsufficientCapacity)
	}
	if fail {
		return core.MeasurementData{}, fmt.Errorf("fake: %s unreachable", target)
	}
	if !known {
		return core.MeasurementData{}, fmt.Errorf("fake: unknown target %s", target)
	}
	echo := math.Min(capBps, alloc.TotalBps)
	series := make([]float64, 0, seconds)
	for j := 0; j < seconds; j++ {
		if err := ctx.Err(); err != nil {
			return core.MeasurementData{MeasBytes: [][]float64{series}}, err
		}
		if delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return core.MeasurementData{MeasBytes: [][]float64{series}}, ctx.Err()
			}
			if ctx.Err() != nil {
				// Emitting a second after cancellation counts against the
				// prompt-teardown contract; record it so tests can bound
				// the teardown in simulated seconds.
				f.mu.Lock()
				f.lateSeconds[target]++
				f.mu.Unlock()
			}
		}
		series = append(series, echo/8) // bytes per second
		if sink != nil {
			sink(core.Sample{Second: j, MeasBytes: series[j : j+1]})
		}
	}
	return core.MeasurementData{MeasBytes: [][]float64{series}}, nil
}

func (f *fakeBackend) calls() (started, finished int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.started, f.finished
}

func testParams() core.Params {
	p := core.DefaultParams()
	p.SlotSeconds = 2
	return p
}

func testAuth(name string, backend core.Backend, p core.Params) *core.BWAuth {
	team := []*core.Measurer{
		{Name: name + "-m1", CapacityBps: 500e6, Cores: 2},
		{Name: name + "-m2", CapacityBps: 500e6, Cores: 2},
	}
	return core.NewBWAuth(name, team, backend, p)
}

// TestCoordinatorConsecutiveRounds runs three rounds over a small
// population with two BWAuths and checks that every round measures every
// relay conclusively and the medians land on the true capacities.
func TestCoordinatorConsecutiveRounds(t *testing.T) {
	caps := map[string]float64{
		"r1": 10e6, "r2": 25e6, "r3": 40e6, "r4": 60e6, "r5": 15e6, "r6": 33e6,
	}
	p := testParams()
	auths := []*core.BWAuth{
		testAuth("bw0", newFakeBackend(caps), p),
		testAuth("bw1", newFakeBackend(caps), p),
	}
	var source StaticRelays
	for name, c := range caps {
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: c})
	}

	var reports []RoundReport
	c, err := New(Config{
		Params:      p,
		Workers:     4,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
		MaxRounds:   3,
		OnRound:     func(r RoundReport) { reports = append(reports, r) },
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(reports) != 3 {
		t.Fatalf("rounds completed: %d", len(reports))
	}
	for _, rep := range reports {
		if rep.Scheduled != len(caps)*len(auths) {
			t.Fatalf("round %d scheduled %d slots, want %d", rep.Round, rep.Scheduled, len(caps)*len(auths))
		}
		if rep.Conclusive != rep.Scheduled || len(rep.Unmeasured) != 0 {
			t.Fatalf("round %d: %s", rep.Round, rep)
		}
		for name, want := range caps {
			got, ok := rep.Estimates[name]
			if !ok {
				t.Fatalf("round %d: no estimate for %s", rep.Round, name)
			}
			if math.Abs(got-want)/want > 1e-6 {
				t.Fatalf("round %d: %s estimate %v, want %v", rep.Round, name, got, want)
			}
		}
	}
	st := c.Status()
	if st.Counters["coord_rounds_completed"] != 3 {
		t.Fatalf("counters: %v", st.Counters)
	}
	if st.LastRound == nil || st.LastRound.Round != 3 {
		t.Fatalf("status last round: %+v", st.LastRound)
	}
}

// TestFailingSlotsRetriedThenReported pins the retry edge case: a relay
// failing on every attempt must land in the round report as unmeasured
// with its attempt count — not silently dropped — while a relay that
// recovers after one failure is still measured.
func TestFailingSlotsRetriedThenReported(t *testing.T) {
	caps := map[string]float64{"good": 20e6, "flaky": 30e6, "dead": 25e6}
	backend := newFakeBackend(caps)
	backend.failures["dead"] = -1 // every attempt fails
	backend.failures["flaky"] = 1 // first attempt fails, retry succeeds

	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	source := StaticRelays{
		{Name: "good", EstimateBps: 20e6},
		{Name: "flaky", EstimateBps: 30e6},
		{Name: "dead", EstimateBps: 25e6},
	}
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 3,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
		MaxRounds:   1,
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := c.Status().LastRound
	if rep == nil {
		t.Fatal("no round report")
	}
	if len(rep.Unmeasured) != 1 {
		t.Fatalf("unmeasured: %+v", rep.Unmeasured)
	}
	um := rep.Unmeasured[0]
	if um.Relay != "dead" || um.BWAuth != "bw0" {
		t.Fatalf("unmeasured entry: %+v", um)
	}
	if um.Attempts != 3 {
		t.Fatalf("dead should burn all 3 attempts, got %d", um.Attempts)
	}
	if !strings.Contains(um.Reason, "unreachable") {
		t.Fatalf("reason should carry the failure: %q", um.Reason)
	}
	if rep.Retries < 3 { // dead retried twice, flaky once
		t.Fatalf("retries: %d", rep.Retries)
	}
	for _, name := range []string{"good", "flaky"} {
		if _, ok := rep.Estimates[name]; !ok {
			t.Fatalf("%s should be measured: %v", name, rep.Estimates)
		}
	}
	if _, ok := rep.Estimates["dead"]; ok {
		t.Fatal("dead must not have an estimate")
	}
}

// TestRoundsFeedPriors verifies the feedback loop: a relay whose source
// estimate is far below its capacity is measured with a small first-round
// allocation, but the next round's first allocation starts from the
// coordinator's measured median.
func TestRoundsFeedPriors(t *testing.T) {
	const trueCap = 80e6
	backend := newFakeBackend(map[string]float64{"r": trueCap})
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	source := StaticRelays{{Name: "r", EstimateBps: 5e6}}

	var round1Calls int
	c, err := New(Config{
		Params:      p,
		Workers:     1,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		MaxRounds:   2,
		OnRound: func(r RoundReport) {
			if r.Round == 1 {
				round1Calls, _ = backend.calls()
			}
		},
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	priors := c.Priors()
	if math.Abs(priors["r"]-trueCap)/trueCap > 1e-6 {
		t.Fatalf("prior after rounds: %v", priors["r"])
	}
	backend.mu.Lock()
	allocs := append([]float64(nil), backend.allocs...)
	backend.mu.Unlock()
	if round1Calls < 2 {
		t.Fatalf("low prior should need multiple doubling attempts in round 1, got %d", round1Calls)
	}
	if len(allocs) <= round1Calls {
		t.Fatal("round 2 never measured")
	}
	// Round 2's first allocation starts from the measured capacity, not
	// the stale source estimate.
	firstRound2 := allocs[round1Calls]
	f := p.ExcessFactor()
	if firstRound2 < 0.9*f*trueCap {
		t.Fatalf("round 2 first allocation %v should start near f·cap = %v", firstRound2, f*trueCap)
	}
	// And round 1's first allocation reflected the low prior.
	if allocs[0] > 0.5*f*trueCap {
		t.Fatalf("round 1 first allocation %v unexpectedly high", allocs[0])
	}
}

// TestGracefulShutdownCancelsInFlight pins the shutdown contract of the
// streaming pipeline: on cancellation, measurements already executing are
// cancelled (the backend sees ctx.Done and returns immediately — the block
// channel is never released), every backend call still returns (started ==
// finished), queued and cancelled slots are reported unmeasured with a
// shutdown reason, and the final report is marked partial. The old
// contract waited out in-flight slots; the refactored coordinator must
// not.
func TestGracefulShutdownCancelsInFlight(t *testing.T) {
	caps := make(map[string]float64)
	var source StaticRelays
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("r%d", i)
		caps[name] = 20e6
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: 20e6})
	}
	backend := newFakeBackend(caps)
	backend.block = make(chan struct{}) // never closed: only cancellation can release a slot
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}

	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	// Wait until both workers hold an in-flight measurement.
	deadline := time.Now().Add(5 * time.Second)
	for {
		started, _ := backend.calls()
		if started >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never started measuring")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	started, finished := backend.calls()
	if started != finished {
		t.Fatalf("in-flight measurements not drained: started %d finished %d", started, finished)
	}
	rep := c.Status().LastRound
	if rep == nil || !rep.Partial {
		t.Fatalf("final report should be partial: %+v", rep)
	}
	if rep.Conclusive != 0 {
		t.Fatalf("no slot can conclude when the backend only unblocks on cancel: %+v", rep)
	}
	if len(rep.Unmeasured) != rep.Scheduled {
		t.Fatalf("every slot must be reported: %d unmeasured, %d scheduled",
			len(rep.Unmeasured), rep.Scheduled)
	}
	for _, um := range rep.Unmeasured {
		if !strings.Contains(um.Reason, "shutdown") {
			t.Fatalf("reason: %+v", um)
		}
	}
}

// TestShutdownCancellationLatency is the headline latency guarantee of the
// streaming refactor: with a deliberately slow backend (200 ms per
// simulated second, 30-second slots — a six-second slot), cancelling Run's
// context must return well under one slot length, and the backend must
// stop within two simulated seconds of the cancellation.
func TestShutdownCancellationLatency(t *testing.T) {
	const perSecond = 200 * time.Millisecond
	backend := newFakeBackend(map[string]float64{"slow": 20e6})
	backend.secondDelay = perSecond
	p := testParams()
	p.SlotSeconds = 30 // full slot = 6 s of wall clock on this backend
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	c, err := New(Config{
		Params:      p,
		Workers:     1,
		MaxAttempts: 1,
		RetryBase:   time.Millisecond,
	}, auths, StaticRelays{{Name: "slow", EstimateBps: 20e6}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	// Let the slot stream a few seconds, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Status(); len(st.Measuring) > 0 && st.Measuring[0].Second >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never started streaming")
		}
		time.Sleep(time.Millisecond)
	}
	cancelAt := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	latency := time.Since(cancelAt)
	slot := time.Duration(p.SlotSeconds) * perSecond
	if latency > slot/3 {
		t.Fatalf("shutdown latency %v not well under one slot (%v)", latency, slot)
	}
	backend.mu.Lock()
	late := backend.lateSeconds["slow"]
	backend.mu.Unlock()
	if late > 2 {
		t.Fatalf("backend emitted %d seconds after cancellation, want ≤ 2", late)
	}

	// The cancelled slot's completed seconds were salvaged into a partial
	// estimate rather than thrown away.
	rep := c.Status().LastRound
	if rep == nil || !rep.Partial {
		t.Fatalf("final report should be partial: %+v", rep)
	}
	if est := rep.Estimates["slow"]; est <= 0 {
		t.Fatalf("cancelled slot's completed seconds should be salvaged: %+v", rep)
	}
}

// TestStatusReportsLiveProgress checks the progress tee: while a slow slot
// streams, Status().Measuring exposes the relay, its allocation, and an
// advancing second counter.
func TestStatusReportsLiveProgress(t *testing.T) {
	backend := newFakeBackend(map[string]float64{"r": 20e6})
	backend.secondDelay = 20 * time.Millisecond
	p := testParams()
	p.SlotSeconds = 50
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	c, err := New(Config{
		Params:      p,
		Workers:     1,
		MaxAttempts: 1,
		RetryBase:   time.Millisecond,
		MaxRounds:   1,
	}, auths, StaticRelays{{Name: "r", EstimateBps: 20e6}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Run(context.Background()) }()

	deadline := time.Now().Add(5 * time.Second)
	var seen SlotProgress
	for {
		st := c.Status()
		if len(st.Measuring) > 0 && st.Measuring[0].Second >= 2 {
			seen = st.Measuring[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no live progress observed")
		}
		time.Sleep(time.Millisecond)
	}
	if seen.Relay != "r" || seen.BWAuth != "bw0" {
		t.Fatalf("progress identity: %+v", seen)
	}
	if seen.AllocatedBps <= 0 || seen.Bytes <= 0 || seen.SlotSeconds != 50 {
		t.Fatalf("progress payload: %+v", seen)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := len(c.Status().Measuring); got != 0 {
		t.Fatalf("progress entries must be cleared after the slot: %d", got)
	}
}

// TestCapacityCollisionsDeferWithoutBurningAttempts pins the contention
// edge case: ErrInsufficientCapacity means the allocation collided with
// in-flight measurements, so the slot is deferred with backoff without
// consuming its attempt budget — but only up to a bounded number of
// deferrals, after which the slot terminates as unmeasured.
func TestCapacityCollisionsDeferWithoutBurningAttempts(t *testing.T) {
	caps := map[string]float64{"contended": 20e6, "starved": 20e6}
	backend := newFakeBackend(caps)
	backend.capErrs["contended"] = 2 // two collisions, then capacity frees up
	backend.capErrs["starved"] = -1  // capacity never frees up
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 1, // deferrals must not consume this single attempt
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
		MaxRounds:   1,
	}, auths, StaticRelays{
		{Name: "contended", EstimateBps: 20e6},
		{Name: "starved", EstimateBps: 20e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := c.Status().LastRound
	if _, ok := rep.Estimates["contended"]; !ok {
		t.Fatalf("contended should be measured once capacity frees: %+v", rep)
	}
	if len(rep.Unmeasured) != 1 || rep.Unmeasured[0].Relay != "starved" {
		t.Fatalf("starved should terminate unmeasured: %+v", rep.Unmeasured)
	}
	if !strings.Contains(rep.Unmeasured[0].Reason, "insufficient") {
		t.Fatalf("reason: %q", rep.Unmeasured[0].Reason)
	}
	if rep.Retries < 2 {
		t.Fatalf("deferrals should show as retries: %d", rep.Retries)
	}
}

// TestPartialOutcomeSalvagedOnError pins the salvage contract: a relay
// whose doubling loop produced an estimate before a later attempt errored
// is reported as inconclusively measured with that estimate, not dropped
// to unmeasured.
func TestPartialOutcomeSalvagedOnError(t *testing.T) {
	// Huge capacity keeps every estimate inconclusive (echo == alloc), and
	// from the second backend call on, every call errors.
	backend := newFakeBackend(map[string]float64{"droop": 1e12})
	backend.failFrom["droop"] = 1
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	c, err := New(Config{
		Params:      p,
		Workers:     1,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		MaxRounds:   1,
	}, auths, StaticRelays{{Name: "droop", EstimateBps: 10e6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := c.Status().LastRound
	if len(rep.Unmeasured) != 0 {
		t.Fatalf("partial estimate should be salvaged: %+v", rep.Unmeasured)
	}
	if rep.Inconclusive != 1 {
		t.Fatalf("inconclusive: %d", rep.Inconclusive)
	}
	if est := rep.Estimates["droop"]; est <= 0 {
		t.Fatalf("salvaged estimate missing: %v", rep.Estimates)
	}
}

// roundSource yields a different population per round.
type roundSource struct {
	mu   sync.Mutex
	pops [][]core.RelayEstimate
	i    int
}

func (s *roundSource) Relays() []core.RelayEstimate {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.i
	if idx >= len(s.pops) {
		idx = len(s.pops) - 1
	}
	s.i++
	return append([]core.RelayEstimate(nil), s.pops[idx]...)
}

// TestDepartedRelaysPruned checks a relay that leaves the population stops
// being published and its state is dropped everywhere.
func TestDepartedRelaysPruned(t *testing.T) {
	caps := map[string]float64{"stay": 10e6, "leave": 20e6}
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", newFakeBackend(caps), p)}
	dir := t.TempDir()
	source := &roundSource{pops: [][]core.RelayEstimate{
		{{Name: "stay", EstimateBps: 10e6}, {Name: "leave", EstimateBps: 20e6}},
		{{Name: "stay", EstimateBps: 10e6}},
	}}
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxRounds:   2,
		RetryBase:   time.Millisecond,
		SnapshotDir: dir,
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Priors()["leave"]; ok {
		t.Fatal("departed relay still in priors")
	}
	f, err := readV3BW(c.Status().LastRound.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Entries["leave"]; ok {
		t.Fatalf("departed relay still published: %v", f.Entries)
	}
	if _, ok := f.Entries["stay"]; !ok {
		t.Fatalf("staying relay missing: %v", f.Entries)
	}
}

// TestPartialParamsRejected: a partially filled Params must be rejected by
// New rather than silently replaced with the defaults.
func TestPartialParamsRejected(t *testing.T) {
	auths := []*core.BWAuth{testAuth("bw0", newFakeBackend(nil), core.DefaultParams())}
	_, err := New(Config{
		Params: core.Params{Sockets: 8}, // SlotSeconds etc. missing
	}, auths, StaticRelays{})
	if err == nil {
		t.Fatal("partial Params should fail validation")
	}
}

// TestRateLimiterDefersFlappingRelay runs a population where one relay's
// bucket only allows a single attempt per round-trip and checks the
// deferral counters move while the relay still completes.
func TestRateLimiterDefersFlappingRelay(t *testing.T) {
	backend := newFakeBackend(map[string]float64{"r": 20e6})
	backend.failures["r"] = 2 // two failures force three attempts
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	c, err := New(Config{
		Params:              p,
		Workers:             2,
		MaxAttempts:         5,
		RetryBase:           time.Millisecond,
		RetryMax:            2 * time.Millisecond,
		RelayAttemptsPerSec: 20,
		RelayBurst:          1,
		MaxRounds:           1,
	}, auths, StaticRelays{{Name: "r", EstimateBps: 20e6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := c.Status().LastRound
	if _, ok := rep.Estimates["r"]; !ok {
		t.Fatalf("relay should eventually be measured: %+v", rep)
	}
	if rep.RateLimited == 0 {
		t.Fatal("limiter should have deferred at least one attempt")
	}
}

// TestSnapshotsWritten checks the periodic v3bw snapshots land on disk and
// parse back to the round's estimates — and that a relay that was never
// successfully measured does not appear with a fabricated capacity.
func TestSnapshotsWritten(t *testing.T) {
	caps := map[string]float64{"r1": 10e6, "r2": 30e6}
	p := testParams()
	backend := newFakeBackend(caps)
	backend.failures["ghost"] = -1 // never measured successfully
	auths := []*core.BWAuth{testAuth("bw0", backend, p)}
	dir := t.TempDir()
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxRounds:   2,
		RetryBase:   time.Millisecond,
		SnapshotDir: dir,
	}, auths, StaticRelays{
		{Name: "r1", EstimateBps: 10e6},
		{Name: "r2", EstimateBps: 30e6},
		{Name: "ghost", EstimateBps: 20e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := c.Status().LastRound
	if rep.SnapshotPath == "" {
		t.Fatal("no snapshot written")
	}
	if c.Status().Counters["coord_snapshots_written"] != 2 {
		t.Fatalf("counters: %v", c.Status().Counters)
	}
	f, err := readV3BW(rep.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range caps {
		e, ok := f.Entries[name]
		if !ok {
			t.Fatalf("snapshot missing %s", name)
		}
		if math.Abs(e.CapacityBps-want)/want > 1e-6 {
			t.Fatalf("%s capacity in snapshot: %v", name, e.CapacityBps)
		}
	}
	// The unmeasurable relay's seeded prior must not be published.
	if _, ok := f.Entries["ghost"]; ok {
		t.Fatalf("never-measured relay published in snapshot: %v", f.Entries)
	}
}

// TestUnscheduledRelaysSurfaced: a relay whose required capacity exceeds
// every slot's team budget cannot be placed by the §4.3 scheduler; the
// coordinator must surface it in the round report, the status view, and
// the operational counters rather than silently skipping it.
func TestUnscheduledRelaysSurfaced(t *testing.T) {
	caps := map[string]float64{"r1": 10e6, "r2": 25e6, "whale": 5e9}
	p := testParams()
	auths := []*core.BWAuth{
		testAuth("bw0", newFakeBackend(caps), p),
		testAuth("bw1", newFakeBackend(caps), p),
	}
	source := StaticRelays{
		{Name: "r1", EstimateBps: 10e6},
		{Name: "r2", EstimateBps: 25e6},
		// Needs f·5e9 ≈ 14.8 Gbit/s of team capacity; the teams have 1.
		{Name: "whale", EstimateBps: 5e9},
	}
	var reports []RoundReport
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
		MaxRounds:   1,
		OnRound:     func(r RoundReport) { reports = append(reports, r) },
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("rounds: %d", len(reports))
	}
	rep := reports[0]
	if len(rep.Unscheduled) != 1 || rep.Unscheduled[0] != "whale" {
		t.Fatalf("unscheduled: %v", rep.Unscheduled)
	}
	// The schedulable relays still ran on both BWAuths.
	if rep.Scheduled != 4 || rep.Conclusive != 4 {
		t.Fatalf("scheduled/conclusive: %d/%d", rep.Scheduled, rep.Conclusive)
	}
	if _, ok := rep.Estimates["whale"]; ok {
		t.Fatal("unscheduled relay must not produce an estimate")
	}
	st := c.Status()
	if st.Unscheduled != 1 {
		t.Fatalf("status unscheduled: %d", st.Unscheduled)
	}
	if st.Counters["coord_relays_unscheduled"] != 1 {
		t.Fatalf("counter: %v", st.Counters["coord_relays_unscheduled"])
	}
}

// TestRoundArenasReused: the planning arenas (population buffer, job
// arena, schedule builder) must not grow per-round allocations on a
// stable population — pinned loosely by checking the coordinator reuses
// its population buffer's backing array across rounds.
func TestRoundArenasReused(t *testing.T) {
	caps := map[string]float64{"r1": 10e6, "r2": 25e6, "r3": 40e6}
	p := testParams()
	auths := []*core.BWAuth{testAuth("bw0", newFakeBackend(caps), p)}
	source := StaticRelays{
		{Name: "r1", EstimateBps: 10e6},
		{Name: "r2", EstimateBps: 25e6},
		{Name: "r3", EstimateBps: 40e6},
	}
	c, err := New(Config{
		Params:      p,
		Workers:     2,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
		MaxRounds:   3,
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cap(c.popBuf) < len(source) {
		t.Fatalf("population buffer not retained: cap %d", cap(c.popBuf))
	}
	if cap(c.jobArena) < len(source) {
		t.Fatalf("job arena not retained: cap %d", cap(c.jobArena))
	}
}
