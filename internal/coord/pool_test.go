package coord

import (
	"net"
	"sync"
	"testing"
	"time"

	"flashflow/internal/wire"
)

// pipeServer fabricates dialable connections: each dial returns the client
// half of a net.Pipe whose server half is parked (a quietly listening
// peer), matching an idle measurement connection.
type pipeServer struct {
	mu      sync.Mutex
	dials   int
	servers []net.Conn
}

func (s *pipeServer) dial() (net.Conn, error) {
	c1, c2 := net.Pipe()
	s.mu.Lock()
	s.dials++
	s.servers = append(s.servers, c2)
	s.mu.Unlock()
	return c1, nil
}

func (s *pipeServer) dialCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dials
}

func (s *pipeServer) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.servers {
		c.Close()
	}
}

func markReusable(t *testing.T, c net.Conn) {
	t.Helper()
	sess, ok := c.(wire.Session)
	if !ok {
		t.Fatal("pooled conn must implement wire.Session")
	}
	sess.MarkReusable()
}

func TestPoolReusesHealthyConn(t *testing.T) {
	srv := &pipeServer{}
	defer srv.closeAll()
	p := NewPool(2, time.Minute)
	defer p.Close()
	dial := p.Dialer("tgt", srv.dial)

	c1, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c1.(wire.Session).MarkAuthenticated()
	markReusable(t, c1)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	if srv.dialCount() != 1 {
		t.Fatalf("reuse should not dial: %d dials", srv.dialCount())
	}
	if !c2.(wire.Session).Authenticated() {
		t.Fatal("authentication must persist across reuse")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPoolNeverExceedsCap(t *testing.T) {
	srv := &pipeServer{}
	defer srv.closeAll()
	p := NewPool(2, time.Minute)
	defer p.Close()
	dial := p.Dialer("tgt", srv.dial)

	conns := make([]net.Conn, 5)
	for i := range conns {
		c, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	for _, c := range conns {
		markReusable(t, c)
		c.Close()
	}
	st := p.Stats()
	if st.Idle != 2 {
		t.Fatalf("idle %d exceeds cap 2", st.Idle)
	}
	if st.Overflow != 3 {
		t.Fatalf("overflow: %+v", st)
	}
}

func TestPoolEvictsStaleConns(t *testing.T) {
	srv := &pipeServer{}
	defer srv.closeAll()
	p := NewPool(2, 10*time.Millisecond)
	defer p.Close()
	dial := p.Dialer("tgt", srv.dial)

	c, _ := dial()
	markReusable(t, c)
	c.Close()
	time.Sleep(25 * time.Millisecond)

	if _, err := dial(); err != nil {
		t.Fatal(err)
	}
	if srv.dialCount() != 2 {
		t.Fatalf("stale conn should be evicted, dials = %d", srv.dialCount())
	}
	if st := p.Stats(); st.Evictions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPoolEvictsDeadConns(t *testing.T) {
	srv := &pipeServer{}
	p := NewPool(2, time.Minute)
	defer p.Close()
	dial := p.Dialer("tgt", srv.dial)

	c, _ := dial()
	markReusable(t, c)
	c.Close()
	srv.closeAll() // peer goes away while the conn is parked

	if _, err := dial(); err != nil {
		t.Fatal(err)
	}
	if srv.dialCount() != 2 {
		t.Fatalf("dead conn should fail the health probe, dials = %d", srv.dialCount())
	}
	if st := p.Stats(); st.Evictions != 1 || st.Idle != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPoolAbortedConnNotParked(t *testing.T) {
	srv := &pipeServer{}
	defer srv.closeAll()
	p := NewPool(2, time.Minute)
	defer p.Close()
	dial := p.Dialer("tgt", srv.dial)

	c, _ := dial()
	// No MarkReusable: the measurement aborted mid-protocol.
	c.Close()
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("aborted conn must not be parked: %+v", st)
	}
	if _, err := dial(); err != nil {
		t.Fatal(err)
	}
	if srv.dialCount() != 2 {
		t.Fatalf("dials = %d", srv.dialCount())
	}
}

func TestPoolPruneAndClose(t *testing.T) {
	srv := &pipeServer{}
	defer srv.closeAll()
	p := NewPool(4, 5*time.Millisecond)
	dial := p.Dialer("tgt", srv.dial)

	c, _ := dial()
	markReusable(t, c)
	c.Close()
	time.Sleep(15 * time.Millisecond)
	p.Prune()
	if st := p.Stats(); st.Idle != 0 || st.Evictions != 1 {
		t.Fatalf("after prune: %+v", st)
	}

	// Close makes future parks close instead of pooling.
	c2, _ := dial()
	p.Close()
	markReusable(t, c2)
	c2.Close()
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("park after close: %+v", st)
	}
}
