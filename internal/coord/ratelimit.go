package coord

import (
	"sync"
	"time"
)

// RelayLimiter rate-limits measurement attempts per relay: a flapping
// relay whose slots keep failing would otherwise cycle through the retry
// queue as fast as workers free up, monopolizing team capacity that
// healthy relays' slots need. Each relay has a token bucket of attempts;
// Allow is non-blocking — a denied attempt goes back through the backoff
// path instead of queueing.
type RelayLimiter struct {
	rate  float64 // attempt tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*attemptBucket
	now     func() time.Time // injectable for tests
}

type attemptBucket struct {
	tokens float64
	last   time.Time
}

// NewRelayLimiter creates a limiter granting ratePerSec attempts per
// second per relay with the given burst. A nonpositive rate disables
// limiting (Allow always succeeds).
func NewRelayLimiter(ratePerSec float64, burst int) *RelayLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &RelayLimiter{
		rate:    ratePerSec,
		burst:   float64(burst),
		buckets: make(map[string]*attemptBucket),
		now:     time.Now,
	}
}

// Retain drops the buckets of every relay not in keep. The coordinator
// calls it with each round's population so relays that leave the network
// do not leak buckets over a long-lived run.
func (l *RelayLimiter) Retain(keep map[string]bool) {
	if l == nil || l.rate <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for relay := range l.buckets {
		if !keep[relay] {
			delete(l.buckets, relay)
		}
	}
}

// Allow reports whether the relay may be attempted now, consuming one
// token if so.
func (l *RelayLimiter) Allow(relay string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[relay]
	if !ok {
		b = &attemptBucket{tokens: l.burst, last: now}
		l.buckets[relay] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
