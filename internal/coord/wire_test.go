package coord

import (
	"context"
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/wire"
)

// TestCoordinatorWireRoundsWithPool is the end-to-end acceptance test: a
// Coordinator runs three consecutive scheduler rounds against the
// in-process relay stack (real wire protocol over localhost TCP), with
// connection reuse observable after round 1 and a permanently failing
// relay retried with backoff and reported unmeasured.
func TestCoordinatorWireRoundsWithPool(t *testing.T) {
	if testing.Short() {
		t.Skip("wire rounds take a few seconds of real slot time")
	}

	rates := map[string]float64{"alpha": 8e6, "beta": 12e6, "gamma": 16e6}

	// Measurement team: two members, identities authorized at every
	// honest target.
	ids := make([]wire.Identity, 2)
	for i := range ids {
		var err error
		ids[i], err = wire.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
	}

	addrs := make(map[string]string)
	for name, rate := range rates {
		tgt := wire.NewTarget(wire.TargetConfig{RateBps: rate})
		tgt.Authorize(ids[0].Pub, ids[1].Pub)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go tgt.Serve(l)
		addrs[name] = l.Addr().String()
	}
	// "reject" speaks the protocol but authorizes nobody, so every
	// attempt fails at authentication — the retry path over real wire.
	rejectTgt := wire.NewTarget(wire.TargetConfig{RateBps: 8e6})
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	go rejectTgt.Serve(rl)
	addrs["reject"] = rl.Addr().String()

	pool := NewPool(4, time.Minute)
	defer pool.Close()

	members := make([]wire.Member, len(ids))
	for i := range ids {
		member := i
		members[i] = wire.Member{
			Identity: ids[i],
			Dial: func(target string) wire.Dialer {
				addr := addrs[target]
				key := fmt.Sprintf("%s/m%d", target, member)
				return pool.Dialer(key, func() (net.Conn, error) {
					return net.Dial("tcp", addr)
				})
			},
		}
	}

	p := core.DefaultParams()
	p.SlotSeconds = 1
	p.Sockets = 4
	p.CheckProb = 0.01

	backend := &wire.Backend{Members: members, CheckProb: p.CheckProb, Seed: 7}
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 200e6, Cores: 2},
		{Name: "m2", CapacityBps: 200e6, Cores: 2},
	}
	auths := []*core.BWAuth{core.NewBWAuth("bw0", team, backend, p)}

	source := StaticRelays{
		{Name: "alpha", EstimateBps: rates["alpha"]},
		{Name: "beta", EstimateBps: rates["beta"]},
		{Name: "gamma", EstimateBps: rates["gamma"]},
		{Name: "reject", EstimateBps: 8e6},
	}

	var reports []RoundReport
	c, err := New(Config{
		Params:      p,
		Workers:     4,
		MaxAttempts: 2,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
		MaxRounds:   3,
		Pool:        pool,
		OnRound:     func(r RoundReport) { reports = append(reports, r) },
	}, auths, source)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(reports) != 3 {
		t.Fatalf("rounds completed: %d", len(reports))
	}
	for i, rep := range reports {
		for name, rate := range rates {
			got, ok := rep.Estimates[name]
			if !ok {
				t.Fatalf("round %d: %s unmeasured: %s", rep.Round, name, rep)
			}
			if math.Abs(got-rate)/rate > 0.3 {
				t.Fatalf("round %d: %s estimate %.1f Mbit/s, true %.1f Mbit/s",
					rep.Round, name, got/1e6, rate/1e6)
			}
		}
		// The rejecting relay burns its attempt budget and is reported.
		found := false
		for _, um := range rep.Unmeasured {
			if um.Relay == "reject" {
				found = true
				if um.Attempts != 2 {
					t.Fatalf("round %d: reject attempts %d, want 2", rep.Round, um.Attempts)
				}
			}
		}
		if !found {
			t.Fatalf("round %d: reject missing from unmeasured: %+v", rep.Round, rep.Unmeasured)
		}
		if rep.Retries == 0 {
			t.Fatalf("round %d: reject should have been retried", rep.Round)
		}
		// Connection reuse: from round 2 on, slots ride pooled conns.
		if i > 0 && rep.Pool.Hits == 0 {
			t.Fatalf("round %d: no pool hits: %+v", rep.Round, rep.Pool)
		}
	}
	if reports[0].Pool.Misses == 0 {
		t.Fatal("round 1 should dial fresh connections")
	}
	if reports[2].Pool.Hits <= reports[1].Pool.Hits {
		t.Fatalf("hits should keep accumulating: %+v then %+v", reports[1].Pool, reports[2].Pool)
	}

	// Every honest relay's slot concluded on the real protocol each
	// round: 3 relays × 3 rounds.
	var conclusive int
	for _, rep := range reports {
		conclusive += rep.Conclusive
	}
	if conclusive != 9 {
		t.Fatalf("conclusive slots: %d, want 9", conclusive)
	}
}
