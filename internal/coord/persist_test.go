package coord

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/store"
)

// persistAuths builds the population and BWAuth pair for the persistence
// tests: relay "twofaced" shows bw0 a quarter of what it shows bw1 (§5
// selective lying, ratio 4 > the 1.5 SplitViewFactor), so every completed
// round deterministically adds one SplitViewRounds count to its window.
// When block is non-nil, every measurement waits on it (or cancellation),
// which lets a test freeze a round mid-flight.
func persistAuths(block chan struct{}) ([]*core.BWAuth, StaticRelays) {
	p := testParams()
	caps0 := map[string]float64{"r1": 10e6, "r2": 25e6, "twofaced": 10e6}
	caps1 := map[string]float64{"r1": 10e6, "r2": 25e6, "twofaced": 40e6}
	b0, b1 := newFakeBackend(caps0), newFakeBackend(caps1)
	b0.block, b1.block = block, block
	relays := StaticRelays{
		{Name: "r1", EstimateBps: 10e6},
		{Name: "r2", EstimateBps: 25e6},
		{Name: "twofaced", EstimateBps: 20e6},
	}
	return []*core.BWAuth{testAuth("bw0", b0, p), testAuth("bw1", b1, p)}, relays
}

func persistConfig(s store.Store, maxRounds int) Config {
	return Config{
		Params:    testParams(),
		Store:     s,
		MaxRounds: maxRounds,
	}
}

// anomalyView extracts the coordinator's windowed anomaly table (counts
// and lastSeen) for comparison across restarts.
func anomalyView(c *Coordinator) map[string]relayAnomaly {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]relayAnomaly, len(c.anomalies))
	for name, a := range c.anomalies {
		out[name] = *a
	}
	return out
}

func copyStateDir(t *testing.T, src, dst string) {
	t.Helper()
	for _, name := range []string{store.SnapshotFile, store.WALFile} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartResumesState is the crash-recovery integration test: a
// coordinator runs two full rounds against a file store, a successor is
// killed mid-round three (both the graceful-cancellation path and a
// kill -9 simulated by copying the state dir while round three is frozen
// in flight), and each restart must come back with identical priors,
// identical §5 anomaly windows, and resume at round four.
func TestRestartResumesState(t *testing.T) {
	dir := t.TempDir()

	// Life 1: two clean rounds, checkpointing every round.
	s1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	auths, relays := persistAuths(nil)
	cfg := persistConfig(s1, 2)
	var published []int
	cfg.OnSnapshot = func(round int, f *dirauth.BandwidthFile) {
		published = append(published, round)
	}
	c1, err := New(cfg, auths, relays)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Run(context.Background()); err != nil {
		t.Fatalf("life 1: %v", err)
	}
	wantPriors := c1.Priors()
	wantAnoms := anomalyView(c1)
	if len(wantPriors) != 3 {
		t.Fatalf("life 1 priors = %v, want 3 relays", wantPriors)
	}
	if a := wantAnoms["twofaced"]; a.counts.SplitViewRounds != 2 || a.lastSeen != 2 {
		t.Fatalf("life 1 anomalies = %+v, want twofaced with 2 split-view rounds seen at round 2", wantAnoms)
	}
	// No Close: a real crash does not close files, and every mutation was
	// synced on its way in.

	// Life 2: recover, then die mid-round 3 while every slot is frozen.
	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{}) // never closed: only cancellation releases a slot
	auths2, relays2 := persistAuths(block)
	cfg2 := persistConfig(s2, 0)
	// The hook fires once during New (the recovered round-2 snapshot)
	// and again for the partial round 3, whose merged file is empty
	// because every slot was frozen — record both, assert on the first.
	type pub struct{ round, entries int }
	var recovered []pub
	cfg2.OnSnapshot = func(round int, f *dirauth.BandwidthFile) {
		recovered = append(recovered, pub{round, len(f.Entries)})
	}
	reports := make(chan RoundReport, 4)
	cfg2.OnRound = func(rep RoundReport) { reports <- rep }
	c2, err := New(cfg2, auths2, relays2)
	if err != nil {
		t.Fatalf("life 2 recovery: %v", err)
	}
	// Recovery must republish the last checkpointed snapshot (round 2,
	// all three relays) before any new round runs, and restore the maps
	// exactly.
	if !reflect.DeepEqual(recovered, []pub{{2, 3}}) {
		t.Fatalf("recovered snapshot publications = %v, want [{2 3}]", recovered)
	}
	if got := c2.Priors(); !reflect.DeepEqual(got, wantPriors) {
		t.Fatalf("recovered priors = %v, want %v", got, wantPriors)
	}
	if got := anomalyView(c2); !reflect.DeepEqual(got, wantAnoms) {
		t.Fatalf("recovered anomalies = %+v, want %+v", got, wantAnoms)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- c2.Run(ctx) }()
	// Wait until round 3 is genuinely in flight (a slot reached a
	// backend), then capture the on-disk state: this copy is exactly what
	// a kill -9 at this instant would leave behind.
	killDir := t.TempDir()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c2.Status().InFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("round 3 never started a slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	copyStateDir(t, dir, killDir)
	cancel()
	if err := <-runErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("life 2 run: %v", err)
	}
	rep := <-reports
	if rep.Round != 3 || !rep.Partial {
		t.Fatalf("life 2 report = round %d partial=%v, want partial round 3", rep.Round, rep.Partial)
	}

	// Life 3a: restart after the graceful cancellation (final checkpoint
	// flushed round 3). The frozen round measured nothing, so priors and
	// counts are unchanged; the retention sweep refreshed twofaced's
	// lastSeen to 3, and that refresh must have reached the store.
	check := func(t *testing.T, stateDir string, wantLastSeen, wantNextRound int) {
		s, err := store.Open(stateDir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		auths3, relays3 := persistAuths(nil)
		cfg3 := persistConfig(s, 1)
		reports := make(chan RoundReport, 2)
		cfg3.OnRound = func(rep RoundReport) { reports <- rep }
		c3, err := New(cfg3, auths3, relays3)
		if err != nil {
			t.Fatal(err)
		}
		if got := c3.Priors(); !reflect.DeepEqual(got, wantPriors) {
			t.Fatalf("priors = %v, want %v", got, wantPriors)
		}
		got := anomalyView(c3)
		want := map[string]relayAnomaly{"twofaced": {counts: wantAnoms["twofaced"].counts, lastSeen: wantLastSeen}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("anomalies = %+v, want %+v", got, want)
		}
		if err := c3.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if rep := <-reports; rep.Round != wantNextRound {
			t.Fatalf("resumed at round %d, want %d", rep.Round, wantNextRound)
		}
		s.Close()
	}
	t.Run("graceful", func(t *testing.T) { check(t, dir, 3, 4) })

	// Life 3b: restart from the kill -9 image. The in-flight round's only
	// durable trace is its round marker, so the restart skips past it —
	// lastSeen still reads 2 (the sweep's refresh had not run when the
	// process died), and work resumes at round 4, never re-running 3.
	t.Run("kill9", func(t *testing.T) { check(t, killDir, 2, 4) })
}

// TestStoreErrorsDegrade proves a broken store cannot take the
// measurement plane down: rounds keep completing on in-memory state and
// the failures surface as coord_store_errors.
func TestStoreErrorsDegrade(t *testing.T) {
	ms := store.NewMem()
	ms.AppendErr = errors.New("disk on fire")
	auths, relays := persistAuths(nil)
	cfg := persistConfig(ms, 2)
	c, err := New(cfg, auths, relays)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Counters["coord_store_errors"] == 0 {
		t.Fatal("append failures not counted")
	}
	if got := st.Counters["coord_rounds_completed"]; got != 2 {
		t.Fatalf("rounds completed = %d, want 2 despite store errors", got)
	}
	if len(c.Priors()) != 3 {
		t.Fatalf("in-memory priors lost: %v", c.Priors())
	}
	// Checkpoints still work (only Append fails), so the final state is
	// durable even though the WAL was not.
	if ms.Checkpoints() == 0 {
		t.Fatal("no checkpoint taken")
	}
}

// TestCheckpointMatchesLiveState proves the checkpointed store state is
// the coordinator's state: loading the store after a run yields the same
// round, priors, and anomaly windows the coordinator reports.
func TestCheckpointMatchesLiveState(t *testing.T) {
	ms := store.NewMem()
	auths, relays := persistAuths(nil)
	cfg := persistConfig(ms, 3)
	cfg.CheckpointEvery = 2 // rounds 1 and 3 land in the WAL, round 2 in a snapshot
	c, err := New(cfg, auths, relays)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// MaxRounds=3 with CheckpointEvery=2: finishRound checkpointed round
	// 2, and Run's exit flushed round 3 — the shutdown-flush bugfix.
	if got := ms.Checkpoints(); got != 2 {
		t.Fatalf("checkpoints = %d, want 2 (cadence + final flush)", got)
	}
	st, err := ms.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 3 {
		t.Fatalf("stored round = %d, want 3", st.Round)
	}
	if !reflect.DeepEqual(st.Priors, c.Priors()) {
		t.Fatalf("stored priors = %v, live %v", st.Priors, c.Priors())
	}
	live := anomalyView(c)
	if len(st.Anomalies) != len(live) {
		t.Fatalf("stored anomalies = %+v, live %+v", st.Anomalies, live)
	}
	for name, rec := range st.Anomalies {
		if rec.Counts != live[name].counts || rec.LastSeen != live[name].lastSeen {
			t.Fatalf("stored %s = %+v, live %+v", name, rec, live[name])
		}
	}
}
