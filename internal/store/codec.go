package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"flashflow/internal/core"
)

// This file is the durable binary codec shared by the WAL and the
// snapshot. Everything is varint-based except float64s (fixed 8 bytes,
// IEEE-754 bits little-endian, so values round-trip exactly), strings
// are length-prefixed, and map-shaped data is emitted in sorted key
// order so encoding the same State twice yields byte-identical output —
// the property the replay-determinism tests pin and the reason two
// recoveries of the same files agree exactly.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || uint64(len(p)-w) < n {
		return "", p, fmt.Errorf("store: truncated string")
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func decodeFloat(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, p, fmt.Errorf("store: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
}

func decodeUvarint(p []byte) (uint64, []byte, error) {
	v, w := binary.Uvarint(p)
	if w <= 0 {
		return 0, p, fmt.Errorf("store: truncated varint")
	}
	return v, p[w:], nil
}

// appendRecord appends one WAL record's payload (the CRC frame is the
// caller's job). Submission-only fields follow the common fields for
// KindSubmission records; the original kinds are byte-for-byte the
// format-version-1 layout.
func appendRecord(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendUvarint(buf, uint64(rec.Round))
	buf = appendString(buf, rec.Relay)
	buf = appendFloat(buf, rec.Bps)
	buf = rec.Counts.AppendBinary(buf)
	if rec.Kind == KindSubmission {
		buf = binary.AppendUvarint(buf, uint64(rec.Version))
		buf = binary.AppendUvarint(buf, uint64(rec.Unix))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Body)))
		buf = append(buf, rec.Body...)
	}
	return buf
}

// decodeRecord parses one record payload. The payload must be exactly
// one record: trailing bytes mean the frame and the codec disagree,
// which is corruption, not extensibility (extensibility lives in the
// file-header version and the anomaly field-count prefix).
func decodeRecord(p []byte) (Record, error) {
	var rec Record
	if len(p) == 0 {
		return rec, fmt.Errorf("store: empty record")
	}
	rec.Kind = Kind(p[0])
	if rec.Kind < KindRound || rec.Kind > KindSubmission {
		return rec, fmt.Errorf("store: unknown record kind %d", rec.Kind)
	}
	p = p[1:]
	round, p, err := decodeUvarint(p)
	if err != nil {
		return rec, err
	}
	rec.Round = int(round)
	if rec.Relay, p, err = decodeString(p); err != nil {
		return rec, err
	}
	if rec.Bps, p, err = decodeFloat(p); err != nil {
		return rec, err
	}
	if rec.Counts, p, err = core.DecodeAnomalyCounts(p); err != nil {
		return rec, err
	}
	if rec.Kind == KindSubmission {
		var v, unix, blen uint64
		if v, p, err = decodeUvarint(p); err != nil {
			return rec, err
		}
		rec.Version = uint16(v)
		if unix, p, err = decodeUvarint(p); err != nil {
			return rec, err
		}
		rec.Unix = int64(unix)
		if blen, p, err = decodeUvarint(p); err != nil {
			return rec, err
		}
		if uint64(len(p)) < blen {
			return rec, fmt.Errorf("store: truncated submission body")
		}
		rec.Body = append([]byte(nil), p[:blen]...)
		p = p[blen:]
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("store: %d trailing bytes after record", len(p))
	}
	return rec, nil
}

// appendState appends the snapshot payload: round, sorted priors, sorted
// anomaly records, then the v3bw body.
func appendState(buf []byte, st *State) []byte {
	buf = binary.AppendUvarint(buf, uint64(st.Round))

	names := make([]string, 0, len(st.Priors))
	for n := range st.Priors {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
		buf = appendFloat(buf, st.Priors[n])
	}

	names = names[:0]
	for n := range st.Anomalies {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		a := st.Anomalies[n]
		buf = appendString(buf, n)
		buf = binary.AppendUvarint(buf, uint64(a.LastSeen))
		buf = a.Counts.AppendBinary(buf)
	}

	buf = binary.AppendUvarint(buf, uint64(st.V3BW.Round))
	buf = binary.AppendUvarint(buf, uint64(len(st.V3BW.Body)))
	buf = append(buf, st.V3BW.Body...)

	// Submissions section (format version 2). Version-1 snapshots simply
	// end after the v3bw body; decodeState treats a missing section as an
	// empty map.
	names = names[:0]
	for n := range st.Submissions {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		sub := st.Submissions[n]
		buf = appendString(buf, n)
		buf = binary.AppendUvarint(buf, uint64(sub.Round))
		buf = binary.AppendUvarint(buf, uint64(sub.Version))
		buf = binary.AppendUvarint(buf, uint64(sub.Unix))
		buf = binary.AppendUvarint(buf, uint64(len(sub.Body)))
		buf = append(buf, sub.Body...)
	}
	return buf
}

// sizeHint bounds a declared element count by the smallest encoding an
// element can have (9 bytes: length byte + one-byte name + fixed float,
// or name + varint + field-count prefix), yielding a map-preallocation
// hint that corrupt counts cannot inflate past the payload itself.
func sizeHint(n uint64, remaining int) int {
	if max := uint64(remaining / 9); n > max {
		n = max
	}
	return int(n)
}

// decodeState parses a snapshot payload written by appendState.
func decodeState(p []byte) (*State, error) {
	st := NewState()
	round, p, err := decodeUvarint(p)
	if err != nil {
		return nil, err
	}
	st.Round = int(round)

	n, p, err := decodeUvarint(p)
	if err != nil {
		return nil, err
	}
	// Presize from the declared count: growing a million-entry map
	// through its doublings would dominate recovery time. The hint is
	// capped by what the remaining bytes could possibly hold (every
	// entry costs ≥9 bytes), so a corrupt count cannot drive a huge
	// allocation before the decode loop fails on truncation.
	st.Priors = make(map[string]float64, sizeHint(n, len(p)))
	for i := uint64(0); i < n; i++ {
		var name string
		var bps float64
		if name, p, err = decodeString(p); err != nil {
			return nil, err
		}
		if bps, p, err = decodeFloat(p); err != nil {
			return nil, err
		}
		st.Priors[name] = bps
	}

	if n, p, err = decodeUvarint(p); err != nil {
		return nil, err
	}
	st.Anomalies = make(map[string]AnomalyRecord, sizeHint(n, len(p)))
	for i := uint64(0); i < n; i++ {
		var name string
		var last uint64
		var rec AnomalyRecord
		if name, p, err = decodeString(p); err != nil {
			return nil, err
		}
		if last, p, err = decodeUvarint(p); err != nil {
			return nil, err
		}
		rec.LastSeen = int(last)
		if rec.Counts, p, err = core.DecodeAnomalyCounts(p); err != nil {
			return nil, err
		}
		st.Anomalies[name] = rec
	}

	if n, p, err = decodeUvarint(p); err != nil {
		return nil, err
	}
	st.V3BW.Round = int(n)
	if n, p, err = decodeUvarint(p); err != nil {
		return nil, err
	}
	if uint64(len(p)) < n {
		return nil, fmt.Errorf("store: truncated v3bw body")
	}
	if n > 0 {
		st.V3BW.Body = append([]byte(nil), p[:n]...)
	}
	p = p[n:]

	// Submissions section. Absent in format-version-1 snapshots, whose
	// payload ends exactly at the v3bw body.
	if len(p) == 0 {
		return st, nil
	}
	if n, p, err = decodeUvarint(p); err != nil {
		return nil, err
	}
	st.Submissions = make(map[string]SubmissionRecord, sizeHint(n, len(p)))
	for i := uint64(0); i < n; i++ {
		var name string
		var round, version, unix, blen uint64
		var sub SubmissionRecord
		if name, p, err = decodeString(p); err != nil {
			return nil, err
		}
		if round, p, err = decodeUvarint(p); err != nil {
			return nil, err
		}
		if version, p, err = decodeUvarint(p); err != nil {
			return nil, err
		}
		if unix, p, err = decodeUvarint(p); err != nil {
			return nil, err
		}
		if blen, p, err = decodeUvarint(p); err != nil {
			return nil, err
		}
		if uint64(len(p)) < blen {
			return nil, fmt.Errorf("store: truncated submission body")
		}
		sub.Round, sub.Version, sub.Unix = int(round), uint16(version), int64(unix)
		sub.Body = append([]byte(nil), p[:blen]...)
		p = p[blen:]
		st.Submissions[name] = sub
	}
	return st, nil
}
