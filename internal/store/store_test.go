package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flashflow/internal/core"
)

// testRecords is a representative mutation sequence: two rounds of prior
// updates, anomaly evidence with deltas that must accumulate, and
// deletions from the retention sweep.
func testRecords() []Record {
	return []Record{
		{Kind: KindRound, Round: 1},
		{Kind: KindPrior, Relay: "relay-a", Bps: 125e6},
		{Kind: KindPrior, Relay: "relay-b", Bps: 40e6},
		{Kind: KindAnomaly, Relay: "liar", Round: 1, Counts: core.AnomalyCounts{ClampedSeconds: 7, SplitViewRounds: 1}},
		{Kind: KindRound, Round: 2},
		{Kind: KindPrior, Relay: "relay-a", Bps: 130e6},
		{Kind: KindAnomaly, Relay: "liar", Round: 2, Counts: core.AnomalyCounts{SplitViewRounds: 1}},
		{Kind: KindPriorDelete, Relay: "relay-b"},
		{Kind: KindAnomalyDelete, Relay: "ghost"},
		// A merge node's submission records: bw0 submits twice (latest
		// wins on replay, like live acceptance), bw1 once.
		{Kind: KindSubmission, Relay: "bw0", Round: 1, Version: 1, Unix: 1700000000, Body: []byte("bw0 round1 view")},
		{Kind: KindSubmission, Relay: "bw0", Round: 2, Version: 1, Unix: 1700000600, Body: []byte("bw0 round2 view")},
		{Kind: KindSubmission, Relay: "bw1", Round: 2, Version: 1, Unix: 1700000610, Body: []byte("bw1 round2 view")},
	}
}

// wantState is the state testRecords must replay into.
func wantState() *State {
	st := NewState()
	st.Round = 2
	st.Priors["relay-a"] = 130e6
	st.Anomalies["liar"] = AnomalyRecord{
		Counts:   core.AnomalyCounts{ClampedSeconds: 7, SplitViewRounds: 2},
		LastSeen: 2,
	}
	st.Submissions["bw0"] = SubmissionRecord{Round: 2, Version: 1, Unix: 1700000600, Body: []byte("bw0 round2 view")}
	st.Submissions["bw1"] = SubmissionRecord{Round: 2, Version: 1, Unix: 1700000610, Body: []byte("bw1 round2 view")}
	return st
}

func mustOpenLoad(t *testing.T, dir string) (*FileStore, *State) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return s, st
}

func checkState(t *testing.T, got, want *State) {
	t.Helper()
	if got.Round != want.Round {
		t.Errorf("Round = %d, want %d", got.Round, want.Round)
	}
	if !reflect.DeepEqual(got.Priors, want.Priors) {
		t.Errorf("Priors = %v, want %v", got.Priors, want.Priors)
	}
	if !reflect.DeepEqual(got.Anomalies, want.Anomalies) {
		t.Errorf("Anomalies = %v, want %v", got.Anomalies, want.Anomalies)
	}
	if got.V3BW.Round != want.V3BW.Round || !bytes.Equal(got.V3BW.Body, want.V3BW.Body) {
		t.Errorf("V3BW = (%d, %q), want (%d, %q)", got.V3BW.Round, got.V3BW.Body, want.V3BW.Round, want.V3BW.Body)
	}
	if !reflect.DeepEqual(got.Submissions, want.Submissions) {
		t.Errorf("Submissions = %v, want %v", got.Submissions, want.Submissions)
	}
}

func TestEmptyStateDir(t *testing.T) {
	dir := t.TempDir()
	s, st := mustOpenLoad(t, dir)
	defer s.Close()
	checkState(t, st, NewState())
	// An empty dir must still come up appendable: the first round of a
	// brand-new deployment logs into a freshly created WAL.
	if err := s.Append(Record{Kind: KindRound, Round: 1}); err != nil {
		t.Fatalf("Append on fresh dir: %v", err)
	}
}

func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Append(testRecords()...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// No Close: a crash does not close files, and synced appends must
	// survive anyway.
	s2, st := mustOpenLoad(t, dir)
	defer s2.Close()
	checkState(t, st, wantState())
}

func TestCheckpointPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Append(testRecords()...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ck := wantState()
	ck.V3BW = V3BW{Round: 2, Body: []byte("12345\n=====\nnode_id=relay-a bw=130 capacity=130000000\n")}
	if err := s.Checkpoint(ck); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-checkpoint tail: must replay on top of the snapshot.
	tail := []Record{
		{Kind: KindRound, Round: 3},
		{Kind: KindPrior, Relay: "relay-c", Bps: 9e6},
	}
	if err := s.Append(tail...); err != nil {
		t.Fatalf("Append tail: %v", err)
	}

	s2, st := mustOpenLoad(t, dir)
	defer s2.Close()
	want := ck.Clone()
	for _, rec := range tail {
		want.Apply(rec)
	}
	checkState(t, st, want)
}

func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Append(testRecords()...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	walPath := filepath.Join(dir, WALFile)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a prefix of the last frame. Try every
	// torn length from "just the length field" to "one byte short".
	full := appendFrame(nil, appendRecord(nil, Record{Kind: KindPrior, Relay: "torn-victim", Bps: 1e6}))
	for cut := 1; cut < len(full); cut += 7 {
		if err := os.WriteFile(walPath, append(append([]byte(nil), intact...), full[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, st := mustOpenLoad(t, dir)
		checkState(t, st, wantState())
		if _, ok := st.Priors["torn-victim"]; ok {
			t.Fatalf("cut=%d: torn record leaked into state", cut)
		}
		// The tail must be physically truncated so the next append
		// starts on a frame boundary...
		if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(len(intact)) {
			t.Fatalf("cut=%d: wal size = %v, want %d", cut, fi.Size(), len(intact))
		}
		// ...and the store must keep working after the repair.
		if err := s2.Append(Record{Kind: KindPrior, Relay: "post-repair", Bps: 2e6}); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		s2.Close()
		s3, st3 := mustOpenLoad(t, dir)
		if st3.Priors["post-repair"] != 2e6 {
			t.Fatalf("cut=%d: post-repair append lost", cut)
		}
		s3.Close()
		if err := os.WriteFile(walPath, intact, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptMidWALDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Append(testRecords()...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	walPath := filepath.Join(dir, WALFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the very first record: its CRC fails, and
	// the documented semantics drop everything from the first bad frame.
	raw[headerSize+frameSize] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, st := mustOpenLoad(t, dir)
	defer s2.Close()
	checkState(t, st, NewState())
}

func TestVersionSkewRejected(t *testing.T) {
	futureHeader := func(magic string) []byte {
		buf := append([]byte(nil), magic...)
		buf = binary.LittleEndian.AppendUint16(buf, FormatVersion+1)
		return binary.LittleEndian.AppendUint64(buf, 1)
	}

	t.Run("wal", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, WALFile), futureHeader(walMagic), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(); !errors.Is(err, ErrVersion) {
			t.Fatalf("Load of future-version wal: err = %v, want ErrVersion", err)
		}
	})
	t.Run("snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SnapshotFile), futureHeader(snapMagic), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(); !errors.Is(err, ErrVersion) {
			t.Fatalf("Load of future-version snapshot: err = %v, want ErrVersion", err)
		}
	})
}

func TestStaleWALGenerationDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	ck := wantState()
	if err := s.Checkpoint(ck); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.Close()

	// Simulate the crash window between the snapshot rename and the WAL
	// rotation: the WAL still carries the previous generation and
	// records already folded into the snapshot.
	stale := appendHeader(nil, walMagic, 1)
	dup := appendRecord(nil, Record{Kind: KindAnomaly, Relay: "liar", Round: 2, Counts: core.AnomalyCounts{SplitViewRounds: 1}})
	stale = appendFrame(stale, dup)
	if err := os.WriteFile(filepath.Join(dir, WALFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, st := mustOpenLoad(t, dir)
	defer s2.Close()
	// Replaying the stale record would double-count SplitViewRounds.
	checkState(t, st, ck)
}

func TestWALAheadOfSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Checkpoint(wantState()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Losing the snapshot while keeping its WAL must not silently come
	// up with only the tail's state.
	if err := os.Remove(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load with wal ahead of snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestReplayDeterminism(t *testing.T) {
	// Same WAL bytes, two independent recoveries: the checkpointed
	// snapshots must be byte-identical. This is what makes recovered
	// state comparable across nodes and restarts.
	dirA, dirB := t.TempDir(), t.TempDir()
	sA, _ := mustOpenLoad(t, dirA)
	if err := sA.Append(testRecords()...); err != nil {
		t.Fatal(err)
	}
	sA.Close()
	wal, err := os.ReadFile(filepath.Join(dirA, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, WALFile), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, dir := range []string{dirA, dirB} {
		s, st := mustOpenLoad(t, dir)
		checkState(t, st, wantState())
		if err := s.Checkpoint(st); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	snapA, err := os.ReadFile(filepath.Join(dirA, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := os.ReadFile(filepath.Join(dirB, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("same WAL produced different snapshots:\nA: %d bytes\nB: %d bytes", len(snapA), len(snapB))
	}
}

func TestMemMatchesFile(t *testing.T) {
	// The two implementations share Apply; prove the whole
	// load-append-checkpoint-load cycle agrees too.
	dir := t.TempDir()
	fs, _ := mustOpenLoad(t, dir)
	ms := NewMem()
	if _, err := ms.Load(); err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	mid := len(recs) / 2
	for _, s := range []Store{fs, ms} {
		if err := s.Append(recs[:mid]...); err != nil {
			t.Fatal(err)
		}
	}
	fsSt, err := func() (*State, error) { s2, st := mustOpenLoad(t, dir); s2.Close(); return st, nil }()
	if err != nil {
		t.Fatal(err)
	}
	msSt, _ := ms.Load()
	checkState(t, fsSt, msSt)

	for _, s := range []Store{fs, ms} {
		if err := s.Checkpoint(fsSt); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(recs[mid:]...); err != nil {
			t.Fatal(err)
		}
	}
	fs.Close()
	_, fsSt2 := mustOpenLoad(t, dir)
	msSt2, _ := ms.Load()
	checkState(t, fsSt2, msSt2)
	checkState(t, fsSt2, wantState())
}

func TestInterruptedCheckpointTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenLoad(t, dir)
	if err := s.Append(testRecords()...); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A checkpoint that died before its rename leaves tmp files; Open
	// must clear them and recovery must see only the live pair.
	for _, name := range []string{SnapshotFile + ".tmp", WALFile + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, st := mustOpenLoad(t, dir)
	defer s2.Close()
	checkState(t, st, wantState())
	for _, name := range []string{SnapshotFile + ".tmp", WALFile + ".tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s survived Open", name)
		}
	}
}

// TestFormatV1SnapshotReadable pins backward compatibility: a snapshot
// written before the submissions section (format version 1, payload
// ending exactly at the v3bw body) loads with an empty submissions map
// and everything else intact.
func TestFormatV1SnapshotReadable(t *testing.T) {
	st := wantState()
	st.Submissions = map[string]SubmissionRecord{}
	st.V3BW = V3BW{Round: 2, Body: []byte("v3bw body")}

	// appendState on a submission-free state emits the v1 payload plus a
	// single zero count byte; stripping it yields the exact v1 encoding.
	payload := appendState(nil, st)
	if payload[len(payload)-1] != 0 {
		t.Fatal("expected trailing zero submission count")
	}
	payload = payload[:len(payload)-1]

	hdr := append([]byte(nil), snapMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, 1) // format version 1
	hdr = binary.LittleEndian.AppendUint64(hdr, 3) // generation
	file := appendFrame(hdr, payload)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), file, 0o644); err != nil {
		t.Fatal(err)
	}

	s, got := mustOpenLoad(t, dir)
	defer s.Close()
	checkState(t, got, st)
	if len(got.Submissions) != 0 {
		t.Fatalf("v1 snapshot produced submissions: %v", got.Submissions)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		payload := appendRecord(nil, rec)
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decodeRecord(%+v): %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("round trip: got %+v, want %+v", got, rec)
		}
	}
	if _, err := decodeRecord(append(appendRecord(nil, Record{Kind: KindRound, Round: 1}), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := decodeRecord([]byte{0xfe}); err == nil {
		t.Error("unknown kind accepted")
	}
}
