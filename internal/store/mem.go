package store

import (
	"fmt"
	"sync"
)

// MemStore implements Store in memory with the same replay semantics as
// FileStore: Load returns the last checkpoint with the appended records
// applied on top via the shared State.Apply. Tests use it to exercise
// coordinator persistence without a filesystem, and its bookkeeping
// (append/checkpoint counts, injectable append failure) drives the
// error-tolerance tests.
type MemStore struct {
	mu sync.Mutex
	// AppendErr, when set, is returned by every Append — the coordinator
	// must degrade to counting store errors, not fail rounds.
	AppendErr error

	snapshot    *State
	wal         []Record
	loaded      bool
	appends     int
	checkpoints int
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Seed replaces the store's checkpoint state wholesale (test setup for
// "recover from a previous life" scenarios). Call before Load.
func (m *MemStore) Seed(st *State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = st.Clone()
	m.wal = nil
}

// Load implements Store.
func (m *MemStore) Load() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loaded = true
	st := NewState()
	if m.snapshot != nil {
		st = m.snapshot.Clone()
	}
	for _, rec := range m.wal {
		st.Apply(rec)
	}
	return st, nil
}

// Append implements Store.
func (m *MemStore) Append(recs ...Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.loaded {
		return fmt.Errorf("store: append before Load")
	}
	if m.AppendErr != nil {
		return m.AppendErr
	}
	m.wal = append(m.wal, recs...)
	m.appends++
	return nil
}

// Checkpoint implements Store.
func (m *MemStore) Checkpoint(st *State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.loaded {
		return fmt.Errorf("store: checkpoint before Load")
	}
	m.snapshot = st.Clone()
	m.wal = nil
	m.checkpoints++
	return nil
}

// Close implements Store; the state stays loadable by a fresh MemStore
// only if the caller kept a reference — memory stores do not survive the
// process, which is the point.
func (m *MemStore) Close() error { return nil }

// Appends reports how many Append batches succeeded.
func (m *MemStore) Appends() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appends
}

// Checkpoints reports how many checkpoints were taken.
func (m *MemStore) Checkpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoints
}

// WALLen reports how many records are logged since the last checkpoint.
func (m *MemStore) WALLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wal)
}
