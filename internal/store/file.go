package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// On-disk layout: a state directory holds exactly two live files plus
// transient *.tmp staging files (removed on Open).
//
//	snapshot  header | one CRC frame holding the encoded State
//	wal       header | CRC frames, one mutation Record each, appended
//
// Both headers are 16 bytes: 6-byte magic, uint16 format version, uint64
// generation, all little-endian. A frame is uint32 payload length,
// uint32 CRC-32C of the payload, then the payload. Checkpoint writes the
// snapshot to a tmp file and renames it into place, then rotates the WAL
// the same way, bumping the shared generation — so every crash point
// leaves either the old consistent pair, or a new snapshot with a stale
// lower-generation WAL that Load discards because its records are
// already folded into the snapshot.
const (
	snapMagic = "FFSNAP"
	walMagic  = "FFWAL\x00"

	// FormatVersion is the current snapshot/WAL format. Readers accept
	// files up to and including this version (older files decode with
	// missing fields zero, per the codec's extensibility rules) and
	// refuse newer ones with ErrVersion rather than misreading them.
	// Version 2 added the per-BWAuth submissions section (KindSubmission
	// records and the snapshot's trailing submissions map); version-1
	// files read back with an empty submissions map.
	FormatVersion = 2

	// SnapshotFile and WALFile are the live file names inside a state
	// directory.
	SnapshotFile = "snapshot"
	WALFile      = "wal"

	headerSize = 16
	frameSize  = 8 // length + CRC, before the payload
	// maxFrame bounds a single frame so a corrupt length field cannot
	// drive a multi-gigabyte allocation during replay.
	maxFrame = 1 << 30
)

var (
	// ErrVersion marks a state file written by a newer flashflow than
	// this binary understands; upgrade the binary instead of deleting
	// state.
	ErrVersion = errors.New("store: state file format is newer than this binary")
	// ErrCorrupt marks damage the torn-tail rule cannot absorb: a bad
	// snapshot, a mangled header, or a CRC-valid record that fails to
	// decode.
	ErrCorrupt = errors.New("store: corrupt state file")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a FileStore.
type Options struct {
	// NoSync skips fsync on appends and checkpoints. Benchmarks and
	// tests use it; a production coordinator should not, since an append
	// the OS still holds in its page cache is exactly what a power loss
	// eats.
	NoSync bool
}

// FileStore is the production Store: snapshot + WAL in one directory.
// Append is safe for concurrent use; Load/Checkpoint/Close follow the
// Store contract (round goroutine only).
type FileStore struct {
	dir  string
	opts Options

	mu     sync.Mutex
	wal    *os.File
	gen    uint64
	loaded bool
	closed bool
	// buf and payload are append scratch, reused across calls so a
	// steady round's WAL traffic does not allocate per record.
	buf     []byte
	payload []byte
}

// Open prepares a state directory (creating it if needed) and removes
// staging files a crashed checkpoint may have left. It touches neither
// live file; call Load to recover state before appending.
func Open(dir string, opts Options) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, name := range []string{SnapshotFile, WALFile} {
		// A leftover tmp file is an interrupted checkpoint that never
		// renamed into place; its contents are unreachable by design.
		_ = os.Remove(filepath.Join(dir, name+".tmp"))
	}
	return &FileStore{dir: dir, opts: opts}, nil
}

// Dir returns the state directory path.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) snapPath() string { return filepath.Join(s.dir, SnapshotFile) }
func (s *FileStore) walPath() string  { return filepath.Join(s.dir, WALFile) }

// appendHeader appends a 16-byte file header.
func appendHeader(buf []byte, magic string, gen uint64) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	return binary.LittleEndian.AppendUint64(buf, gen)
}

// parseHeader validates a file header and returns its generation.
func parseHeader(p []byte, magic, path string) (gen uint64, err error) {
	if len(p) < headerSize || string(p[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint16(p[len(magic):]); v > FormatVersion {
		return 0, fmt.Errorf("%w: %s: format version %d, this binary reads up to %d", ErrVersion, path, v, FormatVersion)
	}
	return binary.LittleEndian.Uint64(p[8:headerSize]), nil
}

// appendFrame wraps payload in a length+CRC frame.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readFrame extracts the frame starting at p, returning its payload and
// the remainder. ok=false means the bytes from p on are a torn or
// corrupt tail: incomplete header, impossible length, short payload, or
// CRC mismatch — everything a crash mid-append can leave behind.
func readFrame(p []byte) (payload, rest []byte, ok bool) {
	if len(p) < frameSize {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxFrame || uint64(len(p)) < frameSize+uint64(n) {
		return nil, nil, false
	}
	payload = p[frameSize : frameSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(p[4:]) {
		return nil, nil, false
	}
	return payload, p[frameSize+int(n):], true
}

// Load recovers the directory's state: the snapshot (if any) with the
// matching-generation WAL replayed on top. A torn WAL tail is truncated
// in place; a WAL whose generation trails the snapshot's (crash between
// the two checkpoint renames) is discarded and re-created. After Load
// the WAL is open for appends.
func (s *FileStore) Load() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: load after close")
	}
	if s.loaded {
		return nil, fmt.Errorf("store: Load called twice")
	}

	st := NewState()
	s.gen = 1
	if raw, err := os.ReadFile(s.snapPath()); err == nil {
		gen, err := parseHeader(raw, snapMagic, s.snapPath())
		if err != nil {
			return nil, err
		}
		payload, rest, ok := readFrame(raw[headerSize:])
		if !ok || len(rest) != 0 {
			// The snapshot is written whole and renamed into place, so a
			// bad frame is disk damage, not a crash artifact.
			return nil, fmt.Errorf("%w: %s: bad snapshot frame", ErrCorrupt, s.snapPath())
		}
		if st, err = decodeState(payload); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, s.snapPath(), err)
		}
		s.gen = gen
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}

	raw, err := os.ReadFile(s.walPath())
	switch {
	case os.IsNotExist(err):
		if err := s.writeWALHeader(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("store: read wal: %w", err)
	default:
		walGen, err := parseHeader(raw, walMagic, s.walPath())
		if err != nil {
			return nil, err
		}
		switch {
		case walGen > s.gen:
			// The WAL only rotates forward after its snapshot landed; a
			// newer WAL means the snapshot it depends on is gone.
			return nil, fmt.Errorf("%w: %s: wal generation %d without snapshot generation %d", ErrCorrupt, s.walPath(), walGen, s.gen)
		case walGen < s.gen:
			// Stale WAL from before the snapshot rename: every record in
			// it is already folded into the snapshot. Replaying would
			// double-apply anomaly deltas, so start a fresh log instead.
			if err := s.writeWALHeader(); err != nil {
				return nil, err
			}
		default:
			good := headerSize
			rest := raw[headerSize:]
			for len(rest) > 0 {
				payload, next, ok := readFrame(rest)
				if !ok {
					break
				}
				rec, err := decodeRecord(payload)
				if err != nil {
					return nil, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, s.walPath(), good, err)
				}
				st.Apply(rec)
				good += frameSize + len(payload)
				rest = next
			}
			if good < len(raw) {
				// Torn tail: the crash interrupted an append. Drop the
				// partial record so the next append starts on a frame
				// boundary.
				if err := os.Truncate(s.walPath(), int64(good)); err != nil {
					return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
				}
			}
		}
	}

	if s.wal == nil {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.loaded = true
	return st, nil
}

// writeWALHeader atomically installs a fresh, empty WAL at the current
// generation and opens it for appends.
func (s *FileStore) writeWALHeader() error {
	tmp := s.walPath() + ".tmp"
	if err := s.writeFileSync(tmp, appendHeader(nil, walMagic, s.gen)); err != nil {
		return err
	}
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if err := os.Rename(tmp, s.walPath()); err != nil {
		return fmt.Errorf("store: install wal: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	return s.openWAL()
}

func (s *FileStore) openWAL() error {
	f, err := os.OpenFile(s.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open wal for append: %w", err)
	}
	s.wal = f
	return nil
}

// Append frames and durably writes the records as one batch: one write,
// one fsync, regardless of batch size.
func (s *FileStore) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append after close")
	}
	if !s.loaded {
		return fmt.Errorf("store: append before Load")
	}
	s.buf = s.buf[:0]
	for _, rec := range recs {
		s.payload = appendRecord(s.payload[:0], rec)
		s.buf = appendFrame(s.buf, s.payload)
	}
	if _, err := s.wal.Write(s.buf); err != nil {
		return fmt.Errorf("store: append wal: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: sync wal: %w", err)
		}
	}
	return nil
}

// Checkpoint writes st as the new snapshot and rotates the WAL, both via
// tmp-file-plus-rename so every crash point leaves a recoverable pair.
func (s *FileStore) Checkpoint(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: checkpoint after close")
	}
	if !s.loaded {
		return fmt.Errorf("store: checkpoint before Load")
	}
	gen := s.gen + 1

	buf := appendHeader(s.buf[:0], snapMagic, gen)
	s.payload = appendState(s.payload[:0], st)
	buf = appendFrame(buf, s.payload)
	tmp := s.snapPath() + ".tmp"
	if err := s.writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The snapshot now owns everything the old WAL recorded; from here a
	// crash recovers via the gen check (stale WAL discarded).
	s.gen = gen
	s.buf = buf[:0]
	return s.writeWALHeader()
}

// Close syncs and closes the WAL handle. It does not checkpoint — the
// coordinator checkpoints on shutdown before closing.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	var err error
	if !s.opts.NoSync {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// writeFileSync writes data to path and fsyncs it (unless NoSync).
func (s *FileStore) writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync %s: %w", path, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs the state directory so renames are durable.
func (s *FileStore) syncDir() error {
	if s.opts.NoSync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
