// Package store makes the coordinator's cross-round state durable so a
// restarted coordd resumes warm instead of forgetting everything the §5
// defenses depend on: a flapping liar's accumulated anomaly window, the
// priors honest relays earned over previous rounds, the round counter,
// and the last published v3bw snapshot. The paper's deployment model
// (§4.3, §7) is a long-lived measurement service operated by real
// directory authorities; durable state is what turns a process restart
// from a measurement-quality reset into a non-event, and it is the
// prerequisite for rolling upgrades and a future multi-node BWAuth
// split.
//
// The design is a classic snapshot + append-only WAL pair behind a small
// Store interface:
//
//   - Append logs individual mutations (prior updates, anomaly evidence,
//     round advancement) as CRC-framed records, fsynced per call.
//   - Checkpoint writes the complete State as an atomically renamed
//     snapshot and rotates the WAL, bounding replay work.
//   - Load recovers by reading the latest snapshot and replaying the WAL
//     records appended after it.
//
// Epoch consistency comes from generation pairing: each snapshot/WAL
// pair shares a generation number, checkpoints bump it, and Load refuses
// to replay a WAL from a different generation than the snapshot — a
// crash between the snapshot rename and the WAL rotation leaves a stale
// WAL whose records are already folded into the snapshot, and it is
// discarded rather than double-applied.
//
// Corruption handling follows standard WAL practice: every record and
// the snapshot body are CRC32C-framed, a torn or corrupt WAL tail (the
// normal result of crashing mid-append) is truncated at the last valid
// record, and both file formats carry a version so future fields extend
// rather than break old files. FileStore is the production
// implementation; MemStore implements the same replay semantics in
// memory for tests.
package store
