package store

import "flashflow/internal/core"

// State is the complete durable coordinator state: everything a
// restarted coordinator needs to resume measurement rounds warm. It is
// the unit Checkpoint persists and Load recovers.
type State struct {
	// Round is the last round whose results are folded into this state;
	// a recovered coordinator resumes at Round+1.
	Round int
	// Priors holds the per-relay median estimates from previous rounds —
	// the §4.2 doubling-loop starting points and the schedule's capacity
	// reservations.
	Priors map[string]float64
	// Anomalies holds each tracked relay's accumulated §5 defense
	// counters together with the last round the relay was seen, so the
	// coordinator's churn-retention window survives a restart and a
	// flapping liar cannot launder its record by crashing the service.
	Anomalies map[string]AnomalyRecord
	// V3BW is the last published bandwidth-file snapshot, kept so the
	// observability plane's /v3bw endpoint serves immediately after a
	// restart instead of answering 503 until the first round completes.
	V3BW V3BW
	// Submissions holds, per BWAuth, the last accepted signed v3bw
	// submission on a dirauth merge node. A restarted merge node re-seeds
	// its freshness windows and re-merges from these instead of waiting a
	// full round for every BWAuth to submit again.
	Submissions map[string]SubmissionRecord
}

// SubmissionRecord is one BWAuth's last accepted submission on a merge
// node: the round it covered, the submission-format version it used, the
// receipt time (Unix seconds — the freshness-window clock), and the v3bw
// body it carried.
type SubmissionRecord struct {
	Round   int
	Version uint16
	Unix    int64
	Body    []byte
}

// AnomalyRecord pairs a relay's accumulated §5 counters with the last
// round it appeared in the population (the retention-window clock).
type AnomalyRecord struct {
	Counts   core.AnomalyCounts
	LastSeen int
}

// V3BW is a serialized bandwidth-file snapshot: the v3bw text body
// published for Round, empty if nothing has been published yet.
type V3BW struct {
	Round int
	Body  []byte
}

// NewState returns an empty state with allocated maps.
func NewState() *State {
	return &State{
		Priors:      make(map[string]float64),
		Anomalies:   make(map[string]AnomalyRecord),
		Submissions: make(map[string]SubmissionRecord),
	}
}

// Clone deep-copies the state; the copy shares nothing with st.
func (st *State) Clone() *State {
	out := &State{
		Round:       st.Round,
		Priors:      make(map[string]float64, len(st.Priors)),
		Anomalies:   make(map[string]AnomalyRecord, len(st.Anomalies)),
		V3BW:        V3BW{Round: st.V3BW.Round},
		Submissions: make(map[string]SubmissionRecord, len(st.Submissions)),
	}
	for k, v := range st.Priors {
		out.Priors[k] = v
	}
	for k, v := range st.Anomalies {
		out.Anomalies[k] = v
	}
	if len(st.V3BW.Body) > 0 {
		out.V3BW.Body = append([]byte(nil), st.V3BW.Body...)
	}
	for k, v := range st.Submissions {
		v.Body = append([]byte(nil), v.Body...)
		out.Submissions[k] = v
	}
	return out
}

// Kind identifies a WAL record's mutation type. Values are part of the
// on-disk format: never renumber, only append.
type Kind uint8

const (
	// KindRound advances the round counter to Record.Round. Appended at
	// the start of each round, so a crash mid-round recovers with the
	// in-flight round's number and the restart resumes after it.
	KindRound Kind = 1
	// KindPrior sets Priors[Relay] = Bps.
	KindPrior Kind = 2
	// KindPriorDelete forgets a departed relay's prior.
	KindPriorDelete Kind = 3
	// KindAnomaly folds Counts into Anomalies[Relay] and stamps its
	// LastSeen with Round. Counts are deltas, not totals: replay
	// accumulates them exactly like the live coordinator did.
	KindAnomaly Kind = 4
	// KindAnomalyDelete forgets a relay whose anomaly record aged out of
	// the retention window.
	KindAnomalyDelete Kind = 5
	// KindSubmission sets Submissions[Relay] (the Relay field carries the
	// BWAuth name) to the record's Round/Version/Unix/Body. Appended by a
	// dirauth merge node on each accepted submission; the latest record
	// per BWAuth wins on replay, matching live acceptance semantics.
	KindSubmission Kind = 6
)

// Record is one WAL mutation. Which fields are meaningful depends on
// Kind; unused fields are zero and cost one varint each on disk. The
// submission-only fields (Version, Unix, Body) are encoded only for
// KindSubmission records, so the five original kinds keep their exact
// format-version-1 byte layout.
type Record struct {
	Kind   Kind
	Round  int
	Relay  string
	Bps    float64
	Counts core.AnomalyCounts
	// Submission fields, meaningful for KindSubmission only.
	Version uint16
	Unix    int64
	Body    []byte
}

// Apply folds one record into the state. FileStore replay and MemStore
// share this, so both implementations recover byte-identical state from
// the same record sequence.
func (st *State) Apply(rec Record) {
	switch rec.Kind {
	case KindRound:
		st.Round = rec.Round
	case KindPrior:
		st.Priors[rec.Relay] = rec.Bps
	case KindPriorDelete:
		delete(st.Priors, rec.Relay)
	case KindAnomaly:
		a := st.Anomalies[rec.Relay]
		a.Counts.Add(rec.Counts)
		a.LastSeen = rec.Round
		st.Anomalies[rec.Relay] = a
	case KindAnomalyDelete:
		delete(st.Anomalies, rec.Relay)
	case KindSubmission:
		st.Submissions[rec.Relay] = SubmissionRecord{
			Round:   rec.Round,
			Version: rec.Version,
			Unix:    rec.Unix,
			Body:    append([]byte(nil), rec.Body...),
		}
	}
}

// Store persists coordinator state as a snapshot plus an append-only log
// of mutations since it. Implementations must be safe for concurrent
// Append calls (the coordinator's worker pool logs anomaly evidence from
// many goroutines); Load/Checkpoint/Close are called from the round
// goroutine only.
type Store interface {
	// Load recovers the persisted state: the latest snapshot with the
	// WAL replayed on top. A store with nothing persisted returns an
	// empty state, not an error. Load must be called once, before the
	// first Append or Checkpoint.
	Load() (*State, error)
	// Append durably logs mutations, in order. One call is one batch:
	// implementations may amortize their sync cost across the batch.
	Append(recs ...Record) error
	// Checkpoint atomically persists the complete state and resets the
	// log; a subsequent Load replays nothing older than st.
	Checkpoint(st *State) error
	// Close releases resources. It does not checkpoint.
	Close() error
}
