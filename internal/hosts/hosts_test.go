package hosts

import (
	"testing"
	"time"
)

func TestTable1Inventory(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("hosts: got %d want 5", len(all))
	}
	names := []string{"US-SW", "US-NW", "US-E", "IN", "NL"}
	for i, want := range names {
		if all[i].Name != want {
			t.Errorf("host %d: got %s want %s", i, all[i].Name, want)
		}
	}
}

func TestMeasurersExcludesTarget(t *testing.T) {
	for _, m := range Measurers() {
		if m.Name == "US-SW" {
			t.Fatal("US-SW is the target, not a measurer")
		}
	}
	if len(Measurers()) != 4 {
		t.Fatalf("measurers: got %d want 4", len(Measurers()))
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("NL")
	if !ok || s.MeasuredBps != 1611*Mbit {
		t.Fatalf("ByName NL: %+v %v", s, ok)
	}
	if _, ok := ByName("XX"); ok {
		t.Fatal("unknown host should not resolve")
	}
}

func TestTable1Values(t *testing.T) {
	if USE.Datacenter {
		t.Fatal("US-E is residential per Table 1")
	}
	if !USNW.Virtual || USE.Virtual {
		t.Fatal("virtual flags wrong")
	}
	if IN.RTTToUSSW != 210*time.Millisecond {
		t.Fatalf("IN RTT: %v", IN.RTTToUSSW)
	}
	if IN.ClaimedBps != 0 {
		t.Fatal("IN has no claimed bandwidth in Table 1")
	}
}

func TestNewHostCapacities(t *testing.T) {
	h := NL.NewHost()
	if h.Up.CapacityBps != 1611*Mbit || h.Down.CapacityBps != 1611*Mbit {
		t.Fatalf("NL host capacities: %v/%v", h.Up.CapacityBps, h.Down.CapacityBps)
	}
}

func TestGroundTruthCalibrationPoints(t *testing.T) {
	cases := []struct{ limit, want float64 }{
		{10 * Mbit, 9.58 * Mbit},
		{100 * Mbit, 94.2 * Mbit},
		{200 * Mbit, 191 * Mbit},
		{250 * Mbit, 239 * Mbit},
		{400 * Mbit, 393 * Mbit},
		{500 * Mbit, 494 * Mbit},
		{750 * Mbit, 741 * Mbit},
		{0, 890 * Mbit},
		{2000 * Mbit, 890 * Mbit},
	}
	for _, tc := range cases {
		if got := GroundTruthTorCapacity(tc.limit); got != tc.want {
			t.Errorf("ground truth(%v) = %v want %v", tc.limit, got, tc.want)
		}
	}
}

func TestGroundTruthInterpolationMonotone(t *testing.T) {
	prev := 0.0
	for limit := 5 * Mbit; limit <= 900*Mbit; limit += 5 * Mbit {
		got := GroundTruthTorCapacity(limit)
		if got < prev {
			t.Fatalf("ground truth not monotone at %v: %v < %v", limit, got, prev)
		}
		if got > limit && limit > 0 {
			t.Fatalf("ground truth exceeds configured limit at %v: %v", limit, got)
		}
		prev = got
	}
}

func TestStringer(t *testing.T) {
	if s := USE.String(); s == "" {
		t.Fatal("empty String()")
	}
}
