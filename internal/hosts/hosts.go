// Package hosts models the Internet vantage points of the paper's Table 1
// and the ground-truth Tor capacity procedure used to calibrate them
// (§6.1, Appendix B/C). The measured bandwidths and RTTs come straight
// from the table; the packages that run "Internet" experiments build
// netsim hosts from these models.
package hosts

import (
	"fmt"
	"time"

	"flashflow/internal/netsim"
)

// Mbit and Gbit are bit-rate unit helpers.
const (
	Mbit = 1e6
	Gbit = 1e9
)

// Spec describes one vantage point.
type Spec struct {
	Name string
	// Virtual indicates shared virtual hosting (adds rate jitter).
	Virtual bool
	// Datacenter is false for residential networks.
	Datacenter bool
	// ClaimedBps is the provider-advertised capacity (0 if unadvertised).
	ClaimedBps float64
	// MeasuredBps is the iPerf-measured capacity from Table 1's
	// "BW (measured)" row; it is the capacity the models use.
	MeasuredBps float64
	// RTTToUSSW is the round-trip time to the US-SW target host.
	RTTToUSSW time.Duration
	// Cores and RAMGiB describe the hardware (informational).
	Cores  int
	RAMGiB int
}

// The five vantage points of Table 1.
var (
	USSW = Spec{Name: "US-SW", Datacenter: true, ClaimedBps: 1000 * Mbit, MeasuredBps: 954 * Mbit, RTTToUSSW: 0, Cores: 8, RAMGiB: 32}
	USNW = Spec{Name: "US-NW", Virtual: true, Datacenter: true, ClaimedBps: 1000 * Mbit, MeasuredBps: 946 * Mbit, RTTToUSSW: 40 * time.Millisecond, Cores: 8, RAMGiB: 4}
	USE  = Spec{Name: "US-E", Datacenter: false, ClaimedBps: 1000 * Mbit, MeasuredBps: 941 * Mbit, RTTToUSSW: 62 * time.Millisecond, Cores: 12, RAMGiB: 32}
	IN   = Spec{Name: "IN", Virtual: true, Datacenter: true, MeasuredBps: 1076 * Mbit, RTTToUSSW: 210 * time.Millisecond, Cores: 2, RAMGiB: 4}
	NL   = Spec{Name: "NL", Virtual: true, Datacenter: true, MeasuredBps: 1611 * Mbit, RTTToUSSW: 137 * time.Millisecond, Cores: 2, RAMGiB: 4}
)

// All returns the five vantage points in Table 1 order.
func All() []Spec { return []Spec{USSW, USNW, USE, IN, NL} }

// Measurers returns the four measurement hosts (everything but the US-SW
// target), as used throughout §6.
func Measurers() []Spec { return []Spec{USNW, USE, IN, NL} }

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// NewHost builds a netsim host with this spec's measured capacity in both
// directions.
func (s Spec) NewHost() *netsim.Host {
	return netsim.NewHost(s.Name, s.MeasuredBps, s.MeasuredBps)
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	kind := "D.C."
	if !s.Datacenter {
		kind = "Res."
	}
	return fmt.Sprintf("%s(%s %.0f Mbit/s rtt=%v)", s.Name, kind, s.MeasuredBps/Mbit, s.RTTToUSSW)
}

// GroundTruthTorCapacity returns the ground-truth Tor capacity of a relay
// on US-SW limited to limitBps, per Appendix E.2's calibration:
// 10→9.58, 250→239, 500→494, 750→741, unlimited→890 Mbit/s. Intermediate
// limits interpolate the same ≈2–4 % shortfall; the unlimited value is the
// CPU-bound ceiling of §6.1.
func GroundTruthTorCapacity(limitBps float64) float64 {
	// Calibration points from the paper (limit → ground truth), Mbit/s.
	type pt struct{ limit, truth float64 }
	pts := []pt{
		{10 * Mbit, 9.58 * Mbit},
		{100 * Mbit, 94.2 * Mbit},
		{200 * Mbit, 191 * Mbit},
		{250 * Mbit, 239 * Mbit},
		{400 * Mbit, 393 * Mbit},
		{500 * Mbit, 494 * Mbit},
		{750 * Mbit, 741 * Mbit},
	}
	if limitBps <= 0 || limitBps >= USSWUnlimitedTorCapacity {
		return USSWUnlimitedTorCapacity
	}
	// Piecewise-linear interpolation of the truth/limit ratio.
	prev := pt{0, 0}
	for _, p := range pts {
		if limitBps <= p.limit {
			if p.limit == prev.limit {
				return p.truth
			}
			frac := (limitBps - prev.limit) / (p.limit - prev.limit)
			return prev.truth + frac*(p.truth-prev.truth)
		}
		prev = p
	}
	// Between the last calibration point and the unlimited ceiling.
	last := pts[len(pts)-1]
	frac := (limitBps - last.limit) / (USSWUnlimitedTorCapacity - last.limit)
	return last.truth + frac*(USSWUnlimitedTorCapacity-last.truth)
}

// USSWUnlimitedTorCapacity is the ground-truth Tor capacity of an
// unlimited relay on US-SW: 890 Mbit/s (§6.1), CPU-bound by Tor's
// single-threaded cell scheduling.
const USSWUnlimitedTorCapacity = 890 * Mbit

// LabTorProcessingLimit is the maximum Tor forwarding rate measured in the
// paper's lab (Appendix C.2): 1,248 Mbit/s at 20 sockets.
const LabTorProcessingLimit = 1248 * Mbit
