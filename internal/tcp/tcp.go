// Package tcp models the transport-level throughput effects that drive the
// paper's socket-count experiments (Appendix C–E.1, figures 11–14): the
// bandwidth-delay product, kernel socket-buffer caps, slow-start ramp, the
// per-socket bookkeeping overhead that makes throughput fall after its peak,
// and cross-socket interference.
//
// The model is deliberately a fluid approximation: a socket's steady-state
// rate is min(windowBytes/RTT, fair share of link), and an application
// managing n sockets pays a small per-socket CPU cost that reduces the
// aggregate ceiling. These are exactly the effects the paper identifies:
// "the cost of managing many sockets decreases the time available to
// forward traffic over them" (Appendix D.1).
package tcp

import (
	"math"
	"time"
)

// Default kernel socket buffer maxima chosen by Linux on the paper's hosts
// (Appendix D.1): 4 MiB read, 6 MiB write. The "tuned" configuration raises
// both to 64 MiB.
const (
	DefaultReadBuf  = 4 << 20
	DefaultWriteBuf = 6 << 20
	TunedBuf        = 64 << 20
)

// Config describes one endpoint pair's transport configuration.
type Config struct {
	// LinkCapacityBps is the bottleneck link rate in bits per second.
	LinkCapacityBps float64
	// RTT is the round-trip time between the endpoints.
	RTT time.Duration
	// ReadBufBytes and WriteBufBytes cap the effective TCP window.
	ReadBufBytes  int
	WriteBufBytes int
	// LossRate is the steady-state packet loss probability. The model
	// applies a Mathis-style 1/sqrt(loss) throughput penalty per socket.
	LossRate float64
	// PerSocketOverhead is the fractional aggregate-throughput loss per
	// additional socket past the first (bookkeeping/CPU interference).
	// The paper observes a gentle decline past the peak; 0.0015 reproduces
	// the figure-14 shape. Zero disables the effect.
	PerSocketOverhead float64
}

// DefaultConfig returns a Config with default kernel buffers and the given
// link and RTT.
func DefaultConfig(capacityBps float64, rtt time.Duration) Config {
	return Config{
		LinkCapacityBps:   capacityBps,
		RTT:               rtt,
		ReadBufBytes:      DefaultReadBuf,
		WriteBufBytes:     DefaultWriteBuf,
		PerSocketOverhead: 0.0015,
	}
}

// Tuned returns a copy of c with 64 MiB socket buffers.
func (c Config) Tuned() Config {
	c.ReadBufBytes = TunedBuf
	c.WriteBufBytes = TunedBuf
	return c
}

// BDPBytes returns the bandwidth-delay product of the path in bytes.
func (c Config) BDPBytes() float64 {
	return c.LinkCapacityBps / 8 * c.RTT.Seconds()
}

// WindowBytes returns the effective window: the smaller of the two socket
// buffers (the receiver advertises ReadBuf; the sender cannot keep more
// than WriteBuf in flight).
func (c Config) WindowBytes() float64 {
	w := c.ReadBufBytes
	if c.WriteBufBytes < w {
		w = c.WriteBufBytes
	}
	return float64(w)
}

// SingleSocketBps returns the steady-state throughput of one socket in bits
// per second: the link capacity capped by window/RTT and by the loss model.
func (c Config) SingleSocketBps() float64 {
	rate := c.LinkCapacityBps
	if c.RTT > 0 {
		windowLimited := c.WindowBytes() * 8 / c.RTT.Seconds()
		if windowLimited < rate {
			rate = windowLimited
		}
	}
	if c.LossRate > 0 && c.RTT > 0 {
		// Mathis et al. steady-state: rate ≈ MSS/RTT · C/sqrt(p).
		const mss = 1460
		const mathisC = 1.22
		lossLimited := mss * 8 / c.RTT.Seconds() * mathisC / math.Sqrt(c.LossRate)
		if lossLimited < rate {
			rate = lossLimited
		}
	}
	return rate
}

// AggregateBps returns the total steady-state throughput of n concurrent
// sockets sharing the link. Sockets add window capacity until the link
// saturates; past saturation, per-socket overhead erodes the aggregate, so
// throughput peaks at some socket count and gently declines — the shape of
// figures 11 and 14.
func (c Config) AggregateBps(n int) float64 {
	if n <= 0 {
		return 0
	}
	perSocket := c.SingleSocketBps()
	raw := perSocket * float64(n)
	if raw > c.LinkCapacityBps {
		raw = c.LinkCapacityBps
	}
	if c.PerSocketOverhead > 0 && n > 1 {
		penalty := 1 - c.PerSocketOverhead*float64(n-1)
		if penalty < 0.5 {
			penalty = 0.5 // bookkeeping never costs more than half in practice
		}
		raw *= penalty
	}
	return raw
}

// SocketsToSaturate returns the smallest socket count whose aggregate
// window covers the path BDP (i.e., the count at which the link, not the
// windows, becomes the bottleneck). Returns 1 when a single window already
// covers the BDP.
func (c Config) SocketsToSaturate() int {
	w := c.WindowBytes()
	if w <= 0 {
		return 1
	}
	n := int(math.Ceil(c.BDPBytes() / w))
	if n < 1 {
		n = 1
	}
	return n
}

// SlowStartSeconds estimates how long slow start takes to reach the
// steady-state window from an initial 10-segment window, doubling each RTT.
func (c Config) SlowStartSeconds() float64 {
	const initWindow = 10 * 1460
	target := c.WindowBytes()
	if bdp := c.BDPBytes(); bdp < target {
		target = bdp
	}
	if target <= initWindow || c.RTT <= 0 {
		return 0
	}
	rounds := math.Ceil(math.Log2(target / initWindow))
	return rounds * c.RTT.Seconds()
}

// RampedThroughputBps returns the expected mean throughput over a
// measurement of the given duration, accounting for the slow-start ramp at
// the beginning. With many sockets the ramp is negligible, matching the
// paper's observation that FlashFlow "generally achieves its maximum
// throughput immediately" (Appendix E.4).
func (c Config) RampedThroughputBps(n int, duration time.Duration) float64 {
	steady := c.AggregateBps(n)
	if duration <= 0 {
		return 0
	}
	ramp := c.SlowStartSeconds() / math.Sqrt(float64(maxInt(n, 1)))
	total := duration.Seconds()
	if ramp >= total {
		return steady / 2
	}
	// During the ramp the average rate is roughly half of steady state.
	return steady * (total - ramp/2) / total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
