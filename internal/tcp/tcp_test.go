package tcp

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const gbit = 1e9

func TestBDPBytes(t *testing.T) {
	c := DefaultConfig(gbit, 118*time.Millisecond)
	// Paper Appendix D.1: a 1 Gbit/s link at 118 ms RTT has a BDP of
	// 14.1 MiB.
	want := 14.1 * (1 << 20)
	if got := c.BDPBytes(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("BDP: got %v want ≈%v", got, want)
	}
}

func TestBDPSmallRTT(t *testing.T) {
	// Lab link: 10 Gbit/s at 0.13 ms RTT → BDP 0.155 MiB (Appendix D.1).
	c := DefaultConfig(10*gbit, 130*time.Microsecond)
	want := 0.155 * (1 << 20)
	if got := c.BDPBytes(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("lab BDP: got %v want ≈%v", got, want)
	}
}

func TestWindowBytesUsesSmallerBuffer(t *testing.T) {
	c := DefaultConfig(gbit, time.Millisecond)
	if got := c.WindowBytes(); got != DefaultReadBuf {
		t.Fatalf("window: got %v want read buffer %v", got, DefaultReadBuf)
	}
	tuned := c.Tuned()
	if got := tuned.WindowBytes(); got != TunedBuf {
		t.Fatalf("tuned window: got %v want %v", got, TunedBuf)
	}
}

func TestSingleSocketWindowLimited(t *testing.T) {
	// At 340 ms RTT with default 4 MiB window, a single socket cannot
	// reach 1 Gbit/s: 4 MiB * 8 / 0.34 s ≈ 98.7 Mbit/s.
	c := DefaultConfig(gbit, 340*time.Millisecond)
	got := c.SingleSocketBps()
	want := float64(DefaultReadBuf) * 8 / 0.34
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("single socket: got %v want %v", got, want)
	}
	if got >= gbit {
		t.Fatal("window-limited socket should not reach link capacity")
	}
}

func TestTunedBeatsDefaultAtHighRTT(t *testing.T) {
	// Figure 12: at all RTTs the tuned kernel achieves ≥ default.
	for _, rtt := range []time.Duration{28 * time.Millisecond, 120 * time.Millisecond, 340 * time.Millisecond} {
		def := DefaultConfig(gbit, rtt)
		tun := def.Tuned()
		if tun.SingleSocketBps() < def.SingleSocketBps() {
			t.Errorf("rtt=%v: tuned (%v) < default (%v)", rtt, tun.SingleSocketBps(), def.SingleSocketBps())
		}
	}
}

func TestThroughputDecreasesWithRTT(t *testing.T) {
	// Figure 12: as RTT (thus BDP) increases, single-socket throughput
	// decreases for a fixed kernel configuration.
	prev := math.Inf(1)
	for _, rtt := range []time.Duration{28 * time.Millisecond, 120 * time.Millisecond, 340 * time.Millisecond} {
		got := DefaultConfig(gbit, rtt).SingleSocketBps()
		if got > prev {
			t.Fatalf("throughput should not increase with RTT: %v at %v > %v", got, rtt, prev)
		}
		prev = got
	}
}

func TestAggregatePeaksThenDeclines(t *testing.T) {
	// Figure 14 shape: aggregate throughput rises with sockets, peaks,
	// then declines due to per-socket overhead.
	c := DefaultConfig(gbit, 210*time.Millisecond) // IN-like path
	peakN, peak := 0, 0.0
	for n := 1; n <= 300; n++ {
		v := c.AggregateBps(n)
		if v > peak {
			peak, peakN = v, n
		}
	}
	if peakN <= 1 {
		t.Fatalf("peak at n=%d; expected multi-socket peak", peakN)
	}
	if last := c.AggregateBps(300); last >= peak {
		t.Fatalf("throughput at 300 sockets (%v) should be below peak (%v)", last, peak)
	}
}

func TestAggregateZeroAndNegativeSockets(t *testing.T) {
	c := DefaultConfig(gbit, time.Millisecond)
	if c.AggregateBps(0) != 0 || c.AggregateBps(-3) != 0 {
		t.Fatal("nonpositive socket counts must yield 0")
	}
}

func TestSocketsToSaturate(t *testing.T) {
	// 1 Gbit/s at 210 ms: BDP = 26.25 MB; default window 4 MiB → 7 sockets.
	c := DefaultConfig(gbit, 210*time.Millisecond)
	n := c.SocketsToSaturate()
	if n < 6 || n > 8 {
		t.Fatalf("sockets to saturate: got %d want ≈7", n)
	}
	// Tuned kernel: one 64 MiB window covers the BDP.
	if got := c.Tuned().SocketsToSaturate(); got != 1 {
		t.Fatalf("tuned sockets to saturate: got %d want 1", got)
	}
}

func TestTuningHelpsLessWithMoreSockets(t *testing.T) {
	// Figure 13: the default/tuned throughput ratio approaches 1 as the
	// number of sockets grows.
	c := DefaultConfig(gbit, 137*time.Millisecond) // NL-like path
	tuned := c.Tuned()
	ratioAt := func(n int) float64 { return c.AggregateBps(n) / tuned.AggregateBps(n) }
	if r1 := ratioAt(1); r1 >= 0.9 {
		t.Fatalf("single-socket ratio should show tuning benefit, got %v", r1)
	}
	if r100 := ratioAt(100); r100 < 0.99 {
		t.Fatalf("100-socket ratio should approach 1, got %v", r100)
	}
	if ratioAt(1) > ratioAt(10) || ratioAt(10) > ratioAt(100) {
		t.Fatal("ratio should be non-decreasing in socket count")
	}
}

func TestLossRateLimits(t *testing.T) {
	lossy := DefaultConfig(gbit, 210*time.Millisecond)
	lossy.LossRate = 0.01
	clean := DefaultConfig(gbit, 210*time.Millisecond)
	if lossy.SingleSocketBps() >= clean.SingleSocketBps() {
		t.Fatal("loss should reduce single-socket throughput")
	}
}

func TestSlowStart(t *testing.T) {
	c := DefaultConfig(gbit, 100*time.Millisecond)
	ss := c.SlowStartSeconds()
	if ss <= 0 {
		t.Fatal("slow start should take time on a high-BDP path")
	}
	if ss > 3 {
		t.Fatalf("slow start too slow: %v s", ss)
	}
	// Tiny-BDP path: no meaningful slow start.
	lab := DefaultConfig(10*gbit, 130*time.Microsecond)
	if got := lab.SlowStartSeconds(); got > 0.01 {
		t.Fatalf("lab slow start: got %v want ≈0", got)
	}
}

func TestRampedThroughputConverges(t *testing.T) {
	c := DefaultConfig(gbit, 100*time.Millisecond)
	short := c.RampedThroughputBps(160, 5*time.Second)
	long := c.RampedThroughputBps(160, 60*time.Second)
	steady := c.AggregateBps(160)
	if short > long || long > steady {
		t.Fatalf("ramped ordering violated: short=%v long=%v steady=%v", short, long, steady)
	}
	if long < 0.95*steady {
		t.Fatalf("60 s mean should be within 5%% of steady state: %v vs %v", long, steady)
	}
}

func TestRampedThroughputZeroDuration(t *testing.T) {
	c := DefaultConfig(gbit, 100*time.Millisecond)
	if got := c.RampedThroughputBps(10, 0); got != 0 {
		t.Fatalf("zero duration: got %v", got)
	}
}

// Property: aggregate throughput never exceeds link capacity and is
// non-negative for any socket count.
func TestAggregateBoundedQuick(t *testing.T) {
	f := func(nRaw uint8, rttMs uint16) bool {
		n := int(nRaw)
		rtt := time.Duration(rttMs) * time.Millisecond
		c := DefaultConfig(gbit, rtt)
		v := c.AggregateBps(n)
		return v >= 0 && v <= c.LinkCapacityBps+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tuned kernel never does worse than default at equal socket
// count (figure 13's ratio ≤ 1 everywhere).
func TestTunedNeverWorseQuick(t *testing.T) {
	f := func(nRaw uint8, rttMs uint16) bool {
		n := int(nRaw)%200 + 1
		rtt := time.Duration(rttMs%1000+1) * time.Millisecond
		def := DefaultConfig(gbit, rtt)
		tun := def.Tuned()
		return tun.AggregateBps(n) >= def.AggregateBps(n)-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
