package core

// Sample is one second of measurement data, delivered to a SampleSink
// while the slot is still running. It carries exactly the per-second
// quantities the §4.1 aggregation consumes — per-measurer echoed
// measurement bytes and the relay-reported normal-traffic bytes — so a
// consumer can maintain a running estimate without waiting for the slot
// to finish.
type Sample struct {
	// Second is the zero-based index of the completed second within the
	// slot. Samples arrive in order, one per completed second.
	Second int
	// MeasBytes[i] is measurer i's echoed measurement bytes during this
	// second. The slice is owned by the backend and only valid for the
	// duration of the sink call: a sink that retains the values must copy
	// them.
	MeasBytes []float64
	// NormBytes is the relay-reported normal-traffic bytes during this
	// second (zero for backends without in-band reporting, e.g. the wire
	// protocol's current framing).
	NormBytes float64
}

// SampleSink receives per-second samples as a backend produces them.
// Backends call the sink sequentially (samples never arrive concurrently)
// from the goroutine driving the slot; the sink must return quickly and
// must not call back into the backend. A nil sink is always allowed and
// means the caller does not want intermediate results.
//
// The canonical sink is the one MeasureRelayGuarded installs: it keeps a
// running count of seconds whose total provably exceeds the §4.2
// acceptance bound and cancels the slot's context once the final median
// cannot be accepted anymore, jumping straight to the next doubling step.
type SampleSink func(Sample)

// sum of a sample's per-measurer bytes.
func sampleMeasTotal(s Sample) float64 {
	var x float64
	for _, v := range s.MeasBytes {
		x += v
	}
	return x
}

// SampleTotalBytes returns the §4.1 per-second total z_j implied by the
// sample: measured bytes plus the normal-traffic report clamped to the
// ratio limit y ≤ x·r/(1−r).
func SampleTotalBytes(s Sample, ratio float64) float64 {
	x := sampleMeasTotal(s)
	y := s.NormBytes
	if limit := x * ratio / (1 - ratio); y > limit {
		y = limit
	}
	return x + y
}
