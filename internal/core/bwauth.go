package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"flashflow/internal/dirauth"
)

// BWAuth is a bandwidth authority running FlashFlow with its own
// measurement team (§4). It measures relays, maintains per-relay capacity
// estimates, and emits bandwidth files for DirAuth aggregation.
//
// A BWAuth is safe for concurrent MeasureTarget calls: the state mutex
// guards the estimate table, and the team gate serializes capacity
// allocation against the shared team while the measurements themselves run
// concurrently. internal/coord relies on this to execute a schedule slot's
// assignments on a worker pool.
type BWAuth struct {
	Name    string
	Team    []*Measurer
	Backend Backend
	Params  Params

	// mu guards estimates, priors, and history.
	mu sync.Mutex
	// teamGate serializes allocation commit/release against Team.
	teamGate sync.Mutex
	// estimates holds the latest measured capacity estimate per relay —
	// the values published in the bandwidth file.
	estimates map[string]float64
	// priors holds externally seeded starting points (advertised
	// bandwidths, a coordinator's population estimates) consulted only
	// when a relay has never been measured; they are never published.
	priors map[string]float64
	// history holds last-month measured capacities, feeding the
	// new-relay prior.
	history []float64
	// anomalies holds per-relay §5 defense counters (OutcomeAnomalies
	// plus echo failures), recorded by MeasureTarget. Long-lived callers
	// that must survive population churn (internal/coord) keep their own
	// windowed copy; this table follows Retain like the estimates.
	anomalies map[string]AnomalyCounts
}

// NewBWAuth creates a BWAuth with the given team and backend.
func NewBWAuth(name string, team []*Measurer, backend Backend, p Params) *BWAuth {
	return &BWAuth{
		Name:      name,
		Team:      team,
		Backend:   backend,
		Params:    p,
		estimates: make(map[string]float64),
		priors:    make(map[string]float64),
		anomalies: make(map[string]AnomalyCounts),
	}
}

// Estimate returns the BWAuth's current capacity estimate for a relay.
func (b *BWAuth) Estimate(relayName string) (float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.estimates[relayName]
	return v, ok
}

// SetEstimate seeds a prior estimate (e.g. from a previous period). The
// value is treated as a real estimate: it feeds the measurement prior and
// is published in the bandwidth file.
func (b *BWAuth) SetEstimate(relayName string, bps float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.estimates[relayName] = bps
}

// SetPrior seeds a measurement starting point for a relay without making
// it publishable: the doubling loop uses it as z0 until the relay is
// actually measured, but BandwidthFile never emits it. The continuous
// coordinator seeds population estimates this way so a relay that fails
// every measurement attempt is not reported with a fabricated capacity.
func (b *BWAuth) SetPrior(relayName string, bps float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.priors[relayName] = bps
}

// Retain drops estimates, priors, and anomaly counters for every relay
// not in keep, so a long-lived deployment stops publishing relays that
// left the consensus and does not grow its tables across population
// churn. Callers that need anomaly evidence to survive churn (so a
// flapping liar cannot reset its record by briefly departing) keep their
// own windowed copy — internal/coord retains departed relays' counters
// for a configurable number of rounds before forgetting them.
func (b *BWAuth) Retain(keep map[string]bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for name := range b.estimates {
		if !keep[name] {
			delete(b.estimates, name)
		}
	}
	for name := range b.priors {
		if !keep[name] {
			delete(b.priors, name)
		}
	}
	for name := range b.anomalies {
		if !keep[name] {
			delete(b.anomalies, name)
		}
	}
}

// Anomalies returns the accumulated §5 anomaly counters for a relay.
func (b *BWAuth) Anomalies(relayName string) (AnomalyCounts, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.anomalies[relayName]
	return a, ok
}

// AllAnomalies returns a copy of every relay's anomaly counters.
func (b *BWAuth) AllAnomalies() map[string]AnomalyCounts {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]AnomalyCounts, len(b.anomalies))
	for name, a := range b.anomalies {
		out[name] = a
	}
	return out
}

// recordAnomalies folds one outcome's evidence into the relay's record.
func (b *BWAuth) recordAnomalies(relayName string, c AnomalyCounts) {
	if c.Total() == 0 {
		return
	}
	b.mu.Lock()
	cur := b.anomalies[relayName]
	cur.Add(c)
	b.anomalies[relayName] = cur
	b.mu.Unlock()
}

// MeasureTarget measures one relay, using the stored estimate as the old-
// relay prior or the percentile prior for new relays, and records the
// result. Cancelling ctx tears down the in-flight slot promptly; a
// partial estimate salvaged from the interrupted slot is still recorded.
func (b *BWAuth) MeasureTarget(ctx context.Context, relayName string) (MeasureOutcome, error) {
	b.mu.Lock()
	z0, ok := b.estimates[relayName]
	if !ok || z0 <= 0 {
		z0, ok = b.priors[relayName]
		if !ok || z0 <= 0 {
			z0 = NewRelayPrior(b.history, b.Params)
		}
	}
	b.mu.Unlock()
	out, err := MeasureRelayGuarded(ctx, b.Backend, b.Team, &b.teamGate, relayName, z0, b.Params)
	counts := OutcomeAnomalies(out, b.Params)
	if errors.Is(err, ErrMeasurementFailed) {
		counts.EchoFailures++
	}
	b.recordAnomalies(relayName, counts)
	if err != nil {
		return out, err
	}
	if out.EstimateBps > 0 {
		b.mu.Lock()
		b.estimates[relayName] = out.EstimateBps
		b.history = append(b.history, out.EstimateBps)
		// Keep the history bounded to roughly its "last month" intent: a
		// long-lived coordinator would otherwise grow it (and slow the
		// percentile in NewRelayPrior) without limit. Trimming at 2× and
		// keeping the newest half amortizes the copy.
		if len(b.history) > 2*maxHistory {
			b.history = append(b.history[:0:0], b.history[len(b.history)-maxHistory:]...)
		}
		b.mu.Unlock()
	}
	return out, nil
}

// maxHistory bounds the retained measurement history feeding the
// new-relay prior.
const maxHistory = 16384

// MeasureAll measures every named relay in order, returning per-relay
// outcomes. Relays whose measurement errors (e.g. echo-verification
// failure) are recorded with a zero estimate and the error.
func (b *BWAuth) MeasureAll(ctx context.Context, relayNames []string) (map[string]MeasureOutcome, map[string]error) {
	outcomes := make(map[string]MeasureOutcome, len(relayNames))
	errs := make(map[string]error)
	for _, name := range relayNames {
		out, err := b.MeasureTarget(ctx, name)
		if err != nil {
			errs[name] = fmt.Errorf("bwauth %s: %w", b.Name, err)
			continue
		}
		outcomes[name] = out
	}
	return outcomes, errs
}

// BandwidthFile exports the BWAuth's current estimates as a bandwidth
// file: FlashFlow reports the capacity estimate as both the weight and the
// capacity value (Table 2: FlashFlow provides capacity values directly).
func (b *BWAuth) BandwidthFile(at time.Duration) *dirauth.BandwidthFile {
	f := dirauth.NewBandwidthFile(b.Name, at)
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, est := range b.estimates {
		f.Set(name, est, est)
	}
	return f
}

// RunPeriodResult summarizes one measurement period across BWAuths.
type RunPeriodResult struct {
	// MedianEstimates is the per-relay median across BWAuths — the value
	// the DirAuths put in the consensus.
	MedianEstimates map[string]float64
	// PerBWAuth holds each BWAuth's raw outcomes.
	PerBWAuth []map[string]MeasureOutcome
	// Errors collects measurement failures keyed by "bwauth/relay".
	Errors map[string]error
}

// RunPeriod has every BWAuth measure every relay once (the §4.3 schedule
// guarantees each relay one slot per BWAuth per period; here the slots'
// effects are captured by the backends) and aggregates the medians.
func RunPeriod(ctx context.Context, auths []*BWAuth, relayNames []string) RunPeriodResult {
	res := RunPeriodResult{
		MedianEstimates: make(map[string]float64, len(relayNames)),
		Errors:          make(map[string]error),
	}
	files := make([]*dirauth.BandwidthFile, 0, len(auths))
	for _, a := range auths {
		outcomes, errs := a.MeasureAll(ctx, relayNames)
		res.PerBWAuth = append(res.PerBWAuth, outcomes)
		for relayName, err := range errs {
			res.Errors[a.Name+"/"+relayName] = err
		}
		files = append(files, a.BandwidthFile(0))
	}
	for name, capBps := range dirauth.MedianCapacities(files) {
		res.MedianEstimates[name] = capBps
	}
	return res
}
