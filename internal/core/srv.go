package core

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
)

// This file implements the shared-randomness protocol the schedule depends
// on (§4.3: "the BWAuths collectively generate a random seed (e.g., using
// Tor's secure-randomness protocol)"). It is a commit-reveal protocol in
// the style of Tor's srv-spec: each BWAuth commits H(value) during the
// commit phase, reveals value during the reveal phase, and the shared seed
// is H(sorted reveals). As long as at least one participant is honest and
// reveals an unpredictable value, the seed is unpredictable to the
// adversary before the reveal phase — which is what keeps measurement
// slots unpredictable to targeted relays (§5).

// Commitment is one participant's commit-phase message.
type Commitment struct {
	// Participant identifies the BWAuth.
	Participant string
	// Digest is SHA-256 of the secret value.
	Digest [32]byte
}

// Reveal is one participant's reveal-phase message.
type Reveal struct {
	Participant string
	Value       [32]byte
}

// NewRandomReveal draws a fresh secret value for the current period.
func NewRandomReveal(participant string) (Reveal, error) {
	var r Reveal
	r.Participant = participant
	if _, err := rand.Read(r.Value[:]); err != nil {
		return Reveal{}, fmt.Errorf("core: draw reveal: %w", err)
	}
	return r, nil
}

// Commit derives the commitment for a reveal.
func (r Reveal) Commit() Commitment {
	return Commitment{Participant: r.Participant, Digest: sha256.Sum256(r.Value[:])}
}

// Shared-randomness errors.
var (
	ErrCommitMismatch  = errors.New("core: reveal does not match commitment")
	ErrMissingCommit   = errors.New("core: reveal without prior commitment")
	ErrDuplicateCommit = errors.New("core: duplicate commitment from participant")
	ErrNoReveals       = errors.New("core: no valid reveals")
)

// SharedRandomness runs the aggregation: it verifies each reveal against
// its commitment and hashes the lexicographically sorted reveal values into
// the period seed. Participants that committed but failed to reveal are
// simply excluded (as in Tor's protocol, withholding a reveal is the only
// way to bias the output, and it costs at most one bit per withholder).
func SharedRandomness(commits []Commitment, reveals []Reveal) ([]byte, error) {
	byParticipant := make(map[string]Commitment, len(commits))
	for _, c := range commits {
		if _, dup := byParticipant[c.Participant]; dup {
			return nil, fmt.Errorf("%w: %s", ErrDuplicateCommit, c.Participant)
		}
		byParticipant[c.Participant] = c
	}
	valid := make([][32]byte, 0, len(reveals))
	for _, r := range reveals {
		c, ok := byParticipant[r.Participant]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrMissingCommit, r.Participant)
		}
		if sha256.Sum256(r.Value[:]) != c.Digest {
			return nil, fmt.Errorf("%w: %s", ErrCommitMismatch, r.Participant)
		}
		valid = append(valid, r.Value)
	}
	if len(valid) == 0 {
		return nil, ErrNoReveals
	}
	sort.Slice(valid, func(i, j int) bool {
		return bytes.Compare(valid[i][:], valid[j][:]) < 0
	})
	h := sha256.New()
	h.Write([]byte("flashflow-shared-randomness-v1"))
	for _, v := range valid {
		h.Write(v[:])
	}
	return h.Sum(nil), nil
}

// PeriodSeed derives the seed for a specific measurement period from the
// shared randomness, so one protocol run can serve consecutive periods
// until the next run completes.
func PeriodSeed(shared []byte, period uint64) []byte {
	mac := hmac.New(sha256.New, shared)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(period >> (8 * i))
	}
	mac.Write(buf[:])
	return mac.Sum(nil)
}
