// Package core implements FlashFlow, the paper's primary contribution: a
// system that securely, accurately, and quickly measures the capacity of
// Tor relays (§4). It contains the single-measurement protocol driver and
// aggregation (§4.1), measurer-capacity allocation and the measure-relay
// loop (§4.2), the network measurement schedule (§4.3), the multi-BWAuth
// pipeline, and the adversary models analyzed in §5.
package core

import (
	"errors"
	"fmt"
	"time"
)

// Params holds FlashFlow's tunable parameters. Defaults are the paper's
// recommended settings (§6.1, Appendix E).
type Params struct {
	// Sockets is the constant total number of TCP measurement sockets s
	// used across all measurers (Appendix E.1 selects 160).
	Sockets int
	// Multiplier is the base multiplier m: a relay of estimated capacity
	// z0 is measured with m·z0-grade capacity before error headroom
	// (Appendix E.2 selects 2.25).
	Multiplier float64
	// SlotSeconds is the measurement slot length t in seconds (Appendix
	// E.3 selects 30; the result is the median of per-second sums).
	SlotSeconds int
	// Eps1 and Eps2 are the error bounds ε1 = 0.20 and ε2 = 0.05
	// (Appendix E.5): an accurate estimate z for true capacity x satisfies
	// (1−ε1)x < z < (1+ε2)x.
	Eps1, Eps2 float64
	// Ratio is the maximum fraction r of total traffic that may be normal
	// traffic during a measurement (§6.2 recommends 0.25).
	Ratio float64
	// CheckProb is the probability p of recording and verifying a sent
	// cell's echoed contents (§4.1 suggests 1e-5).
	CheckProb float64
	// Period is the measurement period length (§4.3 uses 24 h).
	Period time.Duration
	// NewRelayPercentile is the percentile of last-month measured
	// capacities used as the prior for new relays (§4.2 uses the 75th).
	NewRelayPercentile float64
	// MaxMeasureAttempts bounds the doubling loop per relay per period.
	MaxMeasureAttempts int
	// DisableEarlyAbort turns off the streaming early-abort rule and runs
	// every measurement slot to its full SlotSeconds length, as the
	// original batch pipeline did. The default (false) aborts a slot as
	// soon as a majority of its seconds prove the estimate cannot be
	// accepted for the current allocation, jumping straight to the next
	// doubling step. Kept as a knob for A/B comparison (the
	// coord-round-abort perf scenario) and for operators who prefer
	// fixed-length slots.
	DisableEarlyAbort bool
}

// DefaultParams returns the paper's recommended parameter settings.
func DefaultParams() Params {
	return Params{
		Sockets:            160,
		Multiplier:         2.25,
		SlotSeconds:        30,
		Eps1:               0.20,
		Eps2:               0.05,
		Ratio:              0.25,
		CheckProb:          1e-5,
		Period:             24 * time.Hour,
		NewRelayPercentile: 75,
		MaxMeasureAttempts: 8,
	}
}

// ExcessFactor returns f = m(1+ε2)/(1−ε1), the total measurer capacity
// allocated per unit of estimated relay capacity (§4.2).
func (p Params) ExcessFactor() float64 {
	return p.Multiplier * (1 + p.Eps2) / (1 - p.Eps1)
}

// ExcessFactorPaper7 is the excess factor value quoted in §7 ("due to the
// excess factor f = 2.84"), which differs slightly from the §4.2 formula
// with the default parameters (2.953125). The schedule experiments report
// both; see DESIGN.md §4.
const ExcessFactorPaper7 = 2.84

// MaxInflation returns 1/(1−r), the maximum factor by which a malicious
// relay can inflate its capacity estimate by lying about normal traffic
// (§5). With the default r = 0.25 this is 1.33.
func (p Params) MaxInflation() float64 {
	return 1 / (1 - p.Ratio)
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Sockets <= 0:
		return errors.New("core: Sockets must be positive")
	case p.Multiplier < 1:
		return errors.New("core: Multiplier must be >= 1")
	case p.SlotSeconds <= 0:
		return errors.New("core: SlotSeconds must be positive")
	case p.Eps1 < 0 || p.Eps1 >= 1:
		return fmt.Errorf("core: Eps1 out of range: %v", p.Eps1)
	case p.Eps2 < 0:
		return fmt.Errorf("core: Eps2 out of range: %v", p.Eps2)
	case p.Ratio < 0 || p.Ratio >= 1:
		return fmt.Errorf("core: Ratio out of range: %v", p.Ratio)
	case p.CheckProb < 0 || p.CheckProb > 1:
		return fmt.Errorf("core: CheckProb out of range: %v", p.CheckProb)
	case p.Period <= 0:
		return errors.New("core: Period must be positive")
	case p.NewRelayPercentile <= 0 || p.NewRelayPercentile > 100:
		return fmt.Errorf("core: NewRelayPercentile out of range: %v", p.NewRelayPercentile)
	case p.MaxMeasureAttempts <= 0:
		return errors.New("core: MaxMeasureAttempts must be positive")
	}
	return nil
}

// SlotsPerPeriod returns the number of t-second measurement slots in one
// measurement period.
func (p Params) SlotsPerPeriod() int {
	return int(p.Period / (time.Duration(p.SlotSeconds) * time.Second))
}
