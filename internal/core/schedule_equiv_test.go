package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// randomPopulation builds a reproducible mixed population: log-uniform
// capacities over ~3 decades, a slice of zero-prior relays, and newFrac
// of the population marked New (scheduled FCFS).
func randomPopulation(rng *rand.Rand, n int, newFrac float64) []RelayEstimate {
	relays := make([]RelayEstimate, n)
	for i := range relays {
		exp := 6 + 3*rng.Float64() // 1e6 .. 1e9 bps
		relays[i] = RelayEstimate{
			Name:        fmt.Sprintf("relay-%06d", i),
			EstimateBps: pow10(exp),
			New:         rng.Float64() < newFrac,
		}
	}
	return relays
}

func pow10(x float64) float64 {
	v := 1.0
	for x >= 1 {
		v *= 10
		x--
	}
	return v * (1 + x) // coarse but monotone; exact shape is irrelevant
}

// schedulesEqual asserts byte-identical schedules: same slot contents in
// the same order, same unscheduled list.
func schedulesEqual(t *testing.T, a, b *Schedule, label string) {
	t.Helper()
	if a.NumSlots != b.NumSlots {
		t.Fatalf("%s: NumSlots %d vs %d", label, a.NumSlots, b.NumSlots)
	}
	if len(a.PerBWAuth) != len(b.PerBWAuth) {
		t.Fatalf("%s: BWAuth count %d vs %d", label, len(a.PerBWAuth), len(b.PerBWAuth))
	}
	for bw := range a.PerBWAuth {
		for slot := range a.PerBWAuth[bw] {
			sa, sb := a.PerBWAuth[bw][slot], b.PerBWAuth[bw][slot]
			if len(sa) == 0 && len(sb) == 0 {
				continue
			}
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("%s: bwauth %d slot %d differ:\n  %v\n  %v", label, bw, slot, sa, sb)
			}
		}
	}
	if !reflect.DeepEqual(a.Unscheduled, b.Unscheduled) {
		t.Fatalf("%s: unscheduled differ: %v vs %v", label, a.Unscheduled, b.Unscheduled)
	}
}

// TestIndexedBuilderMatchesReference is the central equivalence property:
// the indexed builder consumes the derived RNG streams exactly as the
// seed-style reference scan does, so on any population the two must
// produce byte-identical schedules — including which relays end up
// unscheduled and the assignment order within each slot.
func TestIndexedBuilderMatchesReference(t *testing.T) {
	p := DefaultParams()
	p.Period = 4 * time.Hour // 480 slots keeps the O(R·S) reference fast
	sizes := []int{1, 17, 400, 2000}
	if !testing.Short() {
		sizes = append(sizes, 10000)
	}
	for trial, n := range sizes {
		rng := rand.New(rand.NewSource(int64(41 + trial)))
		relays := randomPopulation(rng, n, 0.05)
		// Tight capacity so feasibility actually binds and some relays
		// go unscheduled: ~85% nominal occupancy plus capacity skew
		// across BWAuths.
		var totalNeed float64
		for _, r := range relays {
			totalNeed += RequiredBps(r.EstimateBps, p)
		}
		base := totalNeed / float64(p.SlotsPerPeriod()) / 0.85
		caps := []float64{base, base * 1.5, base * 0.75}

		seed := []byte(fmt.Sprintf("equiv-%d", trial))
		fast, err := BuildSchedule(seed, relays, caps, p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := BuildScheduleReference(seed, relays, caps, p)
		if err != nil {
			t.Fatal(err)
		}
		schedulesEqual(t, fast, ref, fmt.Sprintf("n=%d", n))

		// The O(1) index agrees with the reference's linear scan.
		for _, r := range relays[:min(len(relays), 200)] {
			for b := range caps {
				if got, want := fast.SlotOf(b, r.Name), ref.SlotOf(b, r.Name); got != want {
					t.Fatalf("n=%d: SlotOf(%d, %s) = %d, reference %d", n, b, r.Name, got, want)
				}
			}
		}
		if fast.Assignments() != ref.Assignments() {
			t.Fatalf("n=%d: assignments %d vs %d", n, fast.Assignments(), ref.Assignments())
		}
	}
}

// TestScheduleBuilderReuseDeterministic: one builder reused across
// rounds (stable population, then a changed one) must produce exactly
// what fresh builds produce.
func TestScheduleBuilderReuseDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Period = 2 * time.Hour
	rng := rand.New(rand.NewSource(7))
	relays := randomPopulation(rng, 500, 0.1)
	caps := []float64{2e9, 3e9}

	builder := NewScheduleBuilder()
	for round := 0; round < 3; round++ {
		seed := []byte(fmt.Sprintf("round-%d", round))
		reused, err := builder.Build(seed, relays, caps, p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := BuildSchedule(seed, relays, caps, p)
		if err != nil {
			t.Fatal(err)
		}
		schedulesEqual(t, reused, fresh, fmt.Sprintf("round %d", round))
	}

	// Population churn: drop some relays, add others, change priors. The
	// builder must rebuild its relay index and still match a fresh build.
	relays = relays[:400]
	for i := 0; i < 80; i++ {
		relays = append(relays, RelayEstimate{Name: fmt.Sprintf("joiner-%03d", i), EstimateBps: 25e6, New: i%2 == 0})
	}
	reused, err := builder.Build([]byte("churn"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildSchedule([]byte("churn"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	schedulesEqual(t, reused, fresh, "after churn")
}

// TestBuildScheduleIdenticalAcrossBWAuthDerivations: two BWAuths holding
// the same shared seed derive the same per-BWAuth streams and therefore
// the identical schedule — the §4.3 determinism contract — while
// different BWAuth columns of one schedule use genuinely different
// randomness.
func TestBuildScheduleIdenticalAcrossBWAuthDerivations(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(99))
	relays := randomPopulation(rng, 1200, 0.05)
	caps := []float64{3e9, 3e9}

	s1, err := BuildSchedule([]byte("shared"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule([]byte("shared"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	schedulesEqual(t, s1, s2, "same seed")

	// Equal team capacities, same relays: if the two BWAuth columns were
	// fed the same stream they would be identical; the per-BWAuth
	// derivation must keep them distinct.
	same := 0
	for _, r := range relays {
		if s1.SlotOf(0, r.Name) == s1.SlotOf(1, r.Name) && s1.SlotOf(0, r.Name) >= 0 {
			same++
		}
	}
	if same == len(relays) {
		t.Fatal("BWAuth 0 and 1 received identical placement streams")
	}
}

// TestSlotOfFallbackWithoutIndex covers hand-assembled schedules, which
// carry no relay index.
func TestSlotOfFallbackWithoutIndex(t *testing.T) {
	s := &Schedule{
		NumSlots: 3,
		PerBWAuth: [][][]Assignment{{
			nil,
			{{Relay: "a", NeedBps: 1}, {Relay: "b", NeedBps: 2}},
			{{Relay: "c", NeedBps: 3}},
		}},
	}
	if got := s.SlotOf(0, "b"); got != 1 {
		t.Fatalf("SlotOf(b) = %d", got)
	}
	if got := s.SlotOf(0, "missing"); got != -1 {
		t.Fatalf("SlotOf(missing) = %d", got)
	}
	if got := s.SlotOf(1, "a"); got != -1 {
		t.Fatalf("SlotOf(bad bwauth) = %d", got)
	}
	if got := s.Assignments(); got != 3 {
		t.Fatalf("Assignments() = %d", got)
	}
}

// greedySeedReferenceImpl is the seed GreedyFastestSchedule
// implementation (per-slot array sweeps), kept to pin the
// first-fit-decreasing rewrite to the exact packing the paper numbers
// were validated against.
func greedySeedReferenceImpl(relays []RelayEstimate, teamCapBps float64, excessFactor float64, p Params) GreedyResult {
	type item struct {
		name string
		need float64
	}
	items := make([]item, 0, len(relays))
	res := GreedyResult{}
	for _, r := range relays {
		need := excessFactor * r.EstimateBps
		res.TotalCapacityBps += r.EstimateBps
		if need > teamCapBps {
			res.Unmeasurable = append(res.Unmeasurable, r.Name)
			continue
		}
		items = append(items, item{name: r.Name, need: need})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].need > items[j].need })
	res.RelaysMeasured = len(items)
	slots := 0
	idx := 0
	used := make([]bool, len(items))
	remainingCount := len(items)
	for remainingCount > 0 {
		slots++
		residual := teamCapBps
		for i := idx; i < len(items); i++ {
			if used[i] || items[i].need > residual {
				continue
			}
			used[i] = true
			residual -= items[i].need
			remainingCount--
			if residual <= 0 {
				break
			}
		}
		for idx < len(items) && used[idx] {
			idx++
		}
	}
	res.SlotsUsed = slots
	return res
}

func TestGreedyFFDMatchesSeedSweep(t *testing.T) {
	p := DefaultParams()
	for trial, n := range []int{1, 50, 3000} {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		relays := randomPopulation(rng, n, 0)
		got := GreedyFastestSchedule(relays, 3e9, ExcessFactorPaper7, p)
		want := greedySeedReferenceImpl(relays, 3e9, ExcessFactorPaper7, p)
		if got.SlotsUsed != want.SlotsUsed || got.RelaysMeasured != want.RelaysMeasured ||
			len(got.Unmeasurable) != len(want.Unmeasurable) {
			t.Fatalf("n=%d: FFD %+v vs seed sweep %+v", n, got, want)
		}
	}
	// Heavy-tailed July-2019-like shape, the population §7 reports on.
	relays := julyLikeNetwork(6419, 608e9)
	got := GreedyFastestSchedule(relays, 3e9, ExcessFactorPaper7, p)
	want := greedySeedReferenceImpl(relays, 3e9, ExcessFactorPaper7, p)
	if got.SlotsUsed != want.SlotsUsed || got.RelaysMeasured != want.RelaysMeasured {
		t.Fatalf("july network: FFD %+v vs seed sweep %+v", got, want)
	}
}
