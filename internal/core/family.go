package core

import (
	"context"
	"errors"
	"fmt"

	"flashflow/internal/stats"
)

// This file implements the §5 Limitations mitigation for Sybil relays:
// "Pairs of MyFamily relays (or suspected Sybils) can be measured
// simultaneously with FlashFlow to determine if they share the same Tor
// capacity, and then the measured capacity averaged over the members of a
// connected set."
//
// The test: measure each suspect alone, then measure the pair
// simultaneously. Two relays on independent machines yield a joint
// capacity close to the sum of their solo capacities; two relays sharing a
// machine yield a joint capacity close to either solo capacity, because
// the machine's capacity is demonstrated twice but exists once.

// PairBackend measures two targets in the same slot. The SimBackend-based
// implementation below shares the relay model between co-located names.
type PairBackend interface {
	Backend
	// RunPairMeasurement measures both targets simultaneously, splitting
	// the allocation evenly between them, and returns each target's
	// per-second measurement bytes. Implementations honor ctx exactly as
	// Backend.RunMeasurement does.
	RunPairMeasurement(ctx context.Context, targetA, targetB string, alloc Allocation, seconds int) (MeasurementData, MeasurementData, error)
}

// FamilyVerdict is the outcome of a co-location test.
type FamilyVerdict struct {
	RelayA, RelayB string
	// SoloBpsA/B are the individual capacity estimates.
	SoloBpsA, SoloBpsB float64
	// JointBps is the combined capacity when measured simultaneously.
	JointBps float64
	// SharedMachine is true when the joint capacity is much closer to a
	// single solo capacity than to their sum.
	SharedMachine bool
	// AdjustedBps is the per-relay capacity to credit: solo estimates for
	// independent relays, the joint capacity split evenly for co-located
	// ones (the paper's "averaged over the members").
	AdjustedBpsA, AdjustedBpsB float64
}

// ErrPairUnsupported is returned when the backend cannot measure pairs.
var ErrPairUnsupported = errors.New("core: backend does not support pair measurement")

// sharedThreshold classifies a pair as co-located when the joint capacity
// is below this fraction of the solo sum. Independent machines measure
// near 1.0; a shared machine measures near max(solo)/(soloA+soloB) ≈ 0.5
// for equal-capacity Sybils.
const sharedThreshold = 0.75

// TestFamilyPair measures two suspect relays individually and then
// simultaneously, and classifies whether they share a machine.
func TestFamilyPair(ctx context.Context, backend Backend, team []*Measurer, relayA, relayB string, priorA, priorB float64, p Params) (FamilyVerdict, error) {
	pair, ok := backend.(PairBackend)
	if !ok {
		return FamilyVerdict{}, ErrPairUnsupported
	}
	v := FamilyVerdict{RelayA: relayA, RelayB: relayB}

	outA, err := MeasureRelay(ctx, backend, team, relayA, priorA, p)
	if err != nil {
		return v, fmt.Errorf("solo %s: %w", relayA, err)
	}
	v.SoloBpsA = outA.EstimateBps
	outB, err := MeasureRelay(ctx, backend, team, relayB, priorB, p)
	if err != nil {
		return v, fmt.Errorf("solo %s: %w", relayB, err)
	}
	v.SoloBpsB = outB.EstimateBps

	// Joint slot: allocate for the sum of the solo estimates.
	need := RequiredBps(v.SoloBpsA+v.SoloBpsB, p)
	if cap := TeamCapacityBps(team); need > cap {
		need = cap
	}
	alloc, err := AllocateGreedy(team, need, p)
	if err != nil {
		return v, err
	}
	dataA, dataB, err := pair.RunPairMeasurement(ctx, relayA, relayB, alloc, p.SlotSeconds)
	if err != nil {
		return v, fmt.Errorf("pair measurement: %w", err)
	}
	aggA, err := Aggregate(dataA, p.Ratio)
	if err != nil {
		return v, err
	}
	aggB, err := Aggregate(dataB, p.Ratio)
	if err != nil {
		return v, err
	}
	v.JointBps = (aggA.EstimateBytesPerSec + aggB.EstimateBytesPerSec) * 8

	soloSum := v.SoloBpsA + v.SoloBpsB
	if soloSum > 0 && v.JointBps < sharedThreshold*soloSum {
		v.SharedMachine = true
		v.AdjustedBpsA = v.JointBps / 2
		v.AdjustedBpsB = v.JointBps / 2
	} else {
		v.AdjustedBpsA = v.SoloBpsA
		v.AdjustedBpsB = v.SoloBpsB
	}
	return v, nil
}

// ColocateTargets marks two SimBackend targets as sharing one machine: the
// shared relay model means capacity demonstrated by one is unavailable to
// the other within the same slot.
func (b *SimBackend) ColocateTargets(nameA, nameB string) error {
	a, ok := b.Targets[nameA]
	if !ok {
		return fmt.Errorf("core: unknown target %q", nameA)
	}
	bb, ok := b.Targets[nameB]
	if !ok {
		return fmt.Errorf("core: unknown target %q", nameB)
	}
	bb.Relay = a.Relay
	return nil
}

var _ PairBackend = (*SimBackend)(nil)

// RunPairMeasurement implements PairBackend: the allocation is split
// evenly between the two targets; co-located targets share a relay model,
// so their joint throughput is bounded by the one machine.
func (b *SimBackend) RunPairMeasurement(ctx context.Context, targetA, targetB string, alloc Allocation, seconds int) (MeasurementData, MeasurementData, error) {
	half := Allocation{
		PerMeasurerBps: make([]float64, len(alloc.PerMeasurerBps)),
		Processes:      alloc.Processes,
		SocketsPer:     make([]int, len(alloc.SocketsPer)),
		TotalBps:       alloc.TotalBps / 2,
	}
	for i := range alloc.PerMeasurerBps {
		half.PerMeasurerBps[i] = alloc.PerMeasurerBps[i] / 2
		half.SocketsPer[i] = alloc.SocketsPer[i] / 2
		if alloc.SocketsPer[i] > 0 && half.SocketsPer[i] < 1 {
			half.SocketsPer[i] = 1
		}
	}
	ta, ok := b.Targets[targetA]
	if !ok {
		return MeasurementData{}, MeasurementData{}, fmt.Errorf("core: unknown target %q", targetA)
	}
	tb, ok := b.Targets[targetB]
	if !ok {
		return MeasurementData{}, MeasurementData{}, fmt.Errorf("core: unknown target %q", targetB)
	}
	shared := ta.Relay == tb.Relay

	if !shared {
		dataA, err := b.RunMeasurement(ctx, targetA, half, seconds, nil)
		if err != nil {
			return MeasurementData{}, MeasurementData{}, err
		}
		dataB, err := b.RunMeasurement(ctx, targetB, half, seconds, nil)
		if err != nil {
			return MeasurementData{}, MeasurementData{}, err
		}
		return dataA, dataB, nil
	}
	// Shared machine: run one measurement against the machine with the
	// full allocation and attribute half of the demonstrated capacity to
	// each name — both suspects' traffic competes for the same relay.
	data, err := b.RunMeasurement(ctx, targetA, alloc, seconds, nil)
	if err != nil {
		return MeasurementData{}, MeasurementData{}, err
	}
	halfData := func() MeasurementData {
		out := MeasurementData{
			MeasBytes: make([][]float64, len(data.MeasBytes)),
			NormBytes: make([]float64, len(data.NormBytes)),
			Failed:    data.Failed,
		}
		for i := range data.MeasBytes {
			out.MeasBytes[i] = make([]float64, len(data.MeasBytes[i]))
			for j, v := range data.MeasBytes[i] {
				out.MeasBytes[i][j] = v / 2
			}
		}
		for j, v := range data.NormBytes {
			out.NormBytes[j] = v / 2
		}
		return out
	}
	return halfData(), halfData(), nil
}

// AdjustFamilyWeights applies verdicts to a set of capacity estimates,
// replacing co-located relays' estimates with their shares of the joint
// capacity. It returns the corrected total (the Sybil pair no longer
// counts its machine twice).
func AdjustFamilyWeights(estimates map[string]float64, verdicts []FamilyVerdict) float64 {
	for _, v := range verdicts {
		if v.SharedMachine {
			estimates[v.RelayA] = v.AdjustedBpsA
			estimates[v.RelayB] = v.AdjustedBpsB
		}
	}
	vals := make([]float64, 0, len(estimates))
	for _, e := range estimates {
		vals = append(vals, e)
	}
	return stats.Sum(vals)
}
