package core

import (
	"context"
	"math"
	"testing"
	"time"

	"flashflow/internal/relay"
)

// paperPaths returns path models resembling the four measurement hosts of
// Table 1 (US-NW, US-E, IN, NL) toward US-SW.
func paperPaths() []PathModel {
	return []PathModel{
		{RTT: 40 * time.Millisecond, LinkBps: 946e6, BiasSigma: 0.03, JitterSigma: 0.02},
		{RTT: 62 * time.Millisecond, LinkBps: 941e6, BiasSigma: 0.02, JitterSigma: 0.02},
		{RTT: 210 * time.Millisecond, LinkBps: 1076e6, BiasSigma: 0.05, JitterSigma: 0.04},
		{RTT: 137 * time.Millisecond, LinkBps: 1611e6, BiasSigma: 0.03, JitterSigma: 0.03},
	}
}

func paperTeam() []*Measurer {
	return []*Measurer{
		{Name: "US-NW", CapacityBps: 946e6, Cores: 8},
		{Name: "US-E", CapacityBps: 941e6, Cores: 12},
		{Name: "IN", CapacityBps: 1076e6, Cores: 2},
		{Name: "NL", CapacityBps: 1611e6, Cores: 2},
	}
}

func honestTarget(capBps float64) *SimTarget {
	return &SimTarget{
		Relay:    relay.New(relay.Config{Name: "t", TorCapBps: capBps}),
		LinkBps:  954e6,
		Behavior: BehaviorHonest,
	}
}

func TestSimBackendMeasuresHonestRelay(t *testing.T) {
	p := DefaultParams()
	b := NewSimBackend(paperPaths(), 1)
	b.AddTarget("t", honestTarget(250e6))
	team := paperTeam()
	out, err := MeasureRelay(context.Background(), b, team, "t", 250e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive {
		t.Fatalf("should be conclusive: %+v", out.Attempts)
	}
	rel := out.EstimateBps / 250e6
	if rel < 1-p.Eps1 || rel > 1+p.Eps2 {
		t.Fatalf("estimate %.1f Mbit/s outside (1−ε1,1+ε2) of 250: rel=%v", out.EstimateBps/1e6, rel)
	}
}

func TestSimBackendAccuracyAcrossCapacities(t *testing.T) {
	// Fig. 6's sweep: 10, 250, 500, 750 Mbit/s and unlimited (890).
	p := DefaultParams()
	for _, capMbit := range []float64{10, 250, 500, 750, 890} {
		b := NewSimBackend(paperPaths(), int64(capMbit))
		b.AddTarget("t", honestTarget(capMbit*1e6))
		out, err := MeasureRelay(context.Background(), b, paperTeam(), "t", capMbit*1e6, p)
		if err != nil {
			t.Fatalf("cap %v: %v", capMbit, err)
		}
		rel := out.EstimateBps / (capMbit * 1e6)
		if rel < 0.80 || rel > 1.05 {
			t.Errorf("cap %v Mbit/s: relative estimate %v outside [0.80, 1.05]", capMbit, rel)
		}
	}
}

func TestSimBackendUnknownTarget(t *testing.T) {
	b := NewSimBackend(paperPaths(), 1)
	alloc := Allocation{PerMeasurerBps: make([]float64, 4), SocketsPer: make([]int, 4)}
	if _, err := b.RunMeasurement(context.Background(), "nope", alloc, 1, nil); err == nil {
		t.Fatal("unknown target should error")
	}
}

func TestSimBackendAllocationPathMismatch(t *testing.T) {
	b := NewSimBackend(paperPaths(), 1)
	b.AddTarget("t", honestTarget(100e6))
	alloc := Allocation{PerMeasurerBps: []float64{1e6}, SocketsPer: []int{10}}
	if _, err := b.RunMeasurement(context.Background(), "t", alloc, 1, nil); err == nil {
		t.Fatal("mismatched allocation should error")
	}
}

func TestLyingRelayBoundedByMaxInflation(t *testing.T) {
	// §5: a relay that sends no normal traffic but reports the maximum
	// inflates its estimate by at most 1/(1−r) = 1.33.
	p := DefaultParams()
	trueCap := 300e6
	b := NewSimBackend(paperPaths(), 7)
	tgt := honestTarget(trueCap)
	tgt.Behavior = BehaviorInflateNormal
	b.AddTarget("liar", tgt)
	out, err := MeasureRelay(context.Background(), b, paperTeam(), "liar", trueCap, p)
	if err != nil {
		t.Fatal(err)
	}
	maxAllowed := trueCap * p.MaxInflation() * (1 + p.Eps2)
	if out.EstimateBps > maxAllowed {
		t.Fatalf("liar got %v, bound is %v", out.EstimateBps, maxAllowed)
	}
	// And the attack does pay up to that bound: the estimate should
	// exceed the honest value (the clamp credits fabricated normal
	// traffic up to the ratio share).
	if out.EstimateBps < trueCap*1.1 {
		t.Fatalf("liar gained too little, inflation model broken: %v", out.EstimateBps)
	}
}

func TestForgingRelayDetected(t *testing.T) {
	// A relay forging every echo at FlashFlow rates is detected with
	// overwhelming probability: 30 s × ~60k cells/s at p=1e-5.
	p := DefaultParams()
	b := NewSimBackend(paperPaths(), 3)
	tgt := honestTarget(250e6)
	tgt.Behavior = BehaviorForgeEcho
	tgt.ForgeBoost = 2
	b.AddTarget("forger", tgt)
	_, err := MeasureRelay(context.Background(), b, paperTeam(), "forger", 250e6, p)
	if err == nil {
		t.Fatal("forging relay should fail the measurement")
	}
}

func TestDetectionProbability(t *testing.T) {
	if got := DetectionProbability(1e-5, 0); got != 0 {
		t.Fatalf("no forged cells: %v", got)
	}
	if got := DetectionProbability(0, 1e6); got != 0 {
		t.Fatalf("p=0: %v", got)
	}
	if got := DetectionProbability(1, 5); got != 1 {
		t.Fatalf("p=1: %v", got)
	}
	// 1e6 forged cells at p=1e-5: detection ≈ 1−e^−10 ≈ 0.9999546.
	got := DetectionProbability(1e-5, 1e6)
	if math.Abs(got-(1-math.Exp(-10))) > 1e-3 {
		t.Fatalf("detection: got %v", got)
	}
}

func TestBurstAttackSuccess(t *testing.T) {
	// §5: q < 1/2 fails with probability ≥ 0.5.
	for _, n := range []int{1, 3, 5, 9} {
		if got := BurstAttackSuccessProbability(n, 0.3); got > 0.5 {
			t.Errorf("n=%d q=0.3: success %v > 0.5", n, got)
		}
	}
	if got := BurstAttackSuccessProbability(5, 1.0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("always-on relay: %v", got)
	}
}

func TestBackgroundTrafficFig7(t *testing.T) {
	// Fig. 7: 250 Mbit/s relay with 50 Mbit/s background, r = 0.1. The
	// relay clamps background to 25 Mbit/s during the measurement, and
	// the aggregated estimate still lands near 250 Mbit/s.
	p := DefaultParams()
	p.Ratio = 0.1
	tgt := &SimTarget{
		Relay:         relay.New(relay.Config{Name: "t", RateBps: 250e6, BurstBits: 50e6, Ratio: 0.1}),
		LinkBps:       954e6,
		Behavior:      BehaviorHonest,
		BackgroundBps: func(int) float64 { return 50e6 },
	}
	b := NewSimBackend(paperPaths(), 11)
	b.AddTarget("t", tgt)
	team := paperTeam()
	out, err := MeasureRelay(context.Background(), b, team, "t", 250e6, p)
	if err != nil {
		t.Fatal(err)
	}
	rel := out.EstimateBps / 250e6
	if rel < 0.85 || rel > 1.1 {
		t.Fatalf("estimate with background: rel=%v", rel)
	}
}

func TestClampedLogNormalBounds(t *testing.T) {
	b := NewSimBackend(paperPaths(), 5)
	for i := 0; i < 1000; i++ {
		v := clampedLogNormal(b.rng, 0.5)
		if v < 0.5 || v > 2 {
			t.Fatalf("jitter out of bounds: %v", v)
		}
	}
	if clampedLogNormal(b.rng, 0) != 1 {
		t.Fatal("zero sigma should return 1")
	}
}
