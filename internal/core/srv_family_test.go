package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"flashflow/internal/relay"
)

func TestSharedRandomnessHappyPath(t *testing.T) {
	var commits []Commitment
	var reveals []Reveal
	for _, name := range []string{"bw1", "bw2", "bw3"} {
		r, err := NewRandomReveal(name)
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, r.Commit())
		reveals = append(reveals, r)
	}
	seed, err := SharedRandomness(commits, reveals)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != 32 {
		t.Fatalf("seed length: %d", len(seed))
	}
	// Same messages → same seed (every BWAuth derives it independently).
	seed2, err := SharedRandomness(commits, reveals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seed, seed2) {
		t.Fatal("shared randomness not deterministic from messages")
	}
}

func TestSharedRandomnessOrderIndependent(t *testing.T) {
	r1, _ := NewRandomReveal("a")
	r2, _ := NewRandomReveal("b")
	commits := []Commitment{r1.Commit(), r2.Commit()}
	s1, err := SharedRandomness(commits, []Reveal{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SharedRandomness([]Commitment{r2.Commit(), r1.Commit()}, []Reveal{r2, r1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("seed should not depend on message order")
	}
}

func TestSharedRandomnessRejectsMismatchedReveal(t *testing.T) {
	r, _ := NewRandomReveal("a")
	c := r.Commit()
	r.Value[0] ^= 0xff // equivocate after committing
	if _, err := SharedRandomness([]Commitment{c}, []Reveal{r}); !errors.Is(err, ErrCommitMismatch) {
		t.Fatalf("want ErrCommitMismatch, got %v", err)
	}
}

func TestSharedRandomnessRejectsUncommittedReveal(t *testing.T) {
	r, _ := NewRandomReveal("a")
	if _, err := SharedRandomness(nil, []Reveal{r}); !errors.Is(err, ErrMissingCommit) {
		t.Fatalf("want ErrMissingCommit, got %v", err)
	}
}

func TestSharedRandomnessRejectsDuplicateCommit(t *testing.T) {
	r, _ := NewRandomReveal("a")
	c := r.Commit()
	if _, err := SharedRandomness([]Commitment{c, c}, []Reveal{r}); !errors.Is(err, ErrDuplicateCommit) {
		t.Fatalf("want ErrDuplicateCommit, got %v", err)
	}
}

func TestSharedRandomnessNoReveals(t *testing.T) {
	r, _ := NewRandomReveal("a")
	if _, err := SharedRandomness([]Commitment{r.Commit()}, nil); !errors.Is(err, ErrNoReveals) {
		t.Fatalf("want ErrNoReveals, got %v", err)
	}
}

func TestSharedRandomnessWithholderExcluded(t *testing.T) {
	// A withholding participant (committed, never revealed) does not
	// prevent seed generation — it only removes its contribution.
	r1, _ := NewRandomReveal("honest")
	r2, _ := NewRandomReveal("withholder")
	commits := []Commitment{r1.Commit(), r2.Commit()}
	seed, err := SharedRandomness(commits, []Reveal{r1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != 32 {
		t.Fatal("missing seed")
	}
}

func TestSharedRandomnessHonestPartyGuaranteesFreshness(t *testing.T) {
	// With one honest (random) participant, the seed differs across runs
	// even if all other participants replay fixed values.
	fixed := Reveal{Participant: "adversary"} // all-zero value, replayed
	h1, _ := NewRandomReveal("honest")
	h2, _ := NewRandomReveal("honest")
	s1, err := SharedRandomness([]Commitment{fixed.Commit(), h1.Commit()}, []Reveal{fixed, h1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SharedRandomness([]Commitment{fixed.Commit(), h2.Commit()}, []Reveal{fixed, h2})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Fatal("seed should be fresh across periods with an honest participant")
	}
}

func TestPeriodSeedDistinctPerPeriod(t *testing.T) {
	r, _ := NewRandomReveal("a")
	shared, err := SharedRandomness([]Commitment{r.Commit()}, []Reveal{r})
	if err != nil {
		t.Fatal(err)
	}
	s0 := PeriodSeed(shared, 0)
	s1 := PeriodSeed(shared, 1)
	if bytes.Equal(s0, s1) {
		t.Fatal("period seeds should differ")
	}
	if !bytes.Equal(s0, PeriodSeed(shared, 0)) {
		t.Fatal("period seed not deterministic")
	}
}

func TestSharedRandomnessFeedsSchedule(t *testing.T) {
	// End-to-end: protocol output → period seed → identical schedules at
	// every BWAuth.
	r1, _ := NewRandomReveal("bw1")
	r2, _ := NewRandomReveal("bw2")
	shared, err := SharedRandomness([]Commitment{r1.Commit(), r2.Commit()}, []Reveal{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	seed := PeriodSeed(shared, 7)
	relays := relaysUniform(30, 100e6)
	caps := []float64{3e9, 3e9}
	p := DefaultParams()
	s1, err := BuildSchedule(seed, relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule(seed, relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range relays {
		if s1.SlotOf(0, r.Name) != s2.SlotOf(0, r.Name) {
			t.Fatal("schedules diverge from the same shared seed")
		}
	}
}

// --- Family / Sybil detection tests ---

func colocatedBackend(t *testing.T, capBps float64) *SimBackend {
	t.Helper()
	b := NewSimBackend(paperPaths(), 5)
	b.AddTarget("sybilA", &SimTarget{
		Relay:    relay.New(relay.Config{Name: "machine", TorCapBps: capBps}),
		LinkBps:  954e6,
		Behavior: BehaviorHonest,
	})
	b.AddTarget("sybilB", &SimTarget{
		Relay:    relay.New(relay.Config{Name: "other", TorCapBps: capBps}),
		LinkBps:  954e6,
		Behavior: BehaviorHonest,
	})
	if err := b.ColocateTargets("sybilA", "sybilB"); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFamilyPairDetectsSybils(t *testing.T) {
	// Two names on one 300 Mbit/s machine: each solo measurement reads
	// ≈300, but the joint measurement also reads ≈300 total — flagged.
	const machineCap = 300e6
	b := colocatedBackend(t, machineCap)
	p := DefaultParams()
	v, err := TestFamilyPair(context.Background(), b, paperTeam(), "sybilA", "sybilB", machineCap, machineCap, p)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SharedMachine {
		t.Fatalf("co-located pair not detected: solo %.0f/%.0f joint %.0f",
			v.SoloBpsA/1e6, v.SoloBpsB/1e6, v.JointBps/1e6)
	}
	// Credited capacity is split, not doubled.
	total := v.AdjustedBpsA + v.AdjustedBpsB
	if total > machineCap*1.1 {
		t.Fatalf("Sybils still credited %.0f Mbit/s from a %.0f machine", total/1e6, machineCap/1e6)
	}
}

func TestFamilyPairPassesIndependentRelays(t *testing.T) {
	b := NewSimBackend(paperPaths(), 6)
	b.AddTarget("indepA", honestTarget(200e6))
	b.AddTarget("indepB", honestTarget(250e6))
	p := DefaultParams()
	v, err := TestFamilyPair(context.Background(), b, paperTeam(), "indepA", "indepB", 200e6, 250e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.SharedMachine {
		t.Fatalf("independent relays misclassified: solo %.0f/%.0f joint %.0f",
			v.SoloBpsA/1e6, v.SoloBpsB/1e6, v.JointBps/1e6)
	}
	if v.AdjustedBpsA != v.SoloBpsA || v.AdjustedBpsB != v.SoloBpsB {
		t.Fatal("independent relays should keep their solo estimates")
	}
}

func TestFamilyPairUnknownTarget(t *testing.T) {
	b := NewSimBackend(paperPaths(), 7)
	b.AddTarget("only", honestTarget(100e6))
	p := DefaultParams()
	if _, err := TestFamilyPair(context.Background(), b, paperTeam(), "only", "ghost", 100e6, 100e6, p); err == nil {
		t.Fatal("unknown pair member should error")
	}
	if err := b.ColocateTargets("only", "ghost"); err == nil {
		t.Fatal("colocating unknown target should error")
	}
	if err := b.ColocateTargets("ghost", "only"); err == nil {
		t.Fatal("colocating unknown target should error")
	}
}

type plainBackend struct{}

func (plainBackend) RunMeasurement(context.Context, string, Allocation, int, SampleSink) (MeasurementData, error) {
	return MeasurementData{}, nil
}

func TestFamilyPairRequiresPairBackend(t *testing.T) {
	p := DefaultParams()
	if _, err := TestFamilyPair(context.Background(), plainBackend{}, paperTeam(), "a", "b", 1, 1, p); !errors.Is(err, ErrPairUnsupported) {
		t.Fatalf("want ErrPairUnsupported, got %v", err)
	}
}

func TestAdjustFamilyWeights(t *testing.T) {
	estimates := map[string]float64{"a": 300e6, "b": 300e6, "c": 100e6}
	verdicts := []FamilyVerdict{{
		RelayA: "a", RelayB: "b",
		SharedMachine: true,
		AdjustedBpsA:  150e6, AdjustedBpsB: 150e6,
	}}
	total := AdjustFamilyWeights(estimates, verdicts)
	if estimates["a"] != 150e6 || estimates["b"] != 150e6 {
		t.Fatalf("estimates not adjusted: %v", estimates)
	}
	if total != 400e6 {
		t.Fatalf("total: got %v want 400e6", total)
	}
}
