package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"sync"
)

// RelayEstimate is a scheduler input: a relay and its capacity prior.
type RelayEstimate struct {
	Name        string
	EstimateBps float64
	// New marks relays without a reliable prior (§4.2); they are
	// scheduled after all old relays, first-come first-served.
	New bool
}

// Assignment is one scheduled measurement.
type Assignment struct {
	Relay   string
	NeedBps float64
}

// Schedule maps (BWAuth, slot) to the measurements that start there.
type Schedule struct {
	NumSlots int
	// PerBWAuth[b][slot] lists the assignments of BWAuth b in that slot.
	PerBWAuth [][][]Assignment
	// Unscheduled lists relays that could not be placed on at least one
	// BWAuth (insufficient capacity in every slot), in input order.
	Unscheduled []string

	// relayOrd/slotBy form the precomputed relay→(bwauth,slot) index:
	// relayOrd maps a relay name to its ordinal in the builder's input,
	// slotBy[b][ordinal] is that relay's slot at BWAuth b (-1 if
	// unplaced). Built by ScheduleBuilder; hand-assembled Schedules
	// leave them nil and SlotOf falls back to a linear scan.
	relayOrd    map[string]int32
	slotBy      [][]int32
	assignments int
}

// SlotOf returns the slot in which the given BWAuth measures the relay, or
// -1 if it does not. Builder-produced schedules answer in O(1) via the
// relay index; schedules assembled by hand fall back to scanning.
func (s *Schedule) SlotOf(bwauth int, relayName string) int {
	if bwauth < 0 || bwauth >= len(s.PerBWAuth) {
		return -1
	}
	if s.relayOrd != nil {
		ord, ok := s.relayOrd[relayName]
		if !ok {
			return -1
		}
		return int(s.slotBy[bwauth][ord])
	}
	for slot, as := range s.PerBWAuth[bwauth] {
		for _, a := range as {
			if a.Relay == relayName {
				return slot
			}
		}
	}
	return -1
}

// Assignments returns the total number of placed (BWAuth, relay, slot)
// assignments — the size of a round's work list. Callers use it to
// preallocate per-round job buffers.
func (s *Schedule) Assignments() int {
	if s.relayOrd != nil {
		return s.assignments
	}
	total := 0
	for _, slots := range s.PerBWAuth {
		for _, as := range slots {
			total += len(as)
		}
	}
	return total
}

// scheduleRNG derives BWAuth b's deterministic placement stream from the
// shared random seed (§4.3: pseudorandom bits extracted from a
// collectively generated seed). Every BWAuth derives every stream the
// same way, so all of them compute the identical schedule; making the
// streams per-BWAuth (rather than one interleaved stream, as the seed
// implementation did) is what lets the builder construct each BWAuth's
// slots on its own core.
func scheduleRNG(seed []byte, bwauth int) *rand.Rand {
	h := sha256.New()
	h.Write(seed)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(bwauth))
	h.Write(b[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(sum[:8]))))
}

// ErrBadScheduleInput flags invalid scheduler arguments.
var ErrBadScheduleInput = errors.New("core: bad schedule input")

// BuildSchedule constructs the randomized measurement schedule of §4.3 for
// one period: for each old relay, each BWAuth's slot is drawn uniformly at
// random (without replacement across that BWAuth's capacity budget) from
// the slots with sufficient unallocated capacity. New relays are then
// placed in the earliest slots with room, in arrival order. teamCapBps[b]
// is BWAuth b's team capacity.
//
// This is a convenience wrapper over a fresh ScheduleBuilder; long-lived
// callers (the continuous coordinator) keep a builder and reuse its
// arenas across rounds.
func BuildSchedule(seed []byte, relays []RelayEstimate, teamCapBps []float64, p Params) (*Schedule, error) {
	return NewScheduleBuilder().Build(seed, relays, teamCapBps, p)
}

// ScheduleBuilder constructs §4.3 schedules using indexed slot structures
// (see slotIndex) in O((R+S)·log S) per BWAuth instead of the seed
// algorithm's O(R·S) scan, building the BWAuths' slot assignments in
// parallel — each BWAuth's RNG stream is independently derived from the
// shared seed, so sharding the build per BWAuth preserves determinism.
//
// A builder retains every internal arena (slot indexes, order buffers,
// the relay→ordinal map, and the returned Schedule's slot arrays) across
// Build calls, so a coordinator running one round per period performs no
// allocation proportional to R·S in steady state when the population is
// stable. The returned Schedule aliases those arenas: it is valid until
// the next Build call on the same builder. Use BuildSchedule for an
// independent snapshot.
//
// A builder is not safe for concurrent Build calls.
type ScheduleBuilder struct {
	sched    *Schedule
	ord      map[string]int32
	ordNames []string

	order   orderScratch
	unsched []bool
	perB    []*slotIndex
	failedB [][]int32
}

// NewScheduleBuilder returns an empty builder; arenas grow on first use.
func NewScheduleBuilder() *ScheduleBuilder { return &ScheduleBuilder{} }

// needPair carries a relay's capacity need next to its input ordinal so
// the old-phase sort compares in-cache values instead of gathering
// through an index slice.
type needPair struct {
	need float64
	idx  int32
}

// orderScratch holds the placement-order buffers shared by the indexed
// and reference builders: per-relay needs, old relays sorted by need
// descending (ties by name, so the order is a pure function of the relay
// set and not of consensus iteration order), and new relays in arrival
// order (FCFS, §4.2). Need-descending processing is what keeps the slot
// index's feasibility threshold monotone.
type orderScratch struct {
	needs    []float64
	pairs    []needPair
	freshIdx []int32
}

func (o *orderScratch) compute(relays []RelayEstimate, p Params) {
	if cap(o.needs) < len(relays) {
		o.needs = make([]float64, 0, len(relays))
		o.pairs = make([]needPair, 0, len(relays))
	}
	o.needs = o.needs[:0]
	o.pairs = o.pairs[:0]
	o.freshIdx = o.freshIdx[:0]
	for i, r := range relays {
		need := RequiredBps(r.EstimateBps, p)
		o.needs = append(o.needs, need)
		if r.New {
			o.freshIdx = append(o.freshIdx, int32(i))
		} else {
			o.pairs = append(o.pairs, needPair{need: need, idx: int32(i)})
		}
	}
	slices.SortFunc(o.pairs, func(a, b needPair) int {
		if a.need != b.need {
			if a.need > b.need {
				return -1
			}
			return 1
		}
		return strings.Compare(relays[a.idx].Name, relays[b.idx].Name)
	})
}

// Build constructs the schedule. See BuildSchedule for the semantics and
// ScheduleBuilder for the arena-reuse contract.
func (sb *ScheduleBuilder) Build(seed []byte, relays []RelayEstimate, teamCapBps []float64, p Params) (*Schedule, error) {
	if len(teamCapBps) == 0 {
		return nil, fmt.Errorf("%w: no BWAuths", ErrBadScheduleInput)
	}
	numSlots := p.SlotsPerPeriod()
	if numSlots <= 0 {
		return nil, fmt.Errorf("%w: period shorter than one slot", ErrBadScheduleInput)
	}

	sb.order.compute(relays, p)
	sb.prepare(relays, len(teamCapBps), numSlots)
	s := sb.sched

	var wg sync.WaitGroup
	for b := range teamCapBps {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sb.buildOne(b, seed, relays, teamCapBps[b], numSlots)
		}(b)
	}
	wg.Wait()

	// Merge the per-BWAuth placement failures into one deterministic
	// list: a relay is unscheduled if any BWAuth could not place it,
	// reported in input order.
	for _, failed := range sb.failedB {
		for _, ri := range failed {
			sb.unsched[ri] = true
		}
	}
	total := 0
	for i, r := range relays {
		if sb.unsched[i] {
			s.Unscheduled = append(s.Unscheduled, r.Name)
		}
	}
	for b := range s.slotBy {
		for _, slot := range s.slotBy[b] {
			if slot >= 0 {
				total++
			}
		}
	}
	s.assignments = total
	return s, nil
}

// prepare sizes (or recycles) the output Schedule, the relay→ordinal
// map, and the per-BWAuth scratch for this build.
func (sb *ScheduleBuilder) prepare(relays []RelayEstimate, numBWAuths, numSlots int) {
	s := sb.sched
	if s == nil || s.NumSlots != numSlots || len(s.PerBWAuth) != numBWAuths {
		s = &Schedule{NumSlots: numSlots, PerBWAuth: make([][][]Assignment, numBWAuths)}
		for b := range s.PerBWAuth {
			s.PerBWAuth[b] = make([][]Assignment, numSlots)
		}
		s.slotBy = make([][]int32, numBWAuths)
		sb.sched = s
	} else {
		for b := range s.PerBWAuth {
			for slot := range s.PerBWAuth[b] {
				s.PerBWAuth[b][slot] = s.PerBWAuth[b][slot][:0]
			}
		}
	}
	s.Unscheduled = s.Unscheduled[:0]

	// The name→ordinal map is the one per-build cost proportional to R
	// that cannot be updated incrementally, so it is rebuilt only when
	// the population actually changed. The equality check compares
	// string headers first, so a coordinator feeding the same backing
	// relay list each round pays O(R) pointer compares, not a rebuild.
	same := len(sb.ordNames) == len(relays)
	if same {
		for i := range relays {
			if relays[i].Name != sb.ordNames[i] {
				same = false
				break
			}
		}
	}
	if !same {
		sb.ord = make(map[string]int32, len(relays))
		if cap(sb.ordNames) < len(relays) {
			sb.ordNames = make([]string, 0, len(relays))
		} else {
			sb.ordNames = sb.ordNames[:0]
		}
		for i, r := range relays {
			sb.ord[r.Name] = int32(i)
			sb.ordNames = append(sb.ordNames, r.Name)
		}
	}
	s.relayOrd = sb.ord

	for b := range s.slotBy {
		if cap(s.slotBy[b]) < len(relays) {
			s.slotBy[b] = make([]int32, len(relays))
		}
		s.slotBy[b] = s.slotBy[b][:len(relays)]
		for i := range s.slotBy[b] {
			s.slotBy[b][i] = -1
		}
	}

	if cap(sb.unsched) < len(relays) {
		sb.unsched = make([]bool, len(relays))
	}
	sb.unsched = sb.unsched[:len(relays)]
	for i := range sb.unsched {
		sb.unsched[i] = false
	}

	for len(sb.perB) < numBWAuths {
		sb.perB = append(sb.perB, &slotIndex{})
	}
	for len(sb.failedB) < numBWAuths {
		sb.failedB = append(sb.failedB, nil)
	}
	for b := 0; b < numBWAuths; b++ {
		sb.failedB[b] = sb.failedB[b][:0]
	}
}

// buildOne places every relay for one BWAuth: old relays by uniform
// random draw among feasible slots, new relays FCFS into the earliest
// feasible slot. It runs concurrently with its siblings; all state it
// touches (slot index, slot arrays, slotBy column, failure list) is
// per-BWAuth.
func (sb *ScheduleBuilder) buildOne(b int, seed []byte, relays []RelayEstimate, capBps float64, numSlots int) {
	rng := scheduleRNG(seed, b)
	x := sb.perB[b]
	x.reset(numSlots, capBps)
	slots := sb.sched.PerBWAuth[b]
	slotOf := sb.sched.slotBy[b]
	failed := sb.failedB[b]

	for _, pr := range sb.order.pairs {
		ri, need := pr.idx, pr.need
		x.lowerThreshold(need)
		if x.feasCount == 0 {
			failed = append(failed, ri)
			continue
		}
		slot := x.kth(rng.Intn(x.feasCount))
		x.place(slot, need)
		slots[slot] = append(slots[slot], Assignment{Relay: relays[ri].Name, NeedBps: need})
		slotOf[ri] = int32(slot)
	}

	// FCFS phase: the feasible-set machinery is no longer consulted, so
	// drop the threshold to -Inf and let place skip its bookkeeping.
	x.threshold = math.Inf(-1)
	for _, ri := range sb.order.freshIdx {
		need := sb.order.needs[ri]
		slot := x.earliest(need)
		if slot < 0 {
			failed = append(failed, ri)
			continue
		}
		x.place(slot, need)
		slots[slot] = append(slots[slot], Assignment{Relay: relays[ri].Name, NeedBps: need})
		slotOf[ri] = int32(slot)
	}
	sb.failedB[b] = failed
}

// GreedyResult summarizes a fastest-possible network measurement estimate
// (§7 "Network Measurement Efficiency").
type GreedyResult struct {
	// SlotsUsed is the number of slots needed to measure every relay.
	SlotsUsed int
	// RelaysMeasured and TotalCapacityBps summarize the input.
	RelaysMeasured   int
	TotalCapacityBps float64
	// Unmeasurable lists relays whose single-measurement need exceeds the
	// team capacity.
	Unmeasurable []string
}

// HoursUsed converts SlotsUsed to hours given the slot length.
func (g GreedyResult) HoursUsed(p Params) float64 {
	return float64(g.SlotsUsed) * float64(p.SlotSeconds) / 3600
}

// GreedyFastestSchedule computes how quickly a single team can measure the
// whole network: slots are filled first-fit-decreasing, each time taking
// the largest remaining relay that fits the slot's residual capacity
// (§7's greedy scheduler). excessFactor lets callers reproduce the §7
// number with f = 2.84 as well as the §4.2 formula value.
//
// The seed implementation re-swept the item array for every slot
// (O(slots·R) worst case). This version keeps the items need-descending
// and finds "largest unplaced relay with need ≤ residual" by binary
// search plus a union-find next-unplaced pointer with path compression —
// O(R·log R) total, producing the identical packing (each slot's take
// sequence is exactly the seed scan's: a skipped larger item can never
// fit later in the same slot because the residual only shrinks).
func GreedyFastestSchedule(relays []RelayEstimate, teamCapBps float64, excessFactor float64, p Params) GreedyResult {
	type item struct {
		name string
		need float64
	}
	items := make([]item, 0, len(relays))
	res := GreedyResult{}
	for _, r := range relays {
		need := excessFactor * r.EstimateBps
		res.TotalCapacityBps += r.EstimateBps
		if need > teamCapBps {
			res.Unmeasurable = append(res.Unmeasurable, r.Name)
			continue
		}
		items = append(items, item{name: r.Name, need: need})
	}
	slices.SortFunc(items, func(a, b item) int {
		if a.need != b.need {
			if a.need > b.need {
				return -1
			}
			return 1
		}
		return strings.Compare(a.name, b.name)
	})
	res.RelaysMeasured = len(items)
	n := len(items)
	if n == 0 {
		return res
	}

	needs := make([]float64, n)
	for i, it := range items {
		needs[i] = it.need
	}
	// next[i] is the first unplaced index ≥ i (n is the end sentinel).
	next := make([]int32, n+1)
	for i := range next {
		next[i] = int32(i)
	}
	find := func(i int) int {
		for int(next[i]) != i {
			next[i] = next[next[i]]
			i = int(next[i])
		}
		return i
	}

	placed := 0
	slots := 0
	for placed < n {
		slots++
		residual := teamCapBps
		for {
			// First (= largest-need) index that fits the residual; the
			// union-find hop then skips already-placed items.
			lo := sort.Search(n, func(i int) bool { return needs[i] <= residual })
			if lo >= n {
				break
			}
			j := find(lo)
			if j >= n {
				break
			}
			next[j] = int32(j + 1)
			residual -= needs[j]
			placed++
			if residual <= 0 {
				break
			}
		}
	}
	res.SlotsUsed = slots
	return res
}

// NewRelaySlots estimates how long new relays arriving in a consensus wait
// before measurement: with the steady-state schedule occupying
// busySlotFraction of each slot's capacity, a batch of n new relays with
// prior z0 is measured in ceil(n·f·z0 / (teamCap·(1−busyFraction))) slots
// (at least one when n > 0).
func NewRelaySlots(n int, z0Bps, teamCapBps, busyFraction float64, p Params) int {
	if n <= 0 {
		return 0
	}
	free := teamCapBps * (1 - busyFraction)
	if free <= 0 {
		return -1
	}
	need := float64(n) * RequiredBps(z0Bps, p)
	return int(math.Ceil(need / free))
}
