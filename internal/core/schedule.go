package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RelayEstimate is a scheduler input: a relay and its capacity prior.
type RelayEstimate struct {
	Name        string
	EstimateBps float64
	// New marks relays without a reliable prior (§4.2); they are
	// scheduled after all old relays, first-come first-served.
	New bool
}

// Assignment is one scheduled measurement.
type Assignment struct {
	Relay   string
	NeedBps float64
}

// Schedule maps (BWAuth, slot) to the measurements that start there.
type Schedule struct {
	NumSlots int
	// PerBWAuth[b][slot] lists the assignments of BWAuth b in that slot.
	PerBWAuth [][][]Assignment
	// Unscheduled lists relays that could not be placed (insufficient
	// capacity in every slot).
	Unscheduled []string
}

// SlotOf returns the slot in which the given BWAuth measures the relay, or
// -1 if it does not.
func (s *Schedule) SlotOf(bwauth int, relayName string) int {
	if bwauth < 0 || bwauth >= len(s.PerBWAuth) {
		return -1
	}
	for slot, as := range s.PerBWAuth[bwauth] {
		for _, a := range as {
			if a.Relay == relayName {
				return slot
			}
		}
	}
	return -1
}

// scheduleRNG derives a deterministic RNG from the shared random seed, so
// every BWAuth computes the identical schedule (§4.3: pseudorandom bits
// extracted from a collectively generated seed).
func scheduleRNG(seed []byte) *rand.Rand {
	sum := sha256.Sum256(seed)
	return rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(sum[:8]))))
}

// ErrBadScheduleInput flags invalid scheduler arguments.
var ErrBadScheduleInput = errors.New("core: bad schedule input")

// BuildSchedule constructs the randomized measurement schedule of §4.3 for
// one period: for each old relay, each BWAuth's slot is drawn uniformly at
// random (without replacement across that BWAuth's capacity budget) from
// the slots with sufficient unallocated capacity. New relays are then
// placed in the earliest slots with room, in arrival order. teamCapBps[b]
// is BWAuth b's team capacity.
func BuildSchedule(seed []byte, relays []RelayEstimate, teamCapBps []float64, p Params) (*Schedule, error) {
	if len(teamCapBps) == 0 {
		return nil, fmt.Errorf("%w: no BWAuths", ErrBadScheduleInput)
	}
	numSlots := p.SlotsPerPeriod()
	if numSlots <= 0 {
		return nil, fmt.Errorf("%w: period shorter than one slot", ErrBadScheduleInput)
	}
	rng := scheduleRNG(seed)

	s := &Schedule{NumSlots: numSlots, PerBWAuth: make([][][]Assignment, len(teamCapBps))}
	remaining := make([][]float64, len(teamCapBps))
	for b := range teamCapBps {
		s.PerBWAuth[b] = make([][]Assignment, numSlots)
		remaining[b] = make([]float64, numSlots)
		for i := range remaining[b] {
			remaining[b][i] = teamCapBps[b]
		}
	}

	// Old relays first, in deterministic (name) order so that the RNG
	// stream is identical across BWAuths; then new relays FCFS (their
	// input order is their arrival order).
	old := make([]RelayEstimate, 0, len(relays))
	fresh := make([]RelayEstimate, 0)
	for _, r := range relays {
		if r.New {
			fresh = append(fresh, r)
		} else {
			old = append(old, r)
		}
	}
	sort.Slice(old, func(i, j int) bool { return old[i].Name < old[j].Name })

	place := func(b int, r RelayEstimate, random bool) bool {
		need := RequiredBps(r.EstimateBps, p)
		candidates := make([]int, 0, numSlots)
		for slot := 0; slot < numSlots; slot++ {
			if remaining[b][slot] >= need {
				candidates = append(candidates, slot)
				if !random {
					break // FCFS: earliest slot wins
				}
			}
		}
		if len(candidates) == 0 {
			return false
		}
		slot := candidates[0]
		if random {
			slot = candidates[rng.Intn(len(candidates))]
		}
		remaining[b][slot] -= need
		s.PerBWAuth[b][slot] = append(s.PerBWAuth[b][slot], Assignment{Relay: r.Name, NeedBps: need})
		return true
	}

	for _, r := range old {
		for b := range teamCapBps {
			if !place(b, r, true) {
				s.Unscheduled = append(s.Unscheduled, r.Name)
				break
			}
		}
	}
	for _, r := range fresh {
		for b := range teamCapBps {
			if !place(b, r, false) {
				s.Unscheduled = append(s.Unscheduled, r.Name)
				break
			}
		}
	}
	return s, nil
}

// GreedyResult summarizes a fastest-possible network measurement estimate
// (§7 "Network Measurement Efficiency").
type GreedyResult struct {
	// SlotsUsed is the number of slots needed to measure every relay.
	SlotsUsed int
	// RelaysMeasured and TotalCapacityBps summarize the input.
	RelaysMeasured   int
	TotalCapacityBps float64
	// Unmeasurable lists relays whose single-measurement need exceeds the
	// team capacity.
	Unmeasurable []string
}

// HoursUsed converts SlotsUsed to hours given the slot length.
func (g GreedyResult) HoursUsed(p Params) float64 {
	return float64(g.SlotsUsed) * float64(p.SlotSeconds) / 3600
}

// GreedyFastestSchedule computes how quickly a single team can measure the
// whole network: slots are filled in order, each time choosing the largest
// remaining relay that fits the slot's residual capacity (§7's greedy
// scheduler). excessFactor lets callers reproduce the §7 number with
// f = 2.84 as well as the §4.2 formula value.
func GreedyFastestSchedule(relays []RelayEstimate, teamCapBps float64, excessFactor float64, p Params) GreedyResult {
	type item struct {
		name string
		need float64
		cap  float64
	}
	items := make([]item, 0, len(relays))
	res := GreedyResult{}
	for _, r := range relays {
		need := excessFactor * r.EstimateBps
		res.TotalCapacityBps += r.EstimateBps
		if need > teamCapBps {
			res.Unmeasurable = append(res.Unmeasurable, r.Name)
			continue
		}
		items = append(items, item{name: r.Name, need: need, cap: r.EstimateBps})
	}
	// Largest first.
	sort.Slice(items, func(i, j int) bool { return items[i].need > items[j].need })

	res.RelaysMeasured = len(items)
	slots := 0
	idx := 0
	used := make([]bool, len(items))
	remainingCount := len(items)
	for remainingCount > 0 {
		slots++
		residual := teamCapBps
		// Scan from the largest unplaced item down, fitting greedily.
		for i := idx; i < len(items); i++ {
			if used[i] || items[i].need > residual {
				continue
			}
			used[i] = true
			residual -= items[i].need
			remainingCount--
			if residual <= 0 {
				break
			}
		}
		for idx < len(items) && used[idx] {
			idx++
		}
	}
	res.SlotsUsed = slots
	return res
}

// NewRelaySlots estimates how long new relays arriving in a consensus wait
// before measurement: with the steady-state schedule occupying
// busySlotFraction of each slot's capacity, a batch of n new relays with
// prior z0 is measured in ceil(n·f·z0 / (teamCap·(1−busyFraction))) slots
// (at least one when n > 0).
func NewRelaySlots(n int, z0Bps, teamCapBps, busyFraction float64, p Params) int {
	if n <= 0 {
		return 0
	}
	free := teamCapBps * (1 - busyFraction)
	if free <= 0 {
		return -1
	}
	need := float64(n) * RequiredBps(z0Bps, p)
	return int(math.Ceil(need / free))
}
