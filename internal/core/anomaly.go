package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the §5 defense bookkeeping: per-team cross-checks
// of member-reported vs target-reported bytes, and per-relay anomaly
// counters derived from measurement outcomes. The counters are recorded
// by BWAuth.MeasureTarget and surfaced operationally by internal/coord
// (Status().Anomalies and the coord_anomaly_* metrics counters).

// AnomalyCounts accumulates per-relay evidence of §5 misbehavior. Each
// field counts one defense firing; none of them alone proves an attack —
// honest saturation clamps seconds too — but a relay accumulating counts
// across rounds is exactly the "flapping liar" the retention window in
// internal/coord exists for.
type AnomalyCounts struct {
	// ClampedSeconds counts slot seconds whose normal-traffic report
	// exceeded the r-ratio limit and was clamped (§4.1) — the inflation
	// attack's signature.
	ClampedSeconds int64 `json:"clamped_seconds"`
	// RatioClampedSlots counts slots whose final estimate hit the
	// estimate-level 1/(1−r) invariant clamp (RatioClampBound). This
	// cannot fire on per-second-clamped data, so it flags inconsistent
	// accounting.
	RatioClampedSlots int64 `json:"ratio_clamped_slots"`
	// EchoFailures counts measurements discarded because probabilistic
	// echo verification caught forged cells (§4.1, §5).
	EchoFailures int64 `json:"echo_failures"`
	// StallSuspectSlots counts rejected attempts whose estimate tracked
	// the acceptance bound across doubling steps — the slot-stalling
	// pattern, where a relay deliberately echoes just enough to stay
	// inconclusive and burn scheduler slots.
	StallSuspectSlots int64 `json:"stall_suspect_slots"`
	// SkewSuspectSlots counts slots where one measurer's received share
	// diverged sharply from its allocation share (CrossCheck) — the
	// signature of a relay answering team members selectively.
	SkewSuspectSlots int64 `json:"skew_suspect_slots"`
	// SplitViewRounds counts rounds in which the relay showed different
	// BWAuths significantly different capacities (selective lying across
	// teams); recorded by internal/coord from cross-BWAuth medians.
	SplitViewRounds int64 `json:"split_view_rounds"`
}

// Add accumulates another record into a.
func (a *AnomalyCounts) Add(b AnomalyCounts) {
	a.ClampedSeconds += b.ClampedSeconds
	a.RatioClampedSlots += b.RatioClampedSlots
	a.EchoFailures += b.EchoFailures
	a.StallSuspectSlots += b.StallSuspectSlots
	a.SkewSuspectSlots += b.SkewSuspectSlots
	a.SplitViewRounds += b.SplitViewRounds
}

// Total returns the sum of all counts — zero means a clean record.
func (a AnomalyCounts) Total() int64 {
	return a.ClampedSeconds + a.RatioClampedSlots + a.EchoFailures +
		a.StallSuspectSlots + a.SkewSuspectSlots + a.SplitViewRounds
}

// anomalyFields is the number of counter fields the binary encoding
// carries, in declaration order. The encoding is append-only: a future
// field is appended here and to the two functions below, never inserted,
// so old readers skip fields they don't know and old files decode with
// the missing fields zero.
const anomalyFields = 6

// AppendBinary appends the counters' durable encoding to buf and returns
// the extended buffer: a field count followed by that many varints. The
// field-count prefix is what makes the format extensible — internal/store
// persists these inside WAL records and snapshots, and files written by a
// newer flashflow with extra counters still decode here.
func (a AnomalyCounts) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, anomalyFields)
	for _, v := range [anomalyFields]int64{
		a.ClampedSeconds, a.RatioClampedSlots, a.EchoFailures,
		a.StallSuspectSlots, a.SkewSuspectSlots, a.SplitViewRounds,
	} {
		buf = binary.AppendVarint(buf, v)
	}
	return buf
}

// DecodeAnomalyCounts decodes an AppendBinary encoding from the front of
// p, returning the counts and the remaining bytes. Fields beyond the six
// this version knows are skipped (a newer writer appended counters);
// fields the encoding lacks stay zero (an older writer knew fewer).
func DecodeAnomalyCounts(p []byte) (AnomalyCounts, []byte, error) {
	var a AnomalyCounts
	fields, n := binary.Uvarint(p)
	if n <= 0 {
		return a, p, fmt.Errorf("core: anomaly counts: truncated field count")
	}
	p = p[n:]
	dst := [anomalyFields]*int64{
		&a.ClampedSeconds, &a.RatioClampedSlots, &a.EchoFailures,
		&a.StallSuspectSlots, &a.SkewSuspectSlots, &a.SplitViewRounds,
	}
	for i := uint64(0); i < fields; i++ {
		v, n := binary.Varint(p)
		if n <= 0 {
			return a, p, fmt.Errorf("core: anomaly counts: truncated field %d of %d", i, fields)
		}
		p = p[n:]
		if i < anomalyFields {
			*dst[i] = v
		}
	}
	return a, p, nil
}

// Stall-suspicion window: a rejected attempt whose estimate landed within
// this band of the acceptance bound B = Σaᵢ·(1−ε1)/m is consistent with a
// relay echoing "just enough to be rejected". An honest relay whose
// capacity exceeds its allocation echoes roughly the full allocation
// (≈ m/(1−ε1) ≈ 2.8× the bound with default parameters), far above the
// band, and an honest accepted attempt is below it by definition.
const (
	stallBandLow  = 0.8
	stallBandHigh = 1.5
	// stallMinAttempts is how many in-band rejected attempts one outcome
	// needs before they are counted: a single near-bound rejection is
	// ordinary doubling-loop behavior.
	stallMinAttempts = 2
)

// skewSuspectThreshold is the relative deviation of a measurer's received
// share from its allocation share beyond which CrossCheck flags the slot.
// Path noise moves shares by a few percent; answering one team member
// with half its traffic moves its share by ~50%.
const skewSuspectThreshold = 0.5

// OutcomeAnomalies derives the §5 anomaly evidence carried by one
// measurement outcome: clamped seconds summed over attempts, invariant-
// clamp hits, the stall pattern over the attempt sequence, and per-slot
// measurer skew. Echo failures surface as ErrMeasurementFailed from the
// measurement itself and are counted by the caller.
func OutcomeAnomalies(out MeasureOutcome, p Params) AnomalyCounts {
	var a AnomalyCounts
	stallish := int64(0)
	for _, att := range out.Attempts {
		a.ClampedSeconds += int64(att.ClampedSeconds)
		if att.RatioClamped {
			a.RatioClampedSlots++
		}
		if att.MeasurerSkew > skewSuspectThreshold {
			a.SkewSuspectSlots++
		}
		if !att.Accepted && att.AllocatedBps > 0 {
			bound := att.AllocatedBps * (1 - p.Eps1) / p.Multiplier
			if bound > 0 {
				ratio := att.EstimateBps / bound
				if ratio >= stallBandLow && ratio <= stallBandHigh {
					stallish++
				}
			}
		}
	}
	if stallish >= stallMinAttempts {
		a.StallSuspectSlots += stallish
	}
	return a
}

// CrossCheckReport is the per-team consistency check of one slot's data:
// what the target reported against what the team members received.
type CrossCheckReport struct {
	// ReportGap is the worst per-second ratio of the relay's claimed
	// normal bytes to the r-ratio credit the verified measurement
	// traffic supports (y_j over x_j·r/(1−r)). Honest saturation sits
	// near or below 1; a fabricated report is far above it.
	ReportGap float64
	// SuspectSeconds counts seconds whose claim exceeded the credit.
	SuspectSeconds int
	// MeasurerSkew is the largest relative deviation of any
	// participating measurer's received-byte share from its allocation
	// share — evidence of the relay echoing selectively within a team.
	MeasurerSkew float64
}

// CrossCheck runs the per-team §5 cross-checks over one slot's raw data.
// It never mutates data; callers record the report via OutcomeAnomalies
// (MeasureRelayGuarded stores the skew on each attempt).
func CrossCheck(data MeasurementData, alloc Allocation, ratio float64) CrossCheckReport {
	var rep CrossCheckReport
	seconds := dataSeconds(data)
	if seconds == 0 {
		return rep
	}
	clampFactor := ratio / (1 - ratio)
	for j := 0; j < seconds; j++ {
		var x float64
		for i := range data.MeasBytes {
			x += data.MeasBytes[i][j]
		}
		if j < len(data.NormBytes) && data.NormBytes[j] > 0 {
			limit := x * clampFactor
			gap := math.Inf(1)
			if limit > 0 {
				gap = data.NormBytes[j] / limit
			}
			if gap > rep.ReportGap {
				rep.ReportGap = gap
			}
			if gap > 1 {
				rep.SuspectSeconds++
			}
		}
	}

	if alloc.TotalBps > 0 {
		var total float64
		received := make([]float64, len(data.MeasBytes))
		for i := range data.MeasBytes {
			for j := 0; j < seconds; j++ {
				received[i] += data.MeasBytes[i][j]
			}
			total += received[i]
		}
		if total > 0 {
			for i, got := range received {
				if i >= len(alloc.PerMeasurerBps) || alloc.PerMeasurerBps[i] <= 0 {
					continue
				}
				want := alloc.PerMeasurerBps[i] / alloc.TotalBps
				skew := math.Abs(got/total-want) / want
				if skew > rep.MeasurerSkew {
					rep.MeasurerSkew = skew
				}
			}
		}
	}
	return rep
}
