package core

import (
	"fmt"
	"math"
	"testing"
)

func relaysUniform(n int, capBps float64) []RelayEstimate {
	rs := make([]RelayEstimate, n)
	for i := range rs {
		rs[i] = RelayEstimate{Name: fmt.Sprintf("relay%04d", i), EstimateBps: capBps}
	}
	return rs
}

func TestBuildScheduleDeterministicAcrossBWAuths(t *testing.T) {
	p := DefaultParams()
	relays := relaysUniform(50, 100e6)
	caps := []float64{3e9, 3e9, 3e9}
	s1, err := BuildSchedule([]byte("seed"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule([]byte("seed"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	for b := range caps {
		for _, r := range relays {
			if s1.SlotOf(b, r.Name) != s2.SlotOf(b, r.Name) {
				t.Fatalf("schedules differ for %s at bwauth %d", r.Name, b)
			}
		}
	}
}

func TestBuildScheduleDifferentSeedsDiffer(t *testing.T) {
	p := DefaultParams()
	relays := relaysUniform(50, 100e6)
	caps := []float64{3e9}
	s1, _ := BuildSchedule([]byte("seed-a"), relays, caps, p)
	s2, _ := BuildSchedule([]byte("seed-b"), relays, caps, p)
	same := true
	for _, r := range relays {
		if s1.SlotOf(0, r.Name) != s2.SlotOf(0, r.Name) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBuildScheduleEveryOldRelayOncePerBWAuth(t *testing.T) {
	p := DefaultParams()
	relays := relaysUniform(100, 50e6)
	caps := []float64{3e9, 3e9}
	s, err := BuildSchedule([]byte("x"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Unscheduled) != 0 {
		t.Fatalf("unscheduled relays: %v", s.Unscheduled)
	}
	for b := range caps {
		seen := map[string]int{}
		for _, slot := range s.PerBWAuth[b] {
			for _, a := range slot {
				seen[a.Relay]++
			}
		}
		for _, r := range relays {
			if seen[r.Name] != 1 {
				t.Fatalf("bwauth %d measures %s %d times", b, r.Name, seen[r.Name])
			}
		}
	}
}

func TestBuildScheduleCapacityNeverExceeded(t *testing.T) {
	p := DefaultParams()
	relays := relaysUniform(400, 80e6)
	caps := []float64{1e9}
	s, err := BuildSchedule([]byte("cap"), relays, caps, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range s.PerBWAuth[0] {
		var used float64
		for _, a := range slot {
			used += a.NeedBps
		}
		if used > caps[0]+1 {
			t.Fatalf("slot over capacity: %v", used)
		}
	}
}

func TestBuildScheduleNewRelaysFCFS(t *testing.T) {
	p := DefaultParams()
	relays := []RelayEstimate{
		{Name: "old1", EstimateBps: 100e6},
		{Name: "newB", EstimateBps: 50e6, New: true},
		{Name: "newA", EstimateBps: 50e6, New: true},
	}
	s, err := BuildSchedule([]byte("s"), relays, []float64{3e9}, p)
	if err != nil {
		t.Fatal(err)
	}
	// New relays are placed in the earliest slots with room; newB arrived
	// first so its slot is ≤ newA's.
	slotB := s.SlotOf(0, "newB")
	slotA := s.SlotOf(0, "newA")
	if slotB < 0 || slotA < 0 {
		t.Fatal("new relays unscheduled")
	}
	if slotB > slotA {
		t.Fatalf("FCFS violated: newB at %d, newA at %d", slotB, slotA)
	}
}

func TestBuildScheduleRejectsNoBWAuths(t *testing.T) {
	if _, err := BuildSchedule([]byte("s"), nil, nil, DefaultParams()); err == nil {
		t.Fatal("no BWAuths should error")
	}
}

func TestBuildScheduleUnschedulableRelay(t *testing.T) {
	p := DefaultParams()
	relays := []RelayEstimate{{Name: "huge", EstimateBps: 10e9}}
	s, err := BuildSchedule([]byte("s"), relays, []float64{3e9}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Unscheduled) != 1 || s.Unscheduled[0] != "huge" {
		t.Fatalf("expected huge unscheduled, got %v", s.Unscheduled)
	}
}

func TestGreedyFastestSchedulePaper7(t *testing.T) {
	// §7: ~6,419 relays totalling ~608 Gbit/s measured by a 3 Gbit/s team
	// with f = 2.84 in ≈599 slots (5.0 hours); we accept ±15 %.
	p := DefaultParams()
	relays := julyLikeNetwork(6419, 608e9)
	res := GreedyFastestSchedule(relays, 3e9, ExcessFactorPaper7, p)
	if res.RelaysMeasured != 6419 {
		t.Fatalf("relays measured: %d", res.RelaysMeasured)
	}
	hours := res.HoursUsed(p)
	if hours < 4.0 || hours > 6.0 {
		t.Fatalf("whole-network time: got %.2f h want ≈5 h", hours)
	}
	if len(res.Unmeasurable) != 0 {
		t.Fatalf("unmeasurable: %v", res.Unmeasurable)
	}
}

func TestGreedyFastestScheduleUnmeasurable(t *testing.T) {
	p := DefaultParams()
	relays := []RelayEstimate{{Name: "big", EstimateBps: 2e9}, {Name: "ok", EstimateBps: 100e6}}
	res := GreedyFastestSchedule(relays, 3e9, ExcessFactorPaper7, p)
	if len(res.Unmeasurable) != 1 || res.Unmeasurable[0] != "big" {
		t.Fatalf("unmeasurable: %v", res.Unmeasurable)
	}
	if res.RelaysMeasured != 1 {
		t.Fatalf("measured: %d", res.RelaysMeasured)
	}
}

func TestGreedyLowerBoundTightness(t *testing.T) {
	// The greedy packing should be within 25 % of the fluid lower bound
	// Σ need / teamCap.
	p := DefaultParams()
	relays := julyLikeNetwork(2000, 200e9)
	team := 3e9
	res := GreedyFastestSchedule(relays, team, ExcessFactorPaper7, p)
	var need float64
	for _, r := range relays {
		need += ExcessFactorPaper7 * r.EstimateBps
	}
	lower := need / team
	if float64(res.SlotsUsed) < lower-1 {
		t.Fatalf("greedy beat the lower bound: %d < %v", res.SlotsUsed, lower)
	}
	if float64(res.SlotsUsed) > lower*1.25+1 {
		t.Fatalf("greedy too loose: %d slots vs lower bound %v", res.SlotsUsed, lower)
	}
}

func TestNewRelaySlots(t *testing.T) {
	p := DefaultParams()
	// 3 new relays at the 51 Mbit/s prior, 3 Gbit/s team, ~21 % busy
	// (599/2880): should fit in one slot (§7: median 30 seconds).
	slots := NewRelaySlots(3, 51e6, 3e9, 599.0/2880.0, p)
	if slots != 1 {
		t.Fatalf("3 new relays: got %d slots want 1", slots)
	}
	// A burst of 98 new relays (the paper's max) takes minutes, not hours:
	// 98·f·51e6 / (3e9·0.79) ≈ 6 slots ≈ 3 minutes (paper: max 13 min).
	slots = NewRelaySlots(98, 51e6, 3e9, 599.0/2880.0, p)
	if slots < 2 || slots > 26 {
		t.Fatalf("98 new relays: got %d slots", slots)
	}
	if NewRelaySlots(0, 51e6, 3e9, 0, p) != 0 {
		t.Fatal("zero relays should need zero slots")
	}
	if NewRelaySlots(1, 51e6, 3e9, 1.0, p) != -1 {
		t.Fatal("fully busy team should report -1")
	}
}

// julyLikeNetwork builds a relay population whose capacity distribution
// resembles Tor's July 2019 state: heavy-tailed with a 998 Mbit/s maximum
// and the given total.
func julyLikeNetwork(n int, totalBps float64) []RelayEstimate {
	relays := make([]RelayEstimate, n)
	var sum float64
	for i := range relays {
		// Pareto-ish shape via the rank: capacity ∝ 1/(rank^0.7).
		c := 1.0 / math.Pow(float64(i+1), 0.7)
		relays[i] = RelayEstimate{Name: fmt.Sprintf("r%05d", i), EstimateBps: c}
		sum += c
	}
	scale := totalBps / sum
	for i := range relays {
		relays[i].EstimateBps *= scale
		if relays[i].EstimateBps > 998e6 {
			relays[i].EstimateBps = 998e6
		}
	}
	return relays
}
