package core

import (
	"context"
	"math"
	"testing"
)

// fakeBackend simulates a target of fixed true capacity: the per-second
// measured throughput is min(allocation, capacity)·(1±noise), with no
// normal traffic. It records the allocations it saw.
type fakeBackend struct {
	capacityBps float64
	allocsSeen  []float64
}

func (f *fakeBackend) RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error) {
	f.allocsSeen = append(f.allocsSeen, alloc.TotalBps)
	rate := f.capacityBps
	if alloc.TotalBps < rate {
		rate = alloc.TotalBps
	}
	data := MeasurementData{MeasBytes: make([][]float64, len(alloc.PerMeasurerBps))}
	for i := range data.MeasBytes {
		data.MeasBytes[i] = make([]float64, seconds)
	}
	// Split the echoed rate across participants proportionally, emitting
	// a streamed sample per second and honoring cancellation between
	// seconds like a real backend.
	row := make([]float64, len(alloc.PerMeasurerBps))
	for j := 0; j < seconds; j++ {
		if err := ctx.Err(); err != nil {
			return data.Truncate(j), err
		}
		for i, a := range alloc.PerMeasurerBps {
			if alloc.TotalBps > 0 {
				data.MeasBytes[i][j] = rate * (a / alloc.TotalBps) / 8
			}
			row[i] = data.MeasBytes[i][j]
		}
		if sink != nil {
			sink(Sample{Second: j, MeasBytes: row})
		}
	}
	return data, nil
}

func TestMeasureRelayAccurateAfterOneAttempt(t *testing.T) {
	// Prior equals true capacity: §4.2 proves one measurement suffices.
	backend := &fakeBackend{capacityBps: 100e6}
	team := team3x1G()
	out, err := MeasureRelay(context.Background(), backend, team, "r", 100e6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive {
		t.Fatal("measurement should be conclusive")
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("attempts: got %d want 1", len(out.Attempts))
	}
	if math.Abs(out.EstimateBps-100e6) > 1e6 {
		t.Fatalf("estimate: got %v want ≈100e6", out.EstimateBps)
	}
}

func TestMeasureRelayDoublesOnUnderestimate(t *testing.T) {
	// Prior is 10× too low: the loop must escalate (z0 = max(z, 2z0))
	// until the allocation suffices.
	backend := &fakeBackend{capacityBps: 400e6}
	team := team3x1G()
	out, err := MeasureRelay(context.Background(), backend, team, "r", 40e6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive {
		t.Fatalf("should converge; attempts: %+v", out.Attempts)
	}
	if len(out.Attempts) < 2 {
		t.Fatalf("expected multiple attempts, got %d", len(out.Attempts))
	}
	if math.Abs(out.EstimateBps-400e6) > 4e6 {
		t.Fatalf("estimate: got %v want ≈400e6", out.EstimateBps)
	}
	// Allocations must at least double between attempts.
	for i := 1; i < len(backend.allocsSeen); i++ {
		if backend.allocsSeen[i] < backend.allocsSeen[i-1]*1.99 {
			t.Fatalf("allocation did not double: %v", backend.allocsSeen)
		}
	}
}

func TestMeasureRelayCeilingInconclusive(t *testing.T) {
	// True capacity near the team total: the loop hits the ceiling and
	// reports an inconclusive (but best-effort) estimate.
	backend := &fakeBackend{capacityBps: 2.9e9}
	team := team3x1G()
	out, err := MeasureRelay(context.Background(), backend, team, "r", 1.5e9, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if out.Conclusive {
		t.Fatal("cannot be conclusive at the capacity ceiling")
	}
	if out.EstimateBps <= 0 {
		t.Fatal("should still report a best-effort estimate")
	}
}

func TestMeasureRelayOverestimatedPriorStillAccurate(t *testing.T) {
	// Prior is 4× too high: first attempt already allocates plenty; the
	// estimate lands at the true capacity and is conclusive immediately.
	backend := &fakeBackend{capacityBps: 50e6}
	team := team3x1G()
	out, err := MeasureRelay(context.Background(), backend, team, "r", 200e6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive || len(out.Attempts) != 1 {
		t.Fatalf("conclusive=%v attempts=%d", out.Conclusive, len(out.Attempts))
	}
	if math.Abs(out.EstimateBps-50e6) > 1e6 {
		t.Fatalf("estimate: got %v want ≈50e6", out.EstimateBps)
	}
}

func TestMeasureRelayBadPrior(t *testing.T) {
	backend := &fakeBackend{capacityBps: 1}
	if _, err := MeasureRelay(context.Background(), backend, team3x1G(), "r", 0, DefaultParams()); err == nil {
		t.Fatal("zero prior should error")
	}
}

func TestMeasureRelayReleasesCapacity(t *testing.T) {
	backend := &fakeBackend{capacityBps: 100e6}
	team := team3x1G()
	if _, err := MeasureRelay(context.Background(), backend, team, "r", 100e6, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	for _, m := range team {
		if m.CommittedBps != 0 {
			t.Fatalf("capacity leaked on %s: %v", m.Name, m.CommittedBps)
		}
	}
}

func TestNewRelayPrior(t *testing.T) {
	p := DefaultParams()
	hist := []float64{10e6, 20e6, 30e6, 40e6}
	got := NewRelayPrior(hist, p)
	// 75th percentile of the history.
	if math.Abs(got-32.5e6) > 1e-6 {
		t.Fatalf("prior: got %v want 32.5e6", got)
	}
	if got := NewRelayPrior(nil, p); got != 50e6 {
		t.Fatalf("empty-history fallback: got %v want 50e6", got)
	}
}

func TestSlotsUsed(t *testing.T) {
	o := MeasureOutcome{Attempts: make([]MeasureAttempt, 3)}
	if o.SlotsUsed() != 3 {
		t.Fatalf("slots used: %d", o.SlotsUsed())
	}
}
