package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestApplyDynamicMeasurementsBasic(t *testing.T) {
	estimates := map[string]float64{"a": 100e6, "b": 200e6}
	out := ApplyDynamicMeasurements(estimates, []DynamicMeasurement{
		{Relay: "a", AvailableFrac: 0.5},
	})
	if out["a"] != 50e6 {
		t.Fatalf("a: got %v want 50e6", out["a"])
	}
	if out["b"] != 200e6 {
		t.Fatalf("b without signal should keep its estimate: %v", out["b"])
	}
	if estimates["a"] != 100e6 {
		t.Fatal("input map mutated")
	}
}

func TestApplyDynamicNeverRaises(t *testing.T) {
	estimates := map[string]float64{"a": 100e6}
	out := ApplyDynamicMeasurements(estimates, []DynamicMeasurement{
		{Relay: "a", AvailableFrac: 42},
	})
	if out["a"] != 100e6 {
		t.Fatalf("dynamic signal raised weight: %v", out["a"])
	}
}

func TestApplyDynamicFloor(t *testing.T) {
	estimates := map[string]float64{"a": 100e6}
	out := ApplyDynamicMeasurements(estimates, []DynamicMeasurement{
		{Relay: "a", AvailableFrac: 0},
	})
	if out["a"] != 100e6*MinDynamicFrac {
		t.Fatalf("floor not applied: %v", out["a"])
	}
}

func TestApplyDynamicUnknownRelayIgnored(t *testing.T) {
	estimates := map[string]float64{"a": 100e6}
	out := ApplyDynamicMeasurements(estimates, []DynamicMeasurement{
		{Relay: "ghost", AvailableFrac: 0.5},
	})
	if len(out) != 1 || out["a"] != 100e6 {
		t.Fatalf("unexpected output: %v", out)
	}
}

// Property: for any signals — including NaN and infinities — every
// adjusted weight stays within [MinDynamicFrac·estimate, estimate].
func TestApplyDynamicBoundsQuick(t *testing.T) {
	f := func(fracs []float64) bool {
		estimates := map[string]float64{"r": 100e6}
		for _, fr := range fracs {
			out := ApplyDynamicMeasurements(estimates, []DynamicMeasurement{
				{Relay: "r", AvailableFrac: fr},
			})
			v := out["r"]
			if !(v <= 100e6 && v >= 100e6*MinDynamicFrac) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Explicit NaN probe.
	out := ApplyDynamicMeasurements(map[string]float64{"r": 100e6}, []DynamicMeasurement{
		{Relay: "r", AvailableFrac: nan()},
	})
	if !(out["r"] <= 100e6 && out["r"] >= 100e6*MinDynamicFrac) {
		t.Fatalf("NaN report produced out-of-bounds weight: %v", out["r"])
	}
}

func nan() float64 { return math.NaN() }
