package core

// This file implements the paper's §9 (Conclusion) extension: using
// FlashFlow capacity estimates as a secure ceiling for insecure dynamic
// performance measurements. "The FlashFlow measurements would be used as a
// starting weight, and then the weights would only be reduced, depending
// on the dynamic measurements. FlashFlow would thus securely limit the
// weight of any relay while allowing for improved performance via
// adjustments based on insecure dynamic measurements."

// DynamicMeasurement is an insecure, possibly self-reported utilization or
// performance signal for one relay.
type DynamicMeasurement struct {
	Relay string
	// AvailableFrac estimates the fraction of the relay's capacity that
	// is currently available (1 − utilization). Values are clamped to
	// [MinDynamicFrac, 1] so a relay cannot zero out its own weight (or
	// be zeroed by a forged report) and can never raise it.
	AvailableFrac float64
}

// MinDynamicFrac floors dynamic reductions so that a bogus dynamic signal
// cannot remove a relay from the network entirely.
const MinDynamicFrac = 0.1

// ApplyDynamicMeasurements combines FlashFlow capacity estimates with
// dynamic signals: each relay's weight is its secure estimate scaled by
// its clamped available fraction. Relays without a dynamic signal keep
// their full estimate. The security property — no signal can raise a
// weight above the FlashFlow estimate — holds by construction.
func ApplyDynamicMeasurements(estimates map[string]float64, dynamics []DynamicMeasurement) map[string]float64 {
	out := make(map[string]float64, len(estimates))
	for name, est := range estimates {
		out[name] = est
	}
	for _, d := range dynamics {
		est, ok := out[d.Relay]
		if !ok {
			continue
		}
		frac := d.AvailableFrac
		// The negated comparison also floors NaN from a garbage report.
		if !(frac >= MinDynamicFrac) {
			frac = MinDynamicFrac
		}
		if frac > 1 {
			frac = 1
		}
		out[d.Relay] = est * frac
	}
	return out
}
