package core

import (
	"errors"
	"fmt"
	"sort"
)

// Measurer describes one measurement host in a team: its name, its
// measured network capacity c_i (from the iPerf self-measurement, §4.2),
// and how much of that capacity is currently committed to concurrent
// measurements.
type Measurer struct {
	Name        string
	CapacityBps float64
	// CommittedBps is capacity reserved by in-flight measurements; the
	// scheduler keeps it ≤ CapacityBps.
	CommittedBps float64
	// Cores bounds the number of measuring Tor processes k_i that can be
	// started (§4.1: one per CPU core, always at least one).
	Cores int
}

// ResidualBps returns the measurer's uncommitted capacity.
func (m *Measurer) ResidualBps() float64 {
	r := m.CapacityBps - m.CommittedBps
	if r < 0 {
		return 0
	}
	return r
}

// Allocation is the per-measurer capacity assignment a_1…a_m for one
// measurement, with the process and socket split of §4.1.
type Allocation struct {
	// PerMeasurerBps[i] is a_i (0 means measurer i does not participate).
	PerMeasurerBps []float64
	// Processes[i] is k_i, the number of measuring Tor processes at
	// measurer i; each is rate-limited to a_i/k_i.
	Processes []int
	// SocketsPer[i] is the socket count measurer i uses (an even share
	// s/m' of the total across the m' participating measurers).
	SocketsPer []int
	// TotalBps is Σ a_i.
	TotalBps float64
}

// ErrInsufficientCapacity is returned when the team cannot supply the
// required capacity.
var ErrInsufficientCapacity = errors.New("core: insufficient team capacity")

// AllocateGreedy implements §4.2's greedy allocation: to supply needBps of
// measurement capacity, repeatedly assign the measurer with the most
// residual capacity either all of its remaining capacity or as much as is
// needed to reach the target. It returns the allocation without mutating
// the measurers; callers commit it with Commit.
func AllocateGreedy(team []*Measurer, needBps float64, p Params) (Allocation, error) {
	return AllocateGreedyFrom(team, needBps, 0, p)
}

// AllocateGreedyFrom is AllocateGreedy with the equal-residual tie-break
// rotated to start at the given index. Under concurrent measurements the
// plain index tie-break races — whichever slot allocates first grabs the
// first measurer, so a relay's measurer assignment flips from round to
// round. The continuous coordinator derives the rotation from the relay
// name (see MeasureRelayGuarded), pinning each relay to the same
// measurers across rounds so their pooled connections stay warm.
func AllocateGreedyFrom(team []*Measurer, needBps float64, prefer int, p Params) (Allocation, error) {
	if needBps <= 0 {
		return Allocation{}, fmt.Errorf("core: nonpositive capacity request %v", needBps)
	}
	var residualTotal float64
	for _, m := range team {
		residualTotal += m.ResidualBps()
	}
	if residualTotal < needBps {
		return Allocation{}, fmt.Errorf("%w: need %.0f, have %.0f", ErrInsufficientCapacity, needBps, residualTotal)
	}

	alloc := Allocation{
		PerMeasurerBps: make([]float64, len(team)),
		Processes:      make([]int, len(team)),
		SocketsPer:     make([]int, len(team)),
	}
	prefer %= len(team)
	if prefer < 0 {
		prefer += len(team)
	}
	// Order of consideration: most residual capacity first; ties broken
	// by index rotated to the preferred start, for determinism.
	order := make([]int, len(team))
	for i := range order {
		order[i] = (prefer + i) % len(team)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return team[order[a]].ResidualBps() > team[order[b]].ResidualBps()
	})
	remaining := needBps
	for _, idx := range order {
		if remaining <= 0 {
			break
		}
		take := team[idx].ResidualBps()
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		alloc.PerMeasurerBps[idx] = take
		alloc.TotalBps += take
		remaining -= take
	}

	// Socket and process split across the participating measurers.
	participating := 0
	for _, a := range alloc.PerMeasurerBps {
		if a > 0 {
			participating++
		}
	}
	for i, a := range alloc.PerMeasurerBps {
		if a <= 0 {
			continue
		}
		cores := team[i].Cores
		if cores < 1 {
			cores = 1
		}
		alloc.Processes[i] = cores
		alloc.SocketsPer[i] = p.Sockets / participating
		if alloc.SocketsPer[i] < 1 {
			alloc.SocketsPer[i] = 1
		}
	}
	return alloc, nil
}

// AllocateEven divides needBps evenly across all team members, as the
// paper's accuracy experiments do ("we divide that capacity assignment
// evenly across the measurers in the subset", Appendix E.2). Members whose
// residual capacity is below the even share contribute what they can; the
// shortfall is redistributed greedily.
func AllocateEven(team []*Measurer, needBps float64, p Params) (Allocation, error) {
	if needBps <= 0 {
		return Allocation{}, fmt.Errorf("core: nonpositive capacity request %v", needBps)
	}
	if len(team) == 0 {
		return Allocation{}, ErrInsufficientCapacity
	}
	var residualTotal float64
	for _, m := range team {
		residualTotal += m.ResidualBps()
	}
	if residualTotal < needBps {
		return Allocation{}, fmt.Errorf("%w: need %.0f, have %.0f", ErrInsufficientCapacity, needBps, residualTotal)
	}
	alloc := Allocation{
		PerMeasurerBps: make([]float64, len(team)),
		Processes:      make([]int, len(team)),
		SocketsPer:     make([]int, len(team)),
	}
	share := needBps / float64(len(team))
	var assigned float64
	for i, m := range team {
		a := share
		if r := m.ResidualBps(); a > r {
			a = r
		}
		alloc.PerMeasurerBps[i] = a
		assigned += a
	}
	// Redistribute any shortfall to members with headroom.
	for pass := 0; pass < len(team) && needBps-assigned > 1e-6; pass++ {
		for i, m := range team {
			headroom := m.ResidualBps() - alloc.PerMeasurerBps[i]
			if headroom <= 0 {
				continue
			}
			extra := needBps - assigned
			if extra > headroom {
				extra = headroom
			}
			alloc.PerMeasurerBps[i] += extra
			assigned += extra
			if needBps-assigned <= 1e-6 {
				break
			}
		}
	}
	alloc.TotalBps = assigned
	for i, a := range alloc.PerMeasurerBps {
		if a <= 0 {
			continue
		}
		cores := team[i].Cores
		if cores < 1 {
			cores = 1
		}
		alloc.Processes[i] = cores
		alloc.SocketsPer[i] = p.Sockets / len(team)
		if alloc.SocketsPer[i] < 1 {
			alloc.SocketsPer[i] = 1
		}
	}
	return alloc, nil
}

// Commit reserves the allocation's capacity on the team.
func Commit(team []*Measurer, a Allocation) {
	for i, amt := range a.PerMeasurerBps {
		if i < len(team) {
			team[i].CommittedBps += amt
		}
	}
}

// Release returns the allocation's capacity to the team.
func Release(team []*Measurer, a Allocation) {
	for i, amt := range a.PerMeasurerBps {
		if i < len(team) {
			team[i].CommittedBps -= amt
			// Snap sub-bit residue to zero: interleaved Commit/Release
			// pairs leave float dust ((a+b)−a−b ≠ 0) that would otherwise
			// silently reorder the greedy allocation's residual-capacity
			// tie-break between otherwise-idle measurers.
			if team[i].CommittedBps < 1 {
				team[i].CommittedBps = 0
			}
		}
	}
}

// TeamCapacityBps returns the team's total capacity Σ c_i.
func TeamCapacityBps(team []*Measurer) float64 {
	var t float64
	for _, m := range team {
		t += m.CapacityBps
	}
	return t
}

// RequiredBps returns the measurer capacity needed to measure a relay with
// estimate z0Bps: f·z0 (§4.2).
func RequiredBps(z0Bps float64, p Params) float64 {
	return p.ExcessFactor() * z0Bps
}
