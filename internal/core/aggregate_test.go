package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsDefaults(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Sockets != 160 || p.Multiplier != 2.25 || p.SlotSeconds != 30 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if p.Eps1 != 0.20 || p.Eps2 != 0.05 || p.Ratio != 0.25 {
		t.Fatalf("error params wrong: %+v", p)
	}
}

func TestExcessFactor(t *testing.T) {
	p := DefaultParams()
	want := 2.25 * 1.05 / 0.80
	if got := p.ExcessFactor(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("excess factor: got %v want %v", got, want)
	}
}

func TestMaxInflation133(t *testing.T) {
	p := DefaultParams()
	if got := p.MaxInflation(); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Fatalf("max inflation: got %v want 1.33…", got)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Sockets = 0 },
		func(p *Params) { p.Multiplier = 0.5 },
		func(p *Params) { p.SlotSeconds = 0 },
		func(p *Params) { p.Eps1 = 1.0 },
		func(p *Params) { p.Eps2 = -0.1 },
		func(p *Params) { p.Ratio = 1.0 },
		func(p *Params) { p.CheckProb = 2 },
		func(p *Params) { p.Period = 0 },
		func(p *Params) { p.NewRelayPercentile = 0 },
		func(p *Params) { p.MaxMeasureAttempts = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSlotsPerPeriod(t *testing.T) {
	p := DefaultParams()
	if got := p.SlotsPerPeriod(); got != 2880 {
		t.Fatalf("slots per 24 h period at 30 s: got %d want 2880", got)
	}
}

func TestAggregateBasicMedian(t *testing.T) {
	// Two measurers, three seconds, no normal traffic.
	data := MeasurementData{
		MeasBytes: [][]float64{
			{100, 200, 300},
			{100, 200, 300},
		},
	}
	res, err := Aggregate(data, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimateBytesPerSec != 400 {
		t.Fatalf("estimate: got %v want 400 (median of 200,400,600)", res.EstimateBytesPerSec)
	}
}

func TestAggregateIncorporatesNormalTraffic(t *testing.T) {
	data := MeasurementData{
		MeasBytes: [][]float64{{300, 300, 300}},
		NormBytes: []float64{50, 50, 50},
	}
	res, err := Aggregate(data, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// limit = 300·0.25/0.75 = 100 ≥ 50: no clamping.
	if res.EstimateBytesPerSec != 350 {
		t.Fatalf("estimate: got %v want 350", res.EstimateBytesPerSec)
	}
	if res.ClampedSeconds != 0 {
		t.Fatalf("clamped seconds: got %d want 0", res.ClampedSeconds)
	}
}

func TestAggregateClampsLyingRelay(t *testing.T) {
	// The relay claims absurd normal traffic; credited normal traffic is
	// clamped to x·r/(1−r), bounding inflation at 1/(1−r) (§5).
	data := MeasurementData{
		MeasBytes: [][]float64{{300, 300, 300}},
		NormBytes: []float64{1e9, 1e9, 1e9},
	}
	res, err := Aggregate(data, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimateBytesPerSec != 400 {
		t.Fatalf("estimate: got %v want 400 (= 300/(1-0.25))", res.EstimateBytesPerSec)
	}
	if res.ClampedSeconds != 3 {
		t.Fatalf("clamped seconds: got %d want 3", res.ClampedSeconds)
	}
	// Inflation bound: estimate ≤ x · 1/(1−r).
	if res.EstimateBytesPerSec > 300/(1-0.25)+1e-9 {
		t.Fatal("inflation bound violated")
	}
}

func TestAggregateFailed(t *testing.T) {
	data := MeasurementData{MeasBytes: [][]float64{{1}}, Failed: true}
	if _, err := Aggregate(data, 0.25); !errors.Is(err, ErrMeasurementFailed) {
		t.Fatalf("want ErrMeasurementFailed, got %v", err)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if _, err := Aggregate(MeasurementData{}, 0.25); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func TestAggregateRagged(t *testing.T) {
	data := MeasurementData{MeasBytes: [][]float64{{1, 2}, {1}}}
	if _, err := Aggregate(data, 0.25); !errors.Is(err, ErrRaggedData) {
		t.Fatalf("want ErrRaggedData, got %v", err)
	}
	data2 := MeasurementData{MeasBytes: [][]float64{{1, 2}}, NormBytes: []float64{1}}
	if _, err := Aggregate(data2, 0.25); !errors.Is(err, ErrRaggedData) {
		t.Fatalf("want ErrRaggedData for norm series, got %v", err)
	}
}

func TestEstimateAccepted(t *testing.T) {
	p := DefaultParams()
	// Allocation 2.953·z0 for z0 = 100 Mbit/s; estimate ≈ z0 should be
	// accepted: threshold = alloc·(1−ε1)/m = 2.953·100·0.8/2.25 = 105 Mbit/s.
	alloc := RequiredBps(100e6, p)
	if !EstimateAccepted(100e6/8, alloc, p) {
		t.Fatal("estimate ≈ prior should be accepted")
	}
	if EstimateAccepted(120e6/8, alloc, p) {
		t.Fatal("estimate well above the conclusive threshold should be rejected")
	}
}

// §4.2's algebra: if the original estimate z0 is the true capacity and the
// measurement lands within (1−ε1, 1+ε2)·z0, the acceptance condition holds.
func TestAcceptanceConditionAlgebraQuick(t *testing.T) {
	p := DefaultParams()
	f := func(z0Mbit uint16, noiseThousandths uint8) bool {
		z0 := float64(z0Mbit%2000+1) * 1e6
		// Measurement within (1−ε1, 1+ε2)·z0 — strictly inside.
		frac := 1 - p.Eps1 + (p.Eps1+p.Eps2)*float64(noiseThousandths)/256
		z := z0 * frac * 0.999
		alloc := RequiredBps(z0, p)
		return EstimateAccepted(z/8, alloc, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregation is permutation invariant across measurers and
// bounded by Σx·(1+r/(1−r)).
func TestAggregatePropertiesQuick(t *testing.T) {
	f := func(seed int64, seconds uint8, measurers uint8) bool {
		s := int(seconds)%20 + 1
		m := int(measurers)%5 + 1
		rng := rand.New(rand.NewSource(seed))
		data := MeasurementData{MeasBytes: make([][]float64, m), NormBytes: make([]float64, s)}
		for i := range data.MeasBytes {
			data.MeasBytes[i] = make([]float64, s)
			for j := range data.MeasBytes[i] {
				data.MeasBytes[i][j] = rng.Float64() * 1e6
			}
		}
		for j := range data.NormBytes {
			data.NormBytes[j] = rng.Float64() * 1e7
		}
		const r = 0.25
		res, err := Aggregate(data, r)
		if err != nil {
			return false
		}
		// Bound check per second.
		for j := 0; j < s; j++ {
			var x float64
			for i := 0; i < m; i++ {
				x += data.MeasBytes[i][j]
			}
			if res.PerSecondTotals[j] > x/(1-r)+1e-6 {
				return false
			}
		}
		// Permutation invariance: reverse measurer order.
		rev := MeasurementData{MeasBytes: make([][]float64, m), NormBytes: data.NormBytes}
		for i := range rev.MeasBytes {
			rev.MeasBytes[i] = data.MeasBytes[m-1-i]
		}
		res2, err := Aggregate(rev, r)
		if err != nil {
			return false
		}
		// Relative tolerance: reversing the summation order perturbs the
		// result by a few ulp, which on Mbyte-scale values exceeds any
		// fixed absolute epsilon.
		diff := math.Abs(res.EstimateBytesPerSec - res2.EstimateBytesPerSec)
		return diff <= 1e-9*math.Max(1, res.EstimateBytesPerSec)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
