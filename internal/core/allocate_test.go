package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func team3x1G() []*Measurer {
	return []*Measurer{
		{Name: "m1", CapacityBps: 1e9, Cores: 4},
		{Name: "m2", CapacityBps: 1e9, Cores: 4},
		{Name: "m3", CapacityBps: 1e9, Cores: 4},
	}
}

func TestAllocateGreedySingleMeasurerSuffices(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateGreedy(team, 500e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.TotalBps-500e6) > 1 {
		t.Fatalf("total: got %v want 500e6", alloc.TotalBps)
	}
	// Greedy assigns the measurer with the most residual capacity all that
	// is needed — exactly one participant here.
	participants := 0
	for _, a := range alloc.PerMeasurerBps {
		if a > 0 {
			participants++
		}
	}
	if participants != 1 {
		t.Fatalf("participants: got %d want 1", participants)
	}
}

func TestAllocateGreedySpillsOver(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateGreedy(team, 2.5e9, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.TotalBps-2.5e9) > 1 {
		t.Fatalf("total: got %v", alloc.TotalBps)
	}
	// First two take 1 Gbit each, third takes 0.5.
	got := append([]float64(nil), alloc.PerMeasurerBps...)
	want := []float64{1e9, 1e9, 0.5e9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1 {
			t.Fatalf("per-measurer: got %v want %v", got, want)
		}
	}
}

func TestAllocateGreedyRespectsCommitted(t *testing.T) {
	team := team3x1G()
	team[0].CommittedBps = 0.9e9
	p := DefaultParams()
	alloc, err := AllocateGreedy(team, 1.5e9, p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PerMeasurerBps[0] > 0.1e9+1 {
		t.Fatalf("measurer 0 over-allocated: %v", alloc.PerMeasurerBps[0])
	}
}

func TestAllocateGreedyInsufficient(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	if _, err := AllocateGreedy(team, 4e9, p); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("want ErrInsufficientCapacity, got %v", err)
	}
}

func TestAllocateGreedyNonpositive(t *testing.T) {
	if _, err := AllocateGreedy(team3x1G(), 0, DefaultParams()); err == nil {
		t.Fatal("zero request should error")
	}
}

func TestSocketSplitEvenShare(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateGreedy(team, 2.5e9, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alloc.PerMeasurerBps {
		if a > 0 {
			// s=160 across 3 participants → 53 each.
			if alloc.SocketsPer[i] != 160/3 {
				t.Fatalf("sockets for %d: got %d want %d", i, alloc.SocketsPer[i], 160/3)
			}
			if alloc.Processes[i] != 4 {
				t.Fatalf("processes for %d: got %d want cores=4", i, alloc.Processes[i])
			}
		} else if alloc.SocketsPer[i] != 0 {
			t.Fatalf("non-participant got sockets: %d", alloc.SocketsPer[i])
		}
	}
}

func TestCommitRelease(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateGreedy(team, 1.2e9, p)
	if err != nil {
		t.Fatal(err)
	}
	Commit(team, alloc)
	var committed float64
	for _, m := range team {
		committed += m.CommittedBps
	}
	if math.Abs(committed-1.2e9) > 1 {
		t.Fatalf("committed: got %v", committed)
	}
	Release(team, alloc)
	for _, m := range team {
		if m.CommittedBps != 0 {
			t.Fatalf("release left %v committed on %s", m.CommittedBps, m.Name)
		}
	}
}

func TestRequiredBps(t *testing.T) {
	p := DefaultParams()
	want := 100e6 * p.ExcessFactor()
	if got := RequiredBps(100e6, p); math.Abs(got-want) > 1e-6 {
		t.Fatalf("required: got %v want %v", got, want)
	}
}

func TestTeamCapacity(t *testing.T) {
	if got := TeamCapacityBps(team3x1G()); got != 3e9 {
		t.Fatalf("team capacity: %v", got)
	}
}

// Property: a feasible allocation satisfies Σ a_i = need, 0 ≤ a_i ≤
// residual_i, and uses the minimal number of measurers for the greedy
// order (each non-last participant is fully used).
func TestAllocateGreedyInvariantsQuick(t *testing.T) {
	p := DefaultParams()
	f := func(caps [4]uint16, needScale uint8) bool {
		team := make([]*Measurer, 4)
		var total float64
		for i, c := range caps {
			capBps := float64(c%2000+1) * 1e6
			team[i] = &Measurer{Name: "m", CapacityBps: capBps, Cores: 2}
			total += capBps
		}
		need := total * float64(needScale%100+1) / 100
		alloc, err := AllocateGreedy(team, need, p)
		if err != nil {
			return false
		}
		var sum float64
		participants := 0
		fullyUsed := 0
		for i, a := range alloc.PerMeasurerBps {
			if a < 0 || a > team[i].ResidualBps()+1e-6 {
				return false
			}
			sum += a
			if a > 0 {
				participants++
				if math.Abs(a-team[i].ResidualBps()) < 1e-6 {
					fullyUsed++
				}
			}
		}
		if math.Abs(sum-need) > 1e-3 {
			return false
		}
		// Greedy shape: at most one participant is partially used.
		return participants-fullyUsed <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
