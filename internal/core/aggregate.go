package core

import (
	"errors"

	"flashflow/internal/stats"
)

// MeasurementData is the raw per-second data a BWAuth collects during one
// measurement slot (§4.1): for each measurer i and second j, the number of
// measurement bytes x_j^i relayed by the target back to that measurer; and
// for each second j, the number of normal-traffic bytes y_j the target
// claims to have relayed.
type MeasurementData struct {
	// MeasBytes[i][j] is measurer i's received measurement bytes in
	// second j.
	MeasBytes [][]float64
	// NormBytes[j] is the target's reported normal bytes in second j.
	NormBytes []float64
	// Failed indicates a measurer reported an echo-verification failure;
	// the BWAuth discards the measurement (§4.1).
	Failed bool
	// Incomplete indicates one or more measurers dropped out mid-slot
	// while the rest kept measuring: the per-second series undercount the
	// relay's demonstrated capacity, so the data is an honest lower bound
	// — usable to drive the §4.2 doubling loop, never to conclude a
	// measurement.
	Incomplete bool
	// SentCells and LostCells carry the datagram data plane's loss
	// accounting, summed across the team (zero on the stream plane, where
	// nothing can be silently lost). Lost cells already fail to count
	// toward MeasBytes; these totals exist so operators can tell a slow
	// relay from a lossy path.
	SentCells int64
	LostCells int64
}

// Truncate trims every per-second series to the first n seconds — the
// shape backends return when a slot is cancelled after n completed
// seconds. The Failed and Incomplete flags are preserved.
func (d MeasurementData) Truncate(n int) MeasurementData {
	if n < 0 {
		n = 0
	}
	for i := range d.MeasBytes {
		if len(d.MeasBytes[i]) > n {
			d.MeasBytes[i] = d.MeasBytes[i][:n]
		}
	}
	if len(d.NormBytes) > n {
		d.NormBytes = d.NormBytes[:n]
	}
	return d
}

// AggregateResult is the outcome of aggregating one measurement slot.
type AggregateResult struct {
	// EstimateBytesPerSec is the capacity estimate z: the median of the
	// per-second totals.
	EstimateBytesPerSec float64
	// PerSecondTotals holds z_j = x_j + clamped y_j for each second.
	PerSecondTotals []float64
	// PerSecondMeas and PerSecondNorm are x_j and the clamped y_j series.
	PerSecondMeas []float64
	PerSecondNorm []float64
	// MeasOnlyMedian is the median of the per-second measurement bytes
	// x_j alone — the portion of the estimate the measurers verified by
	// receiving it, with no relay self-report contribution.
	MeasOnlyMedian float64
	// ClampedSeconds counts seconds where the relay's normal-traffic
	// report exceeded the ratio limit and was clamped — nonzero values
	// indicate either saturation or lying.
	ClampedSeconds int
	// RatioClamped marks an estimate that hit the estimate-level
	// 1/(1−r) invariant clamp (see RatioClampBound). For data whose
	// seconds passed through the per-second clamp above this can never
	// fire (the per-second clamp dominates pointwise, and the median is
	// monotone), so a set flag means the per-second accounting was
	// bypassed or inconsistent — itself an anomaly signal.
	RatioClamped bool
}

// Errors from aggregation.
var (
	ErrNoData            = errors.New("core: no measurement data")
	ErrMeasurementFailed = errors.New("core: measurement failed echo verification")
	ErrRaggedData        = errors.New("core: per-measurer series have different lengths")
)

// Aggregate implements the §4.1 aggregation: per-second sums of
// measurement traffic x_j = Σ_i x_j^i, clamping of reported normal traffic
// to y_j ≤ x_j·r/(1−r), per-second totals z_j = x_j + y_j, and the median
// estimate z = median(z_1…z_t).
//
// The clamp is the security mechanism limiting a lying relay to a factor
// 1/(1−r) inflation: the relay may fabricate normal-traffic reports, but
// the BWAuth never credits normal traffic beyond the r-ratio share implied
// by the measurement traffic it verified directly.
func Aggregate(data MeasurementData, ratio float64) (AggregateResult, error) {
	if data.Failed {
		return AggregateResult{}, ErrMeasurementFailed
	}
	if len(data.MeasBytes) == 0 || len(data.MeasBytes[0]) == 0 {
		return AggregateResult{}, ErrNoData
	}
	seconds := len(data.MeasBytes[0])
	for _, series := range data.MeasBytes {
		if len(series) != seconds {
			return AggregateResult{}, ErrRaggedData
		}
	}
	if len(data.NormBytes) != 0 && len(data.NormBytes) != seconds {
		return AggregateResult{}, ErrRaggedData
	}

	res := AggregateResult{
		PerSecondTotals: make([]float64, seconds),
		PerSecondMeas:   make([]float64, seconds),
		PerSecondNorm:   make([]float64, seconds),
	}
	clampFactor := ratio / (1 - ratio)
	for j := 0; j < seconds; j++ {
		var x float64
		for i := range data.MeasBytes {
			x += data.MeasBytes[i][j]
		}
		var y float64
		if len(data.NormBytes) == seconds {
			y = data.NormBytes[j]
		}
		limit := x * clampFactor
		if y > limit {
			y = limit
			res.ClampedSeconds++
		}
		res.PerSecondMeas[j] = x
		res.PerSecondNorm[j] = y
		res.PerSecondTotals[j] = x + y
	}
	res.EstimateBytesPerSec = stats.Median(res.PerSecondTotals)
	res.MeasOnlyMedian = stats.Median(res.PerSecondMeas)
	// Estimate-level enforcement of the §5 inflation invariant: no matter
	// how the per-second series were produced, the published estimate
	// never exceeds 1/(1−r) times the measurement traffic the measurers
	// verified by receiving it. The relative epsilon keeps float rounding
	// between x + x·r/(1−r) and x/(1−r) from reading as a violation.
	if bound := RatioClampBound(res.MeasOnlyMedian, ratio); res.EstimateBytesPerSec > bound*(1+1e-9) {
		res.EstimateBytesPerSec = bound
		res.RatioClamped = true
	}
	return res, nil
}

// RatioClampBound returns the §5 ceiling on a capacity estimate given the
// median verified measurement throughput: measMedian/(1−r) bytes/s, i.e.
// the relay is credited at most r-ratio worth of claimed normal traffic on
// top of what the measurers received. Together with the per-second clamp
// in Aggregate this is the invariant that bounds a lying relay's inflation
// to 1/(1−r): the per-second clamp guarantees z_j ≤ x_j/(1−r) pointwise,
// medians are monotone under pointwise domination, so the estimate-level
// bound holds by construction for per-second-clamped data — enforcing it
// again here protects any future ingest path that skips the per-second
// accounting, and flags inconsistent data via RatioClamped.
func RatioClampBound(measMedianBytesPerSec, ratio float64) float64 {
	return measMedianBytesPerSec / (1 - ratio)
}

// EstimateAccepted implements the §4.2 acceptance condition: the estimate
// z (bytes/s) is conclusive if z < Σ_i a_i · (1−ε1)/m, i.e. small enough
// relative to the allocated measurer capacity that it could only result
// from a true capacity close to z. allocatedBps is Σ a_i in bits/s.
func EstimateAccepted(zBytesPerSec, allocatedBps float64, p Params) bool {
	zBps := zBytesPerSec * 8
	return zBps < allocatedBps*(1-p.Eps1)/p.Multiplier
}
