package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"flashflow/internal/stats"
)

// Backend executes a single measurement slot against a target relay. The
// simulation backend (SimBackend) models Internet paths and the relay's
// scheduler; the wire backend (package wire) runs the real protocol over
// net.Conns. Implementations return the raw per-second data for the
// BWAuth to aggregate.
type Backend interface {
	// RunMeasurement measures the named target for the given number of
	// seconds with the per-measurer rate allocation (bits/s, aligned with
	// the team) and socket split.
	//
	// The slot is cancellable: implementations must honor ctx and tear the
	// slot down promptly — within about one second of data — when it is
	// cancelled, returning the data for the seconds that completed before
	// cancellation together with ctx.Err(). Callers that cancelled
	// deliberately (the §4.2 early abort, a coordinator shutdown) salvage
	// that partial data instead of discarding the slot.
	//
	// The slot is observable: when sink is non-nil, the implementation
	// delivers a Sample for every completed second while the slot runs.
	// The returned MeasurementData remains the authoritative record; the
	// stream is a live view of the same numbers.
	RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error)
}

// MeasureOutcome records the result of measuring one relay, including the
// sequence of attempts the doubling loop performed (§4.2).
type MeasureOutcome struct {
	Relay string
	// EstimateBps is the final capacity estimate in bits/s.
	EstimateBps float64
	// Attempts lists each measurement attempt's allocated capacity and
	// resulting estimate.
	Attempts []MeasureAttempt
	// Conclusive indicates the final estimate satisfied the acceptance
	// condition. An inconclusive outcome means the loop hit its attempt
	// bound or the team's capacity ceiling; the last estimate is reported.
	Conclusive bool
}

// MeasureAttempt is one iteration of the measure-relay loop.
type MeasureAttempt struct {
	AllocatedBps float64
	EstimateBps  float64
	Accepted     bool
	// Seconds is the number of slot seconds the attempt actually consumed.
	// Equal to Params.SlotSeconds for a full slot; smaller when the
	// attempt was aborted early or interrupted.
	Seconds int
	// Aborted marks an attempt cut short by the early-abort rule: a
	// majority of the slot's seconds already exceeded the acceptance
	// bound, so the final median provably could not be accepted and the
	// loop jumped straight to the next doubling step.
	Aborted bool
	// ClampedSeconds counts the attempt's seconds whose normal-traffic
	// report hit the §4.1 r-ratio clamp; RatioClamped marks an estimate
	// clamped by the estimate-level 1/(1−r) invariant (RatioClampBound).
	// Both feed the §5 anomaly counters (OutcomeAnomalies).
	ClampedSeconds int
	RatioClamped   bool
	// MeasurerSkew is the CrossCheck per-measurer share deviation for
	// this attempt's slot — evidence of selective echoing within a team.
	MeasurerSkew float64
	// SentCells and LostCells are the slot's datagram-plane loss totals
	// (zero on the stream plane); see MeasurementData.
	SentCells int64
	LostCells int64
}

// SlotsUsed returns how many measurement slots the outcome consumed.
func (o MeasureOutcome) SlotsUsed() int { return len(o.Attempts) }

// SlotSecondsUsed returns the total measurement seconds the outcome
// consumed across all attempts — the quantity the early-abort rule
// reduces relative to SlotsUsed()·SlotSeconds.
func (o MeasureOutcome) SlotSecondsUsed() int {
	var s int
	for _, a := range o.Attempts {
		s += a.Seconds
	}
	return s
}

// ErrNoEstimate indicates MeasureRelay could not produce any estimate.
var ErrNoEstimate = errors.New("core: no estimate produced")

// noopLocker is the gate used by the sequential MeasureRelay path.
type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}

// MeasureRelay runs the §4.2 measurement process for one relay: allocate
// f·z0 capacity, measure, accept if the estimate is small enough relative
// to the allocation; otherwise set z0 = max(z, 2·z0) and repeat with more
// capacity. z0Bps is the prior estimate (an old relay's previous estimate,
// or the new-relay percentile prior). Cancelling ctx tears down the
// in-flight slot promptly; the returned outcome carries any attempts (and
// partial attempt) completed before cancellation alongside ctx's error.
func MeasureRelay(ctx context.Context, backend Backend, team []*Measurer, relayName string, z0Bps float64, p Params) (MeasureOutcome, error) {
	return MeasureRelayGuarded(ctx, backend, team, noopLocker{}, relayName, z0Bps, p)
}

// abortWatcher implements the §4.2 early-abort rule over a sample stream.
// The acceptance condition compares the median of the slot's per-second
// totals against the bound B = Σa_i·(1−ε1)/m: once ⌊t/2⌋+1 seconds have
// totals at or above B, the median over all t seconds is at least B no
// matter what the remaining seconds deliver, so the attempt can only end
// rejected and the slot is cancelled immediately.
type abortWatcher struct {
	boundBytes float64 // per-second total (bytes) at/above which a second counts against acceptance
	ratio      float64
	needed     int
	over       int
	cancel     context.CancelFunc
	aborted    atomic.Bool
}

func (w *abortWatcher) sink(s Sample) {
	if w.aborted.Load() {
		return
	}
	if SampleTotalBytes(s, w.ratio) >= w.boundBytes {
		w.over++
		if w.over >= w.needed {
			w.aborted.Store(true)
			w.cancel()
		}
	}
}

// MeasureRelayGuarded is MeasureRelay with every read or write of the
// team's committed capacity serialized through gate, so concurrent
// measurements (internal/coord runs a schedule slot's assignments on a
// worker pool) can safely share one team. The backend call itself runs
// outside the lock. Under concurrency AllocateGreedy can fail with
// ErrInsufficientCapacity when in-flight measurements hold the residual
// capacity; callers treat that as a retryable condition.
func MeasureRelayGuarded(ctx context.Context, backend Backend, team []*Measurer, gate sync.Locker, relayName string, z0Bps float64, p Params) (MeasureOutcome, error) {
	if err := p.Validate(); err != nil {
		return MeasureOutcome{}, err
	}
	if z0Bps <= 0 {
		return MeasureOutcome{}, fmt.Errorf("core: nonpositive prior %v for %s", z0Bps, relayName)
	}
	out := MeasureOutcome{Relay: relayName}
	teamCap := TeamCapacityBps(team)
	for attempt := 0; attempt < p.MaxMeasureAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("measure %s: %w", relayName, err)
		}
		need := RequiredBps(z0Bps, p)
		atCeiling := false
		if need > teamCap {
			// The team cannot supply more: measure with everything it
			// has; the result cannot be validated as conclusive if too
			// large, but it is the best obtainable estimate.
			need = teamCap
			atCeiling = true
		}
		gate.Lock()
		alloc, err := AllocateGreedyFrom(team, need, relayPreferredMeasurer(relayName, len(team)), p)
		if err != nil {
			gate.Unlock()
			return out, err
		}
		Commit(team, alloc)
		gate.Unlock()

		// Early abort only pays off when a further doubling step exists to
		// jump to: at the team's ceiling or on the final attempt the slot
		// runs to completion so the reported (inconclusive) estimate keeps
		// its full median quality.
		attemptCtx, cancelAttempt := context.WithCancel(ctx)
		var watcher *abortWatcher
		sink := SampleSink(nil)
		if !p.DisableEarlyAbort && !atCeiling && attempt < p.MaxMeasureAttempts-1 {
			watcher = &abortWatcher{
				boundBytes: alloc.TotalBps * (1 - p.Eps1) / p.Multiplier / 8,
				ratio:      p.Ratio,
				needed:     p.SlotSeconds/2 + 1,
				cancel:     cancelAttempt,
			}
			sink = watcher.sink
		}
		data, err := backend.RunMeasurement(attemptCtx, relayName, alloc, p.SlotSeconds, sink)
		cancelAttempt()
		gate.Lock()
		Release(team, alloc)
		gate.Unlock()

		aborted := watcher != nil && watcher.aborted.Load() && ctx.Err() == nil
		if err != nil && !(aborted && errors.Is(err, context.Canceled)) {
			// A real failure (or external cancellation): salvage whatever
			// the slot delivered before dying into the attempt record, so
			// callers (the coordinator's retry pipeline, a ctrl-C'd CLI)
			// still see the partial estimate. A zero estimate (e.g. every
			// wire member died before echoing a byte) carries no
			// information and is not recorded.
			if agg, secs, ok := partialEstimate(data, p); ok && agg.EstimateBytesPerSec > 0 {
				zBps := agg.EstimateBytesPerSec * 8
				out.Attempts = append(out.Attempts, MeasureAttempt{
					AllocatedBps:   alloc.TotalBps,
					EstimateBps:    zBps,
					Seconds:        secs,
					ClampedSeconds: agg.ClampedSeconds,
					RatioClamped:   agg.RatioClamped,
					MeasurerSkew:   CrossCheck(data, alloc, p.Ratio).MeasurerSkew,
					SentCells:      data.SentCells,
					LostCells:      data.LostCells,
				})
				out.EstimateBps = zBps
			}
			return out, fmt.Errorf("measure %s: %w", relayName, err)
		}

		if aborted {
			// The §4.1 echo-verification check outranks the abort: a slot
			// that caught the relay forging must be discarded exactly as a
			// full-length slot would be, never silently continued.
			if data.Failed {
				return out, fmt.Errorf("aggregate %s: %w", relayName, ErrMeasurementFailed)
			}
			// §4.2 early abort: the majority of observed seconds already
			// exceeded the acceptance bound, so this allocation can only
			// end rejected. Record the partial attempt and jump straight
			// to the next doubling step.
			agg, secs, _ := partialEstimate(data, p)
			zBps := agg.EstimateBytesPerSec * 8
			out.Attempts = append(out.Attempts, MeasureAttempt{
				AllocatedBps:   alloc.TotalBps,
				EstimateBps:    zBps,
				Seconds:        secs,
				Aborted:        true,
				ClampedSeconds: agg.ClampedSeconds,
				RatioClamped:   agg.RatioClamped,
				MeasurerSkew:   CrossCheck(data, alloc, p.Ratio).MeasurerSkew,
			})
			if zBps > 0 {
				out.EstimateBps = zBps
			}
			if zBps > 2*z0Bps {
				z0Bps = zBps
			} else {
				z0Bps = 2 * z0Bps
			}
			continue
		}

		agg, err := Aggregate(data, p.Ratio)
		if err != nil {
			return out, fmt.Errorf("aggregate %s: %w", relayName, err)
		}
		zBps := agg.EstimateBytesPerSec * 8
		accepted := EstimateAccepted(agg.EstimateBytesPerSec, alloc.TotalBps, p)
		if data.Incomplete {
			// A measurer dropped out mid-slot: the surviving members'
			// bytes are an honest lower bound, good enough to drive the
			// doubling loop but never to conclude a measurement.
			accepted = false
		}
		out.Attempts = append(out.Attempts, MeasureAttempt{
			AllocatedBps:   alloc.TotalBps,
			EstimateBps:    zBps,
			Accepted:       accepted,
			Seconds:        dataSeconds(data),
			ClampedSeconds: agg.ClampedSeconds,
			RatioClamped:   agg.RatioClamped,
			MeasurerSkew:   CrossCheck(data, alloc, p.Ratio).MeasurerSkew,
			SentCells:      data.SentCells,
			LostCells:      data.LostCells,
		})
		out.EstimateBps = zBps
		if accepted {
			out.Conclusive = true
			return out, nil
		}
		if atCeiling {
			// No more capacity to throw at it; report the ceiling-bound
			// estimate as inconclusive.
			return out, nil
		}
		// §4.2: z0 = max(z, 2·z0) guarantees the allocation at least
		// doubles.
		if zBps > 2*z0Bps {
			z0Bps = zBps
		} else {
			z0Bps = 2 * z0Bps
		}
	}
	if len(out.Attempts) == 0 {
		return out, ErrNoEstimate
	}
	return out, nil
}

// dataSeconds returns the number of per-second entries the data carries.
func dataSeconds(data MeasurementData) int {
	if len(data.MeasBytes) == 0 {
		return 0
	}
	return len(data.MeasBytes[0])
}

// partialEstimate aggregates a possibly truncated slot. It reports ok
// only when the data contains at least one complete second and passes the
// echo-verification check — a failed slot must never contribute an
// estimate. The full AggregateResult is returned so callers can record
// the attempt's anomaly evidence (clamped seconds, invariant-clamp hits)
// alongside the salvaged estimate.
func partialEstimate(data MeasurementData, p Params) (agg AggregateResult, seconds int, ok bool) {
	agg, err := Aggregate(data, p.Ratio)
	if err != nil {
		return AggregateResult{}, dataSeconds(data), false
	}
	return agg, dataSeconds(data), true
}

// relayPreferredMeasurer maps a relay name to a stable starting index for
// the allocation tie-break, so a relay keeps landing on the same measurers
// (and their pooled connections) across measurement rounds.
func relayPreferredMeasurer(relayName string, teamSize int) int {
	if teamSize <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(relayName))
	return int(h.Sum32() % uint32(teamSize))
}

// NewRelayPrior returns the z0 prior for a relay without a usable estimate:
// the configured percentile of last-month measured capacities (§4.2). If
// history is empty it falls back to 50 Mbit/s, approximating the paper's
// July-2019 75th-percentile advertised bandwidth of 51 Mbit/s.
func NewRelayPrior(lastMonthBps []float64, p Params) float64 {
	if len(lastMonthBps) == 0 {
		return 50e6
	}
	v := stats.Percentile(lastMonthBps, p.NewRelayPercentile)
	if v <= 0 {
		return 50e6
	}
	return v
}
