package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"flashflow/internal/stats"
)

// Backend executes a single measurement slot against a target relay. The
// simulation backend (SimBackend) models Internet paths and the relay's
// scheduler; the wire backend (package wire) runs the real protocol over
// net.Conns. Implementations return the raw per-second data for the
// BWAuth to aggregate.
type Backend interface {
	// RunMeasurement measures the named target for the given number of
	// seconds with the per-measurer rate allocation (bits/s, aligned with
	// the team) and socket split.
	RunMeasurement(target string, alloc Allocation, seconds int) (MeasurementData, error)
}

// MeasureOutcome records the result of measuring one relay, including the
// sequence of attempts the doubling loop performed (§4.2).
type MeasureOutcome struct {
	Relay string
	// EstimateBps is the final capacity estimate in bits/s.
	EstimateBps float64
	// Attempts lists each measurement attempt's allocated capacity and
	// resulting estimate.
	Attempts []MeasureAttempt
	// Conclusive indicates the final estimate satisfied the acceptance
	// condition. An inconclusive outcome means the loop hit its attempt
	// bound or the team's capacity ceiling; the last estimate is reported.
	Conclusive bool
}

// MeasureAttempt is one iteration of the measure-relay loop.
type MeasureAttempt struct {
	AllocatedBps float64
	EstimateBps  float64
	Accepted     bool
}

// SlotsUsed returns how many measurement slots the outcome consumed.
func (o MeasureOutcome) SlotsUsed() int { return len(o.Attempts) }

// ErrNoEstimate indicates MeasureRelay could not produce any estimate.
var ErrNoEstimate = errors.New("core: no estimate produced")

// noopLocker is the gate used by the sequential MeasureRelay path.
type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}

// MeasureRelay runs the §4.2 measurement process for one relay: allocate
// f·z0 capacity, measure, accept if the estimate is small enough relative
// to the allocation; otherwise set z0 = max(z, 2·z0) and repeat with more
// capacity. z0Bps is the prior estimate (an old relay's previous estimate,
// or the new-relay percentile prior).
func MeasureRelay(backend Backend, team []*Measurer, relayName string, z0Bps float64, p Params) (MeasureOutcome, error) {
	return MeasureRelayGuarded(backend, team, noopLocker{}, relayName, z0Bps, p)
}

// MeasureRelayGuarded is MeasureRelay with every read or write of the
// team's committed capacity serialized through gate, so concurrent
// measurements (internal/coord runs a schedule slot's assignments on a
// worker pool) can safely share one team. The backend call itself runs
// outside the lock. Under concurrency AllocateGreedy can fail with
// ErrInsufficientCapacity when in-flight measurements hold the residual
// capacity; callers treat that as a retryable condition.
func MeasureRelayGuarded(backend Backend, team []*Measurer, gate sync.Locker, relayName string, z0Bps float64, p Params) (MeasureOutcome, error) {
	if err := p.Validate(); err != nil {
		return MeasureOutcome{}, err
	}
	if z0Bps <= 0 {
		return MeasureOutcome{}, fmt.Errorf("core: nonpositive prior %v for %s", z0Bps, relayName)
	}
	out := MeasureOutcome{Relay: relayName}
	teamCap := TeamCapacityBps(team)
	for attempt := 0; attempt < p.MaxMeasureAttempts; attempt++ {
		need := RequiredBps(z0Bps, p)
		atCeiling := false
		if need > teamCap {
			// The team cannot supply more: measure with everything it
			// has; the result cannot be validated as conclusive if too
			// large, but it is the best obtainable estimate.
			need = teamCap
			atCeiling = true
		}
		gate.Lock()
		alloc, err := AllocateGreedyFrom(team, need, relayPreferredMeasurer(relayName, len(team)), p)
		if err != nil {
			gate.Unlock()
			return out, err
		}
		Commit(team, alloc)
		gate.Unlock()
		data, err := backend.RunMeasurement(relayName, alloc, p.SlotSeconds)
		gate.Lock()
		Release(team, alloc)
		gate.Unlock()
		if err != nil {
			return out, fmt.Errorf("measure %s: %w", relayName, err)
		}
		agg, err := Aggregate(data, p.Ratio)
		if err != nil {
			return out, fmt.Errorf("aggregate %s: %w", relayName, err)
		}
		zBps := agg.EstimateBytesPerSec * 8
		accepted := EstimateAccepted(agg.EstimateBytesPerSec, alloc.TotalBps, p)
		out.Attempts = append(out.Attempts, MeasureAttempt{
			AllocatedBps: alloc.TotalBps,
			EstimateBps:  zBps,
			Accepted:     accepted,
		})
		out.EstimateBps = zBps
		if accepted {
			out.Conclusive = true
			return out, nil
		}
		if atCeiling {
			// No more capacity to throw at it; report the ceiling-bound
			// estimate as inconclusive.
			return out, nil
		}
		// §4.2: z0 = max(z, 2·z0) guarantees the allocation at least
		// doubles.
		if zBps > 2*z0Bps {
			z0Bps = zBps
		} else {
			z0Bps = 2 * z0Bps
		}
	}
	if len(out.Attempts) == 0 {
		return out, ErrNoEstimate
	}
	return out, nil
}

// relayPreferredMeasurer maps a relay name to a stable starting index for
// the allocation tie-break, so a relay keeps landing on the same measurers
// (and their pooled connections) across measurement rounds.
func relayPreferredMeasurer(relayName string, teamSize int) int {
	if teamSize <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(relayName))
	return int(h.Sum32() % uint32(teamSize))
}

// NewRelayPrior returns the z0 prior for a relay without a usable estimate:
// the configured percentile of last-month measured capacities (§4.2). If
// history is empty it falls back to 50 Mbit/s, approximating the paper's
// July-2019 75th-percentile advertised bandwidth of 51 Mbit/s.
func NewRelayPrior(lastMonthBps []float64, p Params) float64 {
	if len(lastMonthBps) == 0 {
		return 50e6
	}
	v := stats.Percentile(lastMonthBps, p.NewRelayPercentile)
	if v <= 0 {
		return 50e6
	}
	return v
}
