package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestRatioClampBoundNeverBindsOnClampedData(t *testing.T) {
	// Property: for data whose seconds went through Aggregate's
	// per-second clamp, the estimate-level 1/(1−r) invariant never
	// binds (pointwise domination + median monotonicity). RatioClamped
	// firing would mean the accounting is inconsistent.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		seconds := 1 + rng.Intn(40)
		measurers := 1 + rng.Intn(4)
		data := MeasurementData{
			MeasBytes: make([][]float64, measurers),
			NormBytes: make([]float64, seconds),
		}
		for i := range data.MeasBytes {
			data.MeasBytes[i] = make([]float64, seconds)
			for j := range data.MeasBytes[i] {
				data.MeasBytes[i][j] = rng.Float64() * 1e6
			}
		}
		for j := range data.NormBytes {
			data.NormBytes[j] = rng.Float64() * 5e6 // often far over the limit
		}
		ratio := 0.05 + rng.Float64()*0.7
		agg, err := Aggregate(data, ratio)
		if err != nil {
			t.Fatal(err)
		}
		if agg.RatioClamped {
			t.Fatalf("trial %d: estimate-level clamp fired on per-second-clamped data", trial)
		}
		bound := RatioClampBound(agg.MeasOnlyMedian, ratio)
		if agg.EstimateBytesPerSec > bound*(1+1e-9) {
			t.Fatalf("trial %d: estimate %.1f exceeds invariant bound %.1f", trial, agg.EstimateBytesPerSec, bound)
		}
	}
}

func TestRatioClampBound(t *testing.T) {
	if got := RatioClampBound(300, 0.25); math.Abs(got-400) > 1e-9 {
		t.Fatalf("RatioClampBound(300, 0.25) = %v, want 400", got)
	}
}

func TestCrossCheckReportGap(t *testing.T) {
	// Three measurers, equal shares; the relay claims 10x the credit the
	// measurement traffic supports in every second.
	seconds := 5
	data := MeasurementData{
		MeasBytes: [][]float64{
			repeatSeconds(100, seconds),
			repeatSeconds(100, seconds),
			repeatSeconds(100, seconds),
		},
		NormBytes: repeatSeconds(1000, seconds),
	}
	alloc := Allocation{PerMeasurerBps: []float64{800, 800, 800}, TotalBps: 2400}
	rep := CrossCheck(data, alloc, 0.25)
	if rep.SuspectSeconds != seconds {
		t.Fatalf("SuspectSeconds = %d, want %d", rep.SuspectSeconds, seconds)
	}
	// limit = 300·(0.25/0.75) = 100; claim 1000 → gap 10.
	if math.Abs(rep.ReportGap-10) > 1e-9 {
		t.Fatalf("ReportGap = %v, want 10", rep.ReportGap)
	}
	if rep.MeasurerSkew > 1e-9 {
		t.Fatalf("equal shares skewed: %v", rep.MeasurerSkew)
	}
}

func TestCrossCheckMeasurerSkew(t *testing.T) {
	// The relay echoes to measurer 0 at half rate: its received share is
	// 0.5/2.5 = 0.2 vs an allocation share of 1/3 — skew 40%.
	seconds := 4
	data := MeasurementData{
		MeasBytes: [][]float64{
			repeatSeconds(50, seconds),
			repeatSeconds(100, seconds),
			repeatSeconds(100, seconds),
		},
	}
	alloc := Allocation{PerMeasurerBps: []float64{800, 800, 800}, TotalBps: 2400}
	rep := CrossCheck(data, alloc, 0.25)
	if rep.MeasurerSkew < 0.35 || rep.MeasurerSkew > 0.45 {
		t.Fatalf("MeasurerSkew = %v, want ≈0.4", rep.MeasurerSkew)
	}
}

func repeatSeconds(v float64, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestOutcomeAnomaliesStallPattern(t *testing.T) {
	p := DefaultParams()
	bound := func(alloc float64) float64 { return alloc * (1 - p.Eps1) / p.Multiplier }
	out := MeasureOutcome{Attempts: []MeasureAttempt{
		{AllocatedBps: 100e6, EstimateBps: bound(100e6) * 1.05},
		{AllocatedBps: 200e6, EstimateBps: bound(200e6) * 1.05},
		{AllocatedBps: 400e6, EstimateBps: bound(400e6) * 0.5, Accepted: true},
	}}
	a := OutcomeAnomalies(out, p)
	if a.StallSuspectSlots != 2 {
		t.Fatalf("StallSuspectSlots = %d, want 2", a.StallSuspectSlots)
	}

	// A single near-bound rejection is ordinary doubling-loop behavior.
	single := MeasureOutcome{Attempts: []MeasureAttempt{
		{AllocatedBps: 100e6, EstimateBps: bound(100e6) * 1.05},
		{AllocatedBps: 200e6, EstimateBps: bound(200e6) * 0.5, Accepted: true},
	}}
	if a := OutcomeAnomalies(single, p); a.StallSuspectSlots != 0 {
		t.Fatalf("single near-bound rejection flagged: %+v", a)
	}
}

func TestOutcomeAnomaliesClampedAndSkew(t *testing.T) {
	p := DefaultParams()
	out := MeasureOutcome{Attempts: []MeasureAttempt{
		{AllocatedBps: 100e6, EstimateBps: 90e6, ClampedSeconds: 30, MeasurerSkew: 0.7},
		{AllocatedBps: 200e6, EstimateBps: 90e6, Accepted: true, RatioClamped: true},
	}}
	a := OutcomeAnomalies(out, p)
	if a.ClampedSeconds != 30 || a.SkewSuspectSlots != 1 || a.RatioClampedSlots != 1 {
		t.Fatalf("unexpected counts: %+v", a)
	}
}

func TestAnomalyCountsAddTotal(t *testing.T) {
	var a AnomalyCounts
	a.Add(AnomalyCounts{ClampedSeconds: 2, EchoFailures: 1})
	a.Add(AnomalyCounts{StallSuspectSlots: 3, SplitViewRounds: 1, SkewSuspectSlots: 1, RatioClampedSlots: 1})
	if a.Total() != 9 {
		t.Fatalf("Total = %d, want 9", a.Total())
	}
}

func TestAnomalyCountsBinaryRoundTrip(t *testing.T) {
	a := AnomalyCounts{
		ClampedSeconds: 77, RatioClampedSlots: 3, EchoFailures: 2,
		StallSuspectSlots: 5, SkewSuspectSlots: 1, SplitViewRounds: 9,
	}
	buf := a.AppendBinary(nil)
	trailer := []byte{0xaa, 0xbb}
	got, rest, err := DecodeAnomalyCounts(append(buf, trailer...))
	if err != nil {
		t.Fatalf("DecodeAnomalyCounts: %v", err)
	}
	if got != a {
		t.Fatalf("round trip: got %+v, want %+v", got, a)
	}
	if len(rest) != len(trailer) || rest[0] != 0xaa {
		t.Fatalf("rest = %v, want the 2-byte trailer", rest)
	}
}

func TestAnomalyCountsBinaryVersionSkew(t *testing.T) {
	// A future writer appends extra counter fields: this reader must
	// decode the six it knows and skip the rest cleanly.
	a := AnomalyCounts{ClampedSeconds: 4, SplitViewRounds: 2}
	future := binary.AppendUvarint(nil, 8) // claims 8 fields
	for _, v := range []int64{a.ClampedSeconds, a.RatioClampedSlots, a.EchoFailures,
		a.StallSuspectSlots, a.SkewSuspectSlots, a.SplitViewRounds, 42, -7} {
		future = binary.AppendVarint(future, v)
	}
	got, rest, err := DecodeAnomalyCounts(future)
	if err != nil {
		t.Fatalf("decode future encoding: %v", err)
	}
	if got != a || len(rest) != 0 {
		t.Fatalf("got %+v (rest %d bytes), want %+v", got, len(rest), a)
	}

	// An older writer knew fewer fields: the missing ones stay zero.
	past := binary.AppendUvarint(nil, 2)
	past = binary.AppendVarint(past, 11)
	past = binary.AppendVarint(past, 1)
	got, _, err = DecodeAnomalyCounts(past)
	if err != nil {
		t.Fatalf("decode past encoding: %v", err)
	}
	want := AnomalyCounts{ClampedSeconds: 11, RatioClampedSlots: 1}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	// Truncation mid-fields is an error, not zeros.
	if _, _, err := DecodeAnomalyCounts(binary.AppendUvarint(nil, 3)); err == nil {
		t.Fatal("truncated encoding accepted")
	}
}
