package core

import (
	"context"
	"math"
	"testing"

	"flashflow/internal/relay"
)

func newTestBWAuth(name string, seed int64, targets map[string]float64) *BWAuth {
	b := NewSimBackend(paperPaths(), seed)
	for n, capBps := range targets {
		b.AddTarget(n, honestTarget(capBps))
	}
	return NewBWAuth(name, paperTeam(), b, DefaultParams())
}

func TestBWAuthMeasureTargetStoresEstimate(t *testing.T) {
	a := newTestBWAuth("bw1", 1, map[string]float64{"r1": 200e6})
	a.SetEstimate("r1", 200e6)
	out, err := a.MeasureTarget(context.Background(), "r1")
	if err != nil {
		t.Fatal(err)
	}
	est, ok := a.Estimate("r1")
	if !ok || est != out.EstimateBps {
		t.Fatalf("estimate not stored: %v %v", est, ok)
	}
}

func TestBWAuthNewRelayUsesPrior(t *testing.T) {
	// Without a stored estimate, the BWAuth starts from the percentile
	// prior (falling back to 50 Mbit/s) and still converges on a 400
	// Mbit/s relay via the doubling loop.
	a := newTestBWAuth("bw1", 2, map[string]float64{"fresh": 400e6})
	out, err := a.MeasureTarget(context.Background(), "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive {
		t.Fatalf("not conclusive: %+v", out.Attempts)
	}
	if len(out.Attempts) < 2 {
		t.Fatalf("expected escalation from the 50 Mbit prior, got %d attempts", len(out.Attempts))
	}
	rel := out.EstimateBps / 400e6
	if rel < 0.8 || rel > 1.05 {
		t.Fatalf("estimate rel=%v", rel)
	}
}

func TestBWAuthMeasureAllAndBandwidthFile(t *testing.T) {
	targets := map[string]float64{"a": 100e6, "b": 300e6}
	a := newTestBWAuth("bw1", 3, targets)
	for n, c := range targets {
		a.SetEstimate(n, c)
	}
	outcomes, errs := a.MeasureAll(context.Background(), []string{"a", "b"})
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes: %d", len(outcomes))
	}
	f := a.BandwidthFile(0)
	if len(f.Entries) != 2 {
		t.Fatalf("bandwidth file entries: %d", len(f.Entries))
	}
	for n, e := range f.Entries {
		if e.CapacityBps != e.WeightBps || e.CapacityBps <= 0 {
			t.Fatalf("entry %s: %+v", n, e)
		}
	}
}

func TestRunPeriodMedianAcrossBWAuths(t *testing.T) {
	targets := map[string]float64{"a": 150e6, "b": 600e6}
	auths := make([]*BWAuth, 3)
	for i := range auths {
		auths[i] = newTestBWAuth("bw", int64(100+i), targets)
		for n, c := range targets {
			auths[i].SetEstimate(n, c)
		}
	}
	res := RunPeriod(context.Background(), auths, []string{"a", "b"})
	if len(res.Errors) != 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	for n, trueCap := range targets {
		est := res.MedianEstimates[n]
		rel := est / trueCap
		if rel < 0.8 || rel > 1.05 {
			t.Fatalf("relay %s: median rel=%v", n, rel)
		}
	}
	if len(res.PerBWAuth) != 3 {
		t.Fatalf("per-bwauth outcomes: %d", len(res.PerBWAuth))
	}
}

func TestRunPeriodMedianResistsOneBadTeam(t *testing.T) {
	// One BWAuth's backend systematically reads 2× high (e.g. a broken or
	// malicious team); the median of 3 stays near truth.
	targets := map[string]float64{"a": 200e6}
	good1 := newTestBWAuth("g1", 11, targets)
	good2 := newTestBWAuth("g2", 12, targets)
	bad := NewBWAuth("bad", paperTeam(), doublingBackend{inner: NewSimBackendWithTarget(13, "a", 200e6)}, DefaultParams())
	for _, a := range []*BWAuth{good1, good2, bad} {
		a.SetEstimate("a", 200e6)
	}
	res := RunPeriod(context.Background(), []*BWAuth{good1, good2, bad}, []string{"a"})
	rel := res.MedianEstimates["a"] / 200e6
	if rel < 0.8 || rel > 1.1 {
		t.Fatalf("median with one bad team: rel=%v", rel)
	}
}

// NewSimBackendWithTarget is a test helper building a one-target backend.
func NewSimBackendWithTarget(seed int64, name string, capBps float64) *SimBackend {
	b := NewSimBackend(paperPaths(), seed)
	b.AddTarget(name, honestTarget(capBps))
	return b
}

// doublingBackend wraps a backend and doubles every reported byte count.
type doublingBackend struct{ inner Backend }

func (d doublingBackend) RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error) {
	data, err := d.inner.RunMeasurement(ctx, target, alloc, seconds, sink)
	if err != nil {
		return data, err
	}
	for i := range data.MeasBytes {
		for j := range data.MeasBytes[i] {
			data.MeasBytes[i][j] *= 2
		}
	}
	return data, nil
}

func TestBWAuthForgingRelayReportedAsError(t *testing.T) {
	b := NewSimBackend(paperPaths(), 21)
	tgt := &SimTarget{
		Relay:      relay.New(relay.Config{Name: "f", TorCapBps: 250e6}),
		LinkBps:    954e6,
		Behavior:   BehaviorForgeEcho,
		ForgeBoost: 2,
	}
	b.AddTarget("f", tgt)
	a := NewBWAuth("bw", paperTeam(), b, DefaultParams())
	a.SetEstimate("f", 250e6)
	_, errs := a.MeasureAll(context.Background(), []string{"f"})
	if len(errs) != 1 {
		t.Fatalf("expected one error, got %v", errs)
	}
}

func TestBWAuthHistoryFeedsPrior(t *testing.T) {
	a := newTestBWAuth("bw", 31, map[string]float64{"x": 100e6})
	a.SetEstimate("x", 100e6)
	if _, err := a.MeasureTarget(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	prior := NewRelayPrior(a.history, a.Params)
	if math.Abs(prior-100e6)/100e6 > 0.25 {
		t.Fatalf("prior from history: %v", prior)
	}
}
