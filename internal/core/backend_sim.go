package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"flashflow/internal/cell"
	"flashflow/internal/relay"
	"flashflow/internal/stats"
	"flashflow/internal/tcp"
)

// TargetBehavior selects how a simulated target responds to measurement.
type TargetBehavior int

// Behaviors analyzed in §5.
const (
	// BehaviorHonest forwards measurement traffic and reports its true
	// normal traffic.
	BehaviorHonest TargetBehavior = iota + 1
	// BehaviorInflateNormal sends no normal traffic but reports a huge
	// normal-traffic figure, attempting the 1/(1−r) inflation attack.
	BehaviorInflateNormal
	// BehaviorForgeEcho echoes cells without performing the relay crypto,
	// gaining apparent capacity but risking detection by the
	// probability-p content checks.
	BehaviorForgeEcho
)

// PathModel describes the network path from one measurer to the target.
type PathModel struct {
	// RTT between measurer and target.
	RTT time.Duration
	// LinkBps is the path's capacity (min of the two access links).
	LinkBps float64
	// LossRate is the path's steady-state packet loss (the Mathis model
	// limits per-socket throughput; Appendix E.1's socket counts).
	LossRate float64
	// BiasSigma is the per-measurement multiplicative spread of the
	// measurer's achieved rate relative to its configured allocation
	// (shared virtual hosting, cross traffic, TCP dynamics under the
	// token bucket). It is the inefficiency the excess factor f absorbs
	// (§4.2): achieved = allocation × eff, eff ∈ [0.35, 1.05].
	BiasSigma float64
	// JitterSigma is the per-second multiplicative noise on the achieved
	// rate, eff ∈ [0.7, 1.1].
	JitterSigma float64
	// EchoSigma is the per-second noise on received echo traffic; zero
	// defaults to JitterSigma/2.
	EchoSigma float64
	// Tuned selects the 64 MiB-buffer kernel (Appendix D).
	Tuned bool
}

// maxBps returns the path's achievable measurement rate with the given
// socket count.
func (pm PathModel) maxBps(sockets int) float64 {
	cfg := tcp.DefaultConfig(pm.LinkBps, pm.RTT)
	cfg.LossRate = pm.LossRate
	if pm.Tuned {
		cfg = cfg.Tuned()
	}
	return cfg.AggregateBps(sockets)
}

// SimTarget is a simulated target relay.
type SimTarget struct {
	// Relay models the target's scheduler and rate limits.
	Relay *relay.Relay
	// LinkBps is the target's access-link capacity (shared by all
	// measurement and normal traffic).
	LinkBps float64
	// BackgroundBps gives the offered normal-traffic demand at each
	// second of a measurement; nil means none.
	BackgroundBps func(second int) float64
	// Behavior selects honest or adversarial conduct.
	Behavior TargetBehavior
	// ForgeBoost is the apparent capacity multiplier gained by skipping
	// relay crypto under BehaviorForgeEcho (e.g. 2.0).
	ForgeBoost float64
	// CapSigma is the per-measurement lognormal spread of the target's
	// effective capacity (CPU contention, cross traffic at the target
	// host during the 30-second slot) — the source of Fig. 6's ±11 %
	// envelope. Zero disables it.
	CapSigma float64
	// SecondSigma is the per-second spread of the effective capacity.
	SecondSigma float64
}

// SimBackend implements Backend over the path and relay models, standing
// in for the paper's Internet experiments (§6).
//
// Concurrent RunMeasurement calls are serialized on an internal mutex:
// the simulation mutates the shared RNG and the target relay models, and
// unlike a real measurement it consumes no wall-clock time, so
// serialization keeps it deterministic per-call without limiting the
// throughput of callers like internal/coord that overlap slots.
type SimBackend struct {
	// Paths[i] models the path from team measurer i to any target (the
	// paper's targets all live on US-SW).
	Paths []PathModel
	// Targets maps relay name to its model.
	Targets map[string]*SimTarget
	// CheckProb is the echo-verification probability p.
	CheckProb float64

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Backend = (*SimBackend)(nil)

// NewSimBackend creates a backend with a deterministic RNG.
func NewSimBackend(paths []PathModel, seed int64) *SimBackend {
	return &SimBackend{
		Paths:     paths,
		Targets:   make(map[string]*SimTarget),
		CheckProb: DefaultParams().CheckProb,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// AddTarget registers a target relay model.
func (b *SimBackend) AddTarget(name string, t *SimTarget) { b.Targets[name] = t }

// RunMeasurement implements Backend. The simulated slot consumes no wall
// clock, but its tick loop still checks ctx between seconds so a caller's
// early abort or shutdown truncates the slot exactly as it would a real
// one, and emits a Sample per simulated second to sink. The sink runs
// with the backend's internal mutex held: it must not call back into the
// backend.
func (b *SimBackend) RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	tgt, ok := b.Targets[target]
	if !ok {
		return MeasurementData{}, fmt.Errorf("core: unknown target %q", target)
	}
	if len(alloc.PerMeasurerBps) != len(b.Paths) {
		return MeasurementData{}, fmt.Errorf("core: allocation for %d measurers, backend has %d paths", len(alloc.PerMeasurerBps), len(b.Paths))
	}
	tgt.Relay.SetMeasuring(true)
	defer tgt.Relay.SetMeasuring(false)

	m := len(alloc.PerMeasurerBps)
	data := MeasurementData{
		MeasBytes: make([][]float64, m),
		NormBytes: make([]float64, seconds),
	}
	for i := range data.MeasBytes {
		data.MeasBytes[i] = make([]float64, seconds)
	}

	// Per-measurement achieved-rate efficiency: shared hosting and cross
	// traffic hold a whole measurement's delivery below its configured
	// allocation (§6.2's spread; why m = 2.25 is needed, Appendix E.2).
	bias := make([]float64, m)
	for i := range bias {
		bias[i] = clampedRange(b.rng, b.Paths[i].BiasSigma, 0.35, 1.05)
	}

	forgeBoost := 1.0
	if tgt.Behavior == BehaviorForgeEcho && tgt.ForgeBoost > 1 {
		forgeBoost = tgt.ForgeBoost
	}
	// The target's effective capacity this measurement. Down-skewed:
	// contention can only take capacity away, so overshoot stays within
	// the paper's ε2 = +5 % while undershoot has the longer tail.
	capFactor := clampedRange(b.rng, tgt.CapSigma, 0.7, 1.03)

	sampleRow := make([]float64, m)
	for j := 0; j < seconds; j++ {
		if err := ctx.Err(); err != nil {
			// Cancelled mid-slot: hand back the seconds that completed so
			// the caller can salvage them into the attempt record.
			return data.Truncate(j), err
		}
		// Each measurer's offered rate: its allocation, capped by what
		// the path can carry with its socket share.
		demands := make([]float64, m)
		var measDemand float64
		for i := range demands {
			a := alloc.PerMeasurerBps[i]
			if a <= 0 {
				continue
			}
			pathMax := b.Paths[i].maxBps(alloc.SocketsPer[i])
			jitter := clampedRange(b.rng, b.Paths[i].JitterSigma, 0.7, 1.1)
			d := math.Min(a*bias[i]*jitter, pathMax)
			demands[i] = d
			measDemand += d
		}
		// The target's access link bounds the aggregate in each
		// direction.
		if tgt.LinkBps > 0 && measDemand > tgt.LinkBps {
			scale := tgt.LinkBps / measDemand
			for i := range demands {
				demands[i] *= scale
			}
			measDemand = tgt.LinkBps
		}

		var normDemand float64
		if tgt.Behavior != BehaviorInflateNormal && tgt.BackgroundBps != nil {
			normDemand = tgt.BackgroundBps(j)
		}

		// Scaling demands down and outputs up by the capacity factor is
		// equivalent to scaling the relay's capacity: saturated output
		// becomes cap×factor, unsaturated output stays equal to demand.
		capF := capFactor * clampedRange(b.rng, tgt.SecondSigma, 0.85, 1.1)
		effMeasDemand := measDemand * forgeBoost / capF
		measBps, normBps, err := tgt.Relay.Step(time.Second, effMeasDemand, normDemand/capF)
		if err != nil {
			return MeasurementData{}, err
		}
		measBps *= capF
		normBps *= capF

		// Distribute the echoed measurement traffic back across measurers
		// proportionally to their offered demand, with mild echo-path
		// noise (the residual spread of Fig. 6).
		if measDemand > 0 {
			for i := range demands {
				share := demands[i] / measDemand
				es := b.Paths[i].EchoSigma
				if es == 0 {
					es = b.Paths[i].JitterSigma / 2
				}
				echo := clampedLogNormal(b.rng, es)
				data.MeasBytes[i][j] = measBps * share * echo / 8
			}
		}

		// The relay's normal-traffic report.
		switch tgt.Behavior {
		case BehaviorInflateNormal:
			// Claim an absurd amount; the BWAuth clamp bounds the damage.
			data.NormBytes[j] = measBps * 10 / 8
		default:
			data.NormBytes[j] = normBps / 8
		}

		// Echo-content verification: a forging relay is caught with
		// probability 1-(1-p)^k for k forged cells (§5).
		if tgt.Behavior == BehaviorForgeEcho && b.CheckProb > 0 {
			forgedCells := measBps / 8 / float64(cell.Size)
			pDetect := 1 - math.Pow(1-b.CheckProb, forgedCells)
			if b.rng.Float64() < pDetect {
				data.Failed = true
				return data.Truncate(j + 1), nil
			}
		}

		if sink != nil {
			for i := range sampleRow {
				sampleRow[i] = data.MeasBytes[i][j]
			}
			sink(Sample{Second: j, MeasBytes: sampleRow, NormBytes: data.NormBytes[j]})
		}
	}
	return data, nil
}

// clampedLogNormal draws exp(N(0, sigma²)) clamped to [0.5, 2] so noise
// never dominates the signal.
func clampedLogNormal(rng *rand.Rand, sigma float64) float64 {
	return clampedRange(rng, sigma, 0.5, 2)
}

// clampedRange draws exp(N(0, sigma²)) clamped to [lo, hi].
func clampedRange(rng *rand.Rand, sigma, lo, hi float64) float64 {
	if sigma <= 0 {
		return 1
	}
	v := math.Exp(rng.NormFloat64() * sigma)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// DetectionProbability returns the §5 probability that a relay forging k
// echo responses is detected when each response is checked independently
// with probability p.
func DetectionProbability(p float64, k float64) float64 {
	if p <= 0 || k <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, k)
}

// BurstAttackSuccessProbability returns the §5 probability that a relay
// providing high capacity during only a fraction q of measurement slots
// obtains an inflated median with n BWAuths: Pr[B(n, q) ≥ ⌈n/2⌉].
func BurstAttackSuccessProbability(n int, q float64) float64 {
	return stats.BinomialTail(n, q, (n+1)/2)
}
