package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllocateEvenSplitsEqually(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateEven(team, 900e6, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range alloc.PerMeasurerBps {
		if math.Abs(a-300e6) > 1 {
			t.Fatalf("measurer %d: got %v want 300e6", i, a)
		}
	}
	if math.Abs(alloc.TotalBps-900e6) > 1 {
		t.Fatalf("total: %v", alloc.TotalBps)
	}
}

func TestAllocateEvenRedistributesShortfall(t *testing.T) {
	// One measurer cannot carry its even share; the others absorb it.
	team := []*Measurer{
		{Name: "small", CapacityBps: 100e6, Cores: 1},
		{Name: "big1", CapacityBps: 1e9, Cores: 4},
		{Name: "big2", CapacityBps: 1e9, Cores: 4},
	}
	p := DefaultParams()
	alloc, err := AllocateEven(team, 900e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PerMeasurerBps[0] > 100e6+1 {
		t.Fatalf("small measurer over capacity: %v", alloc.PerMeasurerBps[0])
	}
	if math.Abs(alloc.TotalBps-900e6) > 1e-3 {
		t.Fatalf("total after redistribution: %v", alloc.TotalBps)
	}
}

func TestAllocateEvenSocketShare(t *testing.T) {
	team := team3x1G()
	p := DefaultParams()
	alloc, err := AllocateEven(team, 600e6, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range team {
		if alloc.SocketsPer[i] != p.Sockets/3 {
			t.Fatalf("sockets for %d: got %d want %d", i, alloc.SocketsPer[i], p.Sockets/3)
		}
	}
}

func TestAllocateEvenErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := AllocateEven(nil, 1e6, p); err == nil {
		t.Fatal("empty team should error")
	}
	if _, err := AllocateEven(team3x1G(), 0, p); err == nil {
		t.Fatal("zero request should error")
	}
	if _, err := AllocateEven(team3x1G(), 10e9, p); err == nil {
		t.Fatal("over-capacity request should error")
	}
}

// Property: a feasible even allocation sums to the request, respects each
// measurer's residual, and deviates from the even share only when capacity
// forces it.
func TestAllocateEvenInvariantsQuick(t *testing.T) {
	p := DefaultParams()
	f := func(caps [3]uint16, needScale uint8) bool {
		team := make([]*Measurer, 3)
		var total float64
		for i, c := range caps {
			capBps := float64(c%2000+1) * 1e6
			team[i] = &Measurer{Name: "m", CapacityBps: capBps, Cores: 2}
			total += capBps
		}
		need := total * float64(needScale%100+1) / 100
		alloc, err := AllocateEven(team, need, p)
		if err != nil {
			return false
		}
		var sum float64
		share := need / 3
		for i, a := range alloc.PerMeasurerBps {
			if a < -1e-9 || a > team[i].CapacityBps+1e-6 {
				return false
			}
			// A measurer below the even share must be capacity-bound.
			if a < share-1e-6 && math.Abs(a-team[i].CapacityBps) > 1e-6 {
				return false
			}
			sum += a
		}
		return math.Abs(sum-need) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
