package core

import "math"

// maxf is max for two float64s without the math.Max NaN/±0 handling —
// residual capacities are ordinary finite values (or the -Inf padding,
// which compares fine), and the intrinsic-free branch is measurably
// cheaper in the placement hot loop.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// This file holds the indexed data structures behind the fast §4.3
// schedule builder. The seed implementation re-scanned every slot for
// every placement (O(S) per relay per BWAuth, with a fresh candidate
// slice each time); at consensus sizes in the hundreds of thousands or
// millions of relays that linear scan dominates the whole control plane.
// slotIndex replaces it with three cooperating structures over one
// BWAuth's S slots:
//
//   - remaining[slot]: the slot's residual team capacity, the single
//     source of truth both phases mutate through place.
//
//   - A Fenwick tree over 0/1 slot membership in the current *feasible
//     set* — the slots whose residual capacity is at least the need
//     threshold of the relay being placed. It supports count and
//     "k-th feasible slot in slot order" in O(log S), which is exactly
//     what the uniform random draw among feasible slots consumes.
//
//   - A max-heap of the slots currently *outside* the feasible set,
//     keyed by residual capacity. Old relays are placed in
//     need-descending order, so the feasibility threshold only ever
//     decreases: lowering it readmits pending slots whose residual
//     clears the new threshold. A slot leaves the set only when a
//     placement drops its residual below the threshold, so the total
//     number of enter/leave events is O(R + S) across the whole build.
//
//   - A max-segment tree over residual capacity for the FCFS phase's
//     earliest-feasible-slot query (leftmost slot with residual ≥ need)
//     in O(log S), independent of the old-phase threshold machinery.
//
// Invariant (old phase): after lowerThreshold(need), the feasible set is
// exactly {slot : remaining[slot] ≥ need}. The builder draws
// rng.Intn(count) once per placed relay and maps it through kth, so it
// consumes the derived RNG stream identically to the reference
// implementation's slot-order candidate scan — the two builders produce
// byte-identical schedules (see BuildScheduleReference and the
// equivalence property tests).
type slotIndex struct {
	n         int
	remaining []float64

	// Max-segment tree: seg[1] is the root, leaves start at segSize.
	// Padding leaves hold -Inf so they are never feasible.
	segSize int
	seg     []float64

	// Fenwick tree (1-based) over feasible-set membership.
	bit       []int32
	bitMask   int // largest power of two ≤ n
	inSet     []bool
	feasCount int

	pending   slotHeap
	threshold float64
}

// slotHeapEntry is a slot waiting to re-enter the feasible set, keyed by
// the residual capacity it had when it left (residuals never change
// while a slot is pending, because only feasible slots receive
// placements).
type slotHeapEntry struct {
	rem  float64
	slot int32
}

// slotHeap is a hand-rolled max-heap by residual capacity; avoiding
// container/heap keeps the hot path free of interface boxing.
type slotHeap []slotHeapEntry

func (h *slotHeap) push(e slotHeapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].rem >= s[i].rem {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *slotHeap) popMax() slotHeapEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(s) && s[l].rem > s[largest].rem {
			largest = l
		}
		if r < len(s) && s[r].rem > s[largest].rem {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// reset sizes the index for n slots of capBps residual capacity each,
// reusing every backing array from previous builds. The feasible set
// starts empty with an infinite threshold; the first lowerThreshold call
// admits the slots.
func (x *slotIndex) reset(n int, capBps float64) {
	x.n = n
	if cap(x.remaining) < n {
		x.remaining = make([]float64, n)
		x.inSet = make([]bool, n)
		x.bit = make([]int32, n+1)
	}
	x.remaining = x.remaining[:n]
	x.inSet = x.inSet[:n]
	x.bit = x.bit[:n+1]
	for i := range x.remaining {
		x.remaining[i] = capBps
	}
	for i := range x.inSet {
		x.inSet[i] = false
	}
	for i := range x.bit {
		x.bit[i] = 0
	}
	x.bitMask = 1
	for x.bitMask<<1 <= n {
		x.bitMask <<= 1
	}
	x.feasCount = 0
	x.threshold = math.Inf(1)

	segSize := 1
	for segSize < n {
		segSize <<= 1
	}
	x.segSize = segSize
	if cap(x.seg) < 2*segSize {
		x.seg = make([]float64, 2*segSize)
	}
	x.seg = x.seg[:2*segSize]
	for i := 0; i < n; i++ {
		x.seg[segSize+i] = capBps
	}
	negInf := math.Inf(-1)
	for i := n; i < segSize; i++ {
		x.seg[segSize+i] = negInf
	}
	for i := segSize - 1; i >= 1; i-- {
		x.seg[i] = maxf(x.seg[2*i], x.seg[2*i+1])
	}

	// All slots start pending; they share one key, so the slice is
	// already a valid heap without sifting.
	if cap(x.pending) < n {
		x.pending = make(slotHeap, 0, n)
	}
	x.pending = x.pending[:n]
	for i := range x.pending {
		x.pending[i] = slotHeapEntry{rem: capBps, slot: int32(i)}
	}
}

func (x *slotIndex) bitAdd(i int, d int32) {
	for ; i <= x.n; i += i & -i {
		x.bit[i] += d
	}
}

func (x *slotIndex) setFeasible(slot int) {
	if x.inSet[slot] {
		return
	}
	x.inSet[slot] = true
	x.feasCount++
	x.bitAdd(slot+1, 1)
}

func (x *slotIndex) clearFeasible(slot int) {
	if !x.inSet[slot] {
		return
	}
	x.inSet[slot] = false
	x.feasCount--
	x.bitAdd(slot+1, -1)
}

// lowerThreshold moves the feasibility threshold down to need (needs
// arrive in non-increasing order during the old-relay phase) and admits
// every pending slot whose residual capacity clears it.
func (x *slotIndex) lowerThreshold(need float64) {
	x.threshold = need
	for len(x.pending) > 0 && x.pending[0].rem >= need {
		e := x.pending.popMax()
		x.setFeasible(int(e.slot))
	}
}

// kth returns the k-th feasible slot in increasing slot order
// (0 ≤ k < feasCount) via Fenwick binary lifting.
func (x *slotIndex) kth(k int) int {
	pos := 0
	rem := int32(k + 1)
	for pw := x.bitMask; pw > 0; pw >>= 1 {
		if next := pos + pw; next <= x.n && x.bit[next] < rem {
			pos = next
			rem -= x.bit[next]
		}
	}
	return pos // 1-based answer is pos+1, so the 0-based slot is pos
}

// earliest returns the lowest-numbered slot with residual ≥ need, or -1.
// Used by the FCFS phase; O(log S) via leftmost segment-tree descent.
func (x *slotIndex) earliest(need float64) int {
	if x.n == 0 || x.seg[1] < need {
		return -1
	}
	i := 1
	for i < x.segSize {
		if x.seg[2*i] >= need {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return i - x.segSize
}

// place commits need bps of the slot's residual capacity and repairs
// both the segment tree and (when the residual drops below the current
// threshold) the feasible set.
func (x *slotIndex) place(slot int, need float64) {
	x.remaining[slot] -= need
	v := x.remaining[slot]
	i := x.segSize + slot
	x.seg[i] = v
	for i > 1 {
		i >>= 1
		x.seg[i] = maxf(x.seg[2*i], x.seg[2*i+1])
	}
	if x.inSet[slot] && v < x.threshold {
		x.clearFeasible(slot)
		x.pending.push(slotHeapEntry{rem: v, slot: int32(slot)})
	}
}
