package core

import (
	"context"
	"errors"
	"testing"
)

// TestEarlyAbortCutsUndersizedAttemptsShort pins the streaming early-abort
// rule: every doubling attempt whose allocation cannot possibly yield an
// accepted estimate is cancelled once ⌊t/2⌋+1 seconds prove it, while the
// final (sufficient) attempt runs its full slot and concludes.
func TestEarlyAbortCutsUndersizedAttemptsShort(t *testing.T) {
	backend := &fakeBackend{capacityBps: 400e6}
	team := team3x1G()
	p := DefaultParams() // SlotSeconds = 30
	out, err := MeasureRelay(context.Background(), backend, team, "r", 40e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive || len(out.Attempts) < 2 {
		t.Fatalf("should converge over multiple attempts: %+v", out)
	}
	majority := p.SlotSeconds/2 + 1
	for i, a := range out.Attempts[:len(out.Attempts)-1] {
		if !a.Aborted {
			t.Fatalf("undersized attempt %d should be aborted early: %+v", i, a)
		}
		if a.Seconds != majority {
			t.Fatalf("attempt %d consumed %d seconds, want the %d-second majority", i, a.Seconds, majority)
		}
		if a.Accepted {
			t.Fatalf("aborted attempt %d cannot be accepted", i)
		}
		if a.EstimateBps <= 0 {
			t.Fatalf("aborted attempt %d should salvage a partial estimate", i)
		}
	}
	last := out.Attempts[len(out.Attempts)-1]
	if last.Aborted || last.Seconds != p.SlotSeconds || !last.Accepted {
		t.Fatalf("final attempt should run the full slot and conclude: %+v", last)
	}
	full := out.SlotsUsed() * p.SlotSeconds
	if out.SlotSecondsUsed() >= full {
		t.Fatalf("early abort saved nothing: %d slot-seconds used of %d fixed-length", out.SlotSecondsUsed(), full)
	}
}

// TestDisableEarlyAbortRunsFullSlots checks the A/B knob: with the rule
// disabled, every attempt — undersized or not — consumes its full
// SlotSeconds, reproducing the pre-streaming pipeline.
func TestDisableEarlyAbortRunsFullSlots(t *testing.T) {
	backend := &fakeBackend{capacityBps: 400e6}
	team := team3x1G()
	p := DefaultParams()
	p.DisableEarlyAbort = true
	out, err := MeasureRelay(context.Background(), backend, team, "r", 40e6, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Conclusive || len(out.Attempts) < 2 {
		t.Fatalf("should converge over multiple attempts: %+v", out)
	}
	for i, a := range out.Attempts {
		if a.Aborted || a.Seconds != p.SlotSeconds {
			t.Fatalf("attempt %d should run the full slot with abort disabled: %+v", i, a)
		}
	}
	if out.SlotSecondsUsed() != out.SlotsUsed()*p.SlotSeconds {
		t.Fatalf("fixed-length accounting wrong: %d used, %d slots", out.SlotSecondsUsed(), out.SlotsUsed())
	}
}

// forgedAbortBackend saturates the acceptance bound (triggering the early
// abort) while also flagging an echo-verification failure in the partial
// data it returns on cancellation — the forging-relay-meets-abort race.
type forgedAbortBackend struct{ fakeBackend }

func (f *forgedAbortBackend) RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error) {
	data, err := f.fakeBackend.RunMeasurement(ctx, target, alloc, seconds, sink)
	data.Failed = true
	return data, err
}

// TestEarlyAbortDoesNotSwallowEchoFailure pins the precedence of the §4.1
// security check over the §4.2 early abort: a slot whose echo
// verification caught the relay forging must be discarded with
// ErrMeasurementFailed even when the abort watcher cancelled it first.
func TestEarlyAbortDoesNotSwallowEchoFailure(t *testing.T) {
	backend := &forgedAbortBackend{fakeBackend{capacityBps: 400e6}}
	team := team3x1G()
	// Undersized prior: the first attempt saturates its allocation, so the
	// abort watcher fires mid-slot.
	_, err := MeasureRelay(context.Background(), backend, team, "r", 40e6, DefaultParams())
	if !errors.Is(err, ErrMeasurementFailed) {
		t.Fatalf("forged slot must be discarded, got %v", err)
	}
}

// cancellingBackend emits per-second samples like fakeBackend but invokes
// a hook after each emitted second — the test uses it to cancel the outer
// context mid-slot, simulating a SIGINT landing during a measurement.
type cancellingBackend struct {
	fakeBackend
	afterSecond func(j int)
}

func (c *cancellingBackend) RunMeasurement(ctx context.Context, target string, alloc Allocation, seconds int, sink SampleSink) (MeasurementData, error) {
	hooked := func(s Sample) {
		if sink != nil {
			sink(s)
		}
		c.afterSecond(s.Second)
	}
	return c.fakeBackend.RunMeasurement(ctx, target, alloc, seconds, hooked)
}

// TestExternalCancelSalvagesPartialAttempt pins the shutdown contract at
// the core layer: cancelling the caller's context mid-slot returns
// context.Canceled promptly, with the completed seconds aggregated into a
// partial (never accepted) attempt instead of thrown away.
func TestExternalCancelSalvagesPartialAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	backend := &cancellingBackend{fakeBackend: fakeBackend{capacityBps: 100e6}}
	backend.afterSecond = func(j int) {
		if j == 4 {
			cancel()
		}
	}
	team := team3x1G()
	p := DefaultParams()
	// Prior matches capacity, so without cancellation this would conclude
	// in one full 30-second slot.
	out, err := MeasureRelay(ctx, backend, team, "r", 100e6, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if out.Conclusive {
		t.Fatal("a cancelled measurement cannot be conclusive")
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("partial attempt should be salvaged: %+v", out.Attempts)
	}
	a := out.Attempts[0]
	if a.Seconds != 5 {
		t.Fatalf("salvaged %d seconds, want the 5 completed before cancel", a.Seconds)
	}
	if a.Accepted || a.EstimateBps <= 0 {
		t.Fatalf("salvaged attempt must carry an unaccepted partial estimate: %+v", a)
	}
	if out.EstimateBps != a.EstimateBps {
		t.Fatalf("outcome estimate should reflect the salvaged attempt: %+v", out)
	}
	// Releasing capacity must survive the cancelled path too.
	for _, m := range team {
		if m.CommittedBps != 0 {
			t.Fatalf("capacity leaked on cancelled measurement: %v", m.CommittedBps)
		}
	}
}
