package core

// BuildScheduleReference is the seed O(R·S)-per-BWAuth schedule builder,
// retained verbatim in spirit as the baseline the indexed ScheduleBuilder
// is measured and property-tested against: for every placement it
// re-scans all S slots into a fresh candidate slice and draws uniformly
// from it, exactly as the original implementation did.
//
// It uses the same per-BWAuth derived RNG streams and the same placement
// order (old relays need-descending, new relays FCFS) as ScheduleBuilder,
// and consumes each stream identically — one Intn per placed old relay,
// over the same feasible count, selecting the same k-th slot in slot
// order — so the two builders produce byte-identical schedules. The
// equivalence property tests in schedule_equiv_test.go and the
// schedule-build perf scenarios both rely on this.
//
// The returned Schedule carries no relay index (SlotOf falls back to the
// linear scan), mirroring the seed data structure.
func BuildScheduleReference(seed []byte, relays []RelayEstimate, teamCapBps []float64, p Params) (*Schedule, error) {
	if len(teamCapBps) == 0 {
		return nil, ErrBadScheduleInput
	}
	numSlots := p.SlotsPerPeriod()
	if numSlots <= 0 {
		return nil, ErrBadScheduleInput
	}
	var order orderScratch
	order.compute(relays, p)

	s := &Schedule{NumSlots: numSlots, PerBWAuth: make([][][]Assignment, len(teamCapBps))}
	unsched := make([]bool, len(relays))
	for b := range teamCapBps {
		s.PerBWAuth[b] = make([][]Assignment, numSlots)
		remaining := make([]float64, numSlots)
		for i := range remaining {
			remaining[i] = teamCapBps[b]
		}
		rng := scheduleRNG(seed, b)

		place := func(ri int32, random bool) bool {
			need := order.needs[ri]
			candidates := make([]int, 0, numSlots)
			for slot := 0; slot < numSlots; slot++ {
				if remaining[slot] >= need {
					candidates = append(candidates, slot)
					if !random {
						break // FCFS: earliest slot wins
					}
				}
			}
			if len(candidates) == 0 {
				return false
			}
			slot := candidates[0]
			if random {
				slot = candidates[rng.Intn(len(candidates))]
			}
			remaining[slot] -= need
			s.PerBWAuth[b][slot] = append(s.PerBWAuth[b][slot], Assignment{Relay: relays[ri].Name, NeedBps: need})
			return true
		}

		for _, pr := range order.pairs {
			if !place(pr.idx, true) {
				unsched[pr.idx] = true
			}
		}
		for _, ri := range order.freshIdx {
			if !place(ri, false) {
				unsched[ri] = true
			}
		}
	}
	for i, r := range relays {
		if unsched[i] {
			s.Unscheduled = append(s.Unscheduled, r.Name)
		}
	}
	return s, nil
}
