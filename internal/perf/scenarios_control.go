package perf

import (
	"bytes"
	"fmt"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
)

// Control-plane scenarios: where the data-plane scenarios measure cells
// moved per second, these measure how fast the §4.3 scheduler and the
// v3bw snapshot pipeline handle consensus-scale relay populations. The
// "cells" of their Results are control-plane units — schedule placements
// or bandwidth-file entries — so the same Report/Compare machinery (and
// the CI regression gate) covers them.

// minSpeedup1M is the acceptance bar for the million-relay schedule
// build: the indexed builder must beat the seed reference algorithm by
// at least this factor or the scenario fails outright.
const minSpeedup1M = 10.0

// controlResult assembles a Result whose unit is a control-plane item
// rather than a wire cell; MBPerSec is filled by callers that move real
// bytes.
func controlResult(items int64, elapsed time.Duration, before, after memSnapshot) Result {
	sec := elapsed.Seconds()
	r := Result{Cells: items, Seconds: sec}
	if sec > 0 {
		r.CellsPerSec = float64(items) / sec
	}
	if items > 0 {
		r.AllocsPerOp = float64(after.mallocs-before.mallocs) / float64(items)
		r.BytesPerCell = float64(after.bytes-before.bytes) / float64(items)
	}
	return r
}

// schedulePopulation builds a deterministic heavy-tailed population of n
// relays (Pareto-ish via rank, 998 Mbit/s cap, ~2% marked New) and team
// capacities for three BWAuths sized so the period runs at roughly 60%
// occupancy — feasibility binds without making the schedule degenerate.
func schedulePopulation(n int) ([]core.RelayEstimate, []float64, core.Params) {
	p := core.DefaultParams()
	relays := make([]core.RelayEstimate, n)
	var totalNeed float64
	for i := range relays {
		rank := float64(i%131071 + 1) // recycle the tail so totals scale ~linearly with n
		capBps := 5e11 / (rank * (1 + rank/1000))
		if capBps > 998e6 {
			capBps = 998e6
		}
		if capBps < 1e5 {
			capBps = 1e5
		}
		// Spread estimates so needs are near-distinct: sorted placement
		// order then depends on float compares, not name tie-breaks.
		capBps *= 1 + float64(i)*1e-9
		relays[i] = core.RelayEstimate{
			Name:        fmt.Sprintf("relay-%07d", i),
			EstimateBps: capBps,
			New:         i%50 == 49,
		}
		totalNeed += core.RequiredBps(capBps, p)
	}
	perSlot := totalNeed / float64(p.SlotsPerPeriod()) / 0.60
	caps := []float64{perSlot, perSlot, perSlot}
	return relays, caps, p
}

// runScheduleBuild measures steady-state indexed schedule construction
// over an n-relay population (one warmup build charges the arena
// allocation, then the reused-builder path the coordinator actually runs
// each round), and anchors it against the seed O(R·S) reference builder
// run on the first refN relays and extrapolated linearly — the
// reference's per-relay cost is Θ(S), independent of R, so the
// extrapolation is sound and spares CI minutes of deliberately slow
// baseline. minSpeedup > 0 fails the scenario when the measured speedup
// drops below it.
func runScheduleBuild(opts Options, n, refN int, minSpeedup float64) (Result, error) {
	relays, caps, p := schedulePopulation(n)
	builder := core.NewScheduleBuilder()

	warm, err := builder.Build([]byte("sched-warmup"), relays, caps, p)
	if err != nil {
		return Result{}, err
	}
	perBuildAssignments := int64(warm.Assignments())
	if perBuildAssignments == 0 {
		return Result{}, fmt.Errorf("perf: schedule build placed nothing")
	}
	unscheduled := len(warm.Unscheduled)

	window := opts.window()
	before := readMem()
	start := time.Now()
	var (
		items      int64
		iterations int64
	)
	for {
		iterations++
		s, err := builder.Build([]byte(fmt.Sprintf("sched-round-%d", iterations)), relays, caps, p)
		if err != nil {
			return Result{}, err
		}
		items += int64(s.Assignments())
		if time.Since(start) >= window {
			break
		}
	}
	elapsed := time.Since(start)
	after := readMem()
	perBuild := elapsed.Seconds() / float64(iterations)

	refStart := time.Now()
	refSched, err := core.BuildScheduleReference([]byte("sched-round-1"), relays[:refN], caps, p)
	if err != nil {
		return Result{}, err
	}
	refElapsed := time.Since(refStart).Seconds()
	if refSched.Assignments() == 0 {
		return Result{}, fmt.Errorf("perf: reference build placed nothing")
	}
	refExtrapolated := refElapsed * float64(n) / float64(refN)
	speedup := refExtrapolated / perBuild
	if minSpeedup > 0 && speedup < minSpeedup {
		return Result{}, fmt.Errorf("perf: indexed schedule build only %.1fx the reference (need >= %.0fx): %.3fs/build vs %.1fs extrapolated from %d relays",
			speedup, minSpeedup, perBuild, refExtrapolated, refN)
	}

	res := controlResult(items, elapsed, before, after)
	res.Extra = map[string]float64{
		"relays":               float64(n),
		"bwauths":              float64(len(caps)),
		"iterations":           float64(iterations),
		"build_seconds":        perBuild,
		"unscheduled":          float64(unscheduled),
		"reference_relays":     float64(refN),
		"reference_seconds":    refElapsed,
		"speedup_vs_reference": speedup,
	}
	return res, nil
}

func runScheduleBuild100k(opts Options) (Result, error) {
	refN := 50000
	if opts.Quick {
		refN = 10000
	}
	return runScheduleBuild(opts, 100000, refN, 0)
}

func runScheduleBuild1M(opts Options) (Result, error) {
	refN := 20000
	if opts.Quick {
		refN = 10000
	}
	return runScheduleBuild(opts, 1000000, refN, minSpeedup1M)
}

// runV3BWRoundtrip streams a million-entry bandwidth file through
// WriteTo and parses it back, the full snapshot round-trip
// coord.writeSnapshot and a directory authority perform each period.
// The file lives in one reused buffer; the scenario's unit is one relay
// entry surviving the round-trip.
func runV3BWRoundtrip(opts Options) (Result, error) {
	const n = 1000000
	f := dirauth.NewBandwidthFile("perf", time.Hour)
	for i := 0; i < n; i++ {
		capBps := 1e6 * (1 + float64(i%4096)) * (1 + float64(i)*1e-8)
		f.Set(fmt.Sprintf("relay-%07d", i), capBps, capBps)
	}
	var buf bytes.Buffer

	roundtrip := func() (int, error) {
		buf.Reset()
		if _, err := f.WriteTo(&buf); err != nil {
			return 0, err
		}
		size := buf.Len()
		parsed, err := dirauth.ParseV3BW(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return 0, err
		}
		if len(parsed.Entries) != n {
			return 0, fmt.Errorf("perf: v3bw roundtrip lost entries: %d of %d", len(parsed.Entries), n)
		}
		return size, nil
	}
	// Warmup grows the buffer and the writer's sorted-name arena.
	if _, err := roundtrip(); err != nil {
		return Result{}, err
	}

	window := opts.window()
	before := readMem()
	start := time.Now()
	var (
		items      int64
		totalBytes int64
		iterations int64
	)
	for {
		iterations++
		size, err := roundtrip()
		if err != nil {
			return Result{}, err
		}
		items += n
		totalBytes += int64(size)
		if time.Since(start) >= window {
			break
		}
	}
	elapsed := time.Since(start)
	after := readMem()

	res := controlResult(items, elapsed, before, after)
	if sec := elapsed.Seconds(); sec > 0 {
		res.MBPerSec = float64(totalBytes) / 1e6 / sec
	}
	res.Extra = map[string]float64{
		"entries":    float64(n),
		"file_bytes": float64(totalBytes) / float64(iterations),
		"iterations": float64(iterations),
	}
	return res, nil
}
