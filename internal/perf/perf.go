package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"flashflow/internal/stats"
)

// Result is one scenario's measured throughput.
type Result struct {
	Scenario     string  `json:"scenario"`
	Cells        int64   `json:"cells"`
	Seconds      float64 `json:"seconds"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_cell"`
	BytesPerCell float64 `json:"bytes_per_cell"`
	// Extra carries scenario-specific metrics (e.g. the coord-round-abort
	// slot-second comparison). Compare ignores it; it is reported for
	// humans and dashboards reading BENCH_wire.json.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the machine-readable output of a harness run.
type Report struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Procs     int      `json:"procs"`
	Quick     bool     `json:"quick"`
	UnixTime  int64    `json:"generated_unix"`
	Results   []Result `json:"results"`
}

// Options tunes a harness run.
type Options struct {
	// Quick shortens every scenario for CI smoke runs.
	Quick bool
	// Duration overrides the per-scenario measurement window (default 1s,
	// 500ms when Quick).
	Duration time.Duration
	// Relays is the coord-round population size (default 200, 50 when
	// Quick).
	Relays int
	// Repeat runs each scenario this many times and keeps the run with
	// the highest cells/sec (default 1). Best-of-N damps scheduler and
	// loopback noise, which matters when a CI gate compares short quick
	// windows against a baseline.
	Repeat int
	// Transport selects the data plane for the wire-echo scenarios:
	// "" or "tcp" (the default, what the committed baseline records) or
	// "udp" to push measurement cells over loopback datagrams instead.
	// wire-echo-udp always runs UDP regardless of this setting.
	Transport string
}

func (o Options) window() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	// Quick windows are kept long enough that handshake amortization and
	// scheduler noise don't dominate: shorter windows made the CI gate
	// flake at the 20% threshold.
	if o.Quick {
		return 500 * time.Millisecond
	}
	return time.Second
}

func (o Options) relays() int {
	if o.Relays > 0 {
		return o.Relays
	}
	if o.Quick {
		return 50
	}
	return 200
}

// Scenario is a named throughput workload.
type Scenario struct {
	Name string
	Desc string
	Run  func(Options) (Result, error)
}

// Scenarios returns the registered scenarios in canonical order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "cell-crypto", Desc: "raw cell.Circuit AES-CTR throughput, single stream", Run: runCellCrypto},
		{Name: "cell-crypto-span", Desc: "span decrypt (one cipher call per 32-cell span) raced against sequential per-payload calls; fails unless spans win", Run: runCellCryptoSpan},
		{Name: "cell-verify", Desc: "random-access keystream verification of echoed cells (measurer check path)", Run: runCellVerify},
		{Name: "wire-echo-single", Desc: "one measurement circuit over loopback TCP, unlimited rate", Run: runWireEchoSingle},
		{Name: "wire-echo-team", Desc: "two-measurer team, one multiplexed connection each, one target", Run: runWireEchoTeam},
		{Name: "wire-echo-mux", Desc: "eight circuits multiplexed on a single connection, unlimited rate", Run: runWireEchoMux},
		{Name: "wire-echo-mux-par", Desc: "wire-echo-mux through the target's parallel decrypt pipeline; on ≥4 procs fails unless ≥1.2x the inline target", Run: runWireEchoMuxPar},
		{Name: "wire-echo-udp", Desc: "wire-echo-mux over the UDP data plane (TCP control, loopback datagrams) with loss accounting", Run: runWireEchoUDP},
		{Name: "coord-round", Desc: "coordinator scheduling round over a simulated relay population", Run: runCoordRound},
		{Name: "coord-round-abort", Desc: "slot-seconds saved by §4.2 early abort vs fixed-length slots, undersized priors", Run: runCoordRoundAbort},
		{Name: "schedule-build-100k", Desc: "indexed §4.3 schedule construction, 100k relays × 3 BWAuths, vs seed reference", Run: runScheduleBuild100k},
		{Name: "schedule-build-1m", Desc: "indexed §4.3 schedule construction, 1M relays × 3 BWAuths; fails under 10x the seed reference", Run: runScheduleBuild1M},
		{Name: "v3bw-roundtrip-1m", Desc: "streaming v3bw write + line-at-a-time parse of a 1M-entry bandwidth file", Run: runV3BWRoundtrip},
		{Name: "recover-warm-1m", Desc: "durable-state warm recovery (snapshot + WAL replay) of a 1M-relay coordinator; fails unless warm beats a cold v3bw re-parse", Run: runRecoverWarm},
		{Name: "adversary-matrix", Desc: "§5 attack × estimator robustness matrix; fails if FlashFlow advantage exceeds 1.4x", Run: runAdversaryMatrix},
		{Name: "serve-v3bw", Desc: "cached /v3bw GETs from the atomically swapped snapshot; fails if the handler allocates or re-renders", Run: runServeV3BW},
	}
}

// UnknownScenarioError reports a requested scenario name that is not
// registered; Available lists the valid names so callers (cmd/bench) can
// print them instead of leaving the operator to guess.
type UnknownScenarioError struct {
	Name      string
	Available []string
}

func (e *UnknownScenarioError) Error() string {
	return fmt.Sprintf("perf: unknown scenario %q", e.Name)
}

// Run executes the named scenarios (all when names is empty) and
// assembles a Report.
func Run(names []string, opts Options) (Report, error) {
	all := Scenarios()
	selected := all
	if len(names) > 0 {
		byName := make(map[string]Scenario, len(all))
		avail := make([]string, len(all))
		for i, s := range all {
			byName[s.Name] = s
			avail[i] = s.Name
		}
		selected = selected[:0]
		for _, n := range names {
			s, ok := byName[n]
			if !ok {
				return Report{}, &UnknownScenarioError{Name: n, Available: avail}
			}
			selected = append(selected, s)
		}
	}
	rep := Report{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Procs:     runtime.GOMAXPROCS(0),
		Quick:     opts.Quick,
		UnixTime:  time.Now().Unix(),
	}
	repeat := opts.Repeat
	if repeat < 1 {
		repeat = 1
	}
	for _, s := range selected {
		var best Result
		for i := 0; i < repeat; i++ {
			r, err := s.Run(opts)
			if err != nil {
				return Report{}, fmt.Errorf("perf: scenario %s: %w", s.Name, err)
			}
			if i == 0 || r.CellsPerSec > best.CellsPerSec {
				best = r
			}
		}
		best.Scenario = s.Name
		rep.Results = append(rep.Results, best)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads a report written by WriteJSON.
func LoadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return rep, nil
}

// result looks up a scenario's result in the report.
func (r Report) result(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Scenario == name {
			return res, true
		}
	}
	return Result{}, false
}

// Regression describes one scenario that fell outside the allowed band of
// the baseline, either on throughput or on allocations per cell.
type Regression struct {
	Scenario   string
	Metric     string  // "cells_per_sec" or "allocs_per_cell"
	Baseline   float64 // baseline value of the metric
	Current    float64 // current value of the metric
	Ratio      float64 // current/baseline (throughput regressions only)
	Normalized bool    // whether machine-speed normalization applied
}

// SuiteMedianScenario is the pseudo-scenario name Compare uses to report
// a regression broad enough to move the normalization median itself.
const SuiteMedianScenario = "suite-median"

func (g Regression) String() string {
	if g.Metric == "allocs_per_cell" {
		return fmt.Sprintf("%s: allocs/cell grew %.2f -> %.2f", g.Scenario, g.Baseline, g.Current)
	}
	if g.Scenario == SuiteMedianScenario {
		return fmt.Sprintf("suite-median: throughput across scenarios fell to %.2fx baseline (broad regression, or a much slower machine — refresh the baseline if intentional)", g.Ratio)
	}
	norm := ""
	if g.Normalized {
		norm = " (machine-normalized)"
	}
	return fmt.Sprintf("%s: %.0f -> %.0f cells/s, ratio %.2f%s", g.Scenario, g.Baseline, g.Current, g.Ratio, norm)
}

// allocSlack is the allowed growth in allocations per cell before the
// comparison fails. Steady-state paths sit at ~0; a full extra allocation
// per cell means a heap allocation crept back into the hot loop.
const allocSlack = 1.0

// minNormalizeScenarios is the smallest number of shared scenarios for
// which median normalization is meaningful; below it the comparison falls
// back to raw cells/sec ratios.
const minNormalizeScenarios = 3

// Compare checks current against baseline and returns the scenarios whose
// cells/sec ratio dropped below 1-maxRegress or whose allocations per
// cell grew by more than one. Scenarios missing from either report are
// skipped (CI may run a subset).
//
// When at least minNormalizeScenarios scenarios are shared, each
// scenario's throughput ratio is divided by the median ratio across all
// shared scenarios before the threshold check. A uniformly slower or
// faster machine (a different CI runner class, a contended host) moves
// every ratio together and the median cancels it, while a genuine
// regression in one or two scenarios stands out against the median of the
// rest. This is deliberately not anchored to any single reference
// scenario: a reference's own run-to-run noise would inject false
// regressions into every other scenario. Normalization is applied only in
// the slower direction (divisor capped at 1): a broadly *faster* run —
// quicker machine, or a PR that sped up most scenarios without refreshing
// the baseline — must never turn an untouched scenario into a reported
// regression.
//
// Normalization must not hide a regression broad enough to drag the
// median itself down (e.g. a crypto-path slowdown hits every scenario
// that does real cell work): when the median ratio is below the
// threshold, Compare reports a suite-wide regression in addition to any
// per-scenario ones. A machine legitimately that much slower than the
// baseline recorder needs its baseline refreshed rather than a silently
// passing gate.
func Compare(baseline, current Report, maxRegress float64) []Regression {
	type pair struct {
		base, cur Result
		ratio     float64
	}
	var pairs []pair
	for _, b := range baseline.Results {
		c, ok := current.result(b.Scenario)
		if !ok || b.CellsPerSec <= 0 {
			continue
		}
		pairs = append(pairs, pair{base: b, cur: c, ratio: c.CellsPerSec / b.CellsPerSec})
	}

	normalize := len(pairs) >= minNormalizeScenarios
	medianRatio := 1.0
	if normalize {
		ratios := make([]float64, len(pairs))
		for i, p := range pairs {
			ratios[i] = p.ratio
		}
		medianRatio = stats.Median(ratios)
		if medianRatio <= 0 {
			normalize, medianRatio = false, 1.0
		}
	}
	// Normalize only in the slower direction. A median above 1 means the
	// current run is broadly faster — a quicker machine or a PR that
	// improved most scenarios without refreshing the baseline; dividing an
	// untouched scenario's ratio of ~1.0 by that elevated median would
	// manufacture a regression out of someone else's improvement.
	divisor := medianRatio
	if divisor > 1 {
		divisor = 1
	}

	var regs []Regression
	if normalize && medianRatio < 1-maxRegress {
		regs = append(regs, Regression{
			Scenario: SuiteMedianScenario,
			Metric:   "cells_per_sec",
			Baseline: 1,
			Current:  medianRatio,
			Ratio:    medianRatio,
		})
	}
	for _, p := range pairs {
		if p.cur.AllocsPerOp > p.base.AllocsPerOp+allocSlack {
			regs = append(regs, Regression{
				Scenario: p.base.Scenario,
				Metric:   "allocs_per_cell",
				Baseline: p.base.AllocsPerOp,
				Current:  p.cur.AllocsPerOp,
			})
		}
		ratio := p.ratio / divisor
		if ratio < 1-maxRegress {
			regs = append(regs, Regression{
				Scenario:   p.base.Scenario,
				Metric:     "cells_per_sec",
				Baseline:   p.base.CellsPerSec,
				Current:    p.cur.CellsPerSec,
				Ratio:      ratio,
				Normalized: normalize,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio < regs[j].Ratio })
	return regs
}
