package perf

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"flashflow/internal/core"
	"flashflow/internal/dirauth"
	"flashflow/internal/store"
)

// Durable-state scenario: how fast a crashed coordinator gets its
// million-relay control plane back. The warm path is internal/store's
// recovery (binary snapshot decode plus WAL-tail replay — what coordd
// -state-dir does on startup); the cold path is the best a store-less
// restart could manage, re-parsing the last published v3bw text file to
// seed priors — which still recovers no §5 anomaly windows and no round
// counter, so it restarts the anomaly retention clock and re-runs round
// numbers. The scenario fails outright if warm recovery is not faster
// than even that lossy alternative.

// recoverRelays is the recovered population size; recoverWALTail is the
// size of the un-checkpointed WAL tail replayed on top of the snapshot
// (roughly one full round of prior updates at 10% churn plus anomaly
// evidence).
const (
	recoverRelays  = 1000000
	recoverWALTail = 100000
)

// buildRecoveryState populates a state directory the way a long-running
// coordinator would leave it after a crash: a checkpointed snapshot of a
// million priors, anomaly windows for 1% of relays, the last published
// v3bw body, and a WAL tail of post-checkpoint mutations. It returns the
// rendered v3bw body (the cold path's input) and the expected totals.
func buildRecoveryState(dir string) (v3bwBody []byte, priors, anomalies int, err error) {
	st := store.NewState()
	st.Round = 42
	f := dirauth.NewBandwidthFile("perf", time.Hour)
	for i := 0; i < recoverRelays; i++ {
		name := fmt.Sprintf("relay-%07d", i)
		capBps := 1e6 * (1 + float64(i%4096)) * (1 + float64(i)*1e-8)
		st.Priors[name] = capBps
		f.Set(name, capBps, capBps)
		if i%100 == 0 {
			st.Anomalies[name] = store.AnomalyRecord{
				Counts:   core.AnomalyCounts{ClampedSeconds: int64(i%30 + 1), SplitViewRounds: int64(i % 3)},
				LastSeen: 40 + i%3,
			}
		}
	}
	body, _, err := f.Render()
	if err != nil {
		return nil, 0, 0, err
	}
	st.V3BW = store.V3BW{Round: 42, Body: body}

	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		return nil, 0, 0, err
	}
	defer s.Close()
	if _, err := s.Load(); err != nil {
		return nil, 0, 0, err
	}
	if err := s.Checkpoint(st); err != nil {
		return nil, 0, 0, err
	}
	// The WAL tail: the crashed round's marker, then its prior updates in
	// the coordinator's per-round batch sizes.
	recs := []store.Record{{Kind: store.KindRound, Round: 43}}
	for i := 0; i < recoverWALTail; i++ {
		recs = append(recs, store.Record{
			Kind:  store.KindPrior,
			Relay: fmt.Sprintf("relay-%07d", i*7%recoverRelays),
			Bps:   2e6 * (1 + float64(i%1024)),
		})
		if i%1000 == 999 {
			recs = append(recs, store.Record{
				Kind:   store.KindAnomaly,
				Relay:  fmt.Sprintf("relay-%07d", i%recoverRelays),
				Round:  43,
				Counts: core.AnomalyCounts{StallSuspectSlots: 1},
			})
		}
	}
	if err := s.Append(recs...); err != nil {
		return nil, 0, 0, err
	}
	return body, len(st.Priors), len(st.Anomalies), nil
}

// runRecoverWarm measures warm recovery restarts (Open + Load + Close on
// a real state directory) against the cold v3bw re-parse over the same
// window, and fails unless warm beats cold. The Result's unit is one
// restored entry (prior or anomaly record) per second of warm recovery,
// so the CI regression gate tracks recovery throughput like any other
// scenario.
func runRecoverWarm(opts Options) (Result, error) {
	dir, err := os.MkdirTemp("", "flashflow-recover-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	body, priors, anomalies, err := buildRecoveryState(dir)
	if err != nil {
		return Result{}, err
	}
	// Bytes a warm restart reads: the live snapshot plus the WAL tail.
	var stateBytes int64
	for _, name := range []string{store.SnapshotFile, store.WALFile} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return Result{}, err
		}
		stateBytes += fi.Size()
	}

	warmRestart := func() (int, error) {
		s, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			return 0, err
		}
		defer s.Close()
		st, err := s.Load()
		if err != nil {
			return 0, err
		}
		if st.Round != 43 {
			return 0, fmt.Errorf("perf: warm recovery resumed at round %d, want 43", st.Round)
		}
		if len(st.Priors) != priors || len(st.Anomalies) < anomalies {
			return 0, fmt.Errorf("perf: warm recovery restored %d priors / %d anomalies, want %d / >=%d",
				len(st.Priors), len(st.Anomalies), priors, anomalies)
		}
		return len(st.Priors) + len(st.Anomalies), nil
	}
	coldRestart := func() (int, error) {
		f, err := dirauth.ParseV3BW(bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		seeded := make(map[string]float64, len(f.Entries))
		for name, e := range f.Entries {
			seeded[name] = e.CapacityBps
		}
		if len(seeded) != priors {
			return 0, fmt.Errorf("perf: cold restart seeded %d priors, want %d", len(seeded), priors)
		}
		return len(seeded), nil
	}

	// Warmup both paths once (page cache, map arenas), then measure each
	// over its own window.
	if _, err := warmRestart(); err != nil {
		return Result{}, err
	}
	if _, err := coldRestart(); err != nil {
		return Result{}, err
	}

	// Interleave warm and cold restarts and compare each path's best
	// time: back-to-back alternation sees the same heap and page-cache
	// state, and best-of is robust against a GC pause landing in one
	// path's window. Throughput (the gate's metric) comes from the warm
	// runs' totals.
	window := opts.window()
	var (
		warmItems   int64
		warmElapsed time.Duration
		warmSec     = math.Inf(1)
		coldSec     = math.Inf(1)
	)
	before := readMem()
	start := time.Now()
	for round := 0; round < 2 || time.Since(start) < window; round++ {
		ws := time.Now()
		n, err := warmRestart()
		if err != nil {
			return Result{}, err
		}
		wd := time.Since(ws)
		warmItems += int64(n)
		warmElapsed += wd
		warmSec = math.Min(warmSec, wd.Seconds())

		cs := time.Now()
		if _, err := coldRestart(); err != nil {
			return Result{}, err
		}
		coldSec = math.Min(coldSec, time.Since(cs).Seconds())
	}
	after := readMem()

	if warmSec >= coldSec {
		return Result{}, fmt.Errorf("perf: warm recovery (best %.3fs/restart) is not faster than a cold v3bw re-parse (best %.3fs/restart) over %d relays",
			warmSec, coldSec, recoverRelays)
	}

	res := controlResult(warmItems, warmElapsed, before, after)
	if sec := warmElapsed.Seconds(); sec > 0 {
		restarts := float64(warmItems) / float64(priors+anomalies)
		res.MBPerSec = float64(stateBytes) * restarts / 1e6 / sec
	}
	res.Extra = map[string]float64{
		"state_bytes":          float64(stateBytes),
		"relays":               float64(recoverRelays),
		"wal_tail_records":     float64(recoverWALTail),
		"restored_priors":      float64(priors),
		"restored_anomalies":   float64(anomalies),
		"warm_restart_seconds": warmSec,
		"cold_restart_seconds": coldSec,
		"speedup_vs_cold":      coldSec / warmSec,
	}
	return res, nil
}
