package perf

import (
	"fmt"
	"time"

	"flashflow/internal/experiments"
)

// The adversary-matrix scenario wires the §5 robustness numbers into the
// perf report: each iteration runs the full attack × estimator matrix
// (live attacks through the measurement pipeline against FlashFlow, the
// baselines' analogs alongside), so BENCH_wire.json and the committed
// BENCH_history.jsonl carry the security posture next to the throughput
// numbers. The scenario's unit is one evaluated matrix cell; like every
// scenario it is gated for throughput regressions, and it additionally
// FAILS outright if FlashFlow's measured attack advantage exceeds the
// 1.4× bound (1/(1−r) = 1.33 plus noise margin) — a data-plane speedup
// that broke a §5 defense must not pass the bench gate.

func runAdversaryMatrix(opts Options) (Result, error) {
	window := opts.window()
	before := readMem()
	start := time.Now()
	var (
		cells      int64
		iterations int64
		last       experiments.MatrixReport
	)
	for {
		iterations++
		rep, err := experiments.AdversaryMatrix(experiments.MatrixOptions{Seed: iterations, Quick: opts.Quick})
		if err != nil {
			return Result{}, err
		}
		if rep.FlashFlowMaxAdvantage > experiments.MaxFlashFlowAdvantage {
			return Result{}, fmt.Errorf("perf: FlashFlow attack advantage %.3fx exceeds the %.2fx bound (seed %d)",
				rep.FlashFlowMaxAdvantage, experiments.MaxFlashFlowAdvantage, iterations)
		}
		cells += int64(len(rep.Cells))
		last = rep
		if time.Since(start) >= window {
			break
		}
	}
	elapsed := time.Since(start)
	after := readMem()

	res := controlResult(cells, elapsed, before, after)
	res.Extra = map[string]float64{
		"iterations":              float64(iterations),
		"flashflow_max_advantage": last.FlashFlowMaxAdvantage,
		"inflation_bound":         last.InflationBound,
	}
	for _, pick := range []struct{ attack, estimator, key string }{
		{"inflate", "flashflow", "flashflow_inflate_advantage"},
		{"inflate", "torflow", "torflow_inflate_advantage"},
		{"collude", "peerflow", "peerflow_collude_advantage"},
		{"collude", "eigenspeed", "eigenspeed_collude_advantage"},
	} {
		if c, ok := last.Cell(pick.attack, pick.estimator); ok {
			res.Extra[pick.key] = c.Advantage
		}
	}
	return res, nil
}
