package perf

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"flashflow/internal/dirauth"
	"flashflow/internal/obs"
)

// Observability-plane scenario: how fast the /v3bw snapshot handler
// answers a Tor-scale directory-fetch population. The paper's deployment
// model has every client fetching the bandwidth file each consensus
// interval, so the serve path must be renders-once, allocations-never:
// one atomic pointer load, pre-built headers, one body Write. The
// scenario measures exactly that path and fails outright if the cached
// GET path allocates, if conditional GETs stop short-circuiting to 304,
// or if serving re-enters the render path.

// serveV3BWMaxAllocs is the allocation budget per cached GET on the
// handler path. The steady state is zero; the fractional slack absorbs
// incidental runtime activity (background GC bookkeeping attributed to
// this goroutine) without letting a real per-request allocation pass.
const serveV3BWMaxAllocs = 0.5

// nullResponseWriter is a reusable http.ResponseWriter that discards the
// body: the scenario measures the handler's own work, not a socket's.
type nullResponseWriter struct {
	hdr    http.Header
	status int
	n      int64
}

func (w *nullResponseWriter) Header() http.Header { return w.hdr }

func (w *nullResponseWriter) Write(b []byte) (int, error) {
	w.n += int64(len(b))
	return len(b), nil
}

func (w *nullResponseWriter) WriteHeader(status int) { w.status = status }

func runServeV3BW(opts Options) (Result, error) {
	// Snapshot sized like a mid-size deployment: one entry per simulated
	// relay population member, published exactly once.
	entries := opts.relays() * 40
	f := dirauth.NewBandwidthFile("perf", time.Hour)
	for i := 0; i < entries; i++ {
		bps := 1e6 * float64(1+i%997)
		f.Set(fmt.Sprintf("relay-%06d", i), bps, bps*1.1)
	}
	holder := &obs.SnapshotHolder{}
	if err := holder.Publish(1, f, time.Unix(1700000000, 0)); err != nil {
		return Result{}, err
	}
	_, bodySize, etag, _, ok := holder.Info()
	if !ok {
		return Result{}, fmt.Errorf("perf: snapshot holder empty after publish")
	}

	req, err := http.NewRequest(http.MethodGet, "/v3bw", nil)
	if err != nil {
		return Result{}, err
	}
	w := &nullResponseWriter{hdr: make(http.Header, 8)}

	// Warm the path once so first-touch header-map growth is not charged
	// to the steady state the gate checks.
	holder.ServeHTTP(w, req)
	if w.n != int64(bodySize) {
		return Result{}, fmt.Errorf("perf: served %d bytes, snapshot is %d", w.n, bodySize)
	}

	window := opts.window()
	before := readMem()
	start := time.Now()
	var requests, bodyBytes int64
	for {
		w.n, w.status = 0, 0
		holder.ServeHTTP(w, req)
		requests++
		bodyBytes += w.n
		if requests%1024 == 0 && time.Since(start) >= window {
			break
		}
	}
	elapsed := time.Since(start)
	after := readMem()

	res := controlResult(requests, elapsed, before, after)
	if res.CellsPerSec > 0 {
		res.MBPerSec = float64(bodyBytes) / 1e6 / elapsed.Seconds()
	}
	if res.AllocsPerOp > serveV3BWMaxAllocs {
		return Result{}, fmt.Errorf("perf: serve-v3bw cached GET allocates %.2f/request (budget %.2f) — the zero-copy path regressed",
			res.AllocsPerOp, serveV3BWMaxAllocs)
	}

	// Revalidation phase: every request carries the current ETag and must
	// come back 304 with zero body bytes. Run a quarter of the window —
	// the point is the short-circuit, not a second throughput number.
	req304, err := http.NewRequest(http.MethodGet, "/v3bw", nil)
	if err != nil {
		return Result{}, err
	}
	req304.Header.Set("If-None-Match", etag)
	revalStart := time.Now()
	var revalidations int64
	for {
		w.n, w.status = 0, 0
		holder.ServeHTTP(w, req304)
		if w.status != http.StatusNotModified || w.n != 0 {
			return Result{}, fmt.Errorf("perf: conditional GET answered %d with %d body bytes, want 304 with none", w.status, w.n)
		}
		revalidations++
		if revalidations%1024 == 0 && time.Since(revalStart) >= window/4 {
			break
		}
	}
	revalElapsed := time.Since(revalStart)

	// The render path must not have been re-entered by any of the above:
	// serving is read-only against the published snapshot.
	if renders := holder.Renders(); renders != 1 {
		return Result{}, fmt.Errorf("perf: %d renders after serving (want 1) — requests are re-entering the render path", renders)
	}

	// End-to-end sanity over a real socket: the embedded obs server, a
	// keep-alive client, 200-then-304 against the same holder. Small and
	// bounded — loopback HTTP throughput is a property of net/http, not of
	// this repo's serve path.
	srv := obs.NewServer(obs.Config{Snapshot: holder})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	defer srv.Shutdown(context.Background())
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + addr.String() + "/v3bw"
	for i := 0; i < 32; i++ {
		hreq, _ := http.NewRequest(http.MethodGet, url, nil)
		want := http.StatusOK
		if i%2 == 1 {
			hreq.Header.Set("If-None-Match", etag)
			want = http.StatusNotModified
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return Result{}, fmt.Errorf("perf: loopback fetch: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			return Result{}, fmt.Errorf("perf: loopback fetch %d: got %d, want %d", i, resp.StatusCode, want)
		}
	}
	if renders := holder.Renders(); renders != 1 {
		return Result{}, fmt.Errorf("perf: %d renders after loopback fetches (want 1)", renders)
	}

	res.Extra = map[string]float64{
		"snapshot_bytes":           float64(bodySize),
		"snapshot_entries":         float64(entries),
		"revalidations_per_sec":    float64(revalidations) / revalElapsed.Seconds(),
		"renders_during_workload":  0, // 1 total minus the 1 publish
		"handler_allocs_per_fetch": res.AllocsPerOp,
	}
	return res, nil
}
