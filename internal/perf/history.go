package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// HistoryEntry is one line of BENCH_history.jsonl: a compact per-run
// summary of every scenario's throughput and allocation rate, appended by
// cmd/bench -history. The file accretes one line per benchmarked commit,
// so the perf trajectory across PRs can be plotted without trawling CI
// artifacts.
type HistoryEntry struct {
	Unix          int64              `json:"unix"`
	GoVersion     string             `json:"go"`
	GOOS          string             `json:"goos"`
	GOARCH        string             `json:"goarch"`
	CPUs          int                `json:"cpus"`
	Procs         int                `json:"procs,omitempty"`
	Quick         bool               `json:"quick"`
	CellsPerSec   map[string]float64 `json:"cells_per_sec"`
	AllocsPerCell map[string]float64 `json:"allocs_per_cell"`
}

// HistoryEntryOf condenses a report into its history line.
func HistoryEntryOf(rep Report) HistoryEntry {
	e := HistoryEntry{
		Unix:          rep.UnixTime,
		GoVersion:     rep.GoVersion,
		GOOS:          rep.GOOS,
		GOARCH:        rep.GOARCH,
		CPUs:          rep.CPUs,
		Procs:         rep.Procs,
		Quick:         rep.Quick,
		CellsPerSec:   make(map[string]float64, len(rep.Results)),
		AllocsPerCell: make(map[string]float64, len(rep.Results)),
	}
	for _, r := range rep.Results {
		e.CellsPerSec[r.Scenario] = r.CellsPerSec
		e.AllocsPerCell[r.Scenario] = r.AllocsPerOp
	}
	return e
}

// AppendHistory appends the report's history line to the JSONL file at
// path, creating it if needed.
func AppendHistory(path string, rep Report) error {
	line, err := json.Marshal(HistoryEntryOf(rep))
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("perf: append history: %w", err)
	}
	return f.Close()
}
