package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// fastOpts keeps scenario windows tiny so the test suite stays quick.
var fastOpts = Options{Quick: true, Duration: 50 * time.Millisecond, Relays: 10}

func TestRunAllScenariosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time measurement windows")
	}
	rep, err := Run(nil, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(Scenarios()) {
		t.Fatalf("results: got %d want %d", len(rep.Results), len(Scenarios()))
	}
	for _, r := range rep.Results {
		if r.CellsPerSec <= 0 || r.Cells <= 0 {
			t.Fatalf("%s: nonpositive throughput: %+v", r.Scenario, r)
		}
		// Schedule-construction and the adversary matrix move
		// placements/matrix cells, not bytes; they are the only ones
		// allowed to report zero MB/s.
		if r.MBPerSec <= 0 && !strings.HasPrefix(r.Scenario, "schedule-build") && r.Scenario != "adversary-matrix" {
			t.Fatalf("%s: nonpositive MB/s", r.Scenario)
		}
	}
}

func TestAppendHistory(t *testing.T) {
	rep := Report{
		Schema:    1,
		GoVersion: "go-test",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      4,
		UnixTime:  1234,
		Results: []Result{
			{Scenario: "cell-crypto", CellsPerSec: 1e6, AllocsPerOp: 0.5},
			{Scenario: "schedule-build-1m", CellsPerSec: 4e6},
		},
	}
	path := t.TempDir() + "/hist.jsonl"
	if err := AppendHistory(path, rep); err != nil {
		t.Fatal(err)
	}
	rep.UnixTime = 5678
	if err := AppendHistory(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("history lines: %d", len(lines))
	}
	var e HistoryEntry
	if err := json.Unmarshal(lines[1], &e); err != nil {
		t.Fatal(err)
	}
	if e.Unix != 5678 || e.CellsPerSec["schedule-build-1m"] != 4e6 || e.AllocsPerCell["cell-crypto"] != 0.5 {
		t.Fatalf("entry: %+v", e)
	}
}

func TestRunRepeatKeepsOneResultPerScenario(t *testing.T) {
	opts := fastOpts
	opts.Repeat = 3
	rep, err := Run([]string{"cell-crypto"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("repeat must keep one (best) result, got %d", len(rep.Results))
	}
	if rep.Results[0].CellsPerSec <= 0 {
		t.Fatal("best-of-N result empty")
	}
}

func TestRunSubsetAndUnknown(t *testing.T) {
	rep, err := Run([]string{"cell-crypto"}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Scenario != "cell-crypto" {
		t.Fatalf("subset run: %+v", rep.Results)
	}
	if _, err := Run([]string{"no-such-scenario"}, fastOpts); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run([]string{"cell-crypto"}, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != 1 || len(back.Results) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Results[0].CellsPerSec != rep.Results[0].CellsPerSec {
		t.Fatal("cells/sec lost in round trip")
	}
}

func report(results ...Result) Report {
	return Report{Schema: 1, Results: results}
}

func TestCompareFlagsRegression(t *testing.T) {
	// Below minNormalizeScenarios shared scenarios the comparison is raw.
	base := report(Result{Scenario: "wire-echo-single", CellsPerSec: 1000})
	cur := report(Result{Scenario: "wire-echo-single", CellsPerSec: 700})
	regs := Compare(base, cur, 0.20)
	if len(regs) != 1 || regs[0].Scenario != "wire-echo-single" {
		t.Fatalf("regressions: %+v", regs)
	}
	if regs[0].Normalized {
		t.Fatal("too few scenarios to normalize: ratio must be raw")
	}
	if regs[0].Ratio < 0.69 || regs[0].Ratio > 0.71 {
		t.Fatalf("ratio: %v", regs[0].Ratio)
	}
	if Compare(base, report(Result{Scenario: "wire-echo-single", CellsPerSec: 850}), 0.20) != nil {
		t.Fatal("15% drop within 20% threshold must pass")
	}
}

func TestCompareMedianNormalizesMachineSpeed(t *testing.T) {
	base := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6},
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
	)
	// Modest uniform machine-speed difference (12% slower runner): every
	// ratio moves together, the median cancels it, nothing regresses.
	uniform := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 7e6},
		Result{Scenario: "cell-encode", CellsPerSec: 1.75e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 8.8e5},
		Result{Scenario: "wire-echo-team", CellsPerSec: 7.9e5},
	)
	if regs := Compare(base, uniform, 0.20); regs != nil {
		t.Fatalf("uniform machine-speed difference flagged as regression: %+v", regs)
	}

	// Same machine speed overall, but one scenario lost half its
	// throughput: it stands out against the median and is flagged.
	oneBad := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6},
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 5e5},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
	)
	regs := Compare(base, oneBad, 0.20)
	if len(regs) != 1 || regs[0].Scenario != "wire-echo-single" || !regs[0].Normalized {
		t.Fatalf("single-scenario regression missed: %+v", regs)
	}
}

func TestCompareNoisyScenarioDoesNotPoisonOthers(t *testing.T) {
	// One scenario runs 30% FAST on this run (noise). Under median
	// normalization the others sit at ratio ~1/median and must not be
	// flagged — this was the failure mode of normalizing by a single
	// reference scenario.
	base := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6},
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
		Result{Scenario: "coord-round", CellsPerSec: 1e8},
	)
	cur := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 10.4e6}, // +30% noise spike
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
		Result{Scenario: "coord-round", CellsPerSec: 1e8},
	)
	if regs := Compare(base, cur, 0.20); regs != nil {
		t.Fatalf("one fast outlier poisoned the others: %+v", regs)
	}
}

func TestCompareBroadImprovementDoesNotFlagUntouched(t *testing.T) {
	// A PR doubles most scenarios without refreshing the baseline: the
	// elevated median must not manufacture a regression out of the
	// untouched scenario (normalization divisor is capped at 1).
	base := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6},
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
		Result{Scenario: "coord-round", CellsPerSec: 1e8},
	)
	cur := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6}, // untouched
		Result{Scenario: "cell-encode", CellsPerSec: 4e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 1.8e6},
		Result{Scenario: "coord-round", CellsPerSec: 2e8},
	)
	if regs := Compare(base, cur, 0.20); regs != nil {
		t.Fatalf("broad improvement flagged untouched scenario: %+v", regs)
	}
}

func TestCompareBroadRegressionMovesSuiteMedian(t *testing.T) {
	// A regression hitting most scenarios (e.g. a crypto-path slowdown)
	// drags the normalization median down; per-scenario ratios then look
	// fine, so Compare must flag the suite median itself rather than
	// silently passing.
	base := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 8e6},
		Result{Scenario: "cell-encode", CellsPerSec: 2e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-team", CellsPerSec: 9e5},
		Result{Scenario: "coord-round", CellsPerSec: 1e8},
	)
	cur := report(
		Result{Scenario: "cell-crypto", CellsPerSec: 4e6},
		Result{Scenario: "cell-encode", CellsPerSec: 1e6},
		Result{Scenario: "wire-echo-single", CellsPerSec: 5e5},
		Result{Scenario: "wire-echo-team", CellsPerSec: 4.5e5},
		Result{Scenario: "coord-round", CellsPerSec: 1e8}, // no crypto: unaffected
	)
	regs := Compare(base, cur, 0.20)
	found := false
	for _, g := range regs {
		if g.Scenario == SuiteMedianScenario {
			found = true
			if g.Ratio > 0.51 || g.Ratio < 0.49 {
				t.Fatalf("suite-median ratio: %v", g.Ratio)
			}
		}
	}
	if !found {
		t.Fatalf("broad regression not flagged via suite median: %+v", regs)
	}
}

func TestCompareAllocGrowthFails(t *testing.T) {
	// An allocation creeping into a hot path must fail the comparison
	// even when throughput looks fine.
	base := report(Result{Scenario: "cell-crypto", CellsPerSec: 8e6, AllocsPerOp: 0})
	leaky := report(Result{Scenario: "cell-crypto", CellsPerSec: 8e6, AllocsPerOp: 2})
	regs := Compare(base, leaky, 0.20)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_cell" {
		t.Fatalf("alloc regression missed: %+v", regs)
	}
	// Sub-slack drift (handshake amortization wobble) must pass.
	drift := report(Result{Scenario: "cell-crypto", CellsPerSec: 8e6, AllocsPerOp: 0.4})
	if regs := Compare(base, drift, 0.20); regs != nil {
		t.Fatalf("alloc drift within slack flagged: %+v", regs)
	}
}

func TestCompareSkipsMissingScenarios(t *testing.T) {
	base := report(
		Result{Scenario: "wire-echo-single", CellsPerSec: 1000},
		Result{Scenario: "coord-round", CellsPerSec: 500},
	)
	cur := report(Result{Scenario: "wire-echo-single", CellsPerSec: 990})
	if regs := Compare(base, cur, 0.20); regs != nil {
		t.Fatalf("missing scenario treated as regression: %+v", regs)
	}
}
