package perf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"time"

	"flashflow/internal/cell"
	"flashflow/internal/coord"
	"flashflow/internal/core"
	"flashflow/internal/wire"
)

// memSnapshot captures the process allocation counters around a scenario
// so the report can state allocations per cell. Wire scenarios include
// handshake and goroutine-startup allocations, so their steady-state cost
// is amortized over the run — the hard 0 allocs/cell guarantee is pinned
// separately by the testing.AllocsPerRun guards in internal/cell and
// internal/wire.
type memSnapshot struct{ mallocs, bytes uint64 }

func readMem() memSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSnapshot{mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// finish assembles a Result from totals.
func finish(cells int64, elapsed time.Duration, before, after memSnapshot) Result {
	sec := elapsed.Seconds()
	r := Result{
		Cells:   cells,
		Seconds: sec,
	}
	if sec > 0 {
		r.CellsPerSec = float64(cells) / sec
		r.MBPerSec = float64(cells) * cell.Size / 1e6 / sec
	}
	if cells > 0 {
		r.AllocsPerOp = float64(after.mallocs-before.mallocs) / float64(cells)
		r.BytesPerCell = float64(after.bytes-before.bytes) / float64(cells)
	}
	return r
}

// runCellCrypto measures raw single-stream AES-CTR cell throughput: the
// hardware ceiling every wire scenario is bounded by (§4.1 — the target
// must do this work for every measurement cell).
func runCellCrypto(opts Options) (Result, error) {
	circ, err := cell.NewCircuit(1, []byte("perf-cell-crypto"))
	if err != nil {
		return Result{}, err
	}
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	payloads := make([][]byte, cell.BatchCells)
	for i := range payloads {
		payloads[i] = cell.PayloadOf((*buf)[i*cell.Size:])
	}

	window := opts.window()
	before := readMem()
	start := time.Now()
	var cells int64
	for time.Since(start) < window {
		for _, p := range payloads {
			circ.Forward.ApplyBytes(p)
		}
		cells += cell.BatchCells
	}
	return finish(cells, time.Since(start), before, readMem()), nil
}

// runCellVerify measures the measurer's echo-check cost: random-access
// keystream verification of echoed payloads (Keystream.VerifyAt). Cells
// travel with zero payloads, so the sender's per-cell work is a header
// write; what the measurer pays per *checked* cell is this verification,
// and at check probability p it scales the reader's budget by p × this
// scenario's per-cell cost.
func runCellVerify(opts Options) (Result, error) {
	km := cell.DeriveKeys([]byte("perf-cell-verify"))
	ks, err := cell.NewKeystream(km.ForwardKey, km.ForwardIV)
	if err != nil {
		return Result{}, err
	}
	// Build one batch of genuine echoes: zero payloads run through the
	// forward cipher, exactly what an honest target returns.
	circ, err := cell.NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		return Result{}, err
	}
	buf := cell.GetBatch()
	defer cell.PutBatch(buf)
	out := *buf
	for i := 0; i < cell.BatchCells; i++ {
		cb := out[i*cell.Size : (i+1)*cell.Size]
		cell.PutHeader(cb, 1, cell.MsmtData)
		clear(cell.PayloadOf(cb))
		circ.ApplyBytes(cell.PayloadOf(cb))
	}

	window := opts.window()
	before := readMem()
	start := time.Now()
	var cells int64
	for time.Since(start) < window {
		for i := 0; i < cell.BatchCells; i++ {
			cb := out[i*cell.Size : (i+1)*cell.Size]
			if !ks.VerifyAt(cell.PayloadOf(cb), uint64(i)*cell.PayloadSize) {
				return Result{}, errors.New("perf: keystream verification failed on honest echo")
			}
		}
		cells += cell.BatchCells
	}
	return finish(cells, time.Since(start), before, readMem()), nil
}

// echoConfig shapes one end-to-end echo scenario: how many measurers hit
// the target, each with how many multiplexed circuits, the check sampling
// rate, the target's configuration (decrypt workers, rate), and which data
// plane carries the measurement cells.
type echoConfig struct {
	measurers  int
	socketsPer int
	checkProb  float64
	target     wire.TargetConfig
	udp        bool
}

// echoScenario runs real Measure slots against an unlimited-rate loopback
// target and reports end-to-end echoed-cell throughput. On the UDP plane
// the Extra map carries the loss accounting (sent/lost cells) the stream
// plane cannot have.
func echoScenario(opts Options, cfg echoConfig) (Result, error) {
	if opts.Transport == "udp" {
		cfg.udp = true
	}
	ids := make([]wire.Identity, cfg.measurers)
	for i := range ids {
		id, err := wire.NewIdentity()
		if err != nil {
			return Result{}, err
		}
		ids[i] = id
	}
	tgt := wire.NewTarget(cfg.target) // RateBps 0: unlimited
	for _, id := range ids {
		tgt.Authorize(id.Pub)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	go tgt.Serve(l)
	defer func() {
		l.Close()
		tgt.Close()
	}()
	addr := l.Addr().String()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	var dialData wire.Dialer
	if cfg.udp {
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return Result{}, err
		}
		go tgt.ServeUDP(wire.NewUDPDatagramConn(uc))
		defer uc.Close()
		udpAddr := uc.LocalAddr().String()
		dialData = func() (net.Conn, error) { return net.Dial("udp", udpAddr) }
	}

	window := opts.window()
	before := readMem()
	start := time.Now()
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		total      float64
		sent, lost int64
		firstEr    error
	)
	for i := range ids {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			res, err := wire.Measure(context.Background(), dial, wire.MeasureOptions{
				Identity:  ids[idx],
				Sockets:   cfg.socketsPer,
				RateBps:   0, // unpaced: run as fast as the path allows
				Duration:  window,
				CheckProb: cfg.checkProb,
				Seed:      int64(idx + 1),
				DialData:  dialData,
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = err
				}
				return
			}
			if res.Failed {
				if firstEr == nil {
					firstEr = errors.New("perf: echo verification failed against honest target")
				}
				return
			}
			for _, b := range res.PerSecondBytes {
				total += b
			}
			sent += res.SentCells
			lost += res.LostCells
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstEr != nil {
		return Result{}, firstEr
	}
	cells := int64(total / cell.Size)
	r := finish(cells, elapsed, before, readMem())
	if cfg.udp {
		lossFrac := 0.0
		if sent > 0 {
			lossFrac = float64(lost) / float64(sent)
		}
		r.Extra = map[string]float64{
			"sent_cells": float64(sent),
			"lost_cells": float64(lost),
			"loss_frac":  lossFrac,
		}
		// Some loopback loss under an unpaced firehose is physics; losing
		// most of the traffic means the plane is broken, not lossy.
		if lossFrac > 0.5 {
			return Result{}, fmt.Errorf("perf: udp echo lost %.0f%% of %d cells", lossFrac*100, sent)
		}
	}
	return r, nil
}

func runWireEchoSingle(opts Options) (Result, error) {
	return echoScenario(opts, echoConfig{measurers: 1, socketsPer: 1})
}

func runWireEchoTeam(opts Options) (Result, error) {
	return echoScenario(opts, echoConfig{measurers: 2, socketsPer: 4, checkProb: 0.01})
}

// runWireEchoMux stresses the multiplexed data plane: one measurer, one
// connection, eight concurrent circuits demuxed by CircID, with echo
// checks sampling at 1%. Compared to wire-echo-single it isolates the
// cost of circuit demux, sharded sending, and interleaved reassembly on
// a single socket.
func runWireEchoMux(opts Options) (Result, error) {
	return echoScenario(opts, echoConfig{measurers: 1, socketsPer: 8, checkProb: 0.01})
}

// runWireEchoMuxPar is wire-echo-mux through the target's parallel decrypt
// pipeline, workers forced ≥2 so the reader/worker/writer machinery is
// always exercised even on a single-core host. On a multi-core host
// (GOMAXPROCS ≥ 4, e.g. the CI runners) it also runs the inline
// single-worker target as an in-scenario reference and fails unless the
// pipeline wins by ≥1.2× — the point of sharding the decrypt. On fewer
// cores the ratio is reported but not gated: there is no parallel speedup
// to be had from one core, only pipeline overhead, and the scenario's own
// baseline entry tracks that cost instead.
func runWireEchoMuxPar(opts Options) (Result, error) {
	procs := runtime.GOMAXPROCS(0)
	workers := procs
	if workers < 2 {
		workers = 2
	}
	if workers > 8 {
		workers = 8
	}
	cfg := echoConfig{measurers: 1, socketsPer: 8, checkProb: 0.01,
		target: wire.TargetConfig{DecryptWorkers: workers}}
	res, err := echoScenario(opts, cfg)
	if err != nil {
		return Result{}, err
	}
	if res.Extra == nil {
		res.Extra = make(map[string]float64)
	}
	res.Extra["decrypt_workers"] = float64(workers)
	res.Extra["gomaxprocs"] = float64(procs)
	if procs >= 4 {
		inlineCfg := cfg
		inlineCfg.target.DecryptWorkers = 1
		inline, err := echoScenario(opts, inlineCfg)
		if err != nil {
			return Result{}, err
		}
		ratio := 0.0
		if inline.CellsPerSec > 0 {
			ratio = res.CellsPerSec / inline.CellsPerSec
		}
		res.Extra["par_over_inline"] = ratio
		if ratio < 1.2 {
			return Result{}, fmt.Errorf("perf: parallel decrypt %.2fx inline on %d procs, want ≥1.2x", ratio, procs)
		}
	}
	return res, nil
}

// runWireEchoUDP is wire-echo-mux over the datagram data plane: TCP
// control, UDP data, loopback. The Extra map reports the loss accounting;
// echoScenario fails the scenario outright if the plane loses most of its
// cells or verification fails.
func runWireEchoUDP(opts Options) (Result, error) {
	return echoScenario(opts, echoConfig{measurers: 1, socketsPer: 8, checkProb: 0.01, udp: true})
}

// runCellCryptoSpan races the span decrypt (one XORKeyStream per 32-cell
// span, scattered back per cell) against the sequential per-payload cipher
// calls of cell-crypto, interleaved within the window so scheduler and
// thermal drift hit both sides alike. The Result reports the span path;
// span_ratio is (span cells/s) / (sequential cells/s), and the scenario
// fails if the span path does not win — materializing keystream in
// cipher-sized runs instead of 509-byte calls is the whole optimization.
func runCellCryptoSpan(opts Options) (Result, error) {
	km := cell.DeriveKeys([]byte("perf-cell-crypto-span"))
	seqSt, err := cell.NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		return Result{}, err
	}
	spanSt, err := cell.NewCryptoState(km.ForwardKey, km.ForwardIV)
	if err != nil {
		return Result{}, err
	}
	buf := cell.GetSuper()
	defer cell.PutSuper(buf)
	arena := (*buf)[:cell.SuperBytes]
	payloads := make([][]byte, cell.SuperCells)
	offs := make([]int32, cell.SuperCells)
	for i := range offs {
		offs[i] = int32(i * cell.Size)
		payloads[i] = cell.PayloadOf(arena[i*cell.Size:])
	}
	scratch := cell.NewSpanScratch()

	window := opts.window()
	before := readMem()
	start := time.Now()
	var spanCells int64
	var seqDur, spanDur time.Duration
	for time.Since(start) < window {
		t0 := time.Now()
		for _, p := range payloads {
			seqSt.ApplyBytes(p)
		}
		t1 := time.Now()
		spanSt.ApplySpans(arena, offs, scratch)
		t2 := time.Now()
		seqDur += t1.Sub(t0)
		spanDur += t2.Sub(t1)
		spanCells += cell.SuperCells
	}
	after := readMem()
	if spanDur <= 0 || seqDur <= 0 {
		return Result{}, errors.New("perf: span scenario measured nothing")
	}
	res := finish(spanCells, spanDur, before, after)
	ratio := seqDur.Seconds() / spanDur.Seconds() // equal cells per side
	res.Extra = map[string]float64{"span_ratio": ratio}
	if ratio <= 1.0 {
		return Result{}, fmt.Errorf("perf: span decrypt %.3fx sequential, want >1x", ratio)
	}
	return res, nil
}

// instantBackend is a deterministic core.Backend whose measurements
// complete immediately: a target echoes min(capacity, allocation) for the
// slot, one streamed sample per simulated second. It isolates the
// coordinator's scheduling/aggregation throughput from wall-clock slot
// durations while still producing the full per-second data volume the
// real data plane would carry. Between simulated seconds it checks ctx —
// the §4.2 early abort cancels the slot exactly as it would on the wire —
// and it counts simulated slot-seconds both as emitted (what the
// streaming pipeline consumed) and as scheduled (what a fixed-length
// pipeline would have consumed), so the abort scenario can report the
// slot-seconds saved.
type instantBackend struct {
	capBps map[string]float64

	mu        sync.Mutex
	bytes     float64
	emitted   int64 // simulated seconds actually run
	scheduled int64 // simulated seconds a fixed-length slot would have run
	slots     int64 // measurement attempts executed
}

func (b *instantBackend) RunMeasurement(ctx context.Context, target string, alloc core.Allocation, seconds int, sink core.SampleSink) (core.MeasurementData, error) {
	capBps, ok := b.capBps[target]
	if !ok {
		return core.MeasurementData{}, fmt.Errorf("perf: unknown target %s", target)
	}
	b.mu.Lock()
	b.slots++
	b.scheduled += int64(seconds)
	b.mu.Unlock()
	echo := math.Min(capBps, alloc.TotalBps)
	series := make([]float64, 0, seconds)
	var total float64
	for j := 0; j < seconds; j++ {
		if err := ctx.Err(); err != nil {
			b.account(total, int64(j))
			return core.MeasurementData{MeasBytes: [][]float64{series}}, err
		}
		series = append(series, echo/8) // bytes per second
		total += echo / 8
		if sink != nil {
			sink(core.Sample{Second: j, MeasBytes: series[j : j+1]})
		}
	}
	b.account(total, int64(seconds))
	return core.MeasurementData{MeasBytes: [][]float64{series}}, nil
}

func (b *instantBackend) account(bytes float64, secs int64) {
	b.mu.Lock()
	b.bytes += bytes
	b.emitted += secs
	b.mu.Unlock()
}

func (b *instantBackend) total() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

func (b *instantBackend) slotSeconds() (emitted, scheduled, slots int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.emitted, b.scheduled, b.slots
}

// runAbortRound executes one full coordinator round over a mixed-capacity
// population whose priors are badly undersized (capacity/16), so every
// relay's §4.2 doubling loop needs several attempts before its allocation
// carries the excess factor. With early abort enabled the undersized
// attempts are cut off as soon as a majority of their seconds prove the
// estimate unacceptable; with it disabled every attempt runs its full
// SlotSeconds — the fixed-length baseline the refactor replaces.
func runAbortRound(opts Options, disableAbort bool) (*instantBackend, time.Duration, error) {
	n := opts.relays()
	caps := make(map[string]float64, n)
	var source coord.StaticRelays
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("relay-%03d", i)
		capBps := 5e6 + float64(i%40)*2.5e6 // 5–102.5 Mbit/s spread
		caps[name] = capBps
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: capBps / 16})
	}
	backend := &instantBackend{capBps: caps}
	p := core.DefaultParams()
	p.SlotSeconds = 10
	p.DisableEarlyAbort = disableAbort
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 500e6, Cores: 4},
		{Name: "m2", CapacityBps: 500e6, Cores: 4},
	}
	auth := core.NewBWAuth("bw0", team, backend, p)
	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     8,
		MaxAttempts: 2,
		MaxRounds:   1,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
	}, []*core.BWAuth{auth}, source)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := c.Run(context.Background()); err != nil {
		return nil, 0, err
	}
	return backend, time.Since(start), nil
}

// runCoordRoundAbort quantifies the streaming pipeline's early abort: it
// repeats the undersized-prior round (a fresh coordinator each iteration,
// so the prior feedback never converges the doubling attempts away) for
// the whole measurement window — a single round finishes in milliseconds
// on the instant backend, so iterating is what makes the cells/sec figure
// stable enough for the CI regression gate — then runs the identical round
// once with early abort disabled as the fixed-length baseline. The
// Result's throughput numbers describe the early-abort iterations; the
// Extra map carries the per-round slot-second comparison for
// BENCH_wire.json. The scenario fails if early abort does not reduce
// slot-seconds — that reduction is the point of the refactor.
func runCoordRoundAbort(opts Options) (Result, error) {
	window := opts.window()
	before := readMem()
	start := time.Now()
	var (
		cells      int64
		abortSecs  int64
		abortSlots int64
		iterations int64
	)
	for {
		backend, _, err := runAbortRound(opts, false)
		if err != nil {
			return Result{}, err
		}
		emitted, _, slots := backend.slotSeconds()
		abortSecs += emitted
		abortSlots += slots
		cells += int64(backend.total() / cell.Size)
		iterations++
		if time.Since(start) >= window {
			break
		}
	}
	elapsed := time.Since(start)
	after := readMem()

	fixedBackend, _, err := runAbortRound(opts, true)
	if err != nil {
		return Result{}, err
	}
	fixedSecs, _, fixedSlots := fixedBackend.slotSeconds()
	perRoundAbort := float64(abortSecs) / float64(iterations)
	if abortSecs <= 0 || fixedSecs <= 0 {
		return Result{}, errors.New("perf: abort scenario measured nothing")
	}
	if perRoundAbort >= float64(fixedSecs) {
		return Result{}, fmt.Errorf("perf: early abort saved no slot-seconds (%.0f per round with abort vs %d fixed)", perRoundAbort, fixedSecs)
	}
	res := finish(cells, elapsed, before, after)
	res.Extra = map[string]float64{
		"rounds":                   float64(iterations),
		"slot_seconds_early_abort": perRoundAbort,
		"slot_seconds_fixed":       float64(fixedSecs),
		"slot_seconds_saved_frac":  1 - perRoundAbort/float64(fixedSecs),
		"slots_early_abort":        float64(abortSlots) / float64(iterations),
		"slots_fixed":              float64(fixedSlots),
	}
	return res, nil
}

// runCoordRound drives full coordinator rounds — §4.3 scheduling, worker
// pool, aggregation, prior feedback — over a simulated relay population
// for the measurement window and reports the simulated measurement volume
// the coordinator sustained.
func runCoordRound(opts Options) (Result, error) {
	n := opts.relays()
	caps := make(map[string]float64, n)
	var source coord.StaticRelays
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("relay-%03d", i)
		capBps := 5e6 + float64(i%40)*2.5e6 // 5–102.5 Mbit/s spread
		caps[name] = capBps
		source = append(source, core.RelayEstimate{Name: name, EstimateBps: capBps})
	}
	backend := &instantBackend{capBps: caps}
	p := core.DefaultParams()
	p.SlotSeconds = 2
	team := []*core.Measurer{
		{Name: "m1", CapacityBps: 500e6, Cores: 4},
		{Name: "m2", CapacityBps: 500e6, Cores: 4},
	}
	auth := core.NewBWAuth("bw0", team, backend, p)

	window := opts.window()
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	c, err := coord.New(coord.Config{
		Params:      p,
		Workers:     8,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    4 * time.Millisecond,
	}, []*core.BWAuth{auth}, source)
	if err != nil {
		return Result{}, err
	}

	before := readMem()
	start := time.Now()
	err = c.Run(ctx)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return Result{}, err
	}
	cells := int64(backend.total() / cell.Size)
	if cells == 0 {
		return Result{}, errors.New("perf: coordinator round measured nothing")
	}
	return finish(cells, elapsed, before, readMem()), nil
}
