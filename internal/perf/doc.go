// Package perf is the reproducible performance harness for the FlashFlow
// measurement data plane. It runs named throughput scenarios — raw
// circuit crypto, sender-side batch encoding, single- and
// multi-connection wire echo measurements over real sockets, a
// coordinator round over a simulated relay population, million-relay
// control-plane paths (schedule construction, v3bw round-trip, durable
// warm recovery), adversary-matrix overhead, and v3bw serving — and
// emits a machine-readable report (BENCH_wire.json) with cells/sec,
// MB/s, and allocations per cell.
//
// The scenarios exist because the paper's deployment model (§4.3, §7)
// asks a single coordinator to drive measurements of the entire Tor
// network: the data-plane scenarios check the per-connection cell path
// sustains relay-scale rates, and the control-plane scenarios check the
// per-round bookkeeping stays sub-second at a million relays — a
// population an order of magnitude beyond today's Tor, so headroom is
// part of the claim.
//
// The report format is stable so CI can diff runs: Compare checks a
// current report against a checked-in baseline and flags scenarios whose
// throughput regressed beyond a threshold. Because absolute cells/sec
// varies across machines, Compare normalizes every scenario's ratio by
// the median ratio across scenarios — a uniformly slower CI runner moves
// all ratios together and cancels out, while a genuine regression in one
// scenario stands out against the median of the rest. An allocations-per-
// cell check catches hot-path heap allocations machine-independently.
package perf
