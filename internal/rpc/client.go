package rpc

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"flashflow/internal/metrics"
	"flashflow/internal/wire"
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Dial opens a transport to the server. Required. The returned
	// connection may be any io.ReadWriteCloser — net.Conn in production,
	// one end of a net.Pipe in tests. Connections that also implement
	// SetDeadline get per-call deadlines derived from the call context.
	Dial func(ctx context.Context) (io.ReadWriteCloser, error)
	// Identity is the client's ed25519 keypair, reused from the
	// measurement plane's identity type. Required.
	Identity wire.Identity
	// Counters receives the client's operational counters; nil creates a
	// private registry.
	Counters *metrics.Counters
	// CounterPrefix namespaces the counters (default "coord_rpc": the
	// client side of the control plane belongs to the coordinator
	// metric family).
	CounterPrefix string
	// VersionMin/VersionMax override the advertised version range; zero
	// selects the package defaults. Tests use this to provoke skew.
	VersionMin, VersionMax uint16
}

// Client is a connection-caching RPC client: one authenticated connection,
// established lazily, reused across Calls, and re-established transparently
// when a pooled connection turns out to be dead (one redial per call — a
// server restart between rounds costs one retry, not a lost submission).
// Safe for concurrent use; calls are serialized on the single connection.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	conn    io.ReadWriteCloser
	version uint16
	closed  bool
}

// deadliner is the optional transport capability used to map call-context
// deadlines onto the connection (net.Conn and net.Pipe both have it).
type deadliner interface{ SetDeadline(t time.Time) error }

// NewClient builds a client. No connection is opened until the first Call.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Dial == nil {
		return nil, errors.New("rpc: client needs a dial function")
	}
	if len(cfg.Identity.Priv) == 0 {
		return nil, errors.New("rpc: client needs an identity")
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.CounterPrefix == "" {
		cfg.CounterPrefix = "coord_rpc"
	}
	if cfg.VersionMin == 0 {
		cfg.VersionMin = VersionMin
	}
	if cfg.VersionMax == 0 {
		cfg.VersionMax = VersionMax
	}
	for _, name := range []string{
		"_dials", "_dial_errors", "_calls", "_call_errors",
		"_server_errors", "_retries",
	} {
		cfg.Counters.Add(cfg.CounterPrefix+name, 0)
	}
	return &Client{cfg: cfg}, nil
}

func (c *Client) count(name string, delta int64) {
	c.cfg.Counters.Add(c.cfg.CounterPrefix+name, delta)
}

// Call sends one request and waits for its response. A *ServerError
// return means the server's handler rejected the request — the
// connection is fine and is kept. A transport failure on a reused
// connection triggers exactly one redial-and-retry (the pooled connection
// may have died since the last call); a failure on a fresh connection is
// returned as-is.
func (c *Client) Call(ctx context.Context, method uint8, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.count("_calls", 1)
	for attempt := 0; ; attempt++ {
		reused := c.conn != nil
		if !reused {
			if err := c.connectLocked(ctx); err != nil {
				c.count("_call_errors", 1)
				return nil, err
			}
		}
		resp, err := c.roundTripLocked(ctx, method, body)
		if err == nil {
			return resp, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			c.count("_server_errors", 1)
			return nil, err
		}
		c.dropLocked()
		if reused && attempt == 0 && ctx.Err() == nil {
			c.count("_retries", 1)
			continue
		}
		c.count("_call_errors", 1)
		return nil, err
	}
}

// connectLocked dials and runs the handshake. Called with c.mu held.
func (c *Client) connectLocked(ctx context.Context) error {
	c.count("_dials", 1)
	conn, err := c.cfg.Dial(ctx)
	if err != nil {
		c.count("_dial_errors", 1)
		return fmt.Errorf("rpc: dial: %w", err)
	}
	c.applyDeadline(conn, ctx)
	version, err := c.handshake(conn)
	if err != nil {
		conn.Close()
		c.count("_dial_errors", 1)
		return err
	}
	c.conn, c.version = conn, version
	return nil
}

// applyDeadline maps the call context's deadline (if any) onto the
// transport (if it supports deadlines).
func (c *Client) applyDeadline(conn io.ReadWriteCloser, ctx context.Context) {
	d, ok := conn.(deadliner)
	if !ok {
		return
	}
	if t, ok := ctx.Deadline(); ok {
		_ = d.SetDeadline(t)
	} else {
		_ = d.SetDeadline(time.Time{})
	}
}

// handshake runs hello/welcome negotiation and the nonce-signature auth.
func (c *Client) handshake(conn io.ReadWriter) (uint16, error) {
	hello := make([]byte, 0, len(helloMagic)+4)
	hello = append(hello, helloMagic...)
	hello = append(hello, byte(c.cfg.VersionMin>>8), byte(c.cfg.VersionMin),
		byte(c.cfg.VersionMax>>8), byte(c.cfg.VersionMax))
	if err := WriteFrame(conn, FrameHello, hello); err != nil {
		return 0, err
	}
	t, p, err := ReadFrame(conn)
	if err != nil {
		return 0, err
	}
	if t == FrameReject {
		return 0, fmt.Errorf("%w (server: %s)", ErrVersionSkew, p)
	}
	if t != FrameWelcome || len(p) != 2+nonceLen {
		return 0, ErrBadFrame
	}
	version := uint16(p[0])<<8 | uint16(p[1])
	if version < c.cfg.VersionMin || version > c.cfg.VersionMax {
		return 0, ErrVersionSkew
	}
	nonce := p[2:]

	sig := ed25519.Sign(c.cfg.Identity.Priv, AuthMessage(version, nonce))
	auth := make([]byte, 0, len(c.cfg.Identity.Pub)+len(sig))
	auth = append(auth, c.cfg.Identity.Pub...)
	auth = append(auth, sig...)
	if err := WriteFrame(conn, FrameAuth, auth); err != nil {
		return 0, err
	}
	t, p, err = ReadFrame(conn)
	if err != nil {
		return 0, err
	}
	if t == FrameReject {
		return 0, fmt.Errorf("%w (server: %s)", ErrAuthRejected, p)
	}
	if t != FrameAuthOK {
		return 0, ErrBadFrame
	}
	return version, nil
}

// roundTripLocked sends one request frame and reads its reply. Called
// with c.mu held and a live connection.
func (c *Client) roundTripLocked(ctx context.Context, method uint8, body []byte) ([]byte, error) {
	c.applyDeadline(c.conn, ctx)
	req := make([]byte, 1+len(body))
	req[0] = method
	copy(req[1:], body)
	if err := WriteFrame(c.conn, FrameRequest, req); err != nil {
		return nil, err
	}
	t, p, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case FrameResponse:
		return p, nil
	case FrameError:
		return nil, &ServerError{Msg: string(p)}
	case FrameReject:
		return nil, fmt.Errorf("%w (server: %s)", ErrAuthRejected, p)
	default:
		return nil, ErrBadFrame
	}
}

// dropLocked discards the cached connection.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Version reports the negotiated protocol version of the live connection
// (zero when disconnected).
func (c *Client) Version() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0
	}
	return c.version
}

// Close discards the cached connection and marks the client closed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.dropLocked()
	return nil
}
