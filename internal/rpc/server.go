package rpc

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"flashflow/internal/metrics"
)

// Handler serves one authenticated request. peer is the connection's
// authenticated client key (valid only for the duration of the call),
// method is the request's method byte, and body is the request payload
// (owned by the handler for the duration of the call only). A returned
// error becomes a FrameError on the wire — the connection survives it —
// so handlers express rejections (a stale submission, a bad signature)
// as ordinary errors without tearing down the peer's link.
type Handler func(peer ed25519.PublicKey, method uint8, body []byte) ([]byte, error)

// ServerConfig configures a Server.
type ServerConfig struct {
	// Authorized is the set of client public keys allowed to connect —
	// for the dirauth merge node, the registered BWAuths' keys.
	Authorized []ed25519.PublicKey
	// Handler serves authenticated requests. Required.
	Handler Handler
	// Counters receives the server's operational counters; nil creates a
	// private registry (the counters still work, just unexported).
	Counters *metrics.Counters
	// CounterPrefix namespaces the counters (default "rpc_server"). The
	// dirauth merge node sets "dirauth_rpc" so its metrics sit beside the
	// dirauth_submission_* family on /metrics.
	CounterPrefix string
}

// Server accepts authenticated RPC connections and dispatches their
// requests to the configured handler. One goroutine per connection;
// requests on a connection are served in order.
type Server struct {
	cfg     ServerConfig
	allowed map[string]bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[io.Closer]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server. The counter set is pre-registered at zero so
// a scrape of a fresh merge node exposes the full stable metric family.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Handler == nil {
		return nil, errors.New("rpc: server needs a handler")
	}
	if cfg.Counters == nil {
		cfg.Counters = metrics.NewCounters()
	}
	if cfg.CounterPrefix == "" {
		cfg.CounterPrefix = "rpc_server"
	}
	s := &Server{
		cfg:     cfg,
		allowed: make(map[string]bool, len(cfg.Authorized)),
		conns:   make(map[io.Closer]struct{}),
	}
	for _, pub := range cfg.Authorized {
		s.allowed[string(pub)] = true
	}
	for _, name := range []string{
		"_conns_accepted", "_conns_active", "_hello_rejects",
		"_auth_failures", "_requests", "_handler_errors", "_frame_errors",
	} {
		cfg.Counters.Add(cfg.CounterPrefix+name, 0)
	}
	return s, nil
}

func (s *Server) count(name string, delta int64) {
	s.cfg.Counters.Add(s.cfg.CounterPrefix+name, delta)
}

// Start listens on addr and serves in a background goroutine until Close.
// It returns the bound address (useful with ":0" ports).
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections from ln until Close or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	return s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.ServeConn(conn)
		}()
	}
}

// ServeConn runs the handshake and request loop on one connection —
// any io.ReadWriteCloser, so the protocol tests drive it over net.Pipe.
// It returns when the peer disconnects, a protocol error occurs, or the
// server closes. The connection is always closed on return.
func (s *Server) ServeConn(conn io.ReadWriteCloser) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return ErrClosed
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.count("_conns_accepted", 1)
	s.count("_conns_active", 1)
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.count("_conns_active", -1)
	}()

	peer, err := s.handshake(conn)
	if err != nil {
		return err
	}
	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			s.count("_frame_errors", 1)
			return err
		}
		if t != FrameRequest || len(payload) < 1 {
			s.count("_frame_errors", 1)
			_ = WriteFrame(conn, FrameReject, []byte("expected request frame"))
			return ErrBadFrame
		}
		s.count("_requests", 1)
		resp, herr := s.cfg.Handler(peer, payload[0], payload[1:])
		if herr != nil {
			s.count("_handler_errors", 1)
			if err := WriteFrame(conn, FrameError, []byte(herr.Error())); err != nil {
				return err
			}
			continue
		}
		if err := WriteFrame(conn, FrameResponse, resp); err != nil {
			return err
		}
	}
}

// handshake negotiates the version and authenticates the client,
// returning its public key.
func (s *Server) handshake(conn io.ReadWriter) (ed25519.PublicKey, error) {
	t, p, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if t != FrameHello || len(p) != len(helloMagic)+4 || string(p[:len(helloMagic)]) != helloMagic {
		s.count("_hello_rejects", 1)
		_ = WriteFrame(conn, FrameReject, []byte("bad hello"))
		return nil, ErrBadHello
	}
	cMin := uint16(p[len(helloMagic)])<<8 | uint16(p[len(helloMagic)+1])
	cMax := uint16(p[len(helloMagic)+2])<<8 | uint16(p[len(helloMagic)+3])
	version, ok := negotiate(cMin, cMax, VersionMin, VersionMax)
	if !ok {
		s.count("_hello_rejects", 1)
		_ = WriteFrame(conn, FrameReject, fmt.Appendf(nil,
			"no version in common: client [%d,%d], server [%d,%d]", cMin, cMax, VersionMin, VersionMax))
		return nil, ErrVersionSkew
	}

	welcome := make([]byte, 2+nonceLen)
	welcome[0], welcome[1] = byte(version>>8), byte(version)
	if _, err := rand.Read(welcome[2:]); err != nil {
		return nil, fmt.Errorf("rpc: nonce: %w", err)
	}
	if err := WriteFrame(conn, FrameWelcome, welcome); err != nil {
		return nil, err
	}

	t, p, err = ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if t != FrameAuth || len(p) != ed25519.PublicKeySize+ed25519.SignatureSize {
		s.count("_auth_failures", 1)
		_ = WriteFrame(conn, FrameReject, []byte("bad auth frame"))
		return nil, ErrBadFrame
	}
	// Copy: the key outlives the frame buffer (it is handed to every
	// handler call on this connection).
	pub := append(ed25519.PublicKey(nil), p[:ed25519.PublicKeySize]...)
	sig := p[ed25519.PublicKeySize:]
	if !s.allowed[string(pub)] {
		s.count("_auth_failures", 1)
		_ = WriteFrame(conn, FrameReject, []byte("key not authorized"))
		return nil, ErrNotAuthorized
	}
	if !ed25519.Verify(pub, AuthMessage(version, welcome[2:]), sig) {
		s.count("_auth_failures", 1)
		_ = WriteFrame(conn, FrameReject, []byte("bad signature"))
		return nil, ErrAuthRejected
	}
	if err := WriteFrame(conn, FrameAuthOK, nil); err != nil {
		return nil, err
	}
	return pub, nil
}

// Close stops the listener (if any), closes every live connection, and
// waits for their goroutines to drain. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
