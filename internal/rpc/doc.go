// Package rpc is the control plane's inter-process seam: a small
// length-prefixed, versioned, authenticated request/response protocol over
// TCP (or any io.ReadWriteCloser — the tests run it over net.Pipe),
// carrying signed bandwidth-file submissions from cmd/bwauthd processes to
// the directory-authority merge node (coordd -dirauth).
//
// The paper's deployment model (§4.3) is multiple independent BWAuths
// whose per-view measurements a directory authority merges; this package
// is the wire between those processes. The protocol deliberately mirrors
// the measurement plane's wire handshake primitives (internal/wire): the
// same ed25519 Identity type, the same nonce-challenge authentication
// shape, and the same single-write length-prefixed framing — with two
// additions the measurement plane does not need: an explicit version
// negotiation (hello/welcome) so mixed-version fleets fail closed instead
// of misparsing each other, and the negotiated version bound into the
// client's auth signature so a downgrade cannot be spliced in between
// hello and auth.
//
// Layering follows the interface-first transport separation used across
// the repo: Client dials through a caller-supplied Dial func and Server
// accepts any io.ReadWriteCloser via ServeConn, so every protocol path is
// exercisable without sockets, deterministically, under the race detector.
//
// The transport authenticates the *peer* (which process is speaking); the
// payloads it carries are additionally signed end-to-end by the submitting
// BWAuth (internal/dirauth.Submission), so the merge node's acceptance
// decisions never rest on transport identity alone. See DESIGN.md
// "Distributed control plane" for the frame grammar and the merge
// invariants.
package rpc
